file(REMOVE_RECURSE
  "libtufast_htm.a"
)
