file(REMOVE_RECURSE
  "CMakeFiles/tufast_htm.dir/emulated_htm.cc.o"
  "CMakeFiles/tufast_htm.dir/emulated_htm.cc.o.d"
  "CMakeFiles/tufast_htm.dir/native_htm.cc.o"
  "CMakeFiles/tufast_htm.dir/native_htm.cc.o.d"
  "libtufast_htm.a"
  "libtufast_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
