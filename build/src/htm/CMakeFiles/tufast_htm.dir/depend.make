# Empty dependencies file for tufast_htm.
# This may be replaced when dependencies are built.
