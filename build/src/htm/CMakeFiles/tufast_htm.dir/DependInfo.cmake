
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/emulated_htm.cc" "src/htm/CMakeFiles/tufast_htm.dir/emulated_htm.cc.o" "gcc" "src/htm/CMakeFiles/tufast_htm.dir/emulated_htm.cc.o.d"
  "/root/repo/src/htm/native_htm.cc" "src/htm/CMakeFiles/tufast_htm.dir/native_htm.cc.o" "gcc" "src/htm/CMakeFiles/tufast_htm.dir/native_htm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tufast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
