# Empty compiler generated dependencies file for tufast_common.
# This may be replaced when dependencies are built.
