file(REMOVE_RECURSE
  "libtufast_common.a"
)
