file(REMOVE_RECURSE
  "CMakeFiles/tufast_common.dir/histogram.cc.o"
  "CMakeFiles/tufast_common.dir/histogram.cc.o.d"
  "libtufast_common.a"
  "libtufast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
