file(REMOVE_RECURSE
  "CMakeFiles/tufast_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/tufast_runtime.dir/thread_pool.cc.o.d"
  "libtufast_runtime.a"
  "libtufast_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
