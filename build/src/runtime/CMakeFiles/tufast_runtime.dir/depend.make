# Empty dependencies file for tufast_runtime.
# This may be replaced when dependencies are built.
