file(REMOVE_RECURSE
  "libtufast_runtime.a"
)
