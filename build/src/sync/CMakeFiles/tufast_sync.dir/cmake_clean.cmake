file(REMOVE_RECURSE
  "CMakeFiles/tufast_sync.dir/deadlock_graph.cc.o"
  "CMakeFiles/tufast_sync.dir/deadlock_graph.cc.o.d"
  "libtufast_sync.a"
  "libtufast_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
