file(REMOVE_RECURSE
  "libtufast_sync.a"
)
