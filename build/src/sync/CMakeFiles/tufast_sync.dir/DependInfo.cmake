
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/deadlock_graph.cc" "src/sync/CMakeFiles/tufast_sync.dir/deadlock_graph.cc.o" "gcc" "src/sync/CMakeFiles/tufast_sync.dir/deadlock_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tufast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/tufast_htm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
