# Empty compiler generated dependencies file for tufast_sync.
# This may be replaced when dependencies are built.
