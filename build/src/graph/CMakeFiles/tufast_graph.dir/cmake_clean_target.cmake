file(REMOVE_RECURSE
  "libtufast_graph.a"
)
