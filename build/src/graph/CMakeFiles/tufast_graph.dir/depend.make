# Empty dependencies file for tufast_graph.
# This may be replaced when dependencies are built.
