file(REMOVE_RECURSE
  "CMakeFiles/tufast_graph.dir/builder.cc.o"
  "CMakeFiles/tufast_graph.dir/builder.cc.o.d"
  "CMakeFiles/tufast_graph.dir/degree_stats.cc.o"
  "CMakeFiles/tufast_graph.dir/degree_stats.cc.o.d"
  "CMakeFiles/tufast_graph.dir/generators.cc.o"
  "CMakeFiles/tufast_graph.dir/generators.cc.o.d"
  "CMakeFiles/tufast_graph.dir/io.cc.o"
  "CMakeFiles/tufast_graph.dir/io.cc.o.d"
  "libtufast_graph.a"
  "libtufast_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
