file(REMOVE_RECURSE
  "libtufast_bench_support.a"
)
