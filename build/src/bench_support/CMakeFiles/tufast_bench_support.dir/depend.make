# Empty dependencies file for tufast_bench_support.
# This may be replaced when dependencies are built.
