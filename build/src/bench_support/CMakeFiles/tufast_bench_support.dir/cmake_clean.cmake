file(REMOVE_RECURSE
  "CMakeFiles/tufast_bench_support.dir/datasets.cc.o"
  "CMakeFiles/tufast_bench_support.dir/datasets.cc.o.d"
  "CMakeFiles/tufast_bench_support.dir/reporting.cc.o"
  "CMakeFiles/tufast_bench_support.dir/reporting.cc.o.d"
  "libtufast_bench_support.a"
  "libtufast_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
