file(REMOVE_RECURSE
  "CMakeFiles/tufast_engines.dir/ooc_engine.cc.o"
  "CMakeFiles/tufast_engines.dir/ooc_engine.cc.o.d"
  "libtufast_engines.a"
  "libtufast_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
