
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/ooc_engine.cc" "src/engines/CMakeFiles/tufast_engines.dir/ooc_engine.cc.o" "gcc" "src/engines/CMakeFiles/tufast_engines.dir/ooc_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tufast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tufast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tufast_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
