# Empty compiler generated dependencies file for tufast_engines.
# This may be replaced when dependencies are built.
