file(REMOVE_RECURSE
  "libtufast_engines.a"
)
