# Empty dependencies file for tufast_engines.
# This may be replaced when dependencies are built.
