file(REMOVE_RECURSE
  "libtufast_algorithms.a"
)
