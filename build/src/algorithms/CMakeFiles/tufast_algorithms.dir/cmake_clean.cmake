file(REMOVE_RECURSE
  "CMakeFiles/tufast_algorithms.dir/reference.cc.o"
  "CMakeFiles/tufast_algorithms.dir/reference.cc.o.d"
  "libtufast_algorithms.a"
  "libtufast_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
