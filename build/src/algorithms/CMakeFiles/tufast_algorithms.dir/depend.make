# Empty dependencies file for tufast_algorithms.
# This may be replaced when dependencies are built.
