
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algorithms_test.cc" "tests/CMakeFiles/tufast_tests.dir/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/algorithms_test.cc.o.d"
  "/root/repo/tests/concepts_test.cc" "tests/CMakeFiles/tufast_tests.dir/concepts_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/concepts_test.cc.o.d"
  "/root/repo/tests/engines_test.cc" "tests/CMakeFiles/tufast_tests.dir/engines_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/engines_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/tufast_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/htm_emulated_test.cc" "tests/CMakeFiles/tufast_tests.dir/htm_emulated_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/htm_emulated_test.cc.o.d"
  "/root/repo/tests/htm_semantics_test.cc" "tests/CMakeFiles/tufast_tests.dir/htm_semantics_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/htm_semantics_test.cc.o.d"
  "/root/repo/tests/modes_test.cc" "tests/CMakeFiles/tufast_tests.dir/modes_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/modes_test.cc.o.d"
  "/root/repo/tests/native_backend_test.cc" "tests/CMakeFiles/tufast_tests.dir/native_backend_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/native_backend_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/tufast_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/schedulers_test.cc" "tests/CMakeFiles/tufast_tests.dir/schedulers_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/schedulers_test.cc.o.d"
  "/root/repo/tests/sync_test.cc" "tests/CMakeFiles/tufast_tests.dir/sync_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/sync_test.cc.o.d"
  "/root/repo/tests/tufast_scheduler_test.cc" "tests/CMakeFiles/tufast_tests.dir/tufast_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/tufast_scheduler_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/tufast_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/tufast_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/tufast_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/tufast_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_support/CMakeFiles/tufast_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tufast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tufast_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tufast_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/tufast_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tufast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
