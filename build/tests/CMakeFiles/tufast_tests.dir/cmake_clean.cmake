file(REMOVE_RECURSE
  "CMakeFiles/tufast_tests.dir/algorithms_test.cc.o"
  "CMakeFiles/tufast_tests.dir/algorithms_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/concepts_test.cc.o"
  "CMakeFiles/tufast_tests.dir/concepts_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/engines_test.cc.o"
  "CMakeFiles/tufast_tests.dir/engines_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/graph_test.cc.o"
  "CMakeFiles/tufast_tests.dir/graph_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/htm_emulated_test.cc.o"
  "CMakeFiles/tufast_tests.dir/htm_emulated_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/htm_semantics_test.cc.o"
  "CMakeFiles/tufast_tests.dir/htm_semantics_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/modes_test.cc.o"
  "CMakeFiles/tufast_tests.dir/modes_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/native_backend_test.cc.o"
  "CMakeFiles/tufast_tests.dir/native_backend_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/property_test.cc.o"
  "CMakeFiles/tufast_tests.dir/property_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/schedulers_test.cc.o"
  "CMakeFiles/tufast_tests.dir/schedulers_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/sync_test.cc.o"
  "CMakeFiles/tufast_tests.dir/sync_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/tufast_scheduler_test.cc.o"
  "CMakeFiles/tufast_tests.dir/tufast_scheduler_test.cc.o.d"
  "CMakeFiles/tufast_tests.dir/util_test.cc.o"
  "CMakeFiles/tufast_tests.dir/util_test.cc.o.d"
  "tufast_tests"
  "tufast_tests.pdb"
  "tufast_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tufast_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
