# Empty compiler generated dependencies file for tufast_tests.
# This may be replaced when dependencies are built.
