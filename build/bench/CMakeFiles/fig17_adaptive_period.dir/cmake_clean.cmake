file(REMOVE_RECURSE
  "CMakeFiles/fig17_adaptive_period.dir/fig17_adaptive_period.cc.o"
  "CMakeFiles/fig17_adaptive_period.dir/fig17_adaptive_period.cc.o.d"
  "fig17_adaptive_period"
  "fig17_adaptive_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_adaptive_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
