# Empty dependencies file for fig17_adaptive_period.
# This may be replaced when dependencies are built.
