file(REMOVE_RECURSE
  "CMakeFiles/fig13_throughput_rm.dir/fig13_throughput_rm.cc.o"
  "CMakeFiles/fig13_throughput_rm.dir/fig13_throughput_rm.cc.o.d"
  "fig13_throughput_rm"
  "fig13_throughput_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_throughput_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
