# Empty compiler generated dependencies file for fig13_throughput_rm.
# This may be replaced when dependencies are built.
