# Empty compiler generated dependencies file for fig15_mode_breakdown.
# This may be replaced when dependencies are built.
