file(REMOVE_RECURSE
  "CMakeFiles/fig06_contention_heatmap.dir/fig06_contention_heatmap.cc.o"
  "CMakeFiles/fig06_contention_heatmap.dir/fig06_contention_heatmap.cc.o.d"
  "fig06_contention_heatmap"
  "fig06_contention_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_contention_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
