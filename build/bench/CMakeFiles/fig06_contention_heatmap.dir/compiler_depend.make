# Empty compiler generated dependencies file for fig06_contention_heatmap.
# This may be replaced when dependencies are built.
