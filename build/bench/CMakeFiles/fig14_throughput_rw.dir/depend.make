# Empty dependencies file for fig14_throughput_rw.
# This may be replaced when dependencies are built.
