file(REMOVE_RECURSE
  "CMakeFiles/fig14_throughput_rw.dir/fig14_throughput_rw.cc.o"
  "CMakeFiles/fig14_throughput_rw.dir/fig14_throughput_rw.cc.o.d"
  "fig14_throughput_rw"
  "fig14_throughput_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_throughput_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
