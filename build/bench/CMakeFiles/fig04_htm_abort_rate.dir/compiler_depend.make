# Empty compiler generated dependencies file for fig04_htm_abort_rate.
# This may be replaced when dependencies are built.
