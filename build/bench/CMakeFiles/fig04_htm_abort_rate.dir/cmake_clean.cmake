file(REMOVE_RECURSE
  "CMakeFiles/fig04_htm_abort_rate.dir/fig04_htm_abort_rate.cc.o"
  "CMakeFiles/fig04_htm_abort_rate.dir/fig04_htm_abort_rate.cc.o.d"
  "fig04_htm_abort_rate"
  "fig04_htm_abort_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_htm_abort_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
