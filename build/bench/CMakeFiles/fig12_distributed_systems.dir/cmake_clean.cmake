file(REMOVE_RECURSE
  "CMakeFiles/fig12_distributed_systems.dir/fig12_distributed_systems.cc.o"
  "CMakeFiles/fig12_distributed_systems.dir/fig12_distributed_systems.cc.o.d"
  "fig12_distributed_systems"
  "fig12_distributed_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_distributed_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
