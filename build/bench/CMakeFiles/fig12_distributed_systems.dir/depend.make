# Empty dependencies file for fig12_distributed_systems.
# This may be replaced when dependencies are built.
