file(REMOVE_RECURSE
  "CMakeFiles/fig07_scheduler_vs_contention.dir/fig07_scheduler_vs_contention.cc.o"
  "CMakeFiles/fig07_scheduler_vs_contention.dir/fig07_scheduler_vs_contention.cc.o.d"
  "fig07_scheduler_vs_contention"
  "fig07_scheduler_vs_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_scheduler_vs_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
