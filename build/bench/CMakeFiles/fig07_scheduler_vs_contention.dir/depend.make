# Empty dependencies file for fig07_scheduler_vs_contention.
# This may be replaced when dependencies are built.
