file(REMOVE_RECURSE
  "CMakeFiles/fig11_multicore_systems.dir/fig11_multicore_systems.cc.o"
  "CMakeFiles/fig11_multicore_systems.dir/fig11_multicore_systems.cc.o.d"
  "fig11_multicore_systems"
  "fig11_multicore_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_multicore_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
