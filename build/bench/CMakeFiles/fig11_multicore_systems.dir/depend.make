# Empty dependencies file for fig11_multicore_systems.
# This may be replaced when dependencies are built.
