
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pagerank_convergence.cpp" "examples/CMakeFiles/pagerank_convergence.dir/pagerank_convergence.cpp.o" "gcc" "examples/CMakeFiles/pagerank_convergence.dir/pagerank_convergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/tufast_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/tufast_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_support/CMakeFiles/tufast_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tufast_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tufast_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tufast_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/tufast_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tufast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
