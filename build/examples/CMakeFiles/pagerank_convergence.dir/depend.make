# Empty dependencies file for pagerank_convergence.
# This may be replaced when dependencies are built.
