file(REMOVE_RECURSE
  "CMakeFiles/pagerank_convergence.dir/pagerank_convergence.cpp.o"
  "CMakeFiles/pagerank_convergence.dir/pagerank_convergence.cpp.o.d"
  "pagerank_convergence"
  "pagerank_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
