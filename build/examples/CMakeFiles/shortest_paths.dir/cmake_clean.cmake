file(REMOVE_RECURSE
  "CMakeFiles/shortest_paths.dir/shortest_paths.cpp.o"
  "CMakeFiles/shortest_paths.dir/shortest_paths.cpp.o.d"
  "shortest_paths"
  "shortest_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortest_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
