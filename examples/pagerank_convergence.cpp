// PageRank with in-place (Gauss-Seidel) updates vs bulk-synchronous
// (Jacobi) double buffering: TuFast transactions always read the
// freshest neighbor ranks, so information propagates within an
// iteration and convergence needs fewer sweeps — the paper's explanation
// for its PageRank advantage over BSP systems (Fig. 11 discussion).
//
//   ./pagerank_convergence [num_vertices] [num_edges]

#include <cstdio>
#include <cstdlib>

#include "algorithms/pagerank.h"
#include "common/timer.h"
#include "engines/bsp_algorithms.h"
#include "engines/bsp_engine.h"
#include "graph/generators.h"
#include "htm/emulated_htm.h"
#include "runtime/thread_pool.h"
#include "tm/tufast.h"

namespace {

int Main(int argc, char** argv) {
  using namespace tufast;
  const VertexId n = argc > 1 ? std::atoi(argv[1]) : 30000;
  const EdgeId m = argc > 2 ? std::atoll(argv[2]) : n * 12;
  constexpr double kTolerance = 1e-10;
  constexpr int kMaxIters = 200;

  const Graph graph = GeneratePowerLaw(n, m, /*seed=*/3, {.alpha = 0.75});
  const Graph reversed = graph.Reversed();
  ThreadPool pool(4);

  EmulatedHtm htm;
  TuFast tm(htm, graph.NumVertices());
  WallTimer timer;
  const PageRankResult in_place = PageRankTm(
      tm, pool, graph, reversed,
      {.max_iterations = kMaxIters, .tolerance = kTolerance});
  const double tm_ms = timer.ElapsedMillis();

  BspEngine bsp(pool, BspDelivery::kDirect);
  timer.Restart();
  const BspPageRankResult jacobi =
      BspPageRank(bsp, graph, 0.85, kMaxIters, kTolerance);
  const double bsp_ms = timer.ElapsedMillis();

  double max_diff = 0;
  for (VertexId v = 0; v < n; ++v) {
    const double d = std::fabs(in_place.ranks[v] - jacobi.ranks[v]);
    if (d > max_diff) max_diff = d;
  }

  std::printf("PageRank to per-vertex tolerance %.0e on |V|=%u |E|=%llu:\n",
              kTolerance, n, static_cast<unsigned long long>(m));
  std::printf("  TuFast in-place (Gauss-Seidel): %3d iterations, %8.1f ms\n",
              in_place.iterations, tm_ms);
  std::printf("  BSP double-buffered (Jacobi):   %3d iterations, %8.1f ms\n",
              jacobi.iterations, bsp_ms);
  std::printf("  max |rank difference| = %.2e (same fixed point)\n",
              max_diff);
  std::printf(
      "in-place updates converge in fewer sweeps because fresh ranks "
      "propagate\nmulti-hop within one iteration — the effect BSP's "
      "super-step barrier forbids.\n");
  return in_place.iterations <= jacobi.iterations ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
