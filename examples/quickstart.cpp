// Quickstart: parallel greedy maximal matching — the paper's flagship
// example (Fig. 1). A transaction atomically pairs an unmatched vertex
// with its first unmatched neighbor; TuFast's hybrid TM makes the
// sequential-looking code safe to run on every vertex in parallel.
//
//   ./quickstart [num_vertices] [num_edges]

#include <cstdio>
#include <cstdlib>

#include "algorithms/matching.h"
#include "algorithms/reference.h"
#include "common/timer.h"
#include "graph/degree_stats.h"
#include "graph/generators.h"
#include "htm/emulated_htm.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "tm/tufast.h"

namespace {

constexpr int kThreads = 4;

int Main(int argc, char** argv) {
  using namespace tufast;
  const VertexId n = argc > 1 ? std::atoi(argv[1]) : 50000;
  const EdgeId m = argc > 2 ? std::atoll(argv[2]) : n * 8;

  std::printf("generating a power-law graph: |V|=%u |E|=%llu...\n", n,
              static_cast<unsigned long long>(m));
  const Graph graph = GeneratePowerLaw(n, m, /*seed=*/1).Undirected();
  std::printf("max degree %u (HTM capacity is ~4096 words: the hybrid\n"
              "scheduler routes big vertices to O/L mode automatically)\n",
              graph.MaxOutDegree());

  // The TM universe: one HTM backend + one TuFast scheduler per data set.
  EmulatedHtm htm;
  TuFast tm(htm, graph.NumVertices());
  ThreadPool pool(kThreads);

  // Shared state accessed only through the transactional API.
  std::vector<TmWord> match(graph.NumVertices(), kUnmatched);

  WallTimer timer;
  ParallelFor(pool, 0, graph.NumVertices(), /*grain=*/128,
              [&](int worker, uint64_t i) {
                const VertexId v = static_cast<VertexId>(i);
                // This is Fig. 1 of the paper, almost verbatim:
                tm.Run(worker, graph.OutDegree(v) + 1, [&](auto& txn) {
                  if (txn.Read(v, &match[v]) != kUnmatched) return;
                  for (const VertexId u : graph.OutNeighbors(v)) {
                    if (u == v) continue;
                    if (txn.Read(u, &match[u]) == kUnmatched) {
                      txn.Write(v, &match[v], u);
                      txn.Write(u, &match[u], v);
                      return;
                    }
                  }
                });
              });
  const double ms = timer.ElapsedMillis();

  uint64_t matched = 0;
  for (const TmWord w : match) matched += (w != kUnmatched);
  const bool valid = ValidateMatching(
      graph, std::vector<uint64_t>(match.begin(), match.end()));
  const SchedulerStats stats = tm.AggregatedStats();

  std::printf("matched %llu of %u vertices in %.1f ms (%d threads)\n",
              static_cast<unsigned long long>(matched), graph.NumVertices(),
              ms, kThreads);
  std::printf("matching is %s and maximal\n", valid ? "VALID" : "BROKEN");
  std::printf("mode breakdown: H=%llu O=%llu O+=%llu O2L=%llu L=%llu\n",
              static_cast<unsigned long long>(stats.class_count[0]),
              static_cast<unsigned long long>(stats.class_count[1]),
              static_cast<unsigned long long>(stats.class_count[2]),
              static_cast<unsigned long long>(stats.class_count[3]),
              static_cast<unsigned long long>(stats.class_count[4]));
  return valid ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
