// Shortest paths, two ways from one program (the paper's Fig. 3 point):
// Bellman-Ford and SPFA are the SAME transactional relaxation code —
// only the worklist discipline differs (FIFO vs priority queue). Batched
// paradigms (BSP) cannot express this switch; TuFast's transactional
// semantics make it a one-argument change.
//
//   ./shortest_paths [num_vertices] [num_edges] [source]

#include <cstdio>
#include <cstdlib>

#include "algorithms/reference.h"
#include "algorithms/sssp.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "htm/emulated_htm.h"
#include "runtime/thread_pool.h"
#include "tm/tufast.h"

namespace {

int Main(int argc, char** argv) {
  using namespace tufast;
  const VertexId n = argc > 1 ? std::atoi(argv[1]) : 30000;
  const EdgeId m = argc > 2 ? std::atoll(argv[2]) : n * 10;
  const Graph graph =
      GeneratePowerLaw(n, m, /*seed=*/7, {.alpha = 0.7, .weighted = true});
  // Default source: the highest-out-degree vertex, so most of the graph
  // is reachable.
  VertexId source = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (graph.OutDegree(v) > graph.OutDegree(source)) source = v;
  }
  if (argc > 3) source = std::atoi(argv[3]);
  EmulatedHtm htm;
  TuFast tm(htm, graph.NumVertices());
  ThreadPool pool(4);

  WallTimer timer;
  const auto bf = SsspTm(tm, pool, graph, source, SsspDiscipline::kBellmanFord);
  const double bf_ms = timer.ElapsedMillis();

  timer.Restart();
  const auto spfa = SsspTm(tm, pool, graph, source, SsspDiscipline::kSpfa);
  const double spfa_ms = timer.ElapsedMillis();

  // Both must agree with Dijkstra.
  const auto expected = ReferenceSssp(graph, source);
  uint64_t reached = 0;
  for (size_t v = 0; v < expected.size(); ++v) {
    if (bf[v] != expected[v] || spfa[v] != expected[v]) {
      std::printf("MISMATCH at vertex %zu\n", v);
      return 1;
    }
    reached += expected[v] != ~uint64_t{0};
  }

  std::printf("single-source shortest paths from %u: %llu of %u reachable\n",
              source, static_cast<unsigned long long>(reached),
              graph.NumVertices());
  std::printf("  Bellman-Ford (FIFO queue):     %8.1f ms\n", bf_ms);
  std::printf("  SPFA (priority queue):         %8.1f ms\n", spfa_ms);
  std::printf("both verified against sequential Dijkstra.\n");
  std::printf(
      "the two runs share ALL relaxation code; only the worklist type "
      "differs\n(SsspDiscipline::kBellmanFord vs kSpfa) — the fine-grained "
      "scheduling freedom\nthe paper contrasts against BSP systems.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
