// Ad-hoc multi-stage analysis on one shared graph — the "programmer
// usability" scenario from the paper's introduction: compose connected
// components, a maximal independent set and triangle counting over the
// same in-memory graph with plain sequential-looking code, no paradigm
// rewrite per algorithm.
//
//   ./community_analysis [num_vertices] [num_edges]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "algorithms/coloring.h"
#include "algorithms/kcore.h"
#include "algorithms/mis.h"
#include "algorithms/reference.h"
#include "algorithms/triangle.h"
#include "algorithms/wcc.h"
#include "common/timer.h"
#include "graph/degree_stats.h"
#include "graph/generators.h"
#include "htm/emulated_htm.h"
#include "runtime/thread_pool.h"
#include "tm/tufast.h"

namespace {

int Main(int argc, char** argv) {
  using namespace tufast;
  const VertexId n = argc > 1 ? std::atoi(argv[1]) : 20000;
  const EdgeId m = argc > 2 ? std::atoll(argv[2]) : n * 6;

  const Graph graph =
      GeneratePowerLaw(n, m, /*seed=*/11, {.alpha = 0.7}).Undirected();
  const DegreeStats degrees = ComputeDegreeStats(graph);
  std::printf("graph: |V|=%u |E|=%llu avg_deg=%.1f max_deg=%u\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              degrees.average_degree, degrees.max_degree);

  EmulatedHtm htm;
  TuFast tm(htm, graph.NumVertices());
  ThreadPool pool(4);
  WallTimer timer;

  // Stage 1: connected components.
  const auto labels = WccTm(tm, pool, graph);
  std::map<TmWord, uint64_t> component_sizes;
  for (const TmWord label : labels) ++component_sizes[label];
  uint64_t largest = 0;
  for (const auto& [label, size] : component_sizes) {
    largest = std::max(largest, size);
  }
  std::printf("stage 1: %zu components, largest holds %llu vertices "
              "(%.1f%%) [%.1f ms]\n",
              component_sizes.size(),
              static_cast<unsigned long long>(largest),
              100.0 * largest / graph.NumVertices(), timer.ElapsedMillis());

  // Stage 2: a maximal independent set (e.g. seed selection).
  timer.Restart();
  const auto mis = MisTm(tm, pool, graph);
  const uint64_t in_set =
      static_cast<uint64_t>(std::count(mis.begin(), mis.end(), kMisIn));
  const bool mis_valid =
      ValidateMis(graph, std::vector<uint64_t>(mis.begin(), mis.end()));
  std::printf("stage 2: independent set of %llu vertices (%s) [%.1f ms]\n",
              static_cast<unsigned long long>(in_set),
              mis_valid ? "valid+maximal" : "BROKEN", timer.ElapsedMillis());

  // Stage 3: triangle count (clustering signal).
  timer.Restart();
  const uint64_t triangles = TriangleCountTm(tm, pool, graph);
  std::printf("stage 3: %llu triangles [%.1f ms]\n",
              static_cast<unsigned long long>(triangles),
              timer.ElapsedMillis());

  // Stage 4: k-core decomposition (densest-core detection).
  timer.Restart();
  const auto core = KCoreTm(tm, pool, graph);
  TmWord max_core = 0;
  for (const TmWord c : core) max_core = std::max(max_core, c);
  std::printf("stage 4: max core number %llu [%.1f ms]\n",
              static_cast<unsigned long long>(max_core),
              timer.ElapsedMillis());

  // Stage 5: greedy coloring (e.g. conflict-free update schedule).
  timer.Restart();
  const auto color = GreedyColoringTm(tm, pool, graph);
  TmWord palette = 0;
  for (const TmWord c : color) palette = std::max(palette, c);
  const bool coloring_valid = ValidateColoring(graph, color);
  std::printf("stage 5: proper coloring with %llu colors (%s) [%.1f ms]\n",
              static_cast<unsigned long long>(palette + 1),
              coloring_valid ? "valid" : "BROKEN", timer.ElapsedMillis());

  std::printf(
      "five analyses, one data representation, zero paradigm rewrites — "
      "every\nshared access went through the same five TM primitives "
      "(Table I).\n");
  return mis_valid && coloring_valid ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
