#ifndef TUFAST_GRAPH_GRAPH_H_
#define TUFAST_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/compiler.h"
#include "common/types.h"

namespace tufast {

/// Immutable directed graph in Compressed Sparse Row form. Out-edges of
/// vertex v are `targets[offsets[v] .. offsets[v+1])`; per-edge weights
/// (optional) sit at the same indices. Built via GraphBuilder or the
/// generators; loaded/saved by graph/io.h.
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> targets,
        std::vector<uint32_t> weights = {})
      : offsets_(std::move(offsets)),
        targets_(std::move(targets)),
        weights_(std::move(weights)) {
    TUFAST_CHECK(!offsets_.empty());
    TUFAST_CHECK(offsets_.back() == targets_.size());
    TUFAST_CHECK(weights_.empty() || weights_.size() == targets_.size());
  }

  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Explicit deep copy (copying multi-GB CSR must be deliberate).
  Graph Clone() const {
    return Graph(offsets_, targets_, weights_);
  }

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId NumEdges() const { return static_cast<EdgeId>(targets_.size()); }
  bool HasWeights() const { return !weights_.empty(); }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  std::span<const uint32_t> OutWeights(VertexId v) const {
    TUFAST_DCHECK(HasWeights());
    return {weights_.data() + offsets_[v],
            weights_.data() + offsets_[v + 1]};
  }

  /// Edge indices for v, to address weights and targets in parallel.
  EdgeId EdgeBegin(VertexId v) const { return offsets_[v]; }
  EdgeId EdgeEnd(VertexId v) const { return offsets_[v + 1]; }
  VertexId EdgeTarget(EdgeId e) const { return targets_[e]; }
  uint32_t EdgeWeight(EdgeId e) const { return weights_[e]; }

  /// Average out-degree |E| / |V|.
  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : static_cast<double>(NumEdges()) / NumVertices();
  }

  uint32_t MaxOutDegree() const {
    uint32_t max_degree = 0;
    for (VertexId v = 0; v < NumVertices(); ++v) {
      max_degree = std::max(max_degree, OutDegree(v));
    }
    return max_degree;
  }

  /// Approximate in-memory footprint (for Table II style reporting).
  size_t SizeBytes() const {
    return offsets_.size() * sizeof(EdgeId) +
           targets_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(uint32_t);
  }

  /// Graph with every edge direction flipped (same weights).
  Graph Reversed() const;

  /// Symmetric closure: for every edge (u,v) ensures (v,u) exists too,
  /// deduplicated. Used by MIS/matching, which the paper runs on
  /// undirected versions of the datasets.
  Graph Undirected() const;

  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }
  const std::vector<uint32_t>& weights() const { return weights_; }

 private:
  std::vector<EdgeId> offsets_{0};
  std::vector<VertexId> targets_;
  std::vector<uint32_t> weights_;
};

}  // namespace tufast

#endif  // TUFAST_GRAPH_GRAPH_H_
