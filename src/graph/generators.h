#ifndef TUFAST_GRAPH_GENERATORS_H_
#define TUFAST_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace tufast {

/// Synthetic graph generators. All are deterministic per seed. They stand
/// in for the paper's real datasets (friendster/twitter-mpi/sk-2005/
/// uk-2007-05), whose sizes exceed this environment — see DESIGN.md.

/// Erdős–Rényi G(n, m): m edges with independently uniform endpoints.
Graph GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                         uint64_t seed, bool weighted = false);

/// Power-law graph via Zipf-distributed endpoint sampling: endpoint rank
/// r is drawn with probability ∝ 1/(r+1)^alpha and ranks are scattered
/// over vertex ids by a pseudo-random permutation. Produces the heavy
/// right tail (huge max degree) the paper's design targets; alpha in
/// [0.5, 1.0] gives twitter-like skew.
struct PowerLawOptions {
  double alpha = 0.75;
  bool weighted = false;
  /// Skew only in-degree (targets Zipf, sources uniform) when false both
  /// endpoints are Zipf (skews out-degree too, like follower graphs).
  bool skew_both_endpoints = true;
};
Graph GeneratePowerLaw(VertexId num_vertices, EdgeId num_edges, uint64_t seed,
                       PowerLawOptions options = {});

/// Recursive-matrix (R-MAT) generator, Graph500 style. 2^scale vertices,
/// edge_factor * 2^scale edges, quadrant probabilities (a, b, c, d).
struct RmatOptions {
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c.
  bool weighted = false;
};
Graph GenerateRmat(uint32_t scale, uint32_t edge_factor, uint64_t seed,
                   RmatOptions options = {});

/// Regular graph: every vertex has exactly `degree` uniformly random
/// out-neighbors. The "even degree distribution" graph of paper Fig. 7.
Graph GenerateUniformDegree(VertexId num_vertices, uint32_t degree,
                            uint64_t seed, bool weighted = false);

}  // namespace tufast

#endif  // TUFAST_GRAPH_GENERATORS_H_
