#ifndef TUFAST_GRAPH_BUILDER_H_
#define TUFAST_GRAPH_BUILDER_H_

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace tufast {

/// Accumulates an edge list and materializes a CSR Graph. Neighbor lists
/// are sorted by target id (required by triangle counting and useful for
/// the ordered-access deadlock-prevention mode); exact duplicate edges
/// and self-loops are removed when the corresponding options are set.
class GraphBuilder {
 public:
  struct Options {
    bool remove_self_loops = true;
    bool remove_duplicate_edges = false;
    bool sort_neighbors = true;
  };

  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_buffered_edges() const { return sources_.size(); }

  void Reserve(size_t num_edges) {
    sources_.reserve(num_edges);
    targets_.reserve(num_edges);
  }

  void AddEdge(VertexId from, VertexId to) {
    sources_.push_back(from);
    targets_.push_back(to);
  }

  void AddEdge(VertexId from, VertexId to, uint32_t weight) {
    AddEdge(from, to);
    weights_.push_back(weight);
  }

  /// Builds the CSR; the builder is left empty afterwards.
  Graph Build(Options options);
  Graph Build() { return Build(Options{}); }

 private:
  VertexId num_vertices_;
  std::vector<VertexId> sources_;
  std::vector<VertexId> targets_;
  std::vector<uint32_t> weights_;
};

}  // namespace tufast

#endif  // TUFAST_GRAPH_BUILDER_H_
