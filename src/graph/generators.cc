#include "graph/generators.h"

#include "common/compiler.h"
#include "common/rng.h"
#include "graph/builder.h"

namespace tufast {

namespace {

constexpr uint32_t kMinWeight = 1;
constexpr uint32_t kMaxWeight = 100;

uint32_t RandomWeight(Rng& rng) {
  return kMinWeight +
         static_cast<uint32_t>(rng.NextBounded(kMaxWeight - kMinWeight + 1));
}

/// Cheap bijective scatter of rank -> vertex id so that hot (low-rank)
/// vertices are spread across the id space instead of clustering at 0,
/// which would put all of them on the same cache lines.
VertexId ScatterRank(uint64_t rank, VertexId n, uint64_t salt) {
  uint64_t x = rank;
  // Two rounds of a multiplicative permutation modulo n (n not required
  // to be prime; fall back to a salted hash-then-mod, accepting rare
  // collisions folding two ranks onto one vertex — harmless for degree
  // shape purposes because we re-probe once).
  uint64_t state = rank * 0x9e3779b97f4a7c15ULL + salt;
  x = SplitMix64(state);
  return static_cast<VertexId>(x % n);
}

}  // namespace

Graph GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                         uint64_t seed, bool weighted) {
  TUFAST_CHECK(num_vertices > 0);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  builder.Reserve(num_edges);
  for (EdgeId i = 0; i < num_edges; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (weighted) {
      builder.AddEdge(u, v, RandomWeight(rng));
    } else {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph GeneratePowerLaw(VertexId num_vertices, EdgeId num_edges, uint64_t seed,
                       PowerLawOptions options) {
  TUFAST_CHECK(num_vertices > 0);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  builder.Reserve(num_edges);
  const uint64_t salt = seed ^ 0xabcdef1234567890ULL;
  for (EdgeId i = 0; i < num_edges; ++i) {
    VertexId u;
    if (options.skew_both_endpoints) {
      u = ScatterRank(rng.NextZipf(num_vertices, options.alpha), num_vertices,
                      salt);
    } else {
      u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    }
    const VertexId v = ScatterRank(rng.NextZipf(num_vertices, options.alpha),
                                   num_vertices, salt);
    if (options.weighted) {
      builder.AddEdge(u, v, RandomWeight(rng));
    } else {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph GenerateRmat(uint32_t scale, uint32_t edge_factor, uint64_t seed,
                   RmatOptions options) {
  TUFAST_CHECK(scale >= 1 && scale <= 30);
  const VertexId n = VertexId{1} << scale;
  const EdgeId m = EdgeId{edge_factor} << scale;
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.Reserve(m);
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (EdgeId i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      // Noise the quadrant probabilities slightly per level (standard
      // Graph500 trick to avoid exact self-similarity artifacts).
      if (r < options.a) {
      } else if (r < ab) {
        v |= VertexId{1} << bit;
      } else if (r < abc) {
        u |= VertexId{1} << bit;
      } else {
        u |= VertexId{1} << bit;
        v |= VertexId{1} << bit;
      }
    }
    if (options.weighted) {
      builder.AddEdge(u, v, RandomWeight(rng));
    } else {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph GenerateUniformDegree(VertexId num_vertices, uint32_t degree,
                            uint64_t seed, bool weighted) {
  TUFAST_CHECK(num_vertices > 1);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  builder.Reserve(EdgeId{num_vertices} * degree);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (uint32_t d = 0; d < degree; ++d) {
      VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices - 1));
      if (v >= u) ++v;  // Uniform over all vertices except u.
      if (weighted) {
        builder.AddEdge(u, v, RandomWeight(rng));
      } else {
        builder.AddEdge(u, v);
      }
    }
  }
  return builder.Build({.remove_self_loops = false});
}

}  // namespace tufast
