#include "graph/dynamic/dynamic_graph.h"

#include <algorithm>

#include "graph/builder.h"

namespace tufast {

DynamicGraph::DynamicGraph(VertexId capacity, Options options)
    : capacity_(capacity),
      weighted_(options.weighted),
      heads_(capacity, 0),
      degree_(capacity, 0),
      chunks_(new std::atomic<Block*>[kMaxChunks]) {
  // target + 1 must stay clear of the tombstone pattern (low 32 = ~0).
  TUFAST_CHECK(capacity < 0xFFFFFFFEu);
  for (uint64_t c = 0; c < kMaxChunks; ++c) {
    chunks_[c].store(nullptr, std::memory_order_relaxed);
  }
}

DynamicGraph::~DynamicGraph() {
  for (uint64_t c = 0; c < kMaxChunks; ++c) {
    delete[] chunks_[c].load(std::memory_order_relaxed);
  }
}

std::unique_ptr<DynamicGraph> DynamicGraph::FromCsr(const Graph& g,
                                                    VertexId extra_capacity) {
  auto dyn = std::make_unique<DynamicGraph>(
      g.NumVertices() + extra_capacity, Options{.weighted = g.HasWeights()});
  dyn->LoadCsrQuiesced(g);
  return dyn;
}

uint64_t DynamicGraph::TotalLiveEdges() const {
  uint64_t total = 0;
  const VertexId n = NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    total += __atomic_load_n(&degree_[v], __ATOMIC_RELAXED);
  }
  return total;
}

uint64_t DynamicGraph::FreeListBlocks() const {
  SpinLockGuard guard(alloc_lock_);
  return free_blocks_.size();
}

uint64_t DynamicGraph::AllocateBlock() {
  {
    SpinLockGuard guard(alloc_lock_);
    if (!free_blocks_.empty()) {
      const uint64_t idx = free_blocks_.back();
      free_blocks_.pop_back();
      return idx;
    }
  }
  const uint64_t idx = allocated_blocks_.fetch_add(1, std::memory_order_acq_rel);
  TUFAST_CHECK(idx < kMaxChunks * kBlocksPerChunk);
  const uint64_t chunk = idx / kBlocksPerChunk;
  if (chunks_[chunk].load(std::memory_order_acquire) == nullptr) {
    SpinLockGuard guard(alloc_lock_);
    if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
      // Value-initialized: every slot of a fresh chunk reads as empty.
      chunks_[chunk].store(new Block[kBlocksPerChunk](),
                           std::memory_order_release);
    }
  }
  return idx;
}

void DynamicGraph::GrabSpares(size_t count, std::vector<uint64_t>* out) {
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) out->push_back(AllocateBlock());
}

void DynamicGraph::ReturnSpares(std::span<const uint64_t> spares) {
  if (spares.empty()) return;
  SpinLockGuard guard(alloc_lock_);
  free_blocks_.insert(free_blocks_.end(), spares.begin(), spares.end());
}

void DynamicGraph::WriteChainQuiesced(
    VertexId u, std::span<const std::pair<VertexId, uint32_t>> edges) {
  heads_[u] = 0;
  degree_[u] = edges.size();
  TmWord* link_addr = &heads_[u];
  size_t i = 0;
  while (i < edges.size()) {
    const uint64_t idx = AllocateBlock();
    Block* b = BlockAt(idx);
    for (int s = 0; s < kSlotsPerBlock && i < edges.size(); ++s, ++i) {
      b->slots[s] = EncodeSlot(edges[i].first,
                               weighted_ ? edges[i].second : 0);
    }
    *link_addr = idx + 1;
    link_addr = &b->next;
  }
  *link_addr = 0;
}

void DynamicGraph::ResetArenaQuiesced() {
  for (uint64_t c = 0; c < kMaxChunks; ++c) {
    delete[] chunks_[c].load(std::memory_order_relaxed);
    chunks_[c].store(nullptr, std::memory_order_relaxed);
  }
  allocated_blocks_.store(0, std::memory_order_relaxed);
  SpinLockGuard guard(alloc_lock_);
  free_blocks_.clear();
}

void DynamicGraph::CollectLiveQuiesced(
    VertexId u, std::vector<std::pair<VertexId, uint32_t>>* out) const {
  out->clear();
  TmWord link = heads_[u];
  while (link != 0) {
    const Block* b = BlockAt(link - 1);
    TUFAST_CHECK(b != nullptr);
    for (int s = 0; s < kSlotsPerBlock; ++s) {
      const TmWord sw = b->slots[s];
      if (SlotLive(sw)) out->emplace_back(SlotTarget(sw), SlotWeight(sw));
    }
    link = b->next;
  }
}

void DynamicGraph::LoadCsrQuiesced(const Graph& g) {
  TUFAST_CHECK(g.NumVertices() <= capacity_);
  ResetArenaQuiesced();
  std::fill(heads_.begin(), heads_.end(), 0);
  std::fill(degree_.begin(), degree_.end(), 0);
  num_vertices_.store(g.NumVertices(), std::memory_order_release);

  std::vector<std::pair<VertexId, uint32_t>> scratch;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    scratch.clear();
    const auto neighbors = g.OutNeighbors(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      scratch.emplace_back(neighbors[i],
                           g.HasWeights() ? g.OutWeights(u)[i] : 0);
    }
    // Upsert semantics require duplicate-free chains: collapse duplicate
    // targets keeping the first weight.
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    scratch.erase(std::unique(scratch.begin(), scratch.end(),
                              [](const auto& a, const auto& b) {
                                return a.first == b.first;
                              }),
                  scratch.end());
    WriteChainQuiesced(u, scratch);
  }
}

Graph DynamicGraph::Freeze() const {
  const VertexId n = NumVertices();
  GraphBuilder builder(n);
  builder.Reserve(TotalLiveEdges());
  std::vector<std::pair<VertexId, uint32_t>> scratch;
  for (VertexId u = 0; u < n; ++u) {
    CollectLiveQuiesced(u, &scratch);
    for (const auto& [target, weight] : scratch) {
      if (weighted_) {
        builder.AddEdge(u, target, weight);
      } else {
        builder.AddEdge(u, target);
      }
    }
  }
  // The dynamic store already owns dedup/self-loop policy; the snapshot
  // must reflect its contents verbatim (sorted for the algorithm suite).
  return builder.Build({.remove_self_loops = false,
                        .remove_duplicate_edges = false,
                        .sort_neighbors = true});
}

void DynamicGraph::CompactQuiesced() {
  const VertexId n = NumVertices();
  std::vector<std::vector<std::pair<VertexId, uint32_t>>> live(n);
  for (VertexId u = 0; u < n; ++u) CollectLiveQuiesced(u, &live[u]);
  ResetArenaQuiesced();
  for (VertexId u = 0; u < n; ++u) WriteChainQuiesced(u, live[u]);
}

namespace {

/// Transaction-shaped shim over plain memory for the quiesced apply
/// path. Deliberately has no WalNote: replaying a recovered record must
/// not re-log it.
struct QuiescedShim {
  TmWord Read(VertexId /*v*/, const TmWord* addr) { return *addr; }
  TmWord ReadForUpdate(VertexId /*v*/, const TmWord* addr) { return *addr; }
  void Write(VertexId /*v*/, TmWord* addr, TmWord value) { *addr = value; }
};

}  // namespace

void DynamicGraph::ApplyQuiescedUpdate(const EdgeUpdate& up,
                                       ApplyResult* res) {
  TUFAST_CHECK(up.src < NumVertices());
  TUFAST_CHECK(up.dst < capacity_);
  std::vector<uint64_t> spares;
  if (up.op == EdgeUpdate::Op::kInsert) GrabSpares(1, &spares);
  size_t spares_used = 0;
  ApplyResult local;
  QuiescedShim shim;
  ApplyOneInTxn(shim, up.src, up, spares, &spares_used, &local);
  ReturnSpares(std::span<const uint64_t>(spares).subspan(spares_used));
  if (res != nullptr) res->Merge(local);
}

void DynamicGraph::EnsureVerticesQuiesced(VertexId n) {
  TUFAST_CHECK(n <= capacity_);
  const VertexId cur = num_vertices_.load(std::memory_order_relaxed);
  if (n <= cur) return;
  for (VertexId v = cur; v < n; ++v) {
    heads_[v] = 0;
    degree_[v] = 0;
  }
  num_vertices_.store(n, std::memory_order_release);
}

std::optional<std::string> DynamicGraph::CheckInvariantsQuiesced() const {
  const VertexId n = NumVertices();
  const uint64_t allocated = AllocatedBlocks();
  std::vector<VertexId> targets;
  for (VertexId u = 0; u < n; ++u) {
    targets.clear();
    uint64_t chain_len = 0;
    TmWord link = heads_[u];
    while (link != 0) {
      if (link - 1 >= allocated) {
        return "vertex " + std::to_string(u) + ": block index " +
               std::to_string(link - 1) + " out of range";
      }
      if (++chain_len > allocated) {
        return "vertex " + std::to_string(u) + ": adjacency chain cycle";
      }
      const Block* b = BlockAt(link - 1);
      for (int s = 0; s < kSlotsPerBlock; ++s) {
        if (SlotLive(b->slots[s])) targets.push_back(SlotTarget(b->slots[s]));
      }
      link = b->next;
    }
    if (targets.size() != degree_[u]) {
      return "vertex " + std::to_string(u) + ": degree counter " +
             std::to_string(degree_[u]) + " != " +
             std::to_string(targets.size()) + " live slots";
    }
    std::sort(targets.begin(), targets.end());
    if (std::adjacent_find(targets.begin(), targets.end()) != targets.end()) {
      return "vertex " + std::to_string(u) + ": duplicate live target";
    }
    for (const VertexId t : targets) {
      if (t >= capacity_) {
        return "vertex " + std::to_string(u) + ": target " +
               std::to_string(t) + " out of range";
      }
    }
  }
  return std::nullopt;
}

}  // namespace tufast
