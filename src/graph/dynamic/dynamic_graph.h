#ifndef TUFAST_GRAPH_DYNAMIC_DYNAMIC_GRAPH_H_
#define TUFAST_GRAPH_DYNAMIC_DYNAMIC_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/compiler.h"
#include "common/spin.h"
#include "common/types.h"
#include "graph/builder.h"
#include "graph/dynamic/edge_update.h"
#include "graph/graph.h"
#include "htm/htm_config.h"
#include "tm/batch_executor.h"
#include "tm/outcome.h"

namespace tufast {

/// One vertex's adjacency as observed by a single committed transaction:
/// the degree counter and every live slot, read atomically together.
struct VertexSnapshot {
  TmWord degree = 0;
  std::vector<std::pair<VertexId, uint32_t>> edges;
};

/// Mutable, concurrently-updatable directed graph whose every structural
/// mutation is one TuFast transaction (DESIGN.md "Dynamic-graph
/// subsystem").
///
/// Layout: per-vertex unrolled adjacency lists. Each block is exactly one
/// cache line — a `next` link word plus kSlotsPerBlock edge slots — so a
/// low-degree insert/delete touches O(1) lines and fits H mode. Slots
/// pack (target, weight) into one TmWord; deletes tombstone the slot in
/// place and later inserts reuse tombstones. Blocks live in a chunked
/// arena addressed by index (never by raw pointer), are never freed or
/// recycled while transactions run, and `next` words are write-once
/// (0 -> index), so a concurrent traversal can never follow a dangling or
/// cyclic chain even from a doomed optimistic read.
///
/// Concurrency contract: all words of vertex u (head, degree, every slot
/// of its chain) are guarded by u's lock in the shared per-vertex
/// LockTable, i.e. every transactional access passes `u` as the lock
/// vertex. A mutation therefore locks exactly one vertex, declares write
/// intent up front (ReadForUpdate), and can never deadlock — safe under
/// all three deadlock policies, including kPrevention's no-upgrade
/// contract. Read-only snapshots take shared mode only.
///
/// The live degree counter doubles as the `size_hint` source for
/// TuFast::Run() (SizeHintFor): low-degree vertices route to H, hubs to
/// O/L, exactly the paper's §IV degree heuristic applied to writes.
///
/// Quiesced-only operations (Freeze, LoadCsrQuiesced, CompactQuiesced,
/// TotalLiveEdges, CheckInvariantsQuiesced) require that no transaction
/// is in flight; they scan or rebuild without instrumentation.
class DynamicGraph {
 public:
  static constexpr int kSlotsPerBlock = 7;

  struct Options {
    /// Weighted graphs store and Freeze() per-edge weights; unweighted
    /// ones ignore the weight operand everywhere.
    bool weighted = false;
  };

  explicit DynamicGraph(VertexId capacity)
      : DynamicGraph(capacity, Options{}) {}
  DynamicGraph(VertexId capacity, Options options);
  ~DynamicGraph();
  TUFAST_DISALLOW_COPY_AND_MOVE(DynamicGraph);

  /// Builds a dynamic store pre-loaded from an immutable CSR (quiesced
  /// bulk load, no transactions). Duplicate (u, v) edges in the source
  /// collapse to one slot keeping the first weight; capacity is
  /// `g.NumVertices() + extra_capacity` to leave room for AddVertex.
  static std::unique_ptr<DynamicGraph> FromCsr(const Graph& g,
                                               VertexId extra_capacity = 0);

  VertexId capacity() const { return capacity_; }
  VertexId NumVertices() const {
    return num_vertices_.load(std::memory_order_acquire);
  }
  bool HasWeights() const { return weighted_; }

  /// Racy (relaxed) live degree — the Run() size-hint source. Exact only
  /// when quiesced.
  uint32_t ApproxDegree(VertexId v) const {
    return static_cast<uint32_t>(
        __atomic_load_n(&degree_[v], __ATOMIC_RELAXED));
  }

  /// Degree-derived transaction size hint: a mutation scans every slot of
  /// the chain (live + tombstones) plus the link/degree words, so the
  /// live degree is the cheap lower bound that routes hub-vertex
  /// mutations out of H mode (paper §IV degree heuristic).
  uint64_t SizeHintFor(VertexId v) const {
    return uint64_t{ApproxDegree(v)} + kSlotsPerBlock + 2;
  }

  /// Sum of all degree counters. Exact when quiesced; racy otherwise.
  uint64_t TotalLiveEdges() const;

  /// Arena introspection (tests: tombstone reuse, compaction).
  uint64_t AllocatedBlocks() const {
    return allocated_blocks_.load(std::memory_order_acquire);
  }
  uint64_t FreeListBlocks() const;

  // -------------------------------------------------------------------
  // Transactional mutation API. Every call is one (or, for ApplyBatch,
  // one per source-vertex group) scheduler transaction; `worker` is the
  // caller's worker slot, `tm` any scheduler with the Run(worker, hint,
  // body) shape (TuFast or any baseline).

  /// Inserts edge (u, v). Returns true if the edge is new; if it already
  /// exists this is an upsert (weight rewritten on weighted graphs) and
  /// returns false.
  template <typename Scheduler>
  bool InsertEdge(Scheduler& tm, int worker, VertexId u, VertexId v,
                  uint32_t weight = 0) {
    const EdgeUpdate up = EdgeUpdate::Insert(u, v, weight);
    ApplyResult result;
    ApplyGroup(tm, worker, u, {&up, 1}, &result);
    return result.inserted == 1;
  }

  /// Deletes edge (u, v). Returns true if it was present.
  template <typename Scheduler>
  bool DeleteEdge(Scheduler& tm, int worker, VertexId u, VertexId v) {
    const EdgeUpdate up = EdgeUpdate::Delete(u, v);
    ApplyResult result;
    ApplyGroup(tm, worker, u, {&up, 1}, &result);
    return result.removed == 1;
  }

  /// Rewrites the weight of an existing edge; never inserts. Returns true
  /// if the edge was present.
  template <typename Scheduler>
  bool UpdateWeight(Scheduler& tm, int worker, VertexId u, VertexId v,
                    uint32_t weight) {
    const EdgeUpdate up = EdgeUpdate::Reweight(u, v, weight);
    ApplyResult result;
    ApplyGroup(tm, worker, u, {&up, 1}, &result);
    return result.updated == 1;
  }

  /// Appends a fresh vertex (empty adjacency) and returns its id. The id
  /// is claimed atomically; the transaction formalizes the (already
  /// zeroed) per-vertex words so the new vertex is born under TM
  /// visibility rules.
  template <typename Scheduler>
  VertexId AddVertex(Scheduler& tm, int worker) {
    const VertexId id = num_vertices_.fetch_add(1, std::memory_order_acq_rel);
    TUFAST_CHECK(id < capacity_);
    tm.Run(worker, 2, [&](auto& txn) {
      txn.Write(id, &heads_[id], 0);
      txn.Write(id, &degree_[id], 0);
    });
    return id;
  }

  /// Applies a batch of mixed updates, grouping them by source vertex so
  /// each group is ONE transaction (amortizing Run() overhead and lock
  /// traffic across a vertex's updates). Groups preserve the relative
  /// order of a vertex's updates; cross-vertex order is not preserved
  /// (each group commits independently). Groups run through the batch
  /// executor (tm/batch_executor.h), so on TuFast several small groups
  /// fuse into one H-mode region; per-group private state (spares,
  /// tallies) keeps each group independently idempotent as the fused
  /// contract requires.
  template <typename Scheduler>
  ApplyResult ApplyBatch(Scheduler& tm, int worker,
                         std::span<const EdgeUpdate> updates) {
    ApplyResult result;
    if (updates.empty()) return result;
    // Stable order-by-source: indices, not copies, to keep per-vertex
    // update order intact.
    std::vector<uint32_t> order(updates.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return updates[a].src < updates[b].src;
                     });
    struct GroupCtx {
      VertexId u = 0;
      std::vector<EdgeUpdate> updates;
      std::vector<uint64_t> spares;
      size_t spares_used = 0;
      ApplyResult local;
    };
    std::vector<GroupCtx> groups;
    size_t i = 0;
    while (i < order.size()) {
      GroupCtx& ctx = groups.emplace_back();
      ctx.u = updates[order[i]].src;
      size_t inserts = 0;
      for (; i < order.size() && updates[order[i]].src == ctx.u; ++i) {
        ctx.updates.push_back(updates[order[i]]);
        if (ctx.updates.back().op == EdgeUpdate::Op::kInsert) ++inserts;
      }
      // Spares are pre-allocated outside the transactions (allocation
      // inside a hardware region would abort real HTM).
      if (inserts > 0) {
        GrabSpares((inserts + kSlotsPerBlock - 1) / kSlotsPerBlock,
                   &ctx.spares);
      }
    }
    RunBatch(
        tm, worker, 0, groups.size(),
        [&](uint64_t g) {
          return SizeHintFor(groups[g].u) + 2 * groups[g].updates.size();
        },
        [&](auto& txn, uint64_t g) {
          GroupCtx& ctx = groups[g];
          ctx.local = ApplyResult{};  // Reset private state: re-executes.
          ctx.spares_used = 0;
          for (const EdgeUpdate& up : ctx.updates) {
            ApplyOneInTxn(txn, ctx.u, up, ctx.spares, &ctx.spares_used,
                          &ctx.local);
          }
        });
    // RunBatch only returns after every group committed (no user aborts
    // here), so the private tallies reflect the committed executions.
    for (GroupCtx& ctx : groups) {
      ReturnSpares(
          std::span<const uint64_t>(ctx.spares).subspan(ctx.spares_used));
      result.Merge(ctx.local);
    }
    return result;
  }

  /// Walks vertex u's adjacency chain inside an already-open transaction
  /// (or MVCC snapshot) context, invoking `visit(target, weight)` for
  /// every live slot. Returns false iff the walk was cut short — the
  /// chain outran `bound` or a link pointed at an unpublished block.
  /// On a consistent read that means the bound itself was stale (the
  /// arena grew since it was computed), never a real cycle: links are
  /// write-once and blocks are not recycled while transactions run. On a
  /// doomed optimistic read the dangling values are garbage and commit
  /// will fail anyway.
  template <typename Txn, typename Visitor>
  bool VisitAdjacencyInTxn(Txn& txn, VertexId u, uint64_t bound,
                           Visitor&& visit) const {
    TmWord link = txn.Read(u, &heads_[u]);
    uint64_t steps = 0;
    while (link != 0) {
      if (steps++ >= bound) return false;
      const Block* b = BlockAt(link - 1);
      if (b == nullptr) return false;
      for (int s = 0; s < kSlotsPerBlock; ++s) {
        const TmWord sw = txn.Read(u, &b->slots[s]);
        if (SlotLive(sw)) visit(SlotTarget(sw), SlotWeight(sw));
      }
      link = txn.Read(u, &b->next);
    }
    return true;
  }

  /// Reads one vertex's degree counter and live adjacency in a single
  /// transaction (shared mode only — never blocks writers into upgrade
  /// deadlocks). The committed snapshot is per-vertex atomic: the stress
  /// suite checks `out->degree == out->edges.size()` and target
  /// uniqueness against it.
  ///
  /// A truncated walk must never surface as success: if the transaction
  /// COMMITTED but the chain outran the traversal bound, the reads were
  /// provably consistent (validation passed), so the bound was stale —
  /// the walk is retried with a widened bound instead of silently
  /// returning partial edges. Doomed-read garbage never reaches the
  /// caller because those transactions fail validation and re-execute.
  template <typename Scheduler>
  RunOutcome ReadVertexSnapshot(Scheduler& tm, int worker, VertexId u,
                                VertexSnapshot* out) const {
    uint64_t slack = 0;
    for (int attempt = 0;; ++attempt) {
      bool complete = false;
      RunOutcome rc = tm.Run(worker, SizeHintFor(u), [&](auto& txn) {
        out->edges.clear();
        out->degree = txn.Read(u, &degree_[u]);
        complete = VisitAdjacencyInTxn(
            txn, u, TraversalBound() + slack, [&](VertexId t, uint32_t w) {
              out->edges.emplace_back(t, w);
            });
      });
      if (!rc.committed || complete) return rc;
      // A consistent chain is never longer than the arena, so a fresh
      // bound + doubling slack must terminate; the cap is a backstop.
      TUFAST_CHECK(attempt < 64);
      slack = slack == 0 ? TraversalBound() : slack * 2;
    }
  }

  /// Read-only variant running under Scheduler::RunReadOnly: with MVCC
  /// enabled it resolves every word against one commit-timestamp
  /// snapshot and can never abort; without MVCC it degrades to
  /// ReadVertexSnapshot semantics through an ordinary transaction.
  template <typename Scheduler>
  RunOutcome ReadVertexSnapshotRO(Scheduler& tm, int worker, VertexId u,
                                  VertexSnapshot* out) const {
    uint64_t slack = 0;
    for (int attempt = 0;; ++attempt) {
      bool complete = false;
      RunOutcome rc = tm.RunReadOnly(worker, SizeHintFor(u), [&](auto& txn) {
        out->edges.clear();
        out->degree = txn.Read(u, &degree_[u]);
        complete = VisitAdjacencyInTxn(
            txn, u, TraversalBound() + slack, [&](VertexId t, uint32_t w) {
              out->edges.emplace_back(t, w);
            });
      });
      if (!rc.committed || complete) return rc;
      TUFAST_CHECK(attempt < 64);
      slack = slack == 0 ? TraversalBound() : slack * 2;
    }
  }

  /// Transactionally frozen CSR: one read-only transaction scans every
  /// vertex, so with MVCC enabled this is a globally consistent cut of a
  /// LIVE graph (writers keep committing; the snapshot can never abort
  /// them or be aborted). Without MVCC the scan is one giant transaction
  /// — correct, but it serializes against every writer; prefer quiescing
  /// + Freeze() there. Neighbors come out sorted like Freeze().
  template <typename Scheduler>
  Graph FreezeSnapshotRO(Scheduler& tm, int worker) const {
    const VertexId n = NumVertices();
    std::vector<std::vector<std::pair<VertexId, uint32_t>>> adj;
    const uint64_t hint = TotalLiveEdges() + 2 * uint64_t{n} + 2;
    uint64_t slack = 0;
    for (int attempt = 0;; ++attempt) {
      bool complete = true;
      RunOutcome rc = tm.RunReadOnly(worker, hint, [&](auto& txn) {
        adj.assign(n, {});
        complete = true;
        const uint64_t bound = TraversalBound() + slack;
        for (VertexId u = 0; u < n && complete; ++u) {
          complete = VisitAdjacencyInTxn(
              txn, u, bound, [&](VertexId t, uint32_t w) {
                adj[u].emplace_back(t, w);
              });
        }
      });
      if (rc.committed && complete) break;
      TUFAST_CHECK(attempt < 64);
      if (rc.committed) slack = slack == 0 ? TraversalBound() : slack * 2;
    }
    GraphBuilder builder(n);
    for (VertexId u = 0; u < n; ++u) {
      for (const auto& [target, weight] : adj[u]) {
        if (weighted_) {
          builder.AddEdge(u, target, weight);
        } else {
          builder.AddEdge(u, target);
        }
      }
    }
    return builder.Build({.remove_self_loops = false,
                          .remove_duplicate_edges = false,
                          .sort_neighbors = true});
  }

  // -------------------------------------------------------------------
  // Quiesced operations (no transactions may be in flight).

  /// Immutable CSR snapshot: the existing algorithm suite and engines run
  /// on it unchanged. Neighbors come out sorted by target; weights are
  /// emitted iff the graph is weighted.
  Graph Freeze() const;

  /// Bulk-replaces the contents from a CSR (see FromCsr).
  void LoadCsrQuiesced(const Graph& g);

  /// Rebuilds every adjacency chain without tombstones or slack blocks
  /// and resets the arena — the reclamation pass for delete-heavy
  /// streams. Degrees and the frozen view are unchanged.
  void CompactQuiesced();

  /// Structural audit: degree counters match live-slot counts, no
  /// duplicate targets, chains are in-range and acyclic. Returns a
  /// violation description, or nullopt when consistent.
  std::optional<std::string> CheckInvariantsQuiesced() const;

  /// Applies one update without any transaction machinery (quiesced
  /// bulk path): WAL recovery replays committed records through this so
  /// the rebuild neither takes locks nor re-logs.
  void ApplyQuiescedUpdate(const EdgeUpdate& up, ApplyResult* res = nullptr);

  /// Grows the live-vertex count to at least `n` (quiesced), formalizing
  /// the zeroed per-vertex words like AddVertex does transactionally.
  void EnsureVerticesQuiesced(VertexId n);

 private:
  /// One cache line: a link word (block index + 1, 0 = end of chain)
  /// followed by kSlotsPerBlock edge slots.
  struct alignas(kCacheLineBytes) Block {
    TmWord next;
    TmWord slots[kSlotsPerBlock];
  };
  static_assert(sizeof(Block) == kCacheLineBytes);

  static constexpr uint64_t kBlocksPerChunk = 4096;
  static constexpr uint64_t kMaxChunks = 16384;

  // Slot encoding: 0 = never used, low-32 all-ones = tombstone, else
  // low 32 bits = target + 1 and high 32 bits = weight. Capacity is
  // checked at construction so target + 1 never collides with the
  // tombstone pattern.
  static constexpr TmWord kTombstoneSlot = 0xFFFFFFFFull;
  static TmWord EncodeSlot(VertexId target, uint32_t weight) {
    return (TmWord{weight} << 32) | (TmWord{target} + 1);
  }
  static bool SlotLive(TmWord sw) {
    const uint32_t low = static_cast<uint32_t>(sw);
    return low != 0 && low != 0xFFFFFFFFu;
  }
  static VertexId SlotTarget(TmWord sw) {
    return static_cast<VertexId>(static_cast<uint32_t>(sw) - 1);
  }
  static uint32_t SlotWeight(TmWord sw) {
    return static_cast<uint32_t>(sw >> 32);
  }

  Block* BlockAt(uint64_t idx) {
    if (TUFAST_UNLIKELY(idx >= kMaxChunks * kBlocksPerChunk)) return nullptr;
    Block* chunk =
        chunks_[idx / kBlocksPerChunk].load(std::memory_order_acquire);
    return chunk == nullptr ? nullptr : chunk + idx % kBlocksPerChunk;
  }
  const Block* BlockAt(uint64_t idx) const {
    return const_cast<DynamicGraph*>(this)->BlockAt(idx);
  }

 public:
  /// Upper bound on any consistent chain length, used to cut short
  /// traversals running on doomed (to-be-aborted) optimistic reads.
  /// Public so external chain walkers (VisitAdjacencyInTxn callers) can
  /// compute the bound themselves.
  uint64_t TraversalBound() const {
    const uint64_t forced =
        forced_traversal_bound_.load(std::memory_order_relaxed);
    if (TUFAST_UNLIKELY(forced != 0)) return forced;
    return allocated_blocks_.load(std::memory_order_acquire) + 2;
  }

 public:
  /// Test seam: forces TraversalBound() to `bound` (0 restores the real
  /// arena-derived bound). Lets the regression suite exercise the
  /// chain-outruns-bound path, which a fresh bound can otherwise never
  /// hit on a consistent read.
  void SetTraversalBoundForTest(uint64_t bound) {
    forced_traversal_bound_.store(bound, std::memory_order_relaxed);
  }

 private:

  /// Pops from the free list or bump-allocates (growing the arena by one
  /// zeroed chunk when crossed). Returned blocks are always all-zero.
  uint64_t AllocateBlock();
  void GrabSpares(size_t count, std::vector<uint64_t>* out);
  void ReturnSpares(std::span<const uint64_t> spares);

  /// Non-transactional chain writer for bulk load / compaction. `edges`
  /// must be duplicate-free.
  void WriteChainQuiesced(VertexId u,
                          std::span<const std::pair<VertexId, uint32_t>> edges);
  void ResetArenaQuiesced();
  void CollectLiveQuiesced(
      VertexId u, std::vector<std::pair<VertexId, uint32_t>>* out) const;

  /// One source-vertex group as a single transaction. Spare blocks for
  /// the worst-case insert count are pre-allocated outside the
  /// transaction (allocation inside a hardware transaction would abort
  /// real HTM); the body consumes them in order and is idempotent across
  /// re-executions, and unconsumed spares return to the free list still
  /// zeroed because every scheduler buffers writes until commit.
  template <typename Scheduler>
  void ApplyGroup(Scheduler& tm, int worker, VertexId u,
                  std::span<const EdgeUpdate> group, ApplyResult* result) {
    TUFAST_DCHECK(u < NumVertices());
    size_t inserts = 0;
    for (const EdgeUpdate& up : group) {
      TUFAST_DCHECK(up.src == u);
      TUFAST_DCHECK(up.dst < capacity_);
      if (up.op == EdgeUpdate::Op::kInsert) ++inserts;
    }
    std::vector<uint64_t> spares;
    if (inserts > 0) {
      GrabSpares((inserts + kSlotsPerBlock - 1) / kSlotsPerBlock, &spares);
    }

    ApplyResult local;
    size_t spares_used = 0;
    const uint64_t hint = SizeHintFor(u) + 2 * group.size();
    tm.Run(worker, hint, [&](auto& txn) {
      local = ApplyResult{};  // Reset private state: bodies re-execute.
      spares_used = 0;
      for (const EdgeUpdate& up : group) {
        ApplyOneInTxn(txn, u, up, spares, &spares_used, &local);
      }
    });
    // Run() only returns after a commit (no user aborts here), so the
    // private tallies reflect the committed execution.
    ReturnSpares(std::span<const uint64_t>(spares).subspan(spares_used));
    result->Merge(local);
  }

  template <typename Txn>
  void ApplyOneInTxn(Txn& txn, VertexId u, const EdgeUpdate& up,
                     std::span<const uint64_t> spares, size_t* spares_used,
                     ApplyResult* res) {
    // Durable builds: stage the logical mutation for the WAL. Staging is
    // idempotent across re-executions — aborted attempts clear the stage
    // (Reset / on_begin hook) before the body re-runs, so exactly the
    // committed execution's notes publish. Recovery's replay shim has no
    // WalNote, so replayed updates are not re-logged.
    if constexpr (requires { txn.WalNote(up); }) txn.WalNote(up);
    // Full-chain scan: the first matching slot decides presence; the
    // first dead slot is remembered for tombstone reuse; `link_addr`
    // ends at the tail's link word for appending a spare block. All
    // reads declare write intent so L mode takes the exclusive lock
    // immediately (no shared->exclusive upgrade can deadlock).
    TmWord* link_addr = &heads_[u];
    TmWord link = txn.ReadForUpdate(u, link_addr);
    TmWord* found_slot = nullptr;
    TmWord found_word = 0;
    TmWord* free_slot = nullptr;
    uint64_t steps = 0;
    const uint64_t bound = TraversalBound();
    while (link != 0 && found_slot == nullptr && steps++ < bound) {
      Block* b = BlockAt(link - 1);
      if (b == nullptr) break;  // Doomed-read garbage; commit will fail.
      for (int s = 0; s < kSlotsPerBlock; ++s) {
        const TmWord sw = txn.ReadForUpdate(u, &b->slots[s]);
        if (SlotLive(sw)) {
          if (SlotTarget(sw) == up.dst) {
            found_slot = &b->slots[s];
            found_word = sw;
            break;
          }
        } else if (free_slot == nullptr) {
          free_slot = &b->slots[s];
        }
      }
      if (found_slot != nullptr) break;
      link_addr = &b->next;
      link = txn.ReadForUpdate(u, link_addr);
    }

    switch (up.op) {
      case EdgeUpdate::Op::kInsert: {
        if (found_slot != nullptr) {  // Upsert.
          if (weighted_ && SlotWeight(found_word) != up.weight) {
            txn.Write(u, found_slot, EncodeSlot(up.dst, up.weight));
          }
          ++res->updated;
          return;
        }
        const TmWord word = EncodeSlot(up.dst, weighted_ ? up.weight : 0);
        if (free_slot != nullptr) {
          txn.Write(u, free_slot, word);
        } else {
          TUFAST_CHECK(*spares_used < spares.size());
          const uint64_t idx = spares[(*spares_used)++];
          Block* nb = BlockAt(idx);
          txn.Write(u, &nb->slots[0], word);
          txn.Write(u, link_addr, idx + 1);  // Publish: 0 -> index + 1.
        }
        const TmWord d = txn.ReadForUpdate(u, &degree_[u]);
        txn.Write(u, &degree_[u], d + 1);
        ++res->inserted;
        return;
      }
      case EdgeUpdate::Op::kDelete: {
        if (found_slot == nullptr) {
          ++res->missing;
          return;
        }
        txn.Write(u, found_slot, kTombstoneSlot);
        const TmWord d = txn.ReadForUpdate(u, &degree_[u]);
        txn.Write(u, &degree_[u], d - 1);
        ++res->removed;
        return;
      }
      case EdgeUpdate::Op::kUpdateWeight: {
        if (found_slot == nullptr) {
          ++res->missing;
          return;
        }
        if (weighted_ && SlotWeight(found_word) != up.weight) {
          txn.Write(u, found_slot, EncodeSlot(up.dst, up.weight));
        }
        ++res->updated;
        return;
      }
    }
  }

  const VertexId capacity_;
  const bool weighted_;
  std::atomic<VertexId> num_vertices_{0};

  /// Per-vertex chain head (block index + 1, 0 = empty) and live degree,
  /// both guarded by the vertex's lock.
  std::vector<TmWord> heads_;
  std::vector<TmWord> degree_;

  /// Chunked block arena: stable addresses, lock-free reads, growth
  /// under alloc_lock_. Blocks are recycled only through the free list
  /// (always zeroed) or a quiesced arena reset.
  std::unique_ptr<std::atomic<Block*>[]> chunks_;
  std::atomic<uint64_t> allocated_blocks_{0};
  std::atomic<uint64_t> forced_traversal_bound_{0};  // Test seam; 0 = off.
  mutable SpinLock alloc_lock_;  // Guards free_blocks_ + chunk growth.
  std::vector<uint64_t> free_blocks_;
};

}  // namespace tufast

#endif  // TUFAST_GRAPH_DYNAMIC_DYNAMIC_GRAPH_H_
