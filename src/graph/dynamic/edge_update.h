#ifndef TUFAST_GRAPH_DYNAMIC_EDGE_UPDATE_H_
#define TUFAST_GRAPH_DYNAMIC_EDGE_UPDATE_H_

#include <cstdint>

#include "common/types.h"

namespace tufast {

/// One streaming mutation. `weight` is ignored by kDelete and by
/// unweighted graphs. Lives in its own header (rather than
/// dynamic_graph.h) because the durability layer logs EdgeUpdates and
/// the tm/ hook seam must see the type without pulling in the full
/// DynamicGraph (which itself includes tm/batch_executor.h).
struct EdgeUpdate {
  enum class Op : uint8_t { kInsert = 0, kDelete, kUpdateWeight };

  Op op = Op::kInsert;
  VertexId src = 0;
  VertexId dst = 0;
  uint32_t weight = 0;

  static EdgeUpdate Insert(VertexId u, VertexId v, uint32_t w = 0) {
    return {Op::kInsert, u, v, w};
  }
  static EdgeUpdate Delete(VertexId u, VertexId v) {
    return {Op::kDelete, u, v, 0};
  }
  static EdgeUpdate Reweight(VertexId u, VertexId v, uint32_t w) {
    return {Op::kUpdateWeight, u, v, w};
  }
};

/// Per-call mutation outcome tally. `inserted - removed` is the committed
/// change to the live edge count — the quantity the edge-count
/// conservation stress invariant audits against TotalLiveEdges().
struct ApplyResult {
  uint64_t inserted = 0;  // new edges materialized
  uint64_t updated = 0;   // weight rewrites of already-present edges
  uint64_t removed = 0;   // live edges tombstoned
  uint64_t missing = 0;   // delete/reweight of an absent edge

  void Merge(const ApplyResult& other) {
    inserted += other.inserted;
    updated += other.updated;
    removed += other.removed;
    missing += other.missing;
  }
};

}  // namespace tufast

#endif  // TUFAST_GRAPH_DYNAMIC_EDGE_UPDATE_H_
