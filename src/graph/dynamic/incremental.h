#ifndef TUFAST_GRAPH_DYNAMIC_INCREMENTAL_H_
#define TUFAST_GRAPH_DYNAMIC_INCREMENTAL_H_

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "algorithms/pagerank.h"
#include "common/compiler.h"
#include "common/types.h"
#include "graph/dynamic/dynamic_graph.h"
#include "graph/graph.h"

namespace tufast {

/// Incremental analytics drivers for streaming update batches
/// (DESIGN.md "Dynamic-graph subsystem"). Both avoid from-scratch
/// recomputation where the mathematics allows it and degrade to an
/// explicit, observable rebuild where it does not; the test suite
/// cross-checks every path against from-scratch runs on the equivalent
/// frozen CSR.

/// Incremental weakly-connected components over an insert/delete stream,
/// treating every edge as undirected (WCC semantics — the from-scratch
/// comparison runs on the symmetric closure of the snapshot).
///
/// Insertions maintain components exactly with a union-find whose set
/// representative is always the minimum vertex id — the same label
/// WccTm/ReferenceWcc converge to, so labels compare for strict
/// equality. Deletions can split a component, which union-find cannot
/// express; a delete between currently-connected endpoints marks the
/// structure stale (NeedsRebuild) and the next RebuildFromSnapshot()
/// re-derives it from the frozen graph. Insert-only streams never
/// rebuild.
class IncrementalWcc {
 public:
  explicit IncrementalWcc(VertexId num_vertices) { EnsureVertices(num_vertices); }

  VertexId NumVertices() const {
    return static_cast<VertexId>(parent_.size());
  }

  /// Grows the vertex set (new vertices are singleton components).
  void EnsureVertices(VertexId n) {
    const VertexId old = NumVertices();
    if (n <= old) return;
    parent_.resize(n);
    std::iota(parent_.begin() + old, parent_.end(), old);
  }

  void OnInsert(VertexId u, VertexId v) {
    const VertexId ru = Find(u);
    const VertexId rv = Find(v);
    if (ru == rv) return;
    // Min-id union: the representative of a set is its smallest vertex.
    if (ru < rv) {
      parent_[rv] = ru;
    } else {
      parent_[ru] = rv;
    }
  }

  void OnDelete(VertexId u, VertexId v) {
    // Removing an edge inside a component may split it; union-find can't
    // un-merge, so flag for rebuild. (A delete across components was a
    // no-op edge and changes nothing.)
    if (Find(u) == Find(v)) needs_rebuild_ = true;
  }

  /// Routes a whole batch through OnInsert/OnDelete (weight updates are
  /// structure-neutral).
  void OnBatch(std::span<const EdgeUpdate> updates) {
    for (const EdgeUpdate& up : updates) {
      switch (up.op) {
        case EdgeUpdate::Op::kInsert: OnInsert(up.src, up.dst); break;
        case EdgeUpdate::Op::kDelete: OnDelete(up.src, up.dst); break;
        case EdgeUpdate::Op::kUpdateWeight: break;
      }
    }
  }

  bool NeedsRebuild() const { return needs_rebuild_; }

  /// Re-derives components from a (directed) snapshot — edge direction is
  /// ignored, matching WCC on the symmetric closure. Clears the rebuild
  /// flag.
  ///
  /// ALL derived state resets before the replay: the structure may track
  /// more vertices than the snapshot (EnsureVertices can outrun the
  /// frozen cut), and those extra vertices must come back as singletons
  /// rather than keep stale parent links into pre-rebuild components —
  /// shrinking parent_ to the snapshot size would even leave Find()
  /// indexing out of range for them.
  void RebuildFromSnapshot(const Graph& snapshot) {
    const VertexId n = std::max(NumVertices(), snapshot.NumVertices());
    parent_.assign(n, 0);
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
    needs_rebuild_ = false;
    for (VertexId u = 0; u < snapshot.NumVertices(); ++u) {
      for (const VertexId v : snapshot.OutNeighbors(u)) OnInsert(u, v);
    }
  }

  /// Rebuild against a LIVE DynamicGraph through one read-only
  /// transaction: with MVCC enabled on the scheduler this sees a single
  /// commit-timestamp cut without quiescing writers and can never abort.
  /// The body is retry-safe (derived state resets on every execution)
  /// for the non-MVCC fallback, where RunReadOnly is an ordinary
  /// transaction that may re-execute.
  template <typename Scheduler>
  RunOutcome RebuildFromLive(Scheduler& tm, int worker,
                             const DynamicGraph& graph) {
    const VertexId n = std::max(NumVertices(), graph.NumVertices());
    const uint64_t hint = graph.TotalLiveEdges() + 2 * uint64_t{n} + 2;
    uint64_t slack = 0;
    for (int attempt = 0;; ++attempt) {
      bool complete = true;
      RunOutcome rc = tm.RunReadOnly(worker, hint, [&](auto& txn) {
        parent_.assign(n, 0);
        std::iota(parent_.begin(), parent_.end(), VertexId{0});
        complete = true;
        const uint64_t bound = graph.TraversalBound() + slack;
        const VertexId live = graph.NumVertices();
        for (VertexId u = 0; u < live && complete; ++u) {
          complete = graph.VisitAdjacencyInTxn(
              txn, u, bound,
              [&](VertexId v, uint32_t /*weight*/) { OnInsert(u, v); });
        }
      });
      if (rc.committed && complete) {
        needs_rebuild_ = false;
        return rc;
      }
      if (!rc.committed) return rc;
      TUFAST_CHECK(attempt < 64);
      slack = slack == 0 ? graph.TraversalBound() : slack * 2;
    }
  }

  /// Component labels (min vertex id per component) — directly comparable
  /// to WccTm / ReferenceWcc output on the symmetric closure.
  std::vector<TmWord> Labels() const {
    std::vector<TmWord> labels(parent_.size());
    for (VertexId v = 0; v < NumVertices(); ++v) labels[v] = Find(v);
    return labels;
  }

  VertexId Find(VertexId v) const {
    VertexId root = v;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[v] != root) {  // Path compression.
      const VertexId next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }

 private:
  mutable std::vector<VertexId> parent_;
  bool needs_rebuild_ = false;
};

/// Incremental PageRank over snapshots: each Update() re-converges on the
/// latest frozen graph starting from the previous ranks (padded and
/// renormalized when the vertex set grew) instead of from uniform 1/n.
/// Small update batches barely move the stationary distribution, so the
/// warm start cuts iterations-to-tolerance sharply while converging to
/// the same fixed point as a from-scratch run (cross-checked in tests).
class IncrementalPageRank {
 public:
  explicit IncrementalPageRank(PageRankOptions options = {})
      : options_(options) {
    TUFAST_CHECK(options.initial_ranks == nullptr);  // Owned here.
  }

  /// `graph`/`reversed` are the frozen snapshot and its reverse (same
  /// contract as PageRankTm).
  template <typename Scheduler>
  PageRankResult Update(Scheduler& tm, ThreadPool& pool, const Graph& graph,
                        const Graph& reversed) {
    const VertexId n = graph.NumVertices();
    PageRankOptions options = options_;
    std::vector<double> seed;
    if (!ranks_.empty() && n > 0) {
      seed = ranks_;
      seed.resize(n, 1.0 / n);
      const double sum = std::accumulate(seed.begin(), seed.end(), 0.0);
      if (sum > 0) {
        for (double& r : seed) r /= sum;
      }
      options.initial_ranks = &seed;
    }
    PageRankResult result = PageRankTm(tm, pool, graph, reversed, options);
    ranks_ = result.ranks;
    return result;
  }

  /// Snapshot-and-update against a LIVE DynamicGraph: freezes a CSR cut
  /// through one read-only transaction (a single commit-timestamp
  /// snapshot when the scheduler has MVCC enabled — writers keep
  /// committing throughout) and warm-starts on it. The frozen cut is
  /// returned through `snapshot_out` when the caller wants to cross-check
  /// against a from-scratch run.
  template <typename Scheduler>
  PageRankResult UpdateFromLive(Scheduler& tm, ThreadPool& pool, int worker,
                                const DynamicGraph& graph,
                                Graph* snapshot_out = nullptr) {
    Graph snapshot = graph.FreezeSnapshotRO(tm, worker);
    Graph reversed = snapshot.Reversed();
    PageRankResult result = Update(tm, pool, snapshot, reversed);
    if (snapshot_out != nullptr) *snapshot_out = std::move(snapshot);
    return result;
  }

  const std::vector<double>& ranks() const { return ranks_; }
  void Reset() { ranks_.clear(); }

 private:
  const PageRankOptions options_;
  std::vector<double> ranks_;
};

}  // namespace tufast

#endif  // TUFAST_GRAPH_DYNAMIC_INCREMENTAL_H_
