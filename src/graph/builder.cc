#include "graph/builder.h"

#include <algorithm>
#include <numeric>

#include "common/compiler.h"

namespace tufast {

Graph GraphBuilder::Build(Options options) {
  const bool weighted = !weights_.empty();
  TUFAST_CHECK(!weighted || weights_.size() == sources_.size());

  const size_t num_input = sources_.size();
  std::vector<EdgeId> offsets(num_vertices_ + 1, 0);
  for (size_t i = 0; i < num_input; ++i) {
    TUFAST_CHECK(sources_[i] < num_vertices_ && targets_[i] < num_vertices_);
    if (options.remove_self_loops && sources_[i] == targets_[i]) continue;
    ++offsets[sources_[i] + 1];
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  std::vector<VertexId> targets(offsets.back());
  std::vector<uint32_t> weights(weighted ? offsets.back() : 0);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < num_input; ++i) {
    if (options.remove_self_loops && sources_[i] == targets_[i]) continue;
    const EdgeId pos = cursor[sources_[i]]++;
    targets[pos] = targets_[i];
    if (weighted) weights[pos] = weights_[i];
  }
  sources_.clear();
  targets_.clear();
  weights_.clear();

  if (options.sort_neighbors || options.remove_duplicate_edges) {
    std::vector<EdgeId> new_offsets(num_vertices_ + 1, 0);
    EdgeId write = 0;
    std::vector<std::pair<VertexId, uint32_t>> scratch;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      const EdgeId begin = offsets[v], end = offsets[v + 1];
      scratch.clear();
      for (EdgeId e = begin; e < end; ++e) {
        scratch.emplace_back(targets[e], weighted ? weights[e] : 0);
      }
      std::sort(scratch.begin(), scratch.end());
      if (options.remove_duplicate_edges) {
        scratch.erase(std::unique(scratch.begin(), scratch.end(),
                                  [](const auto& a, const auto& b) {
                                    return a.first == b.first;
                                  }),
                      scratch.end());
      }
      new_offsets[v] = write;
      for (const auto& [t, w] : scratch) {
        targets[write] = t;
        if (weighted) weights[write] = w;
        ++write;
      }
    }
    new_offsets[num_vertices_] = write;
    targets.resize(write);
    if (weighted) weights.resize(write);
    offsets = std::move(new_offsets);
  }

  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

Graph Graph::Reversed() const {
  GraphBuilder builder(NumVertices());
  builder.Reserve(NumEdges());
  const bool weighted = HasWeights();
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (EdgeId e = EdgeBegin(v); e < EdgeEnd(v); ++e) {
      if (weighted) {
        builder.AddEdge(EdgeTarget(e), v, EdgeWeight(e));
      } else {
        builder.AddEdge(EdgeTarget(e), v);
      }
    }
  }
  return builder.Build({.remove_self_loops = false});
}

Graph Graph::Undirected() const {
  GraphBuilder builder(NumVertices());
  builder.Reserve(NumEdges() * 2);
  const bool weighted = HasWeights();
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (EdgeId e = EdgeBegin(v); e < EdgeEnd(v); ++e) {
      if (weighted) {
        builder.AddEdge(v, EdgeTarget(e), EdgeWeight(e));
        builder.AddEdge(EdgeTarget(e), v, EdgeWeight(e));
      } else {
        builder.AddEdge(v, EdgeTarget(e));
        builder.AddEdge(EdgeTarget(e), v);
      }
    }
  }
  return builder.Build({.remove_duplicate_edges = true});
}

}  // namespace tufast
