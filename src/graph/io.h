#ifndef TUFAST_GRAPH_IO_H_
#define TUFAST_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace tufast {

/// Loads a SNAP-style text edge list: one `from to [weight]` per line,
/// `#`-prefixed comment lines ignored. Vertex ids need not be dense; the
/// graph is sized to max id + 1. Drop real datasets (e.g. friendster from
/// SNAP) into the benches through this entry point.
///
/// Lines of any length are handled as single logical lines (no internal
/// buffer limit splits them), errors report 1-based line numbers, and a
/// line longer than 1 MiB is rejected as corrupt input.
StatusOr<Graph> LoadEdgeList(const std::string& path);

/// Compact binary CSR format (magic + counts + raw arrays + CRC-32
/// footer), for fast reload of generated datasets between bench runs.
/// Writes version 2 ("tuFastG2"); the footer covers header and body.
Status SaveBinary(const Graph& graph, const std::string& path);

/// Loads a SaveBinary file — current "tuFastG2" (checksummed) or legacy
/// "tuFastG1" (no footer). The header's vertex/edge counts are checked
/// against the actual file size before anything is allocated, the CRC
/// footer (when present) is verified, and the CSR arrays are validated
/// (offsets start at 0, end at m, monotonic; targets in range) —
/// corrupt files yield InvalidArgument, never a bad_alloc or an
/// out-of-bounds graph.
StatusOr<Graph> LoadBinary(const std::string& path);

}  // namespace tufast

#endif  // TUFAST_GRAPH_IO_H_
