#ifndef TUFAST_GRAPH_IO_H_
#define TUFAST_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace tufast {

/// Loads a SNAP-style text edge list: one `from to [weight]` per line,
/// `#`-prefixed comment lines ignored. Vertex ids need not be dense; the
/// graph is sized to max id + 1. Drop real datasets (e.g. friendster from
/// SNAP) into the benches through this entry point.
StatusOr<Graph> LoadEdgeList(const std::string& path);

/// Compact binary CSR format (magic + counts + raw arrays), for fast
/// reload of generated datasets between bench runs.
Status SaveBinary(const Graph& graph, const std::string& path);
StatusOr<Graph> LoadBinary(const std::string& path);

}  // namespace tufast

#endif  // TUFAST_GRAPH_IO_H_
