#ifndef TUFAST_GRAPH_DEGREE_STATS_H_
#define TUFAST_GRAPH_DEGREE_STATS_H_

#include <string>

#include "common/histogram.h"
#include "graph/graph.h"

namespace tufast {

/// Degree-distribution summary of a graph (paper Fig. 5 / Table II).
struct DegreeStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double average_degree = 0;
  uint32_t max_degree = 0;
  uint64_t num_zero_degree = 0;
  /// Vertices whose adjacency exceeds the HTM word capacity (32KB / 8B):
  /// these can never run in H mode — the paper's motivating observation.
  uint64_t num_above_htm_capacity = 0;
  LogHistogram histogram;

  /// Least-squares slope of log2(count) vs log2(degree) over non-empty
  /// bins: a power-law graph yields a clearly negative slope and a good
  /// linear fit (paper: "close to a straight line in log scale").
  double LogLogSlope() const;

  std::string ToString() const;
};

DegreeStats ComputeDegreeStats(const Graph& graph);

}  // namespace tufast

#endif  // TUFAST_GRAPH_DEGREE_STATS_H_
