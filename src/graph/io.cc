#include "graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "graph/builder.h"

namespace tufast {

namespace {

constexpr uint64_t kBinaryMagic = 0x7475466173744731ULL;  // "tuFastG1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "r"));
  if (!file) return Status::IoError("cannot open " + path);

  std::vector<VertexId> sources, targets;
  std::vector<uint32_t> weights;
  bool weighted = true;  // Until a 2-column line proves otherwise.
  VertexId max_id = 0;

  char line[256];
  size_t line_number = 0;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    ++line_number;
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\r') continue;
    unsigned long long u = 0, v = 0, w = 0;
    const int fields = std::sscanf(line, "%llu %llu %llu", &u, &v, &w);
    if (fields < 2) {
      return Status::InvalidArgument(path + ": malformed line " +
                                     std::to_string(line_number));
    }
    if (fields == 2) weighted = false;
    sources.push_back(static_cast<VertexId>(u));
    targets.push_back(static_cast<VertexId>(v));
    weights.push_back(static_cast<uint32_t>(w));
    max_id = std::max(max_id, static_cast<VertexId>(std::max(u, v)));
  }
  if (sources.empty()) return Status::InvalidArgument(path + ": no edges");

  GraphBuilder builder(max_id + 1);
  builder.Reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    if (weighted) {
      builder.AddEdge(sources[i], targets[i], weights[i]);
    } else {
      builder.AddEdge(sources[i], targets[i]);
    }
  }
  return builder.Build();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) return Status::IoError("cannot create " + path);

  const uint64_t n = graph.NumVertices();
  const uint64_t m = graph.NumEdges();
  const uint64_t weighted = graph.HasWeights() ? 1 : 0;
  const uint64_t header[4] = {kBinaryMagic, n, m, weighted};
  if (std::fwrite(header, sizeof(header), 1, file.get()) != 1 ||
      std::fwrite(graph.offsets().data(), sizeof(EdgeId), n + 1,
                  file.get()) != n + 1 ||
      (m > 0 && std::fwrite(graph.targets().data(), sizeof(VertexId), m,
                            file.get()) != m) ||
      (weighted != 0 && m > 0 &&
       std::fwrite(graph.weights().data(), sizeof(uint32_t), m, file.get()) !=
           m)) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

StatusOr<Graph> LoadBinary(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) return Status::IoError("cannot open " + path);

  uint64_t header[4];
  if (std::fread(header, sizeof(header), 1, file.get()) != 1) {
    return Status::IoError(path + ": truncated header");
  }
  if (header[0] != kBinaryMagic) {
    return Status::InvalidArgument(path + ": not a tufast binary graph");
  }
  const uint64_t n = header[1], m = header[2], weighted = header[3];

  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  std::vector<uint32_t> weights(weighted != 0 ? m : 0);
  if (std::fread(offsets.data(), sizeof(EdgeId), n + 1, file.get()) != n + 1 ||
      (m > 0 &&
       std::fread(targets.data(), sizeof(VertexId), m, file.get()) != m) ||
      (weighted != 0 && m > 0 &&
       std::fread(weights.data(), sizeof(uint32_t), m, file.get()) != m)) {
    return Status::IoError(path + ": truncated body");
  }
  if (offsets.back() != m) {
    return Status::InvalidArgument(path + ": inconsistent CSR offsets");
  }
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace tufast
