#include "graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "durability/crc32.h"
#include "graph/builder.h"

namespace tufast {

namespace {

// Version 1 ("tuFastG1") files carry no checksum; version 2 ("tuFastG2")
// appends a CRC-32 footer over the header and body, so silent on-disk
// corruption (bit flips, truncation past the size checks) is detected at
// load instead of surfacing as wrong analytics results. SaveBinary
// always writes version 2; LoadBinary accepts both.
constexpr uint64_t kBinaryMagicV1 = 0x7475466173744731ULL;  // "tuFastG1"
constexpr uint64_t kBinaryMagicV2 = 0x7475466173744732ULL;  // "tuFastG2"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Reads one full logical line regardless of length, growing `out` chunk
/// by chunk. fgets alone would silently split a line longer than its
/// buffer into several, misparsing the tail as fresh (mis-numbered)
/// lines. Returns false at EOF with nothing read.
bool ReadFullLine(std::FILE* f, std::string* out) {
  out->clear();
  char chunk[256];
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
    out->append(chunk);
    if (out->back() == '\n') return true;
  }
  return !out->empty();  // Final line may legally lack the newline.
}

/// Bound on one edge-list line: two 20-digit ids + weight + separators
/// fit in well under 1 KiB; anything this long is a corrupt file, not an
/// edge, and growing further would just defer the parse error.
constexpr size_t kMaxLineBytes = 1u << 20;

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "r"));
  if (!file) return Status::IoError("cannot open " + path);

  std::vector<VertexId> sources, targets;
  std::vector<uint32_t> weights;
  bool weighted = true;  // Until a 2-column line proves otherwise.
  VertexId max_id = 0;

  std::string line;
  size_t line_number = 0;
  while (ReadFullLine(file.get(), &line)) {
    ++line_number;
    if (line.size() > kMaxLineBytes) {
      return Status::InvalidArgument(
          path + ": line " + std::to_string(line_number) + " exceeds " +
          std::to_string(kMaxLineBytes) + " bytes");
    }
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\r') continue;
    unsigned long long u = 0, v = 0, w = 0;
    const int fields = std::sscanf(line.c_str(), "%llu %llu %llu", &u, &v, &w);
    if (fields < 2) {
      return Status::InvalidArgument(path + ": malformed line " +
                                     std::to_string(line_number));
    }
    if (fields == 2) weighted = false;
    sources.push_back(static_cast<VertexId>(u));
    targets.push_back(static_cast<VertexId>(v));
    weights.push_back(static_cast<uint32_t>(w));
    max_id = std::max(max_id, static_cast<VertexId>(std::max(u, v)));
  }
  if (sources.empty()) return Status::InvalidArgument(path + ": no edges");

  GraphBuilder builder(max_id + 1);
  builder.Reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    if (weighted) {
      builder.AddEdge(sources[i], targets[i], weights[i]);
    } else {
      builder.AddEdge(sources[i], targets[i]);
    }
  }
  return builder.Build();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) return Status::IoError("cannot create " + path);

  const uint64_t n = graph.NumVertices();
  const uint64_t m = graph.NumEdges();
  const uint64_t weighted = graph.HasWeights() ? 1 : 0;
  const uint64_t header[4] = {kBinaryMagicV2, n, m, weighted};
  if (std::fwrite(header, sizeof(header), 1, file.get()) != 1 ||
      std::fwrite(graph.offsets().data(), sizeof(EdgeId), n + 1,
                  file.get()) != n + 1 ||
      (m > 0 && std::fwrite(graph.targets().data(), sizeof(VertexId), m,
                            file.get()) != m) ||
      (weighted != 0 && m > 0 &&
       std::fwrite(graph.weights().data(), sizeof(uint32_t), m, file.get()) !=
           m)) {
    return Status::IoError("short write to " + path);
  }
  // CRC-32 footer over exactly the bytes written above, in file order.
  uint32_t crc = Crc32::Compute(header, sizeof(header));
  crc = Crc32::Compute(graph.offsets().data(), (n + 1) * sizeof(EdgeId), crc);
  if (m > 0) {
    crc = Crc32::Compute(graph.targets().data(), m * sizeof(VertexId), crc);
    if (weighted != 0) {
      crc = Crc32::Compute(graph.weights().data(), m * sizeof(uint32_t), crc);
    }
  }
  const uint32_t footer = Crc32::Finalize(crc);
  if (std::fwrite(&footer, sizeof(footer), 1, file.get()) != 1) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

StatusOr<Graph> LoadBinary(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) return Status::IoError("cannot open " + path);

  uint64_t header[4];
  if (std::fread(header, sizeof(header), 1, file.get()) != 1) {
    return Status::IoError(path + ": truncated header");
  }
  if (header[0] != kBinaryMagicV1 && header[0] != kBinaryMagicV2) {
    return Status::InvalidArgument(path + ": not a tufast binary graph");
  }
  const bool has_crc = header[0] == kBinaryMagicV2;
  const uint64_t n = header[1], m = header[2], weighted = header[3];
  if (weighted > 1) {
    return Status::InvalidArgument(path + ": bad weighted flag " +
                                   std::to_string(weighted));
  }

  // Validate the declared counts against the actual file size BEFORE
  // sizing any allocation: a corrupt header must produce a clean error,
  // not a multi-GB bad_alloc. The divisions also make the arithmetic
  // overflow-proof for arbitrary 64-bit n/m.
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    return Status::IoError(path + ": cannot seek");
  }
  const long file_size = std::ftell(file.get());
  const uint64_t trailer = has_crc ? sizeof(uint32_t) : 0;
  if (file_size < static_cast<long>(sizeof(header) + trailer)) {
    return Status::IoError(path + ": cannot size");
  }
  const uint64_t body =
      static_cast<uint64_t>(file_size) - sizeof(header) - trailer;
  const uint64_t per_edge = sizeof(VertexId) + (weighted != 0 ? 4 : 0);
  if (n >= body / sizeof(EdgeId) || m > body / per_edge ||
      (n + 1) * sizeof(EdgeId) + m * per_edge != body) {
    return Status::InvalidArgument(
        path + ": header claims " + std::to_string(n) + " vertices / " +
        std::to_string(m) + " edges, inconsistent with " +
        std::to_string(body) + " payload bytes");
  }
  if (std::fseek(file.get(), sizeof(header), SEEK_SET) != 0) {
    return Status::IoError(path + ": cannot seek");
  }

  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  std::vector<uint32_t> weights(weighted != 0 ? m : 0);
  if (std::fread(offsets.data(), sizeof(EdgeId), n + 1, file.get()) != n + 1 ||
      (m > 0 &&
       std::fread(targets.data(), sizeof(VertexId), m, file.get()) != m) ||
      (weighted != 0 && m > 0 &&
       std::fread(weights.data(), sizeof(uint32_t), m, file.get()) != m)) {
    return Status::IoError(path + ": truncated body");
  }
  if (has_crc) {
    uint32_t footer = 0;
    if (std::fread(&footer, sizeof(footer), 1, file.get()) != 1) {
      return Status::IoError(path + ": truncated checksum footer");
    }
    uint32_t crc = Crc32::Compute(header, sizeof(header));
    crc = Crc32::Compute(offsets.data(), (n + 1) * sizeof(EdgeId), crc);
    if (m > 0) {
      crc = Crc32::Compute(targets.data(), m * sizeof(VertexId), crc);
      if (weighted != 0) {
        crc = Crc32::Compute(weights.data(), m * sizeof(uint32_t), crc);
      }
    }
    if (Crc32::Finalize(crc) != footer) {
      return Status::InvalidArgument(path + ": checksum mismatch");
    }
  }
  if (offsets.front() != 0 || offsets.back() != m) {
    return Status::InvalidArgument(path + ": inconsistent CSR offsets");
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument(path + ": non-monotonic CSR offsets at " +
                                     std::to_string(v));
    }
  }
  for (uint64_t e = 0; e < m; ++e) {
    if (targets[e] >= n) {
      return Status::InvalidArgument(path + ": edge target " +
                                     std::to_string(targets[e]) +
                                     " out of range");
    }
  }
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace tufast
