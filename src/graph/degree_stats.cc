#include "graph/degree_stats.h"

#include <cmath>
#include <cstdio>

namespace tufast {

namespace {
// 32KB HTM capacity over 8-byte TM words (paper §III): adjacency larger
// than this cannot fit one hardware transaction.
constexpr uint32_t kHtmCapacityWords = 32 * 1024 / 8;
}  // namespace

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.average_degree = graph.AverageDegree();
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const uint32_t degree = graph.OutDegree(v);
    stats.histogram.Add(degree);
    stats.max_degree = std::max(stats.max_degree, degree);
    if (degree == 0) ++stats.num_zero_degree;
    if (degree > kHtmCapacityWords) ++stats.num_above_htm_capacity;
  }
  return stats;
}

double DegreeStats::LogLogSlope() const {
  // Fit log2(count) = slope * log2(degree) + b over bins with degree >= 1.
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  int n = 0;
  const auto& bins = histogram.bins();
  for (size_t i = 1; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    const double x = static_cast<double>(i - 1);  // log2 of bin low edge.
    const double y = std::log2(static_cast<double>(bins[i]));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++n;
  }
  if (n < 2) return 0;
  const double denom = n * sum_xx - sum_x * sum_x;
  return denom == 0 ? 0 : (n * sum_xy - sum_x * sum_y) / denom;
}

std::string DegreeStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "|V|=%llu |E|=%llu avg_deg=%.2f max_deg=%u zero_deg=%llu "
                "above_htm_capacity=%llu loglog_slope=%.3f\n",
                static_cast<unsigned long long>(num_vertices),
                static_cast<unsigned long long>(num_edges), average_degree,
                max_degree, static_cast<unsigned long long>(num_zero_degree),
                static_cast<unsigned long long>(num_above_htm_capacity),
                LogLogSlope());
  return std::string(buf) + histogram.ToString();
}

}  // namespace tufast
