#ifndef TUFAST_ENGINES_BSP_ALGORITHMS_H_
#define TUFAST_ENGINES_BSP_ALGORITHMS_H_

#include <atomic>
#include <bit>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "engines/bsp_engine.h"
#include "graph/graph.h"
#include "runtime/parallel_for.h"

namespace tufast {

/// The paper's six evaluation algorithms in the bulk-synchronous
/// paradigm, for the Ligra-like (direct) and Polymer-like (materialized)
/// engines of Fig. 11. The defining architectural property: every
/// super-step reads the PREVIOUS step's state (double buffering), so
/// information travels one hop per barrier — contrast the in-place TM
/// versions in src/algorithms/.

inline constexpr TmWord kBspInfinity = ~TmWord{0};

/// Jacobi PageRank (message-passing systems cannot do Gauss-Seidel).
struct BspPageRankResult {
  std::vector<double> ranks;
  int iterations = 0;
  double final_delta = 0;
};

template <typename Engine>
BspPageRankResult BspPageRank(Engine& engine, const Graph& graph,
                              double damping, int max_iterations,
                              double tolerance) {
  const VertexId n = graph.NumVertices();
  std::vector<double> rank(n, 1.0 / n), next(n, 0.0);
  const double base = (1.0 - damping) / n;
  BspPageRankResult result;
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    // Scatter phase: every vertex pushes rank/deg to its out-neighbors.
    // Needs atomic accumulation (or materialized combining).
    ParallelForChunked(
        engine.pool(), 0, n, /*grain=*/256,
        [&](int /*worker*/, uint64_t lo, uint64_t hi) {
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = static_cast<VertexId>(i);
            const uint32_t d = graph.OutDegree(v);
            if (d == 0) continue;
            const double share = damping * rank[v] / d;
            for (const VertexId u : graph.OutNeighbors(v)) {
              uint64_t* slot = reinterpret_cast<uint64_t*>(&next[u]);
              uint64_t current = __atomic_load_n(slot, __ATOMIC_RELAXED);
              while (!__atomic_compare_exchange_n(
                  slot, &current,
                  std::bit_cast<uint64_t>(std::bit_cast<double>(current) +
                                          share),
                  /*weak=*/false, __ATOMIC_ACQ_REL, __ATOMIC_RELAXED)) {
              }
            }
          }
        });
    std::atomic<double> delta{0.0};
    ParallelForChunked(engine.pool(), 0, n, 4096,
                       [&](int, uint64_t lo, uint64_t hi) {
                         double local = 0;
                         for (uint64_t v = lo; v < hi; ++v) {
                           next[v] += base;
                           local += std::fabs(next[v] - rank[v]);
                         }
                         double expected =
                             delta.load(std::memory_order_relaxed);
                         while (!delta.compare_exchange_weak(
                             expected, expected + local,
                             std::memory_order_relaxed)) {
                         }
                       });
    engine.ChargeActiveVertices(graph, n);  // GAS sync of every vertex.
    rank.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta.load() / n;
    if (result.final_delta < tolerance) break;
  }
  result.ranks = std::move(rank);
  return result;
}

template <typename Engine>
std::vector<TmWord> BspBfs(Engine& engine, const Graph& graph,
                           VertexId source) {
  std::vector<TmWord> dist(graph.NumVertices(), kBspInfinity);
  dist[source] = 0;
  std::vector<VertexId> frontier{source};
  TmWord depth = 0;
  while (!frontier.empty()) {
    ++depth;
    frontier = engine.EdgeMap(
        graph, frontier, dist,
        [&](VertexId, EdgeId) { return depth; },
        [](TmWord incoming, TmWord current, TmWord* merged) {
          if (incoming >= current) return false;
          *merged = incoming;
          return true;
        });
  }
  return dist;
}

template <typename Engine>
std::vector<TmWord> BspWcc(Engine& engine, const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> label(n);
  std::vector<VertexId> frontier(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v] = v;
    frontier[v] = v;
  }
  // Double-buffered label propagation: labels read in step k are the
  // step-(k-1) labels, so a label travels exactly one hop per barrier.
  std::vector<TmWord> current = label;
  while (!frontier.empty()) {
    frontier = engine.EdgeMap(
        graph, frontier, label,
        [&](VertexId v, EdgeId) { return current[v]; },
        [](TmWord incoming, TmWord cur, TmWord* merged) {
          if (incoming >= cur) return false;
          *merged = incoming;
          return true;
        });
    current = label;
  }
  return label;
}

template <typename Engine>
std::vector<TmWord> BspSssp(Engine& engine, const Graph& graph,
                            VertexId source) {
  TUFAST_CHECK(graph.HasWeights());
  std::vector<TmWord> dist(graph.NumVertices(), kBspInfinity);
  std::vector<TmWord> current = dist;
  dist[source] = 0;
  current[source] = 0;
  std::vector<VertexId> frontier{source};
  while (!frontier.empty()) {
    frontier = engine.EdgeMap(
        graph, frontier, dist,
        [&](VertexId v, EdgeId e) { return current[v] + graph.EdgeWeight(e); },
        [](TmWord incoming, TmWord cur, TmWord* merged) {
          if (incoming >= cur) return false;
          *merged = incoming;
          return true;
        });
    current = dist;
  }
  return dist;
}

/// Luby's MIS: BSP engines cannot run the one-pass greedy (it needs
/// atomic neighborhood decisions), so they pay multiple rounds of
/// priority comparison — the classic message-passing formulation.
template <typename Engine>
std::vector<TmWord> BspMis(Engine& engine, const Graph& graph,
                           uint64_t seed) {
  const VertexId n = graph.NumVertices();
  constexpr TmWord kUndecided = 0, kIn = 1, kOut = 2;
  std::vector<TmWord> state(n, kUndecided);
  std::vector<uint64_t> priority(n);
  Rng rng(seed);
  for (VertexId v = 0; v < n; ++v) priority[v] = rng.Next();

  std::atomic<bool> any_undecided{true};
  while (any_undecided.load(std::memory_order_relaxed)) {
    any_undecided.store(false, std::memory_order_relaxed);
    // Round phase 1: a vertex joins when it beats all undecided
    // neighbors' priorities (reads previous-step states only).
    const std::vector<TmWord> snapshot = state;
    ParallelForChunked(
        engine.pool(), 0, n, 256, [&](int, uint64_t lo, uint64_t hi) {
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = static_cast<VertexId>(i);
            if (snapshot[v] != kUndecided) continue;
            bool wins = true;
            for (const VertexId u : graph.OutNeighbors(v)) {
              if (u == v) continue;
              if (snapshot[u] == kIn) {
                wins = false;
                break;
              }
              if (snapshot[u] == kUndecided &&
                  (priority[u] > priority[v] ||
                   (priority[u] == priority[v] && u > v))) {
                wins = false;
                break;
              }
            }
            if (wins) state[v] = kIn;
          }
        });
    engine.ChargeActiveVertices(graph, n);
    // Round phase 2: neighbors of winners drop out.
    ParallelForChunked(
        engine.pool(), 0, n, 256, [&](int, uint64_t lo, uint64_t hi) {
          bool local_undecided = false;
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = static_cast<VertexId>(i);
            if (state[v] != kUndecided) continue;
            for (const VertexId u : graph.OutNeighbors(v)) {
              if (u != v && state[u] == kIn) {
                state[v] = kOut;
                break;
              }
            }
            if (state[v] == kUndecided) local_undecided = true;
          }
          if (local_undecided)
            any_undecided.store(true, std::memory_order_relaxed);
        });
  }
  return state;
}

/// Triangle counting is read-only; the BSP engine runs it directly (no
/// double-buffering needed), making this the paper's "low overhead wins"
/// case where engines are close.
template <typename Engine>
uint64_t BspTriangleCount(Engine& engine, const Graph& graph) {
  // Distributed engines must ship the smaller adjacency list across the
  // wire for every edge; charge that volume up front.
  uint64_t exchange_words = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const VertexId u : graph.OutNeighbors(v)) {
      if (u > v) {
        exchange_words += std::min(graph.OutDegree(v), graph.OutDegree(u));
      }
    }
  }
  engine.ChargeVolumeBytes(exchange_words * 8);
  std::atomic<uint64_t> total{0};
  ParallelForChunked(
      engine.pool(), 0, graph.NumVertices(), 64,
      [&](int, uint64_t lo, uint64_t hi) {
        uint64_t local = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          const VertexId v = static_cast<VertexId>(i);
          const auto nv = graph.OutNeighbors(v);
          for (size_t a = 0; a < nv.size(); ++a) {
            const VertexId u = nv[a];
            if (u <= v) continue;
            const auto nu = graph.OutNeighbors(u);
            size_t x = a + 1, y = 0;
            while (x < nv.size() && y < nu.size()) {
              if (nv[x] < nu[y]) {
                ++x;
              } else if (nu[y] < nv[x]) {
                ++y;
              } else {
                if (nv[x] > u) ++local;
                ++x;
                ++y;
              }
            }
          }
        }
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load();
}

}  // namespace tufast

#endif  // TUFAST_ENGINES_BSP_ALGORITHMS_H_
