#ifndef TUFAST_ENGINES_BSP_ENGINE_H_
#define TUFAST_ENGINES_BSP_ENGINE_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// Ligra-like bulk-synchronous substrate ("Ligra" / "Polymer" in paper
/// Fig. 11): frontier-driven edgeMap with a hard barrier per super-step
/// and NO in-place cross-step visibility — updates land in a next-step
/// buffer (Jacobi style), which is precisely the architectural property
/// the paper blames for slower information propagation than TuFast's
/// in-place transactions.
///
/// Two update-delivery modes:
///  * kDirect (Ligra-like): workers CAS updates straight into the target
///    array;
///  * kMaterialized (Polymer-like): workers append (target, value)
///    messages to per-worker outboxes that a second phase merges — the
///    NUMA-staging pattern, with its extra memory traffic and footprint.
enum class BspDelivery { kDirect, kMaterialized };

class BspEngine {
 public:
  BspEngine(ThreadPool& pool, BspDelivery delivery)
      : pool_(pool), delivery_(delivery) {}

  ThreadPool& pool() { return pool_; }
  BspDelivery delivery() const { return delivery_; }

  /// Network-charge hooks of the engine concept: a shared-memory BSP
  /// engine moves no bytes over a wire, so these are no-ops (see
  /// DistEngine for the simulated-cluster implementation).
  void ChargeActiveVertices(const Graph& /*graph*/, uint64_t /*count*/) {}
  void ChargeVolumeBytes(uint64_t /*bytes*/) {}

  /// Applies `relax(u, value_from_edge)` for every out-edge (v, u) with v
  /// in `frontier`. `emit(v, e)` computes the value pushed along edge e.
  /// `accept(u, incoming, current)` returns the merged value or nullopt
  /// -- here modeled as: returns true and writes *merged when `incoming`
  /// improves `current`. Vertices whose value improved during the step
  /// are returned as the next frontier (deduplicated).
  ///
  /// All updates target `next`, never the array being read — callers
  /// flip buffers after the step (bulk-synchronous semantics).
  template <typename EmitFn, typename MergeFn>
  std::vector<VertexId> EdgeMap(const Graph& graph,
                                const std::vector<VertexId>& frontier,
                                std::vector<TmWord>& next, EmitFn&& emit,
                                MergeFn&& merge) {
    if (delivery_ == BspDelivery::kDirect) {
      return EdgeMapDirect(graph, frontier, next, emit, merge);
    }
    return EdgeMapMaterialized(graph, frontier, next, emit, merge);
  }

 private:
  struct Message {
    VertexId target;
    TmWord value;
  };

  /// CAS-merge `value` into next[u]; true when the slot improved.
  template <typename MergeFn>
  static bool MergeInto(std::vector<TmWord>& next, VertexId u, TmWord value,
                        MergeFn&& merge) {
    TmWord current = __atomic_load_n(&next[u], __ATOMIC_ACQUIRE);
    while (true) {
      TmWord merged;
      if (!merge(value, current, &merged)) return false;
      if (__atomic_compare_exchange_n(&next[u], &current, merged,
                                      /*weak=*/false, __ATOMIC_ACQ_REL,
                                      __ATOMIC_ACQUIRE)) {
        return true;
      }
    }
  }

  template <typename EmitFn, typename MergeFn>
  std::vector<VertexId> EdgeMapDirect(const Graph& graph,
                                      const std::vector<VertexId>& frontier,
                                      std::vector<TmWord>& next, EmitFn&& emit,
                                      MergeFn&& merge) {
    std::vector<VertexId> out;
    std::mutex out_mutex;
    ParallelForChunked(
        pool_, 0, frontier.size(), /*grain=*/64,
        [&](int /*worker*/, uint64_t lo, uint64_t hi) {
          std::vector<VertexId> local;
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = frontier[i];
            for (EdgeId e = graph.EdgeBegin(v); e < graph.EdgeEnd(v); ++e) {
              const VertexId u = graph.EdgeTarget(e);
              if (MergeInto(next, u, emit(v, e), merge)) local.push_back(u);
            }
          }
          if (!local.empty()) {
            std::lock_guard<std::mutex> guard(out_mutex);
            out.insert(out.end(), local.begin(), local.end());
          }
        });
    Dedup(out);
    return out;
  }

  template <typename EmitFn, typename MergeFn>
  std::vector<VertexId> EdgeMapMaterialized(
      const Graph& graph, const std::vector<VertexId>& frontier,
      std::vector<TmWord>& next, EmitFn&& emit, MergeFn&& merge) {
    // Phase 1: materialize messages into per-worker outboxes (the extra
    // buffering a message-passing / NUMA-staged engine pays).
    std::vector<std::vector<Message>> outboxes(pool_.num_threads());
    ParallelForChunked(
        pool_, 0, frontier.size(), /*grain=*/64,
        [&](int worker, uint64_t lo, uint64_t hi) {
          auto& outbox = outboxes[worker];
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = frontier[i];
            for (EdgeId e = graph.EdgeBegin(v); e < graph.EdgeEnd(v); ++e) {
              outbox.push_back(Message{graph.EdgeTarget(e), emit(v, e)});
            }
          }
        });
    // Phase 2: deliver.
    std::vector<VertexId> out;
    std::mutex out_mutex;
    ParallelForChunked(
        pool_, 0, outboxes.size(), /*grain=*/1,
        [&](int /*worker*/, uint64_t lo, uint64_t hi) {
          std::vector<VertexId> local;
          for (uint64_t b = lo; b < hi; ++b) {
            for (const Message& m : outboxes[b]) {
              if (MergeInto(next, m.target, m.value, merge)) {
                local.push_back(m.target);
              }
            }
          }
          if (!local.empty()) {
            std::lock_guard<std::mutex> guard(out_mutex);
            out.insert(out.end(), local.begin(), local.end());
          }
        });
    Dedup(out);
    return out;
  }

  static void Dedup(std::vector<VertexId>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }

  ThreadPool& pool_;
  const BspDelivery delivery_;
};

}  // namespace tufast

#endif  // TUFAST_ENGINES_BSP_ENGINE_H_
