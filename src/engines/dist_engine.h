#ifndef TUFAST_ENGINES_DIST_ENGINE_H_
#define TUFAST_ENGINES_DIST_ENGINE_H_

#include <bit>
#include <chrono>
#include <thread>
#include <vector>

#include "common/compiler.h"
#include "common/rng.h"
#include "engines/bsp_engine.h"
#include "graph/graph.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// Simulated distributed GAS engine ("PowerGraph" / "PowerLyra" in paper
/// Fig. 12). See DESIGN.md: the real systems are whole clusters; what we
/// reproduce is their dominant cost structure — vertex replication across
/// machines and per-super-step network synchronization of every active
/// replica. The compute itself runs on the local pool (a real cluster has
/// plenty of CPU; the paper's point is that "the computing bottleneck is
/// the communication").
///
/// Cut strategies:
///  * kRandomVertexCut (PowerGraph): each edge lands on a random machine;
///    a vertex is replicated on every machine holding one of its edges.
///  * kHybridCut (PowerLyra): low-degree vertices keep all their in-edges
///    on one machine (hash by target), high-degree vertices are cut
///    randomly — measurably lower replication on power-law graphs, which
///    is exactly PowerLyra's improvement over PowerGraph.
enum class DistCut { kRandomVertexCut, kHybridCut };

struct DistConfig {
  int num_machines = 16;
  /// Per-machine NIC bandwidth (m3.2xlarge-era: ~1 Gb/s full duplex).
  double bandwidth_bytes_per_sec = 125.0e6;
  /// Per-super-step round latency (barrier + RPC fan-in/out).
  double round_latency_sec = 1.0e-3;
  DistCut cut = DistCut::kRandomVertexCut;
  uint32_t hybrid_degree_threshold = 100;
  /// Scales the actually-injected sleeps (0 = account only; benches read
  /// SimulatedNetworkSeconds() instead of sleeping for real).
  double time_scale = 0.0;
};

class DistEngine {
 public:
  DistEngine(ThreadPool& pool, const Graph& graph, DistConfig config = {})
      : config_(config),
        inner_(pool, BspDelivery::kMaterialized),
        replicas_(graph.NumVertices(), 0) {
    TUFAST_CHECK(config_.num_machines >= 1);
    ComputeReplication(graph);
  }

  ThreadPool& pool() { return inner_.pool(); }

  /// Mean number of machine replicas per vertex (PowerGraph's
  /// "replication factor" — lower is better).
  double ReplicationFactor() const { return replication_factor_; }

  /// Total simulated network time injected so far.
  double SimulatedNetworkSeconds() const { return simulated_network_sec_; }

  template <typename EmitFn, typename MergeFn>
  std::vector<VertexId> EdgeMap(const Graph& graph,
                                const std::vector<VertexId>& frontier,
                                std::vector<TmWord>& next, EmitFn&& emit,
                                MergeFn&& merge) {
    // Exact per-vertex replica sync volume for this super-step: each
    // active vertex's mirrors send a gather partial to the master and
    // receive the applied value back (8 bytes each way).
    uint64_t bytes = 0;
    for (const VertexId v : frontier) {
      bytes += uint64_t{2} * 8 * (replicas_[v] > 0 ? replicas_[v] - 1 : 0);
    }
    ChargeVolumeBytes(bytes);
    return inner_.EdgeMap(graph, frontier, next, emit, merge);
  }

  void ChargeActiveVertices(const Graph& /*graph*/, uint64_t count) {
    // Approximate with the mean replication factor.
    const double bytes = 2.0 * 8.0 * (replication_factor_ - 1.0) *
                         static_cast<double>(count);
    Charge(bytes > 0 ? bytes : 0);
  }

  void ChargeVolumeBytes(uint64_t bytes) {
    Charge(static_cast<double>(bytes));
  }

 private:
  void ComputeReplication(const Graph& graph) {
    const VertexId n = graph.NumVertices();
    const int machines = config_.num_machines;
    // Bitset of machines per vertex (machines <= 64 in any sane config).
    TUFAST_CHECK(machines <= 64);
    std::vector<uint64_t> present(n, 0);
    uint64_t salt = 0x5eedULL;
    for (VertexId v = 0; v < n; ++v) {
      for (const VertexId u : graph.OutNeighbors(v)) {
        int machine;
        if (config_.cut == DistCut::kHybridCut &&
            graph.OutDegree(u) < config_.hybrid_degree_threshold) {
          // Low-degree target: co-locate all its in-edges (hash by u).
          machine = static_cast<int>(u % machines);
        } else {
          uint64_t h = (uint64_t{v} << 32 | u) + salt;
          machine = static_cast<int>(SplitMix64(h) % machines);
        }
        present[v] |= uint64_t{1} << machine;
        present[u] |= uint64_t{1} << machine;
      }
    }
    uint64_t total = 0;
    for (VertexId v = 0; v < n; ++v) {
      replicas_[v] = static_cast<uint8_t>(std::popcount(present[v]));
      total += replicas_[v];
    }
    replication_factor_ = n == 0 ? 0 : static_cast<double>(total) / n;
  }

  void Charge(double bytes) {
    // The cluster's aggregate bisection bandwidth scales with machine
    // count; each round also pays the synchronization latency twice
    // (gather fan-in + apply fan-out).
    const double seconds =
        bytes / (config_.bandwidth_bytes_per_sec * config_.num_machines) +
        2 * config_.round_latency_sec;
    simulated_network_sec_ += seconds;
    const double scaled = seconds * config_.time_scale;
    if (scaled > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(scaled));
    }
  }

  DistConfig config_;
  BspEngine inner_;
  std::vector<uint8_t> replicas_;
  double replication_factor_ = 0;
  double simulated_network_sec_ = 0;
};

}  // namespace tufast

#endif  // TUFAST_ENGINES_DIST_ENGINE_H_
