#include "engines/ooc_engine.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <memory>
#include <stdexcept>
#include <thread>

#if defined(_WIN32)
#include <process.h>
#define TUFAST_OOC_GETPID _getpid
#else
#include <unistd.h>
#define TUFAST_OOC_GETPID getpid
#endif

namespace tufast {

namespace {
std::atomic<uint64_t> g_instance_counter{0};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

OocEngine::OocEngine(ThreadPool& pool, const Graph& graph, OocConfig config)
    : pool_(pool),
      graph_(graph),
      reversed_(graph.Reversed()),
      config_(config),
      instance_id_(g_instance_counter.fetch_add(1) + 1) {
  TUFAST_CHECK(config_.num_intervals >= 1);
  const VertexId n = graph.NumVertices();
  const EdgeId m = reversed_.NumEdges();

  // Intervals of (roughly) equal in-edge counts, GraphChi style.
  interval_begin_.assign(config_.num_intervals + 1, n);
  shard_edge_begin_.assign(config_.num_intervals + 1, m);
  interval_begin_[0] = 0;
  shard_edge_begin_[0] = 0;
  const EdgeId per_shard = (m + config_.num_intervals) / config_.num_intervals;
  int shard = 1;
  for (VertexId v = 0; v < n && shard < config_.num_intervals; ++v) {
    if (reversed_.EdgeEnd(v) >= per_shard * static_cast<EdgeId>(shard)) {
      interval_begin_[shard] = v + 1;
      shard_edge_begin_[shard] = reversed_.EdgeEnd(v);
      ++shard;
    }
  }

  // Map each out-edge (v -> u) to its position in u's reversed (in-edge)
  // list, so scatter can stage values at gather positions.
  out_to_in_pos_.assign(graph.NumEdges(), 0);
  std::vector<EdgeId> cursor(n);
  for (VertexId u = 0; u < n; ++u) cursor[u] = reversed_.EdgeBegin(u);
  // Reversed CSR neighbor lists are sorted by source; walking sources in
  // order assigns positions consistently.
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeId e = graph.EdgeBegin(v); e < graph.EdgeEnd(v); ++e) {
      const VertexId u = graph.EdgeTarget(e);
      // Find v in u's in-list starting from its cursor.
      EdgeId pos = cursor[u];
      while (reversed_.EdgeTarget(pos) != v) ++pos;
      out_to_in_pos_[e] = pos;
      cursor[u] = pos + 1;
    }
  }

  staging_.assign(m, kNoMessage);
  // If the initial shard write throws (disk full, bad tmp_dir), the
  // destructor never runs — without the explicit cleanup, every shard
  // file written before the failure would leak into tmp_dir.
  try {
    WriteAllShards();
  } catch (...) {
    RemoveShardFiles();
    throw;
  }
}

OocEngine::~OocEngine() { RemoveShardFiles(); }

void OocEngine::RemoveShardFiles() {
  for (int s = 0; s < config_.num_intervals; ++s) {
    std::remove(ShardPath(s).c_str());
  }
}

std::string OocEngine::ShardPath(int s) const {
  // instance_id_ only disambiguates engines within one process; the pid
  // keeps concurrent processes (ctest -j runs the test binary many times
  // in parallel) from sharing shard files — engine A's destructor would
  // otherwise delete the file engine B is streaming.
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s/tufast_ooc_p%ld_%" PRIu64 "_shard_%d.bin",
                config_.tmp_dir.c_str(),
                static_cast<long>(TUFAST_OOC_GETPID()), instance_id_, s);
  return buf;
}

void OocEngine::SeedMessages(const std::vector<VertexId>& sources,
                             TmWord value) {
  std::fill(staging_.begin(), staging_.end(), kNoMessage);
  for (const VertexId v : sources) {
    for (EdgeId e = graph_.EdgeBegin(v); e < graph_.EdgeEnd(v); ++e) {
      staging_[out_to_in_pos_[e]] = value;
    }
  }
  WriteAllShards();
}

void OocEngine::ReadShard(int s) {
  const EdgeId begin = shard_edge_begin_[s];
  const EdgeId end = shard_edge_begin_[s + 1];
  shard_edge_base_ = begin;
  shard_buffer_.resize(end - begin);
  if (end == begin) return;
  // I/O failures throw (not abort): a vanished or short shard file is an
  // environment fault the caller can handle, and the stack unwind keeps
  // the destructor's shard cleanup reachable.
  FilePtr f(std::fopen(ShardPath(s).c_str(), "rb"));
  if (f == nullptr) {
    throw std::runtime_error("ooc: cannot open shard file " + ShardPath(s));
  }
  const size_t read =
      std::fread(shard_buffer_.data(), sizeof(TmWord), end - begin, f.get());
  if (read != end - begin) {
    throw std::runtime_error("ooc: short read from shard file " +
                             ShardPath(s));
  }
  Throttle((end - begin) * sizeof(TmWord));
}

void OocEngine::Throttle(uint64_t bytes) {
  bytes_streamed_ += bytes;
  if (config_.disk_bandwidth_bytes_per_sec > 0) {
    const double seconds = bytes / config_.disk_bandwidth_bytes_per_sec;
    simulated_disk_sec_ += seconds;
    if (config_.time_scale > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(seconds * config_.time_scale));
    }
  }
}

void OocEngine::WriteAllShards() {
  for (int s = 0; s < config_.num_intervals; ++s) {
    const EdgeId begin = shard_edge_begin_[s];
    const EdgeId end = shard_edge_begin_[s + 1];
    FilePtr f(std::fopen(ShardPath(s).c_str(), "wb"));
    if (f == nullptr) {
      throw std::runtime_error("ooc: cannot create shard file " +
                               ShardPath(s));
    }
    if (end > begin) {
      const size_t written = std::fwrite(staging_.data() + begin,
                                         sizeof(TmWord), end - begin, f.get());
      if (written != end - begin) {
        throw std::runtime_error("ooc: short write to shard file " +
                                 ShardPath(s));
      }
      Throttle((end - begin) * sizeof(TmWord));
    }
  }
}

}  // namespace tufast
