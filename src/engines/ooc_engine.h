#ifndef TUFAST_ENGINES_OOC_ENGINE_H_
#define TUFAST_ENGINES_OOC_ENGINE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/compiler.h"
#include "common/types.h"
#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// Simulated out-of-core engine ("GraphChi" in paper Fig. 12): parallel
/// sliding windows over edge-value shards backed by REAL files. The graph
/// structure stays in memory (as in warm GraphChi runs — the paper gave
/// GraphChi 200 GB of RAM and it was still orders slower), but every
/// iteration streams the full per-edge value array from disk, updates
/// vertex intervals one shard at a time (bounded intra-interval
/// parallelism), and streams the values back — the per-edge
/// materialization and sequential shard pipeline that define the
/// architecture's cost, independent of raw I/O speed.
struct OocConfig {
  int num_intervals = 8;
  std::string tmp_dir = "/tmp";
  /// Modeled storage bandwidth. Shard streaming is charged against this
  /// rate (0 = uncharged). Benches use a value calibrated so the
  /// stream:compute ratio matches a real SSD against a full-size graph
  /// (see EXPERIMENTS.md).
  double disk_bandwidth_bytes_per_sec = 0;
  /// Scales the actually-injected sleeps (0 = account only; benches read
  /// SimulatedDiskSeconds() instead of sleeping for real).
  double time_scale = 0;
};

class OocEngine {
 public:
  OocEngine(ThreadPool& pool, const Graph& graph, OocConfig config = {});
  ~OocEngine();
  TUFAST_DISALLOW_COPY_AND_MOVE(OocEngine);

  ThreadPool& pool() { return pool_; }
  uint64_t BytesStreamed() const { return bytes_streamed_; }

  /// Modeled storage time accumulated so far (see OocConfig).
  double SimulatedDiskSeconds() const { return simulated_disk_sec_; }

  /// One PSW super-step over message values:
  ///  gather:  merged = fold(merge, incoming edge values of v)
  ///  apply:   `apply(v, merged, had_messages)` updates the caller's
  ///           vertex state and returns the value v now emits;
  ///  scatter: that value is staged on every out-edge of v and streamed
  ///           back to the shard files.
  /// Values are TmWords; kNoMessage edges carry nothing.
  static constexpr TmWord kNoMessage = ~TmWord{0};

  /// merge(acc, incoming, reversed_pos) folds one incoming edge value
  /// (the reversed position lets SSSP add per-edge weights at gather
  /// time); for the first message `acc` is kNoMessage. Shard I/O
  /// failures (a deleted or truncated shard file, a full disk) throw
  /// std::runtime_error; the destructor still removes whatever shard
  /// files remain.
  template <typename MergeFn, typename ApplyFn>
  void RunIteration(MergeFn&& merge, ApplyFn&& apply) {
    // Sequential over intervals: GraphChi processes one memory-resident
    // interval at a time.
    for (int s = 0; s < config_.num_intervals; ++s) {
      ReadShard(s);
      const VertexId lo = interval_begin_[s];
      const VertexId hi = interval_begin_[s + 1];
      ParallelForChunked(
          pool_, lo, hi, /*grain=*/256,
          [&](int /*worker*/, uint64_t a, uint64_t b) {
            for (uint64_t i = a; i < b; ++i) {
              const VertexId v = static_cast<VertexId>(i);
              TmWord merged = kNoMessage;
              bool any = false;
              for (EdgeId e = reversed_.EdgeBegin(v); e < reversed_.EdgeEnd(v);
                   ++e) {
                const TmWord incoming = shard_buffer_[e - shard_edge_base_];
                if (incoming == kNoMessage) continue;
                merged = merge(merged, incoming, e);
                any = true;
              }
              const TmWord outgoing = apply(v, merged, any);
              // Scatter: stage on all out-edges (positions in the
              // reversed CSR, precomputed).
              for (EdgeId e = graph_.EdgeBegin(v); e < graph_.EdgeEnd(v);
                   ++e) {
                staging_[out_to_in_pos_[e]] = outgoing;
              }
            }
          });
    }
    WriteAllShards();
  }

  /// Pre-loads every edge value with kNoMessage except the out-edges of
  /// `sources`, which carry `value`.
  void SeedMessages(const std::vector<VertexId>& sources, TmWord value);

  /// Pre-loads every vertex's out-edges with `value_of(v)` (kNoMessage to
  /// emit nothing).
  template <typename Fn>
  void SeedAllMessages(Fn&& value_of) {
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      const TmWord value = value_of(v);
      for (EdgeId e = graph_.EdgeBegin(v); e < graph_.EdgeEnd(v); ++e) {
        staging_[out_to_in_pos_[e]] = value;
      }
    }
    WriteAllShards();
  }

  /// Edge weight (by reversed-CSR position) for SSSP-style emitters.
  uint32_t InEdgeWeight(EdgeId reversed_pos) const {
    return reversed_.EdgeWeight(reversed_pos);
  }

  const Graph& reversed() const { return reversed_; }

 private:
  void ReadShard(int s);       // Throws std::runtime_error on I/O failure.
  void WriteAllShards();       // Throws std::runtime_error on I/O failure.
  void Throttle(uint64_t bytes);
  std::string ShardPath(int s) const;
  void RemoveShardFiles();

  ThreadPool& pool_;
  const Graph& graph_;
  Graph reversed_;
  OocConfig config_;
  std::vector<VertexId> interval_begin_;
  std::vector<EdgeId> shard_edge_begin_;   // Reversed-CSR edge ranges.
  std::vector<EdgeId> out_to_in_pos_;      // Out-edge -> reversed position.
  std::vector<TmWord> staging_;            // Next iteration's edge values.
  std::vector<TmWord> shard_buffer_;       // Currently loaded shard.
  EdgeId shard_edge_base_ = 0;
  uint64_t bytes_streamed_ = 0;
  double simulated_disk_sec_ = 0;
  uint64_t instance_id_ = 0;
};

}  // namespace tufast

#endif  // TUFAST_ENGINES_OOC_ENGINE_H_
