#ifndef TUFAST_ENGINES_OOC_ALGORITHMS_H_
#define TUFAST_ENGINES_OOC_ALGORITHMS_H_

#include <atomic>
#include <bit>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "engines/ooc_engine.h"
#include "graph/graph.h"

namespace tufast {

/// The evaluation algorithms on the out-of-core engine (GraphChi-like,
/// Fig. 12). Every super-step streams the full edge-value array through
/// the shard files — the engine's defining cost.

struct OocPageRankResult {
  std::vector<double> ranks;
  int iterations = 0;
};

inline OocPageRankResult OocPageRank(OocEngine& engine, const Graph& graph,
                                     double damping, int max_iterations,
                                     double tolerance) {
  const VertexId n = graph.NumVertices();
  OocPageRankResult result;
  result.ranks.assign(n, 1.0 / n);
  auto& rank = result.ranks;
  const double base = (1.0 - damping) / n;
  // Messages carry the sender's rank share, bit-cast to the edge word.
  engine.SeedAllMessages([&](VertexId v) {
    const uint32_t d = graph.OutDegree(v);
    return d == 0 ? OocEngine::kNoMessage
                  : std::bit_cast<TmWord>(damping * rank[v] / d);
  });
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::atomic<uint64_t> delta_bits{0};  // Accumulated |delta| (approx).
    std::atomic<double> delta{0.0};
    engine.RunIteration(
        [](TmWord acc, TmWord incoming, EdgeId) {
          if (acc == OocEngine::kNoMessage) return incoming;
          return std::bit_cast<TmWord>(std::bit_cast<double>(acc) +
                                       std::bit_cast<double>(incoming));
        },
        [&](VertexId v, TmWord merged, bool any) {
          const double sum = any ? std::bit_cast<double>(merged) : 0.0;
          const double next = base + sum;
          double expected = delta.load(std::memory_order_relaxed);
          const double d = std::fabs(next - rank[v]);
          while (!delta.compare_exchange_weak(expected, expected + d,
                                              std::memory_order_relaxed)) {
          }
          rank[v] = next;
          const uint32_t deg = graph.OutDegree(v);
          return deg == 0 ? OocEngine::kNoMessage
                          : std::bit_cast<TmWord>(damping * next / deg);
        });
    (void)delta_bits;
    result.iterations = iter + 1;
    if (delta.load() / n < tolerance) break;
  }
  return result;
}

inline std::vector<TmWord> OocBfs(OocEngine& engine, const Graph& graph,
                                  VertexId source) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> dist(n, OocEngine::kNoMessage);
  dist[source] = 0;
  engine.SeedMessages({source}, 1);
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    engine.RunIteration(
        [](TmWord acc, TmWord incoming, EdgeId) {
          return acc < incoming ? acc : incoming;
        },
        [&](VertexId v, TmWord merged, bool any) -> TmWord {
          if (any && merged < dist[v]) {
            dist[v] = merged;
            changed.store(true, std::memory_order_relaxed);
          }
          return dist[v] == OocEngine::kNoMessage ? OocEngine::kNoMessage
                                                  : dist[v] + 1;
        });
  }
  return dist;
}

inline std::vector<TmWord> OocWcc(OocEngine& engine, const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  engine.SeedAllMessages([&](VertexId v) { return label[v]; });
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    engine.RunIteration(
        [](TmWord acc, TmWord incoming, EdgeId) {
          return acc < incoming ? acc : incoming;
        },
        [&](VertexId v, TmWord merged, bool any) {
          if (any && merged < label[v]) {
            label[v] = merged;
            changed.store(true, std::memory_order_relaxed);
          }
          return label[v];
        });
  }
  return label;
}

inline std::vector<TmWord> OocSssp(OocEngine& engine, const Graph& graph,
                                   VertexId source) {
  TUFAST_CHECK(graph.HasWeights());
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> dist(n, OocEngine::kNoMessage);
  dist[source] = 0;
  // Messages carry the sender's distance; per-edge weights are added at
  // gather time via the reversed position.
  engine.SeedMessages({source}, 0);
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    engine.RunIteration(
        [&](TmWord acc, TmWord incoming, EdgeId pos) {
          const TmWord candidate = incoming + engine.InEdgeWeight(pos);
          return acc < candidate ? acc : candidate;
        },
        [&](VertexId v, TmWord merged, bool any) {
          if (any && merged < dist[v]) {
            dist[v] = merged;
            changed.store(true, std::memory_order_relaxed);
          }
          return dist[v];  // kNoMessage while unreached.
        });
  }
  return dist;
}

/// Luby-style MIS over messages: encoded priority (strictly positive) or
/// 0 for "I am IN". A vertex joins when it beats every active neighbor.
inline std::vector<TmWord> OocMis(OocEngine& engine, const Graph& graph,
                                  uint64_t seed) {
  constexpr TmWord kUndecided = 0, kIn = 1, kOut = 2;
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> state(n, kUndecided);
  std::vector<TmWord> encoded(n);
  Rng rng(seed);
  for (VertexId v = 0; v < n; ++v) {
    // Strictly positive, collision-free enough: 34 random bits + id.
    encoded[v] = ((rng.Next() >> 30) << 30 | v) + 1;
  }
  engine.SeedAllMessages([&](VertexId v) { return encoded[v]; });
  std::atomic<bool> undecided_left{true};
  while (undecided_left.load(std::memory_order_relaxed)) {
    undecided_left.store(false, std::memory_order_relaxed);
    engine.RunIteration(
        [](TmWord acc, TmWord incoming, EdgeId) {
          return acc < incoming ? acc : incoming;
        },
        [&](VertexId v, TmWord merged, bool any) -> TmWord {
          if (state[v] == kUndecided) {
            if (any && merged == 0) {
              state[v] = kOut;  // Some neighbor announced IN.
            } else if (!any || merged > encoded[v]) {
              state[v] = kIn;  // Local minimum among active neighbors.
            } else {
              undecided_left.store(true, std::memory_order_relaxed);
            }
          }
          switch (state[v]) {
            case kIn: return 0;  // Announce IN.
            case kOut: return OocEngine::kNoMessage;
            default: return encoded[v];
          }
        });
  }
  return state;
}

/// Triangle counting: stream the edge file once (the engine's traffic
/// model) and intersect in memory.
inline uint64_t OocTriangleCount(OocEngine& engine, const Graph& graph) {
  engine.RunIteration(
      [](TmWord acc, TmWord, EdgeId) { return acc; },
      [](VertexId, TmWord, bool) { return OocEngine::kNoMessage; });
  std::atomic<uint64_t> total{0};
  ParallelForChunked(
      engine.pool(), 0, graph.NumVertices(), 64,
      [&](int, uint64_t lo, uint64_t hi) {
        uint64_t local = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          const VertexId v = static_cast<VertexId>(i);
          const auto nv = graph.OutNeighbors(v);
          for (size_t a = 0; a < nv.size(); ++a) {
            const VertexId u = nv[a];
            if (u <= v) continue;
            const auto nu = graph.OutNeighbors(u);
            size_t x = a + 1, y = 0;
            while (x < nv.size() && y < nu.size()) {
              if (nv[x] < nu[y]) {
                ++x;
              } else if (nu[y] < nv[x]) {
                ++y;
              } else {
                if (nv[x] > u) ++local;
                ++x;
                ++y;
              }
            }
          }
        }
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load();
}

}  // namespace tufast

#endif  // TUFAST_ENGINES_OOC_ALGORITHMS_H_
