#include "bench_support/datasets.h"

#include "graph/generators.h"

namespace tufast {

std::vector<DatasetSpec> BenchDatasets(double scale) {
  // Vertex counts chosen so a full bench sweep finishes in minutes on one
  // core; average degrees match paper Table II (|E|/|V| of the
  // originals). The web graphs (sk-2005, uk-2007-05) get a higher alpha:
  // web graphs are more skewed than social networks.
  auto scaled = [scale](VertexId n) {
    const VertexId v = static_cast<VertexId>(n * scale);
    return v < 1024 ? 1024 : v;
  };
  return {
      {"friendster-s", "friendster (65.6M/1806M)", scaled(40000), 27.53, 0.65,
       101},
      {"twitter-s", "twitter-mpi (52.6M/1963M)", scaled(32000), 37.05, 0.75,
       102},
      {"sk-2005-s", "sk-2005 (50.6M/1949M)", scaled(32000), 38.50, 0.85, 103},
      {"uk-2007-s", "uk-2007-05 (105.8M/3738M)", scaled(64000), 35.31, 0.85,
       104},
  };
}

Graph GenerateDataset(const DatasetSpec& spec, bool weighted) {
  const EdgeId edges =
      static_cast<EdgeId>(spec.avg_degree * spec.num_vertices);
  return GeneratePowerLaw(spec.num_vertices, edges, spec.seed,
                          {.alpha = spec.alpha, .weighted = weighted});
}

}  // namespace tufast
