#ifndef TUFAST_BENCH_SUPPORT_DATASETS_H_
#define TUFAST_BENCH_SUPPORT_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace tufast {

/// Scaled-down synthetic stand-ins for the paper's four datasets
/// (Table II). Real graphs are 1.8–3.7 B edges / 16–33 GB — far beyond
/// this environment — so each stand-in preserves the property TuFast's
/// design exploits: the average degree of the original and a power-law
/// (or, for the web graphs, an even more skewed) degree profile. Load a
/// real SNAP edge list through graph/io.h to swap the originals in.
struct DatasetSpec {
  std::string name;        ///< e.g. "friendster-s"
  std::string original;    ///< Paper dataset it stands in for.
  VertexId num_vertices;
  double avg_degree;       ///< Matches the original's |E|/|V| (Table II).
  double alpha;            ///< Zipf skew of the generator.
  uint64_t seed;
};

/// The four Table II stand-ins at the default bench scale.
std::vector<DatasetSpec> BenchDatasets(double scale = 1.0);

/// Generates the graph for a spec (weighted: uniform 1..100 weights).
Graph GenerateDataset(const DatasetSpec& spec, bool weighted = false);

}  // namespace tufast

#endif  // TUFAST_BENCH_SUPPORT_DATASETS_H_
