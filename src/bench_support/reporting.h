#ifndef TUFAST_BENCH_SUPPORT_REPORTING_H_
#define TUFAST_BENCH_SUPPORT_REPORTING_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "tm/telemetry.h"

namespace tufast {

/// Aligned-column table printer for benchmark harness output (the rows
/// and series each paper table/figure reports). Prints to stdout in a
/// markdown-compatible layout so EXPERIMENTS.md can embed outputs
/// directly. Every printed table is also mirrored into the process-wide
/// JsonReport when --json-out= is set.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Formats a double with sensible precision (3 significant-ish digits).
  static std::string Num(double value);
  static std::string Int(uint64_t value);

  /// Prints "### title" followed by the aligned table.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Process-wide JSON mirror of benchmark output, enabled by the shared
/// --json-out=<path> bench flag (BenchFlags::Parse calls SetOutputPath).
/// Collects every ReportTable printed plus any telemetry snapshots the
/// harness records, and writes one JSON document at process exit (or on
/// an explicit Write()). All entry points are no-ops until enabled, so
/// benches call them unconditionally.
class JsonReport {
 public:
  static void SetOutputPath(const std::string& path);
  static bool enabled();

  /// Mirrors one printed table: {"title":..,"headers":[..],"rows":[[..]]}.
  static void AddTable(const std::string& title,
                       const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows);

  /// Records a named telemetry snapshot: {"name":..,"telemetry":{..}}.
  static void AddTelemetry(const std::string& name,
                           const TelemetrySnapshot& snapshot);

  /// Writes the document now. Also runs automatically at exit.
  static void Write();

  /// JSON string escaping (exposed for tests).
  static std::string Escape(const std::string& text);
};

/// Serializers used by JsonReport and the telemetry golden tests.
std::string LogHistogramToJson(const LogHistogram& hist);
std::string TelemetrySnapshotToJson(const TelemetrySnapshot& snapshot);

/// Prints (and mirrors to JSON) the batch-executor fusion summary of a
/// telemetry snapshot: fused regions/items, fusion aborts, and the
/// width / bisection-depth histogram quantiles. No-op when the snapshot
/// recorded no fused regions (per-item benches stay uncluttered).
void PrintFusionSummary(const TelemetrySnapshot& snapshot,
                        const std::string& title);

/// Prints (and mirrors to JSON) the progress-guard summary: backoff
/// volume, starvation escalations/tokens, breaker transitions and
/// bypasses, and the per-transaction abort-count tail. No-op when the
/// snapshot saw no guard activity at all (uncontended runs stay quiet).
void PrintProgressSummary(const TelemetrySnapshot& snapshot,
                          const std::string& title);

}  // namespace tufast

#endif  // TUFAST_BENCH_SUPPORT_REPORTING_H_
