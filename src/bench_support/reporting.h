#ifndef TUFAST_BENCH_SUPPORT_REPORTING_H_
#define TUFAST_BENCH_SUPPORT_REPORTING_H_

#include <string>
#include <vector>

namespace tufast {

/// Aligned-column table printer for benchmark harness output (the rows
/// and series each paper table/figure reports). Prints to stdout in a
/// markdown-compatible layout so EXPERIMENTS.md can embed outputs
/// directly.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Formats a double with sensible precision (3 significant-ish digits).
  static std::string Num(double value);
  static std::string Int(uint64_t value);

  /// Prints "### title" followed by the aligned table.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tufast

#endif  // TUFAST_BENCH_SUPPORT_REPORTING_H_
