#include "bench_support/reporting.h"

#include <cinttypes>
#include <cstdio>

#include "common/compiler.h"

namespace tufast {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  TUFAST_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Num(double value) {
  char buf[64];
  if (value == 0) {
    return "0";
  } else if (value >= 1000 || value <= -1000) {
    std::snprintf(buf, sizeof(buf), "%.3g", value);
  } else if (value >= 1 || value <= -1) {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

std::string ReportTable::Int(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

void ReportTable::Print(const std::string& title) const {
  std::printf("\n### %s\n\n", title.c_str());
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

}  // namespace tufast
