#include "bench_support/reporting.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/compiler.h"

namespace tufast {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  TUFAST_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Num(double value) {
  char buf[64];
  if (value == 0) {
    return "0";
  } else if (value >= 1000 || value <= -1000) {
    std::snprintf(buf, sizeof(buf), "%.3g", value);
  } else if (value >= 1 || value <= -1) {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

std::string ReportTable::Int(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

void ReportTable::Print(const std::string& title) const {
  std::printf("\n### %s\n\n", title.c_str());
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);

  JsonReport::AddTable(title, headers_, rows_);
}

namespace {

struct JsonReportState {
  std::mutex mu;
  std::string path;
  std::vector<std::string> tables;     // Pre-serialized JSON objects.
  std::vector<std::string> telemetry;  // Pre-serialized JSON objects.
};

JsonReportState& State() {
  static JsonReportState* state = new JsonReportState;  // Leak: exit-safe.
  return *state;
}

std::string JoinObjects(const std::vector<std::string>& objects) {
  std::string out = "[";
  for (size_t i = 0; i < objects.size(); ++i) {
    if (i > 0) out += ",";
    out += objects[i];
  }
  out += "]";
  return out;
}

std::string StringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonReport::Escape(items[i]) + "\"";
  }
  out += "]";
  return out;
}

std::string U64(uint64_t value) { return ReportTable::Int(value); }

}  // namespace

void JsonReport::SetOutputPath(const std::string& path) {
  auto& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  const bool first = s.path.empty();
  s.path = path;
  if (first && !path.empty()) std::atexit(&JsonReport::Write);
}

bool JsonReport::enabled() {
  auto& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return !s.path.empty();
}

void JsonReport::AddTable(const std::string& title,
                          const std::vector<std::string>& headers,
                          const std::vector<std::vector<std::string>>& rows) {
  if (!enabled()) return;
  std::string obj = "{\"title\":\"" + Escape(title) + "\",";
  obj += "\"headers\":" + StringArray(headers) + ",\"rows\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) obj += ",";
    obj += StringArray(rows[r]);
  }
  obj += "]}";
  auto& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.tables.push_back(std::move(obj));
}

void JsonReport::AddTelemetry(const std::string& name,
                              const TelemetrySnapshot& snapshot) {
  if (!enabled()) return;
  std::string obj = "{\"name\":\"" + Escape(name) +
                    "\",\"telemetry\":" + TelemetrySnapshotToJson(snapshot) +
                    "}";
  auto& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.telemetry.push_back(std::move(obj));
}

void JsonReport::Write() {
  auto& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.path.empty()) return;
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "json-out: cannot open '%s' for writing\n",
                 s.path.c_str());
    return;
  }
  const std::string doc = "{\"tables\":" + JoinObjects(s.tables) +
                          ",\"telemetry\":" + JoinObjects(s.telemetry) + "}\n";
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
}

std::string JsonReport::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string LogHistogramToJson(const LogHistogram& hist) {
  std::string out = "{\"count\":" + U64(hist.count()) +
                    ",\"sum\":" + U64(hist.sum()) +
                    ",\"min\":" + U64(hist.min()) +
                    ",\"max\":" + U64(hist.max()) +
                    ",\"p50\":" + U64(hist.ApproxQuantile(0.5)) +
                    ",\"p99\":" + U64(hist.ApproxQuantile(0.99)) + "}";
  return out;
}

std::string TelemetrySnapshotToJson(const TelemetrySnapshot& snap) {
  std::string out = "{";
  out += "\"begins\":" + U64(snap.begins);
  out += ",\"user_aborts\":" + U64(snap.user_aborts);
  out += ",\"deadlock_cycle_victims\":" + U64(snap.deadlock_cycle_victims);
  out += ",\"deadlock_timeout_victims\":" + U64(snap.deadlock_timeout_victims);

  out += ",\"commits\":{";
  for (int c = 0; c < kNumTxnClasses; ++c) {
    if (c > 0) out += ",";
    const TxnClass cls = static_cast<TxnClass>(c);
    out += "\"" + std::string(TxnClassName(cls)) +
           "\":{\"count\":" + U64(snap.commits[c]) +
           ",\"ops\":" + U64(snap.commit_ops[c]) +
           ",\"latency_ns\":" + LogHistogramToJson(snap.commit_latency_ns[c]) +
           "}";
  }
  out += "}";

  out += ",\"time_in_mode_ns\":{";
  for (int m = 0; m < kNumSchedModes; ++m) {
    if (m > 0) out += ",";
    out += "\"" + std::string(SchedModeName(static_cast<SchedMode>(m))) +
           "\":" + U64(snap.time_in_mode_ns[m]);
  }
  out += "}";

  out += ",\"aborts\":{";
  for (int m = 0; m < kNumSchedModes; ++m) {
    if (m > 0) out += ",";
    out += "\"" + std::string(SchedModeName(static_cast<SchedMode>(m))) +
           "\":{";
    for (int r = 0; r < kNumAbortReasons; ++r) {
      if (r > 0) out += ",";
      out += "\"" +
             std::string(AbortReasonName(static_cast<AbortReason>(r))) +
             "\":" + U64(snap.aborts[m][r]);
    }
    out += "}";
  }
  out += "}";

  out += ",\"transitions\":{";
  bool first_edge = true;
  for (int m = 0; m < kNumSchedModes; ++m) {
    for (int n = 0; n < kNumSchedModes; ++n) {
      if (snap.transitions[m][n] == 0) continue;
      if (!first_edge) out += ",";
      first_edge = false;
      out += "\"" + std::string(SchedModeName(static_cast<SchedMode>(m))) +
             "->" + std::string(SchedModeName(static_cast<SchedMode>(n))) +
             "\":" + U64(snap.transitions[m][n]);
    }
  }
  out += "}";

  out += ",\"period\":" + LogHistogramToJson(snap.period_hist);
  out += ",\"last_period\":" + U64(snap.last_period);

  out += ",\"fusion\":{";
  out += "\"fused_regions\":" + U64(snap.fused_regions);
  out += ",\"fused_items\":" + U64(snap.fused_items);
  out += ",\"fusion_aborts\":" + U64(snap.fusion_aborts);
  out += ",\"width\":" + LogHistogramToJson(snap.fusion_width_hist);
  out += ",\"bisection_depth\":" + LogHistogramToJson(snap.bisection_depth_hist);
  out += "}";

  out += ",\"progress\":{";
  out += "\"backoff_events\":" + U64(snap.backoff_events);
  out += ",\"backoff_pauses\":" + U64(snap.backoff_pauses);
  out += ",\"starvation_escalations\":" + U64(snap.starvation_escalations);
  out += ",\"starvation_tokens\":" + U64(snap.starvation_tokens);
  out += ",\"breaker_trips\":" + U64(snap.breaker_trips);
  out += ",\"breaker_half_opens\":" + U64(snap.breaker_half_opens);
  out += ",\"breaker_closes\":" + U64(snap.breaker_closes);
  out += ",\"breaker_bypass\":" + U64(snap.breaker_bypass);
  out += ",\"txn_aborts\":" + LogHistogramToJson(snap.txn_abort_hist);
  out += ",\"max_txn_aborts\":" + U64(snap.max_txn_aborts);
  out += "}";

  out += ",\"serve\":{";
  out += "\"requests\":" + U64(snap.serve_requests);
  out += ",\"queue_delay_ns\":" + U64(snap.serve_queue_delay_ns);
  out += ",\"max_queue_delay_ns\":" + U64(snap.serve_max_queue_delay_ns);
  out += ",\"queue_delay\":" + LogHistogramToJson(snap.serve_queue_delay_hist);
  out += "}";
  out += "}";
  return out;
}

void PrintFusionSummary(const TelemetrySnapshot& snap,
                        const std::string& title) {
  if (snap.fused_regions == 0) return;
  ReportTable table({"fused regions", "fused items", "avg width",
                     "p50 width", "p99 width", "fusion aborts",
                     "p50 bisect depth", "p99 bisect depth"});
  table.AddRow(
      {ReportTable::Int(snap.fused_regions),
       ReportTable::Int(snap.fused_items),
       ReportTable::Num(static_cast<double>(snap.fused_items) /
                        snap.fused_regions),
       ReportTable::Int(snap.fusion_width_hist.ApproxQuantile(0.5)),
       ReportTable::Int(snap.fusion_width_hist.ApproxQuantile(0.99)),
       ReportTable::Int(snap.fusion_aborts),
       ReportTable::Int(snap.bisection_depth_hist.ApproxQuantile(0.5)),
       ReportTable::Int(snap.bisection_depth_hist.ApproxQuantile(0.99))});
  table.Print(title);
}

void PrintProgressSummary(const TelemetrySnapshot& snap,
                          const std::string& title) {
  if (snap.backoff_events == 0 && snap.starvation_escalations == 0 &&
      snap.starvation_tokens == 0 && snap.breaker_trips == 0 &&
      snap.breaker_bypass == 0 && snap.max_txn_aborts == 0) {
    return;
  }
  ReportTable table({"backoff events", "backoff pauses", "starved",
                     "tokens", "breaker trips", "half-opens", "closes",
                     "bypassed", "p99 txn aborts", "max txn aborts"});
  table.AddRow({ReportTable::Int(snap.backoff_events),
                ReportTable::Int(snap.backoff_pauses),
                ReportTable::Int(snap.starvation_escalations),
                ReportTable::Int(snap.starvation_tokens),
                ReportTable::Int(snap.breaker_trips),
                ReportTable::Int(snap.breaker_half_opens),
                ReportTable::Int(snap.breaker_closes),
                ReportTable::Int(snap.breaker_bypass),
                ReportTable::Int(snap.txn_abort_hist.ApproxQuantile(0.99)),
                ReportTable::Int(snap.max_txn_aborts)});
  table.Print(title);
}

}  // namespace tufast
