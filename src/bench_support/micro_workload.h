#ifndef TUFAST_BENCH_SUPPORT_MICRO_WORKLOAD_H_
#define TUFAST_BENCH_SUPPORT_MICRO_WORKLOAD_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/thread_pool.h"
#include "tm/batch_executor.h"
#include "tm/outcome.h"

namespace tufast {

/// The paper's two abstract scheduler-throughput workloads (§VI-B):
///  RM ("Read Mostly"): a transaction reads a vertex and all its
///      neighbors and writes only the vertex itself;
///  RW ("Read and Write"): it reads AND writes the vertex and all its
///      neighbors.
enum class MicroWorkloadKind { kReadMostly, kReadWrite };

struct MicroWorkloadResult {
  double seconds = 0;
  uint64_t transactions = 0;
  uint64_t operations = 0;

  double TxnPerSec() const {
    return seconds > 0 ? transactions / seconds : 0;
  }
  double OpsPerSec() const { return seconds > 0 ? operations / seconds : 0; }
};

struct MicroWorkloadOptions {
  MicroWorkloadKind kind = MicroWorkloadKind::kReadMostly;
  uint64_t transactions_per_thread = 20000;
  uint64_t seed = 7;
  /// Fraction of transactions whose subject vertex is drawn from the
  /// small hot set (contention knob for paper Fig. 7); the rest are
  /// uniform. 0 = uncontended.
  double hot_fraction = 0.0;
  uint32_t hot_set_size = 16;
  /// Use ReadForUpdate (declared write intent) for vertices that will be
  /// written: locking schedulers then take exclusive locks up front
  /// instead of upgrading (avoids mutual-upgrade deadlocks). Used by the
  /// Fig. 7 study, where the 2PL baseline is run the way a careful 2PL
  /// application would be written.
  bool declare_write_intent = false;
  /// Sleep inserted mid-transaction (between the read and write phases),
  /// in microseconds. On a single-core host transactions otherwise run to
  /// completion within one timeslice and never temporally overlap; the
  /// delay restores the overlap a multi-core machine has naturally (used
  /// by the Fig. 7 contention study). 0 = off.
  uint32_t mid_txn_delay_us = 0;
};

/// Runs the micro-workload on any scheduler with the common Run()
/// interface; `values` must have one TmWord per vertex.
template <typename Scheduler>
MicroWorkloadResult RunMicroWorkload(Scheduler& tm, ThreadPool& pool,
                                     const Graph& graph,
                                     std::vector<TmWord>& values,
                                     MicroWorkloadOptions options) {
  const VertexId n = graph.NumVertices();
  std::vector<uint64_t> ops_by_worker(pool.num_threads(), 0);
  WallTimer timer;
  pool.RunOnAll([&](int worker) {
    Rng rng(options.seed + static_cast<uint64_t>(worker) * 7919);
    uint64_t ops = 0;
    for (uint64_t i = 0; i < options.transactions_per_thread; ++i) {
      VertexId v;
      if (options.hot_fraction > 0 && rng.NextBool(options.hot_fraction)) {
        v = static_cast<VertexId>(rng.NextBounded(options.hot_set_size));
      } else {
        v = static_cast<VertexId>(rng.NextBounded(n));
      }
      const bool intent = options.declare_write_intent;
      const RunOutcome outcome =
          tm.Run(worker, graph.OutDegree(v) + 1, [&](auto& txn) {
            TmWord sum = intent ? txn.ReadForUpdate(v, &values[v])
                                : txn.Read(v, &values[v]);
            if (options.kind == MicroWorkloadKind::kReadMostly) {
              for (const VertexId u : graph.OutNeighbors(v)) {
                sum += txn.Read(u, &values[u]);
              }
              if (options.mid_txn_delay_us > 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(options.mid_txn_delay_us));
              }
              txn.Write(v, &values[v], sum + 1);
            } else {
              for (const VertexId u : graph.OutNeighbors(v)) {
                const TmWord x = intent ? txn.ReadForUpdate(u, &values[u])
                                        : txn.Read(u, &values[u]);
                txn.Write(u, &values[u], x + 1);
                sum += x;
              }
              if (options.mid_txn_delay_us > 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(options.mid_txn_delay_us));
              }
              txn.Write(v, &values[v], sum + 1);
            }
          });
      ops += outcome.ops;
    }
    ops_by_worker[worker] = ops;
  });
  MicroWorkloadResult result;
  result.seconds = timer.ElapsedSeconds();
  result.transactions =
      options.transactions_per_thread * pool.num_threads();
  for (const uint64_t ops : ops_by_worker) result.operations += ops;
  return result;
}

/// Batched twin of RunMicroWorkload: the same transaction stream driven
/// through the batch executor (tm/batch_executor.h) in windows of
/// `window` items, so TuFast fuses runs of small transactions into
/// single H-mode regions while the baselines fall back to per-item
/// Run(). Subject vertices are pre-drawn from the same RNG stream as the
/// unbatched runner, so both variants execute the same logical work.
template <typename Scheduler>
MicroWorkloadResult RunMicroWorkloadBatched(Scheduler& tm, ThreadPool& pool,
                                            const Graph& graph,
                                            std::vector<TmWord>& values,
                                            MicroWorkloadOptions options,
                                            uint64_t window = 64) {
  const VertexId n = graph.NumVertices();
  if (window == 0) window = 1;
  std::vector<uint64_t> ops_by_worker(pool.num_threads(), 0);
  WallTimer timer;
  pool.RunOnAll([&](int worker) {
    Rng rng(options.seed + static_cast<uint64_t>(worker) * 7919);
    std::vector<VertexId> subjects(options.transactions_per_thread);
    for (VertexId& v : subjects) {
      if (options.hot_fraction > 0 && rng.NextBool(options.hot_fraction)) {
        v = static_cast<VertexId>(rng.NextBounded(options.hot_set_size));
      } else {
        v = static_cast<VertexId>(rng.NextBounded(n));
      }
    }
    const bool intent = options.declare_write_intent;
    uint64_t ops = 0;
    auto body = [&](auto& txn, uint64_t k) {
      const VertexId v = subjects[k];
      TmWord sum = intent ? txn.ReadForUpdate(v, &values[v])
                          : txn.Read(v, &values[v]);
      if (options.kind == MicroWorkloadKind::kReadMostly) {
        for (const VertexId u : graph.OutNeighbors(v)) {
          sum += txn.Read(u, &values[u]);
        }
        txn.Write(v, &values[v], sum + 1);
      } else {
        for (const VertexId u : graph.OutNeighbors(v)) {
          const TmWord x = intent ? txn.ReadForUpdate(u, &values[u])
                                  : txn.Read(u, &values[u]);
          txn.Write(u, &values[u], x + 1);
          sum += x;
        }
        txn.Write(v, &values[v], sum + 1);
      }
    };
    for (uint64_t i = 0; i < subjects.size(); i += window) {
      const uint64_t hi = i + window < subjects.size() ? i + window
                                                       : subjects.size();
      RunBatch(
          tm, worker, i, hi,
          [&](uint64_t k) { return graph.OutDegree(subjects[k]) + 1; }, body);
    }
    // Committed operation counts are structural (every item commits
    // exactly once): RM does deg + 2 ops, RW does 2 * deg + 2.
    for (const VertexId v : subjects) {
      const uint64_t deg = graph.OutDegree(v);
      ops += options.kind == MicroWorkloadKind::kReadMostly ? deg + 2
                                                            : 2 * deg + 2;
    }
    ops_by_worker[worker] = ops;
  });
  MicroWorkloadResult result;
  result.seconds = timer.ElapsedSeconds();
  result.transactions =
      options.transactions_per_thread * pool.num_threads();
  for (const uint64_t ops : ops_by_worker) result.operations += ops;
  return result;
}

}  // namespace tufast

#endif  // TUFAST_BENCH_SUPPORT_MICRO_WORKLOAD_H_
