#ifndef TUFAST_TM_TUFAST_H_
#define TUFAST_TM_TUFAST_H_

#include <memory>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/types.h"
#include "htm/emulated_htm.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "tm/contention_monitor.h"
#include "tm/modes.h"
#include "tm/outcome.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// TuFast: the paper's three-mode hybrid transactional memory.
///
/// Programming model (paper Table I / Fig. 1): wrap each logical task in
/// Run() with an optional size hint (typically the vertex degree); inside
/// the body, access shared words only through txn.Read/Write. The body
/// must be idempotent on private state — it may be re-executed on aborts
/// and across modes, so take `auto& txn` (each mode passes its own type):
///
///   tm.Run(worker, graph.OutDegree(v), [&](auto& txn) {
///     if (txn.Read(v, &match[v]) == kNull) { ... txn.Write(...); }
///   });
///
/// Routing (paper Fig. 10): H mode first (unless the hint rules it out),
/// with bounded retries on conflicts and an immediate hand-off on
/// capacity aborts; then O mode, halving `period` per failed attempt;
/// when `period` sinks below min_period, L mode finishes the job under
/// locks. `period` starts at the contention monitor's analytic optimum
/// (§IV-D) unless adaptive_period is off.
///
/// Per-worker state (mode contexts, contention monitor, stats, RNG) and
/// the `Telemetry` sink live in the shared WorkerRuntime; `Telemetry` is
/// NullTelemetry by default (zero overhead) or EventTelemetry for
/// per-mode latency/time-in-mode/abort-reason aggregation.
///
/// Thread model: worker ids in [0, kMaxHtmThreads) map 1:1 to OS threads;
/// each id's per-worker state must only ever be used by one thread.
template <typename Htm, typename Telemetry = NullTelemetry>
class TuFastScheduler {
 public:
  /// Fault-injection policy inherited from the HTM backend; Null (free)
  /// unless the backend is the stress harness's FaultyHtm.
  using Failpoints = HtmFailpoints<Htm>;

  struct Config {
    /// H-mode retries after conflict aborts before falling to O mode.
    int h_retries = 4;
    /// Size hints above this skip H mode (0 = derive from HTM capacity:
    /// half the line budget, since each op may touch a fresh line).
    uint64_t h_hint_threshold = 0;
    /// Size hints above this skip O mode too and go straight to locks.
    uint64_t o_hint_threshold = 16384;
    uint32_t min_period = 100;   // Paper: below this, proceed with L mode.
    /// Upper bound for the adaptive `period`. 0 = derive from the HTM
    /// capacity: each operation touches up to two fresh lines (data +
    /// vertex lock), so segments beyond ~MaxLines()/2 operations abort on
    /// capacity deterministically and only waste a re-execution.
    uint32_t max_period = 0;
    bool adaptive_period = true;
    uint32_t static_period = 1000;  // Used when adaptive_period is false.
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetection;
    /// Ablation switches (bench/ablation_modes.cc): disabling a mode
    /// routes its transactions to the next one in the Fig. 10 pipeline.
    bool enable_h_mode = true;
    bool enable_o_mode = true;
    /// Group-commit fusion (tm/batch_executor.h): RunBatch() fuses runs
    /// of small per-item transactions into single H-mode regions. Off =
    /// RunBatch degenerates to one Run() per item (bit-identical
    /// results; the equivalence tests rely on this).
    bool enable_fusion = true;
    /// Hard cap on the fusion width. The adaptive controller picks the
    /// working width in [1, max_fusion_width] from the monitored
    /// per-item abort probability (same P* analysis as the O period).
    uint32_t max_fusion_width = 16;
    /// Non-zero pins the fusion width (bench fusion-width sweep);
    /// 0 = adaptive.
    uint32_t fixed_fusion_width = 0;
    /// Give every vertex lock word its own cache line (sync/lock_table.h)
    /// to kill false sharing between adjacent vertices, at 8x the lock
    /// table footprint. Off by default: the dense layout wins whenever
    /// fused windows touch neighboring vertices (one line subscribes
    /// eight lock words).
    bool padded_lock_table = false;
  };

  TuFastScheduler(Htm& htm, VertexId num_vertices, Config config = {})
      : htm_(htm),
        config_(config),
        lock_table_(htm, num_vertices, config.padded_lock_table),
        lock_manager_(lock_table_, config.deadlock_policy),
        h_hint_threshold_(config.h_hint_threshold != 0
                              ? config.h_hint_threshold
                              : htm.config().MaxLines() / 2),
        max_period_(config.max_period != 0 ? config.max_period
                                           : htm.config().MaxLines() / 2 - 16),
        runtime_(0x70f5a7u) {
    TUFAST_CHECK(max_period_ >= config_.min_period);
    if constexpr (Telemetry::kEnabled) {
      lock_manager_.SetVictimHook(
          [](void* ctx, int slot, VertexId /*v*/, bool cycle) {
            auto* self = static_cast<TuFastScheduler*>(ctx);
            if (auto* w = self->runtime_.worker(slot)) {
              w->telemetry.DeadlockVictim(cycle);
            }
          },
          this);
    }
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(TuFastScheduler);

  /// Executes one transaction. Retries and mode escalation are internal;
  /// returns once the body committed or called txn.Abort().
  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t size_hint, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    return RunRouted(w, worker_id, size_hint, fn);
  }

  /// Batched execution of items [lo, hi) (tm/batch_executor.h): fuses
  /// runs of H-eligible items into single hardware regions — one
  /// BEGIN/COMMIT and one set of lock-word subscriptions per window —
  /// with capacity-aware window formation (the summed size hints of a
  /// window must fit the H budget), abort-driven bisection (halve the
  /// width and retry; width 1 degrades to the normal H->O->L router),
  /// and an adaptive target width from the contention monitor's P*
  /// analysis applied to the per-item abort probability.
  ///
  /// `body(txn, i)` and `hint(i)` follow the batch_executor.h contract;
  /// items whose hint exceeds the H threshold, and all items when fusion
  /// or H mode is disabled, are routed per-item exactly like Run().
  template <typename HintFn, typename BodyFn>
  void RunBatch(int worker_id, uint64_t lo, uint64_t hi, HintFn&& hint,
                BodyFn&& body) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    if (!config_.enable_fusion || !config_.enable_h_mode) {
      for (uint64_t i = lo; i < hi; ++i) {
        RunItemRouted(w, worker_id, i, hint, body);
      }
      return;
    }
    uint64_t i = lo;
    while (i < hi) {
      const uint64_t first_hint = hint(i);
      if (first_hint > h_hint_threshold_) {
        // Too big for H mode: route per-item (O or L will take it).
        RunItemRouted(w, worker_id, i, hint, body);
        ++i;
        continue;
      }
      const uint32_t target =
          config_.fixed_fusion_width != 0
              ? config_.fixed_fusion_width
              : w.state.monitor.CurrentFusionWidth(config_.max_fusion_width);
      // Grow the window while the next item keeps the summed footprint
      // hint within the H budget — a window whose hints already exceed
      // capacity would only pay a deterministic abort plus bisection.
      uint64_t budget = first_hint;
      uint64_t j = i + 1;
      while (j < hi && (j - i) < target) {
        const uint64_t hj = hint(j);
        if (hj > h_hint_threshold_ || budget + hj > h_hint_threshold_) break;
        budget += hj;
        ++j;
      }
      ExecuteFusedRange(w, worker_id, i, j, hint, body, /*depth=*/0);
      i = j;
    }
  }

 private:
  /// Scheduler-specific per-worker payload; stats/telemetry/RNG live in
  /// the shared WorkerRuntime slot around it.
  struct State {
    State(TuFastScheduler& parent, int slot)
        : htx(parent.htm_, slot),
          otxn(parent.htm_, htx, parent.lock_table_,
               parent.config_.o_hint_threshold + 64),
          ltxn(parent.htm_, slot, parent.lock_manager_),
          monitor(ContentionMonitor::Config{
              .decay = 0.999,
              .min_period = parent.config_.min_period,
              .max_period = parent.max_period_,
              .initial_p = 0.0}) {}

    typename Htm::Tx htx;
    OTxn<Htm> otxn;
    LTxn<Htm> ltxn;
    ContentionMonitor monitor;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  /// One per-item transaction inside a batch: same accounting and
  /// routing as Run(), with the item index bound into the body.
  template <typename HintFn, typename BodyFn>
  void RunItemRouted(Worker& w, int worker_id, uint64_t i, HintFn& hint,
                     BodyFn& body) {
    w.telemetry.TxnBegin();
    auto item_fn = [&body, i](auto& txn) { body(txn, i); };
    RunRouted(w, worker_id, hint(i), item_fn);
  }

  /// One fused attempt over items [lo, hi), bisecting on abort. `depth`
  /// counts the halvings since the original window. Terminates: the
  /// width strictly shrinks toward the width-1 base case, which is the
  /// ordinary (terminating) per-item router.
  template <typename HintFn, typename BodyFn>
  void ExecuteFusedRange(Worker& w, int worker_id, uint64_t lo, uint64_t hi,
                         HintFn& hint, BodyFn& body, uint32_t depth) {
    const uint64_t width = hi - lo;
    if (width == 1) {
      RunItemRouted(w, worker_id, lo, hint, body);
      return;
    }
    w.telemetry.EnterMode(SchedMode::kHardware);
    HTxn<Htm> htxn(w.state.htx, lock_table_);
    const FusedAttemptResult attempt =
        RunFusedHtmAttempt(w.state.htx, htxn, lo, hi, body);
    if (attempt.status.ok()) {
      w.state.monitor.RecordFusedAttempt(width, /*aborted=*/false);
      RecordFusedCommit(w, static_cast<uint32_t>(width), depth, attempt.ops);
      return;
    }
    // Any abort — capacity, conflict, lock-busy, or a user abort from
    // one of the fused bodies — bisects. A user abort is not final
    // here: bisection isolates the aborting item at width 1, where the
    // router delivers the per-item user-abort semantics.
    w.state.monitor.RecordFusedAttempt(width, /*aborted=*/true);
    RecordFusedAbort(w, static_cast<uint32_t>(width), attempt.status);
    const uint64_t mid = lo + width / 2;
    ExecuteFusedRange(w, worker_id, lo, mid, hint, body, depth + 1);
    ExecuteFusedRange(w, worker_id, mid, hi, hint, body, depth + 1);
  }

  /// The Fig. 10 router shared by Run() and the batch executor's
  /// per-item degradation path. The caller has already issued
  /// telemetry.TxnBegin().
  template <typename Fn>
  RunOutcome RunRouted(Worker& w, int worker_id, uint64_t size_hint, Fn& fn) {
    if (size_hint > config_.o_hint_threshold) {
      return RunLockTxnLoop(w, w.state.ltxn, fn, TxnClass::kL);
    }

    bool try_h = config_.enable_h_mode && size_hint <= h_hint_threshold_;
    if constexpr (Failpoints::kEnabled) {
      // Forced H -> O demotion: the transaction behaves exactly as if its
      // H retry budget were exhausted up front (paper Fig. 10 hand-off).
      if (try_h && Failpoints::Hit(FailSite::kRouterSkipH, worker_id) ==
                       FailAction::kFail) {
        try_h = false;
      }
    }
    if (try_h) {
      w.telemetry.EnterMode(SchedMode::kHardware);
      HTxn<Htm> htxn(w.state.htx, lock_table_);
      // Adaptive retry budget (paper SIV-D): under a high attempt-abort
      // rate, each retry re-executes the whole body just to abort again.
      const int h_retries =
          w.state.monitor.CurrentHRetries(config_.h_retries);
      for (int attempt = 0; attempt <= h_retries; ++attempt) {
        htxn.ResetOps();
        const AbortStatus status = w.state.htx.Execute([&] { fn(htxn); });
        if (status.ok()) {
          w.state.monitor.RecordAttempt(htxn.ops(), /*aborted=*/false);
          w.stats.RecordCommit(TxnClass::kH, htxn.ops());
          w.telemetry.TxnCommit(TxnClass::kH, htxn.ops());
          return RunOutcome{true, TxnClass::kH, htxn.ops()};
        }
        const HtmAttemptVerdict verdict = RecordHtmAbort(w, status);
        if (verdict == HtmAttemptVerdict::kUserAbort) {
          ++w.stats.user_aborts;
          w.telemetry.TxnUserAbort(TxnClass::kH);
          return RunOutcome{false, TxnClass::kH, 0};
        }
        w.state.monitor.RecordAttempt(htxn.ops(), /*aborted=*/true);
        if (verdict == HtmAttemptVerdict::kCapacity) {
          // Capacity aborts repeat deterministically: go to O directly
          // (paper Fig. 10).
          break;
        }
      }
    }

    bool try_o = config_.enable_o_mode;
    if constexpr (Failpoints::kEnabled) {
      // Forced O -> L demotion: as if every period halving had failed.
      if (try_o && Failpoints::Hit(FailSite::kRouterSkipO, worker_id) ==
                       FailAction::kFail) {
        try_o = false;
      }
    }
    if (!try_o) {
      return RunLockTxnLoop(w, w.state.ltxn, fn, TxnClass::kO2L);
    }
    return RunOptimisticThenLock(w, fn);
  }

 public:
  Htm& htm() { return htm_; }
  const Config& config() const { return config_; }
  LockTable<Htm>& lock_table() { return lock_table_; }
  uint64_t h_hint_threshold() const { return h_hint_threshold_; }

  /// Stats merged across all workers. Call only while no transaction is
  /// in flight (workers mutate their stats without synchronization).
  SchedulerStats AggregatedStats() const { return runtime_.AggregatedStats(); }

  /// Telemetry merged across all workers (same in-flight contract).
  Telemetry AggregatedTelemetry() const {
    return runtime_.AggregatedTelemetry();
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }

  HtmStats AggregatedHtmStats() const {
    HtmStats total;
    runtime_.ForEachWorker(
        [&](const Worker& w) { total.Merge(w.state.htx.stats()); });
    return total;
  }

  void ResetStats() {
    runtime_.ResetStats([](State& s) { s.htx.ResetStats(); });
  }

  /// Monitor introspection for the adaptive-period trace (Fig. 17).
  const ContentionMonitor* MonitorForWorker(int worker_id) const {
    const Worker* w = runtime_.worker(worker_id);
    return w != nullptr ? &w->state.monitor : nullptr;
  }

 private:
  /// O-mode loop plus the L-mode fallthrough (paper Fig. 10, lower half).
  /// Outlined and cold: only medium/huge transactions come here, and
  /// keeping the instantiations out of Run() preserves the H fast path's
  /// code generation (see TUFAST_NOINLINE_COLD).
  template <typename Fn>
  TUFAST_NOINLINE_COLD RunOutcome RunOptimisticThenLock(Worker& w, Fn& fn) {
    w.telemetry.EnterMode(SchedMode::kOptimistic);
    // Halve the segment length until it commits or sinks below
    // min_period.
    uint32_t period = config_.adaptive_period ? w.state.monitor.CurrentPeriod()
                                              : config_.static_period;
    bool first_attempt = true;
    while (period >= config_.min_period) {
      w.telemetry.PeriodChange(period);
      w.state.otxn.Reset(period);
      const AbortStatus status = w.state.htx.Execute([&] { fn(w.state.otxn); });
      if (status.ok()) {
        const OCommitResult result = w.state.otxn.CommitSoftware();
        if (result == OCommitResult::kOk) {
          const TxnClass cls =
              first_attempt ? TxnClass::kO : TxnClass::kOPlus;
          w.state.monitor.RecordAttempt(w.state.otxn.ops(), /*aborted=*/false);
          w.stats.RecordCommit(cls, w.state.otxn.ops());
          w.telemetry.TxnCommit(cls, w.state.otxn.ops());
          return RunOutcome{true, cls, w.state.otxn.ops()};
        }
        if (result == OCommitResult::kLockBusy) {
          ++w.stats.lock_busy_aborts;
          w.telemetry.AttemptAbort(AbortReason::kLockBusy);
        } else {
          ++w.stats.validation_aborts;
          w.telemetry.AttemptAbort(AbortReason::kValidation);
        }
        w.state.monitor.RecordAttempt(w.state.otxn.ops(), /*aborted=*/true);
      } else {
        const HtmAttemptVerdict verdict = RecordHtmAbort(w, status);
        if (verdict == HtmAttemptVerdict::kUserAbort) {
          ++w.stats.user_aborts;
          w.telemetry.TxnUserAbort(TxnClass::kO);
          return RunOutcome{false, TxnClass::kO, 0};
        }
        w.state.monitor.RecordAttempt(w.state.otxn.ops(), /*aborted=*/true);
      }
      period /= 2;
      first_attempt = false;
    }

    return RunLockTxnLoop(w, w.state.ltxn, fn, TxnClass::kO2L);
  }

  Htm& htm_;
  const Config config_;
  LockTable<Htm> lock_table_;
  LockManager<Htm> lock_manager_;
  const uint64_t h_hint_threshold_;
  const uint32_t max_period_;
  Runtime runtime_;
};

/// Default TuFast instantiation on the emulated HTM backend.
using TuFast = TuFastScheduler<EmulatedHtm>;

/// Instrumented variant: identical routing, EventTelemetry aggregation.
using TuFastInstrumented = TuFastScheduler<EmulatedHtm, EventTelemetry>;

}  // namespace tufast

#endif  // TUFAST_TM_TUFAST_H_
