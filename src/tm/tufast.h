#ifndef TUFAST_TM_TUFAST_H_
#define TUFAST_TM_TUFAST_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/spin.h"
#include "common/types.h"
#include "durability/wal.h"
#include "htm/emulated_htm.h"
#include "mvcc/version_store.h"
#include "sharding/shard_runtime.h"
#include "sharding/sharded_lock_table.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "tm/batch_executor.h"
#include "tm/combiner.h"
#include "tm/contention_history.h"
#include "tm/contention_monitor.h"
#include "tm/modes.h"
#include "tm/outcome.h"
#include "tm/progress_guard.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// TuFast: the paper's three-mode hybrid transactional memory.
///
/// Programming model (paper Table I / Fig. 1): wrap each logical task in
/// Run() with an optional size hint (typically the vertex degree); inside
/// the body, access shared words only through txn.Read/Write. The body
/// must be idempotent on private state — it may be re-executed on aborts
/// and across modes, so take `auto& txn` (each mode passes its own type):
///
///   tm.Run(worker, graph.OutDegree(v), [&](auto& txn) {
///     if (txn.Read(v, &match[v]) == kNull) { ... txn.Write(...); }
///   });
///
/// Routing (paper Fig. 10): H mode first (unless the hint rules it out),
/// with bounded retries on conflicts and an immediate hand-off on
/// capacity aborts; then O mode, halving `period` per failed attempt;
/// when `period` sinks below min_period, L mode finishes the job under
/// locks. `period` starts at the contention monitor's analytic optimum
/// (§IV-D) unless adaptive_period is off.
///
/// Per-worker state (mode contexts, contention monitor, stats, RNG) and
/// the `Telemetry` sink live in the shared WorkerRuntime; `Telemetry` is
/// NullTelemetry by default (zero overhead) or EventTelemetry for
/// per-mode latency/time-in-mode/abort-reason aggregation.
///
/// Thread model: worker ids in [0, kMaxHtmThreads) map 1:1 to OS threads;
/// each id's per-worker state must only ever be used by one thread.
///
/// `Table` plugs the conflict-space table: the classic shared LockTable
/// (default — bit-for-bit the pre-sharding scheduler) or the per-shard
/// ShardedLockTable. Orthogonally, Config::enable_sharding activates the
/// shard-per-core *routing* layer (sharding/): RunBatch items whose home
/// vertex is owned by another worker are enqueued to the owner's mailbox
/// as atomic active messages and drained there as one group-commit
/// batch; everything else runs locally. Because every worker can reach
/// every table word, routing is a pure locality/contention optimization
/// — any item may always fall back to local execution (full mailbox,
/// ship threshold), and results are independent of where items ran.
template <typename Htm, typename Telemetry = NullTelemetry,
          typename Table = LockTable<Htm>>
class TuFastScheduler {
 public:
  /// Fault-injection policy inherited from the HTM backend; Null (free)
  /// unless the backend is the stress harness's FaultyHtm.
  using Failpoints = HtmFailpoints<Htm>;
  /// Version store type (Config::enable_mvcc); shares the backend's
  /// failpoint policy so --mvcc-chaos reaches reclamation and epochs.
  using Mvcc = BasicMvccStore<Failpoints>;

  /// Whether the HTM backend's Tx exposes the commit hooks the H-mode
  /// MVCC install needs (EmulatedHtm does; a native backend without
  /// hooks can still run every non-MVCC configuration).
  static constexpr bool kHtmHasCommitHooks = kHtmTxHasCommitHooks<Htm>;

  struct Config {
    /// H-mode retries after conflict aborts before falling to O mode.
    int h_retries = 4;
    /// Size hints above this skip H mode (0 = derive from HTM capacity:
    /// half the line budget, since each op may touch a fresh line).
    uint64_t h_hint_threshold = 0;
    /// Size hints above this skip O mode too and go straight to locks.
    uint64_t o_hint_threshold = 16384;
    uint32_t min_period = 100;   // Paper: below this, proceed with L mode.
    /// Upper bound for the adaptive `period`. 0 = derive from the HTM
    /// capacity: each operation touches up to two fresh lines (data +
    /// vertex lock), so segments beyond ~MaxLines()/2 operations abort on
    /// capacity deterministically and only waste a re-execution.
    uint32_t max_period = 0;
    bool adaptive_period = true;
    uint32_t static_period = 1000;  // Used when adaptive_period is false.
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetection;
    /// Ablation switches (bench/ablation_modes.cc): disabling a mode
    /// routes its transactions to the next one in the Fig. 10 pipeline.
    bool enable_h_mode = true;
    bool enable_o_mode = true;
    /// Group-commit fusion (tm/batch_executor.h): RunBatch() fuses runs
    /// of small per-item transactions into single H-mode regions. Off =
    /// RunBatch degenerates to one Run() per item (bit-identical
    /// results; the equivalence tests rely on this).
    bool enable_fusion = true;
    /// Hard cap on the fusion width. The adaptive controller picks the
    /// working width in [1, max_fusion_width] from the monitored
    /// per-item abort probability (same P* analysis as the O period).
    uint32_t max_fusion_width = 16;
    /// Non-zero pins the fusion width (bench fusion-width sweep);
    /// 0 = adaptive.
    uint32_t fixed_fusion_width = 0;
    /// Give every vertex lock word its own cache line (sync/lock_table.h)
    /// to kill false sharing between adjacent vertices, at 8x the lock
    /// table footprint. Off by default: the dense layout wins whenever
    /// fused windows touch neighboring vertices (one line subscribes
    /// eight lock words).
    bool padded_lock_table = false;
    /// Progress guard (tm/progress_guard.h, DESIGN.md "Progress guard").
    /// enable_backoff gates the randomized exponential backoff between
    /// conflict retries in all three loops (H attempts, O period
    /// halvings, L victim restarts); off reproduces the pre-guard retry
    /// pacing bit-for-bit. The starvation thresholds drive the
    /// escalation ladder: priority aging (never a victim) past the
    /// first, the global starvation token (other waiters defer, fusion
    /// pauses) past the second.
    bool enable_backoff = true;
    uint32_t starvation_priority_threshold = 3;
    uint32_t starvation_token_threshold = 8;
    /// Abort-storm circuit breaker (tm/contention_monitor.h): sustained
    /// attempt-abort rate routes small transactions straight to L and
    /// clamps fusion to width 1 until half-open probes recover.
    bool enable_breaker = true;
    /// Shard-per-core ownership layer (sharding/, DESIGN.md "Sharding
    /// and atomic active messages"). Off by default: the unsharded
    /// RunBatch path stays bit-for-bit the pre-sharding executor.
    bool enable_sharding = false;
    /// Shard count (0 = one shard per owning worker).
    uint32_t num_shards = 0;
    /// Workers that own shards (cyclic deal, sharding/shard_map.h).
    /// Benches set this to the thread count; worker ids >= shard_workers
    /// own no shard and only ever send.
    uint32_t shard_workers = 1;
    /// Max messages fused into one group-commit drain batch.
    uint32_t am_batch = 32;
    /// Per-shard mailbox capacity (rounded up to a power of two). A full
    /// mailbox bounces the message back to local execution — messages
    /// are never dropped.
    uint32_t mailbox_capacity = 1024;
    /// Router ship threshold (ContentionMonitor-informed): cross-shard
    /// items are shipped as messages only while the worker's monitored
    /// attempt-abort rate is >= this; below it they run locally, since
    /// messaging overhead buys nothing without contention. 0.0 ships
    /// every cross-shard item.
    double shard_ship_abort_rate = 0.0;
    /// MVCC snapshot reads (mvcc/version_store.h, DESIGN.md "MVCC
    /// snapshot reads"). Off by default: the non-MVCC path stays
    /// bit-identical to a build with no version store at all (the
    /// equivalence suites rely on this). On, every commit path installs
    /// pre-image versions at its commit timestamp and RunReadOnly()
    /// executes abort-free snapshot transactions against them.
    bool enable_mvcc = false;
    /// Crash-consistent durability (durability/wal.h, DESIGN.md
    /// "Durability & crash recovery"). Off by default: the non-durable
    /// path stays bit-identical to a build with no WAL at all (the
    /// equivalence suites rely on this). On, every commit path stages
    /// its logical graph mutations (txn.WalNote) and publishes them as
    /// one checksummed record inside the commit window; Run() returns
    /// only after the record is durable per wal_sync (group commit: a
    /// concurrent worker's fsync may cover it).
    bool enable_wal = false;
    /// Log file path; required when enable_wal is set (the scheduler
    /// owns the writer). Alternatively attach an external sink with
    /// EnableWal() — the crash harness does, to arm failpoints.
    std::string wal_path;
    /// fsync policy for the owned group-commit writer.
    WalSyncPolicy wal_sync = WalSyncPolicy::kFsyncEachCommit;
    /// Hot-vertex flat combining (tm/combiner.h, DESIGN.md "Hot-vertex
    /// combining"). Off by default: the batch paths stay bit-for-bit the
    /// pre-combining executor (the equivalence suites rely on this). On,
    /// a per-region contention history (tm/contention_history.h) watches
    /// per-item attempt outcomes; batch items homed in a hot region are
    /// announced to the region's combiner cell and applied by whichever
    /// worker collects them as ONE fused group-commit batch, instead of
    /// competing (and aborting) against every other worker's copy of the
    /// same hub traffic.
    bool enable_combining = false;
    /// EWMA attempt-abort fraction (0, 1] at which a region turns hot;
    /// it cools only below half this (hysteresis against flapping).
    double hot_threshold = 0.5;
    /// Announce slots per combiner cell. A full slot array bounces the
    /// announce back to local execution — operations are never dropped.
    uint32_t combiner_slots = 8;
    /// Contention-history region buckets (rounded up to a power of two);
    /// one combiner cell per bucket.
    uint32_t combine_history_buckets = 1024;
  };

  TuFastScheduler(Htm& htm, VertexId num_vertices, Config config = {})
      : htm_(htm),
        config_(config),
        lock_table_(htm, num_vertices,
                    LockTableOptions{config.padded_lock_table,
                                     ResolvedShards(config)}),
        lock_manager_(lock_table_, config.deadlock_policy),
        h_hint_threshold_(config.h_hint_threshold != 0
                              ? config.h_hint_threshold
                              : htm.config().MaxLines() / 2),
        max_period_(config.max_period != 0 ? config.max_period
                                           : htm.config().MaxLines() / 2 - 16),
        progress_guard_(ProgressGuard::Config{
            .priority_threshold = config.starvation_priority_threshold,
            .token_threshold = config.starvation_token_threshold,
            .enabled = true}),
        runtime_(0x70f5a7u) {
    TUFAST_CHECK(max_period_ >= config_.min_period);
    if (config_.enable_mvcc) {
      // H-mode commits install versions through the backend's commit
      // hooks; a hook-less backend would silently skip them and hand
      // snapshot readers torn history.
      TUFAST_CHECK(kHtmHasCommitHooks);
      mvcc_ = std::make_unique<Mvcc>(num_vertices);
    }
    if (config_.enable_wal) {
      // H-mode commits publish WAL records through the backend's commit
      // hooks; a hook-less backend would silently drop them and break
      // the every-acked-commit-durable contract.
      TUFAST_CHECK(kHtmHasCommitHooks);
      TUFAST_CHECK(!config_.wal_path.empty());
      owned_wal_ = std::make_unique<BasicWalWriter<Failpoints>>(
          config_.wal_path, config_.wal_sync);
      TUFAST_CHECK(owned_wal_->ok());
      wal_sink_ = owned_wal_.get();
    }
    if (config_.enable_sharding) {
      sharding_ = std::make_unique<ShardRuntime>(ShardRuntime::Options{
          num_vertices, ResolvedShards(config_), ResolvedWorkers(config_),
          config_.mailbox_capacity});
    }
    if (config_.enable_combining) {
      combining_ = std::make_unique<CombinerRuntime>(CombinerRuntime::Options{
          config_.combine_history_buckets, config_.hot_threshold,
          config_.combiner_slots});
    }
    lock_manager_.SetProgressSignals(&progress_guard_.signals());
    if constexpr (Telemetry::kEnabled) {
      lock_manager_.SetVictimHook(
          [](void* ctx, int slot, VertexId /*v*/, bool cycle) {
            auto* self = static_cast<TuFastScheduler*>(ctx);
            if (auto* w = self->runtime_.worker(slot)) {
              w->telemetry.DeadlockVictim(cycle);
            }
          },
          this);
    }
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(TuFastScheduler);

  /// Executes one transaction. Retries and mode escalation are internal;
  /// returns once the body committed or called txn.Abort().
  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t size_hint, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    return RunRouted(w, worker_id, size_hint, fn);
  }

  /// Executes one read-only transaction. With Config::enable_mvcc the
  /// body runs against a single commit-timestamp snapshot (a
  /// BasicMvccSnapshotTxn): it observes an atomic prefix of the commit
  /// order, never blocks writers, and can never abort — `outcome.aborts`
  /// is 0 by construction. The body must only read (the snapshot context
  /// has no Write; generic `auto& txn` read bodies compile unchanged).
  /// Without MVCC this degrades to a normal Run() — same values, but the
  /// reads compete in the conflict space and pay aborts/retries.
  template <typename Fn>
  RunOutcome RunReadOnly(int worker_id, uint64_t size_hint, Fn&& fn) {
    if (mvcc_ == nullptr) return Run(worker_id, size_hint, fn);
    Worker& w = runtime_.GetWorker(worker_id, *this);
    return RunSnapshotReadOnly(*mvcc_, w, worker_id, fn);
  }

  /// Batched execution of items [lo, hi) (tm/batch_executor.h): fuses
  /// runs of H-eligible items into single hardware regions — one
  /// BEGIN/COMMIT and one set of lock-word subscriptions per window —
  /// with capacity-aware window formation (the summed size hints of a
  /// window must fit the H budget), abort-driven bisection (halve the
  /// width and retry; width 1 degrades to the normal H->O->L router),
  /// and an adaptive target width from the contention monitor's P*
  /// analysis applied to the per-item abort probability.
  ///
  /// `body(txn, i)` and `hint(i)` follow the batch_executor.h contract;
  /// items whose hint exceeds the H threshold, and all items when fusion
  /// or H mode is disabled, are routed per-item exactly like Run().
  template <typename HintFn, typename BodyFn>
  void RunBatch(int worker_id, uint64_t lo, uint64_t hi, HintFn&& hint,
                BodyFn&& body) {
    RunBatch(worker_id, lo, hi, hint, IdentityHome{}, body);
  }

  /// Home-aware batch execution: `home(i)` maps item `i` to its home
  /// vertex (batch_executor.h). Without sharding the mapping is unused
  /// and this is exactly the overload above; with Config::enable_sharding
  /// it drives the local-vs-message routing decision.
  template <typename HintFn, typename HomeFn, typename BodyFn>
  void RunBatch(int worker_id, uint64_t lo, uint64_t hi, HintFn&& hint,
                HomeFn&& home, BodyFn&& body) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    if (sharding_ != nullptr) {
      RunBatchSharded(w, worker_id, lo, hi, hint, home, body);
    } else if (combining_ != nullptr) {
      RunBatchCombined(w, worker_id, lo, hi, hint, home, body);
    } else {
      RunBatchWindowed(w, worker_id, lo, hi, hint, body);
    }
  }

 private:
  /// Scheduler-specific per-worker payload; stats/telemetry/RNG live in
  /// the shared WorkerRuntime slot around it.
  struct State {
    State(TuFastScheduler& parent, int slot)
        : htx(parent.htm_, slot),
          otxn(parent.htm_, htx, parent.lock_table_,
               parent.config_.o_hint_threshold + 64),
          ltxn(parent.htm_, slot, parent.lock_manager_),
          monitor(ContentionMonitor::Config{
              .decay = 0.999,
              .min_period = parent.config_.min_period,
              .max_period = parent.max_period_,
              .initial_p = 0.0,
              .breaker_enabled = parent.config_.enable_breaker}) {
      hook_ctx.slot = slot;
      if (parent.mvcc_ != nullptr) {
        hook_ctx.store = parent.mvcc_.get();
        hook_ctx.recorder = &recorder;
        // O and L commits own a software write log and install directly;
        // H commits have only the write-back buffer, so the recorder +
        // commit hooks reconstruct their write set (pre-images are read
        // from live memory between pre_publish and the flush).
        otxn.SetMvcc(hook_ctx.store);
        ltxn.SetMvcc(hook_ctx.store);
      }
      if (parent.wal_sink_ != nullptr) {
        wal_recorder.SetSink(parent.wal_sink_);
        // O and L publish their staged notes from their own commit
        // windows; H publishes through the Tx commit hooks (scoped by
        // WalRecorder::hw_armed, since O-mode segments share the Tx).
        hook_ctx.wal = &wal_recorder;
        otxn.SetWal(&wal_recorder);
        ltxn.SetWal(&wal_recorder);
      }
      if (parent.mvcc_ != nullptr || parent.wal_sink_ != nullptr) {
        if constexpr (kHtmHasCommitHooks) {
          InstallCommitHooks(htx, hook_ctx);
        }
      }
    }

    typename Htm::Tx htx;
    OTxn<Htm, Table> otxn;
    LTxn<Htm, Table> ltxn;
    ContentionMonitor monitor;
    /// H-mode MVCC write-set recording (unused unless enable_mvcc).
    MvccRecorder recorder;
    /// WAL mutation staging (unused unless a WAL sink is attached).
    WalRecorder wal_recorder;
    CommitHookCtx<Mvcc> hook_ctx;
    /// Last breaker state this worker's telemetry was told about; the
    /// router diffs against the monitor to emit transition events.
    BreakerState last_breaker = BreakerState::kClosed;
    /// Sharded-path scratch (only touched when sharding is enabled):
    /// the local item list, the drained message batch plus its
    /// duplicate-home flags, and the shards this batch call sent to.
    std::vector<uint64_t> local_items;
    std::vector<ActiveMessage> drain_batch;
    std::vector<uint8_t> drain_dup;
    std::vector<uint32_t> sent_shards;
    std::vector<uint8_t> sent_flags;
    /// Combining-path scratch (only touched when combining is enabled):
    /// the cold item list, the (cell, slot) pairs this batch call
    /// announced, and the collect sweep's message/dedup/taken-slot
    /// buffers.
    std::vector<uint64_t> combine_cold;
    std::vector<uint64_t> combine_announced;
    std::vector<ActiveMessage> combine_batch;
    std::vector<VertexId> combine_homes;
    std::vector<uint8_t> combine_dup;
    std::vector<uint32_t> combine_taken;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  /// Per-item outcome observer for the windowed core. The default is a
  /// compile-time no-op (the pre-combining code paths are untouched);
  /// the combining path installs HistoryProbe so every per-item routing
  /// outcome — and every item inside a committed fused window — feeds
  /// the per-region contention history.
  struct NullItemProbe {
    static constexpr bool kEnabled = false;
    void Attempt(uint64_t /*i*/, bool /*aborted*/) {}
  };

  /// The unsharded batch core: capacity-aware window formation +
  /// abort-driven bisection over items [lo, hi). Also the execution
  /// engine for the sharded path's local half, drain batches, and
  /// combine batches (via an index indirection), which is what keeps
  /// sharded and unsharded execution bit-identical when everything
  /// routes local.
  template <typename HintFn, typename BodyFn, typename Probe = NullItemProbe>
  void RunBatchWindowed(Worker& w, int worker_id, uint64_t lo, uint64_t hi,
                        HintFn& hint, BodyFn& body, Probe probe = {}) {
    if (!config_.enable_fusion || !config_.enable_h_mode) {
      for (uint64_t i = lo; i < hi; ++i) {
        const RunOutcome out = RunItemRouted(w, worker_id, i, hint, body);
        if constexpr (Probe::kEnabled) probe.Attempt(i, out.aborts > 0);
      }
      return;
    }
    uint64_t i = lo;
    while (i < hi) {
      // A starvation-token holder is guaranteed to commit next attempt;
      // pause new fused regions (which subscribe whole windows of lock
      // words) so fusion can't widen the interference it sees.
      if (progress_guard_.signals().TokenHeld()) {
        const RunOutcome out = RunItemRouted(w, worker_id, i, hint, body);
        if constexpr (Probe::kEnabled) probe.Attempt(i, out.aborts > 0);
        ++i;
        continue;
      }
      const uint64_t first_hint = hint(i);
      if (first_hint > h_hint_threshold_) {
        // Too big for H mode: route per-item (O or L will take it).
        const RunOutcome out = RunItemRouted(w, worker_id, i, hint, body);
        if constexpr (Probe::kEnabled) probe.Attempt(i, out.aborts > 0);
        ++i;
        continue;
      }
      const uint32_t target =
          config_.fixed_fusion_width != 0
              ? config_.fixed_fusion_width
              : w.state.monitor.CurrentFusionWidth(config_.max_fusion_width);
      // Grow the window while the next item keeps the summed footprint
      // hint within the H budget — a window whose hints already exceed
      // capacity would only pay a deterministic abort plus bisection.
      uint64_t budget = first_hint;
      uint64_t j = i + 1;
      while (j < hi && (j - i) < target) {
        const uint64_t hj = hint(j);
        if (hj > h_hint_threshold_ || budget + hj > h_hint_threshold_) break;
        budget += hj;
        ++j;
      }
      ExecuteFusedRange(w, worker_id, i, j, hint, body, /*depth=*/0, probe);
      i = j;
    }
  }

  /// Type-erased handle to one in-flight RunBatch call: a message only
  /// carries (frame, item), and the drainer re-enters the sender's body
  /// through the frame's vtable with whichever mode context its own
  /// router picked. The frame lives on the sender's stack; the sender's
  /// flush phase guarantees it outlives every message that points at it.
  struct MessageVTable {
    void (*run_h)(void* body, HTxn<Htm, Table>& txn, uint64_t item);
    void (*run_o)(void* body, OTxn<Htm, Table>& txn, uint64_t item);
    void (*run_l)(void* body, LTxn<Htm, Table>& txn, uint64_t item);
    uint64_t (*hint)(void* hint_fn, uint64_t item);
    VertexId (*home)(void* home_fn, uint64_t item);
  };
  struct BatchFrame {
    const MessageVTable* vt;
    void* body;
    void* hint;
    void* home;
  };

  template <typename HintFn, typename HomeFn, typename BodyFn>
  static const MessageVTable* VTableFor() {
    using Hint = std::remove_reference_t<HintFn>;
    using Home = std::remove_reference_t<HomeFn>;
    using Body = std::remove_reference_t<BodyFn>;
    static const MessageVTable vt{
        [](void* body, HTxn<Htm, Table>& txn, uint64_t item) {
          (*static_cast<Body*>(body))(txn, item);
        },
        [](void* body, OTxn<Htm, Table>& txn, uint64_t item) {
          (*static_cast<Body*>(body))(txn, item);
        },
        [](void* body, LTxn<Htm, Table>& txn, uint64_t item) {
          (*static_cast<Body*>(body))(txn, item);
        },
        [](void* hint_fn, uint64_t item) -> uint64_t {
          return (*static_cast<Hint*>(hint_fn))(item);
        },
        [](void* home_fn, uint64_t item) -> VertexId {
          return (*static_cast<Home*>(home_fn))(item);
        }};
    return &vt;
  }

  static const BatchFrame& FrameOf(const ActiveMessage& m) {
    return *static_cast<const BatchFrame*>(m.frame);
  }

  /// Local-vs-message routing rule: a cross-shard item ships only while
  /// the worker's monitored attempt-abort rate clears the configured
  /// threshold — under low contention remote locking is cheap and the
  /// messaging overhead buys nothing (DyAdHyTM's mode-adaptive insight).
  bool ShouldShip(Worker& w) const {
    return config_.shard_ship_abort_rate <= 0.0 ||
           w.state.monitor.AttemptAbortRate() >= config_.shard_ship_abort_rate;
  }

  /// The sharded batch protocol. Phases, in order:
  ///  1. route: owned or kept-local items accumulate in an index list;
  ///     cross-shard items are enqueued to the owner shard's mailbox
  ///     (a full mailbox bounces the item back to the local list);
  ///  2. execute the local list through the shared windowed core;
  ///  3. drain the mailboxes of the shards this worker owns;
  ///  4. flush: spin — helping drain — until every shard we sent to has
  ///     no pending messages, so our stack frame may die.
  /// Deadlock-free: drains never nest (a drained body cannot enqueue),
  /// flushers hold no locks while spinning, and a drain-lock holder only
  /// executes transactions, which the progress guard bounds.
  template <typename HintFn, typename HomeFn, typename BodyFn>
  void RunBatchSharded(Worker& w, int worker_id, uint64_t lo, uint64_t hi,
                       HintFn& hint, HomeFn& home, BodyFn& body) {
    ShardRuntime& rt = *sharding_;
    const ShardMap& map = rt.map();
    BatchFrame frame{VTableFor<HintFn, HomeFn, BodyFn>(),
                     const_cast<void*>(static_cast<const void*>(&body)),
                     const_cast<void*>(static_cast<const void*>(&hint)),
                     const_cast<void*>(static_cast<const void*>(&home))};
    auto& local = w.state.local_items;
    local.clear();
    auto& sent = w.state.sent_shards;
    sent.clear();
    auto& sent_flags = w.state.sent_flags;
    if (sent_flags.size() < rt.num_shards()) {
      sent_flags.assign(rt.num_shards(), 0);
    }

    for (uint64_t i = lo; i < hi; ++i) {
      const uint32_t s = map.ShardOf(home(i));
      if (map.OwnerWorker(s) == static_cast<uint32_t>(worker_id)) {
        ++w.stats.shard_local_items;
        local.push_back(i);
        continue;
      }
      if (!ShouldShip(w)) {
        ++w.stats.shard_kept_local;
        w.telemetry.ShardKeptLocal();
        local.push_back(i);
        continue;
      }
      bool full = false;
      if constexpr (Failpoints::kEnabled) {
        full = Failpoints::Hit(FailSite::kMailboxFull, worker_id) ==
               FailAction::kFail;
      }
      Shard& sh = rt.shard(s);
      if (!full) {
        // Bump pending *before* publishing so a flusher can never read
        // zero while this message is enqueued-but-unexecuted.
        sh.pending.fetch_add(1, std::memory_order_relaxed);
        if (sh.mailbox.TryEnqueue(ActiveMessage{&frame, i})) {
          ++w.stats.shard_messages_sent;
          w.telemetry.ShardSend();
          if (sent_flags[s] == 0) {
            sent_flags[s] = 1;
            sent.push_back(s);
          }
          continue;
        }
        sh.pending.fetch_sub(1, std::memory_order_relaxed);
        full = true;
      }
      ++w.stats.shard_mailbox_full;
      w.telemetry.ShardMailboxFull();
      local.push_back(i);
    }

    auto lhint = [&](uint64_t k) { return hint(local[k]); };
    auto lbody = [&](auto& txn, uint64_t k) { body(txn, local[k]); };
    if (combining_ != nullptr) {
      // Shard routing composes with combining: cross-shard items were
      // already shipped to their owner (whose drain fuses them); what
      // stayed local goes through hot-vertex detection so a hub this
      // worker owns still combines instead of competing.
      auto lhome = [&](uint64_t k) { return home(local[k]); };
      RunBatchCombined(w, worker_id, 0, local.size(), lhint, lhome, lbody);
    } else {
      RunBatchWindowed(w, worker_id, 0, local.size(), lhint, lbody);
    }

    for (const uint32_t s : rt.OwnedShards(worker_id)) {
      DrainShard(w, worker_id, s);
    }

    for (const uint32_t s : sent) {
      sent_flags[s] = 0;
      Shard& sh = rt.shard(s);
      Backoff backoff;
      while (sh.pending.load(std::memory_order_acquire) != 0) {
        if (!DrainShard(w, worker_id, s)) backoff.Pause();
      }
    }
  }

  /// Drains one shard's mailbox: pop up to am_batch messages under the
  /// drain lock and execute them as one group-commit batch through the
  /// windowed core (fused H regions, bisection, per-item fallback — the
  /// PR 4 executor is the drain vehicle). Returns whether any message
  /// was executed. Cold: called between batches, never inside a body.
  TUFAST_NOINLINE_COLD bool DrainShard(Worker& w, int worker_id, uint32_t s) {
    Shard& sh = sharding_->shard(s);
    if (sh.mailbox.Empty()) return false;
    if (!sh.drain_lock.TryLock()) return false;
    bool any = false;
    auto& batch = w.state.drain_batch;
    auto& dup = w.state.drain_dup;
    const uint32_t am_batch = config_.am_batch == 0 ? 1 : config_.am_batch;
    while (true) {
      const uint64_t depth = sh.mailbox.ApproxDepth();
      batch.clear();
      ActiveMessage m;
      while (batch.size() < am_batch && sh.mailbox.TryDequeue(&m)) {
        batch.push_back(m);
      }
      if (batch.empty()) break;
      any = true;
      if constexpr (Failpoints::kEnabled) {
        // Adversarial delivery order: rotate the batch one position.
        // Safe under the independently-idempotent RunBatch contract;
        // the stress_fuzz shard-chaos sweep checks invariants hold.
        if (batch.size() > 1 &&
            Failpoints::Hit(FailSite::kMessageReorder, worker_id) ==
                FailAction::kFail) {
          std::rotate(batch.begin(), batch.begin() + 1, batch.end());
        }
      }
      // Per-shard AddrMap dedup: a drain batch often carries several
      // messages for the same hub vertex; its footprint hint should
      // count once per fused window, not once per message.
      sh.window_vertices.Clear();
      dup.assign(batch.size(), 0);
      for (size_t k = 0; k < batch.size(); ++k) {
        const BatchFrame& f = FrameOf(batch[k]);
        bool inserted;
        sh.window_vertices.FindOrInsert(
            uintptr_t{f.vt->home(f.home, batch[k].item)} + 1,
            static_cast<uint32_t>(k), &inserted);
        if (!inserted) dup[k] = 1;
      }
      auto dhint = [&](uint64_t k) -> uint64_t {
        if (dup[k] != 0) return 1;
        const BatchFrame& f = FrameOf(batch[k]);
        return f.vt->hint(f.hint, batch[k].item);
      };
      auto dbody = [&](auto& txn, uint64_t k) {
        const ActiveMessage& msg = batch[k];
        const BatchFrame& f = FrameOf(msg);
        using TxnT = std::remove_cvref_t<decltype(txn)>;
        if constexpr (std::is_same_v<TxnT, HTxn<Htm, Table>>) {
          f.vt->run_h(f.body, txn, msg.item);
        } else if constexpr (std::is_same_v<TxnT, OTxn<Htm, Table>>) {
          f.vt->run_o(f.body, txn, msg.item);
        } else {
          f.vt->run_l(f.body, txn, msg.item);
        }
      };
      RunBatchWindowed(w, worker_id, 0, batch.size(), dhint, dbody);
      RecordShardDrain(w, static_cast<uint32_t>(batch.size()), depth);
      sh.pending.fetch_sub(batch.size(), std::memory_order_release);
    }
    sh.drain_lock.Unlock();
    return any;
  }

  /// Contention-history feed for the combining path's cold half: maps a
  /// per-item routing outcome back to the item's home vertex and records
  /// it, counting cold->hot transitions in the observing worker's stats.
  template <typename HomeFn>
  struct HistoryProbe {
    static constexpr bool kEnabled = true;
    TuFastScheduler* self;
    Worker* w;
    const std::vector<uint64_t>* items;
    HomeFn* home;

    void Attempt(uint64_t k, bool aborted) {
      const VertexId v = (*home)((*items)[k]);
      if (self->combining_->history().RecordAttempt(v, aborted)) {
        RecordHotVertex(*w);
      }
    }
  };

  /// The combining batch protocol (DESIGN.md "Hot-vertex combining").
  /// Phases, in order:
  ///  1. route: items homed in a hot region are announced to the
  ///     region's combiner cell (a full slot array bounces the item to
  ///     the cold list — never dropped); everything else is cold;
  ///  2. execute the cold list through the shared windowed core, with
  ///     per-item outcomes feeding the contention history — cold work
  ///     also buys announced slots time to accumulate peers;
  ///  3. flush: for each announced slot, spin — helping collect the
  ///     cell — until the slot reaches kApplied, then free it; only
  ///     then may the stack frame behind the announcements die.
  /// Deadlock-free: a collector holds one cell owner lock and only
  /// executes transactions (it never waits on a slot), and a flusher
  /// holds no locks while spinning — there is no hold-and-wait cycle.
  template <typename HintFn, typename HomeFn, typename BodyFn>
  void RunBatchCombined(Worker& w, int worker_id, uint64_t lo, uint64_t hi,
                        HintFn& hint, HomeFn& home, BodyFn& body) {
    CombinerRuntime& cr = *combining_;
    BatchFrame frame{VTableFor<HintFn, HomeFn, BodyFn>(),
                     const_cast<void*>(static_cast<const void*>(&body)),
                     const_cast<void*>(static_cast<const void*>(&hint)),
                     const_cast<void*>(static_cast<const void*>(&home))};
    auto& cold = w.state.combine_cold;
    cold.clear();
    auto& announced = w.state.combine_announced;
    announced.clear();

    for (uint64_t i = lo; i < hi; ++i) {
      const VertexId v = home(i);
      if (cr.history().IsHot(v)) {
        bool full = false;
        if constexpr (Failpoints::kEnabled) {
          full = Failpoints::Hit(FailSite::kCombinerSlotFull, worker_id) ==
                 FailAction::kFail;
        }
        if (!full) {
          const uint32_t c = cr.CellOf(v);
          const int slot = cr.Announce(c, &frame, i);
          if (slot >= 0) {
            announced.push_back((uint64_t{c} << 32) |
                                static_cast<uint32_t>(slot));
            continue;
          }
        }
        RecordCombineSlotFull(w);
      }
      cold.push_back(i);
    }

    {
      auto chint = [&](uint64_t k) { return hint(cold[k]); };
      auto cbody = [&](auto& txn, uint64_t k) { body(txn, cold[k]); };
      HistoryProbe<HomeFn> probe{this, &w, &cold, &home};
      RunBatchWindowed(w, worker_id, 0, cold.size(), chint, cbody, probe);
    }

    for (const uint64_t e : announced) {
      const uint32_t c = static_cast<uint32_t>(e >> 32);
      CombineSlot& s = cr.slots(c)[static_cast<uint32_t>(e)];
      Backoff backoff;
      while (s.state.load(std::memory_order_acquire) != kCombineSlotApplied) {
        if (!CollectCell(w, worker_id, c)) backoff.Pause();
      }
      s.state.store(kCombineSlotEmpty, std::memory_order_release);
    }
  }

  /// Collects one combiner cell: under the cell's owner lock, sweep the
  /// announce slots, take every kReady operation, and apply the set as
  /// one group-commit batch through the windowed core (fused H regions,
  /// bisection, per-item fallback). Returns whether any operation was
  /// applied. Cold: called between batches and from flush spins, never
  /// inside a transaction body.
  TUFAST_NOINLINE_COLD bool CollectCell(Worker& w, int worker_id, uint32_t c) {
    CombinerRuntime& cr = *combining_;
    CombinerCell& cell = cr.cell(c);
    if (!cell.owner_lock.TryLock()) return false;
    bool any = false;
    CombineSlot* slots = cr.slots(c);
    const uint32_t nslots = cr.slots_per_cell();
    auto& msgs = w.state.combine_batch;
    auto& homes = w.state.combine_homes;
    auto& dup = w.state.combine_dup;
    auto& taken = w.state.combine_taken;
    while (true) {
      uint32_t occupancy = 0;
      for (uint32_t k = 0; k < nslots; ++k) {
        if (slots[k].state.load(std::memory_order_acquire) ==
            kCombineSlotReady) {
          ++occupancy;
        }
      }
      if (occupancy == 0) break;
      uint32_t limit = occupancy;
      bool handoff = false;
      if constexpr (Failpoints::kEnabled) {
        // Forced owner handoff mid-collect: take only the first announced
        // operation, then release the lock with ready slots remaining —
        // a spinning announcer becomes the new owner for the rest.
        if (Failpoints::Hit(FailSite::kOwnerHandoff, worker_id) ==
            FailAction::kFail) {
          limit = 1;
          handoff = true;
        }
      }
      msgs.clear();
      taken.clear();
      for (uint32_t k = 0; k < nslots && msgs.size() < limit; ++k) {
        uint32_t expected = kCombineSlotReady;
        if (slots[k].state.compare_exchange_strong(
                expected, kCombineSlotTaken, std::memory_order_acquire,
                std::memory_order_relaxed)) {
          taken.push_back(k);
          msgs.push_back(ActiveMessage{slots[k].frame, slots[k].item});
        }
      }
      if (msgs.empty()) break;
      any = true;
      // Duplicate-home hint dedup, same contract as DrainShard: a
      // combine batch usually carries several operations for the same
      // hub vertex, whose footprint should be charged once per fused
      // window. The batch is bounded by the slot count, so a quadratic
      // scan beats building an AddrMap.
      homes.clear();
      for (const ActiveMessage& msg : msgs) {
        const BatchFrame& f = FrameOf(msg);
        homes.push_back(f.vt->home(f.home, msg.item));
      }
      dup.assign(msgs.size(), 0);
      for (size_t a = 1; a < msgs.size(); ++a) {
        for (size_t b = 0; b < a; ++b) {
          if (homes[b] == homes[a]) {
            dup[a] = 1;
            break;
          }
        }
      }
      auto mhint = [&](uint64_t k) -> uint64_t {
        if (dup[k] != 0) return 1;
        const BatchFrame& f = FrameOf(msgs[k]);
        return f.vt->hint(f.hint, msgs[k].item);
      };
      auto mbody = [&](auto& txn, uint64_t k) {
        const ActiveMessage& msg = msgs[k];
        const BatchFrame& f = FrameOf(msg);
        using TxnT = std::remove_cvref_t<decltype(txn)>;
        if constexpr (std::is_same_v<TxnT, HTxn<Htm, Table>>) {
          f.vt->run_h(f.body, txn, msg.item);
        } else if constexpr (std::is_same_v<TxnT, OTxn<Htm, Table>>) {
          f.vt->run_o(f.body, txn, msg.item);
        } else {
          f.vt->run_l(f.body, txn, msg.item);
        }
      };
      RunBatchWindowed(w, worker_id, 0, msgs.size(), mhint, mbody);
      RecordCombineBatch(w, static_cast<uint32_t>(msgs.size()), occupancy);
      // Hot-state maintenance: more than one simultaneous announcement
      // is direct evidence these operations would have conflicted
      // competitively — keep the region hot. Singleton batches record a
      // clean attempt, so a region whose storm has passed decays back to
      // cold (hysteresis lives in the history).
      const bool contended = msgs.size() > 1;
      for (const VertexId home : homes) {
        cr.history().RecordAttempt(home, contended);
      }
      for (const uint32_t k : taken) {
        slots[k].state.store(kCombineSlotApplied, std::memory_order_release);
      }
      if (handoff) break;
    }
    cell.owner_lock.Unlock();
    return any;
  }

  static uint32_t ResolvedWorkers(const Config& c) {
    return c.shard_workers == 0 ? 1 : c.shard_workers;
  }
  static uint32_t ResolvedShards(const Config& c) {
    return c.num_shards != 0 ? c.num_shards : ResolvedWorkers(c);
  }

 private:
  /// One per-item transaction inside a batch: same accounting and
  /// routing as Run(), with the item index bound into the body.
  template <typename HintFn, typename BodyFn>
  RunOutcome RunItemRouted(Worker& w, int worker_id, uint64_t i, HintFn& hint,
                           BodyFn& body) {
    w.telemetry.TxnBegin();
    auto item_fn = [&body, i](auto& txn) { body(txn, i); };
    return RunRouted(w, worker_id, hint(i), item_fn);
  }

  /// One fused attempt over items [lo, hi), bisecting on abort. `depth`
  /// counts the halvings since the original window. Terminates: the
  /// width strictly shrinks toward the width-1 base case, which is the
  /// ordinary (terminating) per-item router. The probe observes each
  /// item exactly once, at its final commit point: width-1 runs report
  /// their real per-item abort count (the bisection drills contended
  /// items down to width 1, which is what gives the contention history
  /// clean per-vertex attribution), fused commits report a clean
  /// attempt for every item in the window.
  template <typename HintFn, typename BodyFn, typename Probe = NullItemProbe>
  void ExecuteFusedRange(Worker& w, int worker_id, uint64_t lo, uint64_t hi,
                         HintFn& hint, BodyFn& body, uint32_t depth,
                         Probe probe = {}) {
    const uint64_t width = hi - lo;
    if (width == 1) {
      const RunOutcome out = RunItemRouted(w, worker_id, lo, hint, body);
      if constexpr (Probe::kEnabled) probe.Attempt(lo, out.aborts > 0);
      return;
    }
    w.telemetry.EnterMode(SchedMode::kHardware);
    HTxn<Htm, Table> htxn(w.state.htx, lock_table_, RecorderFor(w),
                          WalRecorderFor(w));
    const FusedAttemptResult attempt =
        RunFusedHtmAttempt(w.state.htx, htxn, lo, hi, body);
    if (attempt.status.ok()) {
      // The fused bodies' notes went out as ONE record at pre_publish;
      // ack it now that the region (and its subscriptions) retired.
      AccountWalCommit(w, WalRecorderFor(w));
      w.state.monitor.RecordFusedAttempt(width, /*aborted=*/false);
      RecordFusedCommit(w, static_cast<uint32_t>(width), depth, attempt.ops);
      if constexpr (Probe::kEnabled) {
        for (uint64_t k = lo; k < hi; ++k) probe.Attempt(k, false);
      }
      return;
    }
    // Any abort — capacity, conflict, lock-busy, or a user abort from
    // one of the fused bodies — bisects. A user abort is not final
    // here: bisection isolates the aborting item at width 1, where the
    // router delivers the per-item user-abort semantics.
    w.state.monitor.RecordFusedAttempt(width, /*aborted=*/true);
    RecordFusedAbort(w, static_cast<uint32_t>(width), attempt.status);
    const uint64_t mid = lo + width / 2;
    ExecuteFusedRange(w, worker_id, lo, mid, hint, body, depth + 1, probe);
    ExecuteFusedRange(w, worker_id, mid, hi, hint, body, depth + 1, probe);
  }

  /// Emits breaker state-transition telemetry by diffing the monitor's
  /// current state against the last one this worker reported. Called at
  /// the router's decision points, which bracket every place a
  /// transition can happen (RecordAttempt / BreakerShouldBypass /
  /// TripBreaker); at most one transition occurs between observations.
  void NoteBreakerState(Worker& w) {
    const BreakerState s = w.state.monitor.breaker_state();
    if (s == w.state.last_breaker) return;
    switch (s) {
      case BreakerState::kOpen: w.telemetry.BreakerTrip(); break;
      case BreakerState::kHalfOpen: w.telemetry.BreakerHalfOpen(); break;
      case BreakerState::kClosed: w.telemetry.BreakerClose(); break;
    }
    w.state.last_breaker = s;
  }

  /// The H-mode contexts record their write set only when MVCC is on.
  MvccRecorder* RecorderFor(Worker& w) {
    return mvcc_ != nullptr ? &w.state.recorder : nullptr;
  }

  /// The mode contexts stage WAL notes only when a sink is attached.
  WalRecorder* WalRecorderFor(Worker& w) {
    return wal_sink_ != nullptr ? &w.state.wal_recorder : nullptr;
  }

  /// Progress-guard context for this worker's lock-mode retry loop.
  ProgressContext MakeProgressContext(int worker_id,
                                      uint32_t prior_aborts) {
    return ProgressContext{&progress_guard_, worker_id, prior_aborts,
                           config_.enable_backoff};
  }

  /// The Fig. 10 router shared by Run() and the batch executor's
  /// per-item degradation path. The caller has already issued
  /// telemetry.TxnBegin().
  template <typename Fn>
  RunOutcome RunRouted(Worker& w, int worker_id, uint64_t size_hint, Fn& fn) {
    if (size_hint > config_.o_hint_threshold) {
      return RunLockTxnLoop<Failpoints>(w, w.state.ltxn, fn, TxnClass::kL,
                                        MakeProgressContext(worker_id, 0));
    }

    if constexpr (Failpoints::kEnabled) {
      // Forced abort storm: trip the breaker as if a full window of
      // attempts had aborted.
      if (Failpoints::Hit(FailSite::kBreakerTrip, worker_id) ==
          FailAction::kFail) {
        w.state.monitor.TripBreaker();
      }
    }
    NoteBreakerState(w);
    if (w.state.monitor.BreakerShouldBypass()) {
      ++w.stats.breaker_bypass;
      w.telemetry.BreakerBypass();
      NoteBreakerState(w);  // A bypass can step the breaker to half-open.
      return RunLockTxnLoop<Failpoints>(w, w.state.ltxn, fn, TxnClass::kL,
                                        MakeProgressContext(worker_id, 0));
    }

    // Failed attempts across all modes; threads into the escalation
    // ladder so the L loop sees the transaction's whole abort history.
    uint32_t txn_aborts = 0;
    bool try_h = config_.enable_h_mode && size_hint <= h_hint_threshold_;
    if constexpr (Failpoints::kEnabled) {
      // Forced H -> O demotion: the transaction behaves exactly as if its
      // H retry budget were exhausted up front (paper Fig. 10 hand-off).
      if (try_h && Failpoints::Hit(FailSite::kRouterSkipH, worker_id) ==
                       FailAction::kFail) {
        try_h = false;
      }
    }
    if (try_h) {
      w.telemetry.EnterMode(SchedMode::kHardware);
      HTxn<Htm, Table> htxn(w.state.htx, lock_table_, RecorderFor(w),
                            WalRecorderFor(w));
      // Adaptive retry budget (paper SIV-D): under a high attempt-abort
      // rate, each retry re-executes the whole body just to abort again.
      const int h_retries =
          w.state.monitor.CurrentHRetries(config_.h_retries);
      for (int attempt = 0; attempt <= h_retries; ++attempt) {
        BeatAttempt(w);
        htxn.ResetOps();
        const AbortStatus status = w.state.htx.Execute([&] { fn(htxn); });
        if (status.ok()) {
          AccountWalCommit(w, WalRecorderFor(w));  // Ack: region retired.
          w.state.monitor.RecordAttempt(htxn.ops(), /*aborted=*/false);
          w.stats.RecordCommit(TxnClass::kH, htxn.ops());
          w.telemetry.TxnCommit(TxnClass::kH, htxn.ops());
          BeatCommit(w);
          RecordTxnRetries(w, txn_aborts);
          return RunOutcome{true, TxnClass::kH, htxn.ops(), txn_aborts};
        }
        const HtmAttemptVerdict verdict = RecordHtmAbort(w, status);
        if (verdict == HtmAttemptVerdict::kUserAbort) {
          ++w.stats.user_aborts;
          w.telemetry.TxnUserAbort(TxnClass::kH);
          RecordTxnRetries(w, txn_aborts);
          return RunOutcome{false, TxnClass::kH, 0, txn_aborts};
        }
        w.state.monitor.RecordAttempt(htxn.ops(), /*aborted=*/true);
        ++txn_aborts;
        if (verdict == HtmAttemptVerdict::kCapacity) {
          // Capacity aborts repeat deterministically: go to O directly
          // (paper Fig. 10).
          break;
        }
        // Conflict retry: back off so the conflicting peers drain
        // before the re-execution pays the whole body again.
        if (config_.enable_backoff && attempt < h_retries) {
          PayBackoff(w, txn_aborts - 1);
        }
      }
      NoteBreakerState(w);  // The attempt stream can trip the breaker.
    }

    bool try_o = config_.enable_o_mode;
    if constexpr (Failpoints::kEnabled) {
      // Forced O -> L demotion: as if every period halving had failed.
      if (try_o && Failpoints::Hit(FailSite::kRouterSkipO, worker_id) ==
                       FailAction::kFail) {
        try_o = false;
      }
    }
    if (!try_o) {
      return RunLockTxnLoop<Failpoints>(
          w, w.state.ltxn, fn, TxnClass::kO2L,
          MakeProgressContext(worker_id, txn_aborts));
    }
    return RunOptimisticThenLock(w, worker_id, fn, txn_aborts);
  }

 public:
  Htm& htm() { return htm_; }
  const Config& config() const { return config_; }
  Table& lock_table() { return lock_table_; }
  uint64_t h_hint_threshold() const { return h_hint_threshold_; }

  /// Sharding-layer introspection (null unless Config::enable_sharding).
  const ShardRuntime* shard_runtime() const { return sharding_.get(); }

  /// Combining-layer introspection (null unless Config::enable_combining).
  CombinerRuntime* combiner_runtime() { return combining_.get(); }
  const CombinerRuntime* combiner_runtime() const { return combining_.get(); }

  /// Version-store introspection (null unless Config::enable_mvcc).
  Mvcc* mvcc_store() { return mvcc_.get(); }
  const Mvcc* mvcc_store() const { return mvcc_.get(); }

  /// Attaches an external WAL sink (the crash harness's failpoint-armed
  /// writer). Call before the first Run on any worker — lazily built
  /// worker slots wire their recorders to whatever sink is attached at
  /// construction time.
  void EnableWal(WalSink* sink) {
    TUFAST_CHECK(kHtmHasCommitHooks);
    wal_sink_ = sink;
  }

  /// Active WAL sink (null when durability is off).
  WalSink* wal_sink() { return wal_sink_; }
  /// The Config-owned writer (null when the sink is external or WAL
  /// is off); exposes durable_seq/fsyncs/records/bytes telemetry.
  BasicWalWriter<Failpoints>* wal_writer() { return owned_wal_.get(); }
  const BasicWalWriter<Failpoints>* wal_writer() const {
    return owned_wal_.get();
  }

  /// Stats merged across all workers. Call only while no transaction is
  /// in flight (workers mutate their stats without synchronization).
  SchedulerStats AggregatedStats() const { return runtime_.AggregatedStats(); }

  /// Serving front end (serving/server.h): record that worker
  /// `worker_id` started executing a request that sat `delay_ns` in the
  /// run queue. Must be called from the worker's own thread (the slot is
  /// worker-owned, like every other stats mutation); exactly once per
  /// executed request, so `serve_requests` doubles as the executed count
  /// in the conservation cross-check.
  void NoteQueueDelay(int worker_id, uint64_t delay_ns) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    ++w.stats.serve_requests;
    w.stats.serve_queue_delay_ns += delay_ns;
    if (delay_ns > w.stats.serve_max_queue_delay_ns) {
      w.stats.serve_max_queue_delay_ns = delay_ns;
    }
    if constexpr (Telemetry::kEnabled) {
      w.telemetry.ServeQueueDelay(delay_ns);
    }
  }

  /// Telemetry merged across all workers (same in-flight contract).
  Telemetry AggregatedTelemetry() const {
    return runtime_.AggregatedTelemetry();
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }

  HtmStats AggregatedHtmStats() const {
    HtmStats total;
    runtime_.ForEachWorker(
        [&](const Worker& w) { total.Merge(w.state.htx.stats()); });
    return total;
  }

  void ResetStats() {
    runtime_.ResetStats([](State& s) { s.htx.ResetStats(); });
  }

  /// Monitor introspection for the adaptive-period trace (Fig. 17).
  const ContentionMonitor* MonitorForWorker(int worker_id) const {
    const Worker* w = runtime_.worker(worker_id);
    return w != nullptr ? &w->state.monitor : nullptr;
  }

  /// Progress-guard introspection (stress tests poke the signals to
  /// stage token-held / starved scenarios deterministically).
  ProgressGuard& progress_guard() { return progress_guard_; }

  /// Summed per-worker heartbeat counters for the stall watchdog. Only
  /// meaningful after every worker slot has run at least one warmup
  /// transaction (see WorkerRuntime::Heartbeats).
  typename Runtime::HeartbeatTotals Heartbeats() const {
    return runtime_.Heartbeats();
  }

 private:
  /// O-mode loop plus the L-mode fallthrough (paper Fig. 10, lower half).
  /// Outlined and cold: only medium/huge transactions come here, and
  /// keeping the instantiations out of Run() preserves the H fast path's
  /// code generation (see TUFAST_NOINLINE_COLD). `txn_aborts` carries the
  /// failed H attempts into the escalation ladder.
  template <typename Fn>
  TUFAST_NOINLINE_COLD RunOutcome RunOptimisticThenLock(Worker& w,
                                                        int worker_id, Fn& fn,
                                                        uint32_t txn_aborts) {
    w.telemetry.EnterMode(SchedMode::kOptimistic);
    // Halve the segment length until it commits or sinks below
    // min_period.
    uint32_t period = config_.adaptive_period ? w.state.monitor.CurrentPeriod()
                                              : config_.static_period;
    bool first_attempt = true;
    while (period >= config_.min_period) {
      BeatAttempt(w);
      w.telemetry.PeriodChange(period);
      w.state.otxn.Reset(period);
      const AbortStatus status = w.state.htx.Execute([&] { fn(w.state.otxn); });
      if (status.ok()) {
        const OCommitResult result = w.state.otxn.CommitSoftware();
        if (result == OCommitResult::kOk) {
          AccountWalCommit(w, WalRecorderFor(w));  // Ack: locks released.
          const TxnClass cls =
              first_attempt ? TxnClass::kO : TxnClass::kOPlus;
          w.state.monitor.RecordAttempt(w.state.otxn.ops(), /*aborted=*/false);
          w.stats.RecordCommit(cls, w.state.otxn.ops());
          w.telemetry.TxnCommit(cls, w.state.otxn.ops());
          BeatCommit(w);
          RecordTxnRetries(w, txn_aborts);
          return RunOutcome{true, cls, w.state.otxn.ops(), txn_aborts};
        }
        if (result == OCommitResult::kLockBusy) {
          ++w.stats.lock_busy_aborts;
          w.telemetry.AttemptAbort(AbortReason::kLockBusy);
        } else {
          ++w.stats.validation_aborts;
          w.telemetry.AttemptAbort(AbortReason::kValidation);
        }
        w.state.monitor.RecordAttempt(w.state.otxn.ops(), /*aborted=*/true);
      } else {
        const HtmAttemptVerdict verdict = RecordHtmAbort(w, status);
        if (verdict == HtmAttemptVerdict::kUserAbort) {
          ++w.stats.user_aborts;
          w.telemetry.TxnUserAbort(TxnClass::kO);
          RecordTxnRetries(w, txn_aborts);
          return RunOutcome{false, TxnClass::kO, 0, txn_aborts};
        }
        w.state.monitor.RecordAttempt(w.state.otxn.ops(), /*aborted=*/true);
      }
      ++txn_aborts;
      period /= 2;
      first_attempt = false;
      // Halved-period retry: back off before re-executing against the
      // same contenders.
      if (config_.enable_backoff && period >= config_.min_period) {
        PayBackoff(w, txn_aborts - 1);
      }
    }

    return RunLockTxnLoop<Failpoints>(
        w, w.state.ltxn, fn, TxnClass::kO2L,
        MakeProgressContext(worker_id, txn_aborts));
  }

  Htm& htm_;
  const Config config_;
  Table lock_table_;
  LockManager<Htm, Table> lock_manager_;
  const uint64_t h_hint_threshold_;
  const uint32_t max_period_;
  ProgressGuard progress_guard_;
  std::unique_ptr<Mvcc> mvcc_;
  std::unique_ptr<BasicWalWriter<Failpoints>> owned_wal_;
  WalSink* wal_sink_ = nullptr;
  std::unique_ptr<ShardRuntime> sharding_;
  std::unique_ptr<CombinerRuntime> combining_;
  Runtime runtime_;
};

/// Default TuFast instantiation on the emulated HTM backend.
using TuFast = TuFastScheduler<EmulatedHtm>;

/// Instrumented variant: identical routing, EventTelemetry aggregation.
using TuFastInstrumented = TuFastScheduler<EmulatedHtm, EventTelemetry>;

/// Sharded-table TuFast: per-shard conflict spaces (ShardedLockTable)
/// behind the same scheduler. Pair with Config::enable_sharding to get
/// the full shard-per-core mode (per-shard tables + message routing).
template <typename Htm, typename Telemetry = NullTelemetry>
using ShardedTuFastScheduler =
    TuFastScheduler<Htm, Telemetry, ShardedLockTable<Htm>>;
using TuFastSharded = ShardedTuFastScheduler<EmulatedHtm>;

}  // namespace tufast

#endif  // TUFAST_TM_TUFAST_H_
