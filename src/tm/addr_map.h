#ifndef TUFAST_TM_ADDR_MAP_H_
#define TUFAST_TM_ADDR_MAP_H_

#include <cstdint>
#include <vector>

#include "common/compiler.h"

namespace tufast {

/// Open-addressed hash map from uintptr_t keys to uint32_t payloads,
/// purpose-built for transaction write sets: clear-in-O(used), grows by
/// rehash at 50% load, no deletion. Key 0 and ~0 are reserved.
class AddrMap {
 public:
  explicit AddrMap(size_t initial_capacity = 256) {
    size_t cap = 16;
    while (cap < initial_capacity * 2) cap <<= 1;
    keys_.assign(cap, kEmpty);
    values_.assign(cap, 0);
    mask_ = cap - 1;
  }

  size_t size() const { return used_.size(); }

  void Clear() {
    for (const uint32_t pos : used_) keys_[pos] = kEmpty;
    used_.clear();
  }

  /// Returns the payload slot for `key`, inserting `fresh` if absent.
  /// `inserted` reports whether a new entry was created.
  uint32_t* FindOrInsert(uintptr_t key, uint32_t fresh, bool* inserted) {
    TUFAST_DCHECK(key != kEmpty && key != 0);
    if (used_.size() * 2 >= keys_.size()) Grow();
    size_t pos = Hash(key) & mask_;
    while (true) {
      if (keys_[pos] == key) {
        *inserted = false;
        return &values_[pos];
      }
      if (keys_[pos] == kEmpty) {
        keys_[pos] = key;
        values_[pos] = fresh;
        used_.push_back(static_cast<uint32_t>(pos));
        *inserted = true;
        return &values_[pos];
      }
      pos = (pos + 1) & mask_;
    }
  }

  /// Returns the payload for `key` or nullptr.
  uint32_t* Find(uintptr_t key) {
    size_t pos = Hash(key) & mask_;
    while (true) {
      if (keys_[pos] == key) return &values_[pos];
      if (keys_[pos] == kEmpty) return nullptr;
      pos = (pos + 1) & mask_;
    }
  }

 private:
  static constexpr uintptr_t kEmpty = ~uintptr_t{0};

  static uint64_t Hash(uintptr_t key) {
    uint64_t z = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return z ^ (z >> 31);
  }

  void Grow() {
    std::vector<uintptr_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    std::vector<uint32_t> old_used = std::move(used_);
    const size_t cap = old_keys.size() * 2;
    keys_.assign(cap, kEmpty);
    values_.assign(cap, 0);
    used_.clear();
    used_.reserve(cap / 2);
    mask_ = cap - 1;
    for (const uint32_t pos : old_used) {
      bool inserted;
      *FindOrInsert(old_keys[pos], old_values[pos], &inserted) =
          old_values[pos];
    }
  }

  std::vector<uintptr_t> keys_;
  std::vector<uint32_t> values_;
  std::vector<uint32_t> used_;
  size_t mask_;
};

}  // namespace tufast

#endif  // TUFAST_TM_ADDR_MAP_H_
