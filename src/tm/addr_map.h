#ifndef TUFAST_TM_ADDR_MAP_H_
#define TUFAST_TM_ADDR_MAP_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/compiler.h"

namespace tufast {

/// Open-addressed hash map from uintptr_t keys to uint32_t payloads,
/// purpose-built for transaction write sets: clear-in-O(used), grows by
/// rehash at 50% load, no deletion. Key 0 and ~0 are reserved.
///
/// Small-map fast path: the first kInlineCap distinct keys live in a pair
/// of inline arrays probed by linear scan — the common per-vertex
/// transaction writes 1-2 words, and a scan of <= 8 keys in one or two
/// cache lines beats hashing into the (large, cold) preallocated table.
/// The kInlineCap+1-th distinct key promotes every inline entry into the
/// table, which stays preallocated from construction, so promotion
/// allocates only if the table must also grow.
///
/// Pointer-stability contract: a payload pointer returned by
/// FindOrInsert/Find is valid only until the next FindOrInsert or Clear
/// on the same map — inline->table promotion and table growth both move
/// payloads. Callers must write through the pointer immediately (the
/// mode contexts in tm/modes.h all do).
class AddrMap {
 public:
  static constexpr size_t kInlineCap = 8;

  explicit AddrMap(size_t initial_capacity = 256) {
    size_t cap = 16;
    while (cap < initial_capacity * 2) cap <<= 1;
    keys_.assign(cap, kEmpty);
    values_.assign(cap, 0);
    mask_ = cap - 1;
  }

  size_t size() const { return inline_active_ ? inline_size_ : used_.size(); }

  void Clear() {
    inline_size_ = 0;
    inline_active_ = true;
    for (const uint32_t pos : used_) keys_[pos] = kEmpty;
    used_.clear();
  }

  /// Returns the payload slot for `key`, inserting `fresh` if absent.
  /// `inserted` reports whether a new entry was created. See the
  /// pointer-stability contract above.
  uint32_t* FindOrInsert(uintptr_t key, uint32_t fresh, bool* inserted) {
    TUFAST_DCHECK(key != kEmpty && key != 0);
    if (TUFAST_LIKELY(inline_active_)) {
      for (size_t i = 0; i < inline_size_; ++i) {
        if (inline_keys_[i] == key) {
          *inserted = false;
          return &inline_values_[i];
        }
      }
      if (inline_size_ < kInlineCap) {
        inline_keys_[inline_size_] = key;
        inline_values_[inline_size_] = fresh;
        *inserted = true;
        return &inline_values_[inline_size_++];
      }
      Promote();
    }
    return TableFindOrInsert(key, fresh, inserted);
  }

  /// Returns the payload for `key` or nullptr. Same stability contract.
  uint32_t* Find(uintptr_t key) {
    if (TUFAST_LIKELY(inline_active_)) {
      for (size_t i = 0; i < inline_size_; ++i) {
        if (inline_keys_[i] == key) return &inline_values_[i];
      }
      return nullptr;
    }
    size_t pos = Hash(key) & mask_;
    while (true) {
      if (keys_[pos] == key) return &values_[pos];
      if (keys_[pos] == kEmpty) return nullptr;
      pos = (pos + 1) & mask_;
    }
  }

 private:
  static constexpr uintptr_t kEmpty = ~uintptr_t{0};

  static uint64_t Hash(uintptr_t key) {
    uint64_t z = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return z ^ (z >> 31);
  }

  uint32_t* TableFindOrInsert(uintptr_t key, uint32_t fresh, bool* inserted) {
    if (used_.size() * 2 >= keys_.size()) Grow();
    size_t pos = Hash(key) & mask_;
    while (true) {
      if (keys_[pos] == key) {
        *inserted = false;
        return &values_[pos];
      }
      if (keys_[pos] == kEmpty) {
        keys_[pos] = key;
        values_[pos] = fresh;
        used_.push_back(static_cast<uint32_t>(pos));
        *inserted = true;
        return &values_[pos];
      }
      pos = (pos + 1) & mask_;
    }
  }

  /// Spills the full inline buffer into the table; cold by construction
  /// (runs at most once per Clear() cycle, only for big write sets).
  TUFAST_NOINLINE_COLD void Promote() {
    inline_active_ = false;
    for (size_t i = 0; i < inline_size_; ++i) {
      bool inserted;
      *TableFindOrInsert(inline_keys_[i], inline_values_[i], &inserted) =
          inline_values_[i];
    }
    inline_size_ = 0;
  }

  void Grow() {
    std::vector<uintptr_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    std::vector<uint32_t> old_used = std::move(used_);
    const size_t cap = old_keys.size() * 2;
    keys_.assign(cap, kEmpty);
    values_.assign(cap, 0);
    used_.clear();
    used_.reserve(cap / 2);
    mask_ = cap - 1;
    for (const uint32_t pos : old_used) {
      bool inserted;
      *TableFindOrInsert(old_keys[pos], old_values[pos], &inserted) =
          old_values[pos];
    }
  }

  std::array<uintptr_t, kInlineCap> inline_keys_;
  std::array<uint32_t, kInlineCap> inline_values_;
  size_t inline_size_ = 0;
  bool inline_active_ = true;

  std::vector<uintptr_t> keys_;
  std::vector<uint32_t> values_;
  std::vector<uint32_t> used_;
  size_t mask_;
};

}  // namespace tufast

#endif  // TUFAST_TM_ADDR_MAP_H_
