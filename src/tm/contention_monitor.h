#ifndef TUFAST_TM_CONTENTION_MONITOR_H_
#define TUFAST_TM_CONTENTION_MONITOR_H_

#include <cmath>
#include <cstdint>

#include "common/compiler.h"

namespace tufast {

/// Optimal O-mode segment length for per-operation abort probability p
/// (paper §IV-D): an HTM segment of P operations commits all P with
/// probability (1-p)^P, so the expected committed work is (1-p)^P * P,
/// maximized at P* = -1 / ln(1-p)  (≈ 1/p for small p).
inline uint32_t OptimalPeriod(double p, uint32_t min_period,
                              uint32_t max_period) {
  // NaN (e.g. a 0/0 abort ratio) would fail both ordered comparisons
  // below and reach the uint32 cast, which is UB; treat it as "no
  // signal", like p == 0.
  if (std::isnan(p)) return max_period;
  if (p <= 0.0) return max_period;
  if (p >= 1.0) return min_period;
  const double p_star = -1.0 / std::log1p(-p);
  const double rounded = std::nearbyint(p_star);
  // Clamp in double before casting: for p near 0, p_star overflows
  // uint32 range long before it overflows double.
  if (rounded <= min_period) return min_period;
  if (rounded >= max_period) return max_period;
  return static_cast<uint32_t>(rounded);
}

/// Per-worker estimator of the per-operation abort probability p,
/// maintained as an exponentially-decayed ratio of aborted attempts to
/// operations executed. TuFast consults it at BEGIN to pick the starting
/// `period` (paper §IV-D: "by continuously monitoring p during the
/// execution, we enforce this strategy adaptively").
class ContentionMonitor {
 public:
  struct Config {
    /// Decay applied per recorded attempt; closer to 1 = longer memory.
    double decay = 0.999;
    uint32_t min_period = 100;
    uint32_t max_period = 2048;
    /// Optimism before any signal: start with the longest segments.
    double initial_p = 0.0;
  };

  explicit ContentionMonitor(Config config)
      : config_(config),
        decayed_ops_(1.0),
        decayed_aborts_(config.initial_p) {}
  ContentionMonitor() : ContentionMonitor(Config{}) {}

  /// Records one hardware attempt: `ops` operations executed, and whether
  /// the attempt ended in a (conflict) abort.
  void RecordAttempt(uint64_t ops, bool aborted) {
    if (ops == 0) ops = 1;
    decayed_ops_ = decayed_ops_ * config_.decay + static_cast<double>(ops);
    decayed_aborts_ = decayed_aborts_ * config_.decay + (aborted ? 1.0 : 0.0);
    decayed_attempts_ = decayed_attempts_ * config_.decay + 1.0;
  }

  /// Current estimate of the per-operation abort probability.
  double EstimatedP() const {
    const double p = decayed_aborts_ / decayed_ops_;
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }

  /// Starting `period` for the next O-mode execution.
  uint32_t CurrentPeriod() const {
    return OptimalPeriod(EstimatedP(), config_.min_period,
                         config_.max_period);
  }

  /// Fraction of recent hardware attempts that aborted. Drives the
  /// adaptive H-mode retry budget (§IV-D studies the retry count): when
  /// most attempts abort, retrying re-pays the whole transaction body
  /// for nothing, so the router cuts the budget.
  double AttemptAbortRate() const {
    return decayed_attempts_ > 0 ? decayed_aborts_ / decayed_attempts_ : 0.0;
  }

  /// Retry budget for H mode given the configured maximum.
  int CurrentHRetries(int configured) const {
    const double rate = AttemptAbortRate();
    if (rate > 0.6) return 0;
    if (rate > 0.3) return configured < 1 ? configured : 1;
    return configured;
  }

  /// Records one *fused* hardware attempt covering `items` per-vertex
  /// transactions. Fused items play the same role for the fusion-width
  /// controller that operations play for the O-mode period controller: a
  /// width-k region commits all k items with probability (1-p_item)^k,
  /// so the same P* analysis applies with p measured per item.
  void RecordFusedAttempt(uint64_t items, bool aborted) {
    if (items == 0) items = 1;
    decayed_items_ = decayed_items_ * config_.decay + static_cast<double>(items);
    decayed_item_aborts_ =
        decayed_item_aborts_ * config_.decay + (aborted ? 1.0 : 0.0);
  }

  /// Current estimate of the per-fused-item abort probability.
  double EstimatedItemP() const {
    if (decayed_items_ <= 0.0) return 0.0;
    const double p = decayed_item_aborts_ / decayed_items_;
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }

  /// Target fusion width for the next batched H-mode region: the P*
  /// formula applied to the per-item abort probability, clamped to
  /// [1, max_width]. With no abort signal this returns max_width (be
  /// greedy); under heavy aborting it collapses to 1, i.e. the plain
  /// per-item router.
  uint32_t CurrentFusionWidth(uint32_t max_width) const {
    if (max_width <= 1) return 1;
    return OptimalPeriod(EstimatedItemP(), 1, max_width);
  }

  const Config& config() const { return config_; }

 private:
  Config config_;
  double decayed_ops_;
  double decayed_aborts_;
  double decayed_attempts_ = 1.0;
  // Fusion-width estimator state (per fused item, not per operation).
  double decayed_items_ = 0.0;
  double decayed_item_aborts_ = 0.0;
};

}  // namespace tufast

#endif  // TUFAST_TM_CONTENTION_MONITOR_H_
