#ifndef TUFAST_TM_CONTENTION_MONITOR_H_
#define TUFAST_TM_CONTENTION_MONITOR_H_

#include <cmath>
#include <cstdint>

#include "common/compiler.h"

namespace tufast {

/// Optimal O-mode segment length for per-operation abort probability p
/// (paper §IV-D): an HTM segment of P operations commits all P with
/// probability (1-p)^P, so the expected committed work is (1-p)^P * P,
/// maximized at P* = -1 / ln(1-p)  (≈ 1/p for small p).
inline uint32_t OptimalPeriod(double p, uint32_t min_period,
                              uint32_t max_period) {
  // NaN (e.g. a 0/0 abort ratio) would fail both ordered comparisons
  // below and reach the uint32 cast, which is UB; treat it as "no
  // signal", like p == 0.
  if (std::isnan(p)) return max_period;
  if (p <= 0.0) return max_period;
  if (p >= 1.0) return min_period;
  const double p_star = -1.0 / std::log1p(-p);
  const double rounded = std::nearbyint(p_star);
  // Clamp in double before casting: for p near 0, p_star overflows
  // uint32 range long before it overflows double.
  if (rounded <= min_period) return min_period;
  if (rounded >= max_period) return max_period;
  return static_cast<uint32_t>(rounded);
}

/// Abort-storm circuit breaker state (DESIGN.md "Progress guard"):
///
///       sustained abort rate >= trip_rate over one window
///   kClosed ───────────────────────────────────────────► kOpen
///      ▲                                                   │
///      │ probe rate <= close_rate                          │ open_txns
///      │                                                   ▼ bypassed
///   (probe rate > close_rate reopens) ◄──────────────── kHalfOpen
///
/// Open = small transactions bypass H/O and go straight to L, and the
/// fusion width clamps to 1, deliberately *reducing* concurrency instead
/// of burning retries ("On the Cost of Concurrency in TM", Ravi).
/// Half-open lets a bounded probe batch back through the normal router;
/// their measured abort rate decides between closing and re-opening.
enum class BreakerState : uint8_t { kClosed = 0, kOpen, kHalfOpen };

inline const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
    default: return "?";
  }
}

/// Per-worker estimator of the per-operation abort probability p,
/// maintained as an exponentially-decayed ratio of aborted attempts to
/// operations executed. TuFast consults it at BEGIN to pick the starting
/// `period` (paper §IV-D: "by continuously monitoring p during the
/// execution, we enforce this strategy adaptively"). Also hosts the
/// abort-storm circuit breaker, which shares the attempt stream but uses
/// *windowed* (non-decayed) counters so a storm trips it on a hard edge
/// rather than an asymptote.
class ContentionMonitor {
 public:
  struct Config {
    /// Decay applied per recorded attempt; closer to 1 = longer memory.
    double decay = 0.999;
    uint32_t min_period = 100;
    uint32_t max_period = 2048;
    /// Optimism before any signal: start with the longest segments.
    double initial_p = 0.0;

    /// Circuit breaker (off by default; TuFast enables it from its own
    /// Config::enable_breaker). All counts are deterministic functions
    /// of this worker's attempt stream — no clocks, no cross-worker
    /// state — so runs replay exactly under a fixed seed.
    bool breaker_enabled = false;
    /// Attempts per decision window in the closed state.
    uint32_t breaker_window = 64;
    /// Windowed attempt-abort rate that trips the breaker open.
    double breaker_trip_rate = 0.85;
    /// Probe-window rate at or below which a half-open breaker closes.
    double breaker_close_rate = 0.5;
    /// Transactions bypassed (routed straight to L) while open.
    uint32_t breaker_open_txns = 128;
    /// Probe transactions admitted in half-open before deciding.
    uint32_t breaker_probe_txns = 16;
  };

  explicit ContentionMonitor(Config config)
      : config_(config),
        decayed_ops_(1.0),
        decayed_aborts_(config.initial_p) {}
  ContentionMonitor() : ContentionMonitor(Config{}) {}

  /// Records one hardware attempt: `ops` operations executed, and whether
  /// the attempt ended in a (conflict) abort.
  void RecordAttempt(uint64_t ops, bool aborted) {
    if (ops == 0) ops = 1;
    decayed_ops_ = decayed_ops_ * config_.decay + static_cast<double>(ops);
    decayed_aborts_ = decayed_aborts_ * config_.decay + (aborted ? 1.0 : 0.0);
    decayed_attempts_ = decayed_attempts_ * config_.decay + 1.0;
    if (config_.breaker_enabled) BreakerRecordAttempt(aborted);
  }

  /// Current estimate of the per-operation abort probability.
  double EstimatedP() const {
    const double p = decayed_aborts_ / decayed_ops_;
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }

  /// Starting `period` for the next O-mode execution.
  uint32_t CurrentPeriod() const {
    return OptimalPeriod(EstimatedP(), config_.min_period,
                         config_.max_period);
  }

  /// Fraction of recent hardware attempts that aborted. Drives the
  /// adaptive H-mode retry budget (§IV-D studies the retry count): when
  /// most attempts abort, retrying re-pays the whole transaction body
  /// for nothing, so the router cuts the budget.
  double AttemptAbortRate() const {
    return decayed_attempts_ > 0 ? decayed_aborts_ / decayed_attempts_ : 0.0;
  }

  /// Retry budget for H mode given the configured maximum.
  int CurrentHRetries(int configured) const {
    const double rate = AttemptAbortRate();
    if (rate > 0.6) return 0;
    if (rate > 0.3) return configured < 1 ? configured : 1;
    return configured;
  }

  /// Records one *fused* hardware attempt covering `items` per-vertex
  /// transactions. Fused items play the same role for the fusion-width
  /// controller that operations play for the O-mode period controller: a
  /// width-k region commits all k items with probability (1-p_item)^k,
  /// so the same P* analysis applies with p measured per item.
  void RecordFusedAttempt(uint64_t items, bool aborted) {
    if (items == 0) items = 1;
    decayed_items_ = decayed_items_ * config_.decay + static_cast<double>(items);
    decayed_item_aborts_ =
        decayed_item_aborts_ * config_.decay + (aborted ? 1.0 : 0.0);
  }

  /// Current estimate of the per-fused-item abort probability.
  double EstimatedItemP() const {
    if (decayed_items_ <= 0.0) return 0.0;
    const double p = decayed_item_aborts_ / decayed_items_;
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }

  /// Target fusion width for the next batched H-mode region: the P*
  /// formula applied to the per-item abort probability, clamped to
  /// [1, max_width]. With no abort signal this returns max_width (be
  /// greedy); under heavy aborting it collapses to 1, i.e. the plain
  /// per-item router.
  uint32_t CurrentFusionWidth(uint32_t max_width) const {
    if (max_width <= 1) return 1;
    // A tripped breaker clamps fusion to width 1: a storm that keeps
    // killing fused regions pays width * retry for every abort.
    if (breaker_state_ != BreakerState::kClosed) return 1;
    return OptimalPeriod(EstimatedItemP(), 1, max_width);
  }

  /// Router gate, called once per routed transaction. Returns true when
  /// the transaction should bypass H/O and go straight to L. Stateful:
  /// bypasses are what count down the open state toward half-open, and
  /// half-open probe admissions are metered here too.
  bool BreakerShouldBypass() {
    if (!config_.breaker_enabled) return false;
    if (breaker_state_ == BreakerState::kClosed) return false;
    if (breaker_state_ == BreakerState::kOpen) {
      if (open_remaining_ > 0) {
        --open_remaining_;
        return true;
      }
      breaker_state_ = BreakerState::kHalfOpen;
      ++breaker_half_opens_;
      probe_remaining_ = config_.breaker_probe_txns;
      window_attempts_ = 0;
      window_aborts_ = 0;
    }
    // Half-open: admit the probe batch, bypass everything after it until
    // the probes' attempts complete the decision window.
    if (probe_remaining_ > 0) {
      --probe_remaining_;
      return false;
    }
    return true;
  }

  /// Forces the breaker open (the kBreakerTrip failpoint / tests).
  void TripBreaker() {
    if (!config_.breaker_enabled) return;
    Trip();
  }

  BreakerState breaker_state() const { return breaker_state_; }
  uint64_t breaker_trips() const { return breaker_trips_; }
  uint64_t breaker_half_opens() const { return breaker_half_opens_; }
  uint64_t breaker_closes() const { return breaker_closes_; }

  const Config& config() const { return config_; }

 private:
  void BreakerRecordAttempt(bool aborted) {
    if (breaker_state_ == BreakerState::kOpen) return;  // Nothing to measure.
    ++window_attempts_;
    if (aborted) ++window_aborts_;
    if (breaker_state_ == BreakerState::kClosed) {
      if (window_attempts_ < config_.breaker_window) return;
      const double rate =
          static_cast<double>(window_aborts_) / window_attempts_;
      if (rate >= config_.breaker_trip_rate) {
        Trip();
      } else {
        window_attempts_ = 0;
        window_aborts_ = 0;
      }
      return;
    }
    // Half-open: the probe batch's attempts decide.
    if (window_attempts_ < config_.breaker_probe_txns) return;
    const double rate = static_cast<double>(window_aborts_) / window_attempts_;
    if (rate <= config_.breaker_close_rate) {
      breaker_state_ = BreakerState::kClosed;
      ++breaker_closes_;
    } else {
      Trip();
    }
    window_attempts_ = 0;
    window_aborts_ = 0;
  }

  void Trip() {
    breaker_state_ = BreakerState::kOpen;
    ++breaker_trips_;
    open_remaining_ = config_.breaker_open_txns;
    probe_remaining_ = 0;
    window_attempts_ = 0;
    window_aborts_ = 0;
  }

  Config config_;
  double decayed_ops_;
  double decayed_aborts_;
  double decayed_attempts_ = 1.0;
  // Fusion-width estimator state (per fused item, not per operation).
  double decayed_items_ = 0.0;
  double decayed_item_aborts_ = 0.0;
  // Circuit breaker (windowed, non-decayed).
  BreakerState breaker_state_ = BreakerState::kClosed;
  uint32_t window_attempts_ = 0;
  uint32_t window_aborts_ = 0;
  uint32_t open_remaining_ = 0;
  uint32_t probe_remaining_ = 0;
  uint64_t breaker_trips_ = 0;
  uint64_t breaker_half_opens_ = 0;
  uint64_t breaker_closes_ = 0;
};

}  // namespace tufast

#endif  // TUFAST_TM_CONTENTION_MONITOR_H_
