#ifndef TUFAST_TM_CONTENTION_HISTORY_H_
#define TUFAST_TM_CONTENTION_HISTORY_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/compiler.h"
#include "common/types.h"

namespace tufast {

/// Per-vertex (region-bucketed) contention history feeding the combining
/// router (DESIGN.md "Hot-vertex combining"). The global ContentionMonitor
/// sees one attempt-abort probability for the whole worker; on power-law
/// graphs the abort mass concentrates on a handful of hub vertices, and a
/// global signal can only damp them by slowing everyone down (the PR-5
/// breaker). This table generalizes the monitor per region, DyAdHyTM
/// style: a fixed-size power-of-two array of EWMA abort scores, one
/// bucket per hashed vertex region, updated at the points the router
/// already classifies attempt outcomes.
///
/// Cost model: the table lives on the commit path, so updates are a
/// relaxed load + store of one 32-bit word — no locks, no CAS loops. A
/// racing update may lose a step; the score is a steering heuristic and
/// correctness never depends on it (a mis-routed operation just runs
/// competitively, exactly as without combining).
///
/// Score dynamics: per observed attempt on a bucket,
///   score <- score - (score >> kDecayShift) + (aborted ? kAbortStep : 0)
/// saturating at kScoreOne = kAbortStep << kDecayShift, so the steady
/// state for an attempt-abort fraction p is p * kScoreOne. A vertex turns
/// *hot* when its score crosses `hot_threshold * kScoreOne` and cools
/// back to cold only below half that (hysteresis), so the routing
/// decision cannot flap on every sample; ~2^kDecayShift consecutive
/// aborted attempts heat a cold bucket.
class ContentionHistory {
 public:
  struct Config {
    /// Region buckets (rounded up to a power of two). More buckets =
    /// finer vertex attribution, fewer innocent-bystander collisions.
    uint32_t buckets = 1024;
    /// EWMA attempt-abort fraction (0, 1] at which a region turns hot.
    double hot_threshold = 0.5;
  };

  explicit ContentionHistory(const Config& config)
      : mask_(RoundUpPow2(config.buckets) - 1),
        enter_score_(ClampThreshold(config.hot_threshold)),
        exit_score_(enter_score_ / 2),
        cells_(new Cell[mask_ + 1]) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(ContentionHistory);

  uint32_t num_buckets() const { return mask_ + 1; }
  uint32_t BucketOf(VertexId v) const {
    // Fibonacci hash: adjacent vertex ids land in unrelated buckets, so
    // one hub does not heat its id-neighbors' regions.
    return static_cast<uint32_t>(
               (uint64_t{v} * 0x9e3779b97f4a7c15ULL) >> 32) &
           mask_;
  }

  /// Records one attempt outcome for an operation homed at `v`. Returns
  /// true when this observation flipped the region cold -> hot (the
  /// caller counts the transition in its worker-local stats).
  bool RecordAttempt(VertexId v, bool aborted) {
    Cell& c = cells_[BucketOf(v)];
    uint32_t word = c.word.load(std::memory_order_relaxed);
    uint32_t score = word & kScoreMask;
    score -= score >> kDecayShift;
    if (aborted) {
      score += kAbortStep;
      if (score > kScoreOne) score = kScoreOne;
    }
    bool hot = (word & kHotBit) != 0;
    bool became_hot = false;
    if (!hot && score >= enter_score_) {
      hot = true;
      became_hot = true;
    } else if (hot && score < exit_score_) {
      hot = false;
    }
    c.word.store(score | (hot ? kHotBit : 0u), std::memory_order_relaxed);
    return became_hot;
  }

  /// Whether `v`'s region is currently flagged hot. One relaxed load —
  /// cheap enough to ask per batch item.
  bool IsHot(VertexId v) const {
    return (cells_[BucketOf(v)].word.load(std::memory_order_relaxed) &
            kHotBit) != 0;
  }

  /// Currently-hot region count (cold full scan; stats/bench reporting).
  uint64_t HotCount() const {
    uint64_t n = 0;
    for (uint32_t b = 0; b <= mask_; ++b) {
      if ((cells_[b].word.load(std::memory_order_relaxed) & kHotBit) != 0) {
        ++n;
      }
    }
    return n;
  }

  /// Raw EWMA score in [0, 1] for tests.
  double ScoreOf(VertexId v) const {
    const uint32_t s =
        cells_[BucketOf(v)].word.load(std::memory_order_relaxed) & kScoreMask;
    return static_cast<double>(s) / static_cast<double>(kScoreOne);
  }

  static constexpr uint32_t kDecayShift = 4;  // EWMA window ~16 attempts
  static constexpr uint32_t kAbortStep = 64;
  static constexpr uint32_t kScoreOne = kAbortStep << kDecayShift;

 private:
  static constexpr uint32_t kHotBit = 0x8000'0000u;
  static constexpr uint32_t kScoreMask = ~kHotBit;

  struct Cell {
    std::atomic<uint32_t> word{0};
  };

  static uint32_t RoundUpPow2(uint32_t n) {
    if (n < 2) return 2;
    uint32_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }
  static uint32_t ClampThreshold(double t) {
    if (!(t > 0.0)) t = 0.5;  // also catches NaN
    if (t > 1.0) t = 1.0;
    const double s = t * static_cast<double>(kScoreOne);
    uint32_t v = static_cast<uint32_t>(s);
    if (v < 2) v = 2;  // keep exit_score_ = v/2 >= 1 so hysteresis exists
    return v;
  }

  const uint32_t mask_;
  const uint32_t enter_score_;
  const uint32_t exit_score_;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace tufast

#endif  // TUFAST_TM_CONTENTION_HISTORY_H_
