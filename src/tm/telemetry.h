#ifndef TUFAST_TM_TELEMETRY_H_
#define TUFAST_TM_TELEMETRY_H_

#include <chrono>
#include <cstdint>

#include "common/histogram.h"
#include "tm/outcome.h"

namespace tufast {

/// Compile-time pluggable scheduler telemetry (DESIGN.md "Worker runtime
/// and telemetry"). Every scheduler threads a sink type through its
/// per-worker runtime; the sink receives typed events at the points the
/// adaptive-routing literature (DyAdHyTM, GTX) shows matter for steering
/// and for comparing concurrency-control variants:
///
///   TxnBegin            one logical Run() started;
///   EnterMode           the transaction is now executing under H/O/L
///                       machinery (the first call per txn sets the
///                       initial mode; later calls are the Fig. 10
///                       H->O->L transitions);
///   AttemptAbort        one execution attempt failed, with the reason;
///   PeriodChange        O mode is about to attempt with this `period`;
///   DeadlockVictim      the lock manager picked this worker as victim
///                       (cycle detection or wait-bound expiry);
///   TxnCommit           the txn committed in class `cls` with `ops`
///                       operations;
///   TxnUserAbort        the body called txn.Abort() (final, no retry).
///
/// Sinks are per-worker (no synchronization inside event handlers) and
/// joined with Merge(), exactly like SchedulerStats.

/// Coarse execution machinery a transaction is currently running under.
/// TxnClass (outcome.h) is the per-commit refinement of this.
enum class SchedMode : uint8_t { kHardware = 0, kOptimistic, kLock, kNumModes };

inline const char* SchedModeName(SchedMode m) {
  switch (m) {
    case SchedMode::kHardware: return "H";
    case SchedMode::kOptimistic: return "O";
    case SchedMode::kLock: return "L";
    default: return "?";
  }
}

inline constexpr SchedMode ModeOfClass(TxnClass cls) {
  switch (cls) {
    case TxnClass::kH: return SchedMode::kHardware;
    case TxnClass::kO:
    case TxnClass::kOPlus: return SchedMode::kOptimistic;
    default: return SchedMode::kLock;
  }
}

/// Why one execution attempt failed. Mirrors the SchedulerStats abort
/// counters one-for-one so sinks and stats can be cross-checked.
enum class AbortReason : uint8_t {
  kConflict = 0,
  kCapacity,
  kValidation,
  kLockBusy,
  kDeadlock,
  kNumReasons
};

inline const char* AbortReasonName(AbortReason r) {
  switch (r) {
    case AbortReason::kConflict: return "conflict";
    case AbortReason::kCapacity: return "capacity";
    case AbortReason::kValidation: return "validation";
    case AbortReason::kLockBusy: return "lock_busy";
    case AbortReason::kDeadlock: return "deadlock";
    default: return "?";
  }
}

inline constexpr int kNumSchedModes = static_cast<int>(SchedMode::kNumModes);
inline constexpr int kNumAbortReasons =
    static_cast<int>(AbortReason::kNumReasons);
inline constexpr int kNumTxnClasses = static_cast<int>(TxnClass::kNumClasses);

/// The default sink: every handler is an empty inline function, so the
/// instrumentation compiles away entirely — a NullTelemetry scheduler
/// build is bit-identical in behavior to the pre-telemetry code (verified
/// by micro_ops_benchmark, see DESIGN.md). `kEnabled == false` also lets
/// call sites skip any *argument computation* that only feeds telemetry
/// (e.g. clock reads) via `if constexpr`.
struct NullTelemetry {
  static constexpr bool kEnabled = false;

  void TxnBegin() {}
  void EnterMode(SchedMode) {}
  void AttemptAbort(AbortReason) {}
  void PeriodChange(uint32_t) {}
  void DeadlockVictim(bool /*cycle*/) {}
  void TxnCommit(TxnClass, uint64_t /*ops*/) {}
  void TxnUserAbort(TxnClass) {}
  void FusedCommit(uint32_t /*width*/, uint32_t /*depth*/, uint64_t /*ops*/) {}
  void FusionAbort(uint32_t /*width*/) {}
  void ShardSend() {}
  void ShardKeptLocal() {}
  void ShardMailboxFull() {}
  void ShardDrain(uint32_t /*batch*/, uint64_t /*depth*/) {}
  void CombineBatch(uint32_t /*ops*/, uint32_t /*occupancy*/) {}
  void CombineSlotFull() {}
  void HotVertex() {}
  void BackoffWait(uint64_t /*pauses*/) {}
  void StarvationEscalated() {}
  void StarvationToken() {}
  void BreakerTrip() {}
  void BreakerHalfOpen() {}
  void BreakerClose() {}
  void BreakerBypass() {}
  void TxnRetries(uint64_t /*aborts*/) {}
  void ServeQueueDelay(uint64_t /*ns*/) {}
  void Merge(const NullTelemetry&) {}
};

/// Aggregated view of one EventTelemetry sink (or a Merge of several).
/// Plain data so bench_support can serialize it (JSON) without depending
/// on the sink internals.
struct TelemetrySnapshot {
  uint64_t begins = 0;
  uint64_t user_aborts = 0;
  uint64_t deadlock_cycle_victims = 0;
  uint64_t deadlock_timeout_victims = 0;

  /// Per-commit-class counts / operation totals (the Fig. 15 breakdown)
  /// and commit-latency histograms in nanoseconds.
  uint64_t commits[kNumTxnClasses] = {};
  uint64_t commit_ops[kNumTxnClasses] = {};
  LogHistogram commit_latency_ns[kNumTxnClasses];

  /// Wall nanoseconds spent executing under each mode's machinery,
  /// attributed by EnterMode/commit boundaries.
  uint64_t time_in_mode_ns[kNumSchedModes] = {};

  /// Failed attempts by (mode the attempt ran under, reason).
  uint64_t aborts[kNumSchedModes][kNumAbortReasons] = {};

  /// Mode-transition counts within single transactions (H->O, O->L, ...).
  uint64_t transitions[kNumSchedModes][kNumSchedModes] = {};

  /// O-mode `period` values attempted; `last_period` is the most recent
  /// (per-worker snapshots only — Merge keeps the other's if set).
  LogHistogram period_hist;
  uint32_t last_period = 0;

  /// Batch-executor (group-commit fusion) breakdown. A committed fused
  /// region of width w also counts w commits in `commits[kH]` above, so
  /// the Fig. 15 class totals stay comparable with fusion on or off.
  uint64_t fused_regions = 0;   // committed fused regions (width >= 2)
  uint64_t fused_items = 0;     // items committed inside those regions
  uint64_t fusion_aborts = 0;   // fused-region attempts that aborted
  LogHistogram fusion_width_hist;     // committed region widths
  LogHistogram bisection_depth_hist;  // width halvings before commit

  /// Shard-per-core active-message breakdown (sharding/): message and
  /// drain-batch counts plus histograms of drain-batch sizes and the
  /// mailbox depth observed at each drain entry (the backlog signal).
  uint64_t shard_messages_sent = 0;
  uint64_t shard_kept_local = 0;
  uint64_t shard_mailbox_full = 0;
  uint64_t shard_messages_drained = 0;
  uint64_t shard_drain_batches = 0;
  LogHistogram drain_batch_hist;
  LogHistogram mailbox_depth_hist;

  /// Hot-vertex flat-combining breakdown (tm/combiner.h): operations
  /// applied through collected combine batches, collect-sweep counts,
  /// slot-array overflow bounces, cold->hot region transitions, and
  /// histograms of combine-batch sizes and announce-queue occupancy at
  /// collect entry.
  uint64_t combined_ops = 0;
  uint64_t combine_batches = 0;
  uint64_t combine_slot_full = 0;
  uint64_t hot_vertices = 0;
  LogHistogram combine_batch_hist;
  LogHistogram combine_occupancy_hist;

  /// Progress-guard breakdown (tm/progress_guard.h): retry backoffs,
  /// starvation escalations / token grabs, abort-storm breaker state
  /// transitions, and the victim re-abort histogram (failed attempts per
  /// transaction that retried at least once; max over all transactions).
  uint64_t backoff_events = 0;
  uint64_t backoff_pauses = 0;
  uint64_t starvation_escalations = 0;
  uint64_t starvation_tokens = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_half_opens = 0;
  uint64_t breaker_closes = 0;
  uint64_t breaker_bypass = 0;
  LogHistogram txn_abort_hist;
  uint64_t max_txn_aborts = 0;

  /// Serving front end (serving/server.h): time each executed request
  /// sat between its scheduled arrival and execution start, recorded by
  /// the owning worker exactly once per executed request — the
  /// serve-side SLO accounting reads these instead of a side channel.
  uint64_t serve_requests = 0;
  uint64_t serve_queue_delay_ns = 0;
  uint64_t serve_max_queue_delay_ns = 0;
  LogHistogram serve_queue_delay_hist;

  uint64_t TotalCommits() const {
    uint64_t total = 0;
    for (uint64_t c : commits) total += c;
    return total;
  }
  uint64_t TotalCommittedOps() const {
    uint64_t total = 0;
    for (uint64_t o : commit_ops) total += o;
    return total;
  }
  uint64_t TotalAborts(AbortReason reason) const {
    uint64_t total = 0;
    for (int m = 0; m < kNumSchedModes; ++m) {
      total += aborts[m][static_cast<int>(reason)];
    }
    return total;
  }
};

/// The instrumented sink: aggregates events into per-class latency
/// histograms, time-in-mode breakdowns, abort/transition matrices and the
/// O-mode period trace. Per-worker (no locks); reads the steady clock on
/// every event, so only instrumented builds pay for timing.
class EventTelemetry {
 public:
  static constexpr bool kEnabled = true;

  void TxnBegin() {
    const uint64_t now = Now();
    ++snap_.begins;
    txn_start_ns_ = now;
    mode_start_ns_ = now;
    in_mode_ = false;
  }

  void EnterMode(SchedMode mode) {
    const uint64_t now = Now();
    if (in_mode_) {
      snap_.time_in_mode_ns[static_cast<int>(mode_)] += now - mode_start_ns_;
      ++snap_.transitions[static_cast<int>(mode_)][static_cast<int>(mode)];
    }
    mode_ = mode;
    mode_start_ns_ = now;
    in_mode_ = true;
  }

  void AttemptAbort(AbortReason reason) {
    ++snap_.aborts[static_cast<int>(mode_)][static_cast<int>(reason)];
  }

  void PeriodChange(uint32_t period) {
    snap_.period_hist.Add(period);
    snap_.last_period = period;
  }

  void DeadlockVictim(bool cycle) {
    if (cycle) {
      ++snap_.deadlock_cycle_victims;
    } else {
      ++snap_.deadlock_timeout_victims;
    }
  }

  void TxnCommit(TxnClass cls, uint64_t ops) {
    const uint64_t now = Now();
    const int c = static_cast<int>(cls);
    ++snap_.commits[c];
    snap_.commit_ops[c] += ops;
    snap_.commit_latency_ns[c].Add(now - txn_start_ns_);
    CloseMode(now);
  }

  void TxnUserAbort(TxnClass /*cls*/) {
    ++snap_.user_aborts;
    CloseMode(Now());
  }

  /// One fused H-mode region committed: `width` items, after `depth`
  /// abort-driven width halvings, totalling `ops` operations. Each item
  /// is accounted as one begin + one H-class commit so the per-class
  /// totals cross-check against SchedulerStats with fusion enabled.
  void FusedCommit(uint32_t width, uint32_t depth, uint64_t ops) {
    const uint64_t now = Now();
    snap_.begins += width;
    snap_.commits[static_cast<int>(TxnClass::kH)] += width;
    snap_.commit_ops[static_cast<int>(TxnClass::kH)] += ops;
    if (width >= 2) {
      ++snap_.fused_regions;
      snap_.fused_items += width;
    }
    snap_.fusion_width_hist.Add(width);
    snap_.bisection_depth_hist.Add(depth);
    // The scheduler brackets fused attempts with EnterMode(kHardware);
    // closing here attributes the region's wall time to H mode.
    CloseMode(now);
  }

  /// One fused-region attempt of `width` items aborted (capacity,
  /// conflict, or a user abort inside the region) and will be bisected.
  /// The abort *reason* is reported separately through AttemptAbort by
  /// the batch executor, which keeps the abort matrix consistent between
  /// the fused and per-item paths.
  void FusionAbort(uint32_t width) {
    ++snap_.fusion_aborts;
    (void)width;
  }

  /// One cross-shard message enqueued to another worker's shard.
  void ShardSend() { ++snap_.shard_messages_sent; }
  /// One cross-shard item the router kept local (contention below the
  /// ship threshold — messaging overhead not justified).
  void ShardKeptLocal() { ++snap_.shard_kept_local; }
  /// One message bounced by a full mailbox and executed locally instead.
  void ShardMailboxFull() { ++snap_.shard_mailbox_full; }
  /// One drain batch of `batch` messages popped with `depth` messages
  /// visible in the mailbox at drain entry.
  void ShardDrain(uint32_t batch, uint64_t depth) {
    ++snap_.shard_drain_batches;
    snap_.shard_messages_drained += batch;
    snap_.drain_batch_hist.Add(batch);
    snap_.mailbox_depth_hist.Add(depth);
  }

  /// One combine-collect sweep applied `ops` announced operations after
  /// finding `occupancy` slots announced at collect entry.
  void CombineBatch(uint32_t ops, uint32_t occupancy) {
    ++snap_.combine_batches;
    snap_.combined_ops += ops;
    snap_.combine_batch_hist.Add(ops);
    snap_.combine_occupancy_hist.Add(occupancy);
  }
  /// One announce bounced by a full slot array (op executed locally).
  void CombineSlotFull() { ++snap_.combine_slot_full; }
  /// One contention-history region transitioned cold -> hot.
  void HotVertex() { ++snap_.hot_vertices; }

  /// One randomized-backoff wait of `pauses` spin/yield pauses between
  /// conflict retries (all three retry loops report here).
  void BackoffWait(uint64_t pauses) {
    ++snap_.backoff_events;
    snap_.backoff_pauses += pauses;
  }

  void StarvationEscalated() { ++snap_.starvation_escalations; }
  void StarvationToken() { ++snap_.starvation_tokens; }
  void BreakerTrip() { ++snap_.breaker_trips; }
  void BreakerHalfOpen() { ++snap_.breaker_half_opens; }
  void BreakerClose() { ++snap_.breaker_closes; }
  void BreakerBypass() { ++snap_.breaker_bypass; }

  /// A transaction finished having failed `aborts` attempts; feeds the
  /// victim re-abort histogram (transactions that never retried stay out
  /// of the histogram so its count reads "retried transactions").
  void TxnRetries(uint64_t aborts) {
    if (aborts == 0) return;
    snap_.txn_abort_hist.Add(aborts);
    if (aborts > snap_.max_txn_aborts) snap_.max_txn_aborts = aborts;
  }

  /// One serving request entered execution after `ns` nanoseconds in the
  /// run queue (measured from its scheduled open-loop arrival).
  void ServeQueueDelay(uint64_t ns) {
    ++snap_.serve_requests;
    snap_.serve_queue_delay_ns += ns;
    if (ns > snap_.serve_max_queue_delay_ns) {
      snap_.serve_max_queue_delay_ns = ns;
    }
    snap_.serve_queue_delay_hist.Add(ns);
  }

  void Merge(const EventTelemetry& other) {
    const TelemetrySnapshot& o = other.snap_;
    snap_.begins += o.begins;
    snap_.user_aborts += o.user_aborts;
    snap_.deadlock_cycle_victims += o.deadlock_cycle_victims;
    snap_.deadlock_timeout_victims += o.deadlock_timeout_victims;
    for (int c = 0; c < kNumTxnClasses; ++c) {
      snap_.commits[c] += o.commits[c];
      snap_.commit_ops[c] += o.commit_ops[c];
      snap_.commit_latency_ns[c].Merge(o.commit_latency_ns[c]);
    }
    for (int m = 0; m < kNumSchedModes; ++m) {
      snap_.time_in_mode_ns[m] += o.time_in_mode_ns[m];
      for (int r = 0; r < kNumAbortReasons; ++r) {
        snap_.aborts[m][r] += o.aborts[m][r];
      }
      for (int n = 0; n < kNumSchedModes; ++n) {
        snap_.transitions[m][n] += o.transitions[m][n];
      }
    }
    snap_.period_hist.Merge(o.period_hist);
    if (o.last_period != 0) snap_.last_period = o.last_period;
    snap_.fused_regions += o.fused_regions;
    snap_.fused_items += o.fused_items;
    snap_.fusion_aborts += o.fusion_aborts;
    snap_.fusion_width_hist.Merge(o.fusion_width_hist);
    snap_.bisection_depth_hist.Merge(o.bisection_depth_hist);
    snap_.shard_messages_sent += o.shard_messages_sent;
    snap_.shard_kept_local += o.shard_kept_local;
    snap_.shard_mailbox_full += o.shard_mailbox_full;
    snap_.shard_messages_drained += o.shard_messages_drained;
    snap_.shard_drain_batches += o.shard_drain_batches;
    snap_.drain_batch_hist.Merge(o.drain_batch_hist);
    snap_.mailbox_depth_hist.Merge(o.mailbox_depth_hist);
    snap_.combined_ops += o.combined_ops;
    snap_.combine_batches += o.combine_batches;
    snap_.combine_slot_full += o.combine_slot_full;
    snap_.hot_vertices += o.hot_vertices;
    snap_.combine_batch_hist.Merge(o.combine_batch_hist);
    snap_.combine_occupancy_hist.Merge(o.combine_occupancy_hist);
    snap_.backoff_events += o.backoff_events;
    snap_.backoff_pauses += o.backoff_pauses;
    snap_.starvation_escalations += o.starvation_escalations;
    snap_.starvation_tokens += o.starvation_tokens;
    snap_.breaker_trips += o.breaker_trips;
    snap_.breaker_half_opens += o.breaker_half_opens;
    snap_.breaker_closes += o.breaker_closes;
    snap_.breaker_bypass += o.breaker_bypass;
    snap_.txn_abort_hist.Merge(o.txn_abort_hist);
    if (o.max_txn_aborts > snap_.max_txn_aborts) {
      snap_.max_txn_aborts = o.max_txn_aborts;
    }
    snap_.serve_requests += o.serve_requests;
    snap_.serve_queue_delay_ns += o.serve_queue_delay_ns;
    if (o.serve_max_queue_delay_ns > snap_.serve_max_queue_delay_ns) {
      snap_.serve_max_queue_delay_ns = o.serve_max_queue_delay_ns;
    }
    snap_.serve_queue_delay_hist.Merge(o.serve_queue_delay_hist);
  }

  /// Copy of the aggregate so far. Call only while no transaction is in
  /// flight on this worker (same contract as SchedulerStats). Returns by
  /// value: the common call shape `tm.AggregatedTelemetry().Snapshot()`
  /// invokes it on a temporary, and a reference into that temporary
  /// would dangle as soon as the full expression ends.
  TelemetrySnapshot Snapshot() const { return snap_; }

 private:
  static uint64_t Now() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void CloseMode(uint64_t now) {
    if (in_mode_) {
      snap_.time_in_mode_ns[static_cast<int>(mode_)] += now - mode_start_ns_;
      in_mode_ = false;
    }
  }

  TelemetrySnapshot snap_;
  uint64_t txn_start_ns_ = 0;
  uint64_t mode_start_ns_ = 0;
  SchedMode mode_ = SchedMode::kHardware;
  bool in_mode_ = false;
};

}  // namespace tufast

#endif  // TUFAST_TM_TELEMETRY_H_
