#ifndef TUFAST_TM_CONCEPTS_H_
#define TUFAST_TM_CONCEPTS_H_

#include <concepts>
#include <cstdint>

#include "common/types.h"
#include "htm/htm_config.h"
#include "tm/outcome.h"
#include "tm/telemetry.h"

namespace tufast {

/// The transaction-context contract (paper Table I plus the repository's
/// extensions). Every mode context (HTxn/OTxn/LTxn) and every baseline
/// scheduler's Txn satisfies this; algorithm bodies written against it
/// (`auto& txn`) run unchanged on any scheduler.
template <typename T>
concept TransactionContext =
    requires(T& txn, VertexId v, const TmWord* caddr, TmWord* addr,
             TmWord value, const double* cdaddr, double* daddr) {
      { txn.Read(v, caddr) } -> std::same_as<TmWord>;
      { txn.ReadForUpdate(v, caddr) } -> std::same_as<TmWord>;
      { txn.Write(v, addr, value) } -> std::same_as<void>;
      { txn.ReadDouble(v, cdaddr) } -> std::same_as<double>;
      { txn.WriteDouble(v, daddr, 1.0) } -> std::same_as<void>;
      { txn.ops() } -> std::convertible_to<uint64_t>;
      txn.Abort();  // [[noreturn]]; user aborts are final.
    };

/// The telemetry-sink contract: the typed event hooks every scheduler
/// threads through its worker runtime. NullTelemetry satisfies it with
/// empty inline bodies (kEnabled == false lets schedulers skip hook
/// registration and clock reads entirely); EventTelemetry aggregates.
template <typename T>
concept TelemetrySink =
    requires(T& sink, const T& csink, TxnClass cls, SchedMode mode,
             AbortReason reason, uint32_t period, uint64_t ops, bool cycle,
             uint32_t width, uint32_t depth) {
      { T::kEnabled } -> std::convertible_to<bool>;
      sink.TxnBegin();
      sink.EnterMode(mode);
      sink.AttemptAbort(reason);
      sink.PeriodChange(period);
      sink.DeadlockVictim(cycle);
      sink.TxnCommit(cls, ops);
      sink.TxnUserAbort(cls);
      sink.FusedCommit(width, depth, ops);
      sink.FusionAbort(width);
      sink.Merge(csink);
    };

/// The scheduler contract shared by TuFast and all six baselines: a
/// worker-scoped Run() plus merged statistics and telemetry. `Fn` is
/// checked at the Run call site (it must accept every mode's context
/// type).
template <typename S>
concept Scheduler = requires(S& tm, const S& ctm, int worker,
                             uint64_t hint) {
  {
    tm.Run(worker, hint, [](auto& txn) { (void)txn; })
  } -> std::same_as<RunOutcome>;
  { ctm.AggregatedStats() } -> std::same_as<SchedulerStats>;
  requires TelemetrySink<decltype(ctm.AggregatedTelemetry())>;
  { ctm.TelemetryForWorker(worker) };
  tm.ResetStats();
};

/// The HTM-backend contract both EmulatedHtm and NativeHtm satisfy: the
/// per-thread Tx handle plus the non-transactional interop hooks the
/// shared lock/metadata protocols need.
template <typename H>
concept HtmBackend = requires(H& htm, typename H::Tx& tx, TmWord* addr,
                              const TmWord* caddr, TmWord value) {
  typename H::Tx;
  { tx.Load(caddr) } -> std::same_as<TmWord>;
  { tx.Store(addr, value) } -> std::same_as<void>;
  { tx.InTx() } -> std::same_as<bool>;
  tx.SegmentBoundary();
  { htm.NonTxStore(addr, value) } -> std::same_as<void>;
  htm.NotifyNonTxWrite(addr);
  { H::NonTxLoad(caddr) } -> std::same_as<TmWord>;
  { htm.DrainLoad(caddr) } -> std::same_as<TmWord>;
};

}  // namespace tufast

#endif  // TUFAST_TM_CONCEPTS_H_
