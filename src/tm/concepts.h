#ifndef TUFAST_TM_CONCEPTS_H_
#define TUFAST_TM_CONCEPTS_H_

#include <concepts>
#include <cstdint>

#include "common/types.h"
#include "htm/htm_config.h"
#include "tm/outcome.h"

namespace tufast {

/// The transaction-context contract (paper Table I plus the repository's
/// extensions). Every mode context (HTxn/OTxn/LTxn) and every baseline
/// scheduler's Txn satisfies this; algorithm bodies written against it
/// (`auto& txn`) run unchanged on any scheduler.
template <typename T>
concept TransactionContext =
    requires(T& txn, VertexId v, const TmWord* caddr, TmWord* addr,
             TmWord value, const double* cdaddr, double* daddr) {
      { txn.Read(v, caddr) } -> std::same_as<TmWord>;
      { txn.ReadForUpdate(v, caddr) } -> std::same_as<TmWord>;
      { txn.Write(v, addr, value) } -> std::same_as<void>;
      { txn.ReadDouble(v, cdaddr) } -> std::same_as<double>;
      { txn.WriteDouble(v, daddr, 1.0) } -> std::same_as<void>;
      { txn.ops() } -> std::convertible_to<uint64_t>;
      txn.Abort();  // [[noreturn]]; user aborts are final.
    };

/// The scheduler contract shared by TuFast and all six baselines: a
/// worker-scoped Run() plus merged statistics. `Fn` is checked at the
/// Run call site (it must accept every mode's context type).
template <typename S>
concept Scheduler = requires(S& tm, const S& ctm, int worker,
                             uint64_t hint) {
  {
    tm.Run(worker, hint, [](auto& txn) { (void)txn; })
  } -> std::same_as<RunOutcome>;
  { ctm.AggregatedStats() } -> std::same_as<SchedulerStats>;
  tm.ResetStats();
};

/// The HTM-backend contract both EmulatedHtm and NativeHtm satisfy: the
/// per-thread Tx handle plus the non-transactional interop hooks the
/// shared lock/metadata protocols need.
template <typename H>
concept HtmBackend = requires(H& htm, typename H::Tx& tx, TmWord* addr,
                              const TmWord* caddr, TmWord value) {
  typename H::Tx;
  { tx.Load(caddr) } -> std::same_as<TmWord>;
  { tx.Store(addr, value) } -> std::same_as<void>;
  { tx.InTx() } -> std::same_as<bool>;
  tx.SegmentBoundary();
  { htm.NonTxStore(addr, value) } -> std::same_as<void>;
  htm.NotifyNonTxWrite(addr);
  { H::NonTxLoad(caddr) } -> std::same_as<TmWord>;
};

}  // namespace tufast

#endif  // TUFAST_TM_CONCEPTS_H_
