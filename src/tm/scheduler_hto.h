#ifndef TUFAST_TM_SCHEDULER_HTO_H_
#define TUFAST_TM_SCHEDULER_HTO_H_

#include <atomic>
#include <bit>
#include <memory>

#include "common/rng.h"
#include "common/spin.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "tm/outcome.h"
#include "tm/scheduler_to.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// Baseline scheduler: HTM-accelerated timestamp ordering ("H-TO" in
/// paper Fig. 13/14, after the HTM+TO hybrid of Wang et al. / Leis et
/// al.). The transaction first attempts to run entirely inside one
/// hardware transaction that *also* maintains the per-vertex read/write
/// timestamps transactionally (so hardware and software paths stay
/// mutually consistent); after bounded retries or a capacity abort it
/// falls back to the pure timestamp-ordering scheduler. Degree-oblivious:
/// rts updates make even read-read sharing conflict in the hardware path,
/// which is exactly the overhead the paper's H mode avoids.
template <typename Htm, typename Telemetry = NullTelemetry>
class HtmTimestampOrdering {
 public:
  struct Config {
    int htm_retries = 4;
  };

  using Mvcc = typename TimestampOrdering<Htm, Telemetry>::Mvcc;

  HtmTimestampOrdering(Htm& htm, VertexId num_vertices, Config config = {})
      : htm_(htm),
        config_(config),
        fallback_(htm, num_vertices),
        runtime_(0x470u) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(HtmTimestampOrdering);

  /// Hardware-path context: direct loads/stores plus transactional
  /// timestamp maintenance.
  class HwTxn {
   public:
    HwTxn(HtmTimestampOrdering& parent, typename Htm::Tx& htx,
          MvccRecorder* recorder = nullptr, WalRecorder* wal = nullptr)
        : parent_(parent), htx_(htx), recorder_(recorder), wal_(wal) {
      // Hardware-path publishes ride the Tx commit hooks; arm them.
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->hw_armed = true;
    }

    void Reset(uint64_t ts) {
      ts_ = ts;
      ops_ = 0;
    }

    /// Durable builds: stage one logical mutation for the WAL.
    void WalNote(const EdgeUpdate& up) {
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
    }
    WalRecorder* wal_recorder() const { return wal_; }

    TmWord Read(VertexId v, const TmWord* addr) {
      ++ops_;
      // Subscribe the fallback's commit latch: if the software path holds
      // it, v is mid-read or mid-install — back off. Once subscribed, a
      // later software Latch() dooms this transaction (NotifyNonTxWrite),
      // so a hardware commit can never interleave with a latched software
      // read or install — the same lock-word subscription TuFast H mode
      // and HSync use against their software fallbacks.
      if (htx_.Load(parent_.fallback_.LatchAddr(v)) != 0) {
        htx_.template ExplicitAbort<kAbortCodeLockBusy>();
      }
      TmWord* wts = parent_.fallback_.WriteTsAddr(v);
      TmWord* rts = parent_.fallback_.ReadTsAddr(v);
      if (htx_.Load(wts) > ts_) {
        htx_.template ExplicitAbort<kAbortCodeLockBusy>();
      }
      if (htx_.Load(rts) < ts_) htx_.Store(rts, ts_);
      return htx_.Load(addr);
    }

    TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
      return Read(v, addr);  // Optimistic/timestamped: no early locking.
    }

    void Write(VertexId v, TmWord* addr, TmWord value) {
      ++ops_;
      if (htx_.Load(parent_.fallback_.LatchAddr(v)) != 0) {
        htx_.template ExplicitAbort<kAbortCodeLockBusy>();  // See Read().
      }
      TmWord* wts = parent_.fallback_.WriteTsAddr(v);
      TmWord* rts = parent_.fallback_.ReadTsAddr(v);
      if (htx_.Load(wts) > ts_ || htx_.Load(rts) > ts_) {
        htx_.template ExplicitAbort<kAbortCodeLockBusy>();
      }
      htx_.Store(wts, ts_);
      // MVCC: record only the user data word — the wts metadata store
      // above is scheduler bookkeeping, not snapshot-visible state.
      if (TUFAST_UNLIKELY(recorder_ != nullptr)) recorder_->Record(v, addr);
      htx_.Store(addr, value);
    }

    double ReadDouble(VertexId v, const double* addr) {
      return std::bit_cast<double>(
          Read(v, reinterpret_cast<const TmWord*>(addr)));
    }
    void WriteDouble(VertexId v, double* addr, double value) {
      Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
    }
    [[noreturn]] void Abort() {
      htx_.template ExplicitAbort<kAbortCodeUser>();
    }

    uint64_t ops() const { return ops_; }

   private:
    HtmTimestampOrdering& parent_;
    typename Htm::Tx& htx_;
    MvccRecorder* recorder_;
    WalRecorder* wal_;
    uint64_t ts_ = 0;
    uint64_t ops_ = 0;
  };

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t size_hint, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    w.telemetry.EnterMode(SchedMode::kHardware);
    WalRecorder* wal =
        wal_sink_ != nullptr ? &w.state.wal_recorder : nullptr;
    HwTxn hw(*this, w.state.htx,
             mvcc_ != nullptr ? &w.state.recorder : nullptr, wal);
    uint32_t txn_aborts = 0;
    for (int attempt = 0; attempt <= config_.htm_retries; ++attempt) {
      hw.Reset(fallback_.NextTs());
      const AbortStatus status = w.state.htx.Execute([&] { fn(hw); });
      if (status.ok()) {
        AccountWalCommit(w, wal);  // Ack barrier: HW commit done.
        w.stats.RecordCommit(TxnClass::kH, hw.ops());
        w.telemetry.TxnCommit(TxnClass::kH, hw.ops());
        return RunOutcome{true, TxnClass::kH, hw.ops(), txn_aborts};
      }
      const HtmAttemptVerdict verdict = RecordHtmAbort(w, status);
      if (verdict == HtmAttemptVerdict::kUserAbort) {
        ++w.stats.user_aborts;
        w.telemetry.TxnUserAbort(TxnClass::kH);
        return RunOutcome{false, TxnClass::kH, 0, txn_aborts};
      }
      ++txn_aborts;
      if (verdict == HtmAttemptVerdict::kCapacity) break;
    }
    // Hand off to the software path. The fallback scheduler begins its
    // own telemetry transaction (begins count hand-offs twice by design;
    // commit latency for fallen-back txns is attributed to the fallback).
    w.telemetry.EnterMode(SchedMode::kOptimistic);
    RunOutcome out = fallback_.Run(worker_id, size_hint, fn);
    out.aborts += txn_aborts;  // The failed hardware attempts count too.
    return out;
  }

  /// Attaches an MVCC version store (DESIGN.md "MVCC snapshot reads").
  /// The fallback TO scheduler owns the store and this hybrid's hardware
  /// path installs into the SAME store through its commit hooks — both
  /// paths' commits must land on one version timeline. Call before the
  /// first transaction.
  void EnableMvcc() {
    if (mvcc_ == nullptr) {
      TUFAST_CHECK(kHtmTxHasCommitHooks<Htm>);
      fallback_.EnableMvcc();
      mvcc_ = fallback_.mvcc_store();
    }
  }
  Mvcc* mvcc_store() { return mvcc_; }

  /// Attaches a WAL sink (durability/wal.h). The fallback TO scheduler
  /// publishes under its commit latches; this hybrid's hardware path
  /// publishes through its Tx commit hooks into the SAME sink — both
  /// paths' records must land on one log. Call before the first
  /// transaction.
  void EnableWal(WalSink* sink) {
    TUFAST_CHECK(kHtmTxHasCommitHooks<Htm>);
    fallback_.EnableWal(sink);
    wal_sink_ = sink;
  }

  /// Read-only transaction: an abort-free snapshot read once EnableMvcc
  /// was called, an ordinary hybrid Run() otherwise.
  template <typename Fn>
  RunOutcome RunReadOnly(int worker_id, uint64_t size_hint, Fn&& fn) {
    if (mvcc_ == nullptr) return Run(worker_id, size_hint, fn);
    Worker& w = runtime_.GetWorker(worker_id, *this);
    return RunSnapshotReadOnly(*mvcc_, w, worker_id, fn);
  }

  SchedulerStats AggregatedStats() const {
    SchedulerStats total = fallback_.AggregatedStats();
    total.Merge(runtime_.AggregatedStats());
    return total;
  }

  Telemetry AggregatedTelemetry() const {
    Telemetry total = runtime_.AggregatedTelemetry();
    total.Merge(fallback_.AggregatedTelemetry());
    return total;
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }

  void ResetStats() {
    fallback_.ResetStats();
    runtime_.ResetStats();
  }

 private:
  struct State {
    State(HtmTimestampOrdering& parent, int slot) : htx(parent.htm_, slot) {
      hook_ctx.slot = slot;
      if (parent.mvcc_ != nullptr) {
        hook_ctx.store = parent.mvcc_;
        hook_ctx.recorder = &recorder;
      }
      if (parent.wal_sink_ != nullptr) {
        wal_recorder.SetSink(parent.wal_sink_);
        hook_ctx.wal = &wal_recorder;
      }
      if (parent.mvcc_ != nullptr || parent.wal_sink_ != nullptr) {
        if constexpr (kHtmTxHasCommitHooks<Htm>) {
          InstallCommitHooks(htx, hook_ctx);
        }
      }
    }
    typename Htm::Tx htx;
    MvccRecorder recorder;
    WalRecorder wal_recorder;
    CommitHookCtx<Mvcc> hook_ctx;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  Htm& htm_;
  const Config config_;
  TimestampOrdering<Htm, Telemetry> fallback_;
  Mvcc* mvcc_ = nullptr;  // Owned by fallback_; set by EnableMvcc().
  WalSink* wal_sink_ = nullptr;
  Runtime runtime_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_HTO_H_
