#ifndef TUFAST_TM_SCHEDULER_HTO_H_
#define TUFAST_TM_SCHEDULER_HTO_H_

#include <array>
#include <atomic>
#include <bit>
#include <memory>

#include "common/rng.h"
#include "common/spin.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "tm/outcome.h"
#include "tm/scheduler_to.h"

namespace tufast {

/// Baseline scheduler: HTM-accelerated timestamp ordering ("H-TO" in
/// paper Fig. 13/14, after the HTM+TO hybrid of Wang et al. / Leis et
/// al.). The transaction first attempts to run entirely inside one
/// hardware transaction that *also* maintains the per-vertex read/write
/// timestamps transactionally (so hardware and software paths stay
/// mutually consistent); after bounded retries or a capacity abort it
/// falls back to the pure timestamp-ordering scheduler. Degree-oblivious:
/// rts updates make even read-read sharing conflict in the hardware path,
/// which is exactly the overhead the paper's H mode avoids.
template <typename Htm>
class HtmTimestampOrdering {
 public:
  struct Config {
    int htm_retries = 4;
  };

  HtmTimestampOrdering(Htm& htm, VertexId num_vertices, Config config = {})
      : htm_(htm), config_(config), fallback_(htm, num_vertices) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(HtmTimestampOrdering);

  /// Hardware-path context: direct loads/stores plus transactional
  /// timestamp maintenance.
  class HwTxn {
   public:
    HwTxn(HtmTimestampOrdering& parent, typename Htm::Tx& htx)
        : parent_(parent), htx_(htx) {}

    void Reset(uint64_t ts) {
      ts_ = ts;
      ops_ = 0;
    }

    TmWord Read(VertexId v, const TmWord* addr) {
      ++ops_;
      TmWord* wts = parent_.fallback_.WriteTsAddr(v);
      TmWord* rts = parent_.fallback_.ReadTsAddr(v);
      if (htx_.Load(wts) > ts_) {
        htx_.template ExplicitAbort<kAbortCodeLockBusy>();
      }
      if (htx_.Load(rts) < ts_) htx_.Store(rts, ts_);
      return htx_.Load(addr);
    }

    TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
      return Read(v, addr);  // Optimistic/timestamped: no early locking.
    }

    void Write(VertexId v, TmWord* addr, TmWord value) {
      ++ops_;
      TmWord* wts = parent_.fallback_.WriteTsAddr(v);
      TmWord* rts = parent_.fallback_.ReadTsAddr(v);
      if (htx_.Load(wts) > ts_ || htx_.Load(rts) > ts_) {
        htx_.template ExplicitAbort<kAbortCodeLockBusy>();
      }
      htx_.Store(wts, ts_);
      htx_.Store(addr, value);
    }

    double ReadDouble(VertexId v, const double* addr) {
      return std::bit_cast<double>(
          Read(v, reinterpret_cast<const TmWord*>(addr)));
    }
    void WriteDouble(VertexId v, double* addr, double value) {
      Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
    }
    [[noreturn]] void Abort() {
      htx_.template ExplicitAbort<kAbortCodeUser>();
    }

    uint64_t ops() const { return ops_; }

   private:
    HtmTimestampOrdering& parent_;
    typename Htm::Tx& htx_;
    uint64_t ts_ = 0;
    uint64_t ops_ = 0;
  };

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t size_hint, Fn&& fn) {
    Worker& w = GetWorker(worker_id);
    HwTxn hw(*this, w.htx);
    for (int attempt = 0; attempt <= config_.htm_retries; ++attempt) {
      hw.Reset(fallback_.NextTs());
      const AbortStatus status = w.htx.Execute([&] { fn(hw); });
      if (status.ok()) {
        w.stats.RecordCommit(TxnClass::kH, hw.ops());
        return RunOutcome{true, TxnClass::kH, hw.ops()};
      }
      if (status.cause == AbortCause::kExplicit &&
          status.user_code == kAbortCodeUser) {
        ++w.stats.user_aborts;
        return RunOutcome{false, TxnClass::kH, 0};
      }
      if (status.cause == AbortCause::kCapacity) {
        ++w.stats.capacity_aborts;
        break;
      }
      if (status.cause == AbortCause::kExplicit) {
        ++w.stats.lock_busy_aborts;
      } else {
        ++w.stats.conflict_aborts;
      }
    }
    return fallback_.Run(worker_id, size_hint, fn);
  }

  SchedulerStats AggregatedStats() const {
    SchedulerStats total = fallback_.AggregatedStats();
    for (const auto& w : workers_) {
      if (w != nullptr) total.Merge(w->stats);
    }
    return total;
  }

  void ResetStats() {
    fallback_.ResetStats();
    for (auto& w : workers_) {
      if (w != nullptr) w->stats = SchedulerStats{};
    }
  }

 private:
  struct Worker {
    Worker(Htm& htm, int slot) : htx(htm, slot) {}
    typename Htm::Tx htx;
    SchedulerStats stats;
  };

  Worker& GetWorker(int worker_id) {
    TUFAST_CHECK(worker_id >= 0 && worker_id < kMaxHtmThreads);
    auto& slot = workers_[worker_id];
    if (slot == nullptr) slot = std::make_unique<Worker>(htm_, worker_id);
    return *slot;
  }

  Htm& htm_;
  const Config config_;
  TimestampOrdering<Htm> fallback_;
  std::array<std::unique_ptr<Worker>, kMaxHtmThreads> workers_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_HTO_H_
