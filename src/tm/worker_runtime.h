#ifndef TUFAST_TM_WORKER_RUNTIME_H_
#define TUFAST_TM_WORKER_RUNTIME_H_

#include <array>
#include <memory>

#include "common/compiler.h"
#include "common/rng.h"
#include "common/spin.h"
#include "htm/abort.h"
#include "htm/htm_config.h"
#include "tm/outcome.h"
#include "tm/telemetry.h"

namespace tufast {

/// Shared per-worker runtime core for every scheduler in the repository
/// (TuFast + the six baselines). Owns the lazily-constructed per-worker
/// slots — scheduler-specific transaction state, SchedulerStats, RNG and
/// the pluggable telemetry sink — plus the aggregation/reset machinery
/// and the retry-loop scaffolding the schedulers used to hand-roll.
///
/// `State` is the scheduler's own per-worker payload (mode contexts, HTM
/// handles, contention monitor, ...) and must be constructible as
/// `State(parent, slot)` where `parent` is whatever the scheduler passes
/// to GetWorker. `Telemetry` is NullTelemetry (default, zero overhead) or
/// EventTelemetry (tm/telemetry.h).
///
/// Thread model: worker ids in [0, kMaxHtmThreads) map 1:1 to OS threads;
/// a slot's contents are only ever touched by its owning thread, so
/// stats/telemetry mutate without synchronization and Aggregated*() may
/// only run while no transaction is in flight.
template <typename State, typename Telemetry = NullTelemetry>
class WorkerRuntime {
 public:
  struct Worker {
    template <typename Parent>
    Worker(Parent& parent, int slot, uint64_t seed)
        : state(parent, slot), rng(seed) {}

    State state;
    SchedulerStats stats;
    Telemetry telemetry;
    Rng rng;
  };

  /// `seed_base` keeps per-scheduler RNG streams distinct and every run
  /// reproducible; worker `i` draws from seed_base + i * golden-ratio.
  explicit WorkerRuntime(uint64_t seed_base) : seed_base_(seed_base) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(WorkerRuntime);

  template <typename Parent>
  Worker& GetWorker(int worker_id, Parent& parent) {
    TUFAST_CHECK(worker_id >= 0 && worker_id < kMaxHtmThreads);
    auto& slot = workers_[worker_id];
    if (slot == nullptr) {
      slot = std::make_unique<Worker>(
          parent, worker_id,
          seed_base_ + static_cast<uint64_t>(worker_id) * 0x9e3779b9u);
    }
    return *slot;
  }

  /// Worker access without construction (introspection; may be null).
  Worker* worker(int worker_id) {
    return workers_[worker_id] ? workers_[worker_id].get() : nullptr;
  }
  const Worker* worker(int worker_id) const {
    return workers_[worker_id] ? workers_[worker_id].get() : nullptr;
  }

  SchedulerStats AggregatedStats() const {
    SchedulerStats total;
    for (const auto& w : workers_) {
      if (w != nullptr) total.Merge(w->stats);
    }
    return total;
  }

  Telemetry AggregatedTelemetry() const {
    Telemetry total;
    for (const auto& w : workers_) {
      if (w != nullptr) total.Merge(w->telemetry);
    }
    return total;
  }

  const Telemetry* TelemetryForWorker(int worker_id) const {
    return workers_[worker_id] ? &workers_[worker_id]->telemetry : nullptr;
  }

  void ResetStats() {
    ResetStats([](State&) {});
  }

  /// Reset with a per-state hook for scheduler-owned counters that live
  /// inside State (e.g. the HTM handle's HtmStats).
  template <typename StateFn>
  void ResetStats(StateFn&& per_state) {
    for (auto& w : workers_) {
      if (w != nullptr) {
        w->stats = SchedulerStats{};
        w->telemetry = Telemetry{};
        per_state(w->state);
      }
    }
  }

  template <typename Fn>
  void ForEachWorker(Fn&& fn) const {
    for (const auto& w : workers_) {
      if (w != nullptr) fn(*w);
    }
  }

 private:
  const uint64_t seed_base_;
  std::array<std::unique_ptr<Worker>, kMaxHtmThreads> workers_;
};

/// Short randomized backoff between software retry attempts (the loop
/// pacing Silo/TO/TinySTM shared by copy before the runtime existed).
template <typename RngT>
inline void RetryBackoff(RngT& rng) {
  Backoff backoff;
  const uint64_t pauses = 2 + rng.NextBounded(14);
  for (uint64_t i = 0; i < pauses; ++i) backoff.Pause();
}

/// How one failed hardware attempt should be handled by the retry loop.
enum class HtmAttemptVerdict {
  kUserAbort,  // body called Abort(): final, return to caller
  kCapacity,   // deterministic repeat: leave the loop for the fallback
  kRetryable,  // conflict / lock-busy: retry or fall through on budget
};

/// Classifies a failed AbortStatus, bumping the matching SchedulerStats
/// counter and telemetry event. Shared by every HTM-first retry loop
/// (TuFast H mode, HSync, H-TO).
template <typename Worker>
inline HtmAttemptVerdict RecordHtmAbort(Worker& w, const AbortStatus& status) {
  if (status.cause == AbortCause::kExplicit &&
      status.user_code == kAbortCodeUser) {
    return HtmAttemptVerdict::kUserAbort;
  }
  if (status.cause == AbortCause::kCapacity) {
    ++w.stats.capacity_aborts;
    w.telemetry.AttemptAbort(AbortReason::kCapacity);
    return HtmAttemptVerdict::kCapacity;
  }
  if (status.cause == AbortCause::kExplicit) {
    ++w.stats.lock_busy_aborts;
    w.telemetry.AttemptAbort(AbortReason::kLockBusy);
  } else {
    ++w.stats.conflict_aborts;
    w.telemetry.AttemptAbort(AbortReason::kConflict);
  }
  return HtmAttemptVerdict::kRetryable;
}

/// One fused hardware attempt for the batch executor (tm/batch_executor.h):
/// runs the bodies of items [lo, hi) back-to-back inside a *single* HTM
/// region on `htxn`, so the whole window shares one BEGIN/COMMIT and one
/// set of lock-word subscriptions. Returns the region's AbortStatus and
/// the operation count of the (possibly partial) execution.
struct FusedAttemptResult {
  AbortStatus status;
  uint64_t ops = 0;
};

template <typename Tx, typename HTxnT, typename BodyFn>
inline FusedAttemptResult RunFusedHtmAttempt(Tx& htx, HTxnT& htxn, uint64_t lo,
                                             uint64_t hi, BodyFn& body) {
  htxn.ResetOps();
  const AbortStatus status = htx.Execute([&] {
    for (uint64_t k = lo; k < hi; ++k) body(htxn, k);
  });
  return FusedAttemptResult{status, htxn.ops()};
}

/// Accounting for a committed fused region: every item counts as one
/// H-class commit in both stats and telemetry (Fig. 15 parity with the
/// per-item path) plus the fusion packaging counters.
template <typename Worker>
inline void RecordFusedCommit(Worker& w, uint32_t width, uint32_t depth,
                              uint64_t ops) {
  w.stats.RecordFusedCommit(width, ops);
  w.telemetry.FusedCommit(width, depth, ops);
}

/// Accounting for an aborted fused region that is about to be bisected:
/// one fusion abort + one bisection, with the abort *reason* classified
/// through the same RecordHtmAbort path the per-item loops use.
template <typename Worker>
inline HtmAttemptVerdict RecordFusedAbort(Worker& w, uint32_t width,
                                          const AbortStatus& status) {
  ++w.stats.fusion_aborts;
  ++w.stats.fusion_bisections;
  w.telemetry.FusionAbort(width);
  return RecordHtmAbort(w, status);
}

/// Two-phase-locking retry loop shared by TuFast's L mode and the 2PL
/// baseline: run the body on `ltxn`, commit-and-release, restart with
/// exponential randomized backoff when picked as a deadlock victim.
template <typename Worker, typename LockTxn, typename Fn>
RunOutcome RunLockTxnLoop(Worker& w, LockTxn& ltxn, Fn& fn, TxnClass cls) {
  w.telemetry.EnterMode(SchedMode::kLock);
  uint32_t attempt = 0;
  while (true) {
    ltxn.Reset();
    try {
      fn(ltxn);
      ltxn.CommitApplyAndRelease();
      w.stats.RecordCommit(cls, ltxn.ops());
      w.telemetry.TxnCommit(cls, ltxn.ops());
      return RunOutcome{true, cls, ltxn.ops()};
    } catch (const UserAbortSignal&) {
      ltxn.ReleaseAll();
      ++w.stats.user_aborts;
      w.telemetry.TxnUserAbort(cls);
      return RunOutcome{false, cls, 0};
    } catch (const DeadlockVictimSignal&) {
      ltxn.ReleaseAll();
      ++w.stats.deadlock_aborts;
      w.telemetry.AttemptAbort(AbortReason::kDeadlock);
      // Exponential randomized backoff: under extreme contention every
      // concurrent attempt closes a cycle, and constant short backoff
      // livelocks — grow the window until somebody runs alone.
      DeadlockRetryBackoff(w.rng, attempt++);
    }
  }
}

/// Software-optimistic retry loop shared by the Silo, TO and TinySTM
/// baselines: reset, run the body, validate/commit; on a scheduler abort
/// signal roll back and retry after a short randomized backoff.
///
/// `AbortSignal` is the scheduler's internal conflict exception.
/// `reset(txn)` prepares one attempt (e.g. draws a fresh timestamp);
/// `try_commit(txn)` returns commit success; `rollback(txn)` undoes
/// encounter-time side effects (no-op for most).
template <typename AbortSignal, typename Worker, typename Txn, typename Fn,
          typename ResetFn, typename CommitFn, typename RollbackFn>
RunOutcome RunOptimisticRetryLoop(Worker& w, Txn& txn, Fn& fn, ResetFn reset,
                                  CommitFn try_commit, RollbackFn rollback) {
  w.telemetry.EnterMode(SchedMode::kOptimistic);
  while (true) {
    reset(txn);
    try {
      fn(txn);
      if (try_commit(txn)) {
        w.stats.RecordCommit(TxnClass::kO, txn.ops());
        w.telemetry.TxnCommit(TxnClass::kO, txn.ops());
        return RunOutcome{true, TxnClass::kO, txn.ops()};
      }
      ++w.stats.validation_aborts;
      w.telemetry.AttemptAbort(AbortReason::kValidation);
    } catch (const UserAbortSignal&) {
      rollback(txn);
      ++w.stats.user_aborts;
      w.telemetry.TxnUserAbort(TxnClass::kO);
      return RunOutcome{false, TxnClass::kO, 0};
    } catch (const AbortSignal&) {
      rollback(txn);
      ++w.stats.conflict_aborts;
      w.telemetry.AttemptAbort(AbortReason::kConflict);
    }
    RetryBackoff(w.rng);
  }
}

}  // namespace tufast

#endif  // TUFAST_TM_WORKER_RUNTIME_H_
