#ifndef TUFAST_TM_WORKER_RUNTIME_H_
#define TUFAST_TM_WORKER_RUNTIME_H_

#include <array>
#include <atomic>
#include <memory>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/rng.h"
#include "common/spin.h"
#include "durability/wal.h"
#include "htm/abort.h"
#include "htm/htm_config.h"
#include "mvcc/version_store.h"
#include "tm/outcome.h"
#include "tm/progress_guard.h"
#include "tm/telemetry.h"

namespace tufast {

/// Shared per-worker runtime core for every scheduler in the repository
/// (TuFast + the six baselines). Owns the lazily-constructed per-worker
/// slots — scheduler-specific transaction state, SchedulerStats, RNG and
/// the pluggable telemetry sink — plus the aggregation/reset machinery
/// and the retry-loop scaffolding the schedulers used to hand-roll.
///
/// `State` is the scheduler's own per-worker payload (mode contexts, HTM
/// handles, contention monitor, ...) and must be constructible as
/// `State(parent, slot)` where `parent` is whatever the scheduler passes
/// to GetWorker. `Telemetry` is NullTelemetry (default, zero overhead) or
/// EventTelemetry (tm/telemetry.h).
///
/// Thread model: worker ids in [0, kMaxHtmThreads) map 1:1 to OS threads;
/// a slot's contents are only ever touched by its owning thread, so
/// stats/telemetry mutate without synchronization and Aggregated*() may
/// only run while no transaction is in flight.
template <typename State, typename Telemetry = NullTelemetry>
class WorkerRuntime {
 public:
  struct Worker {
    template <typename Parent>
    Worker(Parent& parent, int slot, uint64_t seed)
        : state(parent, slot), rng(seed) {}

    State state;
    SchedulerStats stats;
    Telemetry telemetry;
    Rng rng;

    /// Stall-watchdog heartbeats (tm/stall_watchdog.h): relaxed atomics
    /// because the watchdog thread samples them while the worker runs —
    /// everything else in the slot stays single-threaded and plain.
    std::atomic<uint64_t> attempt_beat{0};
    std::atomic<uint64_t> commit_beat{0};
  };

  /// `seed_base` keeps per-scheduler RNG streams distinct and every run
  /// reproducible; worker `i` draws from seed_base + i * golden-ratio.
  explicit WorkerRuntime(uint64_t seed_base) : seed_base_(seed_base) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(WorkerRuntime);

  template <typename Parent>
  Worker& GetWorker(int worker_id, Parent& parent) {
    TUFAST_CHECK(worker_id >= 0 && worker_id < kMaxHtmThreads);
    auto& slot = workers_[worker_id];
    if (slot == nullptr) {
      slot = std::make_unique<Worker>(
          parent, worker_id,
          seed_base_ + static_cast<uint64_t>(worker_id) * 0x9e3779b9u);
    }
    return *slot;
  }

  /// Worker access without construction (introspection; may be null).
  Worker* worker(int worker_id) {
    return workers_[worker_id] ? workers_[worker_id].get() : nullptr;
  }
  const Worker* worker(int worker_id) const {
    return workers_[worker_id] ? workers_[worker_id].get() : nullptr;
  }

  SchedulerStats AggregatedStats() const {
    SchedulerStats total;
    for (const auto& w : workers_) {
      if (w != nullptr) total.Merge(w->stats);
    }
    return total;
  }

  Telemetry AggregatedTelemetry() const {
    Telemetry total;
    for (const auto& w : workers_) {
      if (w != nullptr) total.Merge(w->telemetry);
    }
    return total;
  }

  const Telemetry* TelemetryForWorker(int worker_id) const {
    return workers_[worker_id] ? &workers_[worker_id]->telemetry : nullptr;
  }

  void ResetStats() {
    ResetStats([](State&) {});
  }

  /// Reset with a per-state hook for scheduler-owned counters that live
  /// inside State (e.g. the HTM handle's HtmStats).
  template <typename StateFn>
  void ResetStats(StateFn&& per_state) {
    for (auto& w : workers_) {
      if (w != nullptr) {
        w->stats = SchedulerStats{};
        w->telemetry = Telemetry{};
        w->attempt_beat.store(0, std::memory_order_relaxed);
        w->commit_beat.store(0, std::memory_order_relaxed);
        per_state(w->state);
      }
    }
  }

  /// Heartbeat totals across all workers. Safe to call from a watchdog
  /// thread while workers run — the only runtime accessor with that
  /// property — provided every participating slot already exists (lazy
  /// construction in GetWorker is not synchronized, so harnesses run one
  /// warmup pass before attaching the watchdog).
  struct HeartbeatTotals {
    uint64_t attempts = 0;
    uint64_t commits = 0;
  };
  HeartbeatTotals Heartbeats() const {
    HeartbeatTotals totals;
    for (const auto& w : workers_) {
      if (w != nullptr) {
        totals.attempts += w->attempt_beat.load(std::memory_order_relaxed);
        totals.commits += w->commit_beat.load(std::memory_order_relaxed);
      }
    }
    return totals;
  }

  template <typename Fn>
  void ForEachWorker(Fn&& fn) const {
    for (const auto& w : workers_) {
      if (w != nullptr) fn(*w);
    }
  }

 private:
  const uint64_t seed_base_;
  std::array<std::unique_ptr<Worker>, kMaxHtmThreads> workers_;
};

/// Short randomized backoff between software retry attempts (the loop
/// pacing Silo/TO/TinySTM shared by copy before the runtime existed).
template <typename RngT>
inline void RetryBackoff(RngT& rng) {
  Backoff backoff;
  const uint64_t pauses = 2 + rng.NextBounded(14);
  for (uint64_t i = 0; i < pauses; ++i) backoff.Pause();
}

/// Stall-watchdog heartbeats: one beat per execution attempt / commit.
/// Relaxed — the watchdog only needs eventual monotone counters.
template <typename Worker>
TUFAST_ALWAYS_INLINE void BeatAttempt(Worker& w) {
  w.attempt_beat.fetch_add(1, std::memory_order_relaxed);
}
template <typename Worker>
TUFAST_ALWAYS_INLINE void BeatCommit(Worker& w) {
  w.commit_beat.fetch_add(1, std::memory_order_relaxed);
}

/// End-of-transaction retry accounting: feeds the victim re-abort
/// histogram and the worst-case bound the starvation stress asserts on.
template <typename Worker>
inline void RecordTxnRetries(Worker& w, uint64_t aborts) {
  w.telemetry.TxnRetries(aborts);
  if (aborts > w.stats.max_txn_aborts) w.stats.max_txn_aborts = aborts;
}

/// Pays one progress-guard backoff and records it (stats + telemetry).
template <typename Worker>
inline void PayBackoff(Worker& w, uint32_t attempt) {
  const uint64_t pauses = ConflictBackoff(w.rng, attempt);
  ++w.stats.backoff_events;
  w.telemetry.BackoffWait(pauses);
}

/// Releases an LTxn-style lock set on every scope exit not explicitly
/// dismissed — the fix for lock leaks when a transaction body throws a
/// foreign (non-TM) exception through the retry loop. Relies on
/// ReleaseAll() being idempotent (LTxn clears its held set).
template <typename LockTxn>
class LockReleaseGuard {
 public:
  explicit LockReleaseGuard(LockTxn& txn) : txn_(&txn) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(LockReleaseGuard);
  ~LockReleaseGuard() {
    if (txn_ != nullptr) txn_->ReleaseAll();
  }
  void Dismiss() { txn_ = nullptr; }

 private:
  LockTxn* txn_;
};

/// How one failed hardware attempt should be handled by the retry loop.
enum class HtmAttemptVerdict {
  kUserAbort,  // body called Abort(): final, return to caller
  kCapacity,   // deterministic repeat: leave the loop for the fallback
  kRetryable,  // conflict / lock-busy: retry or fall through on budget
};

/// Classifies a failed AbortStatus, bumping the matching SchedulerStats
/// counter and telemetry event. Shared by every HTM-first retry loop
/// (TuFast H mode, HSync, H-TO).
template <typename Worker>
inline HtmAttemptVerdict RecordHtmAbort(Worker& w, const AbortStatus& status) {
  if (status.cause == AbortCause::kExplicit &&
      status.user_code == kAbortCodeUser) {
    return HtmAttemptVerdict::kUserAbort;
  }
  if (status.cause == AbortCause::kCapacity) {
    ++w.stats.capacity_aborts;
    w.telemetry.AttemptAbort(AbortReason::kCapacity);
    return HtmAttemptVerdict::kCapacity;
  }
  if (status.cause == AbortCause::kExplicit) {
    ++w.stats.lock_busy_aborts;
    w.telemetry.AttemptAbort(AbortReason::kLockBusy);
  } else {
    ++w.stats.conflict_aborts;
    w.telemetry.AttemptAbort(AbortReason::kConflict);
  }
  return HtmAttemptVerdict::kRetryable;
}

/// One fused hardware attempt for the batch executor (tm/batch_executor.h):
/// runs the bodies of items [lo, hi) back-to-back inside a *single* HTM
/// region on `htxn`, so the whole window shares one BEGIN/COMMIT and one
/// set of lock-word subscriptions. Returns the region's AbortStatus and
/// the operation count of the (possibly partial) execution.
struct FusedAttemptResult {
  AbortStatus status;
  uint64_t ops = 0;
};

template <typename Tx, typename HTxnT, typename BodyFn>
inline FusedAttemptResult RunFusedHtmAttempt(Tx& htx, HTxnT& htxn, uint64_t lo,
                                             uint64_t hi, BodyFn& body) {
  htxn.ResetOps();
  const AbortStatus status = htx.Execute([&] {
    for (uint64_t k = lo; k < hi; ++k) body(htxn, k);
  });
  return FusedAttemptResult{status, htxn.ops()};
}

/// Accounting for a committed fused region: every item counts as one
/// H-class commit in both stats and telemetry (Fig. 15 parity with the
/// per-item path) plus the fusion packaging counters.
template <typename Worker>
inline void RecordFusedCommit(Worker& w, uint32_t width, uint32_t depth,
                              uint64_t ops) {
  w.stats.RecordFusedCommit(width, ops);
  w.telemetry.FusedCommit(width, depth, ops);
}

/// Accounting for an aborted fused region that is about to be bisected:
/// one fusion abort + one bisection, with the abort *reason* classified
/// through the same RecordHtmAbort path the per-item loops use.
template <typename Worker>
inline HtmAttemptVerdict RecordFusedAbort(Worker& w, uint32_t width,
                                          const AbortStatus& status) {
  ++w.stats.fusion_aborts;
  ++w.stats.fusion_bisections;
  w.telemetry.FusionAbort(width);
  return RecordHtmAbort(w, status);
}

/// Accounting for one shard-mailbox drain batch (sharding/): `batch`
/// messages popped for group-commit execution with `depth` messages
/// visible at drain entry. Mirrors RecordFusedCommit so the stats and
/// telemetry views of the active-message layer stay in lockstep.
template <typename Worker>
inline void RecordShardDrain(Worker& w, uint32_t batch, uint64_t depth) {
  ++w.stats.shard_drain_batches;
  w.stats.shard_messages_drained += batch;
  if (depth > w.stats.shard_max_mailbox_depth) {
    w.stats.shard_max_mailbox_depth = depth;
  }
  w.telemetry.ShardDrain(batch, depth);
}

/// Accounting for one combine-collect sweep (tm/combiner.h): `ops`
/// announced operations applied as one group-commit batch, `occupancy`
/// slots found announced at collect entry. Mirrors RecordShardDrain so
/// the stats and telemetry views of the combining layer stay in
/// lockstep.
template <typename Worker>
inline void RecordCombineBatch(Worker& w, uint32_t ops, uint32_t occupancy) {
  ++w.stats.combine_batches;
  w.stats.combined_ops += ops;
  if (occupancy > w.stats.combine_max_occupancy) {
    w.stats.combine_max_occupancy = occupancy;
  }
  w.telemetry.CombineBatch(ops, occupancy);
}

/// One announce bounced by a full combiner slot array; the operation
/// runs locally instead (never dropped).
template <typename Worker>
inline void RecordCombineSlotFull(Worker& w) {
  ++w.stats.combine_slot_full;
  w.telemetry.CombineSlotFull();
}

/// One contention-history region this worker observed turning hot.
template <typename Worker>
inline void RecordHotVertex(Worker& w) {
  ++w.stats.hot_vertices;
  w.telemetry.HotVertex();
}

/// Scope guard releasing a progress guard's per-slot escalation state
/// (starved bit, token) on every exit from the L retry loop — including
/// a foreign exception unwinding out mid-escalation.
class ProgressDoneGuard {
 public:
  ProgressDoneGuard(ProgressGuard* guard, int slot)
      : guard_(guard), slot_(slot) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(ProgressDoneGuard);
  ~ProgressDoneGuard() {
    if (guard_ != nullptr) guard_->OnTxnDone(slot_);
  }

 private:
  ProgressGuard* guard_;
  const int slot_;
};

/// One victim abort in the L retry loop: escalate through the progress
/// guard's ladder (recording what happened) and pay the retry backoff.
/// Must run after the victim released its lock set.
template <typename Worker>
inline void OnLockVictimAbort(Worker& w, const ProgressContext& ctx,
                              uint32_t aborts) {
  if (ctx.guard != nullptr) {
    switch (ctx.guard->OnAbort(ctx.slot, aborts)) {
      case ProgressGuard::Escalation::kStarved:
        ++w.stats.starvation_escalations;
        w.telemetry.StarvationEscalated();
        break;
      case ProgressGuard::Escalation::kToken:
        ++w.stats.starvation_tokens;
        w.telemetry.StarvationToken();
        break;
      case ProgressGuard::Escalation::kNone:
        break;
    }
  }
  if (ctx.enable_backoff) {
    PayBackoff(w, aborts - 1);
  } else {
    // Legacy pacing (pre-progress-guard, bit-for-bit): same exponential
    // randomized wait, no accounting.
    DeadlockRetryBackoff(w.rng, aborts - 1);
  }
}

/// Two-phase-locking retry loop shared by TuFast's L mode and the 2PL
/// baseline: run the body on `ltxn`, commit-and-release, restart with
/// randomized exponential backoff when picked as a deadlock victim,
/// escalating through the progress guard (ctx.guard) so every
/// transaction keeps a bounded path to commit.
///
/// Exception safety: ANY exception leaving the body — not just the TM
/// control signals — releases the whole lock set (LockReleaseGuard) and
/// drops escalation state (ProgressDoneGuard) before propagating.
///
/// `FailpointsT` threads the fault-injection policy in for the forced
/// re-victimization site (kVictimReabort); pass the scheduler's policy
/// explicitly — the default NullFailpoints keeps legacy call sites
/// injection-free.
template <typename FailpointsT = NullFailpoints, typename Worker,
          typename LockTxn, typename Fn>
RunOutcome RunLockTxnLoop(Worker& w, LockTxn& ltxn, Fn& fn, TxnClass cls,
                          ProgressContext ctx = {}) {
  w.telemetry.EnterMode(SchedMode::kLock);
  uint32_t aborts = ctx.prior_aborts;
  ProgressDoneGuard done(ctx.guard, ctx.slot);
  while (true) {
    BeatAttempt(w);
    if constexpr (FailpointsT::kEnabled) {
      // Forced extra victim abort (stress: adversarial re-victimization)
      // — protected slots are immune, exactly like real victim selection.
      if ((ctx.guard == nullptr || !ctx.guard->Protected(ctx.slot)) &&
          FailpointsT::Hit(FailSite::kVictimReabort, ctx.slot) ==
              FailAction::kFail) {
        ++w.stats.deadlock_aborts;
        w.telemetry.AttemptAbort(AbortReason::kDeadlock);
        OnLockVictimAbort(w, ctx, ++aborts);
        continue;
      }
      // Forced escalation straight to the top of the ladder.
      if (ctx.guard != nullptr &&
          FailpointsT::Hit(FailSite::kStarvationToken, ctx.slot) ==
              FailAction::kFail) {
        switch (ctx.guard->ForceEscalate(ctx.slot)) {
          case ProgressGuard::Escalation::kToken:
            ++w.stats.starvation_tokens;
            w.telemetry.StarvationToken();
            [[fallthrough]];
          case ProgressGuard::Escalation::kStarved:
            ++w.stats.starvation_escalations;
            w.telemetry.StarvationEscalated();
            break;
          case ProgressGuard::Escalation::kNone:
            break;
        }
      }
    }
    ltxn.Reset();
    LockReleaseGuard<LockTxn> release(ltxn);
    try {
      fn(ltxn);
      ltxn.CommitApplyAndRelease();
      release.Dismiss();  // Commit already released everything.
      AccountWalCommitFromTxn(w, ltxn);  // Ack barrier: no locks held.
      BeatCommit(w);
      w.stats.RecordCommit(cls, ltxn.ops());
      w.telemetry.TxnCommit(cls, ltxn.ops());
      RecordTxnRetries(w, aborts);
      return RunOutcome{true, cls, ltxn.ops(), aborts};
    } catch (const UserAbortSignal&) {
      // LockReleaseGuard frees the lock set on unwind.
      ++w.stats.user_aborts;
      w.telemetry.TxnUserAbort(cls);
      RecordTxnRetries(w, aborts);
      return RunOutcome{false, cls, 0, aborts};
    } catch (const DeadlockVictimSignal&) {
      // Free the lock set NOW — escalation and backoff must run with no
      // locks held (the guard dtor would only fire at scope end).
      ltxn.ReleaseAll();
      ++w.stats.deadlock_aborts;
      w.telemetry.AttemptAbort(AbortReason::kDeadlock);
      OnLockVictimAbort(w, ctx, ++aborts);
    }
  }
}

/// Whether an HTM backend's Tx exposes the commit hooks the hardware-path
/// MVCC install needs (EmulatedHtm does; a native backend without hooks
/// still runs every non-MVCC configuration).
template <typename Htm>
inline constexpr bool kHtmTxHasCommitHooks =
    requires(typename Htm::Tx& tx) { tx.SetHooks(typename Htm::Tx::Hooks{}); };

/// HTM-path commit plumbing, shared by every scheduler whose hardware
/// commits publish through Tx commit hooks (TuFast H mode, HSync, H-TO).
/// Two independent consumers hang off the same three hook points:
///
///  - MVCC (store + recorder non-null): the hardware context records
///    (vertex, addr) on every Write and pre_publish turns the recording
///    into version-chain nodes — pre-images are read from live memory
///    between pre_publish and the write-back flush, when the region is
///    doomed-checked but not yet published.
///  - WAL (wal non-null): transaction bodies Note() their graph
///    mutations and post_publish appends them to the log's group-commit
///    buffer as one record — after the write-back flush (so waiting on
///    the log mutex never widens the window where a committed
///    transaction's values are still buffered and invisible to software
///    peers) but still inside the ownership window (conflicting
///    transactions wait for the full release), so log order matches
///    commit order. The recorder's hw_armed flag scopes this to hardware
///    transactions: O mode shares the same Tx for its segment commits,
///    and those must neither clear nor publish the software
///    transaction's staged notes.
///
/// on_begin clears residue from aborted attempts; the empty checks make
/// commits that wrote nothing free. Hooks are installed only when at
/// least one consumer is on, so the off-configuration stays bit-identical
/// to a build with no hooks at all.
template <typename Store>
struct CommitHookCtx {
  Store* store = nullptr;           // MVCC: null = off
  MvccRecorder* recorder = nullptr; // non-null iff store is
  WalRecorder* wal = nullptr;       // WAL: null = off
  int slot = 0;
};

template <typename Tx, typename Store>
inline void InstallCommitHooks(Tx& htx, CommitHookCtx<Store>& ctx) {
  typename Tx::Hooks hooks;
  hooks.on_begin = [](void* c) {
    auto* h = static_cast<CommitHookCtx<Store>*>(c);
    if (h->recorder != nullptr) h->recorder->Clear();
    if (h->wal != nullptr && h->wal->hw_armed) h->wal->Clear();
  };
  hooks.pre_publish = [](void* c) {
    auto* h = static_cast<CommitHookCtx<Store>*>(c);
    if (h->store != nullptr && !h->recorder->empty()) {
      h->store->BeginInstall(h->slot, h->recorder->writes(),
                             [](const MvccWrite& w) { return w; });
    }
  };
  hooks.post_publish = [](void* c) {
    auto* h = static_cast<CommitHookCtx<Store>*>(c);
    if (h->store != nullptr) {
      h->store->EndInstall(h->slot);
      h->recorder->Clear();
    }
    if (h->wal != nullptr && h->wal->hw_armed && !h->wal->empty()) {
      h->wal->Publish();
    }
  };
  hooks.ctx = &ctx;
  htx.SetHooks(hooks);
}

/// Group-commit acknowledgment + stats drain for one committed
/// transaction that published WAL records. Runs after every lock /
/// ownership release but before Run() returns: the fsync is the slow
/// part, and group commit exists precisely so contending workers never
/// serialize on it — Commit() returns immediately when another worker's
/// flush already covered this sequence number.
template <typename Worker>
inline void AccountWalCommit(Worker& w, WalRecorder* wal) {
  if (wal == nullptr || wal->published_records == 0) return;
  if (wal->sink() != nullptr) wal->sink()->Commit(wal->last_seq);
  w.stats.wal_records += wal->published_records;
  w.stats.wal_bytes += wal->published_bytes;
  wal->published_records = 0;
  wal->published_bytes = 0;
}

/// Same, reaching through a transaction context that may or may not
/// carry a WAL recorder (baseline txn types grow one only when the
/// scheduler supports EnableWal).
template <typename Worker, typename Txn>
inline void AccountWalCommitFromTxn(Worker& w, Txn& txn) {
  if constexpr (requires { txn.wal_recorder(); }) {
    AccountWalCommit(w, txn.wal_recorder());
  }
}

/// MVCC read-only runner shared by every scheduler's RunReadOnly() once
/// a version store is attached: executes `fn` against an abort-free
/// snapshot transaction with heartbeat + snapshot-stats accounting.
/// `outcome.aborts` is 0 by construction — snapshot reads never enter
/// the conflict space.
template <typename Store, typename Worker, typename Fn>
RunOutcome RunSnapshotReadOnly(Store& store, Worker& w, int slot, Fn& fn) {
  BeatAttempt(w);
  BasicMvccSnapshotTxn<Store> txn(store, slot);
  try {
    fn(txn);
  } catch (const UserAbortSignal&) {
    // The only way out without committing; the txn destructor has
    // already unpinned the snapshot.
    ++w.stats.user_aborts;
    return RunOutcome{false, TxnClass::kH, 0};
  }
  const uint64_t ops = txn.ops();
  txn.Finish();
  ++w.stats.snapshot_commits;
  w.stats.snapshot_ops += ops;
  BeatCommit(w);
  return RunOutcome{true, TxnClass::kH, ops};
}

/// Software-optimistic retry loop shared by the Silo, TO and TinySTM
/// baselines: reset, run the body, validate/commit; on a scheduler abort
/// signal roll back and retry after a short randomized backoff.
///
/// `AbortSignal` is the scheduler's internal conflict exception.
/// `reset(txn)` prepares one attempt (e.g. draws a fresh timestamp);
/// `try_commit(txn)` returns commit success; `rollback(txn)` undoes
/// encounter-time side effects (no-op for most).
template <typename AbortSignal, typename Worker, typename Txn, typename Fn,
          typename ResetFn, typename CommitFn, typename RollbackFn>
RunOutcome RunOptimisticRetryLoop(Worker& w, Txn& txn, Fn& fn, ResetFn reset,
                                  CommitFn try_commit, RollbackFn rollback) {
  w.telemetry.EnterMode(SchedMode::kOptimistic);
  uint32_t aborts = 0;
  while (true) {
    BeatAttempt(w);
    reset(txn);
    try {
      fn(txn);
      if (try_commit(txn)) {
        AccountWalCommitFromTxn(w, txn);  // Ack barrier: locks released.
        BeatCommit(w);
        w.stats.RecordCommit(TxnClass::kO, txn.ops());
        w.telemetry.TxnCommit(TxnClass::kO, txn.ops());
        RecordTxnRetries(w, aborts);
        return RunOutcome{true, TxnClass::kO, txn.ops(), aborts};
      }
      ++w.stats.validation_aborts;
      w.telemetry.AttemptAbort(AbortReason::kValidation);
    } catch (const UserAbortSignal&) {
      rollback(txn);
      ++w.stats.user_aborts;
      w.telemetry.TxnUserAbort(TxnClass::kO);
      RecordTxnRetries(w, aborts);
      return RunOutcome{false, TxnClass::kO, 0, aborts};
    } catch (const AbortSignal&) {
      rollback(txn);
      ++w.stats.conflict_aborts;
      w.telemetry.AttemptAbort(AbortReason::kConflict);
    } catch (...) {
      // Foreign exception from the body: undo encounter-time side
      // effects (TinySTM holds write locks mid-body) before propagating.
      rollback(txn);
      throw;
    }
    ++aborts;
    RetryBackoff(w.rng);
  }
}

}  // namespace tufast

#endif  // TUFAST_TM_WORKER_RUNTIME_H_
