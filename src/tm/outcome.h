#ifndef TUFAST_TM_OUTCOME_H_
#define TUFAST_TM_OUTCOME_H_

#include <cstdint>

#include "common/spin.h"

namespace tufast {

/// Which execution class a committed TuFast transaction fell into,
/// matching the paper's Fig. 15 breakdown exactly:
///   H   - committed inside a single hardware transaction;
///   O   - committed by the optimistic mode on its first attempt;
///   OPlus - committed by O mode after one or more `period` adjustments;
///   O2L - O mode gave up, committed under locks;
///   L   - routed to lock mode directly (size hint too large for H/O).
enum class TxnClass : uint8_t { kH = 0, kO, kOPlus, kO2L, kL, kNumClasses };

inline const char* TxnClassName(TxnClass c) {
  switch (c) {
    case TxnClass::kH: return "H";
    case TxnClass::kO: return "O";
    case TxnClass::kOPlus: return "O+";
    case TxnClass::kO2L: return "O2L";
    case TxnClass::kL: return "L";
    default: return "?";
  }
}

/// Result of one Run() call on any scheduler.
struct RunOutcome {
  /// False only when the user called Txn::Abort() (no retry, by design).
  bool committed = false;
  /// Execution class of the commit (TuFast; baselines report kL/kO etc.
  /// loosely or leave the default).
  TxnClass cls = TxnClass::kH;
  /// READ/WRITE operations performed by the committed execution.
  uint64_t ops = 0;
  /// Failed attempts this call paid before the outcome above (0 for a
  /// first-try commit). MVCC snapshot reads (RunReadOnly) are 0 by
  /// construction; the streaming bench's reader-abort gate keys off
  /// this.
  uint64_t aborts = 0;
};

/// Per-worker counters common to every scheduler in this repository.
/// Merge per-worker copies for global numbers; never shared across
/// threads without merging.
struct SchedulerStats {
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t ops_committed = 0;

  // Failed attempts by reason (a transaction may fail several times
  // before committing; each failed attempt counts once).
  uint64_t conflict_aborts = 0;
  uint64_t capacity_aborts = 0;
  uint64_t validation_aborts = 0;
  uint64_t lock_busy_aborts = 0;
  uint64_t deadlock_aborts = 0;

  // Fig. 15: committed-transaction counts and op totals per class.
  uint64_t class_count[static_cast<int>(TxnClass::kNumClasses)] = {};
  uint64_t class_ops[static_cast<int>(TxnClass::kNumClasses)] = {};

  // Batch-executor (group-commit fusion) counters. A fused region that
  // commits counts each of its items as a normal H-class commit above,
  // so the class totals stay comparable across fusion on/off; these
  // record how the commits were packaged.
  uint64_t fused_regions = 0;      // committed fused regions (width >= 2)
  uint64_t fused_items = 0;        // items committed inside those regions
  uint64_t fusion_aborts = 0;      // fused-region attempts that aborted
  uint64_t fusion_bisections = 0;  // abort-driven width halvings

  // Shard-per-core active-message counters (sharding/shard_runtime.h).
  // `shard_local_items` counts batch items owned by the executing
  // worker; `shard_kept_local` counts cross-shard items the router kept
  // local (contention below the ship threshold); `shard_mailbox_full`
  // counts messages bounced by a full mailbox (executed locally — never
  // dropped). Sent and drained totals balance globally once every
  // sender's flush completed.
  uint64_t shard_local_items = 0;
  uint64_t shard_kept_local = 0;
  uint64_t shard_messages_sent = 0;
  uint64_t shard_messages_drained = 0;
  uint64_t shard_drain_batches = 0;
  uint64_t shard_mailbox_full = 0;
  uint64_t shard_max_mailbox_depth = 0;  // max observed at drain entry

  // Hot-vertex flat-combining counters (tm/combiner.h). `combined_ops`
  // counts operations applied inside collected combine batches (by
  // whichever worker collected them); `combine_batches` counts those
  // collect sweeps; `hot_vertices` counts cold->hot region transitions
  // this worker's history updates observed; `combine_slot_full` counts
  // announces bounced by a full slot array (executed locally — never
  // dropped); `combine_max_occupancy` is the largest announced-slot
  // count found by one collect sweep (announce-queue occupancy).
  uint64_t combined_ops = 0;
  uint64_t combine_batches = 0;
  uint64_t hot_vertices = 0;
  uint64_t combine_slot_full = 0;
  uint64_t combine_max_occupancy = 0;

  // Progress-guard counters (tm/progress_guard.h), kept in the plain
  // stats so the guarantees stay observable in NullTelemetry builds.
  uint64_t backoff_events = 0;          // retry backoffs paid
  uint64_t starvation_escalations = 0;  // priority-aging escalations
  uint64_t starvation_tokens = 0;       // global-token acquisitions
  uint64_t breaker_bypass = 0;          // txns routed to L by the breaker
  uint64_t max_txn_aborts = 0;          // worst per-txn failed attempts

  // Serving front end (serving/server.h): per-worker queue-delay
  // accounting, recorded exactly once per executed request via
  // TuFastScheduler::NoteQueueDelay. Kept in the plain stats (like the
  // progress-guard counters) so serve-side SLO accounting works in
  // NullTelemetry builds without a side channel.
  uint64_t serve_requests = 0;
  uint64_t serve_queue_delay_ns = 0;
  uint64_t serve_max_queue_delay_ns = 0;

  // MVCC snapshot transactions (RunReadOnly with enable_mvcc). Kept out
  // of commits/class_count: snapshot reads never enter the conflict
  // space, so folding them into the Fig. 15 breakdown would skew the
  // mode-mix comparisons.
  uint64_t snapshot_commits = 0;
  uint64_t snapshot_ops = 0;

  // Durability (enable_wal / EnableWal): committed WAL records and
  // payload bytes attributed to this worker's transactions; fsyncs come
  // from the shared writer and recovery_* from the replay path — both
  // stamped into one stats copy post-run (never per-worker).
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t recovery_replayed = 0;
  uint64_t recovery_torn_tail = 0;

  void RecordCommit(TxnClass cls, uint64_t ops) {
    ++commits;
    ops_committed += ops;
    ++class_count[static_cast<int>(cls)];
    class_ops[static_cast<int>(cls)] += ops;
  }

  /// Commit of one fused H-mode region covering `items` per-vertex
  /// transactions totalling `total_ops` operations. Counts every item as
  /// an H-class commit (Fig. 15 parity with the unfused path) plus the
  /// fusion packaging counters.
  void RecordFusedCommit(uint64_t items, uint64_t total_ops) {
    commits += items;
    ops_committed += total_ops;
    class_count[static_cast<int>(TxnClass::kH)] += items;
    class_ops[static_cast<int>(TxnClass::kH)] += total_ops;
    if (items >= 2) {
      ++fused_regions;
      fused_items += items;
    }
  }

  uint64_t TotalFailedAttempts() const {
    return conflict_aborts + capacity_aborts + validation_aborts +
           lock_busy_aborts + deadlock_aborts;
  }

  void Merge(const SchedulerStats& other) {
    commits += other.commits;
    user_aborts += other.user_aborts;
    ops_committed += other.ops_committed;
    conflict_aborts += other.conflict_aborts;
    capacity_aborts += other.capacity_aborts;
    validation_aborts += other.validation_aborts;
    lock_busy_aborts += other.lock_busy_aborts;
    deadlock_aborts += other.deadlock_aborts;
    for (int i = 0; i < static_cast<int>(TxnClass::kNumClasses); ++i) {
      class_count[i] += other.class_count[i];
      class_ops[i] += other.class_ops[i];
    }
    fused_regions += other.fused_regions;
    fused_items += other.fused_items;
    fusion_aborts += other.fusion_aborts;
    fusion_bisections += other.fusion_bisections;
    shard_local_items += other.shard_local_items;
    shard_kept_local += other.shard_kept_local;
    shard_messages_sent += other.shard_messages_sent;
    shard_messages_drained += other.shard_messages_drained;
    shard_drain_batches += other.shard_drain_batches;
    shard_mailbox_full += other.shard_mailbox_full;
    if (other.shard_max_mailbox_depth > shard_max_mailbox_depth) {
      shard_max_mailbox_depth = other.shard_max_mailbox_depth;
    }
    combined_ops += other.combined_ops;
    combine_batches += other.combine_batches;
    hot_vertices += other.hot_vertices;
    combine_slot_full += other.combine_slot_full;
    if (other.combine_max_occupancy > combine_max_occupancy) {
      combine_max_occupancy = other.combine_max_occupancy;
    }
    backoff_events += other.backoff_events;
    starvation_escalations += other.starvation_escalations;
    starvation_tokens += other.starvation_tokens;
    breaker_bypass += other.breaker_bypass;
    if (other.max_txn_aborts > max_txn_aborts) {
      max_txn_aborts = other.max_txn_aborts;
    }
    serve_requests += other.serve_requests;
    serve_queue_delay_ns += other.serve_queue_delay_ns;
    if (other.serve_max_queue_delay_ns > serve_max_queue_delay_ns) {
      serve_max_queue_delay_ns = other.serve_max_queue_delay_ns;
    }
    snapshot_commits += other.snapshot_commits;
    snapshot_ops += other.snapshot_ops;
    wal_records += other.wal_records;
    wal_bytes += other.wal_bytes;
    wal_fsyncs += other.wal_fsyncs;
    recovery_replayed += other.recovery_replayed;
    recovery_torn_tail += other.recovery_torn_tail;
  }
};

/// Explicit-abort user codes shared between the modes and the router.
inline constexpr uint8_t kAbortCodeUser = 1;
inline constexpr uint8_t kAbortCodeLockBusy = 2;

/// Internal signal for a user-requested ABORT() outside hardware
/// transactions (O validation phase, L mode). Caught by the router.
struct UserAbortSignal {};

/// Internal signal for an L-mode deadlock-victim restart.
struct DeadlockVictimSignal {};

/// Internal signal for an O-mode software abort (lock busy / validation
/// failure) raised outside the hardware segment.
struct OModeFailSignal {};

/// Shared exponential randomized backoff between deadlock-victim retries
/// (see TwoPhaseLocking::Run). `attempt` is the number of victim aborts
/// this transaction has suffered so far.
template <typename RngT>
void DeadlockRetryBackoff(RngT& rng, uint32_t attempt) {
  const uint32_t shift = attempt < 12 ? attempt : 12;
  const uint64_t window = uint64_t{16} << shift;
  const uint64_t pauses = 4 + rng.NextBounded(window);
  Backoff backoff;
  for (uint64_t i = 0; i < pauses; ++i) backoff.Pause();
}

}  // namespace tufast

#endif  // TUFAST_TM_OUTCOME_H_
