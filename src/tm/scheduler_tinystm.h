#ifndef TUFAST_TM_SCHEDULER_TINYSTM_H_
#define TUFAST_TM_SCHEDULER_TINYSTM_H_

#include <atomic>
#include <bit>
#include <memory>
#include <vector>

#include "common/spin.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "mvcc/version_store.h"
#include "tm/addr_map.h"
#include "tm/outcome.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// Baseline scheduler: word-based software transactional memory in the
/// TinySTM/LSA style ("STM" in paper Fig. 11/13/14): a global version
/// clock, a striped ownership-record (orec) table hashed by address,
/// encounter-time write locking with write-back buffering, and
/// timestamp-validated invisible reads. This is what TuFast degrades to
/// when all hardware instructions are replaced by software counterparts.
template <typename Htm, typename Telemetry = NullTelemetry>
class TinyStm {
 public:
  using Mvcc = BasicMvccStore<HtmFailpoints<Htm>>;

  explicit TinyStm(Htm& htm, VertexId num_vertices = 0)
      : htm_(htm), num_vertices_(num_vertices), orecs_(kOrecCount, 0),
        runtime_(0x57u) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(TinyStm);

  class Txn {
   public:
    explicit Txn(TinyStm& parent, int slot)
        : parent_(parent), slot_(slot),
          owner_mark_((static_cast<uint64_t>(slot) << 1) | 1) {}
    TUFAST_DISALLOW_COPY_AND_MOVE(Txn);

    void Reset() {
      rv_ = parent_.clock_.load(std::memory_order_acquire);
      ops_ = 0;
      reads_.clear();
      write_orecs_.clear();
      writes_.clear();
      write_map_.Clear();
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Clear();
    }

    /// Durable builds: stage one logical mutation for the WAL.
    void WalNote(const EdgeUpdate& up) {
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
    }
    WalRecorder* wal_recorder() const { return wal_; }

    TmWord Read(VertexId /*v*/, const TmWord* addr) {
      ++ops_;
      if (uint32_t* idx =
              write_map_.Find(reinterpret_cast<uintptr_t>(addr))) {
        return writes_[*idx].value;
      }
      const size_t orec = parent_.OrecIndex(addr);
      const uint64_t o1 = parent_.LoadOrec(orec);
      if (o1 & 1) {
        if (o1 != owner_mark_composite(orec)) throw StmAbortSignal{};
        // Locked by us through a different address mapping to the same
        // stripe: memory still holds the committed value (write-back).
        return Htm::NonTxLoad(addr);
      }
      const TmWord value = Htm::NonTxLoad(addr);
      const uint64_t o2 = parent_.LoadOrec(orec);
      if (o1 != o2 || (o1 >> 1) > rv_) throw StmAbortSignal{};
      reads_.push_back(ReadEntry{orec, o1});
      return value;
    }

    TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
      return Read(v, addr);  // Optimistic/timestamped: no early locking.
    }

    void Write(VertexId v, TmWord* addr, TmWord value) {
      ++ops_;
      bool inserted;
      uint32_t* idx = write_map_.FindOrInsert(
          reinterpret_cast<uintptr_t>(addr),
          static_cast<uint32_t>(writes_.size()), &inserted);
      if (!inserted) {
        writes_[*idx].value = value;
        return;
      }
      writes_.push_back(WriteEntry{addr, value, v});
      // Encounter-time stripe locking.
      const size_t orec = parent_.OrecIndex(addr);
      const uint64_t mark = owner_mark_composite(orec);
      uint64_t current = parent_.LoadOrec(orec);
      if (current == mark) return;  // Stripe already ours.
      if ((current & 1) || (current >> 1) > rv_) throw StmAbortSignal{};
      if (!parent_.CasOrec(orec, current, mark)) throw StmAbortSignal{};
      write_orecs_.push_back(OrecEntry{orec, current});
    }

    double ReadDouble(VertexId v, const double* addr) {
      return std::bit_cast<double>(
          Read(v, reinterpret_cast<const TmWord*>(addr)));
    }
    void WriteDouble(VertexId v, double* addr, double value) {
      Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
    }

    [[noreturn]] void Abort() { throw UserAbortSignal{}; }

    uint64_t ops() const { return ops_; }

   private:
    friend class TinyStm;
    struct ReadEntry {
      size_t orec;
      uint64_t version;
    };
    struct OrecEntry {
      size_t orec;
      uint64_t previous;
    };
    struct WriteEntry {
      TmWord* addr;
      TmWord value;
      VertexId vertex;  // MVCC version-chain owner (unused otherwise).
    };

    uint64_t owner_mark_composite(size_t /*orec*/) const {
      return owner_mark_;
    }

    TinyStm& parent_;
    const int slot_;
    WalRecorder* wal_ = nullptr;
    const uint64_t owner_mark_;  // (slot<<1)|1: odd = locked marker.
    uint64_t rv_ = 0;
    uint64_t ops_ = 0;
    std::vector<ReadEntry> reads_;
    std::vector<OrecEntry> write_orecs_;
    std::vector<WriteEntry> writes_;
    AddrMap write_map_;
  };

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t /*size_hint*/, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    return RunOptimisticRetryLoop<StmAbortSignal>(
        w, w.state.txn, fn, [](Txn& txn) { txn.Reset(); },
        [this](Txn& txn) { return TryCommit(txn); },
        [this](Txn& txn) { RollbackOrecs(txn); });
  }

  /// Attaches an MVCC version store (DESIGN.md "MVCC snapshot reads"):
  /// commits install pre-image versions and RunReadOnly() becomes an
  /// abort-free snapshot read. Requires the graph-sized constructor
  /// (num_vertices > 0); call before the first transaction.
  void EnableMvcc() {
    TUFAST_CHECK(num_vertices_ > 0);
    if (mvcc_ == nullptr) mvcc_ = std::make_unique<Mvcc>(num_vertices_);
  }
  Mvcc* mvcc_store() { return mvcc_.get(); }

  /// Attaches a WAL sink (durability/wal.h): commits publish their
  /// staged mutations as checksummed records and Run() acks only after
  /// the group commit made them durable. Call before the first
  /// transaction.
  void EnableWal(WalSink* sink) { wal_sink_ = sink; }

  /// Read-only transaction: an abort-free snapshot read once EnableMvcc
  /// was called, an ordinary STM Run() otherwise.
  template <typename Fn>
  RunOutcome RunReadOnly(int worker_id, uint64_t size_hint, Fn&& fn) {
    if (mvcc_ == nullptr) return Run(worker_id, size_hint, fn);
    Worker& w = runtime_.GetWorker(worker_id, *this);
    return RunSnapshotReadOnly(*mvcc_, w, worker_id, fn);
  }

  SchedulerStats AggregatedStats() const { return runtime_.AggregatedStats(); }
  Telemetry AggregatedTelemetry() const {
    return runtime_.AggregatedTelemetry();
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }
  void ResetStats() { runtime_.ResetStats(); }

 private:
  struct StmAbortSignal {};
  static constexpr size_t kOrecCount = size_t{1} << 20;

  struct State {
    State(TinyStm& parent, int slot) : txn(parent, slot) {
      if (parent.wal_sink_ != nullptr) {
        wal_recorder.SetSink(parent.wal_sink_);
        txn.wal_ = &wal_recorder;
      }
    }
    Txn txn;
    WalRecorder wal_recorder;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  size_t OrecIndex(const void* addr) const {
    const uint64_t line = reinterpret_cast<uintptr_t>(addr) >> 3;
    uint64_t z = line * 0x9e3779b97f4a7c15ULL;
    return (z ^ (z >> 29)) & (kOrecCount - 1);
  }

  uint64_t LoadOrec(size_t i) const {
    return __atomic_load_n(&orecs_[i], __ATOMIC_ACQUIRE);
  }

  bool CasOrec(size_t i, uint64_t expected, uint64_t desired) {
    return __atomic_compare_exchange_n(&orecs_[i], &expected, desired,
                                       /*weak=*/false, __ATOMIC_ACQ_REL,
                                       __ATOMIC_RELAXED);
  }

  void RollbackOrecs(Txn& txn) {
    for (const auto& e : txn.write_orecs_) {
      __atomic_store_n(&orecs_[e.orec], e.previous, __ATOMIC_RELEASE);
    }
  }

  bool TryCommit(Txn& txn) {
    if (txn.writes_.empty()) return true;  // Read-only: rv validation done.
    const uint64_t wv = clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (wv > txn.rv_ + 1) {
      // Somebody committed since we started: re-validate the read set.
      for (const auto& r : txn.reads_) {
        const uint64_t now = LoadOrec(r.orec);
        if (now != r.version && now != txn.owner_mark_composite(r.orec)) {
          RollbackOrecs(txn);
          return false;
        }
      }
    }
    // MVCC: pre-images are captured while the write stripes are still
    // orec-locked (exclusive ownership) and before the new values land.
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) {
      mvcc_->BeginInstall(txn.slot_, txn.writes_,
                          [](const typename Txn::WriteEntry& e) {
                            return MvccWrite{e.vertex, e.addr};
                          });
    }
    // WAL record lands while the write stripes are still orec-locked, so
    // log order matches commit order; the fsync waits for the
    // group-commit barrier after unlock (AccountWalCommit in the loop).
    if (TUFAST_UNLIKELY(txn.wal_ != nullptr) && !txn.wal_->empty()) {
      txn.wal_->Publish();
    }
    for (const auto& w : txn.writes_) htm_.NonTxStore(w.addr, w.value);
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) mvcc_->EndInstall(txn.slot_);
    for (const auto& e : txn.write_orecs_) {
      __atomic_store_n(&orecs_[e.orec], wv << 1, __ATOMIC_RELEASE);
      htm_.NotifyNonTxWrite(&orecs_[e.orec]);
    }
    return true;
  }

  Htm& htm_;
  const VertexId num_vertices_;
  std::atomic<uint64_t> clock_{0};
  std::vector<uint64_t> orecs_;
  std::unique_ptr<Mvcc> mvcc_;
  WalSink* wal_sink_ = nullptr;
  Runtime runtime_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_TINYSTM_H_
