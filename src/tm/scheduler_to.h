#ifndef TUFAST_TM_SCHEDULER_TO_H_
#define TUFAST_TM_SCHEDULER_TO_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <vector>

#include "common/spin.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "mvcc/version_store.h"
#include "tm/addr_map.h"
#include "tm/outcome.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// Baseline scheduler: timestamp ordering ("TO" in paper Fig. 7). Every
/// transaction draws a start timestamp from a global counter; per-vertex
/// read/write timestamps enforce that operations happen in timestamp
/// order — an operation arriving "too late" aborts the transaction, which
/// retries with a fresh timestamp. Writes are buffered and installed at
/// commit under per-vertex latches.
template <typename Htm, typename Telemetry = NullTelemetry>
class TimestampOrdering {
 public:
  using Mvcc = BasicMvccStore<HtmFailpoints<Htm>>;

  TimestampOrdering(Htm& htm, VertexId num_vertices)
      : htm_(htm),
        read_ts_(num_vertices, 0),
        write_ts_(num_vertices, 0),
        latches_(num_vertices, 0),
        runtime_(0x70u) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(TimestampOrdering);

  class Txn {
   public:
    explicit Txn(TimestampOrdering& parent, int slot)
        : parent_(parent), slot_(slot) {}
    TUFAST_DISALLOW_COPY_AND_MOVE(Txn);

    void Reset(uint64_t ts) {
      ts_ = ts;
      ops_ = 0;
      writes_.clear();
      write_map_.Clear();
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Clear();
    }

    /// Durable builds: stage one logical mutation for the WAL.
    void WalNote(const EdgeUpdate& up) {
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
    }
    WalRecorder* wal_recorder() const { return wal_; }

    TmWord Read(VertexId v, const TmWord* addr) {
      ++ops_;
      if (uint32_t* idx =
              write_map_.Find(reinterpret_cast<uintptr_t>(addr))) {
        return writes_[*idx].value;
      }
      parent_.Latch(v);
      // DrainLoad (not a plain load): an H-TO hardware commit past its
      // commit point may still be flushing buffered wts/rts/data out of
      // the emulated write buffer. Latch() doomed every hardware txn
      // still before its commit point and the latch word keeps new ones
      // out, so draining the committing writers makes these checks — and
      // the data load below, which any data-writer's drained wts store
      // ordered behind its data flush — race-free against the HW path.
      if (parent_.htm_.DrainLoad(&parent_.write_ts_[v]) > ts_) {
        parent_.Unlatch(v);
        throw ToAbortSignal{};  // A younger transaction already wrote v.
      }
      if (parent_.htm_.DrainLoad(&parent_.read_ts_[v]) < ts_) {
        // NonTxStore (not a plain store): H-TO's hardware path writes the
        // same word transactionally, so the store must first drain/doom
        // any transactional owner of the line. No-op difference on the
        // native backend, where coherence handles this.
        parent_.htm_.NonTxStore(&parent_.read_ts_[v], ts_);
      }
      const TmWord value = Htm::NonTxLoad(addr);
      parent_.Unlatch(v);
      return value;
    }

    TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
      return Read(v, addr);  // Optimistic/timestamped: no early locking.
    }

    void Write(VertexId v, TmWord* addr, TmWord value) {
      ++ops_;
      // Early (non-binding) check; the authoritative check re-runs at
      // commit under the latch.
      if (__atomic_load_n(&parent_.read_ts_[v], __ATOMIC_ACQUIRE) > ts_ ||
          __atomic_load_n(&parent_.write_ts_[v], __ATOMIC_ACQUIRE) > ts_) {
        throw ToAbortSignal{};
      }
      bool inserted;
      uint32_t* idx = write_map_.FindOrInsert(
          reinterpret_cast<uintptr_t>(addr),
          static_cast<uint32_t>(writes_.size()), &inserted);
      if (inserted) {
        writes_.push_back(WriteEntry{v, addr, value});
      } else {
        writes_[*idx].value = value;
      }
    }

    double ReadDouble(VertexId v, const double* addr) {
      return std::bit_cast<double>(
          Read(v, reinterpret_cast<const TmWord*>(addr)));
    }
    void WriteDouble(VertexId v, double* addr, double value) {
      Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
    }

    [[noreturn]] void Abort() { throw UserAbortSignal{}; }

    uint64_t ops() const { return ops_; }

   private:
    friend class TimestampOrdering;
    struct WriteEntry {
      VertexId vertex;
      TmWord* addr;
      TmWord value;
    };

    TimestampOrdering& parent_;
    const int slot_;
    WalRecorder* wal_ = nullptr;
    uint64_t ts_ = 0;
    uint64_t ops_ = 0;
    std::vector<WriteEntry> writes_;
    AddrMap write_map_;
    std::vector<VertexId> write_vertices_;
  };

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t /*size_hint*/, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    return RunOptimisticRetryLoop<ToAbortSignal>(
        w, w.state.txn, fn, [this](Txn& txn) { txn.Reset(NextTs()); },
        [this](Txn& txn) { return TryCommit(txn); }, [](Txn&) {});
  }

  SchedulerStats AggregatedStats() const { return runtime_.AggregatedStats(); }
  Telemetry AggregatedTelemetry() const {
    return runtime_.AggregatedTelemetry();
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }
  void ResetStats() { runtime_.ResetStats(); }

  /// Shared-metadata access for the H-TO hybrid: its hardware path must
  /// maintain the SAME timestamp words as this software path, or the two
  /// paths could not see each other's conflicts.
  TmWord* ReadTsAddr(VertexId v) { return &read_ts_[v]; }
  TmWord* WriteTsAddr(VertexId v) { return &write_ts_[v]; }
  /// The H-TO hardware path subscribes this word and aborts when it is
  /// held, so a hardware commit can never interleave with a latched
  /// software read or install (mirrors how TuFast H mode and HSync
  /// subscribe their software lock words).
  TmWord* LatchAddr(VertexId v) { return &latches_[v]; }
  uint64_t NextTs() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Attaches an MVCC version store (DESIGN.md "MVCC snapshot reads"):
  /// commits install pre-image versions and RunReadOnly() becomes an
  /// abort-free snapshot read. Call before the first transaction.
  void EnableMvcc() {
    if (mvcc_ == nullptr) {
      owned_mvcc_ = std::make_unique<Mvcc>(
          static_cast<VertexId>(read_ts_.size()));
      mvcc_ = owned_mvcc_.get();
    }
  }
  /// Shares an externally owned store (the H-TO hybrid: its hardware
  /// path and this software fallback must install into ONE store).
  void SetMvccStore(Mvcc* store) { mvcc_ = store; }
  Mvcc* mvcc_store() { return mvcc_; }

  /// Attaches a WAL sink (durability/wal.h): commits publish their
  /// staged mutations as checksummed records and Run() acks only after
  /// the group commit made them durable. Call before the first
  /// transaction.
  void EnableWal(WalSink* sink) { wal_sink_ = sink; }

  /// Read-only transaction: an abort-free snapshot read once a store is
  /// attached, an ordinary timestamped Run() otherwise.
  template <typename Fn>
  RunOutcome RunReadOnly(int worker_id, uint64_t size_hint, Fn&& fn) {
    if (mvcc_ == nullptr) return Run(worker_id, size_hint, fn);
    Worker& w = runtime_.GetWorker(worker_id, *this);
    return RunSnapshotReadOnly(*mvcc_, w, worker_id, fn);
  }

 private:
  struct ToAbortSignal {};

  struct State {
    State(TimestampOrdering& parent, int slot) : txn(parent, slot) {
      if (parent.wal_sink_ != nullptr) {
        wal_recorder.SetSink(parent.wal_sink_);
        txn.wal_ = &wal_recorder;
      }
    }
    Txn txn;
    WalRecorder wal_recorder;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  void Latch(VertexId v) {
    Backoff backoff;
    TmWord expected = 0;
    while (!__atomic_compare_exchange_n(&latches_[v], &expected, 1,
                                        /*weak=*/false, __ATOMIC_ACQUIRE,
                                        __ATOMIC_RELAXED)) {
      expected = 0;
      backoff.Pause();
    }
    // The H-TO hardware path subscribes the latch word (HwTxn checks it
    // before touching v), so taking the latch must doom the subscribed
    // hardware transactions — otherwise one could validate and commit on
    // v while this software transaction reads or installs under the
    // latch. No-op on the native backend (the CAS itself invalidates).
    htm_.NotifyNonTxWrite(&latches_[v]);
  }

  void Unlatch(VertexId v) {
    __atomic_store_n(&latches_[v], 0, __ATOMIC_RELEASE);
  }

  bool TryCommit(Txn& txn) {
    auto& wv = txn.write_vertices_;
    wv.clear();
    for (const auto& w : txn.writes_) wv.push_back(w.vertex);
    std::sort(wv.begin(), wv.end());
    wv.erase(std::unique(wv.begin(), wv.end()), wv.end());

    // Latch the write set in sorted order (no deadlock), re-check the
    // timestamp rules, install, advance write timestamps.
    for (const VertexId v : wv) Latch(v);
    for (const VertexId v : wv) {
      // DrainLoad: see Read() — Latch() doomed the active hardware txns
      // and bars new ones; these waits drain the committing ones, so the
      // recheck cannot miss a hardware commit still flushing timestamps.
      if (htm_.DrainLoad(&read_ts_[v]) > txn.ts_ ||
          htm_.DrainLoad(&write_ts_[v]) > txn.ts_) {
        for (const VertexId u : wv) Unlatch(u);
        return false;
      }
    }
    // MVCC: pre-images are captured under the latches (exclusive
    // ownership of the user data words) before the new values land.
    // Only the user data versions — the rts/wts metadata words are
    // scheduler-internal and meaningless to a snapshot reader.
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) {
      mvcc_->BeginInstall(txn.slot_, txn.writes_,
                          [](const typename Txn::WriteEntry& e) {
                            return MvccWrite{e.vertex, e.addr};
                          });
    }
    // WAL record lands under the latches, so log order matches commit
    // order; the fsync waits for the group-commit barrier after unlatch
    // (AccountWalCommit in the retry loop).
    if (TUFAST_UNLIKELY(txn.wal_ != nullptr) && !txn.wal_->empty()) {
      txn.wal_->Publish();
    }
    for (const auto& w : txn.writes_) htm_.NonTxStore(w.addr, w.value);
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) mvcc_->EndInstall(txn.slot_);
    for (const VertexId v : wv) {
      htm_.NonTxStore(&write_ts_[v], txn.ts_);  // See Read: drains HW owners.
      Unlatch(v);
    }
    return true;
  }

  Htm& htm_;
  std::atomic<uint64_t> clock_{0};
  std::vector<TmWord> read_ts_;
  std::vector<TmWord> write_ts_;
  std::vector<TmWord> latches_;
  Mvcc* mvcc_ = nullptr;
  std::unique_ptr<Mvcc> owned_mvcc_;
  WalSink* wal_sink_ = nullptr;
  Runtime runtime_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_TO_H_
