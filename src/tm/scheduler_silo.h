#ifndef TUFAST_TM_SCHEDULER_SILO_H_
#define TUFAST_TM_SCHEDULER_SILO_H_

#include <algorithm>
#include <bit>
#include <memory>
#include <vector>

#include "common/spin.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "mvcc/version_store.h"
#include "tm/addr_map.h"
#include "tm/outcome.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// Baseline scheduler: Silo-style optimistic concurrency control ("OCC"
/// in the paper's figures). Per-vertex TID words (version<<1 | lockbit);
/// reads record the observed TID, commit locks the write set (sorted, so
/// lock acquisition cannot deadlock), validates the read set, installs
/// writes non-transactionally and bumps versions.
template <typename Htm, typename Telemetry = NullTelemetry>
class SiloOcc {
 public:
  using Mvcc = BasicMvccStore<HtmFailpoints<Htm>>;

  SiloOcc(Htm& htm, VertexId num_vertices)
      : htm_(htm), tids_(num_vertices, 0), runtime_(0x5170u) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(SiloOcc);

  class Txn {
   public:
    Txn(SiloOcc& parent, int slot) : parent_(parent), slot_(slot) {}
    TUFAST_DISALLOW_COPY_AND_MOVE(Txn);

    void Reset() {
      ops_ = 0;
      reads_.clear();
      writes_.clear();
      write_map_.Clear();
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Clear();
    }

    /// Durable builds: stage one logical mutation for the WAL.
    void WalNote(const EdgeUpdate& up) {
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
    }
    WalRecorder* wal_recorder() const { return wal_; }

    TmWord Read(VertexId v, const TmWord* addr) {
      ++ops_;
      if (uint32_t* idx =
              write_map_.Find(reinterpret_cast<uintptr_t>(addr))) {
        return writes_[*idx].value;
      }
      // Stable-snapshot read: TID must be unlocked and unchanged around
      // the data load (Silo's per-record consistency protocol).
      Backoff backoff;
      uint32_t spins = 0;
      while (true) {
        const TmWord t1 = parent_.LoadTid(v);
        if ((t1 & 1) == 0) {
          const TmWord value = Htm::NonTxLoad(addr);
          const TmWord t2 = parent_.LoadTid(v);
          if (t1 == t2) {
            reads_.push_back(ReadEntry{v, t1, addr, value});
            return value;
          }
        }
        if (++spins > kReadSpinLimit) throw SiloAbortSignal{};
        backoff.Pause();
      }
    }

    TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
      return Read(v, addr);  // Optimistic/timestamped: no early locking.
    }

    void Write(VertexId v, TmWord* addr, TmWord value) {
      ++ops_;
      bool inserted;
      uint32_t* idx = write_map_.FindOrInsert(
          reinterpret_cast<uintptr_t>(addr),
          static_cast<uint32_t>(writes_.size()), &inserted);
      if (inserted) {
        writes_.push_back(WriteEntry{v, addr, value});
      } else {
        writes_[*idx].value = value;
      }
    }

    double ReadDouble(VertexId v, const double* addr) {
      return std::bit_cast<double>(
          Read(v, reinterpret_cast<const TmWord*>(addr)));
    }
    void WriteDouble(VertexId v, double* addr, double value) {
      Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
    }

    [[noreturn]] void Abort() { throw UserAbortSignal{}; }

    uint64_t ops() const { return ops_; }

   private:
    friend class SiloOcc;
    struct ReadEntry {
      VertexId vertex;
      TmWord tid;
      const TmWord* addr;
      TmWord value;
    };
    struct WriteEntry {
      VertexId vertex;
      TmWord* addr;
      TmWord value;
    };
    static constexpr uint32_t kReadSpinLimit = 1000;

    SiloOcc& parent_;
    const int slot_;
    WalRecorder* wal_ = nullptr;
    uint64_t ops_ = 0;
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
    AddrMap write_map_;
    std::vector<VertexId> write_vertices_;
  };

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t /*size_hint*/, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    return RunOptimisticRetryLoop<SiloAbortSignal>(
        w, w.state.txn, fn, [](Txn& txn) { txn.Reset(); },
        [this](Txn& txn) { return TryCommit(txn); }, [](Txn&) {});
  }

  /// Attaches an MVCC version store (DESIGN.md "MVCC snapshot reads"):
  /// commits install pre-image versions and RunReadOnly() becomes an
  /// abort-free snapshot read. Call before the first transaction.
  void EnableMvcc() {
    if (mvcc_ == nullptr) {
      mvcc_ = std::make_unique<Mvcc>(static_cast<VertexId>(tids_.size()));
    }
  }
  Mvcc* mvcc_store() { return mvcc_.get(); }

  /// Attaches a WAL sink (durability/wal.h): commits publish their
  /// staged mutations as checksummed records and Run() acks only after
  /// the group commit made them durable. Call before the first
  /// transaction.
  void EnableWal(WalSink* sink) { wal_sink_ = sink; }

  /// Read-only transaction: an abort-free snapshot read once EnableMvcc
  /// was called, an ordinary optimistic Run() otherwise.
  template <typename Fn>
  RunOutcome RunReadOnly(int worker_id, uint64_t size_hint, Fn&& fn) {
    if (mvcc_ == nullptr) return Run(worker_id, size_hint, fn);
    Worker& w = runtime_.GetWorker(worker_id, *this);
    return RunSnapshotReadOnly(*mvcc_, w, worker_id, fn);
  }

  SchedulerStats AggregatedStats() const { return runtime_.AggregatedStats(); }
  Telemetry AggregatedTelemetry() const {
    return runtime_.AggregatedTelemetry();
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }
  void ResetStats() { runtime_.ResetStats(); }

 private:
  struct SiloAbortSignal {};

  struct State {
    State(SiloOcc& parent, int slot) : txn(parent, slot) {
      if (parent.wal_sink_ != nullptr) {
        wal_recorder.SetSink(parent.wal_sink_);
        txn.wal_ = &wal_recorder;
      }
    }
    Txn txn;
    WalRecorder wal_recorder;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  TmWord LoadTid(VertexId v) const {
    return __atomic_load_n(&tids_[v], __ATOMIC_ACQUIRE);
  }

  bool TryLockTid(VertexId v) {
    TmWord expected = LoadTid(v);
    if (expected & 1) return false;
    return __atomic_compare_exchange_n(&tids_[v], &expected, expected | 1,
                                       /*weak=*/false, __ATOMIC_ACQUIRE,
                                       __ATOMIC_RELAXED);
  }

  void UnlockTidBump(VertexId v) {
    const TmWord locked = LoadTid(v);
    __atomic_store_n(&tids_[v], ((locked >> 1) + 1) << 1, __ATOMIC_RELEASE);
    htm_.NotifyNonTxWrite(&tids_[v]);
  }

  void UnlockTidKeep(VertexId v) {
    const TmWord locked = LoadTid(v);
    __atomic_store_n(&tids_[v], locked & ~TmWord{1}, __ATOMIC_RELEASE);
  }

  bool TryCommit(Txn& txn) {
    auto& wv = txn.write_vertices_;
    wv.clear();
    for (const auto& w : txn.writes_) wv.push_back(w.vertex);
    std::sort(wv.begin(), wv.end());
    wv.erase(std::unique(wv.begin(), wv.end()), wv.end());

    // Phase 1: lock the write set in sorted order (bounded wait, then
    // back off entirely — Silo aborts rather than blocks).
    size_t locked = 0;
    for (; locked < wv.size(); ++locked) {
      Backoff backoff;
      uint32_t spins = 0;
      while (!TryLockTid(wv[locked])) {
        if (++spins > 200) {
          for (size_t i = 0; i < locked; ++i) UnlockTidKeep(wv[i]);
          return false;
        }
        backoff.Pause();
      }
    }

    // Phase 2: validate reads (TID unchanged, not locked by others).
    for (const auto& r : txn.reads_) {
      const TmWord now = LoadTid(r.vertex);
      const bool locked_by_me =
          std::binary_search(wv.begin(), wv.end(), r.vertex);
      if ((now >> 1) != (r.tid >> 1) || ((now & 1) != 0 && !locked_by_me)) {
        for (const VertexId v : wv) UnlockTidKeep(v);
        return false;
      }
    }

    // Phase 3: install and bump versions. The MVCC pre-images are
    // captured while the write set is still TID-locked (exclusive
    // ownership) and before the new values land in live memory.
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) {
      mvcc_->BeginInstall(txn.slot_, txn.writes_,
                          [](const typename Txn::WriteEntry& e) {
                            return MvccWrite{e.vertex, e.addr};
                          });
    }
    // WAL record lands while the write set is still TID-locked, so log
    // order matches commit order; the fsync waits for the group-commit
    // barrier after unlock (AccountWalCommit in the retry loop).
    if (TUFAST_UNLIKELY(txn.wal_ != nullptr) && !txn.wal_->empty()) {
      txn.wal_->Publish();
    }
    for (const auto& w : txn.writes_) htm_.NonTxStore(w.addr, w.value);
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) mvcc_->EndInstall(txn.slot_);
    for (const VertexId v : wv) UnlockTidBump(v);
    return true;
  }

  Htm& htm_;
  std::vector<TmWord> tids_;
  std::unique_ptr<Mvcc> mvcc_;
  WalSink* wal_sink_ = nullptr;
  Runtime runtime_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_SILO_H_
