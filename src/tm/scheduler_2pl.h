#ifndef TUFAST_TM_SCHEDULER_2PL_H_
#define TUFAST_TM_SCHEDULER_2PL_H_

#include <memory>

#include "common/types.h"
#include "mvcc/version_store.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "tm/modes.h"
#include "tm/outcome.h"
#include "tm/progress_guard.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// Baseline scheduler: plain two-phase locking — TuFast's L mode applied
/// to *every* transaction regardless of size (paper Fig. 7 / Fig. 13 /
/// Fig. 14 comparison point "2PL"). Defaults to timeout-based deadlock
/// recovery: with millions of tiny transactions, per-acquire waits-for
/// bookkeeping would dominate the measurement (TuFast's own L mode keeps
/// full detection — its lock-mode transactions are rare and huge).
template <typename Htm, typename Telemetry = NullTelemetry>
class TwoPhaseLocking {
 public:
  using Mvcc = BasicMvccStore<HtmFailpoints<Htm>>;

  TwoPhaseLocking(Htm& htm, VertexId num_vertices,
                  DeadlockPolicy policy = DeadlockPolicy::kTimeout)
      : htm_(htm), num_vertices_(num_vertices),
        lock_table_(htm, num_vertices),
        lock_manager_(lock_table_, policy), runtime_(0x2b1u) {
    lock_manager_.SetProgressSignals(&progress_guard_.signals());
    if constexpr (Telemetry::kEnabled) {
      lock_manager_.SetVictimHook(
          [](void* ctx, int slot, VertexId /*v*/, bool cycle) {
            auto* self = static_cast<TwoPhaseLocking*>(ctx);
            if (auto* w = self->runtime_.worker(slot)) {
              w->telemetry.DeadlockVictim(cycle);
            }
          },
          this);
    }
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(TwoPhaseLocking);

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t /*size_hint*/, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    return RunLockTxnLoop<HtmFailpoints<Htm>>(
        w, w.state.ltxn, fn, TxnClass::kL,
        ProgressContext{&progress_guard_, worker_id, 0,
                        /*enable_backoff=*/true});
  }

  /// Attaches an MVCC version store (DESIGN.md "MVCC snapshot reads"):
  /// commits install pre-image versions and RunReadOnly() becomes an
  /// abort-free snapshot read. Call before the first transaction.
  void EnableMvcc() {
    if (mvcc_ == nullptr) mvcc_ = std::make_unique<Mvcc>(num_vertices_);
  }
  Mvcc* mvcc_store() { return mvcc_.get(); }

  /// Attaches a WAL sink (durability/wal.h): commits publish their
  /// staged mutations as checksummed records and Run() acks only after
  /// the group commit made them durable. Call before the first
  /// transaction.
  void EnableWal(WalSink* sink) { wal_sink_ = sink; }

  /// Read-only transaction: an abort-free snapshot read once EnableMvcc
  /// was called, an ordinary locking Run() otherwise.
  template <typename Fn>
  RunOutcome RunReadOnly(int worker_id, uint64_t size_hint, Fn&& fn) {
    if (mvcc_ == nullptr) return Run(worker_id, size_hint, fn);
    Worker& w = runtime_.GetWorker(worker_id, *this);
    return RunSnapshotReadOnly(*mvcc_, w, worker_id, fn);
  }

  /// Progress-guard introspection (starvation stress tests).
  ProgressGuard& progress_guard() { return progress_guard_; }

  SchedulerStats AggregatedStats() const { return runtime_.AggregatedStats(); }
  Telemetry AggregatedTelemetry() const {
    return runtime_.AggregatedTelemetry();
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }
  void ResetStats() { runtime_.ResetStats(); }

 private:
  struct State {
    State(TwoPhaseLocking& parent, int slot)
        : ltxn(parent.htm_, slot, parent.lock_manager_) {
      if (parent.mvcc_ != nullptr) ltxn.SetMvcc(parent.mvcc_.get());
      if (parent.wal_sink_ != nullptr) {
        wal_recorder.SetSink(parent.wal_sink_);
        ltxn.SetWal(&wal_recorder);
      }
    }
    LTxn<Htm> ltxn;
    WalRecorder wal_recorder;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  Htm& htm_;
  const VertexId num_vertices_;
  LockTable<Htm> lock_table_;
  LockManager<Htm> lock_manager_;
  std::unique_ptr<Mvcc> mvcc_;
  WalSink* wal_sink_ = nullptr;
  /// Same escalation ladder as TuFast's L mode: the baseline sees the
  /// identical per-transaction retry bound in the starvation stress.
  ProgressGuard progress_guard_;
  Runtime runtime_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_2PL_H_
