#ifndef TUFAST_TM_SCHEDULER_2PL_H_
#define TUFAST_TM_SCHEDULER_2PL_H_

#include <array>
#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "tm/modes.h"
#include "tm/outcome.h"

namespace tufast {

/// Baseline scheduler: plain two-phase locking — TuFast's L mode applied
/// to *every* transaction regardless of size (paper Fig. 7 / Fig. 13 /
/// Fig. 14 comparison point "2PL"). Defaults to timeout-based deadlock
/// recovery: with millions of tiny transactions, per-acquire waits-for
/// bookkeeping would dominate the measurement (TuFast's own L mode keeps
/// full detection — its lock-mode transactions are rare and huge).
template <typename Htm>
class TwoPhaseLocking {
 public:
  TwoPhaseLocking(Htm& htm, VertexId num_vertices,
                  DeadlockPolicy policy = DeadlockPolicy::kTimeout)
      : htm_(htm), lock_table_(htm, num_vertices),
        lock_manager_(lock_table_, policy) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(TwoPhaseLocking);

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t /*size_hint*/, Fn&& fn) {
    Worker& w = GetWorker(worker_id);
    uint32_t attempt = 0;
    while (true) {
      w.ltxn.Reset();
      try {
        fn(w.ltxn);
        w.ltxn.CommitApplyAndRelease();
        w.stats.RecordCommit(TxnClass::kL, w.ltxn.ops());
        return RunOutcome{true, TxnClass::kL, w.ltxn.ops()};
      } catch (const UserAbortSignal&) {
        w.ltxn.ReleaseAll();
        ++w.stats.user_aborts;
        return RunOutcome{false, TxnClass::kL, 0};
      } catch (const DeadlockVictimSignal&) {
        w.ltxn.ReleaseAll();
        ++w.stats.deadlock_aborts;
        // Exponential randomized backoff: under extreme contention every
        // concurrent attempt closes a cycle, and constant short backoff
        // livelocks — grow the window until somebody runs alone.
        DeadlockRetryBackoff(w.rng, attempt++);
      }
    }
  }

  SchedulerStats AggregatedStats() const {
    SchedulerStats total;
    for (const auto& w : workers_) {
      if (w != nullptr) total.Merge(w->stats);
    }
    return total;
  }

  void ResetStats() {
    for (auto& w : workers_) {
      if (w != nullptr) w->stats = SchedulerStats{};
    }
  }

 private:
  struct Worker {
    Worker(TwoPhaseLocking& parent, int slot)
        : ltxn(parent.htm_, slot, parent.lock_manager_),
          rng(0x2b1u + static_cast<uint64_t>(slot) * 0x9e3779b9u) {}
    LTxn<Htm> ltxn;
    SchedulerStats stats;
    Rng rng;
  };

  Worker& GetWorker(int worker_id) {
    TUFAST_CHECK(worker_id >= 0 && worker_id < kMaxHtmThreads);
    auto& slot = workers_[worker_id];
    if (slot == nullptr) slot = std::make_unique<Worker>(*this, worker_id);
    return *slot;
  }

  Htm& htm_;
  LockTable<Htm> lock_table_;
  LockManager<Htm> lock_manager_;
  std::array<std::unique_ptr<Worker>, kMaxHtmThreads> workers_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_2PL_H_
