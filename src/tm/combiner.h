#ifndef TUFAST_TM_COMBINER_H_
#define TUFAST_TM_COMBINER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/compiler.h"
#include "common/spin.h"
#include "common/types.h"
#include "tm/contention_history.h"

namespace tufast {

/// Flat-combining runtime for hot vertices (DESIGN.md "Hot-vertex
/// combining"). When the contention history flags an operation's home
/// region hot, the batch router stops running it competitively and
/// instead *announces* it in the region's combiner cell: a fixed array
/// of single-writer announce slots (the Synch-Framework ToggleVector
/// idiom — publish into your own slot, a collector sweeps all of them).
/// Whichever worker holds the cell's owner lock collects every announced
/// operation and applies the whole set as ONE fused transaction through
/// the PR-4 group-commit machinery, so N conflicting operations pay one
/// BEGIN/COMMIT and zero cross-worker aborts instead of N retry storms.
///
/// Slot life cycle (all transitions on one atomic word per slot):
///
///   kEmpty --CAS(announcer)--> kClaimed --store rel--> kReady
///   kReady --exchange(collector, under owner lock)--> kTaken
///   kTaken --store rel (collector, after the op committed)--> kApplied
///   kApplied --store rel (announcer, after observing)--> kEmpty
///
/// Exactly-once: a slot in kReady is taken by exactly one collector (the
/// owner lock serializes collectors; the exchange makes even a handoff
/// race lose cleanly), and an announce that finds no free slot returns
/// failure so the caller runs the operation locally — an operation is
/// applied either by the one collector that took its slot or by its own
/// worker, never both, never zero times. The announcing worker's stack
/// frame (the type-erased body behind `frame`) must outlive application;
/// the scheduler's flush phase spins — helping collect — until every
/// slot it announced reached kApplied, mirroring the sharded-mailbox
/// pending protocol.
inline constexpr uint32_t kCombineSlotEmpty = 0;
inline constexpr uint32_t kCombineSlotClaimed = 1;
inline constexpr uint32_t kCombineSlotReady = 2;
inline constexpr uint32_t kCombineSlotTaken = 3;
inline constexpr uint32_t kCombineSlotApplied = 4;

struct CombineSlot {
  std::atomic<uint32_t> state{kCombineSlotEmpty};
  /// Type-erased pointer to the announcer's in-flight BatchFrame plus
  /// the item index; written in kClaimed, read by the collector after
  /// its acquire observation of kReady.
  const void* frame = nullptr;
  uint64_t item = 0;
};

/// One hot region's combining state. Cache-line aligned: announce traffic
/// on one hub must not false-share with a neighboring region's cell.
struct alignas(kCacheLineBytes) CombinerCell {
  SpinLock owner_lock;
  /// Round-robin announce cursor: spreads probe start points so each
  /// announcer typically claims on its first probe instead of rescanning
  /// the occupied prefix (which costs a failed CAS per occupied slot).
  /// Purely a performance hint — any value is correct.
  std::atomic<uint32_t> announce_cursor{0};
};

/// The scheduler-owned combining runtime: the contention history plus one
/// combiner cell (owner lock + announce slots) per history bucket.
/// Constructed only when Config::enable_combining is set; the default
/// paths never touch it.
class CombinerRuntime {
 public:
  struct Options {
    uint32_t history_buckets = 1024;
    double hot_threshold = 0.5;
    uint32_t combiner_slots = 8;
  };

  explicit CombinerRuntime(const Options& opts)
      : history_(ContentionHistory::Config{opts.history_buckets,
                                           opts.hot_threshold}),
        slots_per_cell_(opts.combiner_slots == 0 ? 1 : opts.combiner_slots),
        cells_(new CombinerCell[history_.num_buckets()]),
        slots_(new CombineSlot[static_cast<size_t>(history_.num_buckets()) *
                               slots_per_cell_]) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(CombinerRuntime);

  ContentionHistory& history() { return history_; }
  const ContentionHistory& history() const { return history_; }
  uint32_t slots_per_cell() const { return slots_per_cell_; }
  uint32_t num_cells() const { return history_.num_buckets(); }

  uint32_t CellOf(VertexId v) const { return history_.BucketOf(v); }
  CombinerCell& cell(uint32_t c) { return cells_[c]; }
  /// The cell's announce slots, `slots_per_cell()` of them.
  CombineSlot* slots(uint32_t c) {
    return slots_.get() + static_cast<size_t>(c) * slots_per_cell_;
  }

  /// Claims a free announce slot in cell `c` and publishes (frame, item)
  /// in it. Returns the slot index, or a negative value when every slot
  /// is occupied (the caller executes the operation locally — overflow
  /// never loses an operation).
  int Announce(uint32_t c, const void* frame, uint64_t item) {
    CombineSlot* s = slots(c);
    const uint32_t start =
        cells_[c].announce_cursor.fetch_add(1, std::memory_order_relaxed);
    for (uint32_t i = 0; i < slots_per_cell_; ++i) {
      const uint32_t k = (start + i) % slots_per_cell_;
      // Test before CAS: a probe of an occupied slot stays a plain load
      // instead of a failed atomic RMW.
      if (s[k].state.load(std::memory_order_relaxed) != kCombineSlotEmpty) {
        continue;
      }
      uint32_t expected = kCombineSlotEmpty;
      if (s[k].state.compare_exchange_strong(expected, kCombineSlotClaimed,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
        s[k].frame = frame;
        s[k].item = item;
        s[k].state.store(kCombineSlotReady, std::memory_order_release);
        return static_cast<int>(k);
      }
    }
    return -1;
  }

 private:
  ContentionHistory history_;
  const uint32_t slots_per_cell_;
  std::unique_ptr<CombinerCell[]> cells_;
  std::unique_ptr<CombineSlot[]> slots_;
};

}  // namespace tufast

#endif  // TUFAST_TM_COMBINER_H_
