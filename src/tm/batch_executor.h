#ifndef TUFAST_TM_BATCH_EXECUTOR_H_
#define TUFAST_TM_BATCH_EXECUTOR_H_

#include <cstdint>
#include <type_traits>

#include "common/compiler.h"
#include "common/types.h"

namespace tufast {

/// Batch execution front-end for the per-vertex transaction hot loop.
///
/// The motivating observation (Besta et al.'s Atomic Active Messages,
/// DyAdHyTM, and PAPER.md §IV-B/§IV-D) is that per-vertex graph
/// transactions are so small that fixed per-transaction overhead —
/// BEGIN/COMMIT, lock-word subscription, write-set setup — dominates.
/// Fusing k consecutive items from a `ParallelForChunked` chunk into one
/// H-mode HTM region amortizes that overhead k-fold, at the cost of
/// retrying a whole window when any fused item aborts. TuFast implements
/// the fused path natively (TuFastScheduler::RunBatch: capacity-aware
/// window formation, abort-driven bisection, adaptive width from the
/// contention monitor); every other scheduler keeps its per-item
/// semantics via the fallback loop below, so algorithms written against
/// RunBatch() run unchanged — and produce identical results — on all
/// seven schedulers.
///
/// Contract for `body(txn, i)`: identical to a per-item Run() body, plus
/// one extra rule — items in the same chunk must be *independently
/// idempotent*, i.e. re-executing any subsequence of them (a bisected
/// retry re-runs only part of the window) must be harmless. Bodies that
/// keep all mutable private state per-item (reset at body entry, read
/// only after RunBatch returns) satisfy this automatically.
/// `hint(i)` returns the size hint that would be passed to Run(i).
///
/// Progress interaction: TuFast's native RunBatch pauses fusion (routes
/// per-item) while the global starvation token is held — a fused region
/// subscribes a whole window of lock words and would widen the
/// interference the token holder is being shielded from. The abort-storm
/// circuit breaker clamps the adaptive width to 1 while tripped for the
/// same reason (tm/contention_monitor.h).

/// Default item -> home-vertex mapping for the sharded router
/// (sharding/): treats the item index as the vertex id, which is exact
/// for dense whole-graph batches and — because ownership only steers
/// *message* traffic, never correctness — always safe for compacted
/// ones. Algorithms whose batches index into a local vertex array pass
/// their own mapping through the home-aware RunBatch overload instead.
struct IdentityHome {
  VertexId operator()(uint64_t i) const { return static_cast<VertexId>(i); }
};

/// Detects a scheduler exposing a native fused-batch path.
template <typename S, typename HintFn, typename BodyFn>
concept FusionScheduler = requires(S& tm, int worker, uint64_t lo, uint64_t hi,
                                   HintFn& hint, BodyFn& body) {
  tm.RunBatch(worker, lo, hi, hint, body);
};

/// Detects a scheduler whose fused-batch path also accepts the
/// item -> home-vertex mapping (TuFast with the sharding layer).
template <typename S, typename HintFn, typename HomeFn, typename BodyFn>
concept HomedFusionScheduler =
    requires(S& tm, int worker, uint64_t lo, uint64_t hi, HintFn& hint,
             HomeFn& home, BodyFn& body) {
      tm.RunBatch(worker, lo, hi, hint, home, body);
    };

/// Runs items [lo, hi) on scheduler `tm` from worker `worker_id`.
/// Dispatches to the scheduler's native RunBatch when it has one
/// (TuFast group-commit fusion); otherwise falls back to one Run() per
/// item, which is bit-identical to the pre-batching loops.
template <typename S, typename HintFn, typename BodyFn>
TUFAST_ALWAYS_INLINE void RunBatch(S& tm, int worker_id, uint64_t lo,
                                   uint64_t hi, HintFn&& hint, BodyFn&& body) {
  using Hint = std::remove_reference_t<HintFn>;
  using Body = std::remove_reference_t<BodyFn>;
  if constexpr (FusionScheduler<S, Hint, Body>) {
    tm.RunBatch(worker_id, lo, hi, hint, body);
  } else {
    for (uint64_t i = lo; i < hi; ++i) {
      tm.Run(worker_id, hint(i), [&](auto& txn) { body(txn, i); });
    }
  }
}

/// Home-aware variant: `home(i)` maps item `i` to the vertex whose shard
/// owns it. Schedulers without a home-aware batch path (all baselines,
/// and TuFast's unsharded config at zero cost) ignore the mapping and
/// dispatch exactly like the overload above — same items, same order,
/// same results.
template <typename S, typename HintFn, typename HomeFn, typename BodyFn>
TUFAST_ALWAYS_INLINE void RunBatch(S& tm, int worker_id, uint64_t lo,
                                   uint64_t hi, HintFn&& hint, HomeFn&& home,
                                   BodyFn&& body) {
  using Hint = std::remove_reference_t<HintFn>;
  using Home = std::remove_reference_t<HomeFn>;
  using Body = std::remove_reference_t<BodyFn>;
  if constexpr (HomedFusionScheduler<S, Hint, Home, Body>) {
    tm.RunBatch(worker_id, lo, hi, hint, home, body);
  } else {
    RunBatch(tm, worker_id, lo, hi, hint, body);
  }
}

}  // namespace tufast

#endif  // TUFAST_TM_BATCH_EXECUTOR_H_
