#ifndef TUFAST_TM_SCHEDULER_HSYNC_H_
#define TUFAST_TM_SCHEDULER_HSYNC_H_

#include <bit>
#include <memory>
#include <vector>

#include "common/spin.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "mvcc/version_store.h"
#include "tm/outcome.h"
#include "tm/telemetry.h"
#include "tm/worker_runtime.h"

namespace tufast {

/// Baseline scheduler: classic HTM + global-fallback-lock hybrid ("HSync"
/// in paper Fig. 13/14). Every transaction first tries to run entirely in
/// one hardware transaction that *subscribes* the global fallback lock;
/// after a bounded number of aborts it acquires the global lock and runs
/// non-transactionally (which dooms all concurrent hardware attempts).
/// Unlike TuFast it is degree-oblivious: one policy for every size, and a
/// single global lock that serializes all fallbacks.
template <typename Htm, typename Telemetry = NullTelemetry>
class HsyncHybrid {
 public:
  struct Config {
    int htm_retries = 8;
  };

  using Mvcc = BasicMvccStore<HtmFailpoints<Htm>>;

  HsyncHybrid(Htm& htm, VertexId num_vertices = 0, Config config = {})
      : htm_(htm), num_vertices_(num_vertices), config_(config),
        runtime_(0x45c0u) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(HsyncHybrid);

  /// Hardware-path transaction context.
  class HwTxn {
   public:
    HwTxn(typename Htm::Tx& htx, const TmWord* global_lock,
          MvccRecorder* recorder = nullptr, WalRecorder* wal = nullptr)
        : htx_(htx), global_lock_(global_lock), recorder_(recorder),
          wal_(wal) {
      // Hardware-path publishes ride the Tx commit hooks; arm them.
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->hw_armed = true;
    }

    TmWord Read(VertexId /*v*/, const TmWord* addr) {
      ++ops_;
      return htx_.Load(addr);
    }
    TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
      return Read(v, addr);  // Optimistic/timestamped: no early locking.
    }

    void Write(VertexId v, TmWord* addr, TmWord value) {
      ++ops_;
      if (TUFAST_UNLIKELY(recorder_ != nullptr)) recorder_->Record(v, addr);
      htx_.Store(addr, value);
    }
    double ReadDouble(VertexId v, const double* addr) {
      return std::bit_cast<double>(
          Read(v, reinterpret_cast<const TmWord*>(addr)));
    }
    void WriteDouble(VertexId v, double* addr, double value) {
      Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
    }
    [[noreturn]] void Abort() {
      htx_.template ExplicitAbort<kAbortCodeUser>();
    }

    /// Subscribes the fallback lock; aborts if a fallback is running.
    void SubscribeGlobalLock() {
      if (htx_.Load(global_lock_) != 0) {
        htx_.template ExplicitAbort<kAbortCodeLockBusy>();
      }
    }

    uint64_t ops() const { return ops_; }
    void ResetOps() { ops_ = 0; }

    /// Durable builds: stage one logical mutation for the WAL.
    void WalNote(const EdgeUpdate& up) {
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
    }
    WalRecorder* wal_recorder() const { return wal_; }

   private:
    typename Htm::Tx& htx_;
    const TmWord* global_lock_;
    MvccRecorder* recorder_;
    WalRecorder* wal_;
    uint64_t ops_ = 0;
  };

  /// Fallback-path context: runs under the global lock, plain accesses.
  class FallbackTxn {
   public:
    TmWord Read(VertexId /*v*/, const TmWord* addr) {
      ++ops_;
      if (const TmWord* p = FindPending(addr)) return *p;
      return Htm::NonTxLoad(addr);
    }
    TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
      return Read(v, addr);  // Optimistic/timestamped: no early locking.
    }

    void Write(VertexId v, TmWord* addr, TmWord value) {
      ++ops_;
      pending_.push_back({addr, value, v});
    }
    double ReadDouble(VertexId v, const double* addr) {
      return std::bit_cast<double>(
          Read(v, reinterpret_cast<const TmWord*>(addr)));
    }
    void WriteDouble(VertexId v, double* addr, double value) {
      Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
    }
    [[noreturn]] void Abort() { throw UserAbortSignal{}; }

    uint64_t ops() const { return ops_; }

    /// Durable builds: stage one logical mutation for the WAL.
    void WalNote(const EdgeUpdate& up) {
      if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
    }
    WalRecorder* wal_recorder() const { return wal_; }

   private:
    friend class HsyncHybrid;
    struct Pending {
      TmWord* addr;
      TmWord value;
      VertexId vertex;  // MVCC version-chain owner (unused otherwise).
    };
    WalRecorder* wal_ = nullptr;
    uint64_t ops_ = 0;
    std::vector<Pending> pending_;

    TmWord* FindPending(const TmWord* addr) {
      for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
        if (it->addr == addr) return &it->value;
      }
      return nullptr;
    }
  };

  template <typename Fn>
  RunOutcome Run(int worker_id, uint64_t /*size_hint*/, Fn&& fn) {
    Worker& w = runtime_.GetWorker(worker_id, *this);
    w.telemetry.TxnBegin();
    w.telemetry.EnterMode(SchedMode::kHardware);
    WalRecorder* wal =
        wal_sink_ != nullptr ? &w.state.wal_recorder : nullptr;
    HwTxn hw(w.state.htx, &global_lock_,
             mvcc_ != nullptr ? &w.state.recorder : nullptr, wal);
    uint32_t txn_aborts = 0;
    for (int attempt = 0; attempt <= config_.htm_retries; ++attempt) {
      BeatAttempt(w);
      hw.ResetOps();
      const AbortStatus status = w.state.htx.Execute([&] {
        hw.SubscribeGlobalLock();
        fn(hw);
      });
      if (status.ok()) {
        AccountWalCommit(w, wal);  // Ack barrier: HW commit done.
        w.stats.RecordCommit(TxnClass::kH, hw.ops());
        w.telemetry.TxnCommit(TxnClass::kH, hw.ops());
        BeatCommit(w);
        return RunOutcome{true, TxnClass::kH, hw.ops(), txn_aborts};
      }
      const HtmAttemptVerdict verdict = RecordHtmAbort(w, status);
      if (verdict == HtmAttemptVerdict::kUserAbort) {
        ++w.stats.user_aborts;
        w.telemetry.TxnUserAbort(TxnClass::kH);
        return RunOutcome{false, TxnClass::kH, 0, txn_aborts};
      }
      ++txn_aborts;
      if (verdict == HtmAttemptVerdict::kCapacity) {
        break;  // Deterministic: go to the fallback immediately.
      }
    }

    // Global-lock fallback: serialize, run plain, publish with dooming
    // stores so concurrent hardware attempts stay correct. The body can
    // throw anything (user aborts, foreign exceptions): every unwind
    // path must drop the global lock or all fallbacks deadlock forever.
    w.telemetry.EnterMode(SchedMode::kLock);
    BeatAttempt(w);
    AcquireGlobalLock();
    FallbackTxn fb;
    if (TUFAST_UNLIKELY(wal != nullptr)) {
      // Drop residue from the failed hardware attempts and route staged
      // notes through the software publish below, not the Tx hooks.
      wal->hw_armed = false;
      wal->Clear();
      fb.wal_ = wal;
    }
    try {
      fn(fb);
    } catch (const UserAbortSignal&) {
      ReleaseGlobalLock();
      ++w.stats.user_aborts;
      w.telemetry.TxnUserAbort(TxnClass::kL);
      return RunOutcome{false, TxnClass::kL, 0, txn_aborts};
    } catch (...) {
      ReleaseGlobalLock();
      throw;
    }
    // MVCC: the global lock (which every hardware attempt subscribes)
    // is exclusive ownership of the whole conflict space; pre-images
    // are captured before the pending writes land. Duplicates in the
    // pending log are fine — they capture identical pre-images.
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) {
      mvcc_->BeginInstall(worker_id, fb.pending_,
                          [](const typename FallbackTxn::Pending& p) {
                            return MvccWrite{p.vertex, p.addr};
                          });
    }
    // WAL record lands under the global lock (exclusive window), so log
    // order matches commit order; the fsync waits for the group-commit
    // barrier after the lock is released.
    if (TUFAST_UNLIKELY(wal != nullptr) && !wal->empty()) {
      wal->Publish();
    }
    for (const auto& p : fb.pending_) htm_.NonTxStore(p.addr, p.value);
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) mvcc_->EndInstall(worker_id);
    ReleaseGlobalLock();
    AccountWalCommit(w, wal);  // Ack barrier: global lock released.
    w.stats.RecordCommit(TxnClass::kL, fb.ops());
    w.telemetry.TxnCommit(TxnClass::kL, fb.ops());
    BeatCommit(w);
    return RunOutcome{true, TxnClass::kL, fb.ops(), txn_aborts};
  }

  /// Attaches an MVCC version store (DESIGN.md "MVCC snapshot reads"):
  /// commits install pre-image versions and RunReadOnly() becomes an
  /// abort-free snapshot read. Requires the graph-sized constructor
  /// (num_vertices > 0); call before the first transaction.
  void EnableMvcc() {
    TUFAST_CHECK(num_vertices_ > 0);
    if (mvcc_ == nullptr) {
      // The hardware path installs through Tx commit hooks; a hook-less
      // backend would hand snapshot readers torn history.
      TUFAST_CHECK(kHtmTxHasCommitHooks<Htm>);
      mvcc_ = std::make_unique<Mvcc>(num_vertices_);
    }
  }
  Mvcc* mvcc_store() { return mvcc_.get(); }

  /// Attaches a WAL sink (durability/wal.h): commits publish their
  /// staged mutations as checksummed records and Run() acks only after
  /// the group commit made them durable. The hardware path publishes
  /// through Tx commit hooks; call before the first transaction.
  void EnableWal(WalSink* sink) {
    TUFAST_CHECK(kHtmTxHasCommitHooks<Htm>);
    wal_sink_ = sink;
  }

  /// Read-only transaction: an abort-free snapshot read once EnableMvcc
  /// was called, an ordinary hybrid Run() otherwise.
  template <typename Fn>
  RunOutcome RunReadOnly(int worker_id, uint64_t size_hint, Fn&& fn) {
    if (mvcc_ == nullptr) return Run(worker_id, size_hint, fn);
    Worker& w = runtime_.GetWorker(worker_id, *this);
    return RunSnapshotReadOnly(*mvcc_, w, worker_id, fn);
  }

  SchedulerStats AggregatedStats() const { return runtime_.AggregatedStats(); }
  Telemetry AggregatedTelemetry() const {
    return runtime_.AggregatedTelemetry();
  }
  const Telemetry* TelemetryForWorker(int worker_id) const {
    return runtime_.TelemetryForWorker(worker_id);
  }
  void ResetStats() { runtime_.ResetStats(); }

 private:
  struct State {
    State(HsyncHybrid& parent, int slot) : htx(parent.htm_, slot) {
      hook_ctx.slot = slot;
      if (parent.mvcc_ != nullptr) {
        hook_ctx.store = parent.mvcc_.get();
        hook_ctx.recorder = &recorder;
      }
      if (parent.wal_sink_ != nullptr) {
        wal_recorder.SetSink(parent.wal_sink_);
        hook_ctx.wal = &wal_recorder;
      }
      if (parent.mvcc_ != nullptr || parent.wal_sink_ != nullptr) {
        if constexpr (kHtmTxHasCommitHooks<Htm>) {
          InstallCommitHooks(htx, hook_ctx);
        }
      }
    }
    typename Htm::Tx htx;
    MvccRecorder recorder;
    WalRecorder wal_recorder;
    CommitHookCtx<Mvcc> hook_ctx;
  };
  using Runtime = WorkerRuntime<State, Telemetry>;
  using Worker = typename Runtime::Worker;

  void AcquireGlobalLock() {
    Backoff backoff;
    while (true) {
      TmWord expected = 0;
      if (__atomic_compare_exchange_n(&global_lock_, &expected, 1,
                                      /*weak=*/false, __ATOMIC_ACQUIRE,
                                      __ATOMIC_RELAXED)) {
        htm_.NotifyNonTxWrite(&global_lock_);
        return;
      }
      backoff.Pause();
    }
  }

  void ReleaseGlobalLock() {
    __atomic_store_n(&global_lock_, 0, __ATOMIC_RELEASE);
    htm_.NotifyNonTxWrite(&global_lock_);
  }

  Htm& htm_;
  const VertexId num_vertices_;
  const Config config_;
  std::unique_ptr<Mvcc> mvcc_;
  WalSink* wal_sink_ = nullptr;
  alignas(kCacheLineBytes) TmWord global_lock_ = 0;
  Runtime runtime_;
};

}  // namespace tufast

#endif  // TUFAST_TM_SCHEDULER_HSYNC_H_
