#ifndef TUFAST_TM_PROGRESS_GUARD_H_
#define TUFAST_TM_PROGRESS_GUARD_H_

#include <cstdint>

#include "common/spin.h"
#include "sync/progress_signals.h"

namespace tufast {

/// Progress-guard escalation ladder (DESIGN.md "Progress guard"). The
/// TM layer guarantees *safety* on any interleaving; this layer adds a
/// bounded path to commit for every transaction, per "Progressive
/// Transactional Memory in Time and Space" (Kuznetsov & Ravi):
///
///   aborts < priority_threshold   plain randomized exponential backoff;
///   aborts >= priority_threshold  the slot's starved bit ages its
///                                 priority: never an injected victim,
///                                 never a cycle-closure victim
///                                 (wound-wait-style, sync/lock_manager.h);
///   aborts >= token_threshold     the slot takes the global starvation
///                                 token: other waiters defer (short
///                                 wait bounds), new batch fusion pauses,
///                                 and the holder commits next attempt.
///
/// Retry bound argument: H attempts are bounded by the configured retry
/// budget, O attempts by log2(max_period) halvings, and L-mode victim
/// retries by token_threshold plus the bounded interference a token
/// holder can still see (waiters already inside their wait loops, at
/// most one per peer slot before the deferral bounds kick in) — so every
/// transaction's total failed attempts are bounded by a constant that
/// depends only on configuration, not on the adversary's schedule.
///
/// Escalation state transitions run strictly while the escalating worker
/// holds no locks (the L retry loop escalates after the victim released
/// its lock set), so the lock manager can read the signals from inside
/// its wait loops without ordering hazards.
class ProgressGuard {
 public:
  struct Config {
    /// Victim aborts after which the transaction's priority is aged
    /// (starved bit set).
    uint32_t priority_threshold = 3;
    /// Victim aborts after which the transaction takes the global
    /// starvation token.
    uint32_t token_threshold = 8;
    /// Master switch: disabled, every hook is a no-op and the signals
    /// stay clear forever.
    bool enabled = true;
  };

  explicit ProgressGuard(Config config) : config_(config) {}
  ProgressGuard() : ProgressGuard(Config{}) {}

  ProgressSignals& signals() { return signals_; }
  const ProgressSignals& signals() const { return signals_; }
  const Config& config() const { return config_; }

  bool Protected(int slot) const {
    return config_.enabled && signals_.IsProtected(slot);
  }

  /// What one escalation step did (callers record stats/telemetry).
  enum class Escalation : uint8_t { kNone = 0, kStarved, kToken };

  /// One victim abort for `slot`'s transaction, which has now failed
  /// `aborts` times total. Must be called while the slot holds no locks.
  Escalation OnAbort(int slot, uint32_t aborts) {
    if (!config_.enabled) return Escalation::kNone;
    if (aborts >= config_.token_threshold &&
        signals_.TryAcquireToken(slot)) {
      signals_.SetStarved(slot);
      return Escalation::kToken;
    }
    if (aborts == config_.priority_threshold) {
      signals_.SetStarved(slot);
      return Escalation::kStarved;
    }
    return Escalation::kNone;
  }

  /// Immediate escalation to the top of the ladder (the kStarvationToken
  /// failpoint; also exercised directly by tests).
  Escalation ForceEscalate(int slot) {
    if (!config_.enabled) return Escalation::kNone;
    const bool fresh_token = signals_.TryAcquireToken(slot);
    signals_.SetStarved(slot);
    return fresh_token ? Escalation::kToken : Escalation::kStarved;
  }

  /// The slot's transaction finished (commit, user abort, or a foreign
  /// exception unwinding out): drop any aged priority and the token.
  void OnTxnDone(int slot) {
    if (!config_.enabled) return;
    signals_.ClearStarved(slot);
    signals_.ReleaseToken(slot);
  }

 private:
  Config config_;
  ProgressSignals signals_;
};

/// Randomized exponential backoff between conflict retries, shared by
/// all three retry loops (H attempts, O period halvings, L victim
/// restarts). `attempt` is the number of failed attempts so far; the
/// window doubles with it up to 8 << 10 pauses. Returns the drawn pause
/// count so callers can feed the backoff telemetry counters. Determinism:
/// the only entropy is the worker's own seeded Rng, so a fixed seed
/// replays the exact pause sequence (TUFAST_STRESS_SEED).
template <typename RngT>
inline uint64_t ConflictBackoff(RngT& rng, uint32_t attempt) {
  const uint32_t shift = attempt < 10 ? attempt : 10;
  const uint64_t window = uint64_t{8} << shift;
  const uint64_t pauses = 1 + rng.NextBounded(window);
  Backoff backoff;
  for (uint64_t i = 0; i < pauses; ++i) backoff.Pause();
  return pauses;
}

/// Progress-guard context threaded into RunLockTxnLoop by the schedulers
/// that own a guard (TuFast's L mode, the 2PL baseline). The default
/// (guard == nullptr) reproduces the pre-guard loop: no escalation, no
/// failpoint-driven re-victimization, legacy backoff pacing.
struct ProgressContext {
  ProgressGuard* guard = nullptr;
  /// Lock-manager slot of the worker (== worker id everywhere).
  int slot = 0;
  /// Failed attempts the transaction already accumulated in earlier
  /// modes (H/O), so the escalation ladder sees the whole transaction.
  uint32_t prior_aborts = 0;
  /// false = pace victim retries with the legacy DeadlockRetryBackoff
  /// (bit-for-bit the pre-guard behavior); true = ConflictBackoff with
  /// backoff telemetry.
  bool enable_backoff = true;
};

}  // namespace tufast

#endif  // TUFAST_TM_PROGRESS_GUARD_H_
