#ifndef TUFAST_TM_MODES_H_
#define TUFAST_TM_MODES_H_

#include <algorithm>
#include <bit>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/types.h"
#include "durability/wal.h"
#include "htm/htm_config.h"
#include "mvcc/version_store.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "tm/addr_map.h"
#include "tm/outcome.h"

namespace tufast {

/// The three TuFast sub-schedulers (paper §IV-A), as transaction-context
/// types handed to the user's transaction body. All share the same
/// per-vertex LockTable, which is what integrates them into one HyTM:
///
///  * HTxn — paper Algorithm 1: the body runs in one hardware
///    transaction; every op transactionally *subscribes* the vertex lock
///    word and checks compatibility (lock elision; see DESIGN.md for why
///    subscription replaces the pseudo-code's in-HTM acquisition).
///  * OTxn — paper Algorithm 2 / Fig. 9: reads run inside consecutive
///    hardware segments of `period` ops for early conflict detection;
///    writes are buffered; commit locks the write vertices, value-
///    validates the read log, publishes, releases.
///  * LTxn — two-phase locking through LockManager with deadlock
///    detection; writes are buffered and applied at commit under
///    exclusive locks, so aborts never need undo.
///
/// User bodies take `auto& txn` so one generic lambda works across modes.

template <typename Htm, typename Table = LockTable<Htm>>
class HTxn {
 public:
  /// `recorder` (optional, MVCC builds) collects (vertex, addr) for every
  /// Write so the HTM commit hook can install pre-image versions. `wal`
  /// (optional, durable builds) stages logical graph mutations; arming it
  /// scopes the shared Tx commit hooks to this hardware transaction.
  HTxn(typename Htm::Tx& htx, const Table& locks,
       MvccRecorder* recorder = nullptr, WalRecorder* wal = nullptr)
      : htx_(htx), locks_(locks), recorder_(recorder), wal_(wal) {
    if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->hw_armed = true;
  }

  TUFAST_ALWAYS_INLINE TmWord Read(VertexId v, const TmWord* addr) {
    ++ops_;
    if (TUFAST_UNLIKELY(
            !Table::SharedCompatible(htx_.Load(locks_.WordAddr(v))))) {
      htx_.template ExplicitAbort<kAbortCodeLockBusy>();
    }
    return htx_.Load(addr);
  }

  TUFAST_ALWAYS_INLINE void Write(VertexId v, TmWord* addr, TmWord value) {
    ++ops_;
    if (TUFAST_UNLIKELY(!Table::Free(htx_.Load(locks_.WordAddr(v))))) {
      htx_.template ExplicitAbort<kAbortCodeLockBusy>();
    }
    if (TUFAST_UNLIKELY(recorder_ != nullptr)) recorder_->Record(v, addr);
    htx_.Store(addr, value);
  }

  /// Write-intent read: H mode checks the stricter (free) compatibility
  /// up front so it aborts as early as a write would.
  TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
    ++ops_;
    if (TUFAST_UNLIKELY(!Table::Free(htx_.Load(locks_.WordAddr(v))))) {
      htx_.template ExplicitAbort<kAbortCodeLockBusy>();
    }
    return htx_.Load(addr);
  }

  double ReadDouble(VertexId v, const double* addr) {
    return std::bit_cast<double>(
        Read(v, reinterpret_cast<const TmWord*>(addr)));
  }
  void WriteDouble(VertexId v, double* addr, double value) {
    Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
  }

  /// User-requested abort (paper Table I): no retry.
  [[noreturn]] void Abort() {
    htx_.template ExplicitAbort<kAbortCodeUser>();
  }

  uint64_t ops() const { return ops_; }
  void ResetOps() { ops_ = 0; }

  /// Durable builds: stage one logical mutation for the WAL. The commit
  /// hook publishes the staged batch as a single record at pre_publish.
  void WalNote(const EdgeUpdate& up) {
    if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
  }
  WalRecorder* wal_recorder() const { return wal_; }

 private:
  typename Htm::Tx& htx_;
  const Table& locks_;
  MvccRecorder* recorder_;
  WalRecorder* wal_ = nullptr;
  uint64_t ops_ = 0;
};

/// Outcome of OTxn's software commit phase.
enum class OCommitResult { kOk, kLockBusy, kValidationFail };

template <typename Htm, typename Table = LockTable<Htm>>
class OTxn {
 public:
  /// `expected_max_ops` pre-sizes the read/write logs: growing a vector
  /// inside a hardware segment calls malloc, which aborts real HTM.
  OTxn(Htm& htm, typename Htm::Tx& htx, Table& locks,
       size_t expected_max_ops = 1 << 14)
      : htm_(htm), htx_(htx), locks_(locks), write_map_(expected_max_ops) {
    reads_.reserve(expected_max_ops);
    writes_.reserve(expected_max_ops);
    write_vertices_.reserve(expected_max_ops);
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(OTxn);

  using Mvcc = BasicMvccStore<HtmFailpoints<Htm>>;

  /// Opts this context into MVCC version installation at commit
  /// (Config::enable_mvcc). Call before the first Run.
  void SetMvcc(Mvcc* mvcc) { mvcc_ = mvcc; }

  /// Opts this context into WAL staging (Config::enable_wal).
  void SetWal(WalRecorder* wal) { wal_ = wal; }

  /// Prepares for one attempt with the given hardware-segment length.
  void Reset(uint32_t period) {
    period_ = period;
    segment_ops_ = 0;
    ops_ = 0;
    reads_.clear();
    writes_.clear();
    write_map_.Clear();
    if (TUFAST_UNLIKELY(wal_ != nullptr)) {
      // Disarm the shared hardware recorder: O-mode segment commits fire
      // the same Tx hooks, and they must not clear or publish this
      // software transaction's staged notes.
      wal_->hw_armed = false;
      wal_->Clear();
    }
  }

  TUFAST_ALWAYS_INLINE TmWord Read(VertexId v, const TmWord* addr) {
    ++ops_;
    if (!writes_.empty()) {  // Read own buffered write?
      if (uint32_t* idx =
              write_map_.Find(reinterpret_cast<uintptr_t>(addr))) {
        return writes_[*idx].value;
      }
    }
    MaybeSegmentBoundary();
    if (TUFAST_UNLIKELY(
            !Table::SharedCompatible(htx_.Load(locks_.WordAddr(v))))) {
      htx_.template ExplicitAbort<kAbortCodeLockBusy>();
    }
    const TmWord value = htx_.Load(addr);
    reads_.push_back(ReadEntry{addr, value, v});
    return value;
  }

  /// Optimistic mode takes no locks before commit; intent is a no-op.
  TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
    return Read(v, addr);
  }

  void Write(VertexId v, TmWord* addr, TmWord value) {
    ++ops_;
    bool inserted;
    uint32_t* idx = write_map_.FindOrInsert(
        reinterpret_cast<uintptr_t>(addr),
        static_cast<uint32_t>(writes_.size()), &inserted);
    if (inserted) {
      writes_.push_back(WriteEntry{addr, value, v});
    } else {
      writes_[*idx].value = value;
    }
  }

  double ReadDouble(VertexId v, const double* addr) {
    return std::bit_cast<double>(
        Read(v, reinterpret_cast<const TmWord*>(addr)));
  }
  void WriteDouble(VertexId v, double* addr, double value) {
    Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
  }

  [[noreturn]] void Abort() {
    if (htx_.InTx()) htx_.template ExplicitAbort<kAbortCodeUser>();
    throw UserAbortSignal{};
  }

  /// Validation + publication (runs after the last hardware segment
  /// committed): lock write vertices, value-validate the read log,
  /// publish buffered writes non-transactionally (dooming subscribed
  /// hardware transactions), release.
  OCommitResult CommitSoftware() {
    write_vertices_.clear();
    for (const WriteEntry& w : writes_) write_vertices_.push_back(w.vertex);
    std::sort(write_vertices_.begin(), write_vertices_.end());
    write_vertices_.erase(
        std::unique(write_vertices_.begin(), write_vertices_.end()),
        write_vertices_.end());

    size_t locked = 0;
    for (; locked < write_vertices_.size(); ++locked) {
      if (!locks_.TryLockExclusive(write_vertices_[locked])) break;
    }
    if (locked < write_vertices_.size()) {
      ReleaseExclusive(locked);
      return OCommitResult::kLockBusy;
    }

    for (const ReadEntry& r : reads_) {
      if (Htm::NonTxLoad(r.addr) != r.value || !ReadVertexStillValid(r.vertex)) {
        ReleaseExclusive(write_vertices_.size());
        return OCommitResult::kValidationFail;
      }
    }

    // Versions install after validation (commit is decided) and before
    // publication (live memory still holds the pre-images); the written
    // vertices stay exclusively locked across the whole window.
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) {
      mvcc_->BeginInstall(htx_.slot(), writes_, [](const WriteEntry& w) {
        return MvccWrite{w.vertex, w.addr};
      });
    }
    // The WAL record is appended inside the same exclusive window, so log
    // order matches publication order; the fsync waits for the group
    // commit barrier after release (AccountWalCommit).
    if (TUFAST_UNLIKELY(wal_ != nullptr) && !wal_->empty()) wal_->Publish();
    for (const WriteEntry& w : writes_) htm_.NonTxStore(w.addr, w.value);
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) mvcc_->EndInstall(htx_.slot());
    ReleaseExclusive(write_vertices_.size());
    return OCommitResult::kOk;
  }

  /// Durable builds: stage one logical mutation for the WAL.
  void WalNote(const EdgeUpdate& up) {
    if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
  }
  WalRecorder* wal_recorder() const { return wal_; }

  uint64_t ops() const { return ops_; }
  uint32_t period() const { return period_; }

 private:
  struct ReadEntry {
    const TmWord* addr;
    TmWord value;
    VertexId vertex;
  };
  struct WriteEntry {
    TmWord* addr;
    TmWord value;
    VertexId vertex;
  };

  void MaybeSegmentBoundary() {
    if (++segment_ops_ >= period_) {
      segment_ops_ = 0;
      htx_.SegmentBoundary();
    }
  }

  /// Paper Algorithm 2 line 45: a read vertex may not be exclusively
  /// locked by anyone else (shared holders are readers — compatible).
  bool ReadVertexStillValid(VertexId v) const {
    const TmWord word = locks_.LoadWord(v);
    if ((word & Table::kExclusiveBit) == 0) return true;
    return std::binary_search(write_vertices_.begin(), write_vertices_.end(),
                              v);  // Exclusively locked — by us?
  }

  void ReleaseExclusive(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      locks_.UnlockExclusive(write_vertices_[i]);
    }
  }

  Htm& htm_;
  typename Htm::Tx& htx_;
  Table& locks_;
  Mvcc* mvcc_ = nullptr;
  WalRecorder* wal_ = nullptr;
  uint32_t period_ = 1000;
  uint32_t segment_ops_ = 0;
  uint64_t ops_ = 0;
  std::vector<ReadEntry> reads_;
  std::vector<WriteEntry> writes_;
  std::vector<VertexId> write_vertices_;
  AddrMap write_map_;
};

template <typename Htm, typename Table = LockTable<Htm>>
class LTxn {
 public:
  LTxn(Htm& htm, int slot, LockManager<Htm, Table>& manager)
      : htm_(htm), slot_(slot), manager_(manager) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(LTxn);

  using Mvcc = BasicMvccStore<HtmFailpoints<Htm>>;

  /// Opts this context into MVCC version installation at commit.
  void SetMvcc(Mvcc* mvcc) { mvcc_ = mvcc; }

  /// Opts this context into WAL staging (Config::enable_wal).
  void SetWal(WalRecorder* wal) { wal_ = wal; }

  void Reset() {
    ops_ = 0;
    held_.clear();
    held_map_.Clear();
    writes_.clear();
    write_map_.Clear();
    if (TUFAST_UNLIKELY(wal_ != nullptr)) {
      wal_->hw_armed = false;  // See OTxn::Reset: shared Tx hook scoping.
      wal_->Clear();
    }
  }

  TmWord Read(VertexId v, const TmWord* addr) {
    ++ops_;
    if (uint32_t* idx = write_map_.Find(reinterpret_cast<uintptr_t>(addr))) {
      return writes_[*idx].value;
    }
    EnsureAtLeastShared(v);
    return Htm::NonTxLoad(addr);
  }

  /// Read with declared write intent (SELECT ... FOR UPDATE): takes the
  /// exclusive lock immediately, avoiding the classic shared->exclusive
  /// upgrade deadlock when the vertex will be written later.
  TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
    ++ops_;
    if (uint32_t* idx = write_map_.Find(reinterpret_cast<uintptr_t>(addr))) {
      return writes_[*idx].value;
    }
    EnsureExclusive(v);
    return Htm::NonTxLoad(addr);
  }

  void Write(VertexId v, TmWord* addr, TmWord value) {
    ++ops_;
    EnsureExclusive(v);
    bool inserted;
    uint32_t* idx = write_map_.FindOrInsert(
        reinterpret_cast<uintptr_t>(addr),
        static_cast<uint32_t>(writes_.size()), &inserted);
    if (inserted) {
      writes_.push_back(WriteEntry{addr, value, v});
    } else {
      writes_[*idx].value = value;
    }
  }

  double ReadDouble(VertexId v, const double* addr) {
    return std::bit_cast<double>(
        Read(v, reinterpret_cast<const TmWord*>(addr)));
  }
  void WriteDouble(VertexId v, double* addr, double value) {
    Write(v, reinterpret_cast<TmWord*>(addr), std::bit_cast<TmWord>(value));
  }

  [[noreturn]] void Abort() { throw UserAbortSignal{}; }

  /// Strict 2PL commit: publish buffered writes (all their vertices are
  /// exclusively held), then release everything.
  void CommitApplyAndRelease() {
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) {
      mvcc_->BeginInstall(slot_, writes_, [](const WriteEntry& w) {
        return MvccWrite{w.vertex, w.addr};
      });
    }
    // Log-before-release: the record lands in the group-commit buffer
    // while every written vertex is still exclusively held.
    if (TUFAST_UNLIKELY(wal_ != nullptr) && !wal_->empty()) wal_->Publish();
    for (const WriteEntry& w : writes_) htm_.NonTxStore(w.addr, w.value);
    if (TUFAST_UNLIKELY(mvcc_ != nullptr)) mvcc_->EndInstall(slot_);
    ReleaseAll();
  }

  /// Durable builds: stage one logical mutation for the WAL.
  void WalNote(const EdgeUpdate& up) {
    if (TUFAST_UNLIKELY(wal_ != nullptr)) wal_->Note(up);
  }
  WalRecorder* wal_recorder() const { return wal_; }

  /// Releases the whole held set. Idempotent: a second call (the
  /// RunLockTxnLoop RAII guard unwinding after an explicit release on
  /// the victim path) sees an empty held set and does nothing. The
  /// exception-safety tests rely on every unwind path out of a lock
  /// transaction funnelling through here.
  void ReleaseAll() {
    for (const Held& h : held_) {
      if (h.exclusive) {
        manager_.ReleaseExclusive(slot_, h.vertex);
      } else {
        manager_.ReleaseShared(slot_, h.vertex);
      }
    }
    held_.clear();
    held_map_.Clear();
  }

  uint64_t ops() const { return ops_; }

 private:
  struct Held {
    VertexId vertex;
    bool exclusive;
  };
  struct WriteEntry {
    TmWord* addr;
    TmWord value;
    VertexId vertex;
  };

  void EnsureAtLeastShared(VertexId v) {
    if (held_map_.Find(uintptr_t{v} + 1) != nullptr) return;
    if (!manager_.AcquireShared(slot_, v)) throw DeadlockVictimSignal{};
    RecordHeld(v, /*exclusive=*/false);
  }

  void EnsureExclusive(VertexId v) {
    if (uint32_t* idx = held_map_.Find(uintptr_t{v} + 1)) {
      Held& held = held_[*idx];
      if (held.exclusive) return;
      if (!manager_.Upgrade(slot_, v)) throw DeadlockVictimSignal{};
      held.exclusive = true;
      return;
    }
    if (!manager_.AcquireExclusive(slot_, v)) throw DeadlockVictimSignal{};
    RecordHeld(v, /*exclusive=*/true);
  }

  void RecordHeld(VertexId v, bool exclusive) {
    bool inserted;
    uint32_t* idx = held_map_.FindOrInsert(
        uintptr_t{v} + 1, static_cast<uint32_t>(held_.size()), &inserted);
    TUFAST_DCHECK(inserted);
    (void)idx;
    held_.push_back(Held{v, exclusive});
  }

  Htm& htm_;
  const int slot_;
  LockManager<Htm, Table>& manager_;
  Mvcc* mvcc_ = nullptr;
  WalRecorder* wal_ = nullptr;
  uint64_t ops_ = 0;
  std::vector<Held> held_;
  AddrMap held_map_;
  std::vector<WriteEntry> writes_;
  AddrMap write_map_;
};

}  // namespace tufast

#endif  // TUFAST_TM_MODES_H_
