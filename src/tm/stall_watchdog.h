#ifndef TUFAST_TM_STALL_WATCHDOG_H_
#define TUFAST_TM_STALL_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "common/compiler.h"

namespace tufast {

/// Cooperative livelock detector for stress runs (DESIGN.md "Progress
/// guard"). Workers publish cheap relaxed heartbeat counters (attempts
/// and commits, see WorkerRuntime::Heartbeats); a watchdog thread
/// samples them on a fixed interval and declares a stall when attempts
/// keep advancing while commits stay frozen for `stall_intervals`
/// consecutive samples — the signature of a retry storm that makes no
/// progress. On a stall it fires `on_stall` once (the stress harness
/// dumps a diagnostic telemetry snapshot there) instead of letting the
/// job hang until the CI timeout with no evidence.
///
/// Purely an observer: it never pauses or aborts workers, so a false
/// positive costs one spurious diagnostic, never correctness.
class StallWatchdog {
 public:
  struct Sample {
    uint64_t attempts = 0;
    uint64_t commits = 0;
  };

  struct Config {
    std::chrono::milliseconds interval{100};
    /// Consecutive attempts-advancing/commits-frozen samples that count
    /// as a stall.
    int stall_intervals = 20;
  };

  StallWatchdog(Config config, std::function<Sample()> sampler,
                std::function<void()> on_stall)
      : config_(config),
        sampler_(std::move(sampler)),
        on_stall_(std::move(on_stall)),
        thread_([this] { Loop(); }) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(StallWatchdog);

  ~StallWatchdog() { Stop(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

 private:
  void Loop() {
    Sample last = sampler_();
    int streak = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, config_.interval,
                         [this] { return stopping_; })) {
      lock.unlock();
      const Sample now = sampler_();
      const bool attempts_advancing = now.attempts > last.attempts;
      const bool commits_frozen = now.commits == last.commits;
      streak = (attempts_advancing && commits_frozen) ? streak + 1 : 0;
      last = now;
      if (streak >= config_.stall_intervals &&
          !stalled_.exchange(true, std::memory_order_acq_rel)) {
        on_stall_();  // Fire once; keep sampling (harmless) until Stop.
      }
      lock.lock();
    }
  }

  const Config config_;
  const std::function<Sample()> sampler_;
  const std::function<void()> on_stall_;
  std::atomic<bool> stalled_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace tufast

#endif  // TUFAST_TM_STALL_WATCHDOG_H_
