#ifndef TUFAST_SHARDING_SHARDED_LOCK_TABLE_H_
#define TUFAST_SHARDING_SHARDED_LOCK_TABLE_H_

#include <memory>
#include <vector>

#include "common/compiler.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "sharding/shard_map.h"
#include "sync/lock_table.h"

namespace tufast {

/// Shard-per-core conflict space: one independent LockTable per shard,
/// each sized to exactly its shard's vertices and honoring the same
/// padded-layout option as the shared table (DESIGN.md "Sharding and
/// atomic active messages").
///
/// Interface-compatible with LockTable — the mode contexts, LockManager
/// and the scheduler are templated on the table type and never know
/// which one they got. Crucially, *every* worker can still reach every
/// shard's words through the global vertex id: sharding partitions the
/// storage (no shared growth point, per-shard cache locality for the
/// owner's drain batches), not the reachability, so conflict detection
/// stays globally correct no matter where a transaction executes. That
/// is what makes message routing a pure optimization: a mailbox-full
/// local fallback or a helping drainer is always safe.
template <typename Htm>
class ShardedLockTable {
 public:
  static constexpr TmWord kExclusiveBit = LockTable<Htm>::kExclusiveBit;

  ShardedLockTable(Htm& htm, size_t num_vertices, const LockTableOptions& opts)
      : map_(static_cast<VertexId>(num_vertices),
             opts.shards == 0 ? 1 : opts.shards,
             /*num_workers=*/1),
        num_vertices_(num_vertices) {
    tables_.reserve(map_.num_shards());
    for (uint32_t s = 0; s < map_.num_shards(); ++s) {
      tables_.push_back(std::make_unique<LockTable<Htm>>(
          htm, map_.ShardSize(s), opts.padded));
    }
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(ShardedLockTable);

  size_t size() const { return num_vertices_; }
  uint32_t num_shards() const { return map_.num_shards(); }
  bool padded() const { return tables_[0]->padded(); }

  /// Compatibility predicates (same word layout as LockTable).
  static bool SharedCompatible(TmWord word) {
    return LockTable<Htm>::SharedCompatible(word);
  }
  static bool Free(TmWord word) { return LockTable<Htm>::Free(word); }

  const TmWord* WordAddr(VertexId v) const {
    return Table(v).WordAddr(map_.LocalIndex(v));
  }
  bool TryLockShared(VertexId v) {
    return Table(v).TryLockShared(map_.LocalIndex(v));
  }
  bool TryLockExclusive(VertexId v) {
    return Table(v).TryLockExclusive(map_.LocalIndex(v));
  }
  bool TryUpgrade(VertexId v) { return Table(v).TryUpgrade(map_.LocalIndex(v)); }
  void UnlockShared(VertexId v) { Table(v).UnlockShared(map_.LocalIndex(v)); }
  void UnlockExclusive(VertexId v) {
    Table(v).UnlockExclusive(map_.LocalIndex(v));
  }
  TmWord LoadWord(VertexId v) const {
    return Table(v).LoadWord(map_.LocalIndex(v));
  }

 private:
  LockTable<Htm>& Table(VertexId v) { return *tables_[map_.ShardOf(v)]; }
  const LockTable<Htm>& Table(VertexId v) const {
    return *tables_[map_.ShardOf(v)];
  }

  ShardMap map_;
  const size_t num_vertices_;
  std::vector<std::unique_ptr<LockTable<Htm>>> tables_;
};

}  // namespace tufast

#endif  // TUFAST_SHARDING_SHARDED_LOCK_TABLE_H_
