#ifndef TUFAST_SHARDING_SHARD_RUNTIME_H_
#define TUFAST_SHARDING_SHARD_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/compiler.h"
#include "common/spin.h"
#include "common/types.h"
#include "sharding/mailbox.h"
#include "sharding/shard_map.h"
#include "tm/addr_map.h"

namespace tufast {

/// Per-shard state for the active-message layer: the bounded mailbox of
/// cross-shard messages, the drain lock serializing group-commit drains,
/// the count of accepted-but-not-yet-executed messages (what senders
/// flush on), and a scratch AddrMap for drain-batch home-vertex dedup
/// (guarded by the drain lock, like the batch itself).
struct alignas(kCacheLineBytes) Shard {
  explicit Shard(uint32_t mailbox_capacity)
      : mailbox(mailbox_capacity), window_vertices(64) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(Shard);

  BoundedMailbox<ActiveMessage> mailbox;
  SpinLock drain_lock;
  /// Messages accepted by TryEnqueue and not yet executed. Incremented
  /// by the sender *before* the enqueue publishes (so it can never read
  /// zero while a message is unexecuted), decremented by the drainer
  /// after the message's transaction committed.
  std::atomic<uint64_t> pending{0};
  /// Drain-batch home-vertex dedup scratch (see DrainShard).
  AddrMap window_vertices;
};

/// The scheduler-owned runtime of the sharding layer: the vertex->shard
/// ->worker map, the per-shard mailboxes, and the precomputed owned-
/// shard list per worker (what a worker drains eagerly). Constructed
/// only when Config::enable_sharding is set; the scheduler's unsharded
/// paths never touch it.
class ShardRuntime {
 public:
  struct Options {
    VertexId num_vertices = 0;
    uint32_t num_shards = 1;
    uint32_t num_workers = 1;
    uint32_t mailbox_capacity = 1024;
  };

  explicit ShardRuntime(const Options& opts)
      : map_(opts.num_vertices, opts.num_shards, opts.num_workers) {
    shards_.reserve(map_.num_shards());
    for (uint32_t s = 0; s < map_.num_shards(); ++s) {
      shards_.push_back(std::make_unique<Shard>(opts.mailbox_capacity));
    }
    owned_.resize(map_.num_workers());
    for (uint32_t s = 0; s < map_.num_shards(); ++s) {
      owned_[map_.OwnerWorker(s)].push_back(s);
    }
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(ShardRuntime);

  const ShardMap& map() const { return map_; }
  uint32_t num_shards() const { return map_.num_shards(); }
  Shard& shard(uint32_t s) { return *shards_[s]; }

  /// Shards owned by `worker` (empty for workers past num_workers — they
  /// own nothing and only ever send).
  const std::vector<uint32_t>& OwnedShards(int worker) const {
    static const std::vector<uint32_t> kNone;
    const auto idx = static_cast<size_t>(worker);
    return idx < owned_.size() ? owned_[idx] : kNone;
  }

 private:
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<uint32_t>> owned_;
};

}  // namespace tufast

#endif  // TUFAST_SHARDING_SHARD_RUNTIME_H_
