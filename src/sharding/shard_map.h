#ifndef TUFAST_SHARDING_SHARD_MAP_H_
#define TUFAST_SHARDING_SHARD_MAP_H_

#include <cstdint>

#include "common/compiler.h"
#include "common/types.h"

namespace tufast {

/// Static vertex -> shard -> owning-worker map for the shard-per-core
/// ownership layer (DESIGN.md "Sharding and atomic active messages").
///
/// Vertices are dealt to shards cyclically (v % num_shards) rather than
/// in contiguous ranges: power-law generators (RMAT) concentrate hubs at
/// low ids, and a range split would hand one shard nearly all the
/// contention. The cyclic deal also gives each shard a dense local index
/// space (v / num_shards), which is what lets a per-shard LockTable be
/// sized to exactly its own vertices.
///
/// Shards are in turn dealt cyclically to the owning workers
/// (s % num_workers), so any shard count >= the worker count load-
/// balances; shard counts below the worker count simply leave the excess
/// workers ownerless (they still execute local transactions — ownership
/// only steers *message* traffic).
///
/// Edge cases are all well-defined by the arithmetic: a vertex count not
/// divisible by the shard count leaves shard sizes differing by at most
/// one; num_shards == 1 degenerates to the unsharded world (every vertex
/// local to worker 0's shard); num_shards > num_vertices leaves the tail
/// shards empty (size 0).
class ShardMap {
 public:
  ShardMap(VertexId num_vertices, uint32_t num_shards, uint32_t num_workers)
      : num_vertices_(num_vertices),
        num_shards_(num_shards == 0 ? 1 : num_shards),
        num_workers_(num_workers == 0 ? 1 : num_workers),
        shard_mask_(IsPow2(num_shards_) ? num_shards_ - 1 : 0),
        pow2_(IsPow2(num_shards_)) {}

  VertexId num_vertices() const { return num_vertices_; }
  uint32_t num_shards() const { return num_shards_; }
  uint32_t num_workers() const { return num_workers_; }

  /// Shard owning vertex `v` (cyclic deal; pow2 shard counts take the
  /// mask fast path — the hot router query).
  TUFAST_ALWAYS_INLINE uint32_t ShardOf(VertexId v) const {
    return pow2_ ? (v & shard_mask_) : (v % num_shards_);
  }

  /// Dense index of `v` inside its shard's local vertex space.
  TUFAST_ALWAYS_INLINE VertexId LocalIndex(VertexId v) const {
    return v / num_shards_;
  }

  /// Number of vertices dealt to shard `s` (sizes differ by at most 1).
  VertexId ShardSize(uint32_t s) const {
    if (s >= num_shards_ || num_vertices_ <= s) return 0;
    return (num_vertices_ - s - 1) / num_shards_ + 1;
  }

  /// Worker owning shard `s` (cyclic deal over the worker set).
  uint32_t OwnerWorker(uint32_t s) const { return s % num_workers_; }

  /// Worker owning vertex `v`'s shard — the router's ship-or-local test.
  TUFAST_ALWAYS_INLINE uint32_t OwnerOf(VertexId v) const {
    return OwnerWorker(ShardOf(v));
  }

 private:
  static constexpr bool IsPow2(uint32_t x) { return (x & (x - 1)) == 0; }

  VertexId num_vertices_;
  uint32_t num_shards_;
  uint32_t num_workers_;
  uint32_t shard_mask_;
  bool pow2_;
};

}  // namespace tufast

#endif  // TUFAST_SHARDING_SHARD_MAP_H_
