#ifndef TUFAST_SHARDING_MAILBOX_H_
#define TUFAST_SHARDING_MAILBOX_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/compiler.h"

namespace tufast {

/// One atomic active message: `frame` points at the sender's in-flight
/// batch descriptor (type-erased — the scheduler that enqueued it knows
/// the concrete type) and `item` is the batch-item index to execute.
/// The sender guarantees the frame outlives the message (it blocks in
/// its flush phase until every message it enqueued has been executed).
struct ActiveMessage {
  const void* frame = nullptr;
  uint64_t item = 0;
};

/// Bounded multi-producer ring buffer of active messages (the classic
/// sequence-number bounded queue). Producers are the cross-shard
/// senders; consumption is serialized by the shard's drain lock, but the
/// ring itself is safe for concurrent dequeuers too, so a helping sender
/// can drain while the owner is mid-batch.
///
/// TryEnqueue is lossless-by-contract: it fails (returns false) when the
/// ring is full and the *caller* must then run the item locally — a
/// message is never dropped once accepted. Capacity is rounded up to a
/// power of two.
template <typename T>
class BoundedMailbox {
 public:
  explicit BoundedMailbox(uint32_t capacity) {
    uint32_t cap = 4;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (uint32_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(BoundedMailbox);

  uint32_t capacity() const { return mask_ + 1; }

  bool TryEnqueue(const T& value) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t diff = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // Full: a lap behind the consumers.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool TryDequeue(T* out) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t diff =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          *out = cell.value;
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // Empty (or the producer is mid-publish).
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) >=
           tail_.load(std::memory_order_acquire);
  }

  /// Racy depth estimate for telemetry only.
  uint64_t ApproxDepth() const {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    return tail > head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  uint32_t mask_ = 0;
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};
};

}  // namespace tufast

#endif  // TUFAST_SHARDING_MAILBOX_H_
