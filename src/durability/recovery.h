#ifndef TUFAST_DURABILITY_RECOVERY_H_
#define TUFAST_DURABILITY_RECOVERY_H_

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/failpoints.h"
#include "durability/crc32.h"
#include "durability/wal.h"
#include "graph/builder.h"
#include "graph/dynamic/dynamic_graph.h"
#include "graph/graph.h"

namespace tufast {

/// Checkpoint + replay companion to the WAL (DESIGN.md "Durability &
/// crash recovery"). A checkpoint is a CRC-footered snapshot of the
/// quiesced DynamicGraph written atomically (tmp + fsync + rename), so
/// at any crash point the checkpoint file is either the complete old
/// snapshot, the complete new one, or absent — never torn. After a
/// checkpoint the WAL can be truncated: recovery loads the snapshot and
/// replays only records with seq greater than the snapshot's last_seq.

/// Checkpoint file layout, little-endian:
///   [8B magic "tuFastCk"][u32 version][u32 weighted][u64 last_seq]
///   [u64 n][u64 m][(n+1) x u64 offsets][m x u32 targets]
///   [m x u32 weights iff weighted][u32 crc over everything before]
inline constexpr char kCheckpointMagic[8] = {'t', 'u', 'F', 'a',
                                             's', 't', 'C', 'k'};
inline constexpr uint32_t kCheckpointVersion = 1;

namespace ckpt_internal {

inline void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  wal_internal::PutU32(out, v);
}
inline void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  wal_internal::PutU64(out, v);
}

}  // namespace ckpt_internal

/// Serializes the quiesced graph (+ the WAL sequence number its state
/// reflects) into `path`. Returns false if any I/O step failed or the
/// kCheckpointPartial failpoint simulated a crash — in both cases the
/// previous checkpoint (if any) is what recovery will see, except under
/// the failpoint, which deliberately leaves a torn file at `path` to
/// exercise the CRC validation path.
template <typename FailpointsT = NullFailpoints>
bool WriteCheckpoint(const DynamicGraph& graph, const std::string& path,
                     uint64_t last_seq) {
  const Graph g = graph.Freeze();
  const uint64_t n = g.NumVertices();
  const uint64_t m = g.NumEdges();
  const bool weighted = graph.HasWeights();

  std::vector<uint8_t> buf;
  buf.reserve(48 + (n + 1) * 8 + m * (weighted ? 8 : 4));
  buf.insert(buf.end(), kCheckpointMagic, kCheckpointMagic + 8);
  ckpt_internal::PutU32(buf, kCheckpointVersion);
  ckpt_internal::PutU32(buf, weighted ? 1 : 0);
  ckpt_internal::PutU64(buf, last_seq);
  ckpt_internal::PutU64(buf, n);
  ckpt_internal::PutU64(buf, m);
  for (VertexId u = 0; u <= n; ++u) {
    ckpt_internal::PutU64(buf, u == 0 ? 0 : g.EdgeEnd(u - 1));
  }
  for (EdgeId e = 0; e < m; ++e) ckpt_internal::PutU32(buf, g.EdgeTarget(e));
  if (weighted) {
    for (EdgeId e = 0; e < m; ++e) {
      ckpt_internal::PutU32(buf, g.EdgeWeight(e));
    }
  }
  ckpt_internal::PutU32(buf, Crc32::Of(buf.data(), buf.size()));

  if constexpr (FailpointsT::kEnabled) {
    if (FailpointsT::Hit(FailSite::kCheckpointPartial, 0) !=
        FailAction::kNone) {
      // Simulated kill mid-checkpoint on a filesystem without atomic
      // rename: half the image lands at the final path. The CRC footer
      // is what lets recovery reject it.
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f == nullptr) return false;
      std::fwrite(buf.data(), 1, buf.size() / 2, f);
      std::fclose(f);
      return false;
    }
  }

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool flushed = wrote && std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Validates and loads a checkpoint into `graph` (quiesced). Returns
/// false — leaving the graph untouched — on a missing file, bad magic,
/// version mismatch, or CRC failure.
inline bool LoadCheckpointInto(DynamicGraph* graph, const std::string& path,
                               uint64_t* last_seq) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> buf(size > 0 ? static_cast<size_t>(size) : 0);
  const bool read_ok =
      !buf.empty() && std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  // Fixed header (40B) + CRC footer is the minimum well-formed file.
  if (!read_ok || buf.size() < 44) return false;
  const size_t body = buf.size() - wal_internal::kCrcBytes;
  if (wal_internal::GetU32(buf.data() + body) != Crc32::Of(buf.data(), body)) {
    return false;
  }
  if (!std::equal(kCheckpointMagic, kCheckpointMagic + 8, buf.data())) {
    return false;
  }
  if (wal_internal::GetU32(buf.data() + 8) != kCheckpointVersion) return false;
  const bool weighted = wal_internal::GetU32(buf.data() + 12) != 0;
  const uint64_t seq = wal_internal::GetU64(buf.data() + 16);
  const uint64_t n = wal_internal::GetU64(buf.data() + 24);
  const uint64_t m = wal_internal::GetU64(buf.data() + 32);
  const size_t expect = 40 + (n + 1) * 8 + m * (weighted ? 8 : 4);
  if (body != expect) return false;

  const uint8_t* offsets = buf.data() + 40;
  const uint8_t* targets = offsets + (n + 1) * 8;
  const uint8_t* weights = targets + m * 4;
  GraphBuilder builder(static_cast<VertexId>(n));
  builder.Reserve(m);
  for (uint64_t u = 0; u < n; ++u) {
    const uint64_t begin = wal_internal::GetU64(offsets + u * 8);
    const uint64_t end = wal_internal::GetU64(offsets + (u + 1) * 8);
    if (begin > end || end > m) return false;
    for (uint64_t e = begin; e < end; ++e) {
      const VertexId t =
          static_cast<VertexId>(wal_internal::GetU32(targets + e * 4));
      if (weighted) {
        builder.AddEdge(static_cast<VertexId>(u), t,
                        wal_internal::GetU32(weights + e * 4));
      } else {
        builder.AddEdge(static_cast<VertexId>(u), t);
      }
    }
  }
  graph->LoadCsrQuiesced(builder.Build({.remove_self_loops = false,
                                        .remove_duplicate_edges = false,
                                        .sort_neighbors = true}));
  *last_seq = seq;
  return true;
}

/// Outcome of RecoverFromWal, for telemetry and the crash harness.
struct WalRecoveryResult {
  uint64_t last_seq = 0;    ///< Highest sequence number applied.
  uint64_t replayed = 0;    ///< Records replayed from the log.
  bool torn_tail = false;   ///< Log ended in a torn/corrupt record.
  bool from_checkpoint = false;  ///< A valid checkpoint seeded the state.
};

/// Rebuilds `graph` (quiesced, caller-constructed with enough capacity)
/// to the prefix-consistent durable state: the checkpoint image (when
/// `checkpoint_path` names a valid one), then every whole, checksummed
/// WAL record with a higher sequence number, in log order. A torn or
/// corrupt record ends replay — everything after it is discarded, which
/// is exactly the un-acked suffix. Records are applied atomically
/// (record = one committed transaction), so no partial transaction is
/// ever visible in the recovered graph.
inline WalRecoveryResult RecoverFromWal(
    DynamicGraph* graph, const std::string& wal_path,
    const std::string& checkpoint_path = "") {
  WalRecoveryResult result;
  uint64_t base_seq = 0;
  if (!checkpoint_path.empty() &&
      LoadCheckpointInto(graph, checkpoint_path, &base_seq)) {
    result.from_checkpoint = true;
    result.last_seq = base_seq;
  }
  const WalScanResult scan =
      ScanWal(wal_path, [&](const WalRecoveredRecord& rec) {
        if (rec.seq <= base_seq) return;  // Already in the checkpoint.
        for (const EdgeUpdate& up : rec.updates) {
          if (up.src >= graph->NumVertices()) {
            graph->EnsureVerticesQuiesced(up.src + 1);
          }
          graph->ApplyQuiescedUpdate(up);
        }
        ++result.replayed;
        result.last_seq = rec.seq;
      });
  result.torn_tail = scan.torn_tail;
  return result;
}

}  // namespace tufast

#endif  // TUFAST_DURABILITY_RECOVERY_H_
