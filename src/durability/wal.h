#ifndef TUFAST_DURABILITY_WAL_H_
#define TUFAST_DURABILITY_WAL_H_

#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoints.h"
#include "durability/crc32.h"
#include "graph/dynamic/edge_update.h"

namespace tufast {

/// Checksummed group-commit write-ahead log (DESIGN.md "Durability &
/// crash recovery").
///
/// On-disk record framing, all fields little-endian:
///
///   [u32 len][u64 seq][payload][u32 crc]
///
/// `len` is the payload byte count; the payload is `u32 count` followed
/// by `count` fixed-width updates {u8 op, u32 src, u32 dst, u32 weight};
/// `crc` covers len + seq + payload. A record is one commit's mutation
/// batch — under fused commits, one record per fused HTM region. Replay
/// stops at the first record whose length or CRC does not check out, so
/// a torn tail (partial write, bit flip) yields exactly the durable
/// prefix: every record before it is intact, nothing after it is
/// visible, and no record is ever half-applied.

/// When the writer issues fsync(2). Acks are only durable under
/// kFsyncEachCommit; kFlushOnly exists to measure the fsync tax apart
/// from the serialization tax.
enum class WalSyncPolicy : uint8_t {
  kFsyncEachCommit = 0,  // fsync on every group-commit flush
  kFlushOnly,            // fwrite+fflush only; acks are not crash-durable
};

/// What one Publish appended: the record's log sequence number (0 means
/// the sink dropped it — writer crashed or closed) and its on-disk size.
struct WalPublishInfo {
  uint64_t seq = 0;
  uint64_t bytes = 0;
};

/// Type-erased sink so recorders and scheduler hook contexts are not
/// templated on the writer's failpoint policy.
class WalSink {
 public:
  virtual ~WalSink() = default;
  /// Append one commit's updates as a single record to the group-commit
  /// buffer. Called inside the commit window (vertex ownership held), so
  /// buffer order == commit serialization order.
  virtual WalPublishInfo Publish(const EdgeUpdate* updates, size_t count) = 0;
  /// Group-commit barrier: returns once every record up to `seq` is
  /// durable (another worker's flush may have already covered us).
  /// Called after locks are released, before Run() acknowledges.
  virtual bool Commit(uint64_t seq) = 0;
};

/// Per-worker staging buffer, the WAL twin of MvccRecorder: transaction
/// bodies Note() their mutations, the scheduler's publish step hands the
/// batch to the sink as one record, and the post-release accounting step
/// drains the counters into SchedulerStats. Never shared across threads.
class WalRecorder {
 public:
  void SetSink(WalSink* sink) { sink_ = sink; }
  WalSink* sink() const { return sink_; }

  void Note(const EdgeUpdate& up) { updates_.push_back(up); }
  void Clear() { updates_.clear(); }
  bool empty() const { return updates_.empty(); }

  /// Appends the staged batch to the sink as one record and clears the
  /// stage. Must run inside the commit window.
  void Publish() {
    if (sink_ == nullptr || updates_.empty()) return;
    const WalPublishInfo info = sink_->Publish(updates_.data(), updates_.size());
    updates_.clear();
    if (info.seq == 0) return;  // writer gone (simulated crash): drop
    last_seq = info.seq;
    published_records += 1;
    published_bytes += info.bytes;
  }

  /// True while an H-mode transaction owns this recorder. H publish runs
  /// from the HTM commit hooks, which also fire on O-mode segment
  /// boundaries — the flag keeps those from touching WAL state.
  bool hw_armed = false;

  /// Accounting drained by AccountWalCommit after the ack barrier.
  uint64_t last_seq = 0;
  uint64_t published_records = 0;
  uint64_t published_bytes = 0;

 private:
  WalSink* sink_ = nullptr;
  std::vector<EdgeUpdate> updates_;
};

namespace wal_internal {

inline void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}
inline void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}
inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

constexpr size_t kUpdateBytes = 1 + 4 + 4 + 4;  // op, src, dst, weight
constexpr size_t kHeaderBytes = 4 + 8;          // len, seq
constexpr size_t kCrcBytes = 4;

/// Serializes one record into `out`; returns its on-disk byte count.
inline size_t AppendRecord(std::vector<uint8_t>& out, uint64_t seq,
                           const EdgeUpdate* updates, size_t count) {
  const size_t start = out.size();
  const uint32_t len = static_cast<uint32_t>(4 + kUpdateBytes * count);
  PutU32(out, len);
  PutU64(out, seq);
  PutU32(out, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<uint8_t>(updates[i].op));
    PutU32(out, updates[i].src);
    PutU32(out, updates[i].dst);
    PutU32(out, updates[i].weight);
  }
  const uint32_t crc = Crc32::Of(out.data() + start, kHeaderBytes + len);
  PutU32(out, crc);
  return out.size() - start;
}

}  // namespace wal_internal

/// The group-commit writer. Publish appends serialized records to an
/// in-memory buffer under the writer mutex (drawing the sequence number
/// there, so file order matches commit order); Commit flushes the whole
/// buffer — covering every record batched since the last flush — and
/// fsyncs per policy. Crash failpoints damage the buffered tail exactly
/// the way a kill -9 mid-write would, then freeze the writer so the rest
/// of the run behaves like a dead process: publishes drop, commits fail,
/// durable_seq stays at the last truly-synced record.
template <typename FailpointsT = NullFailpoints>
class BasicWalWriter final : public WalSink {
 public:
  explicit BasicWalWriter(std::string path,
                          WalSyncPolicy sync = WalSyncPolicy::kFsyncEachCommit)
      : path_(std::move(path)), sync_(sync) {
    file_ = std::fopen(path_.c_str(), "wb");
  }
  ~BasicWalWriter() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  BasicWalWriter(const BasicWalWriter&) = delete;
  BasicWalWriter& operator=(const BasicWalWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  WalPublishInfo Publish(const EdgeUpdate* updates, size_t count) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (file_ == nullptr || crashed_.load(std::memory_order_relaxed) ||
        count == 0) {
      return {};
    }
    const uint64_t seq = ++next_seq_;
    last_record_offset_ = pending_.size();
    const size_t bytes =
        wal_internal::AppendRecord(pending_, seq, updates, count);
    buffered_seq_ = seq;
    records_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return {seq, bytes};
  }

  bool Commit(uint64_t seq) override {
    // Fast path: another worker's group-commit flush already covered us.
    if (durable_seq_.load(std::memory_order_acquire) >= seq) return true;
    std::lock_guard<std::mutex> lk(mu_);
    if (durable_seq_.load(std::memory_order_relaxed) >= seq) return true;
    if (file_ == nullptr || crashed_.load(std::memory_order_relaxed)) {
      return false;
    }
    return FlushLocked();
  }

  /// Drops every durable record after a successful checkpoint rename.
  /// Quiesced-only: no Publish/Commit may be in flight. Sequence numbers
  /// keep increasing across the truncation so replay's `seq >
  /// checkpoint_seq` filter stays monotone.
  bool Truncate() {
    std::lock_guard<std::mutex> lk(mu_);
    if (file_ == nullptr || crashed_.load(std::memory_order_relaxed)) {
      return false;
    }
    pending_.clear();
    std::fflush(file_);
    if (::ftruncate(fileno(file_), 0) != 0) return false;
    // ftruncate does not move the stdio stream position; without the
    // rewind the next fwrite would land at the old offset and leave a
    // zero-filled hole the scanner reads as a torn record.
    std::rewind(file_);
    ::fsync(fileno(file_));
    return true;
  }

  uint64_t durable_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t records() const { return records_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  bool FlushLocked() {
    if (pending_.empty()) return true;
    if constexpr (FailpointsT::kEnabled) {
      if (FailpointsT::Hit(FailSite::kWalTornWrite, 0) != FailAction::kNone) {
        // Bit-flip inside the tail record's payload (its count field):
        // every earlier record in the batch lands intact, the tail fails
        // its CRC on replay.
        std::vector<uint8_t> damaged = pending_;
        damaged[last_record_offset_ + wal_internal::kHeaderBytes] ^= 0x40;
        std::fwrite(damaged.data(), 1, damaged.size(), file_);
        std::fflush(file_);
        crashed_.store(true, std::memory_order_release);
        return false;
      }
      if (FailpointsT::Hit(FailSite::kWalShortWrite, 0) != FailAction::kNone) {
        // Persist only half of the tail record, as if the kernel tore the
        // final write across the crash.
        const size_t keep =
            last_record_offset_ + (pending_.size() - last_record_offset_) / 2;
        std::fwrite(pending_.data(), 1, keep, file_);
        std::fflush(file_);
        crashed_.store(true, std::memory_order_release);
        return false;
      }
      if (FailpointsT::Hit(FailSite::kCrashBeforeFsync, 0) !=
          FailAction::kNone) {
        // Data reached the file but was never forced down; the ack must
        // not go out. Recovery legitimately may replay MORE than
        // durable_seq here — extra un-acked but intact records are fine.
        std::fwrite(pending_.data(), 1, pending_.size(), file_);
        std::fflush(file_);
        crashed_.store(true, std::memory_order_release);
        return false;
      }
    }
    std::fwrite(pending_.data(), 1, pending_.size(), file_);
    std::fflush(file_);
    if (sync_ == WalSyncPolicy::kFsyncEachCommit) {
      ::fsync(fileno(file_));
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
    durable_seq_.store(buffered_seq_, std::memory_order_release);
    pending_.clear();
    return true;
  }

  const std::string path_;
  const WalSyncPolicy sync_;
  std::FILE* file_ = nullptr;

  std::mutex mu_;
  std::vector<uint8_t> pending_;   // serialized records since last flush
  size_t last_record_offset_ = 0;  // tail record's start within pending_
  uint64_t next_seq_ = 0;
  uint64_t buffered_seq_ = 0;

  std::atomic<uint64_t> durable_seq_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> bytes_{0};
};

using WalWriter = BasicWalWriter<NullFailpoints>;

/// One replayable record as scanned back from disk.
struct WalRecoveredRecord {
  uint64_t seq = 0;
  std::vector<EdgeUpdate> updates;
};

struct WalScanResult {
  uint64_t last_seq = 0;  // highest seq that passed validation
  uint64_t records = 0;   // records delivered to the callback
  bool torn_tail = false;  // scan stopped at a damaged/partial record
};

/// Walks the log front to back, invoking `fn(const WalRecoveredRecord&)`
/// for every record whose framing and CRC validate, and stopping at the
/// first that does not — the replay-to-last-valid-record rule that makes
/// recovery prefix-consistent. A missing file scans as empty (fresh log).
template <typename Fn>
WalScanResult ScanWal(const std::string& path, Fn&& fn) {
  using namespace wal_internal;
  WalScanResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return result;
  std::vector<uint8_t> buf;
  {
    uint8_t chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
    }
  }
  std::fclose(f);

  size_t off = 0;
  while (off < buf.size()) {
    if (buf.size() - off < kHeaderBytes + kCrcBytes) {
      result.torn_tail = true;
      break;
    }
    const uint32_t len = GetU32(buf.data() + off);
    if (len < 4 || len > buf.size() - off - kHeaderBytes - kCrcBytes) {
      result.torn_tail = true;
      break;
    }
    const uint8_t* rec = buf.data() + off;
    const uint32_t stored_crc = GetU32(rec + kHeaderBytes + len);
    if (Crc32::Of(rec, kHeaderBytes + len) != stored_crc) {
      result.torn_tail = true;
      break;
    }
    const uint32_t count = GetU32(rec + kHeaderBytes);
    if (4 + kUpdateBytes * static_cast<size_t>(count) != len) {
      result.torn_tail = true;
      break;
    }
    WalRecoveredRecord record;
    record.seq = GetU64(rec + 4);
    record.updates.reserve(count);
    const uint8_t* p = rec + kHeaderBytes + 4;
    for (uint32_t i = 0; i < count; ++i) {
      EdgeUpdate up;
      up.op = static_cast<EdgeUpdate::Op>(p[0]);
      up.src = GetU32(p + 1);
      up.dst = GetU32(p + 5);
      up.weight = GetU32(p + 9);
      record.updates.push_back(up);
      p += kUpdateBytes;
    }
    result.last_seq = record.seq;
    result.records += 1;
    fn(static_cast<const WalRecoveredRecord&>(record));
    off += kHeaderBytes + len + kCrcBytes;
  }
  return result;
}

}  // namespace tufast

#endif  // TUFAST_DURABILITY_WAL_H_
