#ifndef TUFAST_DURABILITY_CRC32_H_
#define TUFAST_DURABILITY_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tufast {

/// Plain table-driven CRC-32 (IEEE 802.3 polynomial, reflected). Used to
/// frame WAL records and to footer checkpoint / SaveBinary files. Not
/// hardware-accelerated on purpose: durability verification must give the
/// same answer on every build, and the streamed volumes (one record per
/// commit batch) are far below the point where SSE4.2 CRC would matter.
class Crc32 {
 public:
  static uint32_t Compute(const void* data, size_t len,
                          uint32_t seed = 0xFFFFFFFFu) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    uint32_t crc = seed;
    for (size_t i = 0; i < len; ++i) {
      crc = Table()[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    }
    return crc;
  }

  /// Finalize a chained Compute sequence (seed each call with the prior
  /// raw value, then xor-out once at the end).
  static uint32_t Finalize(uint32_t raw) { return raw ^ 0xFFFFFFFFu; }

  /// One-shot convenience: checksum of a single buffer.
  static uint32_t Of(const void* data, size_t len) {
    return Finalize(Compute(data, len));
  }

 private:
  static const uint32_t* Table() {
    static const auto table = [] {
      struct T {
        uint32_t v[256];
      };
      T t{};
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        }
        t.v[i] = c;
      }
      return t;
    }();
    return table.v;
  }
};

}  // namespace tufast

#endif  // TUFAST_DURABILITY_CRC32_H_
