#ifndef TUFAST_HTM_NATIVE_HTM_H_
#define TUFAST_HTM_NATIVE_HTM_H_

#include <atomic>
#include <cstdint>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "htm/abort.h"
#include "htm/htm_config.h"

#if defined(TUFAST_HAVE_RTM)
#include <immintrin.h>
#endif

namespace tufast {

/// Real Intel RTM backend with the same surface as EmulatedHtm, so every
/// scheduler is instantiable on either. Conflict detection, buffering and
/// capacity limits are provided by hardware; Load/Store degrade to plain
/// memory accesses inside the transaction.
///
/// Use NativeHtm::Supported() before instantiating transactions: it
/// verifies both compile-time (-mrtm) and runtime (CPUID RTM bit,
/// transaction actually commits) support — many CPUs report RTM but have
/// it microcode-disabled, in which case every transaction aborts.
class NativeHtm {
 public:
  /// No software failpoints on real hardware: aborts come from the CPU.
  using Failpoints = NullFailpoints;

  explicit NativeHtm(HtmConfig config = {}) : config_(config) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(NativeHtm);

  class Tx;

  const HtmConfig& config() const { return config_; }

  /// True when RTM transactions can actually commit on this machine.
  /// Probes once (runs a trial transaction) and caches the answer.
  static bool Supported();

  void NonTxStore(TmWord* addr, TmWord value) {
    __atomic_store_n(addr, value, __ATOMIC_RELEASE);
  }

  /// Hardware handles the dooming via cache coherence; nothing to do.
  void NotifyNonTxWrite(const void* addr) { (void)addr; }

  static TmWord NonTxLoad(const TmWord* addr) {
    return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
  }

  /// A real XEND is atomic — no window where a committed transaction is
  /// still flushing — so the emulated backend's drain degenerates to a
  /// plain load here.
  TmWord DrainLoad(const TmWord* addr) { return NonTxLoad(addr); }

 private:
  HtmConfig config_;
};

class NativeHtm::Tx {
 public:
  Tx(NativeHtm& htm, int slot) : htm_(htm), slot_(slot) { (void)htm_; }
  TUFAST_DISALLOW_COPY_AND_MOVE(Tx);

  /// Runs `body` inside one RTM transaction. On abort the hardware rolls
  /// registers and memory back to the XBEGIN point and this returns the
  /// translated abort status. See EmulatedHtm::Tx::Execute for contract.
  template <typename Body>
  AbortStatus Execute(Body&& body) {
#if defined(TUFAST_HAVE_RTM)
    ++stats_.begins;
    const unsigned status = _xbegin();
    if (status == _XBEGIN_STARTED) {
      active_ = true;
      try {
        body();
      } catch (const TxAbortSignal& signal) {
        // Thrown only by SegmentBoundary after a hardware abort already
        // ended transactional execution, so unwinding here is safe.
        active_ = false;
        stats_.RecordAbort(signal.status);
        return signal.status;
      }
      if (active_) {
        _xend();
        active_ = false;
      }
      ++stats_.commits;
      return AbortStatus::Ok();
    }
    active_ = false;
    const AbortStatus translated = Translate(status);
    stats_.RecordAbort(translated);
    return translated;
#else
    (void)body;
    TUFAST_CHECK(false && "native RTM backend not compiled in");
#endif
  }

  TUFAST_ALWAYS_INLINE TmWord Load(const TmWord* addr) { return *addr; }
  TUFAST_ALWAYS_INLINE void Store(TmWord* addr, TmWord value) {
    *addr = value;
  }

  void SegmentBoundary() {
#if defined(TUFAST_HAVE_RTM)
    _xend();
    active_ = false;
    ++stats_.begins;
    const unsigned status = _xbegin();
    if (status == _XBEGIN_STARTED) {
      active_ = true;
      return;
    }
    // The new segment aborted (control resumed here, outside any
    // transaction): unwind out of the body via the abort signal.
    throw TxAbortSignal{Translate(status)};
#endif
  }

  template <uint8_t kCode>
  [[noreturn]] void ExplicitAbort() {
#if defined(TUFAST_HAVE_RTM)
    _xabort(kCode);  // Rolls back to the XBEGIN when inside a transaction.
    // XABORT outside a transaction is a no-op; surface the abort anyway so
    // callers never fall through (Execute catches this).
    throw TxAbortSignal{AbortStatus::Explicit(kCode)};
#else
    TUFAST_CHECK(false && "native RTM backend not compiled in");
#endif
  }

  bool InTx() const { return active_; }
  int slot() const { return slot_; }
  const HtmStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HtmStats{}; }
  uint32_t FootprintLines() const { return 0; }  // Hardware-internal.

 private:
#if defined(TUFAST_HAVE_RTM)
  static AbortStatus Translate(unsigned status) {
    if (status & _XABORT_CAPACITY) return AbortStatus::Capacity();
    if (status & _XABORT_EXPLICIT) {
      return AbortStatus::Explicit(_XABORT_CODE(status));
    }
    if (status & _XABORT_CONFLICT) return AbortStatus::Conflict();
    AbortStatus other = AbortStatus::Other();
    other.may_retry = (status & _XABORT_RETRY) != 0;
    return other;
  }
#endif

  NativeHtm& htm_;
  const int slot_;
  bool active_ = false;
  HtmStats stats_;
};

}  // namespace tufast

#endif  // TUFAST_HTM_NATIVE_HTM_H_
