#ifndef TUFAST_HTM_ABORT_H_
#define TUFAST_HTM_ABORT_H_

#include <cstdint>

namespace tufast {

/// Why a hardware transaction aborted. Mirrors the Intel RTM abort status
/// taxonomy (_XABORT_CONFLICT / _XABORT_CAPACITY / _XABORT_EXPLICIT /
/// other) so the native and emulated backends are interchangeable.
enum class AbortCause : uint8_t {
  kNone = 0,       ///< Transaction committed; no abort.
  kConflict,       ///< Another thread touched a line in our footprint.
  kCapacity,       ///< Footprint exceeded the modeled L1 (never retried).
  kExplicit,       ///< User called ExplicitAbort (XABORT).
  kOther,          ///< Interrupt/fault/unknown (native backend only).
};

/// Outcome of one hardware-transaction attempt.
struct AbortStatus {
  AbortCause cause = AbortCause::kNone;
  /// 8-bit code passed to ExplicitAbort; meaningful iff kExplicit.
  uint8_t user_code = 0;
  /// Whether retrying the same transaction may succeed (Intel's
  /// _XABORT_RETRY bit). Capacity aborts repeat deterministically.
  bool may_retry = false;

  bool ok() const { return cause == AbortCause::kNone; }

  static AbortStatus Ok() { return {}; }
  static AbortStatus Conflict() {
    return {AbortCause::kConflict, 0, /*may_retry=*/true};
  }
  static AbortStatus Capacity() {
    return {AbortCause::kCapacity, 0, /*may_retry=*/false};
  }
  static AbortStatus Explicit(uint8_t code) {
    return {AbortCause::kExplicit, code, /*may_retry=*/false};
  }
  static AbortStatus Other() {
    return {AbortCause::kOther, 0, /*may_retry=*/true};
  }
};

/// Internal control-flow signal thrown by the *emulated* backend to unwind
/// user code out of an aborted transaction (hardware does this with a
/// register/stack rollback; software needs stack unwinding). Never escapes
/// the HTM layer's Execute(): not part of any public contract.
struct TxAbortSignal {
  AbortStatus status;
};

/// Counters for one thread's hardware-transaction attempts.
struct HtmStats {
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t conflict_aborts = 0;
  uint64_t capacity_aborts = 0;
  uint64_t explicit_aborts = 0;
  uint64_t other_aborts = 0;

  void RecordAbort(const AbortStatus& status) {
    switch (status.cause) {
      case AbortCause::kConflict: ++conflict_aborts; break;
      case AbortCause::kCapacity: ++capacity_aborts; break;
      case AbortCause::kExplicit: ++explicit_aborts; break;
      case AbortCause::kOther: ++other_aborts; break;
      case AbortCause::kNone: break;
    }
  }

  uint64_t TotalAborts() const {
    return conflict_aborts + capacity_aborts + explicit_aborts + other_aborts;
  }

  void Merge(const HtmStats& other) {
    begins += other.begins;
    commits += other.commits;
    conflict_aborts += other.conflict_aborts;
    capacity_aborts += other.capacity_aborts;
    explicit_aborts += other.explicit_aborts;
    other_aborts += other.other_aborts;
  }
};

}  // namespace tufast

#endif  // TUFAST_HTM_ABORT_H_
