#include "htm/emulated_htm.h"

namespace tufast {

// The production (NullFailpoints) instantiation lives here so downstream
// translation units share one copy of the emulation instead of each
// instantiating the template. The stress instantiation (FaultyHtm,
// src/testing/failpoints.h) is implicit in the few test/bench TUs that
// use it.
template class BasicEmulatedHtm<NullFailpoints>;

}  // namespace tufast
