#include "htm/emulated_htm.h"

#include <bit>

#include "common/spin.h"

namespace tufast {

namespace {

uint64_t NextPow2(uint64_t x) {
  return x <= 1 ? 1 : uint64_t{1} << (64 - std::countl_zero(x - 1));
}

uintptr_t LineOf(const void* addr) {
  return reinterpret_cast<uintptr_t>(addr) >> 6;
}

}  // namespace

EmulatedHtm::EmulatedHtm(HtmConfig config) : config_(config) {
  TUFAST_CHECK(std::has_single_bit(config_.num_sets));
  TUFAST_CHECK(config_.num_ways >= 1);
  const uint64_t table_size = uint64_t{1} << config_.table_bits;
  table_mask_ = table_size - 1;
  table_ = std::vector<LineEntry>(table_size);
}

void EmulatedHtm::LockEntry(LineEntry& e) {
  Backoff backoff;
  while (true) {
    if (!e.lock.exchange(true, std::memory_order_acquire)) return;
    while (e.lock.load(std::memory_order_relaxed)) backoff.Pause();
  }
}

bool EmulatedHtm::DoomWriterMustWait(int16_t writer) {
  // Requester wins: doom the owner. If it already published kCommitting it
  // may be flushing its buffer, so the caller must wait for the ownership
  // to drain; otherwise the Dekker handshake guarantees it will observe
  // the doom at its commit point and abort, so it can be displaced now.
  slots_[writer].doomed.store(true, std::memory_order_seq_cst);
  return slots_[writer].progress.load(std::memory_order_seq_cst) ==
         TxSlot::kCommitting;
}

bool EmulatedHtm::ClearForeignOwners(LineEntry& e, int self_slot) {
  const int16_t writer = e.writer.load(std::memory_order_relaxed);
  if (writer >= 0 && writer != self_slot) {
    if (DoomWriterMustWait(writer)) return false;
    e.writer.store(int16_t{-1}, std::memory_order_relaxed);  // Displace.
  }
  uint64_t readers = e.readers.load(std::memory_order_relaxed);
  const uint64_t self_bit =
      self_slot >= 0 ? uint64_t{1} << self_slot : uint64_t{0};
  uint64_t foreign = readers & ~self_bit;
  while (foreign != 0) {
    const int slot = std::countr_zero(foreign);
    slots_[slot].doomed.store(true, std::memory_order_seq_cst);
    foreign &= foreign - 1;
  }
  e.readers.store(readers & self_bit, std::memory_order_relaxed);
  return true;
}

void EmulatedHtm::NonTxStore(TmWord* addr, TmWord value) {
  LineEntry& e = EntryFor(LineOf(addr));
  Backoff backoff;
  while (true) {
    LockEntry(e);
    if (ClearForeignOwners(e, /*self_slot=*/-1)) {
      __atomic_store_n(addr, value, __ATOMIC_RELEASE);
      UnlockEntry(e);
      return;
    }
    const int16_t writer = e.writer.load(std::memory_order_relaxed);
    UnlockEntry(e);
    // Wait (yielding) for the doomed writer to abort or finish flushing.
    while (e.writer.load(std::memory_order_acquire) == writer) {
      backoff.Pause();
    }
  }
}

void EmulatedHtm::NotifyNonTxWrite(const void* addr) {
  LineEntry& e = EntryFor(LineOf(addr));
  Backoff backoff;
  while (true) {
    LockEntry(e);
    if (ClearForeignOwners(e, /*self_slot=*/-1)) {
      UnlockEntry(e);
      return;
    }
    const int16_t writer = e.writer.load(std::memory_order_relaxed);
    UnlockEntry(e);
    while (e.writer.load(std::memory_order_acquire) == writer) {
      backoff.Pause();
    }
  }
}

// ---------------------------------------------------------------------------
// Tx
// ---------------------------------------------------------------------------

EmulatedHtm::Tx::Tx(EmulatedHtm& htm, int slot) : htm_(htm), slot_(slot) {
  TUFAST_CHECK(slot >= 0 && slot < kMaxHtmThreads);
  const HtmConfig& cfg = htm_.config_;
  const uint64_t rec_cap = NextPow2(uint64_t{cfg.MaxLines()} * 4);
  rec_mask_ = rec_cap - 1;
  rec_keys_.assign(rec_cap, kEmptyKey);
  rec_index_.assign(rec_cap, 0);
  rec_store_.reserve(cfg.MaxLines() + 1);
  rec_list_.reserve(cfg.MaxLines() + 1);
  set_counts_.assign(cfg.num_sets, 0);
  const uint64_t wb_cap = NextPow2(uint64_t{cfg.MaxLines()} * 16);
  wb_mask_ = wb_cap - 1;
  wb_keys_.assign(wb_cap, kEmptyKey);
  wb_vals_.assign(wb_cap, 0);
  wb_list_.reserve(cfg.MaxLines() * 8);
}

void EmulatedHtm::Tx::Begin() {
  TUFAST_CHECK(!active_);
  htm_.slots_[slot_].progress.store(TxSlot::kActive,
                                    std::memory_order_seq_cst);
  htm_.slots_[slot_].doomed.store(false, std::memory_order_seq_cst);
  active_ = true;
  ++stats_.begins;
}

void EmulatedHtm::Tx::Commit() {
  TUFAST_CHECK(active_);
  // Commit point: publish kCommitting *before* checking doomed (Dekker
  // handshake with DoomWriterMustWait). Any doom sequenced before the
  // check forces an abort; a doom after it means the conflicting
  // transaction either waits for our flush (writers) or serializes after
  // us (readers). See DESIGN.md.
  htm_.slots_[slot_].progress.store(TxSlot::kCommitting,
                                    std::memory_order_seq_cst);
  if (htm_.slots_[slot_].doomed.load(std::memory_order_seq_cst)) {
    ThrowAbort(AbortStatus::Conflict());
  }
  // Publish buffered writes. All written lines are exclusively owned, and
  // conflicting accessors wait for ownership to drain, so this is atomic
  // with respect to every transactional reader.
  for (uint32_t pos : wb_list_) {
    __atomic_store_n(reinterpret_cast<TmWord*>(wb_keys_[pos]), wb_vals_[pos],
                     __ATOMIC_RELEASE);
  }
  ReleaseAndReset();
  active_ = false;
  ++stats_.commits;
}

void EmulatedHtm::Tx::ThrowAbort(AbortStatus status) {
  ReleaseAndReset();
  active_ = false;
  stats_.RecordAbort(status);
  throw TxAbortSignal{status};
}

void EmulatedHtm::Tx::ReleaseAndReset() {
  for (uint32_t key_pos : rec_list_) {
    const Record& rec = rec_store_[rec_index_[key_pos]];
    LineEntry& e = htm_.EntryFor(rec.line);
    LockEntry(e);
    if (rec.flags & kWriteFlag) {
      int16_t expected = static_cast<int16_t>(slot_);
      e.writer.compare_exchange_strong(expected, int16_t{-1},
                                       std::memory_order_acq_rel);
    }
    if (rec.flags & kReadFlag) {
      e.readers.fetch_and(~(uint64_t{1} << slot_), std::memory_order_relaxed);
    }
    UnlockEntry(e);
    rec_keys_[key_pos] = kEmptyKey;
    set_counts_[rec.line & (htm_.config_.num_sets - 1)] = 0;
  }
  // set_counts_ entries were zeroed above only for touched sets; decrement
  // semantics are unnecessary because we fully reset per transaction.
  rec_list_.clear();
  rec_store_.clear();
  for (uint32_t pos : wb_list_) wb_keys_[pos] = kEmptyKey;
  wb_list_.clear();
}

EmulatedHtm::Tx::Record& EmulatedHtm::Tx::FindOrInsertRecord(uintptr_t line) {
  uint64_t pos = HashLine(line) & rec_mask_;
  while (true) {
    const uintptr_t key = rec_keys_[pos];
    if (key == line) return rec_store_[rec_index_[pos]];
    if (key == kEmptyKey) break;
    pos = (pos + 1) & rec_mask_;
  }
  // New line: charge it against the modeled L1 set before admitting it.
  const HtmConfig& cfg = htm_.config_;
  const uint32_t set = static_cast<uint32_t>(line) & (cfg.num_sets - 1);
  if (TUFAST_UNLIKELY(set_counts_[set] >= cfg.num_ways)) {
    ThrowAbort(AbortStatus::Capacity());
  }
  ++set_counts_[set];
  rec_keys_[pos] = line;
  rec_index_[pos] = static_cast<uint32_t>(rec_store_.size());
  rec_store_.push_back(Record{line, 0});
  rec_list_.push_back(static_cast<uint32_t>(pos));
  return rec_store_.back();
}

void EmulatedHtm::Tx::AcquireForRead(LineEntry& entry) {
  Backoff backoff;
  uint32_t spins = 0;
  while (true) {
    LockEntry(entry);
    const int16_t writer = entry.writer.load(std::memory_order_relaxed);
    if (writer < 0 || writer == slot_ || !htm_.DoomWriterMustWait(writer)) {
      if (writer >= 0 && writer != slot_) {
        entry.writer.store(int16_t{-1}, std::memory_order_relaxed);
      }
      entry.readers.fetch_or(uint64_t{1} << slot_, std::memory_order_relaxed);
      UnlockEntry(entry);
      return;
    }
    UnlockEntry(entry);
    while (entry.writer.load(std::memory_order_acquire) == writer) {
      CheckDoom();
      if (++spins > htm_.config_.max_conflict_spins) {
        ThrowAbort(AbortStatus::Conflict());
      }
      backoff.Pause();
    }
  }
}

void EmulatedHtm::Tx::AcquireForWrite(LineEntry& entry) {
  Backoff backoff;
  uint32_t spins = 0;
  while (true) {
    LockEntry(entry);
    if (htm_.ClearForeignOwners(entry, slot_)) {
      entry.writer.store(static_cast<int16_t>(slot_),
                         std::memory_order_relaxed);
      UnlockEntry(entry);
      return;
    }
    const int16_t writer = entry.writer.load(std::memory_order_relaxed);
    UnlockEntry(entry);
    while (entry.writer.load(std::memory_order_acquire) == writer) {
      CheckDoom();
      if (++spins > htm_.config_.max_conflict_spins) {
        ThrowAbort(AbortStatus::Conflict());
      }
      backoff.Pause();
    }
  }
}

TmWord EmulatedHtm::Tx::Load(const TmWord* addr) {
  TUFAST_CHECK(active_);
  CheckDoom();
  const uintptr_t line = LineOf(addr);
  Record& rec = FindOrInsertRecord(line);
  if ((rec.flags & (kReadFlag | kWriteFlag)) == 0) {
    AcquireForRead(htm_.EntryFor(line));
    rec.flags |= kReadFlag;
  }
  if (rec.flags & kWriteFlag) {
    if (const TmWord* buffered =
            WriteBufferFind(reinterpret_cast<uintptr_t>(addr))) {
      return *buffered;
    }
  }
  return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
}

void EmulatedHtm::Tx::Store(TmWord* addr, TmWord value) {
  TUFAST_CHECK(active_);
  CheckDoom();
  const uintptr_t line = LineOf(addr);
  Record& rec = FindOrInsertRecord(line);
  if ((rec.flags & kWriteFlag) == 0) {
    AcquireForWrite(htm_.EntryFor(line));
    rec.flags |= kWriteFlag;
  }
  WriteBufferPut(reinterpret_cast<uintptr_t>(addr), value);
}

void EmulatedHtm::Tx::SegmentBoundary() {
  Commit();  // Throws TxAbortSignal if this segment was doomed.
  Begin();
}

void EmulatedHtm::Tx::DoExplicitAbort(uint8_t code) {
  TUFAST_CHECK(active_);
  ThrowAbort(AbortStatus::Explicit(code));
}

TmWord* EmulatedHtm::Tx::WriteBufferFind(uintptr_t word_addr) {
  uint64_t pos = HashLine(word_addr) & wb_mask_;
  while (true) {
    const uintptr_t key = wb_keys_[pos];
    if (key == word_addr) return &wb_vals_[pos];
    if (key == kEmptyKey) return nullptr;
    pos = (pos + 1) & wb_mask_;
  }
}

void EmulatedHtm::Tx::WriteBufferPut(uintptr_t word_addr, TmWord value) {
  uint64_t pos = HashLine(word_addr) & wb_mask_;
  while (true) {
    const uintptr_t key = wb_keys_[pos];
    if (key == word_addr) {
      wb_vals_[pos] = value;
      return;
    }
    if (key == kEmptyKey) {
      wb_keys_[pos] = word_addr;
      wb_vals_[pos] = value;
      wb_list_.push_back(static_cast<uint32_t>(pos));
      return;
    }
    pos = (pos + 1) & wb_mask_;
  }
}

}  // namespace tufast
