#include "htm/native_htm.h"

#if defined(TUFAST_HAVE_RTM)
#include <cpuid.h>
#endif

namespace tufast {

namespace {

bool ProbeRtm() {
#if defined(TUFAST_HAVE_RTM)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned kRtmBit = 1u << 11;  // CPUID.07H.EBX.RTM
  if ((ebx & kRtmBit) == 0) return false;
  // RTM may be advertised but microcode-disabled (always-abort). Probe by
  // actually committing a few transactions.
  int committed = 0;
  for (int i = 0; i < 64; ++i) {
    const unsigned status = _xbegin();
    if (status == _XBEGIN_STARTED) {
      _xend();
      ++committed;
    }
  }
  return committed > 0;
#else
  return false;
#endif
}

}  // namespace

bool NativeHtm::Supported() {
  static const bool supported = ProbeRtm();
  return supported;
}

}  // namespace tufast
