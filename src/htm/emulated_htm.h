#ifndef TUFAST_HTM_EMULATED_HTM_H_
#define TUFAST_HTM_EMULATED_HTM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/compiler.h"
#include "htm/abort.h"
#include "htm/htm_config.h"

namespace tufast {

/// Software emulation of Intel RTM with the semantics TuFast depends on:
///
///  * conflict detection at 64-byte cache-line granularity, asymmetric
///    ("requester wins"): touching a line inside another live transaction's
///    footprint dooms that transaction;
///  * buffered transactional writes, atomically published at commit;
///  * capacity aborts from a set-associative L1 model (HtmConfig);
///  * non-transactional stores abort transactions subscribed to the line —
///    the property that makes lock subscription (H/O mode) correct;
///  * Intel-style abort status (AbortStatus) with conflict/capacity/
///    explicit causes and a may-retry hint.
///
/// All shared state that transactions touch must be read/written through
/// Tx::Load / Tx::Store while inside Tx::Execute, and through
/// NonTxStore / NonTxLoad outside transactions. This matches the TuFast
/// programming model where every shared access goes through READ/WRITE.
///
/// Thread model: up to kMaxHtmThreads worker threads, each owning one
/// `Tx` handle constructed with a distinct slot id in [0, kMaxHtmThreads).
///
/// Serializability: every write conflict (W-R, R-W, W-W at line
/// granularity) dooms the transaction that would break serial order, and
/// a committing transaction re-checks its doomed flag at its commit point
/// (seq_cst), so two committed transactions can never both have observed
/// state that contradicts a serial order (see DESIGN.md for the argument).
class EmulatedHtm {
 public:
  explicit EmulatedHtm(HtmConfig config = {});
  TUFAST_DISALLOW_COPY_AND_MOVE(EmulatedHtm);

  class Tx;

  const HtmConfig& config() const { return config_; }

  /// Non-transactional store visible to (and dooming) transactions that
  /// have the line in their footprint. Use for all shared writes made
  /// outside transactions (lock releases, O/L-mode commit writes).
  void NonTxStore(TmWord* addr, TmWord value);

  /// Dooms transactions subscribed to addr's line without storing. Call
  /// after mutating a shared word through some other atomic operation
  /// (e.g. a lock-word CAS).
  void NotifyNonTxWrite(const void* addr);

  /// Plain non-transactional load.
  static TmWord NonTxLoad(const TmWord* addr) {
    return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
  }

 private:
  friend class Tx;

  /// One conflict-table entry: which transaction slots currently have the
  /// (hashed) line in their read set, and which single slot owns it for
  /// writing. Guarded by its spin bit; critical sections are a few ns.
  struct alignas(16) LineEntry {
    std::atomic<bool> lock{false};
    std::atomic<int16_t> writer{-1};
    std::atomic<uint64_t> readers{0};
  };

  /// Per-worker doom flag plus commit-progress marker, padded to avoid
  /// false sharing between slots. `progress` and `doomed` form a Dekker
  /// pair (both seq_cst): a committing transaction publishes kCommitting
  /// before checking doomed, and a doomer dooms before checking progress,
  /// so at least one side observes the other — a doomer therefore only
  /// waits for writers that might already be flushing, and safely
  /// displaces ones that are guaranteed to abort.
  struct alignas(kCacheLineBytes) TxSlot {
    static constexpr uint8_t kActive = 0;
    static constexpr uint8_t kCommitting = 1;
    std::atomic<bool> doomed{false};
    std::atomic<uint8_t> progress{kActive};
  };

  /// Dooms `writer` and reports whether the caller must wait for its line
  /// ownership to drain (true) or may displace it immediately (false).
  bool DoomWriterMustWait(int16_t writer);

  LineEntry& EntryFor(uintptr_t line) {
    return table_[HashLine(line) & table_mask_];
  }

  static uint64_t HashLine(uintptr_t line) {
    uint64_t z = static_cast<uint64_t>(line) * 0x9e3779b97f4a7c15ULL;
    return z ^ (z >> 29);
  }

  static void LockEntry(LineEntry& e);
  static void UnlockEntry(LineEntry& e) {
    e.lock.store(false, std::memory_order_release);
  }

  /// Dooms the writer (if foreign) and all foreign readers of a locked
  /// entry; returns false (entry unlocked) if a foreign writer must first
  /// drain, true (entry still locked) when the line is clear.
  bool ClearForeignOwners(LineEntry& e, int self_slot);

  HtmConfig config_;
  uint64_t table_mask_;
  std::vector<LineEntry> table_;
  TxSlot slots_[kMaxHtmThreads];
};

/// Per-thread transaction handle. Reusable across transactions; all
/// buffers are pre-allocated at construction, the hot path is
/// allocation-free.
class EmulatedHtm::Tx {
 public:
  /// `slot` must be unique among concurrently active Tx handles.
  Tx(EmulatedHtm& htm, int slot);
  TUFAST_DISALLOW_COPY_AND_MOVE(Tx);

  /// Runs `body` as one hardware transaction: either it commits (returns
  /// Ok) or the body's effects are discarded and the abort status is
  /// returned. `body` may only touch shared state via Load/Store and may
  /// be re-executed by callers; it must be idempotent on private state.
  template <typename Body>
  AbortStatus Execute(Body&& body) {
    Begin();
    try {
      body();
      Commit();
      return AbortStatus::Ok();
    } catch (const TxAbortSignal& signal) {
      return signal.status;
    }
  }

  /// Transactional load of one shared word. Only valid inside Execute.
  TmWord Load(const TmWord* addr);

  /// Transactional (buffered) store of one shared word.
  void Store(TmWord* addr, TmWord value);

  /// Commits the current hardware transaction and immediately starts a
  /// new one. Used by O mode every `period` operations (paper Fig. 9).
  /// Read/write subscriptions of the finished segment are released.
  void SegmentBoundary();

  /// Aborts with AbortCause::kExplicit carrying `kCode`. Does not return.
  /// (Template mirrors native XABORT, whose code is an immediate.)
  template <uint8_t kCode>
  [[noreturn]] void ExplicitAbort() {
    DoExplicitAbort(kCode);
  }

  bool InTx() const { return active_; }
  int slot() const { return slot_; }
  const HtmStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HtmStats{}; }

  /// Distinct cache lines touched by the current transaction so far.
  uint32_t FootprintLines() const {
    return static_cast<uint32_t>(rec_list_.size());
  }

 private:
  struct Record {
    uintptr_t line;
    uint8_t flags;  // kReadFlag | kWriteFlag
  };
  static constexpr uint8_t kReadFlag = 1;
  static constexpr uint8_t kWriteFlag = 2;
  static constexpr uintptr_t kEmptyKey = ~uintptr_t{0};

  void Begin();
  void Commit();
  [[noreturn]] void DoExplicitAbort(uint8_t code);
  [[noreturn]] void ThrowAbort(AbortStatus status);
  void ReleaseAndReset();

  /// Throws on doom (conflict) — the emulated equivalent of the hardware
  /// asynchronously aborting us.
  void CheckDoom() {
    if (TUFAST_UNLIKELY(
            htm_.slots_[slot_].doomed.load(std::memory_order_seq_cst))) {
      ThrowAbort(AbortStatus::Conflict());
    }
  }

  Record& FindOrInsertRecord(uintptr_t line);
  void AcquireForRead(LineEntry& entry);
  void AcquireForWrite(LineEntry& entry);

  TmWord* WriteBufferFind(uintptr_t word_addr);
  void WriteBufferPut(uintptr_t word_addr, TmWord value);

  EmulatedHtm& htm_;
  const int slot_;
  bool active_ = false;
  HtmStats stats_;

  // Open-addressed line-record map (line id -> index into rec_store_).
  std::vector<uintptr_t> rec_keys_;
  std::vector<uint32_t> rec_index_;
  std::vector<Record> rec_store_;
  std::vector<uint32_t> rec_list_;  // used key-slot positions, for reset
  uint64_t rec_mask_;

  // Modeled L1: distinct lines currently mapped into each set.
  std::vector<uint16_t> set_counts_;

  // Word-granularity write buffer (open-addressed).
  std::vector<uintptr_t> wb_keys_;
  std::vector<TmWord> wb_vals_;
  std::vector<uint32_t> wb_list_;
  uint64_t wb_mask_;
};

}  // namespace tufast

#endif  // TUFAST_HTM_EMULATED_HTM_H_
