#ifndef TUFAST_HTM_EMULATED_HTM_H_
#define TUFAST_HTM_EMULATED_HTM_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/spin.h"
#include "htm/abort.h"
#include "htm/htm_config.h"

namespace tufast {

namespace htm_internal {

inline uint64_t NextPow2(uint64_t x) {
  return x <= 1 ? 1 : uint64_t{1} << (64 - std::countl_zero(x - 1));
}

inline uintptr_t LineOf(const void* addr) {
  return reinterpret_cast<uintptr_t>(addr) >> 6;
}

}  // namespace htm_internal

/// Software emulation of Intel RTM with the semantics TuFast depends on:
///
///  * conflict detection at 64-byte cache-line granularity, asymmetric
///    ("requester wins"): touching a line inside another live transaction's
///    footprint dooms that transaction;
///  * buffered transactional writes, atomically published at commit;
///  * capacity aborts from a set-associative L1 model (HtmConfig);
///  * non-transactional stores abort transactions subscribed to the line —
///    the property that makes lock subscription (H/O mode) correct;
///  * Intel-style abort status (AbortStatus) with conflict/capacity/
///    explicit causes and a may-retry hint.
///
/// All shared state that transactions touch must be read/written through
/// Tx::Load / Tx::Store while inside Tx::Execute, and through
/// NonTxStore / NonTxLoad outside transactions. This matches the TuFast
/// programming model where every shared access goes through READ/WRITE.
///
/// Thread model: up to kMaxHtmThreads worker threads, each owning one
/// `Tx` handle constructed with a distinct slot id in [0, kMaxHtmThreads).
///
/// Serializability: every write conflict (W-R, R-W, W-W at line
/// granularity) dooms the transaction that would break serial order, and
/// a committing transaction re-checks its doomed flag at its commit point
/// (seq_cst), so two committed transactions can never both have observed
/// state that contradicts a serial order (see DESIGN.md for the argument).
///
/// `FailpointsT` is the fault-injection policy (common/failpoints.h):
/// NullFailpoints by default (zero cost — `EmulatedHtm` below), or
/// StressFailpoints for the deterministic stress harness (`FaultyHtm`,
/// src/testing/failpoints.h), which can synthesize conflict/capacity
/// aborts at chosen operation indices and perturb thread schedules.
template <typename FailpointsT = NullFailpoints>
class BasicEmulatedHtm {
 public:
  using Failpoints = FailpointsT;

  explicit BasicEmulatedHtm(HtmConfig config = {}) : config_(config) {
    TUFAST_CHECK(std::has_single_bit(config_.num_sets));
    TUFAST_CHECK(config_.num_ways >= 1);
    const uint64_t table_size = uint64_t{1} << config_.table_bits;
    table_mask_ = table_size - 1;
    table_ = std::vector<LineEntry>(table_size);
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(BasicEmulatedHtm);

  class Tx;

  const HtmConfig& config() const { return config_; }

  /// Non-transactional store visible to (and dooming) transactions that
  /// have the line in their footprint. Use for all shared writes made
  /// outside transactions (lock releases, O/L-mode commit writes).
  void NonTxStore(TmWord* addr, TmWord value) {
    LineEntry& e = EntryFor(htm_internal::LineOf(addr));
    Backoff backoff;
    while (true) {
      LockEntry(e);
      if (ClearForeignOwners(e, /*self_slot=*/-1)) {
        __atomic_store_n(addr, value, __ATOMIC_RELEASE);
        UnlockEntry(e);
        return;
      }
      const int16_t writer = e.writer.load(std::memory_order_relaxed);
      UnlockEntry(e);
      // Wait (yielding) for the doomed writer to abort or finish flushing.
      while (e.writer.load(std::memory_order_acquire) == writer) {
        backoff.Pause();
      }
    }
  }

  /// Dooms transactions subscribed to addr's line without storing. Call
  /// after mutating a shared word through some other atomic operation
  /// (e.g. a lock-word CAS).
  void NotifyNonTxWrite(const void* addr) {
    LineEntry& e = EntryFor(htm_internal::LineOf(addr));
    Backoff backoff;
    while (true) {
      LockEntry(e);
      if (ClearForeignOwners(e, /*self_slot=*/-1)) {
        UnlockEntry(e);
        return;
      }
      const int16_t writer = e.writer.load(std::memory_order_relaxed);
      UnlockEntry(e);
      while (e.writer.load(std::memory_order_acquire) == writer) {
        backoff.Pause();
      }
    }
  }

  /// Plain non-transactional load.
  static TmWord NonTxLoad(const TmWord* addr) {
    return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
  }

  /// Non-transactional load that serializes with transactional WRITERS
  /// of addr's line: a writer past its commit point (it may already be
  /// flushing buffered values) is waited out so the load observes its
  /// write-back, and a writer before its commit point is doomed
  /// (requester-wins) so the value returned here can never be silently
  /// overwritten by an already-validated commit. Readers of the line are
  /// left untouched — this is the read-side counterpart of NonTxStore,
  /// for lock/metadata words that hardware paths write transactionally.
  /// The native backend uses a plain load (a real XEND is atomic; there
  /// is no window where a committed transaction is still flushing).
  TmWord DrainLoad(const TmWord* addr) {
    LineEntry& e = EntryFor(htm_internal::LineOf(addr));
    Backoff backoff;
    while (true) {
      LockEntry(e);
      const int16_t writer = e.writer.load(std::memory_order_relaxed);
      if (writer < 0 || !DoomWriterMustWait(writer)) {
        // No writer, or one doomed before its commit point: its buffered
        // write can never land, so current memory is committed state.
        const TmWord value = __atomic_load_n(addr, __ATOMIC_ACQUIRE);
        UnlockEntry(e);
        return value;
      }
      UnlockEntry(e);
      // Committing writer: wait (yielding) for its write-back to drain.
      while (e.writer.load(std::memory_order_acquire) == writer) {
        backoff.Pause();
      }
    }
  }

 private:
  friend class Tx;

  /// One conflict-table entry: which transaction slots currently have the
  /// (hashed) line in their read set, and which single slot owns it for
  /// writing. Guarded by its spin bit; critical sections are a few ns.
  struct alignas(16) LineEntry {
    std::atomic<bool> lock{false};
    std::atomic<int16_t> writer{-1};
    std::atomic<uint64_t> readers{0};
  };

  /// Per-worker doom flag plus commit-progress marker, padded to avoid
  /// false sharing between slots. `progress` and `doomed` form a Dekker
  /// pair (both seq_cst): a committing transaction publishes kCommitting
  /// before checking doomed, and a doomer dooms before checking progress,
  /// so at least one side observes the other — a doomer therefore only
  /// waits for writers that might already be flushing, and safely
  /// displaces ones that are guaranteed to abort.
  struct alignas(kCacheLineBytes) TxSlot {
    static constexpr uint8_t kActive = 0;
    static constexpr uint8_t kCommitting = 1;
    std::atomic<bool> doomed{false};
    std::atomic<uint8_t> progress{kActive};
  };

  /// Dooms `writer` and reports whether the caller must wait for its line
  /// ownership to drain (true) or may displace it immediately (false).
  bool DoomWriterMustWait(int16_t writer) {
    // Requester wins: doom the owner. If it already published kCommitting
    // it may be flushing its buffer, so the caller must wait for the
    // ownership to drain; otherwise the Dekker handshake guarantees it
    // will observe the doom at its commit point and abort, so it can be
    // displaced now.
    slots_[writer].doomed.store(true, std::memory_order_seq_cst);
    return slots_[writer].progress.load(std::memory_order_seq_cst) ==
           TxSlot::kCommitting;
  }

  LineEntry& EntryFor(uintptr_t line) {
    return table_[HashLine(line) & table_mask_];
  }

  static uint64_t HashLine(uintptr_t line) {
    uint64_t z = static_cast<uint64_t>(line) * 0x9e3779b97f4a7c15ULL;
    return z ^ (z >> 29);
  }

  static void LockEntry(LineEntry& e) {
    Backoff backoff;
    while (true) {
      if (!e.lock.exchange(true, std::memory_order_acquire)) return;
      while (e.lock.load(std::memory_order_relaxed)) backoff.Pause();
    }
  }
  static void UnlockEntry(LineEntry& e) {
    e.lock.store(false, std::memory_order_release);
  }

  /// Dooms the writer (if foreign) and all foreign readers of a locked
  /// entry; returns false (entry unlocked) if a foreign writer must first
  /// drain, true (entry still locked) when the line is clear.
  bool ClearForeignOwners(LineEntry& e, int self_slot) {
    const int16_t writer = e.writer.load(std::memory_order_relaxed);
    if (writer >= 0 && writer != self_slot) {
      if (DoomWriterMustWait(writer)) return false;
      e.writer.store(int16_t{-1}, std::memory_order_relaxed);  // Displace.
    }
    uint64_t readers = e.readers.load(std::memory_order_relaxed);
    const uint64_t self_bit =
        self_slot >= 0 ? uint64_t{1} << self_slot : uint64_t{0};
    uint64_t foreign = readers & ~self_bit;
    while (foreign != 0) {
      const int slot = std::countr_zero(foreign);
      slots_[slot].doomed.store(true, std::memory_order_seq_cst);
      foreign &= foreign - 1;
    }
    e.readers.store(readers & self_bit, std::memory_order_relaxed);
    return true;
  }

  HtmConfig config_;
  uint64_t table_mask_;
  std::vector<LineEntry> table_;
  TxSlot slots_[kMaxHtmThreads];
};

/// Per-thread transaction handle. Reusable across transactions; all
/// buffers are pre-allocated at construction, the hot path is
/// allocation-free.
template <typename FailpointsT>
class BasicEmulatedHtm<FailpointsT>::Tx {
 public:
  /// `slot` must be unique among concurrently active Tx handles.
  Tx(BasicEmulatedHtm& htm, int slot) : htm_(htm), slot_(slot) {
    TUFAST_CHECK(slot >= 0 && slot < kMaxHtmThreads);
    const HtmConfig& cfg = htm_.config_;
    const uint64_t rec_cap =
        htm_internal::NextPow2(uint64_t{cfg.MaxLines()} * 4);
    rec_mask_ = rec_cap - 1;
    rec_keys_.assign(rec_cap, kEmptyKey);
    rec_index_.assign(rec_cap, 0);
    rec_store_.reserve(cfg.MaxLines() + 1);
    rec_list_.reserve(cfg.MaxLines() + 1);
    set_counts_.assign(cfg.num_sets, 0);
    const uint64_t wb_cap =
        htm_internal::NextPow2(uint64_t{cfg.MaxLines()} * 16);
    wb_mask_ = wb_cap - 1;
    wb_keys_.assign(wb_cap, kEmptyKey);
    wb_vals_.assign(wb_cap, 0);
    wb_list_.reserve(cfg.MaxLines() * 8);
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(Tx);

  /// Two-phase commit hook (MVCC version installation). `pre_publish`
  /// runs once the commit is guaranteed (doom check passed) but before
  /// the write-back buffer is flushed — live memory still holds the
  /// pre-images of every written word; `post_publish` runs after the
  /// flush while line ownership is still held; `on_begin` runs at every
  /// (re)begin, including segment boundaries, so per-attempt recorder
  /// state can be reset. Hooks must not throw. Null members are skipped,
  /// and the default (all null) leaves Commit() bit-identical.
  struct Hooks {
    void (*on_begin)(void* ctx) = nullptr;
    void (*pre_publish)(void* ctx) = nullptr;
    void (*post_publish)(void* ctx) = nullptr;
    void* ctx = nullptr;
  };
  void SetHooks(const Hooks& hooks) { hooks_ = hooks; }

  /// Runs `body` as one hardware transaction: either it commits (returns
  /// Ok) or the body's effects are discarded and the abort status is
  /// returned. `body` may only touch shared state via Load/Store and may
  /// be re-executed by callers; it must be idempotent on private state.
  template <typename Body>
  AbortStatus Execute(Body&& body) {
    Begin();
    try {
      body();
      Commit();
      return AbortStatus::Ok();
    } catch (const TxAbortSignal& signal) {
      return signal.status;
    } catch (...) {
      // Foreign (user) exception unwinding through an active hardware
      // transaction: discard the speculative state exactly like an abort
      // before propagating — leaking the line ownerships would doom or
      // deadlock every later transaction touching those lines. Mirrors
      // real HTM, where any trap/exception aborts the transaction.
      if (active_) {
        ReleaseAndReset();
        active_ = false;
        stats_.RecordAbort(AbortStatus::Other());
      }
      throw;
    }
  }

  /// Transactional load of one shared word. Only valid inside Execute.
  TmWord Load(const TmWord* addr) {
    TUFAST_CHECK(active_);
    CheckDoom();
    if constexpr (Failpoints::kEnabled) {
      InterpretHtmAction(Failpoints::Hit(FailSite::kHtmLoad, slot_));
    }
    const uintptr_t line = htm_internal::LineOf(addr);
    Record& rec = FindOrInsertRecord(line);
    if ((rec.flags & (kReadFlag | kWriteFlag)) == 0) {
      AcquireForRead(htm_.EntryFor(line));
      rec.flags |= kReadFlag;
    }
    if (rec.flags & kWriteFlag) {
      if (const TmWord* buffered =
              WriteBufferFind(reinterpret_cast<uintptr_t>(addr))) {
        return *buffered;
      }
    }
    return __atomic_load_n(addr, __ATOMIC_ACQUIRE);
  }

  /// Transactional (buffered) store of one shared word.
  void Store(TmWord* addr, TmWord value) {
    TUFAST_CHECK(active_);
    CheckDoom();
    if constexpr (Failpoints::kEnabled) {
      InterpretHtmAction(Failpoints::Hit(FailSite::kHtmStore, slot_));
    }
    const uintptr_t line = htm_internal::LineOf(addr);
    Record& rec = FindOrInsertRecord(line);
    if ((rec.flags & kWriteFlag) == 0) {
      AcquireForWrite(htm_.EntryFor(line));
      rec.flags |= kWriteFlag;
    }
    WriteBufferPut(reinterpret_cast<uintptr_t>(addr), value);
  }

  /// Commits the current hardware transaction and immediately starts a
  /// new one. Used by O mode every `period` operations (paper Fig. 9).
  /// Read/write subscriptions of the finished segment are released.
  void SegmentBoundary() {
    Commit();  // Throws TxAbortSignal if this segment was doomed.
    Begin();
  }

  /// Aborts with AbortCause::kExplicit carrying `kCode`. Does not return.
  /// (Template mirrors native XABORT, whose code is an immediate.)
  template <uint8_t kCode>
  [[noreturn]] void ExplicitAbort() {
    DoExplicitAbort(kCode);
  }

  bool InTx() const { return active_; }
  int slot() const { return slot_; }
  const HtmStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HtmStats{}; }

  /// Distinct cache lines touched by the current transaction so far.
  uint32_t FootprintLines() const {
    return static_cast<uint32_t>(rec_list_.size());
  }

 private:
  struct Record {
    uintptr_t line;
    uint8_t flags;  // kReadFlag | kWriteFlag
  };
  static constexpr uint8_t kReadFlag = 1;
  static constexpr uint8_t kWriteFlag = 2;
  static constexpr uintptr_t kEmptyKey = ~uintptr_t{0};

  void Begin() {
    TUFAST_CHECK(!active_);
    htm_.slots_[slot_].progress.store(TxSlot::kActive,
                                      std::memory_order_seq_cst);
    htm_.slots_[slot_].doomed.store(false, std::memory_order_seq_cst);
    active_ = true;
    ++stats_.begins;
    if (TUFAST_UNLIKELY(hooks_.on_begin != nullptr)) {
      hooks_.on_begin(hooks_.ctx);
    }
  }

  void Commit() {
    TUFAST_CHECK(active_);
    if constexpr (Failpoints::kEnabled) {
      // Injected before the commit point: models a conflict that dooms us
      // in the window between the body's last access and XEND.
      InterpretHtmAction(Failpoints::Hit(FailSite::kHtmCommit, slot_));
    }
    // Commit point: publish kCommitting *before* checking doomed (Dekker
    // handshake with DoomWriterMustWait). Any doom sequenced before the
    // check forces an abort; a doom after it means the conflicting
    // transaction either waits for our flush (writers) or serializes
    // after us (readers). See DESIGN.md.
    htm_.slots_[slot_].progress.store(TxSlot::kCommitting,
                                      std::memory_order_seq_cst);
    if (htm_.slots_[slot_].doomed.load(std::memory_order_seq_cst)) {
      ThrowAbort(AbortStatus::Conflict());
    }
    // The commit is now guaranteed; live memory still holds pre-images.
    if (TUFAST_UNLIKELY(hooks_.pre_publish != nullptr)) {
      hooks_.pre_publish(hooks_.ctx);
    }
    // Publish buffered writes. All written lines are exclusively owned,
    // and conflicting accessors wait for ownership to drain, so this is
    // atomic with respect to every transactional reader.
    for (uint32_t pos : wb_list_) {
      __atomic_store_n(reinterpret_cast<TmWord*>(wb_keys_[pos]),
                       wb_vals_[pos], __ATOMIC_RELEASE);
    }
    if (TUFAST_UNLIKELY(hooks_.post_publish != nullptr)) {
      hooks_.post_publish(hooks_.ctx);
    }
    ReleaseAndReset();
    active_ = false;
    ++stats_.commits;
  }

  [[noreturn]] void DoExplicitAbort(uint8_t code) {
    TUFAST_CHECK(active_);
    ThrowAbort(AbortStatus::Explicit(code));
  }

  [[noreturn]] void ThrowAbort(AbortStatus status) {
    ReleaseAndReset();
    active_ = false;
    stats_.RecordAbort(status);
    throw TxAbortSignal{status};
  }

  void ReleaseAndReset() {
    for (uint32_t key_pos : rec_list_) {
      const Record& rec = rec_store_[rec_index_[key_pos]];
      LineEntry& e = htm_.EntryFor(rec.line);
      LockEntry(e);
      if (rec.flags & kWriteFlag) {
        int16_t expected = static_cast<int16_t>(slot_);
        e.writer.compare_exchange_strong(expected, int16_t{-1},
                                         std::memory_order_acq_rel);
      }
      if (rec.flags & kReadFlag) {
        e.readers.fetch_and(~(uint64_t{1} << slot_),
                            std::memory_order_relaxed);
      }
      UnlockEntry(e);
      rec_keys_[key_pos] = kEmptyKey;
      set_counts_[rec.line & (htm_.config_.num_sets - 1)] = 0;
    }
    // set_counts_ entries were zeroed above only for touched sets;
    // decrement semantics are unnecessary because we fully reset per
    // transaction.
    rec_list_.clear();
    rec_store_.clear();
    for (uint32_t pos : wb_list_) wb_keys_[pos] = kEmptyKey;
    wb_list_.clear();
  }

  /// Throws on doom (conflict) — the emulated equivalent of the hardware
  /// asynchronously aborting us.
  void CheckDoom() {
    if (TUFAST_UNLIKELY(
            htm_.slots_[slot_].doomed.load(std::memory_order_seq_cst))) {
      ThrowAbort(AbortStatus::Conflict());
    }
  }

  /// Maps an injected failpoint action onto the hardware abort it models.
  void InterpretHtmAction(FailAction action) {
    switch (action) {
      case FailAction::kAbortConflict:
        ThrowAbort(AbortStatus::Conflict());
      case FailAction::kAbortCapacity:
        ThrowAbort(AbortStatus::Capacity());
      default:
        break;
    }
  }

  Record& FindOrInsertRecord(uintptr_t line) {
    uint64_t pos = HashLine(line) & rec_mask_;
    while (true) {
      const uintptr_t key = rec_keys_[pos];
      if (key == line) return rec_store_[rec_index_[pos]];
      if (key == kEmptyKey) break;
      pos = (pos + 1) & rec_mask_;
    }
    // New line: charge it against the modeled L1 set before admitting it.
    const HtmConfig& cfg = htm_.config_;
    const uint32_t set = static_cast<uint32_t>(line) & (cfg.num_sets - 1);
    if (TUFAST_UNLIKELY(set_counts_[set] >= cfg.num_ways)) {
      ThrowAbort(AbortStatus::Capacity());
    }
    ++set_counts_[set];
    rec_keys_[pos] = line;
    rec_index_[pos] = static_cast<uint32_t>(rec_store_.size());
    rec_store_.push_back(Record{line, 0});
    rec_list_.push_back(static_cast<uint32_t>(pos));
    return rec_store_.back();
  }

  void AcquireForRead(LineEntry& entry) {
    Backoff backoff;
    uint32_t spins = 0;
    while (true) {
      LockEntry(entry);
      const int16_t writer = entry.writer.load(std::memory_order_relaxed);
      if (writer < 0 || writer == slot_ ||
          !htm_.DoomWriterMustWait(writer)) {
        if (writer >= 0 && writer != slot_) {
          entry.writer.store(int16_t{-1}, std::memory_order_relaxed);
        }
        entry.readers.fetch_or(uint64_t{1} << slot_,
                               std::memory_order_relaxed);
        UnlockEntry(entry);
        return;
      }
      UnlockEntry(entry);
      while (entry.writer.load(std::memory_order_acquire) == writer) {
        CheckDoom();
        if (++spins > htm_.config_.max_conflict_spins) {
          ThrowAbort(AbortStatus::Conflict());
        }
        backoff.Pause();
      }
    }
  }

  void AcquireForWrite(LineEntry& entry) {
    Backoff backoff;
    uint32_t spins = 0;
    while (true) {
      LockEntry(entry);
      if (htm_.ClearForeignOwners(entry, slot_)) {
        entry.writer.store(static_cast<int16_t>(slot_),
                           std::memory_order_relaxed);
        UnlockEntry(entry);
        return;
      }
      const int16_t writer = entry.writer.load(std::memory_order_relaxed);
      UnlockEntry(entry);
      while (entry.writer.load(std::memory_order_acquire) == writer) {
        CheckDoom();
        if (++spins > htm_.config_.max_conflict_spins) {
          ThrowAbort(AbortStatus::Conflict());
        }
        backoff.Pause();
      }
    }
  }

  TmWord* WriteBufferFind(uintptr_t word_addr) {
    uint64_t pos = HashLine(word_addr) & wb_mask_;
    while (true) {
      const uintptr_t key = wb_keys_[pos];
      if (key == word_addr) return &wb_vals_[pos];
      if (key == kEmptyKey) return nullptr;
      pos = (pos + 1) & wb_mask_;
    }
  }

  void WriteBufferPut(uintptr_t word_addr, TmWord value) {
    uint64_t pos = HashLine(word_addr) & wb_mask_;
    while (true) {
      const uintptr_t key = wb_keys_[pos];
      if (key == word_addr) {
        wb_vals_[pos] = value;
        return;
      }
      if (key == kEmptyKey) {
        wb_keys_[pos] = word_addr;
        wb_vals_[pos] = value;
        wb_list_.push_back(static_cast<uint32_t>(pos));
        return;
      }
      pos = (pos + 1) & wb_mask_;
    }
  }

  BasicEmulatedHtm& htm_;
  const int slot_;
  bool active_ = false;
  HtmStats stats_;
  Hooks hooks_;

  // Open-addressed line-record map (line id -> index into rec_store_).
  std::vector<uintptr_t> rec_keys_;
  std::vector<uint32_t> rec_index_;
  std::vector<Record> rec_store_;
  std::vector<uint32_t> rec_list_;  // used key-slot positions, for reset
  uint64_t rec_mask_;

  // Modeled L1: distinct lines currently mapped into each set.
  std::vector<uint16_t> set_counts_;

  // Word-granularity write buffer (open-addressed).
  std::vector<uintptr_t> wb_keys_;
  std::vector<TmWord> wb_vals_;
  std::vector<uint32_t> wb_list_;
  uint64_t wb_mask_;
};

/// The production instantiation: no failpoints, zero instrumentation
/// cost. Pre-instantiated in emulated_htm.cc so most translation units
/// only pay for the template once.
using EmulatedHtm = BasicEmulatedHtm<NullFailpoints>;

extern template class BasicEmulatedHtm<NullFailpoints>;

}  // namespace tufast

#endif  // TUFAST_HTM_EMULATED_HTM_H_
