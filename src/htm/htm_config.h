#ifndef TUFAST_HTM_HTM_CONFIG_H_
#define TUFAST_HTM_HTM_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace tufast {

/// Shared-memory word type all TuFast transactional operations act on.
/// Narrower/typed values are bit-cast onto it (see tm/txn.h helpers).
using TmWord = uint64_t;

/// Geometry of the modeled transactional cache for the emulated backend.
/// Defaults model the Haswell-era L1D the paper describes: 32 KB, 8-way
/// set-associative, 64-byte lines => 64 sets x 8 ways. A transaction
/// aborts with AbortCause::kCapacity as soon as it touches a 9th distinct
/// line mapping to one set, which is why random-access transactions abort
/// well before 32 KB of unique footprint (paper Fig. 4).
struct HtmConfig {
  /// Number of cache sets; must be a power of two.
  uint32_t num_sets = 64;
  /// Associativity: distinct lines per set before a capacity abort.
  uint32_t num_ways = 8;
  /// log2 of the conflict-detection line-table size. Collisions behave as
  /// false sharing (spurious conflicts), just like real line granularity.
  uint32_t table_bits = 20;
  /// Bound on conflict-path waiting (Backoff::Pause calls) before a
  /// transaction gives up and aborts itself instead of spinning.
  uint32_t max_conflict_spins = 2000;

  /// Max distinct cache lines a transaction can hold (= full L1).
  uint32_t MaxLines() const { return num_sets * num_ways; }
  /// Max transactional footprint in bytes.
  size_t CapacityBytes() const { return size_t{MaxLines()} * 64; }
};

/// Maximum concurrently registered HTM threads. Reader sets are bitmaps.
inline constexpr int kMaxHtmThreads = 64;

}  // namespace tufast

#endif  // TUFAST_HTM_HTM_CONFIG_H_
