#ifndef TUFAST_SERVING_LOAD_GENERATOR_H_
#define TUFAST_SERVING_LOAD_GENERATOR_H_

#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "common/zipf.h"
#include "serving/request.h"

namespace tufast {
namespace serving {

/// Workload-shape knobs for the open-loop generator.
struct LoadConfig {
  double rate = 50'000.0;        // offered requests/second (Poisson)
  double zipf_alpha = 0.99;      // key skew; 0 = uniform
  uint32_t num_keys = 1 << 16;   // vertex-id universe
  uint32_t interactive_percent = 80;  // tenant mix; rest is bulk
  // Per-tenant op mixes, percent. Interactive is read-dominated point
  // traffic; bulk is scans and batched mutations.
  uint32_t interactive_ops[kNumOps] = {60, 20, 15, 5, 0};
  uint32_t bulk_ops[kNumOps] = {5, 0, 15, 50, 30};
  uint16_t khop_k = 2;           // expansion depth for kKHop
  uint16_t scan_span = 64;       // vertices per interactive kScan
  uint16_t bulk_scan_span = 512; // vertices per bulk kScan
  uint16_t batch_width = 16;     // updates per kBatchMutate
};

/// Open-loop request source: Poisson arrivals (exponential inter-arrival
/// times at `rate`), Zipfian key skew, and a two-tenant mix. The
/// generator owns the virtual arrival clock — NextRequest() returns the
/// request stamped with its *scheduled* arrival time, and the driver
/// sleeps until that instant before offering it. Latency measured from
/// `arrival_ns` therefore includes any backlog the system built up
/// (no coordinated omission: a slow system cannot slow the clock down).
class LoadGenerator {
 public:
  LoadGenerator(const LoadConfig& cfg, uint64_t seed)
      : cfg_(cfg),
        key_sampler_(cfg.num_keys, cfg.zipf_alpha),
        rng_(seed ^ 0x5e7f1e1dULL) {}

  /// Draw the next request. `arrival_ns` advances by an exponential step
  /// with mean 1/rate from the PREVIOUS scheduled arrival, never from
  /// "now".
  Request NextRequest() {
    Request r;
    r.seq = seq_++;
    clock_ns_ += NextInterarrivalNs();
    r.arrival_ns = clock_ns_;
    r.tenant = rng_.NextBounded(100) <
                       static_cast<uint64_t>(cfg_.interactive_percent)
                   ? Tenant::kInteractive
                   : Tenant::kBulk;
    r.op = DrawOp(r.tenant);
    r.key = DrawKey();
    switch (r.op) {
      case Op::kKHop:
        r.aux = cfg_.khop_k;
        break;
      case Op::kScan:
        r.aux = r.tenant == Tenant::kBulk ? cfg_.bulk_scan_span
                                          : cfg_.scan_span;
        break;
      case Op::kBatchMutate:
        r.aux = cfg_.batch_width;
        break;
      default:
        r.aux = 0;
        break;
    }
    return r;
  }

  uint64_t clock_ns() const { return clock_ns_; }

 private:
  uint64_t NextInterarrivalNs() {
    // Exponential with mean 1e9/rate ns; clamp u away from 0 so log()
    // stays finite.
    double u = rng_.NextDouble();
    if (u < 1e-12) u = 1e-12;
    const double mean_ns = 1e9 / cfg_.rate;
    const double step = -std::log(u) * mean_ns;
    const uint64_t ns = static_cast<uint64_t>(step);
    return ns > 0 ? ns : 1;
  }

  uint32_t DrawKey() {
    return static_cast<uint32_t>(key_sampler_.Draw(rng_));
  }

  Op DrawOp(Tenant t) {
    const uint32_t* mix =
        t == Tenant::kInteractive ? cfg_.interactive_ops : cfg_.bulk_ops;
    uint64_t pick = rng_.NextBounded(100);
    for (int i = 0; i < kNumOps; ++i) {
      if (pick < mix[i]) return static_cast<Op>(i);
      pick -= mix[i];
    }
    return Op::kPointRead;
  }

  const LoadConfig cfg_;
  const ZipfSampler key_sampler_;
  Rng rng_;
  uint64_t seq_ = 0;
  uint64_t clock_ns_ = 0;
};

}  // namespace serving
}  // namespace tufast

#endif  // TUFAST_SERVING_LOAD_GENERATOR_H_
