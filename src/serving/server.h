#ifndef TUFAST_SERVING_SERVER_H_
#define TUFAST_SERVING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoints.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/dynamic/dynamic_graph.h"
#include "serving/admission.h"
#include "serving/latency_histogram.h"
#include "serving/load_generator.h"
#include "serving/request.h"
#include "serving/request_queue.h"
#include "tm/contention_monitor.h"

namespace tufast {
namespace serving {

/// Failpoint policy carried by a scheduler type (TuFastScheduler exports
/// the backend's via `using Failpoints = ...`); NullFailpoints otherwise.
template <typename S, typename = void>
struct SchedFailpointsOf {
  using type = NullFailpoints;
};
template <typename S>
struct SchedFailpointsOf<S, std::void_t<typename S::Failpoints>> {
  using type = typename S::Failpoints;
};
template <typename S>
using SchedFailpoints = typename SchedFailpointsOf<S>::type;

/// Graph-serving front end: a bounded run queue between an open-loop
/// request source and a pool of serving workers executing typed requests
/// as TuFast transactions against a DynamicGraph.
///
/// Threading contract:
///   - Offer()/TryReadmit()/Drain() are GENERATOR-SIDE: exactly one
///     thread (the open-loop driver) calls them. The defer queue is
///     generator-private, so a failed re-admission push-back can always
///     return its request to the defer queue (space was just freed).
///   - Worker threads (scheduler worker ids [0, num_workers)) pop the
///     run queue and execute; they never touch the defer queue.
///
/// Latency is measured from the request's *scheduled* arrival
/// (Request::arrival_ns on the engine's epoch clock) to completion, so
/// queue backlog and generator lag surface as latency rather than being
/// absorbed (no coordinated omission). Queue delay — arrival to
/// execution start — feeds three sinks: the scheduler's per-worker stats
/// (NoteQueueDelay, satellite plumbing), the admission controller's trip
/// signal, and the per-engine max watermark.
///
/// Conservation: every Offer() ends in exactly one of admitted / shed /
/// deferred, and Drain() executes everything admitted, so after Drain():
///   offered == admitted + shed + deferred   (AdmissionController)
///   executed == admitted                    (ExecutedTotal)
/// Both are invariants checked by tests, serve_bench, and
/// stress_fuzz --serve-chaos (which arms kServeQueueFull/kServeDeferFull
/// to force the rare bounce paths).
template <typename Scheduler>
class ServeEngine {
 public:
  using Failpoints = SchedFailpoints<Scheduler>;

  struct Config {
    int num_workers = 4;
    uint32_t queue_capacity = 1024;
    uint32_t defer_capacity = 4096;
    AdmissionConfig admission;
    uint64_t interactive_slo_ns = 2'000'000;   // goodput bound, tier 0
    uint64_t bulk_slo_ns = 100'000'000;        // goodput bound, tier 1
    uint32_t khop_frontier_cap = 64;           // BFS frontier bound
  };

  ServeEngine(Scheduler& tm, DynamicGraph& graph, const Config& cfg)
      : tm_(&tm),
        graph_(&graph),
        cfg_(cfg),
        n_(graph.NumVertices()),
        queue_(cfg.queue_capacity),
        defer_(cfg.defer_capacity),
        admission_(cfg.admission) {}

  ~ServeEngine() {
    if (!threads_.empty()) Drain();
  }

  /// Spawn the worker pool and start the epoch clock. arrival_ns values
  /// offered afterwards are interpreted on this clock.
  void Start() {
    draining_.store(false, std::memory_order_relaxed);
    epoch_.Restart();
    threads_.reserve(cfg_.num_workers);
    for (int i = 0; i < cfg_.num_workers; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  uint64_t NowNs() const { return epoch_.ElapsedNanos(); }

  /// Offer one request (generator-side). Returns its disposition; the
  /// matching AdmissionController counter has already been bumped.
  Disposition Offer(const Request& r) {
    admission_.CountOffered(r.tenant);
    if (!admission_.ShouldAdmit(r.tenant)) return Park(r);
    bool pushed;
    if constexpr (Failpoints::kEnabled) {
      pushed = Failpoints::Hit(FailSite::kServeQueueFull, 0) ==
                       FailAction::kNone
                   ? queue_.TryPush(r)
                   : false;
    } else {
      pushed = queue_.TryPush(r);
    }
    if (!pushed) {
      // Hard queue-full back-pressure. Bulk gets a deferral chance;
      // interactive is shed outright (parking it would only guarantee
      // an SLO miss by the time it re-emerges).
      if (r.tenant == Tenant::kBulk) return Park(r);
      admission_.CountShed(r.tenant);
      return Disposition::kShed;
    }
    admission_.CountAdmitted(r.tenant);
    return Disposition::kAdmitted;
  }

  /// Move up to `budget` parked requests back into the run queue
  /// (generator-side; no-op while the controller is shedding). Returns
  /// the number re-admitted.
  int TryReadmit(int budget) {
    if (admission_.state() != AdmissionController::State::kOpen) return 0;
    int moved = 0;
    Request r;
    while (moved < budget && defer_.TryPop(&r)) {
      if (!queue_.TryPush(r)) {
        // Run queue full again: put it back (defer is generator-private,
        // so the slot we just freed is still free) and stop this round.
        const bool back = defer_.TryPush(r);
        (void)back;
        break;
      }
      admission_.CountReadmitted(r.tenant);
      ++moved;
    }
    return moved;
  }

  /// Stop accepting, execute everything already admitted, join workers.
  void Drain() {
    draining_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  // ---- Post-run accounting (quiesced, or monitoring-grade racy) ----

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }

  const LatencyHistogram& Latency(Tenant t, Op op) const {
    return latency_[Idx(t)][static_cast<int>(op)];
  }

  /// All-op latency for one tenant, merged into `out`.
  void MergeTenantLatency(Tenant t, LatencyHistogram* out) const {
    for (int op = 0; op < kNumOps; ++op) out->Merge(latency_[Idx(t)][op]);
  }

  uint64_t Completed(Tenant t, Op op) const {
    return completed_[Idx(t)][static_cast<int>(op)].load(
        std::memory_order_relaxed);
  }
  uint64_t SloMet(Tenant t, Op op) const {
    return slo_met_[Idx(t)][static_cast<int>(op)].load(
        std::memory_order_relaxed);
  }
  uint64_t ExecutedTotal() const {
    return executed_total_.load(std::memory_order_relaxed);
  }
  uint64_t MaxQueueDelayNs() const {
    return max_queue_delay_ns_.load(std::memory_order_relaxed);
  }
  uint64_t SloNs(Tenant t) const {
    return t == Tenant::kInteractive ? cfg_.interactive_slo_ns
                                     : cfg_.bulk_slo_ns;
  }
  const RequestQueue& queue() const { return queue_; }
  const RequestQueue& defer_queue() const { return defer_; }
  const Config& config() const { return cfg_; }

 private:
  static int Idx(Tenant t) { return static_cast<int>(t); }

  Disposition Park(const Request& r) {
    bool parked;
    if constexpr (Failpoints::kEnabled) {
      parked = Failpoints::Hit(FailSite::kServeDeferFull, 0) ==
                       FailAction::kNone
                   ? defer_.TryPush(r)
                   : false;
    } else {
      parked = defer_.TryPush(r);
    }
    if (parked) {
      admission_.CountDeferred(r.tenant);
      return Disposition::kDeferred;
    }
    admission_.CountShed(r.tenant);
    return Disposition::kShed;
  }

  void WorkerLoop(int worker_id) {
    Request r;
    std::vector<VertexId> frontier, next;
    std::vector<EdgeUpdate> updates;
    while (true) {
      if (queue_.TryPop(&r)) {
        Execute(worker_id, r, frontier, next, updates);
        continue;
      }
      if (draining_.load(std::memory_order_acquire) && queue_.Empty()) {
        return;
      }
      std::this_thread::yield();
    }
  }

  void Execute(int worker_id, const Request& r,
               std::vector<VertexId>& frontier, std::vector<VertexId>& next,
               std::vector<EdgeUpdate>& updates) {
    const uint64_t start = NowNs();
    const uint64_t qdelay =
        start > r.arrival_ns ? start - r.arrival_ns : 0;
    RecordQueueDelay(worker_id, qdelay);
    admission_.NoteQueueDelay(qdelay);

    switch (r.op) {
      case Op::kPointRead: {
        VertexSnapshot snap;
        graph_->ReadVertexSnapshotRO(*tm_, worker_id, Key(r.key), &snap);
        break;
      }
      case Op::kPointWrite: {
        uint64_t h = r.seq * 0x9e3779b97f4a7c15ULL + 1;
        const VertexId v = Key(static_cast<uint32_t>(SplitMix64(h)));
        graph_->InsertEdge(*tm_, worker_id, Key(r.key), v,
                           static_cast<uint32_t>(r.seq & 0xff));
        break;
      }
      case Op::kKHop:
        KHop(worker_id, Key(r.key), r.aux, frontier, next);
        break;
      case Op::kScan:
        Scan(worker_id, Key(r.key), r.aux);
        break;
      case Op::kBatchMutate:
        BatchMutate(worker_id, r, updates);
        break;
      default:
        break;
    }

    const uint64_t end = NowNs();
    const uint64_t lat = end > r.arrival_ns ? end - r.arrival_ns : 0;
    const int t = Idx(r.tenant);
    const int op = static_cast<int>(r.op);
    latency_[t][op].Record(lat);
    completed_[t][op].fetch_add(1, std::memory_order_relaxed);
    if (lat <= SloNs(r.tenant)) {
      slo_met_[t][op].fetch_add(1, std::memory_order_relaxed);
    }
    executed_total_.fetch_add(1, std::memory_order_relaxed);
    if (r.tenant == Tenant::kInteractive) {
      admission_.RecordInteractiveLatency(lat);
    }
    PollBreaker(worker_id);
  }

  VertexId Key(uint32_t key) const {
    return static_cast<VertexId>(key % n_);
  }

  /// Bounded breadth-first expansion: `k` rounds of snapshot reads with
  /// a capped frontier (hub vertices would otherwise make one request
  /// touch the whole graph).
  void KHop(int worker_id, VertexId root, int k,
            std::vector<VertexId>& frontier, std::vector<VertexId>& next) {
    frontier.clear();
    frontier.push_back(root);
    VertexSnapshot snap;
    for (int depth = 0; depth < k && !frontier.empty(); ++depth) {
      next.clear();
      for (const VertexId u : frontier) {
        graph_->ReadVertexSnapshotRO(*tm_, worker_id, u, &snap);
        for (const auto& [v, w] : snap.edges) {
          (void)w;
          if (next.size() >= cfg_.khop_frontier_cap) break;
          next.push_back(v);
        }
        if (next.size() >= cfg_.khop_frontier_cap) break;
      }
      frontier.swap(next);
    }
  }

  /// Filtered scan: snapshot-read `span` consecutive vertices and count
  /// the edges passing a weight predicate (stand-in for a real filter).
  uint64_t Scan(int worker_id, VertexId base, uint32_t span) {
    uint64_t matched = 0;
    VertexSnapshot snap;
    for (uint32_t i = 0; i < span; ++i) {
      const VertexId u = static_cast<VertexId>((base + i) % n_);
      graph_->ReadVertexSnapshotRO(*tm_, worker_id, u, &snap);
      for (const auto& [v, w] : snap.edges) {
        (void)v;
        if ((w & 1u) == 0) ++matched;
      }
    }
    return matched;
  }

  /// Batched mutation: `aux` edge upserts/deletes derived from the
  /// request's rng stream, applied as one transactional batch (PR-4
  /// fusion handles the packing).
  void BatchMutate(int worker_id, const Request& r,
                   std::vector<EdgeUpdate>& updates) {
    updates.clear();
    uint64_t h = r.seq ^ 0xbf58476d1ce4e5b9ULL;
    for (uint16_t j = 0; j < r.aux; ++j) {
      const VertexId u = Key(r.key + j);
      const VertexId v = Key(static_cast<uint32_t>(SplitMix64(h)));
      if ((j & 1u) == 0) {
        updates.push_back(EdgeUpdate::Insert(u, v, j));
      } else {
        updates.push_back(EdgeUpdate::Delete(u, v));
      }
    }
    graph_->ApplyBatch(*tm_, worker_id,
                       std::span<const EdgeUpdate>(updates));
  }

  /// Queue delay -> scheduler per-worker stats (when the scheduler has
  /// the PR-8 plumbing) + engine watermark.
  void RecordQueueDelay(int worker_id, uint64_t ns) {
    if constexpr (requires(Scheduler& s) {
                    s.NoteQueueDelay(0, uint64_t{0});
                  }) {
      tm_->NoteQueueDelay(worker_id, ns);
    }
    uint64_t prev = max_queue_delay_ns_.load(std::memory_order_relaxed);
    while (ns > prev && !max_queue_delay_ns_.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
  }

  /// The serving worker polls its own ContentionMonitor slot — the slot
  /// is owned by this thread, so the read is unsynchronized by design.
  void PollBreaker(int worker_id) {
    if constexpr (requires(const Scheduler& s) {
                    s.MonitorForWorker(0);
                  }) {
      const ContentionMonitor* m = tm_->MonitorForWorker(worker_id);
      if (m != nullptr && m->breaker_state() == BreakerState::kOpen) {
        admission_.NoteBreakerOpen();
      }
    }
  }

  Scheduler* tm_;
  DynamicGraph* graph_;
  const Config cfg_;
  const VertexId n_;

  RequestQueue queue_;
  RequestQueue defer_;
  AdmissionController admission_;
  WallTimer epoch_;
  std::vector<std::thread> threads_;
  std::atomic<bool> draining_{false};

  LatencyHistogram latency_[kNumTenants][kNumOps];
  std::atomic<uint64_t> completed_[kNumTenants][kNumOps] = {};
  std::atomic<uint64_t> slo_met_[kNumTenants][kNumOps] = {};
  std::atomic<uint64_t> executed_total_{0};
  std::atomic<uint64_t> max_queue_delay_ns_{0};
};

}  // namespace serving
}  // namespace tufast

#endif  // TUFAST_SERVING_SERVER_H_
