#ifndef TUFAST_SERVING_LATENCY_HISTOGRAM_H_
#define TUFAST_SERVING_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

namespace tufast {
namespace serving {

/// Lock-free HDR-style latency histogram.
///
/// Log-linear bucketing: values below `kSubBuckets` (32) are recorded
/// exactly; above that each power-of-two octave is split into 32
/// sub-buckets, bounding relative quantile error at 1/32 (~3.1%) across
/// the whole range. The top octave covers 2^42 ns (~73 min) — anything
/// beyond lands in a saturation bucket and bumps `saturated`.
///
/// Record() is a single relaxed fetch_add on the owning bucket (plus the
/// count/sum/max summaries), safe from any number of threads with no
/// coordination. Quantile() and Merge() read with relaxed loads: they
/// are intended for quiesced or monitoring use where a momentarily torn
/// view across buckets is acceptable (each individual counter is still
/// atomic). Merge is associative and commutative — merging A into C then
/// B, or B then A, yields identical bucket contents, which the unit
/// tests pin.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;                  // 32 sub-buckets/octave
  static constexpr uint64_t kSubBuckets = 1ull << kSubBits;
  static constexpr int kMaxExponent = 42;             // top octave: [2^42, 2^43)
  // The first kSubBuckets slots hold the exact values [0, 32); each
  // exponent in [kSubBits, kMaxExponent] contributes 32 sub-buckets; the
  // final slot is the dedicated saturation bucket for v >= 2^43.
  static constexpr int kNumBuckets =
      static_cast<int>(kSubBuckets) +
      (kMaxExponent - kSubBits + 1) * static_cast<int>(kSubBuckets) + 1;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record one value (nanoseconds by convention). Lock-free; callable
  /// concurrently from any thread.
  void Record(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
    if (v >= (uint64_t{1} << (kMaxExponent + 1))) {
      saturated_.fetch_add(1, std::memory_order_relaxed);
    }
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t Saturated() const {
    return saturated_.load(std::memory_order_relaxed);
  }

  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  /// Value at quantile q in [0, 1]: the representative (midpoint) value
  /// of the first bucket whose cumulative count reaches q * Count().
  /// Returns 0 on an empty histogram. Saturated samples report the
  /// observed max (the saturation bucket has no meaningful midpoint).
  uint64_t Quantile(double q) const {
    const uint64_t n = Count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c == 0) continue;
      seen += c;
      if (seen > rank) {
        if (i == kNumBuckets - 1 && Saturated() > 0) return Max();
        return BucketMid(i);
      }
    }
    return Max();  // racing Record(); best effort
  }

  /// Add another histogram's contents into this one. Associative and
  /// commutative; `other` may be concurrently recording (its counters
  /// are read atomically, so every sample lands in at most one merge).
  void Merge(const LatencyHistogram& other) {
    count_.fetch_add(other.Count(), std::memory_order_relaxed);
    sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
    saturated_.fetch_add(other.Saturated(), std::memory_order_relaxed);
    uint64_t om = other.Max();
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (om > prev &&
           !max_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
    }
    for (int i = 0; i < kNumBuckets; ++i) {
      const uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
  }

  /// Zero everything. Caller must guarantee no concurrent Record().
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    saturated_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Bucket a raw value (exposed for tests pinning the indexing math).
  /// Values at or beyond 2^(kMaxExponent+1) land in the saturation slot.
  static int BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    if (v >= (uint64_t{1} << (kMaxExponent + 1))) return kNumBuckets - 1;
    const int exp = 63 - __builtin_clzll(v);  // floor(log2 v), >= kSubBits
    // Sub-bucket within the octave: the kSubBits bits below the MSB.
    const uint64_t sub = (v >> (exp - kSubBits)) - kSubBuckets;
    return static_cast<int>(kSubBuckets +
                            static_cast<uint64_t>(exp - kSubBits) * kSubBuckets +
                            sub);
  }

  /// Midpoint of a bucket's value range (its representative value). The
  /// saturation bucket has no finite range; callers (Quantile) substitute
  /// the observed max instead.
  static uint64_t BucketMid(int index) {
    if (index < static_cast<int>(kSubBuckets)) {
      return static_cast<uint64_t>(index);
    }
    if (index >= kNumBuckets - 1) return uint64_t{1} << (kMaxExponent + 1);
    const uint64_t rel = static_cast<uint64_t>(index) - kSubBuckets;
    const int exp = static_cast<int>(rel >> kSubBits) + kSubBits;
    const uint64_t sub = rel & (kSubBuckets - 1);
    const uint64_t lo = (kSubBuckets + sub) << (exp - kSubBits);
    const uint64_t width = uint64_t{1} << (exp - kSubBits);
    return lo + width / 2;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> saturated_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

}  // namespace serving
}  // namespace tufast

#endif  // TUFAST_SERVING_LATENCY_HISTOGRAM_H_
