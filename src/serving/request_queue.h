#ifndef TUFAST_SERVING_REQUEST_QUEUE_H_
#define TUFAST_SERVING_REQUEST_QUEUE_H_

#include <atomic>
#include <cstdint>

#include "serving/request.h"
#include "sharding/mailbox.h"

namespace tufast {
namespace serving {

/// Bounded MPMC request queue between the open-loop generator and the
/// serving workers. Reuses the sharding layer's Vyukov ring
/// (BoundedMailbox): the generator is the producer, each serving worker
/// a consumer, and the defer path makes it genuinely multi-producer
/// (re-admitted requests are pushed back by whichever worker drains the
/// defer queue).
///
/// TryPush failure (ring full) is a back-pressure signal, not a drop:
/// the caller decides the request's disposition (shed / defer), so the
/// conservation invariant offered == admitted + shed + deferred stays
/// exact by construction.
class RequestQueue {
 public:
  explicit RequestQueue(uint32_t capacity) : ring_(capacity) {}

  uint32_t capacity() const { return ring_.capacity(); }

  bool TryPush(const Request& r) {
    if (!ring_.TryEnqueue(r)) return false;
    // Racy watermark: good enough for telemetry (max observed depth).
    const uint64_t d = ring_.ApproxDepth();
    uint64_t prev = max_depth_.load(std::memory_order_relaxed);
    while (d > prev && !max_depth_.compare_exchange_weak(
                           prev, d, std::memory_order_relaxed)) {
    }
    return true;
  }

  bool TryPop(Request* out) { return ring_.TryDequeue(out); }

  bool Empty() const { return ring_.Empty(); }
  uint64_t ApproxDepth() const { return ring_.ApproxDepth(); }
  uint64_t MaxDepth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

 private:
  BoundedMailbox<Request> ring_;
  std::atomic<uint64_t> max_depth_{0};
};

}  // namespace serving
}  // namespace tufast

#endif  // TUFAST_SERVING_REQUEST_QUEUE_H_
