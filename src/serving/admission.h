#ifndef TUFAST_SERVING_ADMISSION_H_
#define TUFAST_SERVING_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "serving/request.h"

namespace tufast {
namespace serving {

/// Admission-control policy knobs. Defaults are conservative: a window
/// of 256 interactive completions, trip when the in-window p99 exceeds
/// the SLO, recover when it falls back under half the SLO (hysteresis so
/// the controller does not flap on the boundary).
struct AdmissionConfig {
  bool enabled = true;
  uint64_t slo_p99_ns = 2'000'000;     // 2 ms default interactive SLO
  uint32_t window = 256;               // interactive completions per window
  uint32_t recover_percent = 50;       // recover when p99 <= 50% of SLO
  uint64_t queue_delay_trip_ns = 0;    // 0 = derive from slo_p99_ns / 2
  uint32_t min_shed_windows = 2;       // stay shedding at least this long

  uint64_t QueueDelayTripNs() const {
    return queue_delay_trip_ns != 0 ? queue_delay_trip_ns : slo_p99_ns / 2;
  }
};

/// Two-state admission controller guarding the interactive tier's tail.
///
///   kOpen     - everything is admitted.
///   kShedding - bulk-analytics requests are deferred (parked in the
///               defer queue) or shed (defer queue full); interactive
///               requests are always admitted.
///
/// The SLO check avoids quantile computation entirely: over a window of
/// N interactive completions, p99 > SLO exactly when more than N/100
/// completions exceeded the SLO bound. Two relaxed atomic counters give
/// the exact comparison with no locks and no histogram scan. Three
/// signals can trip kOpen -> kShedding:
///   1. in-window interactive p99 over the SLO (the counting test);
///   2. a queue-delay observation beyond QueueDelayTripNs() (backlog is
///      about to become latency — trip before the SLO misses land);
///   3. the PR-5 abort-storm circuit breaker opening on any worker
///      (workers poll their own ContentionMonitor slot and call
///      NoteBreakerOpen — TSan-safe, the slot is worker-owned).
/// Recovery kShedding -> kOpen requires min_shed_windows full windows
/// AND an in-window p99 at or under recover_percent of the SLO.
///
/// Disposition counters live here so conservation
/// (offered == admitted + shed + deferred) is auditable from one place;
/// the engine calls exactly one Count*() per offered request. A deferred
/// request that is later re-admitted moves from deferred to admitted and
/// bumps readmitted — offered is NOT re-counted, which the
/// no-double-count regression test pins.
class AdmissionController {
 public:
  enum class State : uint8_t { kOpen = 0, kShedding };

  explicit AdmissionController(const AdmissionConfig& cfg) : cfg_(cfg) {}

  static const char* StateName(State s) {
    return s == State::kOpen ? "open" : "shedding";
  }

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_relaxed));
  }

  /// Should a request from `tenant` be admitted to the run queue right
  /// now? Interactive traffic is always admitted (it may still bounce on
  /// a hard queue-full, which the engine counts as shed).
  bool ShouldAdmit(Tenant tenant) const {
    if (!cfg_.enabled || tenant == Tenant::kInteractive) return true;
    return state() == State::kOpen;
  }

  /// One interactive completion with end-to-end latency `ns`. Drives the
  /// windowed SLO state machine.
  void RecordInteractiveLatency(uint64_t ns) {
    if (!cfg_.enabled) return;
    if (ns > cfg_.slo_p99_ns) {
      window_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t recover_ns =
        cfg_.slo_p99_ns / 100 * cfg_.recover_percent;
    if (ns > recover_ns) {
      window_over_recover_.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t n =
        window_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= cfg_.window) MaybeEvaluate();
  }

  /// Queue-delay telemetry from a worker: request sat `ns` in the run
  /// queue before execution started.
  void NoteQueueDelay(uint64_t ns) {
    if (!cfg_.enabled) return;
    if (ns > cfg_.QueueDelayTripNs()) Trip(TripCause::kQueueDelay);
  }

  /// A worker observed its abort-storm circuit breaker open.
  void NoteBreakerOpen() {
    if (!cfg_.enabled) return;
    Trip(TripCause::kBreaker);
  }

  // ---- Disposition accounting (one Count* call per offered request) ----

  void CountOffered(Tenant t) {
    offered_[Idx(t)].fetch_add(1, std::memory_order_relaxed);
  }
  void CountAdmitted(Tenant t) {
    admitted_[Idx(t)].fetch_add(1, std::memory_order_relaxed);
  }
  void CountShed(Tenant t) {
    shed_[Idx(t)].fetch_add(1, std::memory_order_relaxed);
  }
  void CountDeferred(Tenant t) {
    deferred_[Idx(t)].fetch_add(1, std::memory_order_relaxed);
  }
  /// A previously deferred request was re-admitted: it moves from the
  /// deferred column to the admitted column (offered stays untouched).
  void CountReadmitted(Tenant t) {
    deferred_[Idx(t)].fetch_sub(1, std::memory_order_relaxed);
    admitted_[Idx(t)].fetch_add(1, std::memory_order_relaxed);
    readmitted_[Idx(t)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Offered(Tenant t) const { return Ld(offered_[Idx(t)]); }
  uint64_t Admitted(Tenant t) const { return Ld(admitted_[Idx(t)]); }
  uint64_t Shed(Tenant t) const { return Ld(shed_[Idx(t)]); }
  uint64_t Deferred(Tenant t) const { return Ld(deferred_[Idx(t)]); }
  uint64_t Readmitted(Tenant t) const { return Ld(readmitted_[Idx(t)]); }

  uint64_t TotalOffered() const {
    uint64_t s = 0;
    for (const auto& c : offered_) s += Ld(c);
    return s;
  }

  /// Exact conservation invariant; valid once the engine has quiesced.
  bool Conserved() const {
    for (int i = 0; i < kNumTenants; ++i) {
      if (Ld(offered_[i]) !=
          Ld(admitted_[i]) + Ld(shed_[i]) + Ld(deferred_[i])) {
        return false;
      }
    }
    return true;
  }

  uint64_t trips() const { return Ld(trips_); }
  uint64_t breaker_trips() const { return Ld(breaker_trips_); }
  uint64_t queue_delay_trips() const { return Ld(queue_delay_trips_); }
  uint64_t recoveries() const { return Ld(recoveries_); }

 private:
  enum class TripCause { kSlo, kQueueDelay, kBreaker };

  static int Idx(Tenant t) { return static_cast<int>(t); }
  static uint64_t Ld(const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  }

  void Trip(TripCause cause) {
    uint8_t open = static_cast<uint8_t>(State::kOpen);
    if (state_.compare_exchange_strong(
            open, static_cast<uint8_t>(State::kShedding),
            std::memory_order_relaxed)) {
      trips_.fetch_add(1, std::memory_order_relaxed);
      if (cause == TripCause::kBreaker) {
        breaker_trips_.fetch_add(1, std::memory_order_relaxed);
      } else if (cause == TripCause::kQueueDelay) {
        queue_delay_trips_.fetch_add(1, std::memory_order_relaxed);
      }
      shed_windows_.store(0, std::memory_order_relaxed);
      ResetWindow();
    }
  }

  /// Window boundary: at most one thread wins the CAS and evaluates;
  /// stragglers keep recording into the next window. Counter resets race
  /// in-flight Record calls — each store/add is atomic, so the worst
  /// case is a handful of samples credited to the wrong window, which
  /// only delays a transition by one window.
  void MaybeEvaluate() {
    bool expected = false;
    if (!evaluating_.compare_exchange_strong(expected, true,
                                             std::memory_order_acquire)) {
      return;
    }
    const uint64_t n = window_count_.load(std::memory_order_relaxed);
    const uint64_t misses = window_misses_.load(std::memory_order_relaxed);
    const uint64_t over_rec =
        window_over_recover_.load(std::memory_order_relaxed);
    if (n >= cfg_.window) {
      const State s = state();
      if (s == State::kOpen) {
        // p99 > SLO  <=>  more than 1% of the window missed the SLO.
        if (misses * 100 > n) Trip(TripCause::kSlo);
      } else {
        const uint32_t w =
            shed_windows_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (w >= cfg_.min_shed_windows && over_rec * 100 <= n) {
          state_.store(static_cast<uint8_t>(State::kOpen),
                       std::memory_order_relaxed);
          recoveries_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ResetWindow();
    }
    evaluating_.store(false, std::memory_order_release);
  }

  void ResetWindow() {
    window_count_.store(0, std::memory_order_relaxed);
    window_misses_.store(0, std::memory_order_relaxed);
    window_over_recover_.store(0, std::memory_order_relaxed);
  }

  const AdmissionConfig cfg_;
  std::atomic<uint8_t> state_{static_cast<uint8_t>(State::kOpen)};
  std::atomic<bool> evaluating_{false};
  std::atomic<uint64_t> window_count_{0};
  std::atomic<uint64_t> window_misses_{0};
  std::atomic<uint64_t> window_over_recover_{0};
  std::atomic<uint32_t> shed_windows_{0};

  std::atomic<uint64_t> offered_[kNumTenants] = {};
  std::atomic<uint64_t> admitted_[kNumTenants] = {};
  std::atomic<uint64_t> shed_[kNumTenants] = {};
  std::atomic<uint64_t> deferred_[kNumTenants] = {};
  std::atomic<uint64_t> readmitted_[kNumTenants] = {};

  std::atomic<uint64_t> trips_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<uint64_t> queue_delay_trips_{0};
  std::atomic<uint64_t> recoveries_{0};
};

}  // namespace serving
}  // namespace tufast

#endif  // TUFAST_SERVING_ADMISSION_H_
