#ifndef TUFAST_SERVING_REQUEST_H_
#define TUFAST_SERVING_REQUEST_H_

#include <cstdint>

namespace tufast {
namespace serving {

/// Tenant tiers. Interactive traffic carries the SLO; bulk analytics is
/// the sheddable background tier.
enum class Tenant : uint8_t { kInteractive = 0, kBulk, kNumTenants };

inline constexpr int kNumTenants = static_cast<int>(Tenant::kNumTenants);

inline const char* TenantName(Tenant t) {
  switch (t) {
    case Tenant::kInteractive: return "interactive";
    case Tenant::kBulk: return "bulk";
    default: return "?";
  }
}

/// Typed request operations over the dynamic graph.
enum class Op : uint8_t {
  kPointRead = 0,   // one vertex's adjacency snapshot
  kPointWrite,      // one edge upsert
  kKHop,            // bounded breadth-first neighborhood expansion
  kScan,            // filtered range scan over a run of vertices
  kBatchMutate,     // group of edge updates applied in one transaction
  kNumOps,
};

inline constexpr int kNumOps = static_cast<int>(Op::kNumOps);

inline const char* OpName(Op op) {
  switch (op) {
    case Op::kPointRead: return "point_read";
    case Op::kPointWrite: return "point_write";
    case Op::kKHop: return "k_hop";
    case Op::kScan: return "scan";
    case Op::kBatchMutate: return "batch_mutate";
    default: return "?";
  }
}

/// One serving request. 32 bytes; flows by value through the bounded
/// request queue. `arrival_ns` is the generator's *scheduled* arrival
/// time on the open-loop clock — latency is measured from it, not from
/// enqueue, so queue backlog shows up as latency instead of being
/// silently absorbed (coordinated omission).
struct Request {
  Tenant tenant = Tenant::kInteractive;
  Op op = Op::kPointRead;
  uint16_t aux = 0;       // k for kKHop, span width for kScan/kBatchMutate
  uint32_t key = 0;       // Zipf-drawn vertex id
  uint64_t seq = 0;       // generator sequence number (dedup / rng stream)
  uint64_t arrival_ns = 0;
};

static_assert(sizeof(Request) <= 32, "Request should stay queue-friendly");

/// Final disposition of an offered request. Every offered request gets
/// exactly one: conservation (offered == admitted + shed + deferred) is
/// an invariant checked by tests, stress_fuzz --serve-chaos, and
/// serve_bench itself.
enum class Disposition : uint8_t {
  kAdmitted = 0,  // executed (possibly after a deferral round-trip)
  kShed,          // rejected; never executed
  kDeferred,      // parked in the defer queue and still there at shutdown
};

}  // namespace serving
}  // namespace tufast

#endif  // TUFAST_SERVING_REQUEST_H_
