#ifndef TUFAST_RUNTIME_WORKLIST_H_
#define TUFAST_RUNTIME_WORKLIST_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <queue>
#include <type_traits>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/spin.h"

namespace tufast {

/// Scheduling disciplines for worklist-driven algorithms. The paper's
/// Bellman-Ford vs SPFA example (Fig. 3) is exactly "same algorithm, FIFO
/// queue vs priority queue" — TuFast supports both because TM imposes no
/// batching constraints.
///
/// ConcurrentQueue: mutex-protected MPMC FIFO.
template <typename T>
class ConcurrentQueue {
 public:
  ConcurrentQueue() = default;
  TUFAST_DISALLOW_COPY_AND_MOVE(ConcurrentQueue);

  void Push(T item) {
    std::lock_guard<std::mutex> guard(mutex_);
    items_.push_back(std::move(item));
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> guard(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return items_.empty();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

/// Mutex-protected MPMC priority queue; smallest priority pops first.
template <typename T, typename Priority>
class ConcurrentPriorityQueue {
 public:
  ConcurrentPriorityQueue() = default;
  TUFAST_DISALLOW_COPY_AND_MOVE(ConcurrentPriorityQueue);

  void Push(T item, Priority priority) {
    std::lock_guard<std::mutex> guard(mutex_);
    items_.emplace(priority, std::move(item));
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> guard(mutex_);
    if (items_.empty()) return std::nullopt;
    // top() returns a const reference, so moving through it would silently
    // copy T. Casting away const is safe here: the element is removed by
    // the pop() below and never compared again, so the moved-from state is
    // unobservable to the heap invariant.
    T item = std::move(
        const_cast<std::pair<Priority, T>&>(items_.top()).second);
    items_.pop();
    return item;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return items_.empty();
  }

 private:
  struct Greater {
    bool operator()(const std::pair<Priority, T>& a,
                    const std::pair<Priority, T>& b) const {
      return a.first > b.first;
    }
  };
  mutable std::mutex mutex_;
  std::priority_queue<std::pair<Priority, T>, std::vector<std::pair<Priority, T>>,
                      Greater>
      items_;
};

/// Drives workers against a worklist until it drains: terminates when the
/// list is empty AND no worker is mid-item (a mid-item worker may still
/// push). `queue` needs TryPop/Empty; `fn(worker_id, item)` may push.
/// `active` counts workers that may still pop or push; share one zero-
/// initialized counter across all workers of a drain.
///
/// A worker registers in `active` BEFORE it pops and stays registered
/// until a pop comes back empty — never between pop and item execution.
/// (The previous scheme incremented only after a successful pop, so a
/// peer could observe `active == 0 && Empty()` and exit while an item —
/// which may push more work — was in flight between pop and increment.)
/// Quiescence proof sketch: a worker returns only after observing
/// `active == 0` with the queue empty; pushes happen only inside fn,
/// which runs while its worker is registered; and a registered worker
/// deregisters only after its own TryPop returned empty — so an
/// unconsumed item would imply a still-registered worker, contradicting
/// the `active == 0` observation (the queue mutex orders the accesses).
///
/// `Failpoints` (common/failpoints.h) lets the stress harness inject
/// schedule perturbation between pop and execution — the exact window of
/// the historical termination race.
/// Batched variant of DrainWorklist for the batch executor
/// (tm/batch_executor.h): pops up to `max_batch` items while registered
/// and hands them to `fn(worker_id, items)` as one span, so the caller
/// can fuse their transactions. The termination protocol is unchanged —
/// the worker registers before its first pop of a batch and deregisters
/// only after a pop returned empty with nothing batched, so a mid-batch
/// worker (which may still push) always holds `active`.
template <typename Failpoints = NullFailpoints, typename Queue, typename Fn>
void DrainWorklistBatched(Queue& queue, int worker_id,
                          std::atomic<int>& active, size_t max_batch,
                          Fn&& fn) {
  using Item = std::decay_t<decltype(*queue.TryPop())>;
  std::vector<Item> batch;
  batch.reserve(max_batch);
  Backoff backoff;
  active.fetch_add(1, std::memory_order_acq_rel);
  while (true) {
    batch.clear();
    while (batch.size() < max_batch) {
      auto item = queue.TryPop();
      if (!item.has_value()) break;
      if constexpr (Failpoints::kEnabled) {
        Failpoints::Hit(FailSite::kWorklistPop, worker_id);
      }
      batch.push_back(std::move(*item));
    }
    if (!batch.empty()) {
      fn(worker_id, batch);
      backoff.Reset();
      continue;
    }
    active.fetch_sub(1, std::memory_order_acq_rel);
    while (queue.Empty()) {
      if (active.load(std::memory_order_acquire) == 0) return;
      backoff.Pause();
    }
    active.fetch_add(1, std::memory_order_acq_rel);
    backoff.Reset();
  }
}

template <typename Failpoints = NullFailpoints, typename Queue, typename Fn>
void DrainWorklist(Queue& queue, int worker_id, std::atomic<int>& active,
                   Fn&& fn) {
  Backoff backoff;
  active.fetch_add(1, std::memory_order_acq_rel);
  while (true) {
    auto item = queue.TryPop();
    if (item.has_value()) {
      if constexpr (Failpoints::kEnabled) {
        Failpoints::Hit(FailSite::kWorklistPop, worker_id);
      }
      fn(worker_id, *item);
      backoff.Reset();
      continue;
    }
    active.fetch_sub(1, std::memory_order_acq_rel);
    while (queue.Empty()) {
      if (active.load(std::memory_order_acquire) == 0) return;
      backoff.Pause();
    }
    active.fetch_add(1, std::memory_order_acq_rel);
    backoff.Reset();
  }
}

}  // namespace tufast

#endif  // TUFAST_RUNTIME_WORKLIST_H_
