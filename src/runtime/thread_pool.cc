#include "runtime/thread_pool.h"

namespace tufast {

ThreadPool::ThreadPool(int num_threads) {
  TUFAST_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::RunOnAll(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  remaining_ = num_threads();
  ++generation_;
  work_ready_.notify_all();
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(int)>* job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(worker_id);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (--remaining_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace tufast
