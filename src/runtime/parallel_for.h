#ifndef TUFAST_RUNTIME_PARALLEL_FOR_H_
#define TUFAST_RUNTIME_PARALLEL_FOR_H_

#include <atomic>
#include <cstdint>

#include "runtime/thread_pool.h"

namespace tufast {

/// Dynamically load-balanced parallel loop over [begin, end). Workers
/// claim `grain`-sized chunks from a shared cursor; `fn(worker_id, lo,
/// hi)` processes one chunk. Dynamic chunking matters for power-law
/// graphs where per-vertex work varies by orders of magnitude.
template <typename Fn>
void ParallelForChunked(ThreadPool& pool, uint64_t begin, uint64_t end,
                        uint64_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  std::atomic<uint64_t> cursor{begin};
  pool.RunOnAll([&](int worker_id) {
    while (true) {
      const uint64_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const uint64_t hi = lo + grain < end ? lo + grain : end;
      fn(worker_id, lo, hi);
    }
  });
}

/// Per-element convenience wrapper: `fn(worker_id, index)`.
template <typename Fn>
void ParallelFor(ThreadPool& pool, uint64_t begin, uint64_t end,
                 uint64_t grain, Fn&& fn) {
  ParallelForChunked(pool, begin, end, grain,
                     [&fn](int worker_id, uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i) fn(worker_id, i);
                     });
}

}  // namespace tufast

#endif  // TUFAST_RUNTIME_PARALLEL_FOR_H_
