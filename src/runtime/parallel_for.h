#ifndef TUFAST_RUNTIME_PARALLEL_FOR_H_
#define TUFAST_RUNTIME_PARALLEL_FOR_H_

#include <atomic>
#include <cstdint>

#include "runtime/thread_pool.h"

namespace tufast {

/// Dynamically load-balanced parallel loop over [begin, end). Workers
/// claim `grain`-sized chunks from a shared cursor; `fn(worker_id, lo,
/// hi)` processes one chunk. Dynamic chunking matters for power-law
/// graphs where per-vertex work varies by orders of magnitude.
template <typename Fn>
void ParallelForChunked(ThreadPool& pool, uint64_t begin, uint64_t end,
                        uint64_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  std::atomic<uint64_t> cursor{begin};
  // Fast-path safety: the cursor overshoots `end` by at most
  // (nthreads + 1) * grain — one grain for the claim that crosses end
  // plus one final fetch_add per worker before it observes lo >= end. The
  // guard requires end + (nthreads + 1) * grain <= UINT64_MAX, written
  // division-side so the margin product itself cannot overflow.
  const uint64_t workers = static_cast<uint64_t>(pool.num_threads());
  if (grain <= (UINT64_MAX - end) / (workers + 1)) {
    // Fast path: neither `lo + grain` nor the cursor's overshoot can
    // wrap, so the cheap fetch_add claim loop is sound.
    pool.RunOnAll([&](int worker_id) {
      while (true) {
        const uint64_t lo = cursor.fetch_add(grain, std::memory_order_relaxed);
        if (lo >= end) return;
        const uint64_t hi = lo + grain < end ? lo + grain : end;
        fn(worker_id, lo, hi);
      }
    });
    return;
  }
  // Ranges ending near UINT64_MAX: the fetch_add scheme breaks twice —
  // `lo + grain` wraps (a wrapped `hi` < `lo` silently skips the tail
  // chunk) and the cursor itself can wrap past zero, handing out already
  // processed indices. Claim chunks with a capped CAS instead: the
  // cursor never exceeds `end`, so no expression here can overflow.
  pool.RunOnAll([&](int worker_id) {
    uint64_t lo = cursor.load(std::memory_order_relaxed);
    while (lo < end) {
      const uint64_t remaining = end - lo;
      const uint64_t hi = lo + (grain < remaining ? grain : remaining);
      if (cursor.compare_exchange_weak(lo, hi, std::memory_order_relaxed)) {
        fn(worker_id, lo, hi);
        lo = cursor.load(std::memory_order_relaxed);
      }
      // CAS failure reloads `lo` in place; retry from the fresh cursor.
    }
  });
}

/// Per-element convenience wrapper: `fn(worker_id, index)`.
template <typename Fn>
void ParallelFor(ThreadPool& pool, uint64_t begin, uint64_t end,
                 uint64_t grain, Fn&& fn) {
  ParallelForChunked(pool, begin, end, grain,
                     [&fn](int worker_id, uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i) fn(worker_id, i);
                     });
}

}  // namespace tufast

#endif  // TUFAST_RUNTIME_PARALLEL_FOR_H_
