#ifndef TUFAST_RUNTIME_THREAD_POOL_H_
#define TUFAST_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/compiler.h"

namespace tufast {

/// Persistent pool of worker threads executing SPMD jobs: RunOnAll(fn)
/// invokes fn(worker_id) on every worker and returns when all finish.
/// Worker ids are stable in [0, num_threads) and double as TM slot ids.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  TUFAST_DISALLOW_COPY_AND_MOVE(ThreadPool);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Blocks until every worker has run `fn(worker_id)` once. Not
  /// reentrant: only the owning thread may call it, one job at a time.
  void RunOnAll(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int worker_id);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tufast

#endif  // TUFAST_RUNTIME_THREAD_POOL_H_
