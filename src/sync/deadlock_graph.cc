#include "sync/deadlock_graph.h"

#include <algorithm>

namespace tufast {

void DeadlockGraph::AddHolder(VertexId v, int slot, bool exclusive) {
  // Validate before the int16_t narrowing below and before this slot id
  // can reach the fixed-size waiting_/is_waiting_ arrays: an out-of-range
  // slot would silently alias another worker's wait state and corrupt
  // cycle detection.
  TUFAST_CHECK(slot >= 0 && slot < kMaxHtmThreads);
  std::lock_guard<std::mutex> guard(mutex_);
  holders_[v].push_back(Holder{static_cast<int16_t>(slot), exclusive});
}

void DeadlockGraph::RemoveHolder(VertexId v, int slot, bool exclusive) {
  TUFAST_CHECK(slot >= 0 && slot < kMaxHtmThreads);
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = holders_.find(v);
  if (it == holders_.end()) return;
  auto& vec = it->second;
  for (size_t i = 0; i < vec.size(); ++i) {
    if (vec[i].slot == slot && vec[i].exclusive == exclusive) {
      vec[i] = vec.back();
      vec.pop_back();
      break;
    }
  }
  if (vec.empty()) holders_.erase(it);
}

bool DeadlockGraph::SetWaitingAndCheck(int slot, VertexId v) {
  TUFAST_CHECK(slot >= 0 && slot < kMaxHtmThreads);
  std::lock_guard<std::mutex> guard(mutex_);
  waiting_[slot] = v;
  is_waiting_[slot] = true;
  if (HasCycleFromLocked(slot)) {
    is_waiting_[slot] = false;
    return true;
  }
  return false;
}

void DeadlockGraph::ClearWaiting(int slot) {
  TUFAST_CHECK(slot >= 0 && slot < kMaxHtmThreads);
  std::lock_guard<std::mutex> guard(mutex_);
  is_waiting_[slot] = false;
}

size_t DeadlockGraph::HolderEntriesForTest() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t n = 0;
  for (const auto& [v, vec] : holders_) n += vec.size();
  return n;
}

bool DeadlockGraph::HasCycleFromLocked(int origin) const {
  // DFS over "slot s waits for slot t" edges: t holds the vertex s waits
  // on. A path back to `origin` is a deadlock. Self-edges are skipped
  // (lock upgrades wait on vertices they themselves hold).
  bool visited[kMaxHtmThreads] = {};
  int stack[kMaxHtmThreads];
  int depth = 0;
  stack[depth++] = origin;
  visited[origin] = true;
  while (depth > 0) {
    const int s = stack[--depth];
    if (!is_waiting_[s]) continue;
    const auto it = holders_.find(waiting_[s]);
    if (it == holders_.end()) continue;
    for (const Holder& h : it->second) {
      if (h.slot == s) continue;
      if (h.slot == origin) return true;
      if (!visited[h.slot]) {
        visited[h.slot] = true;
        stack[depth++] = h.slot;
      }
    }
  }
  return false;
}

}  // namespace tufast
