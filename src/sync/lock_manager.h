#ifndef TUFAST_SYNC_LOCK_MANAGER_H_
#define TUFAST_SYNC_LOCK_MANAGER_H_

#include "common/failpoints.h"
#include "common/spin.h"
#include "common/types.h"
#include "sync/deadlock_graph.h"
#include "sync/lock_table.h"
#include "sync/progress_signals.h"

namespace tufast {

/// How L mode avoids deadlocks (paper §IV-E).
enum class DeadlockPolicy {
  /// Waits-for-graph cycle detection; the waiter that closes a cycle
  /// aborts. Safe for arbitrary access patterns (the default). Right for
  /// TuFast's L mode, whose transactions are rare and huge, so the
  /// per-acquire bookkeeping amortizes.
  kDetection,
  /// No detection: the user guarantees every transaction acquires vertices
  /// in one global order (e.g. ascending id over a neighbor scan), so
  /// cycles cannot form and the bookkeeping cost is saved.
  kPrevention,
  /// No bookkeeping; a wait that exceeds a short bound aborts the waiter
  /// (deadlock recovery by timeout). Right for 2PL over millions of tiny
  /// transactions, where per-acquire graph maintenance would dominate.
  kTimeout,
};

/// Blocking lock acquisition for L-mode transactions, on top of the
/// shared try-lock LockTable (or any interface-compatible conflict-space
/// table, e.g. sharding/sharded_lock_table.h — the `Table` parameter
/// defaults to the classic shared table). Returns false from Acquire*
/// when the caller was picked as a deadlock victim (or a liveness bound
/// expired): the caller must release everything it holds and restart the
/// transaction.
template <typename Htm, typename Table = LockTable<Htm>>
class LockManager {
 public:
  using Failpoints = HtmFailpoints<Htm>;

  LockManager(Table& table, DeadlockPolicy policy = DeadlockPolicy::kDetection)
      : table_(table), policy_(policy) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(LockManager);

  Table& table() { return table_; }
  DeadlockPolicy policy() const { return policy_; }

  /// Telemetry hook fired on the victim's own thread whenever an
  /// Acquire*/Upgrade picks the caller as deadlock victim: `cycle` is
  /// true when waits-for cycle detection fired, false when a liveness
  /// wait bound expired (timeout recovery). Cold path only — the check
  /// sits behind lock-acquisition failure, so registering no hook (the
  /// NullTelemetry build) costs one untaken branch per victim abort.
  using VictimHook = void (*)(void* ctx, int slot, VertexId vertex,
                              bool cycle);
  void SetVictimHook(VictimHook hook, void* ctx) {
    victim_hook_ = hook;
    victim_ctx_ = ctx;
  }

  /// Wires the progress-guard starvation signals (DESIGN.md "Progress
  /// guard") into victim selection. Optional: with no signals installed
  /// (or none raised) every path below behaves exactly as before.
  ///
  /// A *protected* slot (starved past the first escalation threshold, or
  /// holding the global starvation token) ages wound-wait-style: it is
  /// skipped by injected victim failpoints, and the single slot with
  /// cycle priority (ProgressSignals::HasCyclePriority — token holder,
  /// else lowest-id starved slot) does not self-victimize when its wait
  /// edge would close a cycle; the other parties break the cycle through
  /// their own wait bounds or closure checks instead. While the
  /// token is held by another slot, waiters get a short deferral bound
  /// so they abort early, release their lock sets, and let the token
  /// holder (whose own bound is extended) drain the conflict.
  void SetProgressSignals(const ProgressSignals* signals) {
    progress_ = signals;
  }

  bool AcquireShared(int slot, VertexId v) {
    return AcquireLoop(slot, v, [&] { return table_.TryLockShared(v); },
                       /*exclusive=*/false);
  }

  bool AcquireExclusive(int slot, VertexId v) {
    return AcquireLoop(slot, v, [&] { return table_.TryLockExclusive(v); },
                       /*exclusive=*/true);
  }

  /// Upgrades a held shared lock to exclusive. On success the shared
  /// registration is replaced by an exclusive one. On failure (deadlock
  /// victim) the shared lock is STILL HELD; the caller releases it during
  /// transaction abort as usual.
  bool Upgrade(int slot, VertexId v) {
    if constexpr (Failpoints::kEnabled) {
      // Forced victim before any state change: the shared registration is
      // untouched, exactly the "shared lock still held" failure contract.
      // Protected (starved/token-holding) slots are immune to injection —
      // that immunity is what bounds a transaction's injected re-aborts.
      if (!Protected(slot) &&
          Failpoints::Hit(FailSite::kLockUpgrade, slot) ==
              FailAction::kFail) {
        NotifyVictim(slot, v, /*cycle=*/false);
        return false;
      }
    }
    if (table_.TryUpgrade(v)) {
      SwapHolderRegistration(slot, v);
      return true;
    }
    if (policy_ != DeadlockPolicy::kDetection) {
      Backoff backoff;
      uint64_t waited = 0;
      const uint64_t bound = WaitBoundFor(slot);
      while (!table_.TryUpgrade(v)) {
        if (++waited > bound) {
          NotifyVictim(slot, v, /*cycle=*/false);
          return false;
        }
        backoff.Pause();
      }
      SwapHolderRegistration(slot, v);
      return true;
    }
    if (graph_.SetWaitingAndCheck(slot, v) && !CyclePriority(slot)) {
      NotifyVictim(slot, v, /*cycle=*/true);
      return false;
    }
    // The one cycle-priority slot whose edge would have closed a cycle
    // falls through here with the edge rolled back: it spins under its
    // own (larger) bound while the other cycle parties time out.
    Backoff backoff;
    uint64_t waited = 0;
    const uint64_t bound = WaitBoundFor(slot);
    while (!table_.TryUpgrade(v)) {
      if (++waited > bound) {
        graph_.ClearWaiting(slot);
        NotifyVictim(slot, v, /*cycle=*/false);
        return false;
      }
      backoff.Pause();
    }
    graph_.ClearWaiting(slot);
    SwapHolderRegistration(slot, v);
    return true;
  }

  void ReleaseShared(int slot, VertexId v) {
    if (policy_ == DeadlockPolicy::kDetection) {
      graph_.RemoveHolder(v, slot, /*exclusive=*/false);
    }
    table_.UnlockShared(v);
  }

  void ReleaseExclusive(int slot, VertexId v) {
    if (policy_ == DeadlockPolicy::kDetection) {
      graph_.RemoveHolder(v, slot, /*exclusive=*/true);
    }
    table_.UnlockExclusive(v);
  }

 private:
  // Liveness bound: a stuck wait eventually turns into a victim abort
  // instead of hanging the worker forever (the transaction then retries).
  static constexpr uint64_t kMaxWaitIterations = 1u << 20;
  // kTimeout policy: short bound, since a timeout is the *only* deadlock
  // recovery there (roughly a few ms of yielding).
  static constexpr uint64_t kTimeoutWaitIterations = 3000;
  // Starvation-token holder: extended safety-net bound. The holder is
  // supposed to win every wait (other parties defer), so this only fires
  // if the progress machinery itself is wedged.
  static constexpr uint64_t kProtectedWaitIterations = 1u << 22;
  // Wait bound while another slot holds the starvation token: abort
  // early (timeout victim), release the lock set, back off — this is
  // what guarantees the token holder's next attempt runs against a
  // draining lock table.
  static constexpr uint64_t kDeferralWaitIterations = 2000;

  uint64_t WaitBound() const {
    return policy_ == DeadlockPolicy::kTimeout ? kTimeoutWaitIterations
                                               : kMaxWaitIterations;
  }

  bool Protected(int slot) const {
    return progress_ != nullptr && progress_->IsProtected(slot);
  }

  // Cycle-closure immunity is narrower than injection immunity: only one
  // slot system-wide (token holder, else lowest-id starved slot) may
  // out-wait a cycle. Two mutually-immune waiters would each roll back
  // their wait edge — leaving no visible cycle and no victim — and then
  // re-collide after their full wait bounds in lockstep, a livelock.
  bool CyclePriority(int slot) const {
    return progress_ != nullptr && progress_->HasCyclePriority(slot);
  }

  uint64_t WaitBoundFor(int slot) const {
    if (progress_ != nullptr) {
      if (progress_->TokenHolder() == slot) return kProtectedWaitIterations;
      if (!progress_->IsStarved(slot) &&
          progress_->TokenHeldElsewhere(slot)) {
        const uint64_t bound = WaitBound();
        return bound < kDeferralWaitIterations ? bound
                                               : kDeferralWaitIterations;
      }
    }
    return WaitBound();
  }

  template <typename TryFn>
  bool AcquireLoop(int slot, VertexId v, TryFn&& try_lock, bool exclusive) {
    if constexpr (Failpoints::kEnabled) {
      // Forced victim before any acquisition: the caller must release its
      // whole lock set and restart, the same contract as a real victim.
      // Protected slots are immune (see SetProgressSignals): injection
      // cannot re-victimize a transaction past its escalation threshold.
      if (!Protected(slot) &&
          Failpoints::Hit(exclusive ? FailSite::kLockAcquireExclusive
                                    : FailSite::kLockAcquireShared,
                          slot) == FailAction::kFail) {
        NotifyVictim(slot, v, /*cycle=*/false);
        return false;
      }
    }
    if (try_lock()) {
      if (policy_ == DeadlockPolicy::kDetection) {
        graph_.AddHolder(v, slot, exclusive);
      }
      return true;
    }
    if (policy_ == DeadlockPolicy::kDetection &&
        graph_.SetWaitingAndCheck(slot, v) && !CyclePriority(slot)) {
      NotifyVictim(slot, v, /*cycle=*/true);
      return false;  // Waiting would close a cycle: we are the victim.
    }
    // The cycle-priority slot falls through on cycle closure (the edge
    // was rolled back): it out-waits the cycle while the other parties
    // hit their own bounds or closure checks, abort, and release.
    Backoff backoff;
    uint64_t waited = 0;
    const uint64_t bound = WaitBoundFor(slot);
    while (!try_lock()) {
      if (++waited > bound) {
        if (policy_ == DeadlockPolicy::kDetection) graph_.ClearWaiting(slot);
        NotifyVictim(slot, v, /*cycle=*/false);
        return false;
      }
      backoff.Pause();
    }
    if (policy_ == DeadlockPolicy::kDetection) {
      graph_.ClearWaiting(slot);
      graph_.AddHolder(v, slot, exclusive);
    }
    return true;
  }

  void SwapHolderRegistration(int slot, VertexId v) {
    if (policy_ == DeadlockPolicy::kDetection) {
      graph_.RemoveHolder(v, slot, /*exclusive=*/false);
      graph_.AddHolder(v, slot, /*exclusive=*/true);
    }
  }

  void NotifyVictim(int slot, VertexId v, bool cycle) {
    if (victim_hook_ != nullptr) victim_hook_(victim_ctx_, slot, v, cycle);
  }

  Table& table_;
  const DeadlockPolicy policy_;
  DeadlockGraph graph_;
  VictimHook victim_hook_ = nullptr;
  void* victim_ctx_ = nullptr;
  const ProgressSignals* progress_ = nullptr;
};

}  // namespace tufast

#endif  // TUFAST_SYNC_LOCK_MANAGER_H_
