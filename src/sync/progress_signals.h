#ifndef TUFAST_SYNC_PROGRESS_SIGNALS_H_
#define TUFAST_SYNC_PROGRESS_SIGNALS_H_

#include <atomic>
#include <cstdint>

#include "htm/htm_config.h"

namespace tufast {

/// Cross-worker starvation flags shared between the TM-layer progress
/// guard (tm/progress_guard.h) and the lock substrate. Lives in sync/ so
/// LockManager can consult it for victim selection and wait bounds
/// without depending on the scheduler layer.
///
/// Two signals, both advisory and both only ever set by the worker they
/// describe (the guard escalates a transaction strictly while it holds
/// no locks, so reading them under the lock manager's wait loops cannot
/// deadlock with their publication):
///
///  * starved bit — the slot's current transaction crossed the first
///    escalation threshold. A starved slot is never picked as a forced
///    (injected) victim, and the single highest-priority starved slot
///    (see HasCyclePriority) does not self-victimize on cycle closure —
///    wound-wait-style aging: the other parties of its cycle break it
///    via their own wait bounds or closure checks.
///  * starvation token — a single global slot id past the second
///    threshold. The holder is guaranteed to commit: every other waiter
///    gets a short deferral wait bound (abort early, release, back off),
///    and the batch executor pauses new fusion windows while the token
///    is held. At most one holder at a time, so the extra serialization
///    is bounded by the (rare) escalations, not by throughput.
class ProgressSignals {
 public:
  ProgressSignals() = default;

  void SetStarved(int slot) {
    starved_mask_.fetch_or(Bit(slot), std::memory_order_release);
  }
  void ClearStarved(int slot) {
    starved_mask_.fetch_and(~Bit(slot), std::memory_order_release);
  }
  bool IsStarved(int slot) const {
    return (starved_mask_.load(std::memory_order_acquire) & Bit(slot)) != 0;
  }
  bool AnyStarved() const {
    return starved_mask_.load(std::memory_order_acquire) != 0;
  }

  /// Claims the global token for `slot`. Returns true only on a fresh
  /// acquisition; false when any slot (including `slot`) already holds
  /// it, so callers can count acquisitions without double counting.
  bool TryAcquireToken(int slot) {
    int expected = kNoHolder;
    return token_slot_.compare_exchange_strong(expected, slot,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire);
  }

  /// Releases the token iff `slot` holds it (idempotent otherwise).
  void ReleaseToken(int slot) {
    int expected = slot;
    token_slot_.compare_exchange_strong(expected, kNoHolder,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }

  int TokenHolder() const {
    return token_slot_.load(std::memory_order_acquire);
  }
  bool TokenHeld() const { return TokenHolder() != kNoHolder; }
  bool TokenHeldElsewhere(int slot) const {
    const int holder = TokenHolder();
    return holder != kNoHolder && holder != slot;
  }

  /// A protected slot keeps its aged priority: it is skipped by injected
  /// victim failpoints.
  bool IsProtected(int slot) const {
    return IsStarved(slot) || TokenHolder() == slot;
  }

  /// Cycle-closure immunity is stronger than injection immunity and must
  /// form a total order: if two starved slots could both out-wait the
  /// same cycle, each would roll back its wait edge, spin out a full
  /// wait bound, get victimized by timeout, retry, and re-collide — a
  /// lockstep livelock with no unprotected party left to break the
  /// cycle. So at most ONE slot holds cycle priority at any instant:
  /// the token holder if there is one, else the lowest-id starved slot.
  /// Every other slot — starved or not — self-victimizes when its wait
  /// would close a cycle, which keeps deadlock resolution prompt.
  bool HasCyclePriority(int slot) const {
    const int holder = TokenHolder();
    if (holder != kNoHolder) return holder == slot;
    const uint64_t mask = starved_mask_.load(std::memory_order_acquire);
    const uint64_t bit = Bit(slot);
    return (mask & bit) != 0 && (mask & (bit - 1)) == 0;
  }

 private:
  static constexpr int kNoHolder = -1;
  static constexpr uint64_t Bit(int slot) {
    return uint64_t{1} << (slot & (kMaxHtmThreads - 1));
  }

  std::atomic<uint64_t> starved_mask_{0};
  std::atomic<int> token_slot_{kNoHolder};
};

}  // namespace tufast

#endif  // TUFAST_SYNC_PROGRESS_SIGNALS_H_
