#ifndef TUFAST_SYNC_DEADLOCK_GRAPH_H_
#define TUFAST_SYNC_DEADLOCK_GRAPH_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/compiler.h"
#include "common/types.h"
#include "htm/htm_config.h"

namespace tufast {

/// Waits-for graph for L-mode (blocking 2PL) transactions, paper §IV-E.
///
/// Participants are worker slots (the same ids as HTM transaction slots).
/// Only L-mode transactions register: H and O mode use try-locks and never
/// wait, so they cannot be part of a hold-and-wait cycle — exactly the
/// observation the paper uses to restrict detection to L mode. Since
/// L-mode transactions are the rare huge-degree vertices, a single mutex
/// over the whole structure is cheap and keeps detection trivially
/// consistent.
///
/// Deadlock resolution: the thread whose new wait edge closes a cycle
/// aborts itself (SetWaitingAndCheck returns true). Every cycle is closed
/// by some waiter's edge insertion, so every deadlock is detected by the
/// thread that completes it.
///
/// Slot ids are range-checked (TUFAST_CHECK) at every entry point: they
/// index fixed kMaxHtmThreads arrays and are narrowed to int16_t, so an
/// out-of-range id would corrupt another worker's wait state instead of
/// failing loudly.
class DeadlockGraph {
 public:
  DeadlockGraph() = default;
  TUFAST_DISALLOW_COPY_AND_MOVE(DeadlockGraph);

  /// Records that `slot` now holds `v` (exclusive or shared).
  void AddHolder(VertexId v, int slot, bool exclusive);

  /// Removes one holder registration of `slot` on `v`.
  void RemoveHolder(VertexId v, int slot, bool exclusive);

  /// Declares that `slot` is about to block waiting for `v` and checks
  /// for a waits-for cycle through `slot`. Returns true when waiting
  /// would deadlock — the caller must NOT wait and should abort; the
  /// wait registration is rolled back internally in that case.
  bool SetWaitingAndCheck(int slot, VertexId v);

  /// Clears `slot`'s waiting edge after the lock was acquired.
  void ClearWaiting(int slot);

  /// Number of registered holder entries (for tests).
  size_t HolderEntriesForTest() const;

 private:
  struct Holder {
    int16_t slot;
    bool exclusive;
  };

  bool HasCycleFromLocked(int origin) const;

  mutable std::mutex mutex_;
  std::unordered_map<VertexId, std::vector<Holder>> holders_;
  VertexId waiting_[kMaxHtmThreads] = {};
  bool is_waiting_[kMaxHtmThreads] = {};
};

}  // namespace tufast

#endif  // TUFAST_SYNC_DEADLOCK_GRAPH_H_
