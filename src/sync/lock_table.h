#ifndef TUFAST_SYNC_LOCK_TABLE_H_
#define TUFAST_SYNC_LOCK_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/types.h"
#include "htm/htm_config.h"

namespace tufast {

/// Per-vertex reader-writer lock words shared by all three TuFast modes
/// (paper §IV-A: the sub-schedulers are integrated into one HyTM by
/// sharing the same locks and metadata).
///
/// Word layout: bit 31 = exclusive flag, bits 0..30 = shared-holder count.
/// The words are plain TmWords so H/O-mode transactions can *subscribe*
/// to them with a transactional load (lock elision): every successful
/// acquisition then dooms subscribed hardware transactions via
/// Htm::NotifyNonTxWrite — with the native backend the CAS itself does
/// this through cache coherence.
///
/// Only try-lock acquisition lives here; blocking waits and deadlock
/// handling are LockManager's job (L mode only — H/O never wait, which is
/// why they need no deadlock detection, paper §IV-E).
template <typename Htm>
class LockTable {
 public:
  using Failpoints = HtmFailpoints<Htm>;

  static constexpr TmWord kExclusiveBit = TmWord{1} << 31;

  LockTable(Htm& htm, size_t num_vertices)
      : htm_(htm), words_(num_vertices, 0) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(LockTable);

  size_t size() const { return words_.size(); }

  /// Address of the lock word, for transactional subscription.
  const TmWord* WordAddr(VertexId v) const { return &words_[v]; }

  /// Compatibility predicates over a subscribed word value.
  static bool SharedCompatible(TmWord word) {
    return (word & kExclusiveBit) == 0;
  }
  static bool Free(TmWord word) { return word == 0; }

  bool TryLockShared(VertexId v) {
    TmWord expected = __atomic_load_n(&words_[v], __ATOMIC_RELAXED);
    while (SharedCompatible(expected)) {
      if (__atomic_compare_exchange_n(&words_[v], &expected, expected + 1,
                                      /*weak=*/false, __ATOMIC_ACQUIRE,
                                      __ATOMIC_RELAXED)) {
        htm_.NotifyNonTxWrite(&words_[v]);
        return true;
      }
    }
    return false;
  }

  bool TryLockExclusive(VertexId v) {
    if constexpr (Failpoints::kEnabled) {
      // Synthesized contention: report "busy" without touching the word.
      // Exercises O-mode commit lock-busy retries and L-mode wait loops.
      if (Failpoints::Hit(FailSite::kLockTryExclusive, /*slot=*/-1) ==
          FailAction::kFail) {
        return false;
      }
    }
    TmWord expected = 0;
    if (__atomic_compare_exchange_n(&words_[v], &expected, kExclusiveBit,
                                    /*weak=*/false, __ATOMIC_ACQUIRE,
                                    __ATOMIC_RELAXED)) {
      htm_.NotifyNonTxWrite(&words_[v]);
      return true;
    }
    return false;
  }

  /// Shared -> exclusive upgrade; succeeds only for a sole shared holder.
  bool TryUpgrade(VertexId v) {
    if constexpr (Failpoints::kEnabled) {
      // Synthesized upgrade contention: behaves exactly like a second
      // shared holder showing up, the hard case of the upgrade protocol.
      if (Failpoints::Hit(FailSite::kLockTryUpgrade, /*slot=*/-1) ==
          FailAction::kFail) {
        return false;
      }
    }
    TmWord expected = 1;
    if (__atomic_compare_exchange_n(&words_[v], &expected, kExclusiveBit,
                                    /*weak=*/false, __ATOMIC_ACQUIRE,
                                    __ATOMIC_RELAXED)) {
      htm_.NotifyNonTxWrite(&words_[v]);
      return true;
    }
    return false;
  }

  void UnlockShared(VertexId v) {
    const TmWord prev = __atomic_fetch_sub(&words_[v], 1, __ATOMIC_RELEASE);
    TUFAST_DCHECK((prev & kExclusiveBit) == 0 && (prev & ~kExclusiveBit) > 0);
    htm_.NotifyNonTxWrite(&words_[v]);
  }

  void UnlockExclusive(VertexId v) {
    TUFAST_DCHECK(__atomic_load_n(&words_[v], __ATOMIC_RELAXED) ==
                  kExclusiveBit);
    __atomic_store_n(&words_[v], 0, __ATOMIC_RELEASE);
    htm_.NotifyNonTxWrite(&words_[v]);
  }

  /// Current raw word (non-transactional): for O-mode validation.
  TmWord LoadWord(VertexId v) const {
    return __atomic_load_n(&words_[v], __ATOMIC_ACQUIRE);
  }

 private:
  Htm& htm_;
  std::vector<TmWord> words_;
};

}  // namespace tufast

#endif  // TUFAST_SYNC_LOCK_TABLE_H_
