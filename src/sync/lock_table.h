#ifndef TUFAST_SYNC_LOCK_TABLE_H_
#define TUFAST_SYNC_LOCK_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/types.h"
#include "htm/htm_config.h"

namespace tufast {

/// Uniform construction options for the pluggable conflict-space tables
/// (LockTable below and sharding/sharded_lock_table.h). Schedulers that
/// are templated on the table type construct it as
/// `Table(htm, num_vertices, options)`; LockTable ignores `shards`.
struct LockTableOptions {
  bool padded = false;
  uint32_t shards = 1;
};

/// Per-vertex reader-writer lock words shared by all three TuFast modes
/// (paper §IV-A: the sub-schedulers are integrated into one HyTM by
/// sharing the same locks and metadata).
///
/// Word layout: bit 31 = exclusive flag, bits 0..30 = shared-holder count.
/// The words are plain TmWords so H/O-mode transactions can *subscribe*
/// to them with a transactional load (lock elision): every successful
/// acquisition then dooms subscribed hardware transactions via
/// Htm::NotifyNonTxWrite — with the native backend the CAS itself does
/// this through cache coherence.
///
/// Only try-lock acquisition lives here; blocking waits and deadlock
/// handling are LockManager's job (L mode only — H/O never wait, which is
/// why they need no deadlock detection, paper §IV-E).
///
/// Layout: dense by default (8 lock words per cache line — fused batch
/// windows that touch neighboring vertices then subscribe 8 words with
/// one line). `padded = true` spreads the words one per cache line,
/// trading 8x footprint for zero false sharing between adjacent
/// vertices' acquisitions — the right call for scattered high-contention
/// access patterns (see DESIGN.md "Batch executor").
template <typename Htm>
class LockTable {
 public:
  using Failpoints = HtmFailpoints<Htm>;

  static constexpr TmWord kExclusiveBit = TmWord{1} << 31;
  /// log2(lock words per cache line): padded mode strides by this.
  static constexpr unsigned kPadShift = 3;
  static_assert((sizeof(TmWord) << kPadShift) == kCacheLineBytes);

  LockTable(Htm& htm, size_t num_vertices, bool padded = false)
      : htm_(htm),
        shift_(padded ? kPadShift : 0),
        num_vertices_(num_vertices),
        words_(num_vertices << shift_, 0) {}
  LockTable(Htm& htm, size_t num_vertices, const LockTableOptions& opts)
      : LockTable(htm, num_vertices, opts.padded) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(LockTable);

  size_t size() const { return num_vertices_; }
  bool padded() const { return shift_ != 0; }

  /// Address of the lock word, for transactional subscription.
  const TmWord* WordAddr(VertexId v) const { return &words_[Idx(v)]; }

  /// Compatibility predicates over a subscribed word value.
  static bool SharedCompatible(TmWord word) {
    return (word & kExclusiveBit) == 0;
  }
  static bool Free(TmWord word) { return word == 0; }

  bool TryLockShared(VertexId v) {
    TmWord expected = __atomic_load_n(&words_[Idx(v)], __ATOMIC_RELAXED);
    while (SharedCompatible(expected)) {
      if (__atomic_compare_exchange_n(&words_[Idx(v)], &expected, expected + 1,
                                      /*weak=*/false, __ATOMIC_ACQUIRE,
                                      __ATOMIC_RELAXED)) {
        htm_.NotifyNonTxWrite(&words_[Idx(v)]);
        return true;
      }
    }
    return false;
  }

  bool TryLockExclusive(VertexId v) {
    if constexpr (Failpoints::kEnabled) {
      // Synthesized contention: report "busy" without touching the word.
      // Exercises O-mode commit lock-busy retries and L-mode wait loops.
      if (Failpoints::Hit(FailSite::kLockTryExclusive, /*slot=*/-1) ==
          FailAction::kFail) {
        return false;
      }
    }
    TmWord expected = 0;
    if (__atomic_compare_exchange_n(&words_[Idx(v)], &expected, kExclusiveBit,
                                    /*weak=*/false, __ATOMIC_ACQUIRE,
                                    __ATOMIC_RELAXED)) {
      htm_.NotifyNonTxWrite(&words_[Idx(v)]);
      return true;
    }
    return false;
  }

  /// Shared -> exclusive upgrade; succeeds only for a sole shared holder.
  bool TryUpgrade(VertexId v) {
    if constexpr (Failpoints::kEnabled) {
      // Synthesized upgrade contention: behaves exactly like a second
      // shared holder showing up, the hard case of the upgrade protocol.
      if (Failpoints::Hit(FailSite::kLockTryUpgrade, /*slot=*/-1) ==
          FailAction::kFail) {
        return false;
      }
    }
    TmWord expected = 1;
    if (__atomic_compare_exchange_n(&words_[Idx(v)], &expected, kExclusiveBit,
                                    /*weak=*/false, __ATOMIC_ACQUIRE,
                                    __ATOMIC_RELAXED)) {
      htm_.NotifyNonTxWrite(&words_[Idx(v)]);
      return true;
    }
    return false;
  }

  void UnlockShared(VertexId v) {
    const TmWord prev = __atomic_fetch_sub(&words_[Idx(v)], 1, __ATOMIC_RELEASE);
    TUFAST_DCHECK((prev & kExclusiveBit) == 0 && (prev & ~kExclusiveBit) > 0);
    htm_.NotifyNonTxWrite(&words_[Idx(v)]);
  }

  void UnlockExclusive(VertexId v) {
    TUFAST_DCHECK(__atomic_load_n(&words_[Idx(v)], __ATOMIC_RELAXED) ==
                  kExclusiveBit);
    __atomic_store_n(&words_[Idx(v)], 0, __ATOMIC_RELEASE);
    htm_.NotifyNonTxWrite(&words_[Idx(v)]);
  }

  /// Current raw word (non-transactional): for O-mode validation.
  TmWord LoadWord(VertexId v) const {
    return __atomic_load_n(&words_[Idx(v)], __ATOMIC_ACQUIRE);
  }

 private:
  size_t Idx(VertexId v) const { return size_t{v} << shift_; }

  Htm& htm_;
  const unsigned shift_;
  const size_t num_vertices_;
  std::vector<TmWord> words_;
};

}  // namespace tufast

#endif  // TUFAST_SYNC_LOCK_TABLE_H_
