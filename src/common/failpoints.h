#ifndef TUFAST_COMMON_FAILPOINTS_H_
#define TUFAST_COMMON_FAILPOINTS_H_

#include <cstdint>
#include <type_traits>

namespace tufast {

/// Compile-time pluggable fault injection (DESIGN.md "Failpoints and
/// schedule fuzzing"). Mirrors the telemetry pattern: every hook site in
/// the HTM emulation, the lock substrate and the TuFast router asks a
/// `Failpoints` policy what to do; the default `NullFailpoints` answers
/// "nothing" from a constexpr inline function, so release builds contain
/// no trace of the instrumentation. The active policy (`StressFailpoints`,
/// src/testing/failpoints.h) consults a seeded plan that can force aborts
/// at exact operation indices and perturb thread schedules with
/// randomized yields — the only way a 1-core host explores the rare
/// abort/fallback interleavings hybrid-TM correctness depends on.
///
/// Named hook sites. One enum across all layers so a single seeded plan
/// (and its replay trace) covers the whole stack.
enum class FailSite : uint8_t {
  kHtmLoad = 0,        // EmulatedHtm Tx::Load: force conflict/capacity
  kHtmStore,           // EmulatedHtm Tx::Store: force conflict/capacity
  kHtmCommit,          // EmulatedHtm Tx::Commit: force late conflict
  kLockAcquireShared,  // LockManager::AcquireShared: force victim abort
  kLockAcquireExclusive,  // LockManager::AcquireExclusive: force victim
  kLockUpgrade,           // LockManager::Upgrade: force victim abort
  kLockTryExclusive,      // LockTable::TryLockExclusive: force contention
  kLockTryUpgrade,        // LockTable::TryUpgrade: force upgrade busy
  kRouterSkipH,           // TuFast router: force H -> O demotion
  kRouterSkipO,           // TuFast router: force O -> L demotion
  kWorklistPop,           // DrainWorklist: perturb between pop and run
  kBreakerTrip,           // ContentionMonitor: force the breaker open
  kStarvationToken,       // L retry loop: force starvation escalation
  kVictimReabort,         // L retry loop: synthesize extra victim aborts
  kMailboxFull,           // Shard router: force a full-mailbox bounce
  kMessageReorder,        // Shard drain: rotate the drained batch order
  kVersionReclaim,        // MVCC EndInstall: force a reclamation pass
  kStaleEpoch,            // MVCC BeginSnapshot: stretch the pinned window
  kServeQueueFull,        // ServeEngine::Offer: force a run-queue bounce
  kServeDeferFull,        // ServeEngine defer path: force defer-queue full
  kCombinerSlotFull,      // Combiner announce: force a slot-array overflow
  kOwnerHandoff,          // Combiner collect: truncate the sweep mid-batch
  kWalTornWrite,          // WAL flush: corrupt a bit inside the tail record
  kWalShortWrite,         // WAL flush: persist only a prefix of the tail
  kCrashBeforeFsync,      // WAL flush: crash after write, before fsync
  kCheckpointPartial,     // Checkpoint: crash between tmp write and rename
  kNumSites
};

inline constexpr int kNumFailSites = static_cast<int>(FailSite::kNumSites);

inline const char* FailSiteName(FailSite s) {
  switch (s) {
    case FailSite::kHtmLoad: return "htm_load";
    case FailSite::kHtmStore: return "htm_store";
    case FailSite::kHtmCommit: return "htm_commit";
    case FailSite::kLockAcquireShared: return "lock_acquire_shared";
    case FailSite::kLockAcquireExclusive: return "lock_acquire_exclusive";
    case FailSite::kLockUpgrade: return "lock_upgrade";
    case FailSite::kLockTryExclusive: return "lock_try_exclusive";
    case FailSite::kLockTryUpgrade: return "lock_try_upgrade";
    case FailSite::kRouterSkipH: return "router_skip_h";
    case FailSite::kRouterSkipO: return "router_skip_o";
    case FailSite::kWorklistPop: return "worklist_pop";
    case FailSite::kBreakerTrip: return "breaker_trip";
    case FailSite::kStarvationToken: return "starvation_token";
    case FailSite::kVictimReabort: return "victim_reabort";
    case FailSite::kMailboxFull: return "mailbox_full";
    case FailSite::kMessageReorder: return "message_reorder";
    case FailSite::kVersionReclaim: return "version_reclaim";
    case FailSite::kStaleEpoch: return "stale_epoch";
    case FailSite::kServeQueueFull: return "serve_queue_full";
    case FailSite::kServeDeferFull: return "serve_defer_full";
    case FailSite::kCombinerSlotFull: return "combiner_slot_full";
    case FailSite::kOwnerHandoff: return "owner_handoff";
    case FailSite::kWalTornWrite: return "wal_torn_write";
    case FailSite::kWalShortWrite: return "wal_short_write";
    case FailSite::kCrashBeforeFsync: return "crash_before_fsync";
    case FailSite::kCheckpointPartial: return "checkpoint_partial";
    default: return "?";
  }
}

/// What an armed failpoint tells its site to do. Each site interprets the
/// action in its own failure vocabulary; schedule perturbation (yields)
/// happens inside the plan and needs no action value.
enum class FailAction : uint8_t {
  kNone = 0,       // proceed normally
  kAbortConflict,  // HTM sites: synthesize a conflict abort
  kAbortCapacity,  // HTM sites: synthesize a capacity abort
  kFail,           // lock sites: fail the acquisition / pick a victim;
                   // router sites: skip the mode (forced demotion)
};

/// The default policy: a constexpr no-op. `kEnabled == false` lets every
/// site vanish behind `if constexpr`, so a NullFailpoints build is
/// bit-identical in behavior and cost to code with no hooks at all
/// (verified by micro_ops_benchmark, see DESIGN.md).
struct NullFailpoints {
  static constexpr bool kEnabled = false;
  static constexpr FailAction Hit(FailSite /*site*/, int /*slot*/) {
    return FailAction::kNone;
  }
};

/// Failpoint policy carried by an HTM backend type: `Htm::Failpoints` if
/// declared, NullFailpoints otherwise. Lets the lock substrate and the
/// schedulers (all templated on Htm) inherit the backend's policy without
/// growing their own template parameter.
template <typename Htm, typename = void>
struct HtmFailpointsOf {
  using type = NullFailpoints;
};
template <typename Htm>
struct HtmFailpointsOf<Htm, std::void_t<typename Htm::Failpoints>> {
  using type = typename Htm::Failpoints;
};
template <typename Htm>
using HtmFailpoints = typename HtmFailpointsOf<Htm>::type;

}  // namespace tufast

#endif  // TUFAST_COMMON_FAILPOINTS_H_
