#ifndef TUFAST_COMMON_COMPILER_H_
#define TUFAST_COMMON_COMPILER_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// \file
/// Compiler/platform helpers shared by every TuFast module.

#define TUFAST_LIKELY(x) (__builtin_expect(!!(x), 1))
#define TUFAST_UNLIKELY(x) (__builtin_expect(!!(x), 0))

/// Forces inlining of TM hot-path operations. The TuFast router
/// instantiates each transaction body for all three modes, which blows
/// GCC's unit-growth inlining budget and would otherwise leave the
/// per-operation Read/Write calls outlined (~7x slowdown measured).
#define TUFAST_ALWAYS_INLINE inline __attribute__((always_inline))

/// Keeps rarely-taken slow paths (O/L-mode fallbacks) out of the hot
/// routing function so their body instantiations don't degrade its
/// code generation.
#define TUFAST_NOINLINE_COLD __attribute__((noinline, cold))

/// Marks a class non-copyable and non-movable. Use inside the public
/// section, per the style guide's "make copyability explicit" rule.
#define TUFAST_DISALLOW_COPY_AND_MOVE(Type) \
  Type(const Type&) = delete;               \
  Type& operator=(const Type&) = delete;    \
  Type(Type&&) = delete;                    \
  Type& operator=(Type&&) = delete

namespace tufast {

/// Hardware cache-line size assumed throughout (x86).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Aborts the process with a message. Used for invariant violations that
/// indicate a library bug, never for user errors (those return Status).
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "[tufast] FATAL %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace tufast

/// Internal invariant check that stays on in release builds: TM protocols
/// must fail loudly, not corrupt memory.
#define TUFAST_CHECK(cond)                                       \
  do {                                                           \
    if (TUFAST_UNLIKELY(!(cond))) {                              \
      ::tufast::FatalError(__FILE__, __LINE__, "check failed: " #cond); \
    }                                                            \
  } while (0)

#define TUFAST_DCHECK(cond) TUFAST_CHECK(cond)

#endif  // TUFAST_COMMON_COMPILER_H_
