#ifndef TUFAST_COMMON_TYPES_H_
#define TUFAST_COMMON_TYPES_H_

#include <cstdint>

namespace tufast {

/// Vertex identifier. Graphs in this repository are sized well below 4B
/// vertices; 32-bit ids halve CSR memory traffic.
using VertexId = uint32_t;

/// Edge index into CSR adjacency arrays (|E| can exceed 4B in principle).
using EdgeId = uint64_t;

inline constexpr VertexId kInvalidVertex = ~VertexId{0};

}  // namespace tufast

#endif  // TUFAST_COMMON_TYPES_H_
