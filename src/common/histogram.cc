#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tufast {

namespace {
constexpr int kNumBins = 65;  // bin 0 = zeros, bin k = [2^(k-1), 2^k).
}  // namespace

LogHistogram::LogHistogram() : bins_(kNumBins, 0) {}

int LogHistogram::BinIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value);
}

void LogHistogram::Add(uint64_t value, uint64_t weight) {
  bins_[BinIndex(value)] += weight;
  count_ += weight;
  sum_ += value * weight;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int i = 0; i < kNumBins; ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

double LogHistogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t LogHistogram::ApproxQuantile(double quantile) const {
  if (count_ == 0) return 0;
  const double target = quantile * static_cast<double>(count_);
  double running = 0;
  for (int i = 0; i < kNumBins; ++i) {
    running += static_cast<double>(bins_[i]);
    if (running >= target) {
      return i == 0 ? 0 : (1ULL << (i - 1));
    }
  }
  return max_;
}

std::string LogHistogram::ToString() const {
  std::string out;
  char buf[128];
  for (int i = 0; i < kNumBins; ++i) {
    if (bins_[i] == 0) continue;
    const uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
    const uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
    std::snprintf(buf, sizeof(buf), "%12llu..%-12llu %llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(bins_[i]));
    out += buf;
  }
  return out;
}

}  // namespace tufast
