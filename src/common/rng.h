#ifndef TUFAST_COMMON_RNG_H_
#define TUFAST_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace tufast {

/// SplitMix64: used to seed Xoshiro and for cheap stateless hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Fast, high-quality PRNG (xoshiro256**). Deterministic per seed so
/// every experiment in this repository is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free-enough reduction.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with the given probability in [0, 1].
  bool NextBool(double probability) { return NextDouble() < probability; }

  /// Zipf-like sample in [0, n): probability of rank r proportional to
  /// 1/(r+1)^alpha. Uses inverse-CDF on the continuous approximation,
  /// which is accurate enough for workload skew generation.
  uint64_t NextZipf(uint64_t n, double alpha) {
    if (n <= 1) return 0;
    const double u = NextDouble();
    if (alpha == 1.0) {
      const double h = std::log(static_cast<double>(n));
      const double x = std::exp(u * h) - 1.0;
      const uint64_t r = static_cast<uint64_t>(x);
      return r < n ? r : n - 1;
    }
    const double one_minus = 1.0 - alpha;
    const double max_cdf = std::pow(static_cast<double>(n), one_minus) - 1.0;
    const double x = std::pow(u * max_cdf + 1.0, 1.0 / one_minus) - 1.0;
    const uint64_t r = static_cast<uint64_t>(x);
    return r < n ? r : n - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace tufast

#endif  // TUFAST_COMMON_RNG_H_
