#ifndef TUFAST_COMMON_STATUS_H_
#define TUFAST_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/compiler.h"

namespace tufast {

/// Error taxonomy for recoverable failures (I/O, user input). Library
/// invariant violations use TUFAST_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kUnsupported,
  kInternal,
};

/// Minimal Status value type (RocksDB/Arrow style): cheap to return, must
/// be inspected via ok()/code(). No exceptions cross public boundaries.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_.empty() ? "error" : message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result-or-error wrapper. `value()` may only be called when ok().
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  StatusOr(Status status) : status_(std::move(status)) {
    TUFAST_CHECK(!status_.ok());
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    TUFAST_CHECK(status_.ok());
    return value_;
  }
  const T& value() const {
    TUFAST_CHECK(status_.ok());
    return value_;
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace tufast

#endif  // TUFAST_COMMON_STATUS_H_
