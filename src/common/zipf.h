#ifndef TUFAST_COMMON_ZIPF_H_
#define TUFAST_COMMON_ZIPF_H_

#include <cstdint>

#include "common/rng.h"

namespace tufast {

/// Shared Zipf key sampler: rank r in [0, n) drawn with probability
/// proportional to 1/(r+1)^alpha via Rng::NextZipf's continuous
/// inverse-CDF approximation; alpha <= 0 degrades to uniform. The one
/// implementation behind both the serving load generator's key skew and
/// the skewed-contention bench axes (fig06 skew sweep, micro_ops
/// combining rows), so "skew" means the same distribution everywhere.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double alpha) : n_(n == 0 ? 1 : n), alpha_(alpha) {}

  template <typename RngT>
  uint64_t Draw(RngT& rng) const {
    if (alpha_ <= 0.0) return rng.NextBounded(n_);
    return rng.NextZipf(n_, alpha_);
  }

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t n_;
  double alpha_;
};

}  // namespace tufast

#endif  // TUFAST_COMMON_ZIPF_H_
