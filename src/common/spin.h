#ifndef TUFAST_COMMON_SPIN_H_
#define TUFAST_COMMON_SPIN_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/compiler.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tufast {

/// One CPU "pause"/relax hint for busy-wait loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential-ish backoff for spin loops. Crucial on oversubscribed
/// machines (this host has a single core): after a few pause iterations
/// we must yield the timeslice or lock holders never run.
class Backoff {
 public:
  Backoff() = default;

  void Pause() {
    if (spins_ < kSpinsBeforeYield) {
      ++spins_;
      for (int i = 0; i < (1 << (spins_ < 6 ? spins_ : 6)); ++i) CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { spins_ = 0; }

  /// Number of Pause() calls so far; callers use this to bound waits.
  uint64_t count() const { return spins_; }

 private:
  static constexpr uint64_t kSpinsBeforeYield = 10;
  uint64_t spins_ = 0;
};

/// Tiny test-and-test-and-set spinlock with yield-aware backoff.
/// Used for short critical sections only (line-table entries, stats).
class SpinLock {
 public:
  SpinLock() = default;
  TUFAST_DISALLOW_COPY_AND_MOVE(SpinLock);

  void Lock() {
    Backoff backoff;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) backoff.Pause();
    }
  }

  bool TryLock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  TUFAST_DISALLOW_COPY_AND_MOVE(SpinLockGuard);

 private:
  SpinLock& lock_;
};

}  // namespace tufast

#endif  // TUFAST_COMMON_SPIN_H_
