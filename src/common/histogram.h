#ifndef TUFAST_COMMON_HISTOGRAM_H_
#define TUFAST_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tufast {

/// Power-of-two log-binned histogram of non-negative integer samples.
/// Used for degree distributions (paper Fig. 5), transaction-size
/// breakdowns (Fig. 15) and latency summaries.
class LogHistogram {
 public:
  LogHistogram();

  void Add(uint64_t value, uint64_t weight = 1);

  /// Merges another histogram into this one (per-thread stats join).
  void Merge(const LogHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  double Mean() const;

  /// Smallest value v such that at least `quantile` of the mass is <= the
  /// bin containing v. Bin-resolution approximation.
  uint64_t ApproxQuantile(double quantile) const;

  /// One row per non-empty bin: "lo..hi count". For Fig. 5 style output.
  std::string ToString() const;

  /// Bin counts indexed by floor(log2(value)) + 1 (bin 0 holds zeros).
  const std::vector<uint64_t>& bins() const { return bins_; }

 private:
  static int BinIndex(uint64_t value);

  std::vector<uint64_t> bins_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = ~0ULL;
};

}  // namespace tufast

#endif  // TUFAST_COMMON_HISTOGRAM_H_
