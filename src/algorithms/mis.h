#ifndef TUFAST_ALGORITHMS_MIS_H_
#define TUFAST_ALGORITHMS_MIS_H_

#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// Vertex states for maximal independent set.
inline constexpr TmWord kMisUndecided = 0;
inline constexpr TmWord kMisIn = 1;
inline constexpr TmWord kMisOut = 2;

/// Greedy maximal independent set on the TuFast API ("MIS" in the
/// paper). One transaction per vertex decides it atomically against its
/// neighborhood; because transactions serialize, ANY interleaving yields
/// the greedy result of some sequential order — a valid MIS after a
/// single parallel sweep. `graph` must be the symmetric closure.
template <typename Scheduler>
std::vector<TmWord> MisTm(Scheduler& tm, ThreadPool& pool,
                          const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> state(n, kMisUndecided);
  ParallelForChunked(
      pool, 0, n, /*grain=*/128,
      [&](int worker, uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          const VertexId v = static_cast<VertexId>(i);
          tm.Run(worker, graph.OutDegree(v) + 1, [&](auto& txn) {
            if (txn.Read(v, &state[v]) != kMisUndecided) return;
            for (const VertexId u : graph.OutNeighbors(v)) {
              if (u == v) continue;
              if (txn.Read(u, &state[u]) == kMisIn) {
                txn.Write(v, &state[v], kMisOut);
                return;
              }
            }
            txn.Write(v, &state[v], kMisIn);
          });
        }
      });
  return state;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_MIS_H_
