#ifndef TUFAST_ALGORITHMS_TRIANGLE_H_
#define TUFAST_ALGORITHMS_TRIANGLE_H_

#include <atomic>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// Triangle counting on the TuFast API ("Triangle" in the paper). The
/// adjacency is static, so the workload is read-only: every neighbor-list
/// word is still fetched through transactional reads (from a TmWord
/// shadow of the CSR) so the benchmark honestly measures each scheduler's
/// read-path overhead — the paper's point for this job is that "systems
/// with lower overheads perform better".
///
/// `graph` must be the symmetric closure with sorted neighbor lists.
/// Counts each triangle once via the ordered merge-intersection rule.
template <typename Scheduler>
uint64_t TriangleCountTm(Scheduler& tm, ThreadPool& pool, const Graph& graph) {
  const VertexId n = graph.NumVertices();
  // TmWord shadow of the adjacency so reads go through the TM layer.
  std::vector<TmWord> adj(graph.NumEdges());
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) adj[e] = graph.EdgeTarget(e);

  std::atomic<uint64_t> total{0};
  ParallelForChunked(
      pool, 0, n, /*grain=*/64,
      [&](int worker, uint64_t lo, uint64_t hi) {
        uint64_t local = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          const VertexId v = static_cast<VertexId>(i);
          uint64_t found = 0;
          tm.Run(worker, graph.OutDegree(v) * 2 + 1, [&](auto& txn) {
            found = 0;
            const EdgeId v_begin = graph.EdgeBegin(v);
            const EdgeId v_end = graph.EdgeEnd(v);
            for (EdgeId e = v_begin; e < v_end; ++e) {
              const VertexId u =
                  static_cast<VertexId>(txn.Read(v, &adj[e]));
              if (u <= v) continue;  // Count each edge direction once.
              // Merge-intersect N(v) and N(u), keeping w > u so each
              // triangle v < u < w is counted exactly once.
              EdgeId a = e + 1;
              EdgeId b = graph.EdgeBegin(u);
              const EdgeId b_end = graph.EdgeEnd(u);
              while (a < v_end && b < b_end) {
                const VertexId wa =
                    static_cast<VertexId>(txn.Read(v, &adj[a]));
                const VertexId wb =
                    static_cast<VertexId>(txn.Read(u, &adj[b]));
                if (wa < wb) {
                  ++a;
                } else if (wb < wa) {
                  ++b;
                } else {
                  if (wa > u) ++found;
                  ++a;
                  ++b;
                }
              }
            }
          });
          local += found;
        }
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load(std::memory_order_relaxed);
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_TRIANGLE_H_
