#ifndef TUFAST_ALGORITHMS_SSSP_H_
#define TUFAST_ALGORITHMS_SSSP_H_

#include <atomic>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/thread_pool.h"
#include "runtime/worklist.h"

namespace tufast {

inline constexpr TmWord kSsspInfinity = ~TmWord{0};

/// Scheduling discipline for the relaxation worklist — the paper's Fig. 3
/// point: Bellman-Ford and SPFA are the *same* TM program, differing only
/// in the queue type, a flexibility BSP systems cannot offer.
enum class SsspDiscipline {
  kBellmanFord,  ///< FIFO worklist.
  kSpfa,         ///< Priority worklist (closest-distance-first).
};

/// Single-source shortest paths by worklist-driven relaxation on the
/// TuFast API. One transaction per popped vertex relaxes all of its
/// out-edges (size hint = degree). `graph` must be weighted.
template <typename Scheduler>
std::vector<TmWord> SsspTm(Scheduler& tm, ThreadPool& pool, const Graph& graph,
                           VertexId source,
                           SsspDiscipline discipline = SsspDiscipline::kSpfa) {
  TUFAST_CHECK(graph.HasWeights());
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> dist(n, kSsspInfinity);
  std::vector<TmWord> in_queue(n, 0);
  dist[source] = 0;
  in_queue[source] = 1;

  ConcurrentQueue<VertexId> fifo;
  ConcurrentPriorityQueue<VertexId, TmWord> prio;
  const bool use_fifo = discipline == SsspDiscipline::kBellmanFord;
  if (use_fifo) {
    fifo.Push(source);
  } else {
    prio.Push(source, 0);
  }

  std::atomic<int> active{0};
  pool.RunOnAll([&](int worker) {
    auto process = [&](int w, VertexId v) {
      // Collected by the committed execution only.
      std::vector<std::pair<VertexId, TmWord>> to_push;
      tm.Run(w, graph.OutDegree(v) + 1, [&](auto& txn) {
        to_push.clear();
        txn.Write(v, &in_queue[v], 0);
        const TmWord dv = txn.Read(v, &dist[v]);
        if (dv == kSsspInfinity) return;
        for (EdgeId e = graph.EdgeBegin(v); e < graph.EdgeEnd(v); ++e) {
          const VertexId u = graph.EdgeTarget(e);
          const TmWord candidate = dv + graph.EdgeWeight(e);
          if (candidate < txn.Read(u, &dist[u])) {
            txn.Write(u, &dist[u], candidate);
            if (txn.Read(u, &in_queue[u]) == 0) {
              txn.Write(u, &in_queue[u], 1);
              to_push.emplace_back(u, candidate);
            }
          }
        }
      });
      for (const auto& [u, d] : to_push) {
        if (use_fifo) {
          fifo.Push(u);
        } else {
          prio.Push(u, d);
        }
      }
    };
    if (use_fifo) {
      DrainWorklist(fifo, worker, active, process);
    } else {
      DrainWorklist(prio, worker, active, process);
    }
  });
  return dist;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_SSSP_H_
