#ifndef TUFAST_ALGORITHMS_SSSP_H_
#define TUFAST_ALGORITHMS_SSSP_H_

#include <atomic>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/thread_pool.h"
#include "runtime/worklist.h"
#include "tm/batch_executor.h"

namespace tufast {

inline constexpr TmWord kSsspInfinity = ~TmWord{0};

/// Scheduling discipline for the relaxation worklist — the paper's Fig. 3
/// point: Bellman-Ford and SPFA are the *same* TM program, differing only
/// in the queue type, a flexibility BSP systems cannot offer.
enum class SsspDiscipline {
  kBellmanFord,  ///< FIFO worklist.
  kSpfa,         ///< Priority worklist (closest-distance-first).
};

/// Single-source shortest paths by worklist-driven relaxation on the
/// TuFast API. One transaction per popped vertex relaxes all of its
/// out-edges (size hint = degree). `graph` must be weighted.
template <typename Scheduler>
std::vector<TmWord> SsspTm(Scheduler& tm, ThreadPool& pool, const Graph& graph,
                           VertexId source,
                           SsspDiscipline discipline = SsspDiscipline::kSpfa) {
  TUFAST_CHECK(graph.HasWeights());
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> dist(n, kSsspInfinity);
  std::vector<TmWord> in_queue(n, 0);
  dist[source] = 0;
  in_queue[source] = 1;

  ConcurrentQueue<VertexId> fifo;
  ConcurrentPriorityQueue<VertexId, TmWord> prio;
  const bool use_fifo = discipline == SsspDiscipline::kBellmanFord;
  if (use_fifo) {
    fifo.Push(source);
  } else {
    prio.Push(source, 0);
  }

  // Popped vertices are relaxed in batches so the batch executor can
  // fuse their transactions; relaxation is confluent, so the final
  // distances are independent of the pop grouping.
  constexpr size_t kDrainBatch = 16;
  std::atomic<int> active{0};
  pool.RunOnAll([&](int worker) {
    // Per-item push lists, collected by each item's committed execution
    // and drained only after RunBatch returns.
    std::vector<std::vector<std::pair<VertexId, TmWord>>> to_push(kDrainBatch);
    auto process = [&](int w, const std::vector<VertexId>& batch) {
      RunBatch(
          tm, w, 0, batch.size(),
          [&](uint64_t k) { return graph.OutDegree(batch[k]) + 1; },
          [&](uint64_t k) { return batch[k]; },
          [&](auto& txn, uint64_t k) {
            const VertexId v = batch[k];
            auto& pushes = to_push[k];
            pushes.clear();
            txn.Write(v, &in_queue[v], 0);
            const TmWord dv = txn.Read(v, &dist[v]);
            if (dv == kSsspInfinity) return;
            for (EdgeId e = graph.EdgeBegin(v); e < graph.EdgeEnd(v); ++e) {
              const VertexId u = graph.EdgeTarget(e);
              const TmWord candidate = dv + graph.EdgeWeight(e);
              if (candidate < txn.Read(u, &dist[u])) {
                txn.Write(u, &dist[u], candidate);
                if (txn.Read(u, &in_queue[u]) == 0) {
                  txn.Write(u, &in_queue[u], 1);
                  pushes.emplace_back(u, candidate);
                }
              }
            }
          });
      for (size_t k = 0; k < batch.size(); ++k) {
        for (const auto& [u, d] : to_push[k]) {
          if (use_fifo) {
            fifo.Push(u);
          } else {
            prio.Push(u, d);
          }
        }
      }
    };
    if (use_fifo) {
      DrainWorklistBatched(fifo, worker, active, kDrainBatch, process);
    } else {
      DrainWorklistBatched(prio, worker, active, kDrainBatch, process);
    }
  });
  return dist;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_SSSP_H_
