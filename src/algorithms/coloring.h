#ifndef TUFAST_ALGORITHMS_COLORING_H_
#define TUFAST_ALGORITHMS_COLORING_H_

#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "tm/batch_executor.h"

namespace tufast {

/// "Uncolored" marker.
inline constexpr TmWord kUncolored = ~TmWord{0};

/// Greedy graph coloring on the TuFast API (extension beyond the paper's
/// evaluation set): each transaction atomically reads its neighborhood's
/// colors and claims the smallest free one. Because transactions
/// serialize, any interleaving equals sequential greedy under some
/// vertex order — a proper coloring with at most max_degree + 1 colors
/// after a single parallel sweep. `graph` must be the symmetric closure.
template <typename Scheduler>
std::vector<TmWord> GreedyColoringTm(Scheduler& tm, ThreadPool& pool,
                                     const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> color(n, kUncolored);
  ParallelForChunked(
      pool, 0, n, /*grain=*/128,
      [&](int worker, uint64_t lo, uint64_t hi) {
        std::vector<uint8_t> used;  // Scratch; each item resets it on entry.
        RunBatch(
            tm, worker, lo, hi,
            [&](uint64_t i) {
              return graph.OutDegree(static_cast<VertexId>(i)) + 1;
            },
            [&](auto& txn, uint64_t i) {
              const VertexId v = static_cast<VertexId>(i);
              used.assign(graph.OutDegree(v) + 1, 0);
              for (const VertexId u : graph.OutNeighbors(v)) {
                if (u == v) continue;
                const TmWord c = txn.Read(u, &color[u]);
                if (c < used.size()) used[c] = 1;
              }
              TmWord smallest = 0;
              while (smallest < used.size() && used[smallest]) ++smallest;
              txn.Write(v, &color[v], smallest);
            });
      });
  return color;
}

/// True iff `color` is a proper coloring (no edge joins equal colors,
/// every vertex colored) within the greedy bound max_degree + 1.
inline bool ValidateColoring(const Graph& graph,
                             const std::vector<TmWord>& color) {
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (color[v] == kUncolored) return false;
    if (color[v] > graph.OutDegree(v)) return false;  // Greedy bound.
    for (const VertexId u : graph.OutNeighbors(v)) {
      if (u != v && color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_COLORING_H_
