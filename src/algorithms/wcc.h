#ifndef TUFAST_ALGORITHMS_WCC_H_
#define TUFAST_ALGORITHMS_WCC_H_

#include <atomic>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// Weakly connected components ("Components" in the paper) by parallel
/// min-label propagation on the TuFast API. In-place updates let fresh
/// labels travel many hops within one sweep (the paper's explanation for
/// TuFast's advantage here: "vertices need the newest component ID from
/// their neighbors"). `graph` must be the symmetric closure.
template <typename Scheduler>
std::vector<TmWord> WccTm(Scheduler& tm, ThreadPool& pool,
                          const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;

  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    ParallelForChunked(
        pool, 0, n, /*grain=*/256,
        [&](int worker, uint64_t lo, uint64_t hi) {
          bool local_changed = false;
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = static_cast<VertexId>(i);
            if (graph.OutDegree(v) == 0) continue;
            bool txn_changed = false;
            tm.Run(worker, graph.OutDegree(v) + 1, [&](auto& txn) {
              txn_changed = false;
              TmWord best = txn.Read(v, &label[v]);
              for (const VertexId u : graph.OutNeighbors(v)) {
                const TmWord lu = txn.Read(u, &label[u]);
                if (lu < best) best = lu;
              }
              if (best < txn.Read(v, &label[v])) {
                txn.Write(v, &label[v], best);
                txn_changed = true;
              }
            });
            local_changed |= txn_changed;
          }
          if (local_changed) changed.store(true, std::memory_order_relaxed);
        });
  }
  return label;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_WCC_H_
