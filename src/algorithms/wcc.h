#ifndef TUFAST_ALGORITHMS_WCC_H_
#define TUFAST_ALGORITHMS_WCC_H_

#include <array>
#include <atomic>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "tm/batch_executor.h"

namespace tufast {

/// Weakly connected components ("Components" in the paper) by parallel
/// min-label propagation on the TuFast API. In-place updates let fresh
/// labels travel many hops within one sweep (the paper's explanation for
/// TuFast's advantage here: "vertices need the newest component ID from
/// their neighbors"). `graph` must be the symmetric closure.
template <typename Scheduler>
std::vector<TmWord> WccTm(Scheduler& tm, ThreadPool& pool,
                          const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;

  constexpr uint64_t kGrain = 256;
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    ParallelForChunked(
        pool, 0, n, kGrain,
        [&](int worker, uint64_t lo, uint64_t hi) {
          // Isolated vertices never run a transaction (same skip rule as
          // the per-item loop); the batch covers the survivors.
          std::array<VertexId, kGrain> vs;
          std::array<bool, kGrain> txn_changed;
          uint64_t cnt = 0;
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = static_cast<VertexId>(i);
            if (graph.OutDegree(v) == 0) continue;
            vs[cnt++] = v;
          }
          RunBatch(
              tm, worker, 0, cnt,
              [&](uint64_t k) { return graph.OutDegree(vs[k]) + 1; },
              [&](uint64_t k) { return vs[k]; },
              [&](auto& txn, uint64_t k) {
                const VertexId v = vs[k];
                txn_changed[k] = false;
                TmWord best = txn.Read(v, &label[v]);
                for (const VertexId u : graph.OutNeighbors(v)) {
                  const TmWord lu = txn.Read(u, &label[u]);
                  if (lu < best) best = lu;
                }
                if (best < txn.Read(v, &label[v])) {
                  txn.Write(v, &label[v], best);
                  txn_changed[k] = true;
                }
              });
          bool local_changed = false;
          for (uint64_t k = 0; k < cnt; ++k) local_changed |= txn_changed[k];
          if (local_changed) changed.store(true, std::memory_order_relaxed);
        });
  }
  return label;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_WCC_H_
