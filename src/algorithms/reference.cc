#include "algorithms/reference.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

namespace tufast {

namespace {
constexpr uint64_t kInf = ~uint64_t{0};
}  // namespace

std::vector<double> ReferencePageRank(const Graph& graph, double damping,
                                      int max_iterations, double tolerance) {
  const VertexId n = graph.NumVertices();
  std::vector<double> rank(n, 1.0 / n), next(n, 0.0);
  const double base = (1.0 - damping) / n;
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), base);
    for (VertexId v = 0; v < n; ++v) {
      const uint32_t d = graph.OutDegree(v);
      if (d == 0) continue;
      const double share = damping * rank[v] / d;
      for (const VertexId u : graph.OutNeighbors(v)) next[u] += share;
    }
    double delta = 0;
    for (VertexId v = 0; v < n; ++v) delta += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    if (delta / n < tolerance) break;
  }
  return rank;
}

std::vector<uint64_t> ReferenceBfs(const Graph& graph, VertexId source) {
  std::vector<uint64_t> dist(graph.NumVertices(), kInf);
  std::deque<VertexId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const VertexId u : graph.OutNeighbors(v)) {
      if (dist[u] == kInf) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ReferenceWcc(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<uint64_t> label(n, kInf);
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (label[root] != kInf) continue;
    label[root] = root;
    queue.push_back(root);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (const VertexId u : graph.OutNeighbors(v)) {
        if (label[u] == kInf) {
          label[u] = root;
          queue.push_back(u);
        }
      }
    }
  }
  return label;
}

std::vector<uint64_t> ReferenceSssp(const Graph& graph, VertexId source) {
  const VertexId n = graph.NumVertices();
  std::vector<uint64_t> dist(n, kInf);
  using Item = std::pair<uint64_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    for (EdgeId e = graph.EdgeBegin(v); e < graph.EdgeEnd(v); ++e) {
      const VertexId u = graph.EdgeTarget(e);
      const uint64_t candidate = d + graph.EdgeWeight(e);
      if (candidate < dist[u]) {
        dist[u] = candidate;
        heap.emplace(candidate, u);
      }
    }
  }
  return dist;
}

uint64_t ReferenceTriangleCount(const Graph& graph) {
  uint64_t total = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto nv = graph.OutNeighbors(v);
    for (size_t i = 0; i < nv.size(); ++i) {
      const VertexId u = nv[i];
      if (u <= v) continue;
      const auto nu = graph.OutNeighbors(u);
      size_t a = i + 1, b = 0;
      while (a < nv.size() && b < nu.size()) {
        if (nv[a] < nu[b]) {
          ++a;
        } else if (nu[b] < nv[a]) {
          ++b;
        } else {
          if (nv[a] > u) ++total;
          ++a;
          ++b;
        }
      }
    }
  }
  return total;
}

bool ValidateMis(const Graph& graph, const std::vector<uint64_t>& state) {
  constexpr uint64_t kIn = 1, kOut = 2;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (state[v] != kIn && state[v] != kOut) return false;
    bool has_in_neighbor = false;
    for (const VertexId u : graph.OutNeighbors(v)) {
      if (u == v) continue;
      if (state[u] == kIn) {
        has_in_neighbor = true;
        if (state[v] == kIn) return false;  // Not independent.
      }
    }
    if (state[v] == kOut && !has_in_neighbor) return false;  // Not maximal.
  }
  return true;
}

bool ValidateMatching(const Graph& graph, const std::vector<uint64_t>& match) {
  const uint64_t kUnmatchedRef = ~uint64_t{0};
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (match[v] == kUnmatchedRef) continue;
    const VertexId partner = static_cast<VertexId>(match[v]);
    if (partner >= graph.NumVertices()) return false;
    if (match[partner] != v) return false;  // Not symmetric.
    const auto neighbors = graph.OutNeighbors(v);
    if (!std::binary_search(neighbors.begin(), neighbors.end(), partner)) {
      return false;  // Partner not adjacent.
    }
  }
  // Maximality: no edge joins two unmatched vertices.
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (match[v] != kUnmatchedRef) continue;
    for (const VertexId u : graph.OutNeighbors(v)) {
      if (u != v && match[u] == kUnmatchedRef) return false;
    }
  }
  return true;
}

std::vector<uint32_t> ReferenceCoreNumbers(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> degree(n), core(n, 0);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.OutDegree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket vertices by current degree; peel in nondecreasing order.
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> removed(n, false);
  uint32_t current_core = 0;
  for (uint32_t d = 0; d <= max_degree; ++d) {
    // Buckets may refill below d during peeling; re-scan from d.
    for (size_t i = 0; i < buckets[d].size(); ++i) {
      const VertexId v = buckets[d][i];
      if (removed[v] || degree[v] != d) continue;  // Stale entry.
      current_core = std::max(current_core, d);
      core[v] = current_core;
      removed[v] = true;
      for (const VertexId u : graph.OutNeighbors(v)) {
        if (u == v || removed[u]) continue;
        if (degree[u] > d) {
          --degree[u];
          buckets[degree[u]].push_back(u);
        }
      }
    }
  }
  return core;
}

}  // namespace tufast
