#ifndef TUFAST_ALGORITHMS_REFERENCE_H_
#define TUFAST_ALGORITHMS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tufast {

/// Sequential reference implementations and result validators, used by
/// the test suite to check every parallel TM algorithm. The parallel
/// algorithms are nondeterministic where several answers are legal (MIS,
/// matching, PageRank ordering), so validators check correctness
/// properties rather than exact equality where appropriate.

/// Jacobi PageRank until convergence; ground truth within tolerance.
std::vector<double> ReferencePageRank(const Graph& graph, double damping,
                                      int max_iterations, double tolerance);

/// BFS depths from source (kBfsInfinity-compatible: unreached = ~0).
std::vector<uint64_t> ReferenceBfs(const Graph& graph, VertexId source);

/// Component labels: min vertex id per weakly connected component.
/// Expects the symmetric closure.
std::vector<uint64_t> ReferenceWcc(const Graph& graph);

/// Dijkstra distances from source (unreached = ~0). Expects weights.
std::vector<uint64_t> ReferenceSssp(const Graph& graph, VertexId source);

/// Exact triangle count (each triangle once); symmetric sorted graph.
uint64_t ReferenceTriangleCount(const Graph& graph);

/// True iff `state` (values kMisIn/kMisOut) is an independent set that is
/// maximal, with no vertex left undecided. Expects symmetric closure.
bool ValidateMis(const Graph& graph, const std::vector<uint64_t>& state);

/// True iff `match` is a valid maximal matching: symmetric partners,
/// partners are adjacent, and no edge joins two unmatched vertices.
bool ValidateMatching(const Graph& graph, const std::vector<uint64_t>& match);

/// Core numbers by sequential peeling (Batagelj–Zaveršnik style);
/// symmetric sorted graph.
std::vector<uint32_t> ReferenceCoreNumbers(const Graph& graph);

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_REFERENCE_H_
