#ifndef TUFAST_ALGORITHMS_PAGERANK_H_
#define TUFAST_ALGORITHMS_PAGERANK_H_

#include <array>
#include <atomic>
#include <cmath>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "tm/batch_executor.h"

namespace tufast {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  /// Converged when the L1 delta per vertex drops below this.
  double tolerance = 1e-9;
  /// Warm start: begin iterating from these ranks instead of uniform
  /// 1/n. Must have exactly NumVertices() entries (callers pad/normalize
  /// when the graph grew). The incremental driver (graph/dynamic) uses
  /// this to re-converge after an update batch in a fraction of the
  /// from-scratch iterations.
  const std::vector<double>* initial_ranks = nullptr;
};

struct PageRankResult {
  std::vector<double> ranks;
  int iterations = 0;
  double final_delta = 0;
};

/// PageRank on the TuFast API with *in-place* (Gauss-Seidel style)
/// updates: each vertex transaction reads its in-neighbors' current ranks
/// and writes its own — workers immediately see each other's freshest
/// values, which is exactly the paper's explanation for why TuFast beats
/// BSP systems on PageRank (information propagates within an iteration,
/// not across super-steps).
///
/// `graph` supplies out-degrees; `reversed` supplies in-neighbors.
template <typename Scheduler>
PageRankResult PageRankTm(Scheduler& tm, ThreadPool& pool, const Graph& graph,
                          const Graph& reversed, PageRankOptions options = {}) {
  const VertexId n = graph.NumVertices();
  TUFAST_CHECK(reversed.NumVertices() == n);
  PageRankResult result;
  if (options.initial_ranks != nullptr) {
    TUFAST_CHECK(options.initial_ranks->size() == n);
    result.ranks = *options.initial_ranks;
  } else {
    result.ranks.assign(n, 1.0 / n);
  }
  std::vector<double>& rank = result.ranks;

  // Precomputed private data: out-degrees never change.
  std::vector<double> inv_out_degree(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t d = graph.OutDegree(v);
    if (d > 0) inv_out_degree[v] = 1.0 / d;
  }
  const double base = (1.0 - options.damping) / n;

  constexpr uint64_t kGrain = 256;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::atomic<double> total_delta{0.0};
    ParallelForChunked(
        pool, 0, n, kGrain,
        [&](int worker, uint64_t lo, uint64_t hi) {
          // Per-item outputs, set by each item's committed execution and
          // read only after RunBatch returns (batch_executor.h contract).
          std::array<double, kGrain> next, prev;
          RunBatch(
              tm, worker, lo, hi,
              [&](uint64_t i) {
                return reversed.OutDegree(static_cast<VertexId>(i)) + 1;
              },
              [&](auto& txn, uint64_t i) {
                const VertexId v = static_cast<VertexId>(i);
                double sum = 0;
                for (const VertexId u : reversed.OutNeighbors(v)) {
                  sum += txn.ReadDouble(u, &rank[u]) * inv_out_degree[u];
                }
                const double nv = base + options.damping * sum;
                prev[i - lo] = txn.ReadDouble(v, &rank[v]);
                txn.WriteDouble(v, &rank[v], nv);
                next[i - lo] = nv;
              });
          double local_delta = 0;
          for (uint64_t i = lo; i < hi; ++i) {
            local_delta += std::fabs(next[i - lo] - prev[i - lo]);
          }
          // total_delta is only read after the parallel loop joins.
          double expected = total_delta.load(std::memory_order_relaxed);
          while (!total_delta.compare_exchange_weak(
              expected, expected + local_delta, std::memory_order_relaxed)) {
          }
        });
    result.iterations = iter + 1;
    result.final_delta = total_delta.load(std::memory_order_relaxed) / n;
    if (result.final_delta < options.tolerance) break;
  }
  return result;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_PAGERANK_H_
