#ifndef TUFAST_ALGORITHMS_MATCHING_H_
#define TUFAST_ALGORITHMS_MATCHING_H_

#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// "Unmatched" marker for maximal matching.
inline constexpr TmWord kUnmatched = ~TmWord{0};

/// Greedy maximal matching on the TuFast API — the paper's flagship
/// usability example (Fig. 1): the transaction pairs an unmatched vertex
/// with its first unmatched neighbor, and TM serializability replaces the
/// four-round message handshake a vertex-centric system needs (Fig. 2).
/// One parallel sweep produces a maximal matching. `graph` must be the
/// symmetric closure.
template <typename Scheduler>
std::vector<TmWord> MaximalMatchingTm(Scheduler& tm, ThreadPool& pool,
                                      const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> match(n, kUnmatched);
  ParallelForChunked(
      pool, 0, n, /*grain=*/128,
      [&](int worker, uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          const VertexId v = static_cast<VertexId>(i);
          tm.Run(worker, graph.OutDegree(v) + 1, [&](auto& txn) {
            if (txn.Read(v, &match[v]) != kUnmatched) return;
            for (const VertexId u : graph.OutNeighbors(v)) {
              if (u == v) continue;
              if (txn.Read(u, &match[u]) == kUnmatched) {
                txn.Write(v, &match[v], u);
                txn.Write(u, &match[u], v);
                return;
              }
            }
          });
        }
      });
  return match;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_MATCHING_H_
