#ifndef TUFAST_ALGORITHMS_BFS_H_
#define TUFAST_ALGORITHMS_BFS_H_

#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// Unreached distance marker.
inline constexpr TmWord kBfsInfinity = ~TmWord{0};

/// Frontier-parallel breadth-first search on the TuFast API: one
/// transaction per frontier vertex claims its unvisited neighbors
/// atomically (read dist[u], write dist[u]), so each vertex is claimed by
/// exactly one parent and appears in exactly one next-frontier.
template <typename Scheduler>
std::vector<TmWord> BfsTm(Scheduler& tm, ThreadPool& pool, const Graph& graph,
                          VertexId source) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> dist(n, kBfsInfinity);
  dist[source] = 0;

  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  std::mutex next_mutex;
  TmWord depth = 0;

  while (!frontier.empty()) {
    ++depth;
    next.clear();
    ParallelForChunked(
        pool, 0, frontier.size(), /*grain=*/64,
        [&](int worker, uint64_t lo, uint64_t hi) {
          std::vector<VertexId> local_next;
          for (uint64_t i = lo; i < hi; ++i) {
            const VertexId v = frontier[i];
            // claimed is (re)filled per attempt; only the committed
            // attempt's claims survive the Run call.
            std::vector<VertexId>* claimed = &local_next;
            const size_t base_size = local_next.size();
            tm.Run(worker, graph.OutDegree(v) + 1, [&](auto& txn) {
              claimed->resize(base_size);
              for (const VertexId u : graph.OutNeighbors(v)) {
                if (txn.Read(u, &dist[u]) == kBfsInfinity) {
                  txn.Write(u, &dist[u], depth);
                  claimed->push_back(u);
                }
              }
            });
          }
          if (!local_next.empty()) {
            std::lock_guard<std::mutex> guard(next_mutex);
            next.insert(next.end(), local_next.begin(), local_next.end());
          }
        });
    frontier.swap(next);
  }
  return dist;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_BFS_H_
