#ifndef TUFAST_ALGORITHMS_KCORE_H_
#define TUFAST_ALGORITHMS_KCORE_H_

#include <atomic>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace tufast {

/// k-core decomposition on the TuFast API (extension beyond the paper's
/// six evaluation algorithms): core[v] = the largest k such that v
/// belongs to a subgraph where every vertex has degree >= k. Parallel
/// peeling: for k = 1, 2, ... repeatedly remove vertices whose residual
/// degree drops below k; each removal is one transaction that atomically
/// retires the vertex and decrements its live neighbors' degrees —
/// exactly the irregular read-modify-write pattern TM handles without a
/// paradigm rewrite. `graph` must be the symmetric closure.
template <typename Scheduler>
std::vector<TmWord> KCoreTm(Scheduler& tm, ThreadPool& pool,
                            const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> degree(n), core(n, 0), alive(n, 1);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.OutDegree(v);
    max_degree = std::max(max_degree, graph.OutDegree(v));
  }

  std::atomic<uint64_t> remaining{n};
  for (uint32_t k = 1; k <= max_degree + 1; ++k) {
    if (remaining.load(std::memory_order_relaxed) == 0) break;
    // Peel until no vertex below the threshold survives.
    std::atomic<bool> changed{true};
    while (changed.load(std::memory_order_relaxed)) {
      changed.store(false, std::memory_order_relaxed);
      ParallelForChunked(
          pool, 0, n, /*grain=*/256,
          [&](int worker, uint64_t lo, uint64_t hi) {
            uint64_t retired = 0;
            bool local_changed = false;
            for (uint64_t i = lo; i < hi; ++i) {
              const VertexId v = static_cast<VertexId>(i);
              if (__atomic_load_n(&alive[v], __ATOMIC_RELAXED) == 0) continue;
              bool removed = false;
              tm.Run(worker, graph.OutDegree(v) + 1, [&](auto& txn) {
                removed = false;
                if (txn.Read(v, &alive[v]) == 0) return;
                if (txn.Read(v, &degree[v]) >= k) return;
                txn.Write(v, &alive[v], 0);
                txn.Write(v, &core[v], k - 1);
                for (const VertexId u : graph.OutNeighbors(v)) {
                  if (u == v) continue;
                  if (txn.Read(u, &alive[u]) != 0) {
                    txn.Write(u, &degree[u], txn.Read(u, &degree[u]) - 1);
                  }
                }
                removed = true;
              });
              if (removed) {
                ++retired;
                local_changed = true;
              }
            }
            if (retired > 0) {
              remaining.fetch_sub(retired, std::memory_order_relaxed);
            }
            if (local_changed) {
              changed.store(true, std::memory_order_relaxed);
            }
          });
    }
  }
  // Every vertex is retired by k = residual_degree + 1 <= max_degree + 1,
  // so all core numbers are assigned when the loop exits.
  return core;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_KCORE_H_
