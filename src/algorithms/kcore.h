#ifndef TUFAST_ALGORITHMS_KCORE_H_
#define TUFAST_ALGORITHMS_KCORE_H_

#include <array>
#include <atomic>
#include <vector>

#include "graph/graph.h"
#include "htm/htm_config.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "tm/batch_executor.h"

namespace tufast {

/// k-core decomposition on the TuFast API (extension beyond the paper's
/// six evaluation algorithms): core[v] = the largest k such that v
/// belongs to a subgraph where every vertex has degree >= k. Parallel
/// peeling: for k = 1, 2, ... repeatedly remove vertices whose residual
/// degree drops below k; each removal is one transaction that atomically
/// retires the vertex and decrements its live neighbors' degrees —
/// exactly the irregular read-modify-write pattern TM handles without a
/// paradigm rewrite. `graph` must be the symmetric closure.
template <typename Scheduler>
std::vector<TmWord> KCoreTm(Scheduler& tm, ThreadPool& pool,
                            const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<TmWord> degree(n), core(n, 0), alive(n, 1);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.OutDegree(v);
    max_degree = std::max(max_degree, graph.OutDegree(v));
  }

  std::atomic<uint64_t> remaining{n};
  for (uint32_t k = 1; k <= max_degree + 1; ++k) {
    if (remaining.load(std::memory_order_relaxed) == 0) break;
    // Peel until no vertex below the threshold survives.
    std::atomic<bool> changed{true};
    while (changed.load(std::memory_order_relaxed)) {
      changed.store(false, std::memory_order_relaxed);
      constexpr uint64_t kGrain = 256;
      ParallelForChunked(
          pool, 0, n, kGrain,
          [&](int worker, uint64_t lo, uint64_t hi) {
            // Already-retired vertices are skipped up front (same rule as
            // the per-item loop); the batch covers the rest.
            std::array<VertexId, kGrain> vs;
            std::array<bool, kGrain> removed;
            uint64_t cnt = 0;
            for (uint64_t i = lo; i < hi; ++i) {
              const VertexId v = static_cast<VertexId>(i);
              if (__atomic_load_n(&alive[v], __ATOMIC_RELAXED) == 0) continue;
              vs[cnt++] = v;
            }
            RunBatch(
                tm, worker, 0, cnt,
                [&](uint64_t j) { return graph.OutDegree(vs[j]) + 1; },
                [&](auto& txn, uint64_t j) {
                  const VertexId v = vs[j];
                  removed[j] = false;
                  if (txn.Read(v, &alive[v]) == 0) return;
                  if (txn.Read(v, &degree[v]) >= k) return;
                  txn.Write(v, &alive[v], 0);
                  txn.Write(v, &core[v], k - 1);
                  for (const VertexId u : graph.OutNeighbors(v)) {
                    if (u == v) continue;
                    if (txn.Read(u, &alive[u]) != 0) {
                      txn.Write(u, &degree[u], txn.Read(u, &degree[u]) - 1);
                    }
                  }
                  removed[j] = true;
                });
            uint64_t retired = 0;
            for (uint64_t j = 0; j < cnt; ++j) retired += removed[j] ? 1 : 0;
            if (retired > 0) {
              remaining.fetch_sub(retired, std::memory_order_relaxed);
              changed.store(true, std::memory_order_relaxed);
            }
          });
    }
  }
  // Every vertex is retired by k = residual_degree + 1 <= max_degree + 1,
  // so all core numbers are assigned when the loop exits.
  return core;
}

}  // namespace tufast

#endif  // TUFAST_ALGORITHMS_KCORE_H_
