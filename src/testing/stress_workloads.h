#ifndef TUFAST_TESTING_STRESS_WORKLOADS_H_
#define TUFAST_TESTING_STRESS_WORKLOADS_H_

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "testing/failpoints.h"
#include "tm/batch_executor.h"
#include "tm/scheduler_2pl.h"
#include "tm/scheduler_hsync.h"
#include "tm/scheduler_hto.h"
#include "tm/scheduler_silo.h"
#include "tm/scheduler_tinystm.h"
#include "tm/scheduler_to.h"
#include "tm/tufast.h"

namespace tufast {

/// Invariant-checking stress workloads, run against any scheduler under
/// any failpoint plan. Each returns std::nullopt when the invariant held
/// and a human-readable violation description otherwise; the caller owns
/// printing the failing (seed, scheduler, policy) triple for replay.
///
/// All arithmetic is on unsigned TmWord, so the conservation invariants
/// hold modulo 2^64 and balances may freely "go negative" (wrap) without
/// weakening the check: a lost or duplicated update still breaks the sum.
struct StressConfig {
  int threads = 3;
  int txns_per_thread = 150;
  VertexId vertices = 48;
  uint64_t seed = 1;
  /// Honor the kPrevention contract: acquire vertices in ascending id
  /// order and declare write intent up front (ReadForUpdate), so no
  /// shared->exclusive upgrade can deadlock. Leave false for kDetection /
  /// kTimeout runs, where upgrade contention is exactly what we stress.
  bool ordered_for_update = false;
  /// Draw per-transaction size hints from a mix that routes through all
  /// of H, O and L on TuFast (other schedulers ignore the hint).
  bool vary_size_hints = true;
};

inline uint64_t DrawSizeHint(Rng& rng, const StressConfig& cfg) {
  if (!cfg.vary_size_hints) return 4;
  const uint64_t r = rng.NextBounded(100);
  if (r < 80) return 4;              // H-eligible.
  if (r < 95) return uint64_t{1} << 10;  // Above H threshold: O mode.
  return uint64_t{1} << 15;          // Above o_hint_threshold: straight to L.
}

inline uint64_t PerThreadSeed(uint64_t seed, int thread) {
  uint64_t sm = seed + 0x100 * static_cast<uint64_t>(thread + 1);
  return SplitMix64(sm);
}

/// Bank-transfer conservation: random pairwise transfers; the grand total
/// must be exactly preserved. Catches lost writes, torn publication, and
/// aborted transactions leaking partial effects.
template <typename Scheduler>
std::optional<std::string> RunBankTransferConservation(
    Scheduler& tm, const StressConfig& cfg) {
  constexpr TmWord kInitial = 1000;
  std::vector<TmWord> data(cfg.vertices, kInitial);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t));
      for (int i = 0; i < cfg.txns_per_thread; ++i) {
        const VertexId from =
            static_cast<VertexId>(rng.NextBounded(cfg.vertices));
        VertexId to =
            static_cast<VertexId>(rng.NextBounded(cfg.vertices - 1));
        if (to >= from) ++to;
        const TmWord amount = 1 + rng.NextBounded(5);
        const uint64_t hint = DrawSizeHint(rng, cfg);
        if (cfg.ordered_for_update) {
          const VertexId lo = from < to ? from : to;
          const VertexId hi = from < to ? to : from;
          tm.Run(t, hint, [&](auto& txn) {
            const TmWord lo_v = txn.ReadForUpdate(lo, &data[lo]);
            const TmWord hi_v = txn.ReadForUpdate(hi, &data[hi]);
            const TmWord lo_new = lo == from ? lo_v - amount : lo_v + amount;
            const TmWord hi_new = hi == from ? hi_v - amount : hi_v + amount;
            txn.Write(lo, &data[lo], lo_new);
            txn.Write(hi, &data[hi], hi_new);
          });
        } else {
          tm.Run(t, hint, [&](auto& txn) {
            const TmWord a = txn.Read(from, &data[from]);
            const TmWord b = txn.Read(to, &data[to]);
            txn.Write(from, &data[from], a - amount);
            txn.Write(to, &data[to], b + amount);
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  TmWord total = 0;
  for (VertexId v = 0; v < cfg.vertices; ++v) total += data[v];
  const TmWord expected = static_cast<TmWord>(cfg.vertices) * kInitial;
  if (total != expected) {
    return "bank-transfer conservation violated: total " +
           std::to_string(total) + " != expected " + std::to_string(expected);
  }
  return std::nullopt;
}

/// Lost-update detector: zipf-skewed read-modify-write increments; the
/// final counter sum must equal the number of committed transactions.
/// The skew concentrates contention on a few vertices, maximizing the
/// chance that a broken scheduler interleaves two RMWs.
template <typename Scheduler>
std::optional<std::string> RunLostUpdateDetector(Scheduler& tm,
                                                 const StressConfig& cfg) {
  std::vector<TmWord> counters(cfg.vertices, 0);
  std::vector<uint64_t> committed(cfg.threads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t) ^ 0xb10cULL);
      for (int i = 0; i < cfg.txns_per_thread; ++i) {
        const VertexId v =
            static_cast<VertexId>(rng.NextZipf(cfg.vertices, 0.8));
        const uint64_t hint = DrawSizeHint(rng, cfg);
        const RunOutcome outcome = tm.Run(t, hint, [&](auto& txn) {
          // Ordered mode declares write intent up front so a single-vertex
          // RMW never needs a shared->exclusive upgrade (which two
          // concurrent upgraders turn into a genuine deadlock that the
          // kPrevention policy, by contract, is never asked to resolve).
          const TmWord old = cfg.ordered_for_update
                                 ? txn.ReadForUpdate(v, &counters[v])
                                 : txn.Read(v, &counters[v]);
          txn.Write(v, &counters[v], old + 1);
        });
        if (outcome.committed) ++committed[t];
      }
    });
  }
  for (auto& th : threads) th.join();

  TmWord total = 0;
  for (VertexId v = 0; v < cfg.vertices; ++v) total += counters[v];
  uint64_t expected = 0;
  for (uint64_t c : committed) expected += c;
  if (total != expected) {
    return "lost update: counter sum " + std::to_string(total) + " != " +
           std::to_string(expected) + " committed increments";
  }
  return std::nullopt;
}

/// Snapshot-read consistency: writers move value between the two cells of
/// a pair (sum invariant per pair); readers transactionally read both
/// cells and the committed snapshot must show the invariant sum. Catches
/// non-atomic visibility of a committed writer (doomed optimistic reads
/// are fine — they must abort, not commit).
template <typename Scheduler>
std::optional<std::string> RunSnapshotReadConsistency(
    Scheduler& tm, const StressConfig& cfg) {
  constexpr TmWord kPairSum = 10000;
  const VertexId pairs = cfg.vertices / 2;
  std::vector<TmWord> data(cfg.vertices, 0);
  for (VertexId p = 0; p < pairs; ++p) data[2 * p] = kPairSum;

  std::vector<std::string> failures(cfg.threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t) ^ 0x5a95ULL);
      for (int i = 0; i < cfg.txns_per_thread; ++i) {
        const VertexId p = static_cast<VertexId>(rng.NextBounded(pairs));
        const VertexId x = 2 * p;
        const VertexId y = 2 * p + 1;
        const uint64_t hint = DrawSizeHint(rng, cfg);
        if (i % 2 == t % 2) {  // Writer: move delta from x to y.
          const TmWord delta = 1 + rng.NextBounded(7);
          tm.Run(t, hint, [&](auto& txn) {
            const TmWord xv = cfg.ordered_for_update
                                  ? txn.ReadForUpdate(x, &data[x])
                                  : txn.Read(x, &data[x]);
            const TmWord yv = cfg.ordered_for_update
                                  ? txn.ReadForUpdate(y, &data[y])
                                  : txn.Read(y, &data[y]);
            txn.Write(x, &data[x], xv - delta);
            txn.Write(y, &data[y], yv + delta);
          });
        } else {  // Reader: snapshot both cells.
          TmWord sum = 0;  // Re-written on every re-execution of the body.
          const RunOutcome outcome = tm.Run(t, hint, [&](auto& txn) {
            sum = txn.Read(x, &data[x]) + txn.Read(y, &data[y]);
          });
          // Only the committed snapshot must be consistent; judge after
          // Run returns so doomed attempts that later aborted don't count.
          if (outcome.committed && sum != kPairSum && failures[t].empty()) {
            failures[t] = "snapshot read saw pair " + std::to_string(p) +
                          " sum " + std::to_string(sum) + " != " +
                          std::to_string(kPairSum);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& f : failures) {
    if (!f.empty()) return f;
  }
  return std::nullopt;
}

/// Runs all three invariant workloads; first violation wins.
template <typename Scheduler>
std::optional<std::string> RunInvariantSuite(Scheduler& tm,
                                             const StressConfig& cfg) {
  if (auto err = RunBankTransferConservation(tm, cfg)) return err;
  if (auto err = RunLostUpdateDetector(tm, cfg)) return err;
  if (auto err = RunSnapshotReadConsistency(tm, cfg)) return err;
  return std::nullopt;
}

/// MVCC snapshot-read suite (run against an MVCC-enabled scheduler, see
/// MakeMvccSchedulerFor): writers hammer pair-transfer transactions
/// while snapshot readers go through RunReadOnly. Checks (1) every
/// committed snapshot shows the invariant pair sum — a version chain
/// that loses, reorders, or double-applies a pre-image breaks it; and
/// (2) snapshot readers NEVER abort: RunOutcome::aborts must stay 0 on
/// every read-only transaction. Designed to run with kVersionReclaim /
/// kStaleEpoch failpoints armed, which force reclamation passes mid-
/// stream and stretch snapshot windows so reads walk deep into chains.
template <typename Scheduler>
std::optional<std::string> RunMvccSnapshotSuite(Scheduler& tm,
                                                const StressConfig& cfg) {
  constexpr TmWord kPairSum = 10000;
  const VertexId pairs = cfg.vertices / 2;
  std::vector<TmWord> data(cfg.vertices, 0);
  for (VertexId p = 0; p < pairs; ++p) data[2 * p] = kPairSum;

  std::vector<std::string> failures(cfg.threads);
  std::vector<uint64_t> reader_aborts(cfg.threads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t) ^ 0x3cc5ULL);
      for (int i = 0; i < cfg.txns_per_thread; ++i) {
        const VertexId p = static_cast<VertexId>(rng.NextBounded(pairs));
        const VertexId x = 2 * p;
        const VertexId y = 2 * p + 1;
        const uint64_t hint = DrawSizeHint(rng, cfg);
        if (i % 2 == t % 2) {  // Writer: move delta from x to y.
          const TmWord delta = 1 + rng.NextBounded(7);
          tm.Run(t, hint, [&](auto& txn) {
            const TmWord xv = cfg.ordered_for_update
                                  ? txn.ReadForUpdate(x, &data[x])
                                  : txn.Read(x, &data[x]);
            const TmWord yv = cfg.ordered_for_update
                                  ? txn.ReadForUpdate(y, &data[y])
                                  : txn.Read(y, &data[y]);
            txn.Write(x, &data[x], xv - delta);
            txn.Write(y, &data[y], yv + delta);
          });
        } else {  // Snapshot reader: both cells at one timestamp.
          TmWord sum = 0;
          const RunOutcome outcome = tm.RunReadOnly(t, hint, [&](auto& txn) {
            sum = txn.Read(x, &data[x]) + txn.Read(y, &data[y]);
          });
          reader_aborts[t] += outcome.aborts;
          if (outcome.committed && sum != kPairSum && failures[t].empty()) {
            failures[t] = "mvcc snapshot saw pair " + std::to_string(p) +
                          " sum " + std::to_string(sum) + " != " +
                          std::to_string(kPairSum);
          }
          if (!outcome.committed && failures[t].empty()) {
            failures[t] = "mvcc snapshot read did not commit";
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& f : failures) {
    if (!f.empty()) return f;
  }
  uint64_t aborts = 0;
  for (uint64_t a : reader_aborts) aborts += a;
  if (aborts != 0) {
    return "mvcc snapshot readers aborted " + std::to_string(aborts) +
           " time(s); snapshot reads must be abort-free";
  }
  return std::nullopt;
}

/// Items per RunBatch call in the sharded batch workloads: small enough
/// that every thread issues many batches (lots of mailbox flush cycles),
/// large enough that the sharded router ships multi-item drain batches.
constexpr uint64_t kStressBatchItems = 16;

/// Batched bank-transfer conservation through the home-aware RunBatch
/// front-end: each batch item transfers between two random vertices with
/// home(k) = the from-vertex, so on a sharded TuFast config a large
/// fraction of items crosses shards as active messages while baselines
/// take the per-item fallback. The grand total must be exactly
/// preserved — a message that is dropped, executed twice (sent AND
/// bounced local), or torn across the drain boundary breaks the sum.
template <typename Scheduler>
std::optional<std::string> RunShardedBatchConservation(
    Scheduler& tm, const StressConfig& cfg) {
  constexpr TmWord kInitial = 1000;
  std::vector<TmWord> data(cfg.vertices, kInitial);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t) ^ 0x5ade0ULL);
      const int batches =
          (cfg.txns_per_thread + static_cast<int>(kStressBatchItems) - 1) /
          static_cast<int>(kStressBatchItems);
      for (int b = 0; b < batches; ++b) {
        VertexId from[kStressBatchItems];
        VertexId to[kStressBatchItems];
        TmWord amount[kStressBatchItems];
        uint64_t hints[kStressBatchItems];
        for (uint64_t k = 0; k < kStressBatchItems; ++k) {
          from[k] = static_cast<VertexId>(rng.NextBounded(cfg.vertices));
          to[k] = static_cast<VertexId>(rng.NextBounded(cfg.vertices - 1));
          if (to[k] >= from[k]) ++to[k];
          amount[k] = 1 + rng.NextBounded(5);
          hints[k] = DrawSizeHint(rng, cfg);
        }
        RunBatch(
            tm, t, 0, kStressBatchItems,
            [&](uint64_t k) { return hints[k]; },
            [&](uint64_t k) { return from[k]; },
            [&](auto& txn, uint64_t k) {
              if (cfg.ordered_for_update) {
                const VertexId lo = from[k] < to[k] ? from[k] : to[k];
                const VertexId hi = from[k] < to[k] ? to[k] : from[k];
                const TmWord lo_v = txn.ReadForUpdate(lo, &data[lo]);
                const TmWord hi_v = txn.ReadForUpdate(hi, &data[hi]);
                txn.Write(lo, &data[lo],
                          lo == from[k] ? lo_v - amount[k] : lo_v + amount[k]);
                txn.Write(hi, &data[hi],
                          hi == from[k] ? hi_v - amount[k] : hi_v + amount[k]);
              } else {
                const TmWord a = txn.Read(from[k], &data[from[k]]);
                const TmWord b2 = txn.Read(to[k], &data[to[k]]);
                txn.Write(from[k], &data[from[k]], a - amount[k]);
                txn.Write(to[k], &data[to[k]], b2 + amount[k]);
              }
            });
      }
    });
  }
  for (auto& th : threads) th.join();

  TmWord total = 0;
  for (VertexId v = 0; v < cfg.vertices; ++v) total += data[v];
  const TmWord expected = static_cast<TmWord>(cfg.vertices) * kInitial;
  if (total != expected) {
    return "sharded batch conservation violated: total " +
           std::to_string(total) + " != expected " + std::to_string(expected);
  }
  return std::nullopt;
}

/// Batched lost-update / exactly-once detector: every thread's increment
/// targets are drawn up front from a deterministic stream, so the exact
/// per-vertex histogram is known before the run. RunOutcome::committed is
/// false only on an explicit user Abort() (tm/outcome.h) and these bodies
/// never abort, so after the run each counter must equal its histogram
/// cell exactly: a low cell is a dropped or lost update (message never
/// drained, fused write discarded), a high cell is a double execution
/// (message drained AND bounced local).
template <typename Scheduler>
std::optional<std::string> RunShardedBatchExactlyOnce(
    Scheduler& tm, const StressConfig& cfg) {
  std::vector<TmWord> counters(cfg.vertices, 0);
  std::vector<TmWord> expected(cfg.vertices, 0);
  std::vector<std::vector<VertexId>> targets(cfg.threads);
  std::vector<std::vector<uint64_t>> hints(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    Rng rng(PerThreadSeed(cfg.seed, t) ^ 0xe1aceULL);
    for (int i = 0; i < cfg.txns_per_thread; ++i) {
      const VertexId v = static_cast<VertexId>(rng.NextZipf(cfg.vertices, 0.8));
      targets[t].push_back(v);
      hints[t].push_back(DrawSizeHint(rng, cfg));
      ++expected[v];
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      const std::vector<VertexId>& mine = targets[t];
      const std::vector<uint64_t>& my_hints = hints[t];
      for (uint64_t lo = 0; lo < mine.size(); lo += kStressBatchItems) {
        const uint64_t hi =
            lo + kStressBatchItems < mine.size() ? lo + kStressBatchItems
                                                 : mine.size();
        RunBatch(
            tm, t, lo, hi, [&](uint64_t k) { return my_hints[k]; },
            [&](uint64_t k) { return mine[k]; },
            [&](auto& txn, uint64_t k) {
              const VertexId v = mine[k];
              const TmWord old = cfg.ordered_for_update
                                     ? txn.ReadForUpdate(v, &counters[v])
                                     : txn.Read(v, &counters[v]);
              txn.Write(v, &counters[v], old + 1);
            });
      }
    });
  }
  for (auto& th : threads) th.join();

  for (VertexId v = 0; v < cfg.vertices; ++v) {
    if (counters[v] != expected[v]) {
      return "sharded batch exactly-once violated: vertex " +
             std::to_string(v) + " count " + std::to_string(counters[v]) +
             " != expected " + std::to_string(expected[v]);
    }
  }
  return std::nullopt;
}

/// Runs both sharded batch workloads; first violation wins. On a sharded
/// TuFast these exercise the message path end to end; on baselines (and
/// unsharded TuFast) the same calls take the fallback/fused paths, which
/// is exactly the cross-scheduler comparison the fuzzer sweeps.
template <typename Scheduler>
std::optional<std::string> RunShardedInvariantSuite(Scheduler& tm,
                                                    const StressConfig& cfg) {
  if (auto err = RunShardedBatchConservation(tm, cfg)) return err;
  if (auto err = RunShardedBatchExactlyOnce(tm, cfg)) return err;
  return std::nullopt;
}

/// Detects a scheduler Config with a deadlock_policy knob (TuFast). The
/// Hsync/HTO Configs exist but carry no policy, so keying on the member —
/// not the typedef — is what matters.
template <typename S, typename = void>
struct SchedulerConfigHasPolicy : std::false_type {};
template <typename S>
struct SchedulerConfigHasPolicy<
    S, std::void_t<decltype(std::declval<typename S::Config&>()
                                .deadlock_policy)>> : std::true_type {};

/// Whether a scheduler's behavior depends on the deadlock policy at all:
/// TuFast (Config knob) and 2PL (constructor parameter). Used to skip
/// redundant policy sweeps for the five fixed baselines.
template <typename Scheduler, typename Htm>
constexpr bool kSchedulerUsesPolicy =
    std::is_constructible_v<Scheduler, Htm&, VertexId, DeadlockPolicy> ||
    SchedulerConfigHasPolicy<Scheduler>::value;

/// Uniform construction across all seven schedulers; lets stress drivers
/// iterate scheduler x policy generically.
template <typename Scheduler, typename Htm>
std::unique_ptr<Scheduler> MakeSchedulerFor(Htm& htm, VertexId vertices,
                                            DeadlockPolicy policy) {
  if constexpr (std::is_constructible_v<Scheduler, Htm&, VertexId,
                                        DeadlockPolicy>) {
    return std::make_unique<Scheduler>(htm, vertices, policy);
  } else if constexpr (SchedulerConfigHasPolicy<Scheduler>::value) {
    typename Scheduler::Config config;
    config.deadlock_policy = policy;
    return std::make_unique<Scheduler>(htm, vertices, config);
  } else {
    (void)policy;
    return std::make_unique<Scheduler>(htm, vertices);
  }
}

/// Detects a scheduler Config with the MVCC switch (TuFast).
template <typename S, typename = void>
struct SchedulerConfigHasMvccKnob : std::false_type {};
template <typename S>
struct SchedulerConfigHasMvccKnob<
    S, std::void_t<decltype(std::declval<typename S::Config&>()
                                .enable_mvcc)>> : std::true_type {};

/// MVCC-enabled counterpart of MakeSchedulerFor: TuFast switches on
/// Config::enable_mvcc, the six baselines expose EnableMvcc(). Either
/// way the returned scheduler installs versions on every commit and
/// serves RunReadOnly() from snapshots.
template <typename Scheduler, typename Htm>
std::unique_ptr<Scheduler> MakeMvccSchedulerFor(Htm& htm, VertexId vertices,
                                                DeadlockPolicy policy) {
  if constexpr (SchedulerConfigHasMvccKnob<Scheduler>::value) {
    typename Scheduler::Config config;
    if constexpr (SchedulerConfigHasPolicy<Scheduler>::value) {
      config.deadlock_policy = policy;
    }
    config.enable_mvcc = true;
    return std::make_unique<Scheduler>(htm, vertices, config);
  } else {
    auto tm = MakeSchedulerFor<Scheduler>(htm, vertices, policy);
    tm->EnableMvcc();
    return tm;
  }
}

/// Detects a scheduler Config with the shard-per-core switch (TuFast).
template <typename S, typename = void>
struct SchedulerConfigHasShardingKnob : std::false_type {};
template <typename S>
struct SchedulerConfigHasShardingKnob<
    S, std::void_t<decltype(std::declval<typename S::Config&>()
                                .enable_sharding)>> : std::true_type {};

/// Sharded counterpart of MakeSchedulerFor: schedulers whose Config has
/// the sharding switch get a deliberately awkward sharded setup — more
/// shards than workers (non-trivial cyclic deal), a small mailbox
/// (organic full-ring bounces) and a small drain batch (many flush
/// cycles). Everything else falls through to the plain constructor, so
/// the fuzzer can sweep the same suite over the whole scheduler matrix.
template <typename Scheduler, typename Htm>
std::unique_ptr<Scheduler> MakeShardedSchedulerFor(Htm& htm, VertexId vertices,
                                                   DeadlockPolicy policy,
                                                   int workers) {
  if constexpr (SchedulerConfigHasShardingKnob<Scheduler>::value) {
    typename Scheduler::Config config;
    if constexpr (SchedulerConfigHasPolicy<Scheduler>::value) {
      config.deadlock_policy = policy;
    }
    config.enable_sharding = true;
    config.shard_workers = static_cast<uint32_t>(workers);
    config.num_shards = static_cast<uint32_t>(workers) + 1;
    config.am_batch = 8;
    config.mailbox_capacity = 64;
    return std::make_unique<Scheduler>(htm, vertices, config);
  } else {
    return MakeSchedulerFor<Scheduler>(htm, vertices, policy);
  }
}

/// Detects a scheduler Config with the hot-vertex combining switch
/// (TuFast).
template <typename S, typename = void>
struct SchedulerConfigHasCombiningKnob : std::false_type {};
template <typename S>
struct SchedulerConfigHasCombiningKnob<
    S, std::void_t<decltype(std::declval<typename S::Config&>()
                                .enable_combining)>> : std::true_type {};

/// Combining counterpart of MakeSchedulerFor: schedulers whose Config has
/// the combining switch get a deliberately twitchy setup — a tiny history
/// (heavy bucket aliasing), a hair-trigger hot threshold (a couple of
/// aborts heat a region) and a 2-slot combiner (organic slot-full
/// bounces), so the announce/collect protocol sees constant traffic even
/// in short fuzz runs. `sharded` additionally stacks the awkward sharded
/// setup from MakeShardedSchedulerFor on top, exercising the
/// local-list-through-the-combiner composition. Everything else falls
/// through to the plain constructor.
template <typename Scheduler, typename Htm>
std::unique_ptr<Scheduler> MakeCombiningSchedulerFor(Htm& htm,
                                                     VertexId vertices,
                                                     DeadlockPolicy policy,
                                                     bool sharded,
                                                     int workers) {
  if constexpr (SchedulerConfigHasCombiningKnob<Scheduler>::value) {
    typename Scheduler::Config config;
    if constexpr (SchedulerConfigHasPolicy<Scheduler>::value) {
      config.deadlock_policy = policy;
    }
    config.enable_combining = true;
    config.hot_threshold = 0.05;
    config.combiner_slots = 2;
    config.combine_history_buckets = 64;
    if (sharded) {
      config.enable_sharding = true;
      config.shard_workers = static_cast<uint32_t>(workers);
      config.num_shards = static_cast<uint32_t>(workers) + 1;
      config.am_batch = 8;
      config.mailbox_capacity = 64;
    }
    return std::make_unique<Scheduler>(htm, vertices, config);
  } else {
    (void)sharded;
    (void)workers;
    return MakeSchedulerFor<Scheduler>(htm, vertices, policy);
  }
}

}  // namespace tufast

#endif  // TUFAST_TESTING_STRESS_WORKLOADS_H_
