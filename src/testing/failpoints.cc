#include "testing/failpoints.h"

#include <thread>

namespace tufast {

namespace {

const char* ActionName(FailAction action) {
  switch (action) {
    case FailAction::kNone:
      return "none";
    case FailAction::kAbortConflict:
      return "abort-conflict";
    case FailAction::kAbortCapacity:
      return "abort-capacity";
    case FailAction::kFail:
      return "fail";
  }
  return "?";
}

}  // namespace

FailpointPlan::FailpointPlan(const Config& config) : config_(config) {
  for (int i = 0; i < kNumStreams; ++i) {
    // Distinct deterministic stream per worker slot: a slot's draw
    // sequence depends only on (seed, slot).
    streams_[i].rng = Rng(config.seed + 0x9e3779b97f4a7c15ULL *
                                            static_cast<uint64_t>(i + 1));
  }
  trace_.reserve(256);
}

void FailpointPlan::ForceAt(FailSite site, int slot, uint64_t hit_index,
                            FailAction action) {
  forced_.push_back(Forced{site, slot, hit_index, action});
}

FailAction FailpointPlan::DefaultActionFor(FailSite site) {
  switch (site) {
    case FailSite::kHtmLoad:
    case FailSite::kHtmStore:
    case FailSite::kHtmCommit:
      return FailAction::kAbortConflict;
    default:
      return FailAction::kFail;
  }
}

FailAction FailpointPlan::Decide(SlotStream& stream, FailSite site, int slot,
                                 uint64_t hit_index, uint32_t* yield_burst) {
  if (config_.yield_prob > 0.0 && stream.rng.NextBool(config_.yield_prob)) {
    *yield_burst = 1 + static_cast<uint32_t>(stream.rng.NextBounded(
                           config_.max_yield_burst > 0 ? config_.max_yield_burst
                                                       : 1));
  }
  for (const Forced& f : forced_) {
    if (f.site == site && f.slot == slot && f.hit_index == hit_index) {
      return f.action;
    }
  }
  const int idx = static_cast<int>(site);
  if (config_.site_prob[idx] > 0.0 &&
      stream.rng.NextBool(config_.site_prob[idx])) {
    const FailAction configured = config_.site_action[idx];
    return configured == FailAction::kNone ? DefaultActionFor(site)
                                           : configured;
  }
  return FailAction::kNone;
}

FailAction FailpointPlan::OnHit(FailSite site, int slot) {
  const int idx = static_cast<int>(site);
  uint32_t yield_burst = 0;
  FailAction action = FailAction::kNone;
  uint64_t hit_index = 0;
  if (slot >= 0 && slot < kMaxHtmThreads) {
    SlotStream& stream = streams_[slot];
    hit_index = stream.hits[idx]++;
    action = Decide(stream, site, slot, hit_index, &yield_burst);
  } else {
    // Slotless sites (LockTable try-ops) share one stream; the lock keeps
    // the RNG and hit counter coherent, though the cross-thread order of
    // draws is inherently schedule-dependent.
    SpinLockGuard guard(shared_stream_lock_);
    SlotStream& stream = streams_[kMaxHtmThreads];
    hit_index = stream.hits[idx]++;
    action = Decide(stream, site, -1, hit_index, &yield_burst);
  }
  if (action != FailAction::kNone) {
    injections_.fetch_add(1, std::memory_order_relaxed);
    RecordTrace(site, slot, hit_index, action);
  }
  // Yield AFTER all bookkeeping so no lock is held across the reschedule.
  for (uint32_t i = 0; i < yield_burst; ++i) std::this_thread::yield();
  return action;
}

void FailpointPlan::RecordTrace(FailSite site, int slot, uint64_t hit_index,
                                FailAction action) {
  SpinLockGuard guard(trace_lock_);
  if (trace_.size() >= kMaxTraceEntries) return;
  trace_.push_back(TraceEntry{site, static_cast<int16_t>(slot < 0 ? -1 : slot),
                              hit_index, action});
}

uint64_t FailpointPlan::HitCount(FailSite site, int slot) const {
  const int idx = static_cast<int>(site);
  if (slot >= 0 && slot < kMaxHtmThreads) return streams_[slot].hits[idx];
  SpinLockGuard guard(shared_stream_lock_);
  return streams_[kMaxHtmThreads].hits[idx];
}

std::vector<FailpointPlan::TraceEntry> FailpointPlan::TraceSnapshot() const {
  SpinLockGuard guard(trace_lock_);
  return trace_;
}

std::string FailpointPlan::FormatTrace() const {
  std::string out;
  for (const TraceEntry& e : TraceSnapshot()) {
    char line[128];
    std::snprintf(line, sizeof(line), "%s %d %llu %s\n", FailSiteName(e.site),
                  static_cast<int>(e.slot),
                  static_cast<unsigned long long>(e.hit_index),
                  ActionName(e.action));
    out += line;
  }
  return out;
}

void FailpointPlan::DumpTrace(std::FILE* out) const {
  const std::string text = FormatTrace();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fflush(out);
}

}  // namespace tufast
