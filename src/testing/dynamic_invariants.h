#ifndef TUFAST_TESTING_DYNAMIC_INVARIANTS_H_
#define TUFAST_TESTING_DYNAMIC_INVARIANTS_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "graph/builder.h"
#include "graph/dynamic/dynamic_graph.h"
#include "testing/stress_workloads.h"

namespace tufast {

/// Invariant-checking stress workloads for the dynamic-graph subsystem,
/// mirroring stress_workloads.h: run against any scheduler under any
/// failpoint plan, return std::nullopt when the invariant held and a
/// human-readable violation otherwise. The caller owns printing the
/// failing (seed, scheduler, policy) triple for replay.
///
/// All DynamicGraph mutations lock exactly one vertex and declare write
/// intent up front, so every workload here is safe under all three
/// deadlock policies, including kPrevention.
struct DynamicStressConfig {
  int threads = 3;
  int batches_per_thread = 50;
  int batch_size = 4;
  /// Source/target id range of the initial vertex set.
  VertexId vertices = 32;
  uint64_t seed = 1;

  /// Vertex-space bound the scheduler must be built for: the no-lost-
  /// insert workload grows the graph by one AddVertex per thread.
  VertexId Capacity() const {
    return vertices + static_cast<VertexId>(threads);
  }
};

/// Fresh dynamic store with `n` empty vertices and room for `extra` more.
inline std::unique_ptr<DynamicGraph> MakeEmptyDynamicGraph(
    VertexId n, VertexId extra = 0, bool weighted = false) {
  auto dyn = std::make_unique<DynamicGraph>(
      n + extra, DynamicGraph::Options{.weighted = weighted});
  GraphBuilder builder(n);
  dyn->LoadCsrQuiesced(builder.Build());
  return dyn;
}

/// Edge-count conservation: random insert/delete/reweight batches from
/// every thread; afterwards the live-edge total must equal the committed
/// inserts minus the committed removals, the structural audit must pass,
/// and the frozen snapshot must carry exactly the live edges. Catches
/// lost or double-applied updates, leaked tombstones, and degree-counter
/// drift.
template <typename Scheduler>
std::optional<std::string> RunEdgeCountConservation(
    Scheduler& tm, const DynamicStressConfig& cfg) {
  auto dyn = MakeEmptyDynamicGraph(cfg.vertices);
  std::vector<ApplyResult> tallies(cfg.threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t) ^ 0xd1eaULL);
      std::vector<EdgeUpdate> batch;
      for (int i = 0; i < cfg.batches_per_thread; ++i) {
        batch.clear();
        for (int k = 0; k < cfg.batch_size; ++k) {
          const VertexId u =
              static_cast<VertexId>(rng.NextBounded(cfg.vertices));
          const VertexId v =
              static_cast<VertexId>(rng.NextBounded(cfg.vertices));
          const uint64_t r = rng.NextBounded(10);
          if (r < 6) {
            batch.push_back(
                EdgeUpdate::Insert(u, v, static_cast<uint32_t>(r)));
          } else if (r < 9) {
            batch.push_back(EdgeUpdate::Delete(u, v));
          } else {
            batch.push_back(
                EdgeUpdate::Reweight(u, v, static_cast<uint32_t>(r)));
          }
        }
        tallies[t].Merge(dyn->ApplyBatch(tm, t, batch));
      }
    });
  }
  for (auto& th : threads) th.join();

  ApplyResult total;
  for (const ApplyResult& r : tallies) total.Merge(r);
  const uint64_t live = dyn->TotalLiveEdges();
  if (live != total.inserted - total.removed) {
    return "edge-count conservation violated: " + std::to_string(live) +
           " live edges != " + std::to_string(total.inserted) +
           " inserted - " + std::to_string(total.removed) + " removed";
  }
  if (auto err = dyn->CheckInvariantsQuiesced()) {
    return "post-churn structural audit: " + *err;
  }
  if (dyn->Freeze().NumEdges() != live) {
    return "frozen snapshot edge count != live-edge total " +
           std::to_string(live);
  }
  return std::nullopt;
}

/// No-lost-insert: threads hammer the same source vertices but insert
/// disjoint (per-thread) target sets, each thread also growing the graph
/// by one AddVertex with private out-edges. Every acknowledged insert
/// must surface in the frozen snapshot. Catches inserts dropped by a
/// mis-retried transaction and chain links lost to a racing append.
template <typename Scheduler>
std::optional<std::string> RunNoLostInsert(Scheduler& tm,
                                           const DynamicStressConfig& cfg) {
  auto dyn =
      MakeEmptyDynamicGraph(cfg.vertices, static_cast<VertexId>(cfg.threads));
  std::vector<std::vector<EdgeUpdate>> acknowledged(cfg.threads);
  std::vector<std::string> failures(cfg.threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t) ^ 0x10edULL);
      // Thread t owns targets {t, t + threads, t + 2*threads, ...}: all
      // threads contend on every source vertex, yet no two ever insert
      // the same edge.
      std::vector<EdgeUpdate> mine;
      for (VertexId u = 0; u < cfg.vertices; ++u) {
        for (VertexId v = static_cast<VertexId>(t); v < cfg.vertices;
             v += static_cast<VertexId>(cfg.threads)) {
          mine.push_back(EdgeUpdate::Insert(u, v));
        }
      }
      // The fresh vertex's private out-edges ride along.
      const VertexId own = dyn->AddVertex(tm, t);
      for (VertexId v = 0; v < static_cast<VertexId>(cfg.batch_size); ++v) {
        mine.push_back(EdgeUpdate::Insert(own, v));
      }
      for (size_t i = mine.size(); i > 1; --i) {  // Fisher-Yates.
        std::swap(mine[i - 1], mine[rng.NextBounded(i)]);
      }
      // Half through single-edge transactions, half through batches.
      const size_t half = mine.size() / 2;
      for (size_t i = 0; i < half; ++i) {
        if (!dyn->InsertEdge(tm, t, mine[i].src, mine[i].dst) &&
            failures[t].empty()) {
          failures[t] = "unique insert (" + std::to_string(mine[i].src) +
                        ", " + std::to_string(mine[i].dst) +
                        ") reported as pre-existing";
        }
      }
      for (size_t i = half; i < mine.size();
           i += static_cast<size_t>(cfg.batch_size)) {
        const size_t end =
            std::min(mine.size(), i + static_cast<size_t>(cfg.batch_size));
        const ApplyResult r = dyn->ApplyBatch(
            tm, t, std::span<const EdgeUpdate>(mine).subspan(i, end - i));
        if (r.inserted != end - i && failures[t].empty()) {
          failures[t] = "batch of " + std::to_string(end - i) +
                        " unique inserts acknowledged only " +
                        std::to_string(r.inserted);
        }
      }
      acknowledged[t] = std::move(mine);
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& f : failures) {
    if (!f.empty()) return f;
  }

  const Graph frozen = dyn->Freeze();
  uint64_t expected = 0;
  for (int t = 0; t < cfg.threads; ++t) {
    expected += acknowledged[t].size();
    for (const EdgeUpdate& up : acknowledged[t]) {
      const auto neighbors = frozen.OutNeighbors(up.src);
      if (!std::binary_search(neighbors.begin(), neighbors.end(), up.dst)) {
        return "lost insert: edge (" + std::to_string(up.src) + ", " +
               std::to_string(up.dst) + ") missing from the frozen snapshot";
      }
    }
  }
  if (frozen.NumEdges() != expected) {
    return "frozen snapshot has " + std::to_string(frozen.NumEdges()) +
           " edges, expected exactly " + std::to_string(expected);
  }
  if (auto err = dyn->CheckInvariantsQuiesced()) {
    return "post-insert structural audit: " + *err;
  }
  return std::nullopt;
}

/// Snapshot consistency: every source vertex holds exactly one of the
/// targets {0, 1}; writers flip it with a delete+insert pair in ONE
/// transaction (one ApplyBatch group), readers take transactional
/// per-vertex snapshots. Every committed snapshot must show the
/// invariant — degree word matching the live slots and exactly one of
/// the two targets. Catches torn visibility of the tombstone/insert
/// pair and degree/adjacency skew.
template <typename Scheduler>
std::optional<std::string> RunDynamicSnapshotConsistency(
    Scheduler& tm, const DynamicStressConfig& cfg) {
  auto dyn = MakeEmptyDynamicGraph(cfg.vertices);
  {
    std::vector<EdgeUpdate> init;
    for (VertexId u = 0; u < cfg.vertices; ++u) {
      init.push_back(EdgeUpdate::Insert(u, 0));
    }
    dyn->ApplyBatch(tm, 0, init);
  }

  std::vector<std::string> failures(cfg.threads);
  std::vector<std::thread> threads;
  const int ops = cfg.batches_per_thread * cfg.batch_size;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(PerThreadSeed(cfg.seed, t) ^ 0x5d0cULL);
      VertexSnapshot snap;
      for (int i = 0; i < ops; ++i) {
        const VertexId u =
            static_cast<VertexId>(rng.NextBounded(cfg.vertices));
        if (i % 2 == t % 2) {  // Writer: flip to target 0 or 1 atomically.
          const VertexId to = static_cast<VertexId>(rng.NextBounded(2));
          const EdgeUpdate flip[2] = {EdgeUpdate::Delete(u, 1 - to),
                                      EdgeUpdate::Insert(u, to)};
          dyn->ApplyBatch(tm, t, flip);
        } else {  // Reader: per-vertex transactional snapshot.
          const RunOutcome outcome = dyn->ReadVertexSnapshot(tm, t, u, &snap);
          if (!outcome.committed || !failures[t].empty()) continue;
          if (snap.degree != snap.edges.size()) {
            failures[t] = "snapshot of vertex " + std::to_string(u) +
                          ": degree word " + std::to_string(snap.degree) +
                          " != " + std::to_string(snap.edges.size()) +
                          " live slots";
          } else if (snap.edges.size() != 1 || snap.edges[0].first > 1) {
            failures[t] = "snapshot of vertex " + std::to_string(u) +
                          " shows " + std::to_string(snap.edges.size()) +
                          " edges; expected exactly one of targets {0, 1}";
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& f : failures) {
    if (!f.empty()) return f;
  }
  if (auto err = dyn->CheckInvariantsQuiesced()) {
    return "post-flip structural audit: " + *err;
  }
  const Graph frozen = dyn->Freeze();
  for (VertexId u = 0; u < cfg.vertices; ++u) {
    if (frozen.OutDegree(u) != 1) {
      return "vertex " + std::to_string(u) + " froze with degree " +
             std::to_string(frozen.OutDegree(u)) + ", expected 1";
    }
  }
  return std::nullopt;
}

/// Runs all three dynamic-graph invariant workloads; first violation
/// wins. The scheduler must be sized for cfg.Capacity() vertices.
template <typename Scheduler>
std::optional<std::string> RunDynamicInvariantSuite(
    Scheduler& tm, const DynamicStressConfig& cfg) {
  if (auto err = RunEdgeCountConservation(tm, cfg)) return err;
  if (auto err = RunNoLostInsert(tm, cfg)) return err;
  if (auto err = RunDynamicSnapshotConsistency(tm, cfg)) return err;
  return std::nullopt;
}

}  // namespace tufast

#endif  // TUFAST_TESTING_DYNAMIC_INVARIANTS_H_
