#ifndef TUFAST_TESTING_FAILPOINTS_H_
#define TUFAST_TESTING_FAILPOINTS_H_

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/rng.h"
#include "common/spin.h"
#include "htm/emulated_htm.h"
#include "htm/htm_config.h"

namespace tufast {

/// Deterministic, seed-replayable fault-injection plan for the stress
/// harness (DESIGN.md "Failpoints and schedule fuzzing").
///
/// Two trigger kinds per site:
///  * probabilistic — `Arm(site, prob, action)`: each hit of `site` fires
///    `action` with probability `prob`, drawn from a per-worker-slot RNG
///    stream seeded by (plan seed, slot). A worker's injection sequence
///    therefore depends only on the seed and its own operation sequence,
///    never on cross-thread timing — the property that makes a failing
///    seed replayable.
///  * forced — `ForceAt(site, slot, hit_index, action)`: fires exactly at
///    the `hit_index`-th hit (0-based) of `site` on `slot`. This is how a
///    regression test pins an abort to one chosen operation.
///
/// Independent of injection, every hit may perturb the thread schedule
/// (`yield_prob`): a burst of sched_yield calls moves the preemption
/// point, so repeated seeds explore many interleavings even on a
/// single-core host — the DyAdHyTM-style adversarial timing that real
/// HTM concurrency would provide on a many-core machine.
///
/// Sites hit without a worker slot (LockTable try-ops) share one extra
/// stream guarded by a spinlock; its draws are deterministic per seed but
/// its interleaving across threads is not — forced triggers on slotless
/// sites fire at plan-global hit indices.
///
/// Every fired injection is appended to a bounded trace
/// (site, slot, hit_index, action) for diagnosis and exact replay
/// (`--failpoint-trace=` in the stress driver).
class FailpointPlan {
 public:
  struct Config {
    uint64_t seed = 1;
    /// Per-site probabilistic trigger; kNone action means "site default"
    /// (conflict abort for HTM sites, kFail for lock/router sites).
    double site_prob[kNumFailSites] = {};
    FailAction site_action[kNumFailSites] = {};
    /// Schedule perturbation: probability of a yield burst at any hit.
    double yield_prob = 0.0;
    /// Yield burst length is 1 + uniform[0, max_yield_burst).
    uint32_t max_yield_burst = 3;

    Config& Arm(FailSite site, double prob,
                FailAction action = FailAction::kNone) {
      site_prob[static_cast<int>(site)] = prob;
      site_action[static_cast<int>(site)] = action;
      return *this;
    }
  };

  struct TraceEntry {
    FailSite site;
    int16_t slot;  // -1 for slotless sites
    uint64_t hit_index;
    FailAction action;
  };

  explicit FailpointPlan(const Config& config);
  TUFAST_DISALLOW_COPY_AND_MOVE(FailpointPlan);

  /// Forces `action` at one exact hit. Call before workers start; forced
  /// triggers are scanned read-only afterwards.
  void ForceAt(FailSite site, int slot, uint64_t hit_index,
               FailAction action);

  /// The hook entry point (hot when installed): decides injection and
  /// perturbation for one site hit. Thread-safe.
  FailAction OnHit(FailSite site, int slot);

  const Config& config() const { return config_; }
  uint64_t HitCount(FailSite site, int slot) const;
  uint64_t InjectionCount() const {
    return injections_.load(std::memory_order_relaxed);
  }

  /// Fired injections in firing order (bounded at kMaxTraceEntries).
  std::vector<TraceEntry> TraceSnapshot() const;
  /// One line per fired injection: `<site> <slot> <hit_index> <action>`.
  std::string FormatTrace() const;
  void DumpTrace(std::FILE* out) const;

 private:
  static constexpr size_t kMaxTraceEntries = 1 << 14;
  // Stream kMaxHtmThreads serves slotless hits (slot < 0).
  static constexpr int kNumStreams = kMaxHtmThreads + 1;

  struct alignas(kCacheLineBytes) SlotStream {
    Rng rng;
    uint64_t hits[kNumFailSites] = {};
  };

  struct Forced {
    FailSite site;
    int slot;
    uint64_t hit_index;
    FailAction action;
  };

  static FailAction DefaultActionFor(FailSite site);
  FailAction Decide(SlotStream& stream, FailSite site, int slot,
                    uint64_t hit_index, uint32_t* yield_burst);
  void RecordTrace(FailSite site, int slot, uint64_t hit_index,
                   FailAction action);

  const Config config_;
  std::vector<Forced> forced_;
  SlotStream streams_[kNumStreams];
  mutable SpinLock shared_stream_lock_;  // Guards streams_[kMaxHtmThreads].
  std::atomic<uint64_t> injections_{0};
  mutable SpinLock trace_lock_;
  std::vector<TraceEntry> trace_;
};

/// The active failpoint policy: satisfies the same compile-time contract
/// as NullFailpoints but consults the installed FailpointPlan (if any).
/// Installation is process-global — one stress plan at a time, which is
/// what a deterministic harness wants anyway.
struct StressFailpoints {
  static constexpr bool kEnabled = true;

  static FailAction Hit(FailSite site, int slot) {
    FailpointPlan* plan = plan_.load(std::memory_order_acquire);
    return plan == nullptr ? FailAction::kNone : plan->OnHit(site, slot);
  }

  static void Install(FailpointPlan* plan) {
    plan_.store(plan, std::memory_order_release);
  }
  static FailpointPlan* Current() {
    return plan_.load(std::memory_order_acquire);
  }

 private:
  inline static std::atomic<FailpointPlan*> plan_{nullptr};
};

/// RAII plan installation: install on construction, uninstall (not
/// destroy) on destruction. Keep the scope alive for the whole run —
/// workers dereference the plan on every hit.
class FailpointScope {
 public:
  explicit FailpointScope(FailpointPlan& plan) {
    StressFailpoints::Install(&plan);
  }
  ~FailpointScope() { StressFailpoints::Install(nullptr); }
  TUFAST_DISALLOW_COPY_AND_MOVE(FailpointScope);
};

/// The emulated HTM backend with failpoints armed. Every scheduler is
/// templated on the backend, so `TuFastScheduler<FaultyHtm>` etc. give
/// the whole stack — HTM, lock substrate, router — injected faults.
using FaultyHtm = BasicEmulatedHtm<StressFailpoints>;

}  // namespace tufast

#endif  // TUFAST_TESTING_FAILPOINTS_H_
