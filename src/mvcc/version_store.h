#ifndef TUFAST_MVCC_VERSION_STORE_H_
#define TUFAST_MVCC_VERSION_STORE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "common/compiler.h"
#include "common/failpoints.h"
#include "common/spin.h"
#include "common/types.h"
#include "htm/htm_config.h"
#include "tm/outcome.h"

namespace tufast {

/// One word a committing transaction is about to overwrite: where it
/// lives and which vertex owns it (the version chain is per vertex).
struct MvccWrite {
  VertexId vertex;
  const TmWord* addr;
};

/// Telemetry snapshot of a BasicMvccStore. `installed_nodes` splits as
///   installed = freed + in-limbo + still-linked,
/// where in-limbo = retired - freed and still-linked = installed -
/// retired; after a quiesced ReclaimAll() the whole budget collapses to
/// freed == installed (the flush-balance invariant stress_fuzz checks).
struct MvccCounters {
  uint64_t commits_installed = 0;  // BeginInstall calls with >= 1 write
  uint64_t installed_nodes = 0;
  uint64_t installed_entries = 0;
  uint64_t retired_nodes = 0;  // unlinked from a chain, now in limbo
  uint64_t freed_nodes = 0;    // limbo batches recycled to the pool
  uint64_t reclaim_passes = 0;
  uint64_t snapshots = 0;
  uint64_t snapshot_reads = 0;
  uint64_t max_chain_walk = 0;   // longest version-chain walk by a read
  uint64_t staleness_sum = 0;    // sum over snapshots of clock - S at end
  uint64_t staleness_max = 0;
  uint64_t clock = 0;

  uint64_t LinkedNodes() const { return installed_nodes - retired_nodes; }
  uint64_t LimboNodes() const { return retired_nodes - freed_nodes; }
};

/// Multi-version value layer for abort-free snapshot reads (ROADMAP open
/// item 1; STO's MVCC registry and GTX's chains are the exemplars).
///
/// Design: *undo* chains. Live memory always holds the newest committed
/// value — the schedulers' existing write-back commit paths stay the
/// system of record — and each vertex has a chain of pre-image nodes
/// stamped with the commit timestamp of the transaction that overwrote
/// them. Chains are NOT timestamp-ordered: two commits writing disjoint
/// words of the same vertex may draw timestamps in one order and publish
/// their nodes in the other (orecs/HTM conflict-detect per word or cache
/// line, not per vertex), so a lower-ts node can sit nearer the head
/// than a higher-ts one. A read at snapshot S therefore walks the WHOLE
/// chain and, for its address, applies the pre-image of the *oldest*
/// commit with ts > S — that pre-image is the value as of S. Readers
/// never block writers and never abort.
///
/// Writer protocol (caller = a scheduler commit path that holds
/// exclusive ownership of every written word and has NOT yet published
/// its new values):
///   1. ts = BeginInstall(slot, writes)  — registers the commit as
///      in-flight, draws the commit timestamp, captures pre-images from
///      live memory and pushes them onto the chains;
///   2. caller publishes the new live values (its normal store loop);
///   3. EndInstall(slot)                — clears the in-flight mark.
///
/// Reader protocol: BeginSnapshot pins a reclamation epoch and a read
/// timestamp, reads the clock for S, then waits out any in-flight
/// commit with ts <= S (publication is a handful of stores, so the wait
/// is bounded and short); ResolveRead never blocks after that.
///
/// Reclamation: a node is unlinked once its ts is <= every pinned read
/// timestamp (nobody can need it), then parked in an epoch-stamped
/// limbo batch and recycled once every reader pinned before the unlink
/// has finished (nobody can still be dereferencing it).
template <typename FailpointsT = NullFailpoints>
class BasicMvccStore {
 public:
  using Failpoints = FailpointsT;
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr uint64_t kReserving = 0;

  explicit BasicMvccStore(VertexId num_vertices)
      : heads_(num_vertices) {
    for (auto& h : heads_) h.store(nullptr, std::memory_order_relaxed);
    for (auto& s : inflight_) s.store(kIdle, std::memory_order_relaxed);
    for (auto& s : read_ts_) s.store(kIdle, std::memory_order_relaxed);
    for (auto& s : epochs_) s.store(kIdle, std::memory_order_relaxed);
  }
  TUFAST_DISALLOW_COPY_AND_MOVE(BasicMvccStore);

  ~BasicMvccStore() = default;

  VertexId NumVertices() const {
    return static_cast<VertexId>(heads_.size());
  }

  // ---------------------------------------------------------------- writer

  /// Install pre-image versions for a commit's write set and draw its
  /// commit timestamp. `proj(elem)` must yield an MvccWrite; duplicate
  /// addresses are allowed (all duplicates capture the same pre-image,
  /// so re-applying them is idempotent). Returns 0 — and skips the
  /// clock — for an empty write set. The caller must hold exclusive
  /// ownership of every written word across BeginInstall..EndInstall and
  /// must publish its new values before EndInstall.
  template <typename Range, typename Proj>
  uint64_t BeginInstall(int slot, const Range& range, Proj&& proj) {
    if (std::begin(range) == std::end(range)) return 0;
    const uint64_t ts = ReserveInstallTs(slot);
    InstallPreimages(ts, range, proj);
    return ts;
  }

  /// Step 1 of BeginInstall: mark the slot in-flight and draw the commit
  /// timestamp. Exposed separately so tests can interleave two commits'
  /// draw and publish steps in the adversarial order (lower ts pushed
  /// after higher ts) that concurrent commits to disjoint words of one
  /// vertex produce in the wild.
  uint64_t ReserveInstallTs(int slot) {
    inflight_[slot].store(kReserving, std::memory_order_seq_cst);
    const uint64_t ts = clock_.fetch_add(1, std::memory_order_seq_cst) + 1;
    inflight_[slot].store(ts, std::memory_order_seq_cst);
    return ts;
  }

  /// Step 2 of BeginInstall: capture pre-images from live memory and
  /// push the chain nodes, stamped `ts`.
  template <typename Range, typename Proj>
  void InstallPreimages(uint64_t ts, const Range& range, Proj&& proj) {
    auto it = std::begin(range);
    const auto end = std::end(range);
    Node* open = nullptr;  // current node for open_vertex
    VertexId open_vertex = 0;
    uint64_t nodes = 0, entries = 0;
    for (; it != end; ++it) {
      const MvccWrite w = proj(*it);
      if (TUFAST_UNLIKELY(w.vertex >= heads_.size())) continue;
      if (open == nullptr || open_vertex != w.vertex ||
          open->count == kEntriesPerNode) {
        if (open != nullptr) Publish(open_vertex, open);
        open = AllocNode();
        open->ts = ts;
        open->count = 0;
        open_vertex = w.vertex;
        ++nodes;
      }
      Entry& e = open->entries[open->count++];
      e.addr = w.addr;
      e.value = __atomic_load_n(w.addr, __ATOMIC_ACQUIRE);  // pre-image
      ++entries;
    }
    if (open != nullptr) Publish(open_vertex, open);
    commits_installed_.fetch_add(1, std::memory_order_relaxed);
    installed_nodes_.fetch_add(nodes, std::memory_order_relaxed);
    installed_entries_.fetch_add(entries, std::memory_order_relaxed);
  }

  /// Clears the in-flight mark set by BeginInstall (no-op if the write
  /// set was empty) and amortizes a reclamation pass every few commits.
  void EndInstall(int slot) {
    if (inflight_[slot].load(std::memory_order_relaxed) == kIdle) return;
    inflight_[slot].store(kIdle, std::memory_order_seq_cst);
    bool force = false;
    if constexpr (Failpoints::kEnabled) {
      force = Failpoints::Hit(FailSite::kVersionReclaim, slot) !=
              FailAction::kNone;
    }
    const uint64_t n =
        installs_since_reclaim_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (force || n % kReclaimEvery == 0) ReclaimPass();
  }

  // ---------------------------------------------------------------- reader

  struct Snapshot {
    uint64_t ts = 0;
  };

  /// Pins this slot's reclamation epoch and read timestamp, then returns
  /// a snapshot timestamp S such that every commit with ts <= S is fully
  /// published and no version a read at S could need will be reclaimed
  /// while the snapshot is active.
  Snapshot BeginSnapshot(int slot) {
    // Epoch pin first: any limbo batch retired after this point will
    // wait for us before its memory is recycled. A plain load-then-store
    // is not enough — a ReclaimPass that stamps a batch and scans the
    // pins entirely between our load and our store would miss us and
    // free the batch with no grace period. Standard pin-validate loop:
    // publish the pin, then re-read the epoch; once they agree, any
    // later pass's stamp-advance follows our pin store in seq_cst order,
    // so its scan must observe the pin.
    uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      epochs_[slot].store(epoch, std::memory_order_seq_cst);
      const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
      if (now == epoch) break;
      epoch = now;
    }
    // Read-timestamp pin: blocks logical reclamation of versions newer
    // than the pin. Pinning at a clock value <= our final S is safe
    // (it only keeps reclamation more conservative), and the seq_cst
    // pin-store before the final clock read guarantees any reclaimer
    // that missed the pin computed its bound from an older clock.
    read_ts_[slot].store(clock_.load(std::memory_order_seq_cst),
                         std::memory_order_seq_cst);
    const uint64_t s = clock_.load(std::memory_order_seq_cst);
    if constexpr (Failpoints::kEnabled) {
      // kStaleEpoch chaos: hold the pins across an artificial delay so
      // reclamation must park batches in limbo behind this reader.
      if (Failpoints::Hit(FailSite::kStaleEpoch, slot) != FailAction::kNone) {
        Backoff backoff;
        for (int i = 0; i < 64; ++i) backoff.Pause();
      }
    }
    // Wait out in-flight commits that serialized before S: their chain
    // nodes are already linked, but their live values may not all be
    // published yet, and ResolveRead starts from live memory. A commit
    // that draws its timestamp after our clock read gets ts > S and
    // does not matter.
    for (auto& slot_ts : inflight_) {
      Backoff backoff;
      while (true) {
        const uint64_t t = slot_ts.load(std::memory_order_seq_cst);
        if (t != kReserving && (t == kIdle || t > s)) break;
        backoff.Pause();
      }
    }
    active_s_[slot] = s;
    snapshots_.fetch_add(1, std::memory_order_relaxed);
    return Snapshot{s};
  }

  /// Value of `addr` (owned by vertex `v`) as of the snapshot. Loads the
  /// live word first, then walks the chain applying the pre-image of the
  /// OLDEST commit with ts > S that wrote this word — that pre-image is
  /// the value as of S. Chains are not timestamp-ordered (see the class
  /// comment), so a node with ts <= S is skipped, never a termination
  /// signal: a newer commit's node may sit behind it. The writer's chain
  /// push (release) precedes its live store, so a reader that observed
  /// the new live value is guaranteed to observe the covering chain node.
  TmWord ResolveRead(const Snapshot& snap, VertexId v,
                     const TmWord* addr) const {
    snapshot_reads_.fetch_add(1, std::memory_order_relaxed);
    TmWord value = __atomic_load_n(addr, __ATOMIC_ACQUIRE);
    if (TUFAST_UNLIKELY(v >= heads_.size())) return value;
    uint64_t walked = 0;
    uint64_t best_ts = kIdle;  // smallest ts > S applied so far
    for (const Node* n = heads_[v].load(std::memory_order_acquire);
         n != nullptr; n = n->next.load(std::memory_order_acquire)) {
      ++walked;
      if (n->ts <= snap.ts || n->ts >= best_ts) continue;
      for (uint32_t i = 0; i < n->count; ++i) {
        if (n->entries[i].addr == addr) {
          value = n->entries[i].value;
          best_ts = n->ts;
          break;  // duplicates in one node share the same pre-image
        }
      }
    }
    if (walked > 0) {
      uint64_t prev = max_chain_walk_.load(std::memory_order_relaxed);
      while (walked > prev &&
             !max_chain_walk_.compare_exchange_weak(
                 prev, walked, std::memory_order_relaxed)) {
      }
    }
    return value;
  }

  void EndSnapshot(int slot) {
    const uint64_t lag =
        clock_.load(std::memory_order_relaxed) - active_s_[slot];
    staleness_sum_.fetch_add(lag, std::memory_order_relaxed);
    uint64_t prev = staleness_max_.load(std::memory_order_relaxed);
    while (lag > prev && !staleness_max_.compare_exchange_weak(
                             prev, lag, std::memory_order_relaxed)) {
    }
    read_ts_[slot].store(kIdle, std::memory_order_seq_cst);
    epochs_[slot].store(kIdle, std::memory_order_seq_cst);
  }

  // ----------------------------------------------------------- reclamation

  /// One reclamation pass: unlink every chain suffix no pinned reader
  /// can need, park it in an epoch-stamped limbo batch, and recycle any
  /// limbo batch every potentially-concurrent reader has left. Safe to
  /// call concurrently with readers and writers; passes serialize on an
  /// internal lock (contenders return immediately).
  void ReclaimPass() {
    if (reclaim_lock_.test_and_set(std::memory_order_acquire)) return;
    reclaim_passes_.fetch_add(1, std::memory_order_relaxed);
    // Bound BEFORE scanning pins (see BeginSnapshot): either we see a
    // reader's pin, or the reader's final S is >= this clock value.
    uint64_t min_ts = clock_.load(std::memory_order_seq_cst);
    for (const auto& s : read_ts_) {
      const uint64_t t = s.load(std::memory_order_seq_cst);
      if (t != kIdle && t < min_ts) min_ts = t;
    }
    std::vector<Node*> cut_chains;
    uint64_t batch_nodes = 0;
    for (auto& head : heads_) {
      // Chains are not timestamp-ordered (see the class comment), so a
      // boundary test on one node says nothing about the nodes behind
      // it: only a suffix whose MAXIMUM ts is <= min_ts is dead. Find
      // the last node with ts > min_ts and cut everything after it; a
      // live node stranded in front of it stays linked until a later
      // pass finds it inside an all-dead suffix (readers skip it by ts).
      Node* h = head.load(std::memory_order_acquire);
      while (h != nullptr) {
        Node* last_live = nullptr;
        for (Node* n = h; n != nullptr;
             n = n->next.load(std::memory_order_acquire)) {
          if (n->ts > min_ts) last_live = n;
        }
        if (last_live == nullptr) {
          // Whole chain is dead; detach it at the head. The CAS races
          // only with a writer pushing another node — on failure,
          // re-walk from the fresh head (each retry consumes one
          // concurrent push, so the loop is bounded by in-flight
          // commits). Detaching a just-pushed dead node is fine: its
          // writer never touches it after Publish, and ts <= min_ts
          // means no pinned reader can need it.
          if (!head.compare_exchange_strong(h, nullptr,
                                            std::memory_order_acq_rel)) {
            continue;
          }
          batch_nodes += ChainLength(h);
          cut_chains.push_back(h);
        } else {
          // Interior cut: only this (lock-holding) pass ever writes a
          // linked node's `next`, so the walk above stays valid and the
          // suffix after last_live is still the one we measured.
          Node* dead = last_live->next.load(std::memory_order_acquire);
          if (dead != nullptr) {
            last_live->next.store(nullptr, std::memory_order_release);
            batch_nodes += ChainLength(dead);
            cut_chains.push_back(dead);
          }
        }
        break;
      }
    }
    if (!cut_chains.empty()) {
      retired_nodes_.fetch_add(batch_nodes, std::memory_order_relaxed);
      const uint64_t stamp =
          global_epoch_.fetch_add(1, std::memory_order_seq_cst);
      limbo_.push_back(
          LimboBatch{stamp, std::move(cut_chains), batch_nodes});
    }
    // Recycle limbo batches nobody can still be walking: a reader must
    // pin its epoch before touching a chain, so pinned > stamp means it
    // pinned after the unlink and cannot hold suffix pointers.
    uint64_t min_epoch = kIdle;
    for (const auto& e : epochs_) {
      const uint64_t t = e.load(std::memory_order_seq_cst);
      if (t < min_epoch) min_epoch = t;
    }
    size_t kept = 0;
    for (size_t i = 0; i < limbo_.size(); ++i) {
      if (min_epoch != kIdle && limbo_[i].stamp >= min_epoch) {
        limbo_[kept++] = limbo_[i];
        continue;
      }
      FreeBatch(limbo_[i]);
    }
    limbo_.resize(kept);
    reclaim_lock_.clear(std::memory_order_release);
  }

  /// Quiesced-only: with no active snapshots or in-flight installs,
  /// unlink and recycle every version unconditionally. Afterwards the
  /// counters satisfy freed == retired == installed.
  void ReclaimAll() {
    while (reclaim_lock_.test_and_set(std::memory_order_acquire)) {
    }
    uint64_t nodes = 0;
    for (auto& head : heads_) {
      Node* h = head.exchange(nullptr, std::memory_order_acq_rel);
      if (h == nullptr) continue;
      nodes += ChainLength(h);
      FreeBatchNodesOnly(LimboBatch{0, {h}, 0});
    }
    retired_nodes_.fetch_add(nodes, std::memory_order_relaxed);
    freed_nodes_.fetch_add(nodes, std::memory_order_relaxed);
    for (const auto& b : limbo_) FreeBatch(b);
    limbo_.clear();
    reclaim_lock_.clear(std::memory_order_release);
  }

  // ------------------------------------------------------------- telemetry

  MvccCounters Counters() const {
    MvccCounters c;
    c.commits_installed = commits_installed_.load(std::memory_order_relaxed);
    c.installed_nodes = installed_nodes_.load(std::memory_order_relaxed);
    c.installed_entries = installed_entries_.load(std::memory_order_relaxed);
    c.retired_nodes = retired_nodes_.load(std::memory_order_relaxed);
    c.freed_nodes = freed_nodes_.load(std::memory_order_relaxed);
    c.reclaim_passes = reclaim_passes_.load(std::memory_order_relaxed);
    c.snapshots = snapshots_.load(std::memory_order_relaxed);
    c.snapshot_reads = snapshot_reads_.load(std::memory_order_relaxed);
    c.max_chain_walk = max_chain_walk_.load(std::memory_order_relaxed);
    c.staleness_sum = staleness_sum_.load(std::memory_order_relaxed);
    c.staleness_max = staleness_max_.load(std::memory_order_relaxed);
    c.clock = clock_.load(std::memory_order_relaxed);
    return c;
  }

  uint64_t ClockNow() const {
    return clock_.load(std::memory_order_seq_cst);
  }

  /// Quiesced-only: counts nodes currently linked into chains (must
  /// equal installed - retired; the other half of the flush balance).
  uint64_t LinkedNodesQuiesced() const {
    uint64_t n = 0;
    for (const auto& head : heads_) {
      for (const Node* p = head.load(std::memory_order_acquire);
           p != nullptr; p = p->next.load(std::memory_order_acquire)) {
        ++n;
      }
    }
    return n;
  }

  /// Longest current chain, in nodes (quiesced-only; bench telemetry).
  uint64_t MaxChainLengthQuiesced() const {
    uint64_t best = 0;
    for (const auto& head : heads_) {
      uint64_t n = 0;
      for (const Node* p = head.load(std::memory_order_acquire);
           p != nullptr; p = p->next.load(std::memory_order_acquire)) {
        ++n;
      }
      if (n > best) best = n;
    }
    return best;
  }

 private:
  static constexpr uint32_t kEntriesPerNode = 6;
  static constexpr uint64_t kReclaimEvery = 64;
  static constexpr size_t kNodesPerChunk = 1024;

  struct Entry {
    const TmWord* addr;
    TmWord value;
  };
  struct Node {
    uint64_t ts;
    std::atomic<Node*> next;
    uint32_t count;
    Entry entries[kEntriesPerNode];
  };
  // Cut suffixes are kept as separate nullptr-terminated chains, NOT
  // spliced into one list: a reader standing inside a suffix at the
  // moment of the cut keeps walking to the suffix's own tail (every
  // node there is invisible to it by timestamp), and linking suffixes
  // together would extend that walk across every chain retired by the
  // pass.
  struct LimboBatch {
    uint64_t stamp;
    std::vector<Node*> chains;
    uint64_t count;
  };

  Node* AllocNode() {
    while (alloc_lock_.test_and_set(std::memory_order_acquire)) {
    }
    Node* n = free_list_;
    if (n != nullptr) {
      free_list_ = n->next.load(std::memory_order_relaxed);
    } else {
      if (chunks_.empty() || chunk_used_ == kNodesPerChunk) {
        chunks_.push_back(std::make_unique<Node[]>(kNodesPerChunk));
        chunk_used_ = 0;
      }
      n = &chunks_.back()[chunk_used_++];
    }
    alloc_lock_.clear(std::memory_order_release);
    n->next.store(nullptr, std::memory_order_relaxed);
    return n;
  }

  /// Links a filled node at the head of its vertex's chain. The release
  /// CAS orders the node's payload before any reader that follows the
  /// head pointer; the caller publishes live values only afterwards.
  void Publish(VertexId v, Node* node) {
    std::atomic<Node*>& head = heads_[v];
    Node* h = head.load(std::memory_order_relaxed);
    do {
      node->next.store(h, std::memory_order_relaxed);
    } while (!head.compare_exchange_weak(h, node, std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  /// Length of a retired chain (only the reclaim-lock holder walks
  /// retired chains, so relaxed loads suffice).
  static uint64_t ChainLength(const Node* first) {
    uint64_t n = 0;
    for (const Node* p = first; p != nullptr;
         p = p->next.load(std::memory_order_relaxed)) {
      ++n;
    }
    return n;
  }

  void FreeBatch(const LimboBatch& b) {
    FreeBatchNodesOnly(b);
    freed_nodes_.fetch_add(b.count, std::memory_order_relaxed);
  }

  void FreeBatchNodesOnly(const LimboBatch& b) {
    if (b.chains.empty()) return;
    while (alloc_lock_.test_and_set(std::memory_order_acquire)) {
    }
    for (Node* first : b.chains) {
      Node* tail = first;
      while (tail->next.load(std::memory_order_relaxed) != nullptr) {
        tail = tail->next.load(std::memory_order_relaxed);
      }
      tail->next.store(free_list_, std::memory_order_relaxed);
      free_list_ = first;
    }
    alloc_lock_.clear(std::memory_order_release);
  }

  std::vector<std::atomic<Node*>> heads_;
  alignas(kCacheLineBytes) std::atomic<uint64_t> clock_{0};
  alignas(kCacheLineBytes) std::atomic<uint64_t> global_epoch_{1};
  std::atomic<uint64_t> inflight_[kMaxHtmThreads];
  std::atomic<uint64_t> read_ts_[kMaxHtmThreads];
  std::atomic<uint64_t> epochs_[kMaxHtmThreads];
  uint64_t active_s_[kMaxHtmThreads] = {};

  std::atomic_flag reclaim_lock_ = ATOMIC_FLAG_INIT;
  std::vector<LimboBatch> limbo_;  // guarded by reclaim_lock_

  std::atomic_flag alloc_lock_ = ATOMIC_FLAG_INIT;
  Node* free_list_ = nullptr;                     // guarded by alloc_lock_
  std::vector<std::unique_ptr<Node[]>> chunks_;   // guarded by alloc_lock_
  size_t chunk_used_ = 0;                         // guarded by alloc_lock_

  std::atomic<uint64_t> commits_installed_{0};
  std::atomic<uint64_t> installed_nodes_{0};
  std::atomic<uint64_t> installed_entries_{0};
  std::atomic<uint64_t> retired_nodes_{0};
  std::atomic<uint64_t> freed_nodes_{0};
  std::atomic<uint64_t> reclaim_passes_{0};
  std::atomic<uint64_t> installs_since_reclaim_{0};
  std::atomic<uint64_t> snapshots_{0};
  mutable std::atomic<uint64_t> snapshot_reads_{0};
  mutable std::atomic<uint64_t> max_chain_walk_{0};
  std::atomic<uint64_t> staleness_sum_{0};
  std::atomic<uint64_t> staleness_max_{0};
};

using MvccStore = BasicMvccStore<NullFailpoints>;

/// Per-worker write-set recorder for commit paths that have no software
/// write log of their own (TuFast's H mode and the other hardware-path
/// hybrids): the transaction body records (vertex, addr) on every Write,
/// and the commit hook turns the recording into chain nodes by loading
/// the pre-images from live memory — valid because the hook runs before
/// the write-back buffer is flushed. Duplicates are permitted (see
/// BeginInstall); consecutive re-writes of one word are collapsed.
class MvccRecorder {
 public:
  void Record(VertexId v, const TmWord* addr) {
    if (!writes_.empty() && writes_.back().addr == addr) return;
    writes_.push_back(MvccWrite{v, addr});
  }
  void Clear() { writes_.clear(); }
  bool empty() const { return writes_.empty(); }
  const std::vector<MvccWrite>& writes() const { return writes_; }

 private:
  std::vector<MvccWrite> writes_;
};

/// Read-only snapshot transaction context: Read resolves against the
/// snapshot timestamp, there is no Write, and "commit" is the no-op end
/// of scope — it can never abort. Bodies written generically against
/// `auto& txn` with reads only run unchanged here and on the regular
/// transactional contexts.
template <typename Store>
class BasicMvccSnapshotTxn {
 public:
  BasicMvccSnapshotTxn(Store& store, int slot)
      : store_(store), slot_(slot), snap_(store.BeginSnapshot(slot)) {}
  TUFAST_DISALLOW_COPY_AND_MOVE(BasicMvccSnapshotTxn);
  ~BasicMvccSnapshotTxn() {
    if (!done_) store_.EndSnapshot(slot_);
  }

  TmWord Read(VertexId v, const TmWord* addr) {
    ++ops_;
    return store_.ResolveRead(snap_, v, addr);
  }
  TmWord ReadForUpdate(VertexId v, const TmWord* addr) {
    return Read(v, addr);
  }
  double ReadDouble(VertexId v, const double* addr) {
    return std::bit_cast<double>(
        Read(v, reinterpret_cast<const TmWord*>(addr)));
  }
  [[noreturn]] void Abort() { throw UserAbortSignal{}; }

  uint64_t ops() const { return ops_; }
  uint64_t snapshot_ts() const { return snap_.ts; }

  void Finish() {
    store_.EndSnapshot(slot_);
    done_ = true;
  }

 private:
  Store& store_;
  const int slot_;
  typename Store::Snapshot snap_;
  uint64_t ops_ = 0;
  bool done_ = false;
};

}  // namespace tufast

#endif  // TUFAST_MVCC_VERSION_STORE_H_
