// Fault-injection + invariant-checking stress suite (the `stress` ctest
// label). Every test pins a seed (or sweeps a small seed range, widened
// by TUFAST_STRESS_ITERS); any failure message carries the exact
// (scheduler, policy, seed) triple needed to replay it:
//
//   TUFAST_STRESS_SEED=<seed> TUFAST_STRESS_ITERS=1 \
//     ./tufast_tests --gtest_filter='InvariantStress*'

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/thread_pool.h"
#include "runtime/worklist.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "testing/failpoints.h"
#include "testing/stress_workloads.h"

namespace tufast {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10) : def;
}

// Tier-1 defaults are small; CI long-runs opt in via the environment.
uint64_t StressIters() { return EnvU64("TUFAST_STRESS_ITERS", 2); }
uint64_t StressBaseSeed() { return EnvU64("TUFAST_STRESS_SEED", 1); }

const char* PolicyName(DeadlockPolicy p) {
  switch (p) {
    case DeadlockPolicy::kDetection: return "detection";
    case DeadlockPolicy::kPrevention: return "prevention";
    case DeadlockPolicy::kTimeout: return "timeout";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FailpointPlan mechanics.

TEST(FailpointPlanTest, SameSeedSameDecisions) {
  FailpointPlan::Config config;
  config.seed = 42;
  config.Arm(FailSite::kHtmLoad, 0.1);
  config.Arm(FailSite::kLockAcquireExclusive, 0.3, FailAction::kFail);
  config.yield_prob = 0.2;
  FailpointPlan a(config), b(config);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.OnHit(FailSite::kHtmLoad, 0), b.OnHit(FailSite::kHtmLoad, 0));
    EXPECT_EQ(a.OnHit(FailSite::kLockAcquireExclusive, 1),
              b.OnHit(FailSite::kLockAcquireExclusive, 1));
  }
  EXPECT_EQ(a.InjectionCount(), b.InjectionCount());
  EXPECT_GT(a.InjectionCount(), 0u);
  EXPECT_EQ(a.FormatTrace(), b.FormatTrace());
}

TEST(FailpointPlanTest, SlotStreamsAreIndependent) {
  FailpointPlan::Config config;
  config.seed = 7;
  config.Arm(FailSite::kHtmCommit, 0.5);
  FailpointPlan plan(config);
  std::string s0, s1;
  for (int i = 0; i < 256; ++i) {
    s0 += plan.OnHit(FailSite::kHtmCommit, 0) == FailAction::kNone ? '.' : 'x';
    s1 += plan.OnHit(FailSite::kHtmCommit, 1) == FailAction::kNone ? '.' : 'x';
  }
  EXPECT_NE(s0, s1);  // Distinct per-slot streams (2^-256 false-fail odds).
  EXPECT_EQ(plan.HitCount(FailSite::kHtmCommit, 0), 256u);
  EXPECT_EQ(plan.HitCount(FailSite::kHtmCommit, 1), 256u);
}

TEST(FailpointPlanTest, ForceAtFiresAtExactHitIndex) {
  FailpointPlan plan(FailpointPlan::Config{});
  plan.ForceAt(FailSite::kHtmStore, /*slot=*/3, /*hit_index=*/5,
               FailAction::kAbortCapacity);
  for (uint64_t i = 0; i < 10; ++i) {
    const FailAction got = plan.OnHit(FailSite::kHtmStore, 3);
    EXPECT_EQ(got, i == 5 ? FailAction::kAbortCapacity : FailAction::kNone)
        << "hit " << i;
  }
  EXPECT_EQ(plan.InjectionCount(), 1u);
  const auto trace = plan.TraceSnapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].site, FailSite::kHtmStore);
  EXPECT_EQ(trace[0].slot, 3);
  EXPECT_EQ(trace[0].hit_index, 5u);
  EXPECT_EQ(trace[0].action, FailAction::kAbortCapacity);
}

TEST(FailpointPlanTest, SlotlessSitesUseSharedStream) {
  FailpointPlan plan(FailpointPlan::Config{});
  plan.ForceAt(FailSite::kLockTryExclusive, /*slot=*/-1, /*hit_index=*/2,
               FailAction::kFail);
  EXPECT_EQ(plan.OnHit(FailSite::kLockTryExclusive, -1), FailAction::kNone);
  EXPECT_EQ(plan.OnHit(FailSite::kLockTryExclusive, -1), FailAction::kNone);
  EXPECT_EQ(plan.OnHit(FailSite::kLockTryExclusive, -1), FailAction::kFail);
  EXPECT_EQ(plan.HitCount(FailSite::kLockTryExclusive, -1), 3u);
}

// ---------------------------------------------------------------------------
// Forced HTM aborts through the real transaction path.

TEST(FaultyHtmTest, ForcedConflictAbortIsRetriedAndCommits) {
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm> tm(htm, 64);
  std::vector<TmWord> data(64, 0);
  FailpointPlan plan(FailpointPlan::Config{});
  // Abort the first H attempt at its third transactional load (lock-word
  // subscriptions count as loads too); the retry must commit.
  plan.ForceAt(FailSite::kHtmLoad, /*slot=*/0, /*hit_index=*/2,
               FailAction::kAbortConflict);
  FailpointScope scope(plan);
  const RunOutcome outcome = tm.Run(0, 4, [&](auto& txn) {
    const TmWord a = txn.Read(1, &data[1]);
    const TmWord b = txn.Read(2, &data[2]);
    txn.Write(3, &data[3], a + b + 7);
  });
  ASSERT_TRUE(outcome.committed);
  EXPECT_EQ(FaultyHtm::NonTxLoad(&data[3]), 7u);
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.conflict_aborts, 1u);
  EXPECT_EQ(plan.InjectionCount(), 1u);
}

TEST(FaultyHtmTest, ForcedCapacityAbortDemotesOutOfHMode) {
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm> tm(htm, 64);
  std::vector<TmWord> data(64, 0);
  FailpointPlan::Config config;
  // Every hardware load aborts with capacity: H can never succeed; the
  // router must still commit the transaction through a software mode.
  config.Arm(FailSite::kHtmLoad, 1.0, FailAction::kAbortCapacity);
  FailpointPlan plan(config);
  FailpointScope scope(plan);
  const RunOutcome outcome = tm.Run(0, 4, [&](auto& txn) {
    txn.Write(5, &data[5], txn.Read(5, &data[5]) + 1);
  });
  ASSERT_TRUE(outcome.committed);
  EXPECT_EQ(FaultyHtm::NonTxLoad(&data[5]), 1u);
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.class_count[static_cast<int>(TxnClass::kH)], 0u);
  EXPECT_GT(stats.capacity_aborts, 0u);
}

// ---------------------------------------------------------------------------
// Forced router demotions (H -> O -> L).

TEST(RouterDemotionTest, SkipHRoutesThroughOMode) {
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm> tm(htm, 64);
  std::vector<TmWord> data(64, 0);
  FailpointPlan::Config config;
  config.Arm(FailSite::kRouterSkipH, 1.0, FailAction::kFail);
  FailpointPlan plan(config);
  FailpointScope scope(plan);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tm.Run(0, 2, [&](auto& txn) {
      txn.Write(1, &data[1], txn.Read(1, &data[1]) + 1);
    }).committed);
  }
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 20u);
  EXPECT_EQ(stats.class_count[static_cast<int>(TxnClass::kH)], 0u);
  EXPECT_EQ(stats.class_count[static_cast<int>(TxnClass::kO)] +
                stats.class_count[static_cast<int>(TxnClass::kOPlus)],
            20u);
}

TEST(RouterDemotionTest, SkipHAndORoutesToLockMode) {
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm> tm(htm, 64);
  std::vector<TmWord> data(64, 0);
  FailpointPlan::Config config;
  config.Arm(FailSite::kRouterSkipH, 1.0, FailAction::kFail);
  config.Arm(FailSite::kRouterSkipO, 1.0, FailAction::kFail);
  FailpointPlan plan(config);
  FailpointScope scope(plan);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tm.Run(0, 2, [&](auto& txn) {
      txn.Write(1, &data[1], txn.Read(1, &data[1]) + 1);
    }).committed);
  }
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 20u);
  EXPECT_EQ(FaultyHtm::NonTxLoad(&data[1]), 20u);
  EXPECT_EQ(stats.class_count[static_cast<int>(TxnClass::kO2L)], 20u);
}

// ---------------------------------------------------------------------------
// Forced lock-manager victims.

TEST(ForcedVictimTest, TwoPhaseLockingStaysExactUnderForcedVictims) {
  FaultyHtm htm;
  TwoPhaseLocking<FaultyHtm> tm(htm, 64, DeadlockPolicy::kDetection);
  std::vector<TmWord> data(64, 0);
  FailpointPlan::Config config;
  config.seed = 11;
  config.Arm(FailSite::kLockAcquireExclusive, 0.05, FailAction::kFail);
  config.Arm(FailSite::kLockUpgrade, 0.10, FailAction::kFail);
  config.yield_prob = 0.2;
  FailpointPlan plan(config);
  FailpointScope scope(plan);
  constexpr int kThreads = 3;
  constexpr int kEach = 150;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        tm.Run(t, 2, [&](auto& txn) {
          txn.Write(0, &data[0], txn.Read(0, &data[0]) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  // Victim retries must preserve exactly-once semantics.
  EXPECT_EQ(FaultyHtm::NonTxLoad(&data[0]),
            static_cast<TmWord>(kThreads * kEach));
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(kThreads * kEach));
  EXPECT_GT(stats.deadlock_aborts, 0u);  // The injection actually fired.
}

TEST(ForcedVictimTest, FailedUpgradeKeepsSharedHeldUnderPrevention) {
  // kPrevention has no runtime recovery (ordered acquisition is promised
  // by the caller), so the "shared lock still held after failed upgrade"
  // contract is exercised with a forced victim instead of a genuine
  // wait-bound expiry.
  FaultyHtm htm;
  LockTable<FaultyHtm> table(htm, 16);
  LockManager<FaultyHtm> manager(table, DeadlockPolicy::kPrevention);
  FailpointPlan plan(FailpointPlan::Config{});
  plan.ForceAt(FailSite::kLockUpgrade, /*slot=*/0, /*hit_index=*/0,
               FailAction::kFail);
  FailpointScope scope(plan);
  ASSERT_TRUE(manager.AcquireShared(0, 4));
  EXPECT_FALSE(manager.Upgrade(0, 4));
  // Shared registration intact: exclusive blocked until we release it.
  EXPECT_FALSE(table.TryLockExclusive(4));
  manager.ReleaseShared(0, 4);
  EXPECT_TRUE(table.TryLockExclusive(4));
  table.UnlockExclusive(4);
  // A second upgrade (hit index 1, not forced) succeeds normally.
  ASSERT_TRUE(manager.AcquireShared(0, 4));
  EXPECT_TRUE(manager.Upgrade(0, 4));
  manager.ReleaseExclusive(0, 4);
}

// ---------------------------------------------------------------------------
// DrainWorklist termination-race regression.

// Pre-fix, a worker was counted active only AFTER TryPop succeeded, so a
// peer could observe active == 0 with an item in flight and return while
// that item (which pushes more work) was still pending — the drain was
// not complete at its exit. The yield burst injected between pop and
// execution stretches exactly that window. Post-fix, a worker may only
// return once the whole drain has quiesced, so the processed count it
// observes at exit must already be the full tree size.
TEST(WorklistStressTest, NoWorkerExitsBeforeDrainCompletes) {
  const uint64_t iters = StressIters();
  for (uint64_t it = 0; it < iters; ++it) {
    FailpointPlan::Config config;
    config.seed = StressBaseSeed() + it;
    config.yield_prob = 1.0;  // Yield in the pop->execute window, always.
    config.max_yield_burst = 4;
    FailpointPlan plan(config);
    FailpointScope scope(plan);
    constexpr int kWorkers = 4;
    ThreadPool pool(kWorkers);
    ConcurrentQueue<int> queue;
    constexpr int kDepth = 12;
    queue.Push(kDepth);  // Each item n > 0 pushes two copies of n-1.
    std::atomic<int> active{0};
    std::atomic<uint64_t> processed{0};
    uint64_t at_exit[kWorkers] = {};
    pool.RunOnAll([&](int worker) {
      DrainWorklist<StressFailpoints>(queue, worker, active, [&](int, int n) {
        ++processed;
        if (n > 0) {
          queue.Push(n - 1);
          queue.Push(n - 1);
        }
      });
      at_exit[worker] = processed.load();
    });
    // Full binary tree: 2^(kDepth+1) - 1 nodes, every one exactly once.
    constexpr uint64_t kTotal = (uint64_t{1} << (kDepth + 1)) - 1;
    EXPECT_EQ(processed.load(), kTotal) << "seed " << config.seed;
    EXPECT_TRUE(queue.Empty());
    for (int w = 0; w < kWorkers; ++w) {
      EXPECT_EQ(at_exit[w], kTotal)
          << "worker " << w << " returned before the drain completed, seed "
          << config.seed
          << " (replay: TUFAST_STRESS_SEED=" << config.seed << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant workloads: 7 schedulers x deadlock policies x seeds, all under
// probabilistic fault injection + schedule perturbation.

template <typename Scheduler>
class InvariantStressTest : public ::testing::Test {};

using StressSchedulers = ::testing::Types<
    TuFastScheduler<FaultyHtm>, TwoPhaseLocking<FaultyHtm>,
    SiloOcc<FaultyHtm>, TimestampOrdering<FaultyHtm>, TinyStm<FaultyHtm>,
    HsyncHybrid<FaultyHtm>, HtmTimestampOrdering<FaultyHtm>>;
TYPED_TEST_SUITE(InvariantStressTest, StressSchedulers);

FailpointPlan::Config ChaosConfig(uint64_t seed) {
  FailpointPlan::Config config;
  config.seed = seed;
  config.Arm(FailSite::kHtmLoad, 0.002, FailAction::kAbortConflict);
  config.Arm(FailSite::kHtmStore, 0.001, FailAction::kAbortCapacity);
  config.Arm(FailSite::kHtmCommit, 0.002, FailAction::kAbortConflict);
  config.Arm(FailSite::kRouterSkipH, 0.05, FailAction::kFail);
  config.Arm(FailSite::kRouterSkipO, 0.05, FailAction::kFail);
  config.Arm(FailSite::kLockAcquireShared, 0.005, FailAction::kFail);
  config.Arm(FailSite::kLockAcquireExclusive, 0.01, FailAction::kFail);
  config.Arm(FailSite::kLockUpgrade, 0.01, FailAction::kFail);
  config.Arm(FailSite::kLockTryExclusive, 0.01, FailAction::kFail);
  config.Arm(FailSite::kLockTryUpgrade, 0.01, FailAction::kFail);
  config.yield_prob = 0.05;
  return config;
}

TYPED_TEST(InvariantStressTest, HoldsUnderChaos) {
  using Scheduler = TypeParam;
  std::vector<DeadlockPolicy> policies;
  if constexpr (kSchedulerUsesPolicy<Scheduler, FaultyHtm>) {
    policies = {DeadlockPolicy::kDetection, DeadlockPolicy::kPrevention,
                DeadlockPolicy::kTimeout};
  } else {
    policies = {DeadlockPolicy::kDetection};  // Policy-free baselines.
  }
  const uint64_t iters = StressIters();
  for (DeadlockPolicy policy : policies) {
    for (uint64_t it = 0; it < iters; ++it) {
      const uint64_t seed = StressBaseSeed() + it;
      FaultyHtm htm;
      auto tm = MakeSchedulerFor<Scheduler>(htm, /*vertices=*/48, policy);
      FailpointPlan plan(ChaosConfig(seed));
      FailpointScope scope(plan);
      StressConfig cfg;
      cfg.threads = 3;
      cfg.txns_per_thread = 100;
      cfg.vertices = 48;
      cfg.seed = seed;
      // The kPrevention contract: ordered acquisition, write intent
      // declared up front (no shared->exclusive upgrades).
      cfg.ordered_for_update = policy == DeadlockPolicy::kPrevention;
      if (auto err = RunInvariantSuite(*tm, cfg)) {
        ADD_FAILURE() << *err << " [policy=" << PolicyName(policy)
                      << " seed=" << seed
                      << "; replay: TUFAST_STRESS_SEED=" << seed
                      << " TUFAST_STRESS_ITERS=1]";
        return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Adversarial victim starvation: every transaction is forced into the
// lock path and then re-victimized with high probability, concentrated
// on a handful of hot vertices — exactly the adversary the progress
// guard's escalation ladder defends against. Every scheduler must still
// commit every transaction exactly once; the guard-backed schedulers
// (TuFast, 2PL) must additionally keep every transaction's failed
// attempts inside the configured retry bound (DESIGN.md "Progress
// guard": priority aging makes a starved slot immune to further
// injected victimization, the token guarantees the worst case commits).

template <typename Scheduler>
class StarvationStressTest : public ::testing::Test {};
TYPED_TEST_SUITE(StarvationStressTest, StressSchedulers);

template <typename S, typename = void>
struct SchedulerHasProgressGuard : std::false_type {};
template <typename S>
struct SchedulerHasProgressGuard<
    S, std::void_t<decltype(std::declval<S&>().progress_guard())>>
    : std::true_type {};

FailpointPlan::Config StarvationChaosConfig(uint64_t seed) {
  FailpointPlan::Config config;
  config.seed = seed;
  // Force the TuFast router past H and O: the starvation machinery lives
  // in the L retry loop. (Schedulers without these sites ignore them.)
  config.Arm(FailSite::kRouterSkipH, 1.0, FailAction::kFail);
  config.Arm(FailSite::kRouterSkipO, 1.0, FailAction::kFail);
  // Aggressive forced victimization plus re-victimization of the
  // transactions that already aborted.
  config.Arm(FailSite::kLockAcquireExclusive, 0.3, FailAction::kFail);
  config.Arm(FailSite::kVictimReabort, 0.5, FailAction::kFail);
  config.yield_prob = 0.1;
  return config;
}

// With priority aging, a transaction sees at most priority_threshold
// injected re-aborts before it becomes immune; what remains are genuine
// deadlock/timeout victimizations, bounded by the token threshold plus
// the in-flight waiters a token holder can still collide with. 64 gives
// that argument an order of magnitude of slack while still catching an
// unbounded-starvation regression (the injection alone would push an
// unguarded hot transaction far past it).
constexpr uint64_t kGuardedRetryBound = 64;

TYPED_TEST(StarvationStressTest, EveryTxnCommitsWithinTheRetryBound) {
  using Scheduler = TypeParam;
  std::vector<DeadlockPolicy> policies;
  if constexpr (kSchedulerUsesPolicy<Scheduler, FaultyHtm>) {
    policies = {DeadlockPolicy::kDetection, DeadlockPolicy::kPrevention,
                DeadlockPolicy::kTimeout};
  } else {
    policies = {DeadlockPolicy::kDetection};  // Policy-free baselines.
  }
  const uint64_t iters = StressIters();
  for (DeadlockPolicy policy : policies) {
    for (uint64_t it = 0; it < iters; ++it) {
      const uint64_t seed = StressBaseSeed() + it;
      const std::string replay =
          std::string(" [policy=") + PolicyName(policy) + " seed=" +
          std::to_string(seed) +
          "; replay: TUFAST_STRESS_SEED=" + std::to_string(seed) +
          " TUFAST_STRESS_ITERS=1]";
      FaultyHtm htm;
      constexpr VertexId kVertices = 8;
      constexpr VertexId kHotVertices = 4;
      auto tm = MakeSchedulerFor<Scheduler>(htm, kVertices, policy);
      FailpointPlan plan(StarvationChaosConfig(seed));
      FailpointScope scope(plan);
      std::vector<TmWord> data(kVertices, 0);
      constexpr int kThreads = 3;
      constexpr int kEach = 120;
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          Rng rng(seed * 31 + static_cast<uint64_t>(t));
          for (int i = 0; i < kEach; ++i) {
            // Single-vertex increments: trivially ordered (kPrevention
            // contract) with write intent declared up front.
            const VertexId v =
                static_cast<VertexId>(rng.NextBounded(kHotVertices));
            tm->Run(t, 2, [&](auto& txn) {
              txn.Write(v, &data[v], txn.ReadForUpdate(v, &data[v]) + 1);
            });
          }
        });
      }
      for (auto& th : threads) th.join();
      TmWord total = 0;
      for (VertexId v = 0; v < kVertices; ++v) {
        total += FaultyHtm::NonTxLoad(&data[v]);
      }
      constexpr uint64_t kTotalTxns = uint64_t{kThreads} * kEach;
      EXPECT_EQ(total, kTotalTxns)
          << "lost or duplicated increments under forced starvation"
          << replay;
      const SchedulerStats stats = tm->AggregatedStats();
      EXPECT_EQ(stats.commits, kTotalTxns)
          << "every transaction must eventually commit" << replay;
      if constexpr (SchedulerHasProgressGuard<Scheduler>::value) {
        EXPECT_GT(stats.deadlock_aborts, 0u)
            << "the injection never fired" << replay;
        EXPECT_GT(stats.starvation_escalations, 0u)
            << "sustained re-victimization must climb the ladder" << replay;
        EXPECT_LE(stats.max_txn_aborts, kGuardedRetryBound)
            << "escalation must bound the worst transaction's retries"
            << replay;
        auto& signals = tm->progress_guard().signals();
        EXPECT_FALSE(signals.AnyStarved())
            << "starved bits must be dropped at transaction end" << replay;
        EXPECT_FALSE(signals.TokenHeld())
            << "the starvation token leaked" << replay;
      }
    }
  }
}

}  // namespace
}  // namespace tufast
