// Unit tests for the shard-per-core ownership layer (src/sharding/):
// the static vertex->shard->worker map and its documented edge cases, the
// bounded active-message mailbox, the per-shard runtime wiring, and the
// ShardedLockTable's global-reachability contract.

#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"
#include "sharding/mailbox.h"
#include "sharding/shard_map.h"
#include "sharding/shard_runtime.h"
#include "sharding/sharded_lock_table.h"

namespace tufast {
namespace {

// ---------------------------------------------------------------------------
// ShardMap

TEST(ShardMapTest, CyclicDealRoundTripsEveryVertex) {
  // (shard, local index) must be a bijection over [0, n) and every local
  // index must fall inside its shard's declared size.
  for (const auto& [n, shards] : std::vector<std::pair<VertexId, uint32_t>>{
           {100, 1}, {100, 4}, {100, 7}, {97, 8}, {64, 64}, {1, 3}}) {
    ShardMap map(n, shards, /*num_workers=*/3);
    std::set<std::pair<uint32_t, VertexId>> seen;
    VertexId total = 0;
    for (uint32_t s = 0; s < map.num_shards(); ++s) total += map.ShardSize(s);
    EXPECT_EQ(total, n) << "n=" << n << " shards=" << shards;
    for (VertexId v = 0; v < n; ++v) {
      const uint32_t s = map.ShardOf(v);
      ASSERT_LT(s, map.num_shards());
      const VertexId local = map.LocalIndex(v);
      ASSERT_LT(local, map.ShardSize(s)) << "n=" << n << " shards=" << shards;
      EXPECT_TRUE(seen.emplace(s, local).second)
          << "vertex " << v << " collided (n=" << n << " shards=" << shards
          << ")";
    }
  }
}

TEST(ShardMapTest, NonDivisibleVertexCountSpreadsRemainderEvenly) {
  // 10 vertices over 3 shards: sizes differ by at most one and the low
  // shards take the extras (cyclic deal).
  ShardMap map(10, 3, 1);
  EXPECT_EQ(map.ShardSize(0), 4u);
  EXPECT_EQ(map.ShardSize(1), 3u);
  EXPECT_EQ(map.ShardSize(2), 3u);
}

TEST(ShardMapTest, SingleShardDegeneratesToUnsharded) {
  ShardMap map(7, 1, 4);
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_EQ(map.ShardOf(v), 0u);
    EXPECT_EQ(map.LocalIndex(v), v);
    EXPECT_EQ(map.OwnerOf(v), 0u);
  }
  EXPECT_EQ(map.ShardSize(0), 7u);
}

TEST(ShardMapTest, MoreShardsThanVerticesLeavesTailShardsEmpty) {
  ShardMap map(3, 8, 2);
  EXPECT_EQ(map.ShardSize(0), 1u);
  EXPECT_EQ(map.ShardSize(1), 1u);
  EXPECT_EQ(map.ShardSize(2), 1u);
  for (uint32_t s = 3; s < 8; ++s) EXPECT_EQ(map.ShardSize(s), 0u);
  EXPECT_EQ(map.ShardSize(99), 0u);  // Out of range: also empty.
}

TEST(ShardMapTest, ShardCountExceedingWorkerCountDealsCyclically) {
  ShardMap map(100, 8, 3);
  // 8 shards over 3 workers: worker 0 gets {0,3,6}, 1 gets {1,4,7},
  // 2 gets {2,5} — counts differ by at most one.
  for (uint32_t s = 0; s < 8; ++s) EXPECT_EQ(map.OwnerWorker(s), s % 3);
}

TEST(ShardMapTest, ZeroCountsClampToOne) {
  ShardMap map(10, 0, 0);
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.num_workers(), 1u);
  EXPECT_EQ(map.ShardOf(9), 0u);
  EXPECT_EQ(map.OwnerOf(9), 0u);
}

TEST(ShardMapTest, Pow2FastPathMatchesModulo) {
  ShardMap map(1000, 16, 4);
  for (VertexId v = 0; v < 1000; ++v) {
    EXPECT_EQ(map.ShardOf(v), v % 16);
  }
}

// ---------------------------------------------------------------------------
// BoundedMailbox

TEST(BoundedMailboxTest, CapacityRoundsUpToPowerOfTwoMinFour) {
  EXPECT_EQ(BoundedMailbox<uint64_t>(0).capacity(), 4u);
  EXPECT_EQ(BoundedMailbox<uint64_t>(1).capacity(), 4u);
  EXPECT_EQ(BoundedMailbox<uint64_t>(5).capacity(), 8u);
  EXPECT_EQ(BoundedMailbox<uint64_t>(1024).capacity(), 1024u);
}

TEST(BoundedMailboxTest, FifoOrderAndEmptyTracking) {
  BoundedMailbox<uint64_t> box(8);
  EXPECT_TRUE(box.Empty());
  for (uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(box.TryEnqueue(i));
  EXPECT_FALSE(box.Empty());
  EXPECT_EQ(box.ApproxDepth(), 5u);
  uint64_t out;
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(box.TryDequeue(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(box.Empty());
  EXPECT_FALSE(box.TryDequeue(&out));
}

TEST(BoundedMailboxTest, FullRingRejectsUntilDrained) {
  BoundedMailbox<uint64_t> box(4);
  for (uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(box.TryEnqueue(i));
  EXPECT_FALSE(box.TryEnqueue(99));  // Lossless contract: caller bounces.
  uint64_t out;
  ASSERT_TRUE(box.TryDequeue(&out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(box.TryEnqueue(99));
  EXPECT_FALSE(box.TryEnqueue(100));
}

TEST(BoundedMailboxTest, SequenceNumbersSurviveManyLaps) {
  BoundedMailbox<uint64_t> box(4);
  uint64_t out;
  for (uint64_t lap = 0; lap < 100; ++lap) {
    for (uint64_t i = 0; i < 3; ++i) ASSERT_TRUE(box.TryEnqueue(lap * 3 + i));
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(box.TryDequeue(&out));
      EXPECT_EQ(out, lap * 3 + i);
    }
  }
  EXPECT_TRUE(box.Empty());
}

TEST(BoundedMailboxTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 2000;
  BoundedMailbox<uint64_t> box(64);
  std::vector<uint64_t> seen_count(kProducers * kPerProducer, 0);
  std::atomic<int> live{kProducers};
  std::thread consumer([&] {
    uint64_t out;
    while (live.load(std::memory_order_acquire) > 0 || !box.Empty()) {
      if (box.TryDequeue(&out)) {
        ++seen_count[out];
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * kPerProducer + i;
        while (!box.TryEnqueue(value)) std::this_thread::yield();
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  for (size_t v = 0; v < seen_count.size(); ++v) {
    ASSERT_EQ(seen_count[v], 1u) << "value " << v << " lost or duplicated";
  }
}

// ---------------------------------------------------------------------------
// ShardRuntime

TEST(ShardRuntimeTest, OwnedShardListsFollowTheCyclicDeal) {
  ShardRuntime rt(ShardRuntime::Options{.num_vertices = 100,
                                        .num_shards = 8,
                                        .num_workers = 3,
                                        .mailbox_capacity = 16});
  EXPECT_EQ(rt.num_shards(), 8u);
  EXPECT_EQ(rt.OwnedShards(0), (std::vector<uint32_t>{0, 3, 6}));
  EXPECT_EQ(rt.OwnedShards(1), (std::vector<uint32_t>{1, 4, 7}));
  EXPECT_EQ(rt.OwnedShards(2), (std::vector<uint32_t>{2, 5}));
  // Workers past num_workers own nothing (they only ever send).
  EXPECT_TRUE(rt.OwnedShards(3).empty());
  EXPECT_TRUE(rt.OwnedShards(-1).empty());
  EXPECT_EQ(rt.shard(0).mailbox.capacity(), 16u);
  EXPECT_EQ(rt.shard(0).pending.load(), 0u);
}

TEST(ShardRuntimeTest, FewerShardsThanWorkersLeavesWorkersOwnerless) {
  ShardRuntime rt(ShardRuntime::Options{.num_vertices = 10,
                                        .num_shards = 2,
                                        .num_workers = 4});
  EXPECT_EQ(rt.OwnedShards(0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(rt.OwnedShards(1), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(rt.OwnedShards(2).empty());
  EXPECT_TRUE(rt.OwnedShards(3).empty());
}

// ---------------------------------------------------------------------------
// ShardedLockTable

TEST(ShardedLockTableTest, EveryVertexReachableAndWordsDistinct) {
  // The global-reachability contract: any worker can lock any vertex
  // through the global id, and no two vertices alias one lock word.
  EmulatedHtm htm;
  ShardedLockTable<EmulatedHtm> table(htm, 100,
                                      LockTableOptions{.shards = 7});
  EXPECT_EQ(table.num_shards(), 7u);
  std::set<const TmWord*> words;
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_TRUE(words.insert(table.WordAddr(v)).second) << "vertex " << v;
  }
  for (VertexId v = 0; v < 100; ++v) {
    ASSERT_TRUE(table.TryLockExclusive(v));
    EXPECT_FALSE(table.TryLockShared(v));
    EXPECT_FALSE(ShardedLockTable<EmulatedHtm>::Free(table.LoadWord(v)));
    table.UnlockExclusive(v);
    EXPECT_TRUE(ShardedLockTable<EmulatedHtm>::Free(table.LoadWord(v)));
  }
}

TEST(ShardedLockTableTest, SharedUpgradeRoundTripPerShard) {
  EmulatedHtm htm;
  ShardedLockTable<EmulatedHtm> table(htm, 32,
                                      LockTableOptions{.padded = true,
                                                       .shards = 4});
  EXPECT_TRUE(table.padded());
  const VertexId v = 13;
  ASSERT_TRUE(table.TryLockShared(v));
  EXPECT_TRUE(ShardedLockTable<EmulatedHtm>::SharedCompatible(
      table.LoadWord(v)));
  ASSERT_TRUE(table.TryUpgrade(v));
  EXPECT_FALSE(table.TryLockShared(v));
  table.UnlockExclusive(v);
  // Locking vertex 13 (shard 1) never touched shard 2's words.
  EXPECT_TRUE(ShardedLockTable<EmulatedHtm>::Free(table.LoadWord(14)));
}

TEST(ShardedLockTableTest, MoreShardsThanVerticesStillServesAll) {
  EmulatedHtm htm;
  ShardedLockTable<EmulatedHtm> table(htm, 3, LockTableOptions{.shards = 8});
  for (VertexId v = 0; v < 3; ++v) {
    ASSERT_TRUE(table.TryLockExclusive(v));
    table.UnlockExclusive(v);
  }
}

}  // namespace
}  // namespace tufast
