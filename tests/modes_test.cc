// White-box unit tests of the three TuFast mode contexts (HTxn / OTxn /
// LTxn) against the shared lock table: lock-compatibility checks,
// O-mode validation and lock-busy outcomes, segment accounting, and
// L-mode buffering — exercised directly, below the router.

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "tm/modes.h"

namespace tufast {
namespace {

class ModesTest : public ::testing::Test {
 protected:
  static constexpr VertexId kVertices = 64;
  EmulatedHtm htm_;
  LockTable<EmulatedHtm> locks_{htm_, kVertices};
  LockManager<EmulatedHtm> manager_{locks_};
  EmulatedHtm::Tx htx_{htm_, 0};
  std::vector<TmWord> data_ = std::vector<TmWord>(kVertices, 0);
};

TEST_F(ModesTest, HModeAbortsOnExclusivelyLockedVertexRead) {
  ASSERT_TRUE(locks_.TryLockExclusive(5));
  HTxn<EmulatedHtm> txn(htx_, locks_);
  const AbortStatus status = htx_.Execute([&] {
    (void)txn.Read(5, &data_[5]);
    ADD_FAILURE() << "read of exclusively locked vertex must abort";
  });
  EXPECT_EQ(status.cause, AbortCause::kExplicit);
  EXPECT_EQ(status.user_code, kAbortCodeLockBusy);
  locks_.UnlockExclusive(5);
}

TEST_F(ModesTest, HModeReadsThroughSharedLockButWontWrite) {
  ASSERT_TRUE(locks_.TryLockShared(5));
  HTxn<EmulatedHtm> read_txn(htx_, locks_);
  const AbortStatus read_status =
      htx_.Execute([&] { (void)read_txn.Read(5, &data_[5]); });
  EXPECT_TRUE(read_status.ok()) << "shared lock is read-compatible";

  HTxn<EmulatedHtm> write_txn(htx_, locks_);
  const AbortStatus write_status = htx_.Execute([&] {
    write_txn.Write(5, &data_[5], 1);
    ADD_FAILURE() << "write under a shared holder must abort";
  });
  EXPECT_EQ(write_status.cause, AbortCause::kExplicit);
  locks_.UnlockShared(5);
}

TEST_F(ModesTest, OModeCommitPublishesAndReleases) {
  OTxn<EmulatedHtm> txn(htm_, htx_, locks_);
  txn.Reset(/*period=*/100);
  const AbortStatus status = htx_.Execute([&] {
    const TmWord v = txn.Read(3, &data_[3]);
    txn.Write(3, &data_[3], v + 7);
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(txn.CommitSoftware(), OCommitResult::kOk);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[3]), 7u);
  // The exclusive lock taken during publication must be released.
  EXPECT_TRUE(locks_.TryLockExclusive(3));
  locks_.UnlockExclusive(3);
}

TEST_F(ModesTest, OModeValidationFailsWhenReadValueChanged) {
  OTxn<EmulatedHtm> txn(htm_, htx_, locks_);
  txn.Reset(100);
  const AbortStatus status = htx_.Execute([&] {
    (void)txn.Read(2, &data_[2]);
    txn.Write(4, &data_[4], 1);
  });
  ASSERT_TRUE(status.ok());
  // A committer changes the read value between XEND and validation.
  htm_.NonTxStore(&data_[2], 99);
  EXPECT_EQ(txn.CommitSoftware(), OCommitResult::kValidationFail);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[4]), 0u) << "write not published";
  EXPECT_TRUE(locks_.TryLockExclusive(4)) << "locks released on failure";
  locks_.UnlockExclusive(4);
}

TEST_F(ModesTest, OModeCommitLockBusyWhenWriteVertexHeld) {
  OTxn<EmulatedHtm> txn(htm_, htx_, locks_);
  txn.Reset(100);
  const AbortStatus status =
      htx_.Execute([&] { txn.Write(6, &data_[6], 1); });
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(locks_.TryLockShared(6));  // Somebody else holds it.
  EXPECT_EQ(txn.CommitSoftware(), OCommitResult::kLockBusy);
  locks_.UnlockShared(6);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[6]), 0u);
}

TEST_F(ModesTest, OModeValidationToleratesSharedReaders) {
  // Algorithm 2 line 45: shared holders on a READ vertex are compatible.
  OTxn<EmulatedHtm> txn(htm_, htx_, locks_);
  txn.Reset(100);
  const AbortStatus status = htx_.Execute([&] {
    (void)txn.Read(8, &data_[8]);
    txn.Write(9, &data_[9], 5);
  });
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(locks_.TryLockShared(8));
  EXPECT_EQ(txn.CommitSoftware(), OCommitResult::kOk);
  locks_.UnlockShared(8);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[9]), 5u);
}

TEST_F(ModesTest, OModeSegmentsRollAtPeriod) {
  OTxn<EmulatedHtm> txn(htm_, htx_, locks_);
  txn.Reset(/*period=*/4);
  const AbortStatus status = htx_.Execute([&] {
    // 12 reads with period 4: at least two segment boundaries must have
    // happened without losing read-set entries.
    for (int i = 0; i < 12; ++i) {
      (void)txn.Read(static_cast<VertexId>(i % kVertices),
                     &data_[i % kVertices]);
    }
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(txn.ops(), 12u);
  EXPECT_EQ(txn.CommitSoftware(), OCommitResult::kOk);
  EXPECT_GE(htx_.stats().begins, 3u);  // Initial + >= 2 boundaries.
}

TEST_F(ModesTest, LModeBuffersWritesUntilCommit) {
  LTxn<EmulatedHtm> txn(htm_, /*slot=*/0, manager_);
  txn.Reset();
  txn.Write(1, &data_[1], 11);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[1]), 0u) << "buffered, not applied";
  EXPECT_EQ(txn.Read(1, &data_[1]), 11u) << "read-own-write";
  txn.CommitApplyAndRelease();
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[1]), 11u);
  EXPECT_TRUE(locks_.TryLockExclusive(1)) << "locks released";
  locks_.UnlockExclusive(1);
}

TEST_F(ModesTest, LModeReleaseAllDiscardsBufferedWrites) {
  LTxn<EmulatedHtm> txn(htm_, 0, manager_);
  txn.Reset();
  txn.Write(2, &data_[2], 22);
  (void)txn.Read(3, &data_[3]);
  txn.ReleaseAll();  // Abort path.
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[2]), 0u);
  EXPECT_TRUE(locks_.TryLockExclusive(2));
  EXPECT_TRUE(locks_.TryLockExclusive(3));
  locks_.UnlockExclusive(2);
  locks_.UnlockExclusive(3);
}

TEST_F(ModesTest, LModeReadForUpdateTakesExclusiveImmediately) {
  LTxn<EmulatedHtm> txn(htm_, 0, manager_);
  txn.Reset();
  (void)txn.ReadForUpdate(4, &data_[4]);
  EXPECT_FALSE(locks_.TryLockShared(4)) << "exclusive from first touch";
  txn.ReleaseAll();
  EXPECT_TRUE(locks_.TryLockShared(4));
  locks_.UnlockShared(4);
}

}  // namespace
}  // namespace tufast
