// Comparison-engine correctness: the BSP (Ligra/Polymer-like), simulated
// distributed (PowerGraph/PowerLyra-like) and out-of-core (GraphChi-like)
// engines must produce the same answers as the sequential references —
// they are slower architectures, not different algorithms.

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/reference.h"
#include "engines/bsp_algorithms.h"
#include "engines/bsp_engine.h"
#include "engines/dist_engine.h"
#include "engines/ooc_algorithms.h"
#include "engines/ooc_engine.h"
#include "graph/generators.h"

namespace tufast {
namespace {

class EnginesTest : public ::testing::Test {
 protected:
  EnginesTest()
      : graph_(GeneratePowerLaw(600, 4000, 21, {.alpha = 0.7, .weighted = true})),
        undirected_(graph_.Undirected()),
        pool_(4) {}

  Graph graph_;
  Graph undirected_;
  ThreadPool pool_;
};

TEST_F(EnginesTest, BspBfsMatchesReferenceBothDeliveries) {
  const auto expected = ReferenceBfs(graph_, 0);
  for (const auto delivery : {BspDelivery::kDirect, BspDelivery::kMaterialized}) {
    BspEngine engine(pool_, delivery);
    const auto dist = BspBfs(engine, graph_, 0);
    for (size_t v = 0; v < dist.size(); ++v) {
      ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
    }
  }
}

TEST_F(EnginesTest, BspPageRankMatchesReference) {
  BspEngine engine(pool_, BspDelivery::kDirect);
  const auto result = BspPageRank(engine, graph_, 0.85, 300, 1e-10);
  const auto expected = ReferencePageRank(graph_, 0.85, 500, 1e-12);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-6) << "vertex " << v;
  }
}

TEST_F(EnginesTest, BspWccAndSsspAndTriangleMatchReference) {
  BspEngine engine(pool_, BspDelivery::kDirect);
  const auto labels = BspWcc(engine, undirected_);
  const auto expected_labels = ReferenceWcc(undirected_);
  for (size_t v = 0; v < labels.size(); ++v) {
    ASSERT_EQ(labels[v], expected_labels[v]) << "vertex " << v;
  }
  const auto dist = BspSssp(engine, graph_, 0);
  const auto expected_dist = ReferenceSssp(graph_, 0);
  for (size_t v = 0; v < dist.size(); ++v) {
    ASSERT_EQ(dist[v], expected_dist[v]) << "vertex " << v;
  }
  EXPECT_EQ(BspTriangleCount(engine, undirected_),
            ReferenceTriangleCount(undirected_));
}

TEST_F(EnginesTest, BspMisIsValid) {
  BspEngine engine(pool_, BspDelivery::kMaterialized);
  const auto state = BspMis(engine, undirected_, 99);
  EXPECT_TRUE(ValidateMis(undirected_,
                          std::vector<uint64_t>(state.begin(), state.end())));
}

TEST_F(EnginesTest, DistEngineMatchesReferenceAndChargesNetwork) {
  DistConfig config;
  config.time_scale = 0.0;  // Account, don't sleep, in unit tests.
  DistEngine engine(pool_, graph_, config);
  EXPECT_GT(engine.ReplicationFactor(), 1.0);

  const auto dist = BspBfs(engine, graph_, 0);
  const auto expected = ReferenceBfs(graph_, 0);
  for (size_t v = 0; v < dist.size(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
  EXPECT_GT(engine.SimulatedNetworkSeconds(), 0.0);
}

TEST_F(EnginesTest, HybridCutReducesReplication) {
  DistConfig random_cut;
  random_cut.time_scale = 0.0;
  DistConfig hybrid = random_cut;
  hybrid.cut = DistCut::kHybridCut;
  DistEngine power_graph(pool_, graph_, random_cut);
  DistEngine power_lyra(pool_, graph_, hybrid);
  // PowerLyra's point: lower replication factor on power-law graphs.
  EXPECT_LT(power_lyra.ReplicationFactor(), power_graph.ReplicationFactor());
}

TEST_F(EnginesTest, OocPageRankMatchesReference) {
  OocEngine engine(pool_, graph_, {.num_intervals = 4});
  const auto result = OocPageRank(engine, graph_, 0.85, 300, 1e-10);
  const auto expected = ReferencePageRank(graph_, 0.85, 500, 1e-12);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-6) << "vertex " << v;
  }
  EXPECT_GT(engine.BytesStreamed(), graph_.NumEdges() * 8);
}

TEST_F(EnginesTest, OocTraversalsMatchReference) {
  OocEngine engine(pool_, graph_, {.num_intervals = 4});
  const auto dist = OocBfs(engine, graph_, 0);
  const auto expected = ReferenceBfs(graph_, 0);
  for (size_t v = 0; v < dist.size(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }

  OocEngine wcc_engine(pool_, undirected_, {.num_intervals = 4});
  const auto labels = OocWcc(wcc_engine, undirected_);
  const auto expected_labels = ReferenceWcc(undirected_);
  for (size_t v = 0; v < labels.size(); ++v) {
    ASSERT_EQ(labels[v], expected_labels[v]) << "vertex " << v;
  }

  OocEngine sssp_engine(pool_, graph_, {.num_intervals = 4});
  const auto sdist = OocSssp(sssp_engine, graph_, 0);
  const auto expected_sdist = ReferenceSssp(graph_, 0);
  for (size_t v = 0; v < sdist.size(); ++v) {
    ASSERT_EQ(sdist[v], expected_sdist[v]) << "vertex " << v;
  }
}

TEST_F(EnginesTest, OocMisAndTriangle) {
  OocEngine engine(pool_, undirected_, {.num_intervals = 4});
  const auto state = OocMis(engine, undirected_, 5);
  EXPECT_TRUE(ValidateMis(undirected_,
                          std::vector<uint64_t>(state.begin(), state.end())));
  OocEngine tri_engine(pool_, undirected_, {.num_intervals = 4});
  EXPECT_EQ(OocTriangleCount(tri_engine, undirected_),
            ReferenceTriangleCount(undirected_));
}

// ---------------------------------------------------------------------------
// OocEngine shard-file lifecycle: a dedicated scratch directory makes
// the files countable, so leaks are observable directly.

std::vector<std::string> ShardFilesIn(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return files;
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.find("tufast_ooc_") != std::string::npos) {
      files.push_back(dir + "/" + name);
    }
  }
  closedir(d);
  return files;
}

TEST_F(EnginesTest, OocShardFilesRemovedOnDestruction) {
  const std::string dir = ::testing::TempDir() + "/ooc_lifecycle";
  mkdir(dir.c_str(), 0755);
  ASSERT_TRUE(ShardFilesIn(dir).empty());
  {
    OocEngine engine(pool_, graph_, {.num_intervals = 4, .tmp_dir = dir});
    EXPECT_EQ(ShardFilesIn(dir).size(), 4u);
  }
  EXPECT_TRUE(ShardFilesIn(dir).empty());
}

TEST_F(EnginesTest, OocDeletedShardThrowsAndStillCleansUp) {
  const std::string dir = ::testing::TempDir() + "/ooc_vanished";
  mkdir(dir.c_str(), 0755);
  {
    OocEngine engine(pool_, graph_, {.num_intervals = 4, .tmp_dir = dir});
    const auto files = ShardFilesIn(dir);
    ASSERT_EQ(files.size(), 4u);
    // Simulate an external tmp reaper racing the run: the iteration must
    // surface a typed error, not abort or read garbage.
    ASSERT_EQ(std::remove(files[1].c_str()), 0);
    EXPECT_THROW(engine.RunIteration(
                     [](TmWord, TmWord incoming, EdgeId) { return incoming; },
                     [](VertexId, TmWord, bool) { return TmWord{0}; }),
                 std::runtime_error);
  }
  // Pre-fix regression: the abort-on-error path (and any exception route
  // around the destructor) stranded the surviving shard files.
  EXPECT_TRUE(ShardFilesIn(dir).empty());
}

TEST_F(EnginesTest, OocConstructorFailureThrowsNotAborts) {
  const std::string dir = ::testing::TempDir() + "/ooc_missing_dir/nope";
  // tmp_dir does not exist, so the very first shard write fails; the
  // constructor must throw (destructor never runs) without leaking.
  EXPECT_THROW(
      OocEngine(pool_, graph_, {.num_intervals = 4, .tmp_dir = dir}),
      std::runtime_error);
}

}  // namespace
}  // namespace tufast
