// Compile-time API-contract checks: every transaction context, every
// scheduler and both HTM backends must satisfy the public concepts.
// Failures here are caught by the compiler, not at runtime.

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"
#include "htm/native_htm.h"
#include "tm/concepts.h"
#include "tm/modes.h"
#include "tm/scheduler_2pl.h"
#include "tm/scheduler_hsync.h"
#include "tm/scheduler_hto.h"
#include "tm/scheduler_silo.h"
#include "tm/scheduler_tinystm.h"
#include "tm/scheduler_to.h"
#include "tm/tufast.h"

namespace tufast {
namespace {

// HTM backends.
static_assert(HtmBackend<EmulatedHtm>);
static_assert(HtmBackend<NativeHtm>);

// TuFast mode contexts, on both backends.
static_assert(TransactionContext<HTxn<EmulatedHtm>>);
static_assert(TransactionContext<OTxn<EmulatedHtm>>);
static_assert(TransactionContext<LTxn<EmulatedHtm>>);
static_assert(TransactionContext<HTxn<NativeHtm>>);
static_assert(TransactionContext<OTxn<NativeHtm>>);
static_assert(TransactionContext<LTxn<NativeHtm>>);

// Baseline scheduler contexts.
static_assert(TransactionContext<SiloOcc<EmulatedHtm>::Txn>);
static_assert(TransactionContext<TimestampOrdering<EmulatedHtm>::Txn>);
static_assert(TransactionContext<TinyStm<EmulatedHtm>::Txn>);
static_assert(TransactionContext<HsyncHybrid<EmulatedHtm>::HwTxn>);
static_assert(TransactionContext<HsyncHybrid<EmulatedHtm>::FallbackTxn>);
static_assert(TransactionContext<HtmTimestampOrdering<EmulatedHtm>::HwTxn>);

// Telemetry sinks.
static_assert(TelemetrySink<NullTelemetry>);
static_assert(TelemetrySink<EventTelemetry>);
static_assert(!NullTelemetry::kEnabled);
static_assert(EventTelemetry::kEnabled);

// Schedulers (default NullTelemetry).
static_assert(Scheduler<TuFastScheduler<EmulatedHtm>>);
static_assert(Scheduler<TuFastScheduler<NativeHtm>>);
static_assert(Scheduler<TwoPhaseLocking<EmulatedHtm>>);
static_assert(Scheduler<SiloOcc<EmulatedHtm>>);
static_assert(Scheduler<TimestampOrdering<EmulatedHtm>>);
static_assert(Scheduler<TinyStm<EmulatedHtm>>);
static_assert(Scheduler<HsyncHybrid<EmulatedHtm>>);
static_assert(Scheduler<HtmTimestampOrdering<EmulatedHtm>>);

// Schedulers with the instrumented sink: same contract must hold.
static_assert(Scheduler<TuFastScheduler<EmulatedHtm, EventTelemetry>>);
static_assert(Scheduler<TwoPhaseLocking<EmulatedHtm, EventTelemetry>>);
static_assert(Scheduler<SiloOcc<EmulatedHtm, EventTelemetry>>);
static_assert(Scheduler<TimestampOrdering<EmulatedHtm, EventTelemetry>>);
static_assert(Scheduler<TinyStm<EmulatedHtm, EventTelemetry>>);
static_assert(Scheduler<HsyncHybrid<EmulatedHtm, EventTelemetry>>);
static_assert(Scheduler<HtmTimestampOrdering<EmulatedHtm, EventTelemetry>>);

TEST(ConceptsTest, ContractsHoldAtCompileTime) {
  SUCCEED();  // Everything above is checked by the compiler.
}

}  // namespace
}  // namespace tufast
