// Tests for the pluggable scheduler telemetry layer (tm/telemetry.h +
// tm/worker_runtime.h): event counts must agree exactly with the
// SchedulerStats counters the schedulers have always kept (the two are
// updated at the same call sites), Merge must behave like processing one
// combined stream, and the JSON export must stay stable (golden check —
// fig15's export format).

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench_support/reporting.h"
#include "common/rng.h"
#include "htm/emulated_htm.h"
#include "tm/scheduler_2pl.h"
#include "tm/scheduler_silo.h"
#include "tm/telemetry.h"
#include "tm/tufast.h"

namespace tufast {
namespace {

constexpr VertexId kVertices = 256;
constexpr int kThreads = 4;

/// Contended mixed-size workload driving all three TuFast modes plus
/// user aborts. Same body regardless of scheduler type.
template <typename Scheduler>
void RunContendedWorkload(Scheduler& tm, std::vector<TmWord>& values,
                          uint64_t big_hint) {
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1234 + t);
      for (int i = 0; i < 1500; ++i) {
        // Hot-set RMW: everyone hammers 8 vertices for real conflicts.
        const VertexId v = static_cast<VertexId>(rng.NextBounded(8));
        uint64_t hint = 2;
        int span = 1;
        if (i % 11 == 0) {
          hint = big_hint;  // Skips H mode: O (or direct L) path.
          span = 24;
        }
        if (i % 97 == 0) {
          tm.Run(t, hint, [&](auto& txn) { txn.Abort(); });
          continue;
        }
        tm.Run(t, hint, [&](auto& txn) {
          for (int k = 0; k < span; ++k) {
            const VertexId u = static_cast<VertexId>((v + k) % kVertices);
            const TmWord x = txn.Read(u, &values[u]);
            txn.Write(u, &values[u], x + 1);
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
}

/// The invariant the telemetry layer promises: every counter the sink
/// aggregates is updated at the same call site as the matching
/// SchedulerStats counter, so the two views can never drift.
void ExpectTelemetryMatchesStats(const TelemetrySnapshot& snap,
                                 const SchedulerStats& stats) {
  EXPECT_EQ(snap.begins, stats.commits + stats.user_aborts);
  EXPECT_EQ(snap.user_aborts, stats.user_aborts);
  EXPECT_EQ(snap.TotalCommits(), stats.commits);
  EXPECT_EQ(snap.TotalCommittedOps(), stats.ops_committed);
  for (int c = 0; c < kNumTxnClasses; ++c) {
    EXPECT_EQ(snap.commits[c], stats.class_count[c]) << "class " << c;
    EXPECT_EQ(snap.commit_ops[c], stats.class_ops[c]) << "class " << c;
    EXPECT_EQ(snap.commit_latency_ns[c].count(), stats.class_count[c]);
  }
  EXPECT_EQ(snap.TotalAborts(AbortReason::kConflict), stats.conflict_aborts);
  EXPECT_EQ(snap.TotalAborts(AbortReason::kCapacity), stats.capacity_aborts);
  EXPECT_EQ(snap.TotalAborts(AbortReason::kValidation),
            stats.validation_aborts);
  EXPECT_EQ(snap.TotalAborts(AbortReason::kLockBusy), stats.lock_busy_aborts);
  EXPECT_EQ(snap.TotalAborts(AbortReason::kDeadlock), stats.deadlock_aborts);
  EXPECT_EQ(snap.deadlock_cycle_victims + snap.deadlock_timeout_victims,
            stats.deadlock_aborts);
}

TEST(TelemetryTest, TuFastEventCountsMatchSchedulerStats) {
  EmulatedHtm htm;
  TuFastInstrumented tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  // big_hint above o_hint_threshold would skip O as well; pick one that
  // forces the O path but stays below the L threshold.
  RunContendedWorkload(tm, values, tm.h_hint_threshold() + 1);

  const SchedulerStats stats = tm.AggregatedStats();
  const TelemetrySnapshot& snap = tm.AggregatedTelemetry().Snapshot();
  ExpectTelemetryMatchesStats(snap, stats);

  // The workload committed in more than one class, so mode transitions
  // and the O-mode period trace must be populated.
  EXPECT_GT(stats.commits, 0u);
  EXPECT_GT(snap.commits[static_cast<int>(TxnClass::kH)], 0u);
  EXPECT_GT(snap.commits[static_cast<int>(TxnClass::kO)] +
                snap.commits[static_cast<int>(TxnClass::kOPlus)],
            0u);
  EXPECT_GT(snap.period_hist.count(), 0u);
  EXPECT_GT(snap.last_period, 0u);
  uint64_t time_total = 0;
  for (uint64_t ns : snap.time_in_mode_ns) time_total += ns;
  EXPECT_GT(time_total, 0u);
}

TEST(TelemetryTest, TuFastDirectLockRouteMatchesStats) {
  EmulatedHtm htm;
  TuFastInstrumented tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  // Above o_hint_threshold: every non-tiny transaction goes straight to
  // L mode, exercising the lock loop + deadlock-victim telemetry.
  RunContendedWorkload(tm, values, tm.config().o_hint_threshold + 1);

  ExpectTelemetryMatchesStats(tm.AggregatedTelemetry().Snapshot(),
                              tm.AggregatedStats());
  EXPECT_GT(tm.AggregatedTelemetry()
                .Snapshot()
                .commits[static_cast<int>(TxnClass::kL)],
            0u);
}

TEST(TelemetryTest, SiloBaselineEventCountsMatchSchedulerStats) {
  EmulatedHtm htm;
  SiloOcc<EmulatedHtm, EventTelemetry> tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  RunContendedWorkload(tm, values, /*big_hint=*/64);

  const SchedulerStats stats = tm.AggregatedStats();
  const TelemetrySnapshot& snap = tm.AggregatedTelemetry().Snapshot();
  ExpectTelemetryMatchesStats(snap, stats);
  // Silo commits everything as class O under the shared retry loop.
  EXPECT_EQ(snap.commits[static_cast<int>(TxnClass::kO)], stats.commits);
}

TEST(TelemetryTest, TwoPhaseLockingDeadlockVictimsAreCounted) {
  EmulatedHtm htm;
  TwoPhaseLocking<EmulatedHtm, EventTelemetry> tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  // Read-then-write on a shared hot set forces mutual upgrades, the
  // classic deadlock the lock manager resolves by picking victims.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(99 + t);
      for (int i = 0; i < 800; ++i) {
        const VertexId v = static_cast<VertexId>(rng.NextBounded(4));
        tm.Run(t, 2, [&](auto& txn) {
          const TmWord x = txn.Read(v, &values[v]);
          txn.Write(v, &values[v], x + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  const SchedulerStats stats = tm.AggregatedStats();
  const TelemetrySnapshot& snap = tm.AggregatedTelemetry().Snapshot();
  ExpectTelemetryMatchesStats(snap, stats);
  EXPECT_EQ(stats.commits, uint64_t{kThreads} * 800);
}

// ---------------------------------------------------------------------
// Merge property: processing one interleaved event stream in a single
// sink must equal splitting the transactions across several sinks and
// merging — for every deterministic field (wall-clock fields excluded:
// they depend on when the events happened, not how they were sharded).

struct TxnScript {
  SchedMode mode;
  int attempt_aborts;
  bool user_abort;
  TxnClass cls;
  uint64_t ops;
  uint32_t period;  // 0 = no PeriodChange events.
  int deadlock_victims;
};

void Replay(EventTelemetry& sink, const TxnScript& txn) {
  sink.TxnBegin();
  sink.EnterMode(txn.mode);
  if (txn.period != 0) sink.PeriodChange(txn.period);
  for (int i = 0; i < txn.attempt_aborts; ++i) {
    sink.AttemptAbort(static_cast<AbortReason>(i % kNumAbortReasons));
  }
  for (int i = 0; i < txn.deadlock_victims; ++i) {
    sink.DeadlockVictim(i % 2 == 0);
  }
  if (txn.mode == SchedMode::kHardware && txn.attempt_aborts > 2) {
    sink.EnterMode(SchedMode::kOptimistic);  // Mode escalation.
  }
  if (txn.user_abort) {
    sink.TxnUserAbort(txn.cls);
  } else {
    sink.TxnCommit(txn.cls, txn.ops);
  }
}

void ExpectDeterministicFieldsEqual(const TelemetrySnapshot& a,
                                    const TelemetrySnapshot& b) {
  EXPECT_EQ(a.begins, b.begins);
  EXPECT_EQ(a.user_aborts, b.user_aborts);
  EXPECT_EQ(a.deadlock_cycle_victims, b.deadlock_cycle_victims);
  EXPECT_EQ(a.deadlock_timeout_victims, b.deadlock_timeout_victims);
  for (int c = 0; c < kNumTxnClasses; ++c) {
    EXPECT_EQ(a.commits[c], b.commits[c]);
    EXPECT_EQ(a.commit_ops[c], b.commit_ops[c]);
    EXPECT_EQ(a.commit_latency_ns[c].count(), b.commit_latency_ns[c].count());
  }
  for (int m = 0; m < kNumSchedModes; ++m) {
    for (int r = 0; r < kNumAbortReasons; ++r) {
      EXPECT_EQ(a.aborts[m][r], b.aborts[m][r]) << m << "/" << r;
    }
    for (int n = 0; n < kNumSchedModes; ++n) {
      EXPECT_EQ(a.transitions[m][n], b.transitions[m][n]) << m << "->" << n;
    }
  }
  EXPECT_EQ(a.period_hist.count(), b.period_hist.count());
  EXPECT_EQ(a.period_hist.sum(), b.period_hist.sum());
  EXPECT_EQ(a.period_hist.min(), b.period_hist.min());
  EXPECT_EQ(a.period_hist.max(), b.period_hist.max());
}

TEST(TelemetryTest, MergeEqualsSingleStreamForRandomScripts) {
  Rng rng(0xfeedface);
  std::vector<TxnScript> scripts;
  for (int i = 0; i < 500; ++i) {
    TxnScript txn;
    txn.mode = static_cast<SchedMode>(rng.NextBounded(kNumSchedModes));
    txn.attempt_aborts = static_cast<int>(rng.NextBounded(5));
    txn.user_abort = rng.NextBounded(10) == 0;
    txn.cls = static_cast<TxnClass>(rng.NextBounded(kNumTxnClasses));
    txn.ops = rng.NextBounded(100);
    txn.period = rng.NextBounded(3) == 0
                     ? static_cast<uint32_t>(100 + rng.NextBounded(1900))
                     : 0;
    txn.deadlock_victims = rng.NextBounded(20) == 0 ? 1 : 0;
    scripts.push_back(txn);
  }

  EventTelemetry whole;
  for (const auto& txn : scripts) Replay(whole, txn);

  constexpr int kShards = 3;
  EventTelemetry shards[kShards];
  for (size_t i = 0; i < scripts.size(); ++i) {
    Replay(shards[i % kShards], scripts[i]);
  }
  EventTelemetry merged;
  for (const auto& shard : shards) merged.Merge(shard);

  ExpectDeterministicFieldsEqual(merged.Snapshot(), whole.Snapshot());

  // Merging in a different order must not change the deterministic view.
  EventTelemetry reversed;
  for (int s = kShards - 1; s >= 0; --s) reversed.Merge(shards[s]);
  ExpectDeterministicFieldsEqual(reversed.Snapshot(), whole.Snapshot());
}

TEST(TelemetryTest, MergeKeepsLastPeriodFromLaterNonZero) {
  EventTelemetry a, b;
  a.TxnBegin();
  a.EnterMode(SchedMode::kOptimistic);
  a.PeriodChange(512);
  a.TxnCommit(TxnClass::kO, 1);
  b.TxnBegin();
  b.EnterMode(SchedMode::kHardware);
  b.TxnCommit(TxnClass::kH, 1);

  EventTelemetry merged;
  merged.Merge(a);
  merged.Merge(b);  // b has no period signal: keep a's.
  EXPECT_EQ(merged.Snapshot().last_period, 512u);
}

// ---------------------------------------------------------------------
// JSON golden check (the fig15 --json-out format). The snapshot is
// constructed directly so every field, including the histogram
// summaries, is deterministic.

TEST(TelemetryJsonTest, SnapshotSerializationGolden) {
  TelemetrySnapshot snap;
  snap.begins = 10;
  snap.user_aborts = 1;
  snap.deadlock_cycle_victims = 2;
  snap.commits[static_cast<int>(TxnClass::kH)] = 5;
  snap.commit_ops[static_cast<int>(TxnClass::kH)] = 50;
  snap.time_in_mode_ns[0] = 1000;
  snap.time_in_mode_ns[1] = 2000;
  snap.time_in_mode_ns[2] = 3000;
  snap.aborts[0][static_cast<int>(AbortReason::kConflict)] = 4;
  snap.aborts[1][static_cast<int>(AbortReason::kValidation)] = 2;
  snap.transitions[0][1] = 3;
  snap.transitions[1][2] = 1;
  snap.period_hist.Add(1000, 4);
  snap.last_period = 500;
  snap.fused_regions = 3;
  snap.fused_items = 12;
  snap.fusion_aborts = 2;
  snap.fusion_width_hist.Add(4, 3);
  snap.backoff_events = 7;
  snap.backoff_pauses = 90;
  snap.starvation_escalations = 2;
  snap.starvation_tokens = 1;
  snap.breaker_trips = 1;
  snap.breaker_half_opens = 1;
  snap.breaker_closes = 1;
  snap.breaker_bypass = 128;
  snap.txn_abort_hist.Add(4, 2);
  snap.max_txn_aborts = 4;
  snap.serve_requests = 6;
  snap.serve_queue_delay_ns = 4000;
  snap.serve_max_queue_delay_ns = 2000;

  const std::string empty_hist =
      "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p99\":0}";
  const std::string expected =
      "{\"begins\":10,\"user_aborts\":1,\"deadlock_cycle_victims\":2,"
      "\"deadlock_timeout_victims\":0,"
      "\"commits\":{"
      "\"H\":{\"count\":5,\"ops\":50,\"latency_ns\":" + empty_hist + "},"
      "\"O\":{\"count\":0,\"ops\":0,\"latency_ns\":" + empty_hist + "},"
      "\"O+\":{\"count\":0,\"ops\":0,\"latency_ns\":" + empty_hist + "},"
      "\"O2L\":{\"count\":0,\"ops\":0,\"latency_ns\":" + empty_hist + "},"
      "\"L\":{\"count\":0,\"ops\":0,\"latency_ns\":" + empty_hist + "}},"
      "\"time_in_mode_ns\":{\"H\":1000,\"O\":2000,\"L\":3000},"
      "\"aborts\":{"
      "\"H\":{\"conflict\":4,\"capacity\":0,\"validation\":0,"
      "\"lock_busy\":0,\"deadlock\":0},"
      "\"O\":{\"conflict\":0,\"capacity\":0,\"validation\":2,"
      "\"lock_busy\":0,\"deadlock\":0},"
      "\"L\":{\"conflict\":0,\"capacity\":0,\"validation\":0,"
      "\"lock_busy\":0,\"deadlock\":0}},"
      "\"transitions\":{\"H->O\":3,\"O->L\":1},"
      "\"period\":{\"count\":4,\"sum\":4000,\"min\":1000,\"max\":1000,"
      "\"p50\":512,\"p99\":512},"
      "\"last_period\":500,"
      "\"fusion\":{\"fused_regions\":3,\"fused_items\":12,"
      "\"fusion_aborts\":2,"
      "\"width\":{\"count\":3,\"sum\":12,\"min\":4,\"max\":4,"
      "\"p50\":4,\"p99\":4},"
      "\"bisection_depth\":" + empty_hist + "},"
      "\"progress\":{\"backoff_events\":7,\"backoff_pauses\":90,"
      "\"starvation_escalations\":2,\"starvation_tokens\":1,"
      "\"breaker_trips\":1,\"breaker_half_opens\":1,"
      "\"breaker_closes\":1,\"breaker_bypass\":128,"
      "\"txn_aborts\":{\"count\":2,\"sum\":8,\"min\":4,\"max\":4,"
      "\"p50\":4,\"p99\":4},"
      "\"max_txn_aborts\":4},"
      "\"serve\":{\"requests\":6,\"queue_delay_ns\":4000,"
      "\"max_queue_delay_ns\":2000,"
      "\"queue_delay\":" + empty_hist + "}}";
  EXPECT_EQ(TelemetrySnapshotToJson(snap), expected);
}

TEST(TelemetryJsonTest, EscapeHandlesSpecialCharacters) {
  EXPECT_EQ(JsonReport::Escape("plain"), "plain");
  EXPECT_EQ(JsonReport::Escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonReport::Escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonReport::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(TelemetryJsonTest, LiveSnapshotSerializesWithoutError) {
  EmulatedHtm htm;
  TuFastInstrumented tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  RunContendedWorkload(tm, values, tm.h_hint_threshold() + 1);
  const std::string json =
      TelemetrySnapshotToJson(tm.AggregatedTelemetry().Snapshot());
  EXPECT_NE(json.find("\"begins\":"), std::string::npos);
  EXPECT_NE(json.find("\"transitions\":{"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace tufast
