// Dynamic-graph invariants under fault injection: the three workloads of
// testing/dynamic_invariants.h swept across all seven schedulers and all
// deadlock policies with probabilistic HTM aborts, lock failures, router
// demotions and schedule perturbation (the PR-2 chaos plan). Part of the
// `stress` ctest label; failures print the exact replay triple:
//
//   TUFAST_STRESS_SEED=<seed> TUFAST_STRESS_ITERS=1 \
//     ./tufast_tests --gtest_filter='DynamicInvariantStress*'

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "testing/dynamic_invariants.h"
#include "testing/failpoints.h"
#include "testing/stress_workloads.h"

namespace tufast {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10) : def;
}

uint64_t StressIters() { return EnvU64("TUFAST_STRESS_ITERS", 2); }
uint64_t StressBaseSeed() { return EnvU64("TUFAST_STRESS_SEED", 1); }

const char* PolicyName(DeadlockPolicy p) {
  switch (p) {
    case DeadlockPolicy::kDetection: return "detection";
    case DeadlockPolicy::kPrevention: return "prevention";
    case DeadlockPolicy::kTimeout: return "timeout";
  }
  return "?";
}

FailpointPlan::Config ChaosConfig(uint64_t seed) {
  FailpointPlan::Config config;
  config.seed = seed;
  config.Arm(FailSite::kHtmLoad, 0.002, FailAction::kAbortConflict);
  config.Arm(FailSite::kHtmStore, 0.001, FailAction::kAbortCapacity);
  config.Arm(FailSite::kHtmCommit, 0.002, FailAction::kAbortConflict);
  config.Arm(FailSite::kRouterSkipH, 0.05, FailAction::kFail);
  config.Arm(FailSite::kRouterSkipO, 0.05, FailAction::kFail);
  config.Arm(FailSite::kLockAcquireShared, 0.005, FailAction::kFail);
  config.Arm(FailSite::kLockAcquireExclusive, 0.01, FailAction::kFail);
  config.Arm(FailSite::kLockUpgrade, 0.01, FailAction::kFail);
  config.Arm(FailSite::kLockTryExclusive, 0.01, FailAction::kFail);
  config.Arm(FailSite::kLockTryUpgrade, 0.01, FailAction::kFail);
  config.yield_prob = 0.05;
  return config;
}

template <typename Scheduler>
class DynamicInvariantStressTest : public ::testing::Test {};

using StressSchedulers = ::testing::Types<
    TuFastScheduler<FaultyHtm>, TwoPhaseLocking<FaultyHtm>,
    SiloOcc<FaultyHtm>, TimestampOrdering<FaultyHtm>, TinyStm<FaultyHtm>,
    HsyncHybrid<FaultyHtm>, HtmTimestampOrdering<FaultyHtm>>;
TYPED_TEST_SUITE(DynamicInvariantStressTest, StressSchedulers);

// Every DynamicGraph mutation locks exactly one vertex with write intent
// declared up front, so — unlike the generic workloads — the same
// transaction shape satisfies the kPrevention contract on every policy.
TYPED_TEST(DynamicInvariantStressTest, HoldsUnderChaos) {
  using Scheduler = TypeParam;
  std::vector<DeadlockPolicy> policies;
  if constexpr (kSchedulerUsesPolicy<Scheduler, FaultyHtm>) {
    policies = {DeadlockPolicy::kDetection, DeadlockPolicy::kPrevention,
                DeadlockPolicy::kTimeout};
  } else {
    policies = {DeadlockPolicy::kDetection};  // Policy-free baselines.
  }
  const uint64_t iters = StressIters();
  for (DeadlockPolicy policy : policies) {
    for (uint64_t it = 0; it < iters; ++it) {
      const uint64_t seed = StressBaseSeed() + it;
      DynamicStressConfig cfg;
      cfg.threads = 3;
      cfg.batches_per_thread = 30;
      cfg.batch_size = 4;
      cfg.vertices = 32;
      cfg.seed = seed;
      FaultyHtm htm;
      auto tm = MakeSchedulerFor<Scheduler>(htm, cfg.Capacity(), policy);
      FailpointPlan plan(ChaosConfig(seed));
      FailpointScope scope(plan);
      if (auto err = RunDynamicInvariantSuite(*tm, cfg)) {
        ADD_FAILURE() << *err << " [policy=" << PolicyName(policy)
                      << " seed=" << seed
                      << "; replay: TUFAST_STRESS_SEED=" << seed
                      << " TUFAST_STRESS_ITERS=1]";
        return;
      }
    }
  }
}

}  // namespace
}  // namespace tufast
