// Progress-guard layer tests (DESIGN.md "Progress guard"):
//   * ConflictBackoff determinism under a fixed seed and window growth;
//   * ProgressSignals bit/token semantics;
//   * ProgressGuard escalation ladder (priority aging -> global token);
//   * abort-storm circuit breaker state machine, unit-level and routed
//     through TuFast under forced failpoints;
//   * starvation escalation end to end (forced victim re-aborts);
//   * the starvation token pausing batch fusion;
//   * exception safety: a transaction body that throws a foreign
//     exception must release every lock it holds before propagating, in
//     TuFast's L and O paths, the 2PL baseline, the HSync global-lock
//     fallback, and TinySTM's encounter-time write locks;
//   * the cooperative stall watchdog and the worker heartbeat counters.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "htm/emulated_htm.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"
#include "testing/failpoints.h"
#include "tm/contention_monitor.h"
#include "tm/progress_guard.h"
#include "tm/scheduler_2pl.h"
#include "tm/scheduler_hsync.h"
#include "tm/scheduler_tinystm.h"
#include "tm/stall_watchdog.h"
#include "tm/tufast.h"

namespace tufast {
namespace {

// ---------------------------------------------------------------------
// ConflictBackoff: deterministic pacing between conflict retries.

TEST(ConflictBackoffTest, DeterministicUnderFixedSeed) {
  Rng a(1234), b(1234);
  for (uint32_t attempt = 0; attempt < 32; ++attempt) {
    EXPECT_EQ(ConflictBackoff(a, attempt), ConflictBackoff(b, attempt))
        << "same seed must replay the exact pause sequence (attempt "
        << attempt << ")";
  }
}

TEST(ConflictBackoffTest, PausesStayWithinTheDoublingWindow) {
  Rng rng(7);
  for (uint32_t attempt = 0; attempt < 24; ++attempt) {
    const uint32_t shift = attempt < 10 ? attempt : 10;
    const uint64_t window = uint64_t{8} << shift;
    for (int i = 0; i < 8; ++i) {
      const uint64_t pauses = ConflictBackoff(rng, attempt);
      EXPECT_GE(pauses, 1u);
      EXPECT_LE(pauses, window) << "window must cap at 8 << 10 (attempt "
                                << attempt << ")";
    }
  }
}

// ---------------------------------------------------------------------
// ProgressSignals: starved bits and the single global token.

TEST(ProgressSignalsTest, StarvedBitRoundTrip) {
  ProgressSignals signals;
  EXPECT_FALSE(signals.AnyStarved());
  signals.SetStarved(3);
  EXPECT_TRUE(signals.IsStarved(3));
  EXPECT_FALSE(signals.IsStarved(4));
  EXPECT_TRUE(signals.AnyStarved());
  EXPECT_TRUE(signals.IsProtected(3));
  EXPECT_FALSE(signals.IsProtected(4));
  signals.ClearStarved(3);
  EXPECT_FALSE(signals.IsStarved(3));
  EXPECT_FALSE(signals.AnyStarved());
}

TEST(ProgressSignalsTest, TokenHasAtMostOneHolder) {
  ProgressSignals signals;
  EXPECT_FALSE(signals.TokenHeld());
  EXPECT_TRUE(signals.TryAcquireToken(2));
  EXPECT_EQ(signals.TokenHolder(), 2);
  // Re-acquisition by anyone (including the holder) is not "fresh".
  EXPECT_FALSE(signals.TryAcquireToken(2));
  EXPECT_FALSE(signals.TryAcquireToken(5));
  EXPECT_TRUE(signals.TokenHeldElsewhere(5));
  EXPECT_FALSE(signals.TokenHeldElsewhere(2));
  EXPECT_TRUE(signals.IsProtected(2));
  // Releasing from the wrong slot is a no-op.
  signals.ReleaseToken(5);
  EXPECT_EQ(signals.TokenHolder(), 2);
  signals.ReleaseToken(2);
  EXPECT_FALSE(signals.TokenHeld());
  EXPECT_TRUE(signals.TryAcquireToken(5));
}

TEST(ProgressSignalsTest, CyclePriorityIsATotalOrder) {
  ProgressSignals signals;
  // Nobody starved, no token: nobody may out-wait a cycle.
  EXPECT_FALSE(signals.HasCyclePriority(0));
  // Among starved slots, exactly the lowest id wins the tie-break.
  signals.SetStarved(5);
  EXPECT_TRUE(signals.HasCyclePriority(5));
  signals.SetStarved(2);
  EXPECT_TRUE(signals.HasCyclePriority(2));
  EXPECT_FALSE(signals.HasCyclePriority(5));
  EXPECT_TRUE(signals.IsProtected(5));  // Injection immunity is broader.
  // A token holder outranks every starved slot, even lower-id ones.
  ASSERT_TRUE(signals.TryAcquireToken(7));
  EXPECT_TRUE(signals.HasCyclePriority(7));
  EXPECT_FALSE(signals.HasCyclePriority(2));
  signals.ReleaseToken(7);
  EXPECT_TRUE(signals.HasCyclePriority(2));
  signals.ClearStarved(2);
  EXPECT_TRUE(signals.HasCyclePriority(5));
}

// Regression for the mutual-starvation livelock: two starved slots in a
// genuine deadlock must resolve via the cycle-priority tie-break — the
// slot without priority self-victimizes at cycle closure — instead of
// both rolling back their wait edges (leaving no visible cycle and no
// victim) and re-colliding after full wait bounds in lockstep forever.
TEST(LockManagerProgressTest, MutuallyStarvedDeadlockResolvesPromptly) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, /*num_vertices=*/4);
  LockManager<EmulatedHtm> mgr(table, DeadlockPolicy::kDetection);
  ProgressSignals signals;
  signals.SetStarved(0);
  signals.SetStarved(1);
  mgr.SetProgressSignals(&signals);

  ASSERT_TRUE(mgr.AcquireExclusive(0, 0));  // slot 0 holds vertex 0
  ASSERT_TRUE(mgr.AcquireExclusive(1, 1));  // slot 1 holds vertex 1

  std::atomic<int> priority_result{-1};
  std::thread waiter([&] {
    // Slot 0 (lowest starved id -> cycle priority) waits for vertex 1.
    priority_result.store(mgr.AcquireExclusive(0, 1) ? 1 : 0);
  });
  // Let slot 0 publish its wait edge so slot 1's acquire below is the
  // one that closes the cycle. (If the race goes the other way the test
  // still passes — slot 1 then times out of its bounded wait — it is
  // just slower.)
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Slot 1 closes the cycle; starved but outranked, it must victimize.
  EXPECT_FALSE(mgr.AcquireExclusive(1, 0));
  mgr.ReleaseExclusive(1, 1);  // Victim contract: release the lock set.
  waiter.join();
  EXPECT_EQ(priority_result.load(), 1)
      << "the cycle-priority slot must win the conflict";
  mgr.ReleaseExclusive(0, 0);
  mgr.ReleaseExclusive(0, 1);
}

// ---------------------------------------------------------------------
// ProgressGuard: the escalation ladder.

TEST(ProgressGuardTest, LadderEscalatesAtTheConfiguredThresholds) {
  ProgressGuard guard(ProgressGuard::Config{.priority_threshold = 3,
                                            .token_threshold = 8,
                                            .enabled = true});
  EXPECT_EQ(guard.OnAbort(0, 1), ProgressGuard::Escalation::kNone);
  EXPECT_EQ(guard.OnAbort(0, 2), ProgressGuard::Escalation::kNone);
  EXPECT_FALSE(guard.Protected(0));
  EXPECT_EQ(guard.OnAbort(0, 3), ProgressGuard::Escalation::kStarved);
  EXPECT_TRUE(guard.Protected(0));
  for (uint32_t aborts = 4; aborts < 8; ++aborts) {
    EXPECT_EQ(guard.OnAbort(0, aborts), ProgressGuard::Escalation::kNone);
  }
  EXPECT_EQ(guard.OnAbort(0, 8), ProgressGuard::Escalation::kToken);
  EXPECT_TRUE(guard.signals().TokenHeld());
  // A second slot at the token threshold cannot take the busy token.
  EXPECT_EQ(guard.OnAbort(1, 8), ProgressGuard::Escalation::kNone);
  guard.OnTxnDone(0);
  EXPECT_FALSE(guard.Protected(0));
  EXPECT_FALSE(guard.signals().TokenHeld());
  // Token free again: the starving peer can now take it.
  EXPECT_EQ(guard.OnAbort(1, 9), ProgressGuard::Escalation::kToken);
  guard.OnTxnDone(1);
}

TEST(ProgressGuardTest, ForceEscalateJumpsToTheTokenWhenFree) {
  ProgressGuard guard;
  EXPECT_EQ(guard.ForceEscalate(0), ProgressGuard::Escalation::kToken);
  EXPECT_TRUE(guard.Protected(0));
  // Token busy: a forced peer still gets priority aging.
  EXPECT_EQ(guard.ForceEscalate(1), ProgressGuard::Escalation::kStarved);
  EXPECT_TRUE(guard.Protected(1));
  guard.OnTxnDone(0);
  guard.OnTxnDone(1);
  EXPECT_FALSE(guard.signals().AnyStarved());
}

TEST(ProgressGuardTest, DisabledGuardIsInert) {
  ProgressGuard guard(ProgressGuard::Config{.priority_threshold = 1,
                                            .token_threshold = 2,
                                            .enabled = false});
  EXPECT_EQ(guard.OnAbort(0, 100), ProgressGuard::Escalation::kNone);
  EXPECT_EQ(guard.ForceEscalate(0), ProgressGuard::Escalation::kNone);
  EXPECT_FALSE(guard.Protected(0));
  EXPECT_FALSE(guard.signals().AnyStarved());
  EXPECT_FALSE(guard.signals().TokenHeld());
}

// ---------------------------------------------------------------------
// Circuit breaker: unit-level state machine on ContentionMonitor.

ContentionMonitor::Config BreakerConfig() {
  ContentionMonitor::Config config;
  config.breaker_enabled = true;
  return config;
}

TEST(BreakerTest, TripsOnlyWhenTheWindowedRateCrossesTheThreshold) {
  ContentionMonitor monitor(BreakerConfig());
  const auto& cfg = monitor.config();
  // A full window of commits: stays closed.
  for (uint32_t i = 0; i < cfg.breaker_window; ++i) {
    monitor.RecordAttempt(1, /*aborted=*/false);
  }
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kClosed);
  // A full window of aborts: trips on the window edge, not before.
  for (uint32_t i = 0; i < cfg.breaker_window - 1; ++i) {
    monitor.RecordAttempt(1, /*aborted=*/true);
    EXPECT_EQ(monitor.breaker_state(), BreakerState::kClosed);
  }
  monitor.RecordAttempt(1, /*aborted=*/true);
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(monitor.breaker_trips(), 1u);
}

TEST(BreakerTest, FullRoundTripOpenHalfOpenClosed) {
  ContentionMonitor monitor(BreakerConfig());
  const auto& cfg = monitor.config();
  monitor.TripBreaker();
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kOpen);
  // The open window bypasses exactly breaker_open_txns transactions.
  for (uint32_t i = 0; i < cfg.breaker_open_txns; ++i) {
    EXPECT_TRUE(monitor.BreakerShouldBypass());
  }
  // The next routed transaction transitions to half-open and is admitted
  // as the first probe.
  EXPECT_FALSE(monitor.BreakerShouldBypass());
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kHalfOpen);
  EXPECT_EQ(monitor.breaker_half_opens(), 1u);
  monitor.RecordAttempt(1, /*aborted=*/false);
  for (uint32_t i = 1; i < cfg.breaker_probe_txns; ++i) {
    EXPECT_FALSE(monitor.BreakerShouldBypass()) << "probe " << i;
    monitor.RecordAttempt(1, /*aborted=*/false);
  }
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(monitor.breaker_closes(), 1u);
  EXPECT_FALSE(monitor.BreakerShouldBypass());
}

TEST(BreakerTest, AbortingProbesReTrip) {
  ContentionMonitor monitor(BreakerConfig());
  const auto& cfg = monitor.config();
  monitor.TripBreaker();
  for (uint32_t i = 0; i < cfg.breaker_open_txns; ++i) {
    monitor.BreakerShouldBypass();
  }
  // Half-open; every probe aborts -> the storm is still on, re-trip.
  for (uint32_t i = 0; i < cfg.breaker_probe_txns; ++i) {
    EXPECT_FALSE(monitor.BreakerShouldBypass());
    monitor.RecordAttempt(1, /*aborted=*/true);
  }
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(monitor.breaker_trips(), 2u);
  EXPECT_EQ(monitor.breaker_half_opens(), 1u);
  EXPECT_EQ(monitor.breaker_closes(), 0u);
}

TEST(BreakerTest, TrippedBreakerClampsFusionWidthToOne) {
  ContentionMonitor monitor(BreakerConfig());
  EXPECT_GT(monitor.CurrentFusionWidth(32), 1u);
  monitor.TripBreaker();
  EXPECT_EQ(monitor.CurrentFusionWidth(32), 1u);
}

TEST(BreakerTest, DisabledBreakerNeverTrips) {
  ContentionMonitor monitor;  // breaker_enabled defaults to false.
  for (int i = 0; i < 1000; ++i) monitor.RecordAttempt(1, /*aborted=*/true);
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kClosed);
  monitor.TripBreaker();
  EXPECT_EQ(monitor.breaker_state(), BreakerState::kClosed);
  EXPECT_FALSE(monitor.BreakerShouldBypass());
  EXPECT_EQ(monitor.breaker_trips(), 0u);
}

TEST(BreakerTest, StateNamesForDiagnostics) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

// ---------------------------------------------------------------------
// Breaker routed through TuFast under a forced failpoint trip: the
// exact same deterministic round trip the micro_ops_benchmark "progress
// guard" table pins in BENCH_baseline.json.

TEST(TuFastBreakerTest, ForcedTripRoundTripIsVisibleInTelemetry) {
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm, EventTelemetry> tm(htm, 1024);
  std::vector<TmWord> values(1024, 0);
  FailpointPlan plan(FailpointPlan::Config{});
  plan.ForceAt(FailSite::kBreakerTrip, 0, 0, FailAction::kFail);
  FailpointScope scope(plan);
  constexpr uint64_t kTxns = 200;
  VertexId v = 0;
  for (uint64_t t = 0; t < kTxns; ++t) {
    const RunOutcome outcome = tm.Run(0, 2, [&](auto& txn) {
      txn.Write(v, &values[v], txn.Read(v, &values[v]) + 1);
    });
    EXPECT_TRUE(outcome.committed);
    v = (v + 1) & 1023;
  }
  const TelemetrySnapshot snap = tm.AggregatedTelemetry().Snapshot();
  EXPECT_EQ(snap.breaker_trips, 1u);
  EXPECT_EQ(snap.breaker_half_opens, 1u);
  EXPECT_EQ(snap.breaker_closes, 1u);
  EXPECT_EQ(snap.breaker_bypass,
            uint64_t{ContentionMonitor::Config{}.breaker_open_txns});
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.breaker_bypass, snap.breaker_bypass);
  EXPECT_EQ(stats.commits, kTxns) << "the breaker reroutes, never drops";
  // Bypassed transactions went to L; the rest stayed on the H path.
  EXPECT_EQ(stats.class_count[static_cast<int>(TxnClass::kL)],
            snap.breaker_bypass);
}

TEST(TuFastBreakerTest, DisabledBreakerIgnoresTheTripFailpoint) {
  FaultyHtm htm;
  typename TuFastScheduler<FaultyHtm>::Config config;
  config.enable_breaker = false;
  TuFastScheduler<FaultyHtm> tm(htm, 64, config);
  std::vector<TmWord> values(64, 0);
  FailpointPlan plan(FailpointPlan::Config{});
  plan.ForceAt(FailSite::kBreakerTrip, 0, 0, FailAction::kFail);
  FailpointScope scope(plan);
  for (uint64_t t = 0; t < 50; ++t) {
    tm.Run(0, 2, [&](auto& txn) {
      txn.Write(1, &values[1], txn.Read(1, &values[1]) + 1);
    });
  }
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.breaker_bypass, 0u);
  EXPECT_EQ(stats.class_count[static_cast<int>(TxnClass::kL)], 0u);
}

// ---------------------------------------------------------------------
// Starvation escalation end to end, driven by forced victim re-aborts.

TEST(TuFastStarvationTest, ForcedVictimReabortsEscalateThenCommit) {
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm, EventTelemetry> tm(htm, 1024);
  std::vector<TmWord> values(1024, 0);
  FailpointPlan plan(FailpointPlan::Config{});
  // Far more forced re-aborts than the priority threshold: once the slot
  // is protected the failpoint is skipped, so the ladder must cap the
  // abort count at exactly the threshold.
  for (uint64_t hit = 0; hit < 16; ++hit) {
    plan.ForceAt(FailSite::kVictimReabort, 0, hit, FailAction::kFail);
  }
  FailpointScope scope(plan);
  const uint64_t big = tm.config().o_hint_threshold + 1;
  const RunOutcome outcome = tm.Run(0, big, [&](auto& txn) {
    txn.Write(0, &values[0], txn.Read(0, &values[0]) + 1);
  });
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(values[0], 1u);
  const TelemetrySnapshot snap = tm.AggregatedTelemetry().Snapshot();
  EXPECT_EQ(snap.starvation_escalations, 1u);
  EXPECT_EQ(snap.max_txn_aborts,
            uint64_t{tm.config().starvation_priority_threshold})
      << "priority aging must make the slot immune to further injected "
         "victim aborts";
  EXPECT_EQ(snap.backoff_events, snap.max_txn_aborts)
      << "one paced backoff per victim abort";
  EXPECT_GT(snap.backoff_pauses, 0u);
  // The ladder cleans up after commit.
  EXPECT_FALSE(tm.progress_guard().signals().AnyStarved());
  EXPECT_FALSE(tm.progress_guard().signals().TokenHeld());
}

TEST(TuFastStarvationTest, ForcedTokenIsAcquiredAndReleased) {
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm, EventTelemetry> tm(htm, 1024);
  std::vector<TmWord> values(1024, 0);
  FailpointPlan plan(FailpointPlan::Config{});
  plan.ForceAt(FailSite::kStarvationToken, 0, 0, FailAction::kFail);
  FailpointScope scope(plan);
  const uint64_t big = tm.config().o_hint_threshold + 1;
  const RunOutcome outcome = tm.Run(0, big, [&](auto& txn) {
    txn.Write(0, &values[0], txn.Read(0, &values[0]) + 1);
  });
  EXPECT_TRUE(outcome.committed);
  const TelemetrySnapshot snap = tm.AggregatedTelemetry().Snapshot();
  EXPECT_EQ(snap.starvation_tokens, 1u);
  EXPECT_FALSE(tm.progress_guard().signals().TokenHeld())
      << "OnTxnDone must release the token at commit";
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.starvation_tokens, 1u);
}

TEST(TuFastStarvationTest, BackoffDisabledKeepsCountersAtZero) {
  FaultyHtm htm;
  typename TuFastScheduler<FaultyHtm>::Config config;
  config.enable_backoff = false;
  TuFastScheduler<FaultyHtm> tm(htm, 64, config);
  std::vector<TmWord> values(64, 0);
  FailpointPlan plan(FailpointPlan::Config{});
  for (uint64_t hit = 0; hit < 8; ++hit) {
    plan.ForceAt(FailSite::kVictimReabort, 0, hit, FailAction::kFail);
  }
  FailpointScope scope(plan);
  const RunOutcome outcome =
      tm.Run(0, tm.config().o_hint_threshold + 1, [&](auto& txn) {
        txn.Write(0, &values[0], txn.Read(0, &values[0]) + 1);
      });
  EXPECT_TRUE(outcome.committed);
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.backoff_events, 0u)
      << "enable_backoff=false must fall back to the legacy pacing";
  EXPECT_GT(stats.max_txn_aborts, 0u)
      << "the escalation ladder is independent of the backoff switch";
}

TEST(TuFastStarvationTest, SameSeedReplaysIdenticalBackoffSequence) {
  // The only entropy in the guard is the worker's seeded Rng and the
  // failpoint plan's per-slot streams, so two identical single-threaded
  // runs must agree on every counter.
  auto run_once = [] {
    FaultyHtm htm;
    TuFastScheduler<FaultyHtm, EventTelemetry> tm(htm, 64);
    std::vector<TmWord> values(64, 0);
    FailpointPlan::Config config;
    config.seed = 42;
    config.Arm(FailSite::kLockAcquireExclusive, 0.5, FailAction::kFail);
    config.Arm(FailSite::kVictimReabort, 0.3, FailAction::kFail);
    FailpointPlan plan(config);
    FailpointScope scope(plan);
    const uint64_t big = tm.config().o_hint_threshold + 1;
    for (uint64_t t = 0; t < 60; ++t) {
      const VertexId v = static_cast<VertexId>(t & 63);
      tm.Run(0, big, [&](auto& txn) {
        txn.Write(v, &values[v], txn.ReadForUpdate(v, &values[v]) + 1);
      });
    }
    return tm.AggregatedTelemetry().Snapshot();
  };
  const TelemetrySnapshot a = run_once();
  const TelemetrySnapshot b = run_once();
  EXPECT_GT(a.backoff_events, 0u) << "the plan must provoke some retries";
  EXPECT_EQ(a.backoff_events, b.backoff_events);
  EXPECT_EQ(a.backoff_pauses, b.backoff_pauses);
  EXPECT_EQ(a.starvation_escalations, b.starvation_escalations);
  EXPECT_EQ(a.max_txn_aborts, b.max_txn_aborts);
}

// ---------------------------------------------------------------------
// The starvation token pauses batch fusion.

TEST(TuFastStarvationTest, HeldTokenPausesFusion) {
  EmulatedHtm htm;
  constexpr VertexId kVertices = 256;
  {
    TuFastInstrumented tm(htm, kVertices);
    std::vector<TmWord> values(kVertices, 0);
    // Stage a foreign slot holding the token: RunBatch must route every
    // item per-item instead of opening fused regions.
    ASSERT_TRUE(tm.progress_guard().signals().TryAcquireToken(63));
    tm.RunBatch(
        0, 0, kVertices, [](uint64_t) { return uint64_t{1}; },
        [&](auto& txn, uint64_t i) {
          const VertexId v = static_cast<VertexId>(i);
          txn.Write(v, &values[v], txn.Read(v, &values[v]) + 1);
        });
    for (VertexId v = 0; v < kVertices; ++v) EXPECT_EQ(values[v], 1u);
    const TelemetrySnapshot snap = tm.AggregatedTelemetry().Snapshot();
    EXPECT_EQ(snap.fused_regions, 0u)
        << "fusion must pause while the starvation token is held";
    tm.progress_guard().signals().ReleaseToken(63);
  }
  {
    TuFastInstrumented tm(htm, kVertices);
    std::vector<TmWord> values(kVertices, 0);
    tm.RunBatch(
        0, 0, kVertices, [](uint64_t) { return uint64_t{1}; },
        [&](auto& txn, uint64_t i) {
          const VertexId v = static_cast<VertexId>(i);
          txn.Write(v, &values[v], txn.Read(v, &values[v]) + 1);
        });
    for (VertexId v = 0; v < kVertices; ++v) EXPECT_EQ(values[v], 1u);
    const TelemetrySnapshot snap = tm.AggregatedTelemetry().Snapshot();
    EXPECT_GT(snap.fused_regions, 0u)
        << "with the token free the same batch must fuse";
  }
}

// ---------------------------------------------------------------------
// Exception safety: a throwing transaction body must not leak locks.

struct BodyError : std::runtime_error {
  BodyError() : std::runtime_error("transaction body failure") {}
};

template <typename Htm, typename Tm>
void ExpectAllLocksFree(Tm& tm, VertexId vertices) {
  for (VertexId v = 0; v < vertices; ++v) {
    EXPECT_TRUE(LockTable<Htm>::Free(tm.lock_table().LoadWord(v)))
        << "lock word " << v << " leaked past the unwinding body";
  }
}

TEST(ExceptionSafetyTest, TuFastLockModeThrowReleasesLocks) {
  EmulatedHtm htm;
  constexpr VertexId kVertices = 64;
  TuFast tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  const uint64_t big = tm.config().o_hint_threshold + 1;
  EXPECT_THROW(tm.Run(0, big,
                      [&](auto& txn) {
                        // Take exclusive locks on several vertices, then
                        // die mid-body.
                        for (VertexId v = 1; v <= 3; ++v) {
                          txn.Write(v, &values[v],
                                    txn.ReadForUpdate(v, &values[v]) + 1);
                        }
                        throw BodyError();
                      }),
               BodyError);
  ExpectAllLocksFree<EmulatedHtm>(tm, kVertices);
  for (VertexId v = 1; v <= 3; ++v) {
    EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[v]), 0u)
        << "the aborted body's writes must not be visible";
  }
  // The lock set is reusable: the same vertices commit afterwards, from
  // the same worker and from a different one.
  for (const int worker : {0, 1}) {
    const RunOutcome outcome = tm.Run(worker, big, [&](auto& txn) {
      for (VertexId v = 1; v <= 3; ++v) {
        txn.Write(v, &values[v], txn.ReadForUpdate(v, &values[v]) + 1);
      }
    });
    EXPECT_TRUE(outcome.committed);
  }
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[1]), 2u);
  EXPECT_FALSE(tm.progress_guard().signals().AnyStarved());
  EXPECT_FALSE(tm.progress_guard().signals().TokenHeld());
}

TEST(ExceptionSafetyTest, TuFastOptimisticModeThrowReleasesEverything) {
  EmulatedHtm htm;
  constexpr VertexId kVertices = 64;
  TuFast tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  const uint64_t medium = tm.h_hint_threshold() + 1;
  EXPECT_THROW(tm.Run(0, medium,
                      [&](auto& txn) {
                        txn.Write(2, &values[2], txn.Read(2, &values[2]) + 1);
                        throw BodyError();
                      }),
               BodyError);
  ExpectAllLocksFree<EmulatedHtm>(tm, kVertices);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[2]), 0u);
  const RunOutcome outcome = tm.Run(0, medium, [&](auto& txn) {
    txn.Write(2, &values[2], txn.Read(2, &values[2]) + 1);
  });
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[2]), 1u);
}

TEST(ExceptionSafetyTest, TwoPhaseLockingThrowReleasesLocks) {
  EmulatedHtm htm;
  constexpr VertexId kVertices = 64;
  TwoPhaseLocking<EmulatedHtm> tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  EXPECT_THROW(tm.Run(0, 4,
                      [&](auto& txn) {
                        for (VertexId v = 1; v <= 3; ++v) {
                          txn.Write(v, &values[v],
                                    txn.ReadForUpdate(v, &values[v]) + 1);
                        }
                        throw BodyError();
                      }),
               BodyError);
  // 2PL does not expose its lock table; re-acquiring the same exclusive
  // locks from a *different* worker slot is the functional equivalent —
  // it deadlocks/victimizes forever if the first body leaked them.
  for (const int worker : {1, 0}) {
    const RunOutcome outcome = tm.Run(worker, 4, [&](auto& txn) {
      for (VertexId v = 1; v <= 3; ++v) {
        txn.Write(v, &values[v], txn.ReadForUpdate(v, &values[v]) + 1);
      }
    });
    EXPECT_TRUE(outcome.committed);
  }
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[1]), 2u);
  EXPECT_FALSE(tm.progress_guard().signals().AnyStarved());
}

TEST(ExceptionSafetyTest, HsyncFallbackThrowReleasesTheGlobalLock) {
  FaultyHtm htm;
  HsyncHybrid<FaultyHtm> tm(htm, 64);
  std::vector<TmWord> values(64, 0);
  // Force every hardware attempt to abort so Run lands in the global-lock
  // fallback, whose body then throws.
  FailpointPlan::Config config;
  config.Arm(FailSite::kHtmLoad, 1.0, FailAction::kAbortConflict);
  FailpointPlan plan(config);
  {
    FailpointScope scope(plan);
    EXPECT_THROW(tm.Run(0, 1, [&](auto&) { throw BodyError(); }), BodyError);
    // Still under the failpoint plan: the next transaction must reach the
    // fallback again and take the global lock. If the throwing body had
    // leaked it, this acquire would spin forever.
    const RunOutcome outcome = tm.Run(0, 1, [&](auto& txn) {
      txn.Write(5, &values[5], txn.Read(5, &values[5]) + 1);
    });
    EXPECT_TRUE(outcome.committed);
    EXPECT_EQ(outcome.cls, TxnClass::kL);
  }
  EXPECT_EQ(FaultyHtm::NonTxLoad(&values[5]), 1u);
}

TEST(ExceptionSafetyTest, TinyStmThrowRollsBackEncounterTimeLocks) {
  EmulatedHtm htm;
  constexpr VertexId kVertices = 64;
  TinyStm<EmulatedHtm> tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  EXPECT_THROW(tm.Run(0, 4,
                      [&](auto& txn) {
                        // TinySTM takes its write locks at encounter
                        // time, so they are held when the body throws.
                        txn.Write(7, &values[7], 99);
                        txn.Write(8, &values[8], 99);
                        throw BodyError();
                      }),
               BodyError);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[7]), 0u)
      << "undo log must roll the encounter-time write back";
  // Both vertices are writable again from another worker slot.
  const RunOutcome outcome = tm.Run(1, 4, [&](auto& txn) {
    txn.Write(7, &values[7], txn.ReadForUpdate(7, &values[7]) + 1);
    txn.Write(8, &values[8], txn.ReadForUpdate(8, &values[8]) + 1);
  });
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[7]), 1u);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&values[8]), 1u);
}

// ---------------------------------------------------------------------
// Stall watchdog + heartbeat counters.

TEST(StallWatchdogTest, FiresOnceOnTheRetryStormSignature) {
  std::atomic<uint64_t> attempts{0};
  std::atomic<int> fired{0};
  StallWatchdog::Config config;
  config.interval = std::chrono::milliseconds(2);
  config.stall_intervals = 3;
  StallWatchdog watchdog(
      config,
      [&] {
        // Attempts advance on every sample; commits stay frozen — the
        // signature of a livelocked retry storm.
        return StallWatchdog::Sample{attempts.fetch_add(1) + 1, 7};
      },
      [&] { fired.fetch_add(1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!watchdog.stalled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(watchdog.stalled());
  watchdog.Stop();
  watchdog.Stop();  // Idempotent.
  EXPECT_EQ(fired.load(), 1) << "on_stall must fire exactly once";
}

TEST(StallWatchdogTest, StaysQuietWhileCommitsAdvance) {
  std::atomic<uint64_t> beat{0};
  StallWatchdog::Config config;
  config.interval = std::chrono::milliseconds(1);
  config.stall_intervals = 3;
  StallWatchdog watchdog(
      config,
      [&] {
        const uint64_t b = beat.fetch_add(1) + 1;
        return StallWatchdog::Sample{b, b};  // Commits keep pace.
      },
      [] { FAIL() << "no stall should be declared while commits advance"; });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  watchdog.Stop();
  EXPECT_FALSE(watchdog.stalled());
}

TEST(StallWatchdogTest, StaysQuietWhileIdle) {
  StallWatchdog::Config config;
  config.interval = std::chrono::milliseconds(1);
  config.stall_intervals = 3;
  StallWatchdog watchdog(
      config, [] { return StallWatchdog::Sample{12, 5}; },  // All frozen.
      [] { FAIL() << "an idle system is not a stall"; });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  watchdog.Stop();
  EXPECT_FALSE(watchdog.stalled());
}

TEST(HeartbeatTest, TuFastPublishesHeartbeatsTheWatchdogCanSample) {
  EmulatedHtm htm;
  TuFast tm(htm, 64);
  std::vector<TmWord> values(64, 0);
  constexpr uint64_t kTxns = 10;
  for (uint64_t t = 0; t < kTxns; ++t) {
    tm.Run(0, 2, [&](auto& txn) {
      txn.Write(1, &values[1], txn.Read(1, &values[1]) + 1);
    });
  }
  const auto hb = tm.Heartbeats();
  EXPECT_EQ(hb.commits, kTxns);
  EXPECT_GE(hb.attempts, hb.commits)
      << "every commit is preceded by at least one attempt beat";
  // The real wiring: a watchdog sampling the scheduler's own heartbeats
  // sees progress and stays quiet.
  StallWatchdog::Config config;
  config.interval = std::chrono::milliseconds(1);
  config.stall_intervals = 3;
  StallWatchdog watchdog(
      config,
      [&] {
        const auto now = tm.Heartbeats();
        return StallWatchdog::Sample{now.attempts, now.commits};
      },
      [] { FAIL() << "a finished workload must not look like a stall"; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watchdog.Stop();
  EXPECT_FALSE(watchdog.stalled());
}

}  // namespace
}  // namespace tufast
