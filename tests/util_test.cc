// Utility-module tests: AddrMap, LogHistogram, Rng, reporting, thread
// pool / parallel-for / worklists, and the bench-support workloads.

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench_support/datasets.h"
#include "bench_support/micro_workload.h"
#include "bench_support/reporting.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/spin.h"
#include "graph/generators.h"
#include "htm/emulated_htm.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "runtime/worklist.h"
#include "tm/addr_map.h"
#include "tm/tufast.h"

namespace tufast {
namespace {

TEST(AddrMapTest, InsertFindUpdate) {
  AddrMap map(4);
  bool inserted;
  uint32_t* slot = map.FindOrInsert(0x1000, 7, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 7u);
  slot = map.FindOrInsert(0x1000, 9, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 7u);  // Existing payload preserved.
  EXPECT_EQ(*map.Find(0x1000), 7u);
  EXPECT_EQ(map.Find(0x2000), nullptr);
}

TEST(AddrMapTest, GrowsAndKeepsEntries) {
  AddrMap map(4);
  bool inserted;
  for (uintptr_t k = 1; k <= 500; ++k) {
    *map.FindOrInsert(k * 64, static_cast<uint32_t>(k), &inserted) =
        static_cast<uint32_t>(k);
  }
  EXPECT_EQ(map.size(), 500u);
  for (uintptr_t k = 1; k <= 500; ++k) {
    ASSERT_NE(map.Find(k * 64), nullptr);
    EXPECT_EQ(*map.Find(k * 64), static_cast<uint32_t>(k));
  }
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(64), nullptr);
}

TEST(LogHistogramTest, BinsQuantilesAndMerge) {
  LogHistogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1003.0 / 4);
  EXPECT_LE(h.ApproxQuantile(0.5), 2u);

  LogHistogram other;
  other.Add(1 << 20);
  h.Merge(other);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max(), 1u << 20);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(RngTest, DeterministicAndBounded) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng r(3);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (r.NextZipf(100000, 0.8) < 100) ++low;
  }
  // Ranks 0..99 out of 100000 must receive far more than their uniform
  // share (0.1%).
  EXPECT_GT(low, total / 50);
}

TEST(ReportTableTest, FormatsAlignedMarkdown) {
  ReportTable table({"name", "value"});
  table.AddRow({"alpha", ReportTable::Num(3.14159)});
  table.AddRow({"beta", ReportTable::Int(42)});
  ::testing::internal::CaptureStdout();
  table.Print("title");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("### title"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(ThreadPoolTest, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(5);
  std::vector<std::atomic<int>> counts(5);
  for (int round = 0; round < 10; ++round) {
    pool.RunOnAll([&](int worker) { ++counts[worker]; });
  }
  for (const auto& c : counts) EXPECT_EQ(c.load(), 10);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 100000;
  std::vector<std::atomic<uint8_t>> seen(kN);
  ParallelFor(pool, 0, kN, 64,
              [&](int /*worker*/, uint64_t i) { ++seen[i]; });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunkedCoversRangeEndingAtUint64Max) {
  // Regression: `lo + grain` and the claim cursor itself must not wrap
  // when the range ends at UINT64_MAX — the fetch_add fast path would
  // silently skip the tail chunk and hand out wrapped indices.
  ThreadPool pool(4);
  constexpr uint64_t kSpan = 50000;
  constexpr uint64_t kBegin = UINT64_MAX - kSpan;
  std::vector<std::atomic<uint8_t>> seen(kSpan);
  ParallelForChunked(pool, kBegin, UINT64_MAX, 64,
                     [&](int /*worker*/, uint64_t lo, uint64_t hi) {
                       ASSERT_LT(lo, hi);  // A wrapped chunk has hi < lo.
                       for (uint64_t i = lo; i < hi; ++i) {
                         ++seen[i - kBegin];
                       }
                     });
  for (uint64_t i = 0; i < kSpan; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index offset " << i;
  }
}

TEST(ParallelForTest, ChunkedHandlesGrainLargerThanBoundaryRange) {
  // Huge grain near the top of the index space: a single clamped chunk
  // must cover the whole range exactly once.
  ThreadPool pool(3);
  constexpr uint64_t kSpan = 1000;
  constexpr uint64_t kBegin = UINT64_MAX - kSpan;
  std::atomic<uint64_t> covered{0};
  std::atomic<int> chunks{0};
  ParallelForChunked(pool, kBegin, UINT64_MAX, UINT64_MAX,
                     [&](int /*worker*/, uint64_t lo, uint64_t hi) {
                       ++chunks;
                       covered += hi - lo;
                       EXPECT_EQ(lo, kBegin);
                       EXPECT_EQ(hi, UINT64_MAX);
                     });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), kSpan);
}

TEST(ParallelForTest, ChunkedFastPathBoundaryIsExact) {
  // The overshoot-safety guard keeps the fetch_add fast path off ranges
  // where a worker's final post-end claim could wrap the cursor; sweep
  // spans around (threads + 1) * grain below UINT64_MAX to cross the
  // fast/CAS boundary and verify exactly-once coverage on both sides.
  ThreadPool pool(4);
  constexpr uint64_t kGrain = 64;
  for (const uint64_t margin :
       {kGrain * 2, kGrain * 5, kGrain * 5 + 1, kGrain * 8}) {
    const uint64_t end = UINT64_MAX - margin;
    constexpr uint64_t kSpan = 4096;
    const uint64_t begin = end - kSpan;
    std::vector<std::atomic<uint8_t>> seen(kSpan);
    ParallelForChunked(pool, begin, end, kGrain,
                       [&](int /*worker*/, uint64_t lo, uint64_t hi) {
                         ASSERT_LT(lo, hi);
                         for (uint64_t i = lo; i < hi; ++i) {
                           ++seen[i - begin];
                         }
                       });
    for (uint64_t i = 0; i < kSpan; ++i) {
      ASSERT_EQ(seen[i].load(), 1)
          << "margin " << margin << " index offset " << i;
    }
  }
}

TEST(WorklistTest, BatchedDrainProcessesEveryItemOnce) {
  // DrainWorklistBatched must preserve the register-before-pop protocol:
  // dynamic pushes from inside a batch callback keep the drain alive and
  // every item is delivered exactly once across workers.
  ThreadPool pool(4);
  ConcurrentQueue<int> queue;
  queue.Push(20);  // Same bounded fan-out shape as the per-item test.
  std::atomic<int> active{0};
  std::atomic<uint64_t> processed{0};
  std::atomic<uint64_t> batches{0};
  pool.RunOnAll([&](int worker) {
    DrainWorklistBatched(queue, worker, active, /*max_batch=*/8,
                         [&](int /*w*/, const std::vector<int>& batch) {
                           ASSERT_FALSE(batch.empty());
                           ASSERT_LE(batch.size(), 8u);
                           ++batches;
                           for (const int n : batch) {
                             ++processed;
                             if (n > 1) {
                               queue.Push(n - 1);
                               queue.Push(n - 2);
                             }
                           }
                         });
  });
  EXPECT_TRUE(queue.Empty());
  EXPECT_GT(processed.load(), 1000u);
  EXPECT_LT(batches.load(), processed.load());  // Batching actually kicked in.
}

TEST(WorklistTest, DrainTerminatesWithDynamicPushes) {
  ThreadPool pool(4);
  ConcurrentQueue<int> queue;
  queue.Push(20);  // Each item n pushes n-1 and n-2 (bounded fan-out).
  std::atomic<int> active{0};
  std::atomic<uint64_t> processed{0};
  pool.RunOnAll([&](int worker) {
    DrainWorklist(queue, worker, active, [&](int /*w*/, int n) {
      ++processed;
      if (n > 1) {
        queue.Push(n - 1);
        queue.Push(n - 2);
      }
    });
  });
  EXPECT_TRUE(queue.Empty());
  EXPECT_GT(processed.load(), 1000u);  // Fibonacci-ish expansion of 20.
}

TEST(PriorityQueueTest, PopsInPriorityOrder) {
  ConcurrentPriorityQueue<int, uint64_t> queue;
  queue.Push(30, 3);
  queue.Push(10, 1);
  queue.Push(20, 2);
  EXPECT_EQ(queue.TryPop().value(), 10);
  EXPECT_EQ(queue.TryPop().value(), 20);
  EXPECT_EQ(queue.TryPop().value(), 30);
  EXPECT_FALSE(queue.TryPop().has_value());
}

// Instrumented payload: TryPop must move the element out, never copy.
// (priority_queue::top() returns a const reference; a std::move through
// it silently degrades to a copy, which this counter catches.)
struct CopyCounted {
  static inline int copies = 0;
  int value = 0;
  CopyCounted() = default;
  explicit CopyCounted(int v) : value(v) {}
  CopyCounted(const CopyCounted& o) : value(o.value) { ++copies; }
  CopyCounted& operator=(const CopyCounted& o) {
    value = o.value;
    ++copies;
    return *this;
  }
  CopyCounted(CopyCounted&& o) noexcept : value(o.value) {}
  CopyCounted& operator=(CopyCounted&& o) noexcept {
    value = o.value;
    return *this;
  }
};

TEST(PriorityQueueTest, TryPopMovesInsteadOfCopying) {
  ConcurrentPriorityQueue<CopyCounted, uint64_t> queue;
  CopyCounted::copies = 0;
  for (int i = 0; i < 32; ++i) queue.Push(CopyCounted(i), 31 - i);
  for (int i = 31; i >= 0; --i) {
    auto item = queue.TryPop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->value, i);
  }
  // Pushes and heap sifts move; a copy anywhere (one per pop, pre-fix)
  // is a regression.
  EXPECT_EQ(CopyCounted::copies, 0);
}

TEST(DatasetsTest, SpecsMatchPaperRatios) {
  const auto specs = BenchDatasets(0.1);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_NEAR(specs[0].avg_degree, 27.53, 0.01);  // friendster
  EXPECT_NEAR(specs[3].avg_degree, 35.31, 0.01);  // uk-2007-05
  for (const auto& spec : specs) {
    const Graph g = GenerateDataset(spec);
    EXPECT_NEAR(g.AverageDegree(), spec.avg_degree, spec.avg_degree * 0.05);
  }
}

TEST(MicroWorkloadTest, CountsTransactionsAndOps) {
  const Graph graph = GenerateUniformDegree(256, 4, 5);
  EmulatedHtm htm;
  TuFast tm(htm, graph.NumVertices());
  ThreadPool pool(2);
  std::vector<TmWord> values(graph.NumVertices(), 0);
  MicroWorkloadOptions options;
  options.transactions_per_thread = 100;
  const auto result = RunMicroWorkload(tm, pool, graph, values, options);
  EXPECT_EQ(result.transactions, 200u);
  // RM over degree-4 vertices: 1 + 4 reads + 1 write = 6 ops each.
  EXPECT_EQ(result.operations, 200u * 6);
  EXPECT_GT(result.TxnPerSec(), 0.0);
}

}  // namespace
}  // namespace tufast
