// Serving front-end tests (DESIGN.md "Serving front end"):
//   - LatencyHistogram: bucket-index math pinned, quantiles checked
//     against a sorted-vector reference within the documented 1/32
//     relative-error bound, merge associativity/commutativity, the
//     saturation bucket, and concurrent Record from many threads.
//   - AdmissionController: the counting-based SLO state machine (trip on
//     in-window p99 > SLO, hysteretic recovery), the queue-delay and
//     breaker trip signals, and the disposition-conservation counters —
//     including the readmit-no-double-count regression (a deferred
//     request that is re-admitted must move columns, not be re-offered).
//   - RequestQueue: bounded FIFO semantics and MPMC exactly-once
//     delivery.
//   - LoadGenerator: monotone Poisson arrival clock with the right mean,
//     tenant mix, and Zipf skew.
//   - ServeEngine end-to-end: every offered request gets exactly one
//     disposition, Drain() executes exactly the admitted set, the
//     scheduler-side queue-delay plumbing (satellite: RunOutcome/stats)
//     agrees with the engine's own counts, and admission control sheds
//     bulk traffic to protect the interactive tail under overload.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/dynamic/dynamic_graph.h"
#include "htm/emulated_htm.h"
#include "serving/admission.h"
#include "serving/latency_histogram.h"
#include "serving/load_generator.h"
#include "serving/request_queue.h"
#include "serving/server.h"
#include "tm/tufast.h"

namespace tufast {
namespace serving {
namespace {

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

TEST(LatencyHistogramTest, ExactBelowSubBucketRange) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketMid(static_cast<int>(v)), v);
    h.Record(v);
  }
  EXPECT_EQ(h.Count(), LatencyHistogram::kSubBuckets);
  EXPECT_EQ(h.Max(), LatencyHistogram::kSubBuckets - 1);
  // With one sample per exact bucket the quantile walk is exact.
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), LatencyHistogram::kSubBuckets - 1);
}

TEST(LatencyHistogramTest, BucketIndexMonotoneInRangeAndMidRoundTrips) {
  // Octave boundaries and their neighbors across the whole range.
  std::vector<uint64_t> values = {0};
  for (int exp = 0; exp <= LatencyHistogram::kMaxExponent + 1; ++exp) {
    const uint64_t base = uint64_t{1} << exp;
    values.push_back(base - 1);
    values.push_back(base);
    values.push_back(base + 1);
  }
  std::sort(values.begin(), values.end());
  int prev = -1;
  for (const uint64_t v : values) {
    const int idx = LatencyHistogram::BucketIndex(v);
    ASSERT_GE(idx, 0) << "v=" << v;
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets) << "v=" << v;
    ASSERT_GE(idx, prev) << "v=" << v;  // monotone in v
    prev = idx;
  }
  // Every bucket's representative value must map back to that bucket
  // (otherwise Quantile would report values from a different bucket).
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::BucketMid(i)),
              i)
        << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, QuantileMatchesSortedReference) {
  LatencyHistogram h;
  std::vector<uint64_t> ref;
  Rng rng(1234);
  // Log-uniform spread across ~9 decades so every octave band gets hits.
  for (int i = 0; i < 20000; ++i) {
    const int exp = static_cast<int>(rng.NextBounded(30));
    const uint64_t v = (uint64_t{1} << exp) + rng.NextBounded(1ull << exp);
    ref.push_back(v);
    h.Record(v);
  }
  std::sort(ref.begin(), ref.end());
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(ref.size()));
    if (rank >= ref.size()) rank = ref.size() - 1;
    const double exact = static_cast<double>(ref[rank]);
    const double approx = static_cast<double>(h.Quantile(q));
    // Documented bound: one sub-bucket of relative error (1/32), plus a
    // half-bucket because the midpoint represents the bucket.
    EXPECT_NEAR(approx, exact, exact * (1.5 / 32) + 1.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, SaturationBucket) {
  LatencyHistogram h;
  const uint64_t sat_lo = uint64_t{1} << (LatencyHistogram::kMaxExponent + 1);
  h.Record(100);
  h.Record(sat_lo);            // first saturating value
  h.Record(~uint64_t{0});      // and the worst case: no overflow, no OOB
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Saturated(), 2u);
  EXPECT_EQ(h.Max(), ~uint64_t{0});
  EXPECT_EQ(LatencyHistogram::BucketIndex(sat_lo),
            LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
  // Saturated quantiles report the observed max, not a fake midpoint.
  EXPECT_EQ(h.Quantile(1.0), ~uint64_t{0});
  EXPECT_EQ(h.Quantile(0.0), LatencyHistogram::BucketMid(
                                 LatencyHistogram::BucketIndex(100)));
}

void FillDeterministic(LatencyHistogram* h, uint64_t seed, int n) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    h->Record(rng.NextBounded(1ull << 40));
  }
}

void ExpectSameDistribution(const LatencyHistogram& a,
                            const LatencyHistogram& b) {
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.Sum(), b.Sum());
  EXPECT_EQ(a.Max(), b.Max());
  EXPECT_EQ(a.Saturated(), b.Saturated());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    ASSERT_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeAssociativeAndCommutative) {
  LatencyHistogram a, b, c;
  FillDeterministic(&a, 1, 3000);
  FillDeterministic(&b, 2, 5000);
  FillDeterministic(&c, 3, 2000);

  // (A + B) vs (B + A).
  LatencyHistogram ab, ba;
  ab.Merge(a);
  ab.Merge(b);
  ba.Merge(b);
  ba.Merge(a);
  ExpectSameDistribution(ab, ba);

  // ((A + B) + C) vs (A + (B + C)).
  LatencyHistogram ab_c, bc, a_bc;
  ab_c.Merge(ab);
  ab_c.Merge(c);
  bc.Merge(b);
  bc.Merge(c);
  a_bc.Merge(a);
  a_bc.Merge(bc);
  ExpectSameDistribution(ab_c, a_bc);
  EXPECT_EQ(ab_c.Count(), 10000u);
}

TEST(LatencyHistogramTest, ConcurrentRecordMatchesSerialReference) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  LatencyHistogram shared;
  LatencyHistogram serial;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&shared, t] { FillDeterministic(&shared, 100 + t, kPerThread); });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    FillDeterministic(&serial, 100 + t, kPerThread);
  }
  // Same multiset of samples -> identical buckets, regardless of the
  // interleaving (every Record is a single atomic add per counter).
  ExpectSameDistribution(shared, serial);
  EXPECT_EQ(shared.Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------

AdmissionConfig TestAdmissionConfig() {
  AdmissionConfig cfg;
  cfg.slo_p99_ns = 1'000'000;  // 1 ms
  cfg.window = 100;
  cfg.recover_percent = 50;
  cfg.min_shed_windows = 2;
  return cfg;
}

TEST(AdmissionTest, TripsWhenWindowP99ExceedsSlo) {
  AdmissionController ac(TestAdmissionConfig());
  EXPECT_EQ(ac.state(), AdmissionController::State::kOpen);
  // 2 misses in a 100-completion window: p99 > SLO (2% > 1%).
  for (int i = 0; i < 98; ++i) ac.RecordInteractiveLatency(100'000);
  ac.RecordInteractiveLatency(5'000'000);
  EXPECT_EQ(ac.state(), AdmissionController::State::kOpen);  // mid-window
  ac.RecordInteractiveLatency(5'000'000);
  EXPECT_EQ(ac.state(), AdmissionController::State::kShedding);
  EXPECT_EQ(ac.trips(), 1u);
}

TEST(AdmissionTest, DoesNotTripAtExactlyOnePercent) {
  AdmissionController ac(TestAdmissionConfig());
  // Exactly 1 miss per 100: p99 == SLO boundary, not over it.
  for (int round = 0; round < 5; ++round) {
    ac.RecordInteractiveLatency(5'000'000);
    for (int i = 0; i < 99; ++i) ac.RecordInteractiveLatency(100'000);
  }
  EXPECT_EQ(ac.state(), AdmissionController::State::kOpen);
  EXPECT_EQ(ac.trips(), 0u);
}

TEST(AdmissionTest, InteractiveAlwaysAdmittedWhileShedding) {
  AdmissionController ac(TestAdmissionConfig());
  ac.NoteBreakerOpen();
  ASSERT_EQ(ac.state(), AdmissionController::State::kShedding);
  EXPECT_TRUE(ac.ShouldAdmit(Tenant::kInteractive));
  EXPECT_FALSE(ac.ShouldAdmit(Tenant::kBulk));
}

TEST(AdmissionTest, RecoveryRequiresHysteresis) {
  AdmissionController ac(TestAdmissionConfig());
  ac.NoteQueueDelay(10'000'000);  // backlog trip
  ASSERT_EQ(ac.state(), AdmissionController::State::kShedding);
  // One full fast window: still shedding (min_shed_windows = 2).
  for (int i = 0; i < 100; ++i) ac.RecordInteractiveLatency(100'000);
  EXPECT_EQ(ac.state(), AdmissionController::State::kShedding);
  // Second fast window (all under recover_percent of the SLO): recover.
  for (int i = 0; i < 100; ++i) ac.RecordInteractiveLatency(100'000);
  EXPECT_EQ(ac.state(), AdmissionController::State::kOpen);
  EXPECT_EQ(ac.recoveries(), 1u);
  // A window at 60% of the SLO is under the SLO but over the recovery
  // band: after a fresh trip it must NOT recover (flap suppression).
  ac.NoteQueueDelay(10'000'000);
  ASSERT_EQ(ac.state(), AdmissionController::State::kShedding);
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 100; ++i) ac.RecordInteractiveLatency(600'000);
  }
  EXPECT_EQ(ac.state(), AdmissionController::State::kShedding);
}

TEST(AdmissionTest, TripCausesAreCounted) {
  AdmissionController ac(TestAdmissionConfig());
  ac.NoteQueueDelay(400'000);  // below slo/2 = 500us: no trip
  EXPECT_EQ(ac.trips(), 0u);
  ac.NoteQueueDelay(600'000);  // above: trip
  EXPECT_EQ(ac.trips(), 1u);
  EXPECT_EQ(ac.queue_delay_trips(), 1u);
  // Already shedding: further signals must not inflate the counters.
  ac.NoteQueueDelay(600'000);
  ac.NoteBreakerOpen();
  EXPECT_EQ(ac.trips(), 1u);
  EXPECT_EQ(ac.breaker_trips(), 0u);
}

TEST(AdmissionTest, DisabledControllerNeverSheds) {
  AdmissionConfig cfg = TestAdmissionConfig();
  cfg.enabled = false;
  AdmissionController ac(cfg);
  ac.NoteBreakerOpen();
  ac.NoteQueueDelay(10'000'000);
  for (int i = 0; i < 300; ++i) ac.RecordInteractiveLatency(50'000'000);
  EXPECT_EQ(ac.state(), AdmissionController::State::kOpen);
  EXPECT_TRUE(ac.ShouldAdmit(Tenant::kBulk));
  EXPECT_EQ(ac.trips(), 0u);
}

TEST(AdmissionTest, ConservationHoldsAcrossDispositions) {
  AdmissionController ac(TestAdmissionConfig());
  for (int i = 0; i < 10; ++i) {
    ac.CountOffered(Tenant::kInteractive);
    ac.CountAdmitted(Tenant::kInteractive);
  }
  for (int i = 0; i < 5; ++i) {
    ac.CountOffered(Tenant::kBulk);
    ac.CountDeferred(Tenant::kBulk);
  }
  for (int i = 0; i < 3; ++i) {
    ac.CountOffered(Tenant::kBulk);
    ac.CountShed(Tenant::kBulk);
  }
  EXPECT_TRUE(ac.Conserved());
  EXPECT_EQ(ac.TotalOffered(), 18u);
}

// Regression (satellite: no stat double-counting on re-admission): a
// deferred request that is later re-admitted moves from the deferred
// column to the admitted column; offered stays fixed and conservation
// holds at every step.
TEST(AdmissionTest, ReadmitMovesColumnsWithoutDoubleCounting) {
  AdmissionController ac(TestAdmissionConfig());
  for (int i = 0; i < 4; ++i) {
    ac.CountOffered(Tenant::kBulk);
    ac.CountDeferred(Tenant::kBulk);
  }
  ASSERT_TRUE(ac.Conserved());
  ac.CountReadmitted(Tenant::kBulk);
  ac.CountReadmitted(Tenant::kBulk);
  EXPECT_EQ(ac.Offered(Tenant::kBulk), 4u);   // NOT re-offered
  EXPECT_EQ(ac.Deferred(Tenant::kBulk), 2u);
  EXPECT_EQ(ac.Admitted(Tenant::kBulk), 2u);
  EXPECT_EQ(ac.Readmitted(Tenant::kBulk), 2u);
  EXPECT_TRUE(ac.Conserved());
}

// ---------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------

Request MakeRequest(uint64_t seq) {
  Request r;
  r.tenant = Tenant::kInteractive;
  r.op = Op::kPointRead;
  r.key = static_cast<uint32_t>(seq);
  r.seq = seq;
  r.arrival_ns = seq;
  return r;
}

TEST(RequestQueueTest, BoundedFifo) {
  RequestQueue q(8);
  uint64_t pushed = 0;
  while (q.TryPush(MakeRequest(pushed))) ++pushed;
  EXPECT_EQ(pushed, q.capacity());
  EXPECT_GE(q.MaxDepth(), pushed);  // watermark saw the full ring
  Request r;
  for (uint64_t i = 0; i < pushed; ++i) {
    ASSERT_TRUE(q.TryPop(&r));
    EXPECT_EQ(r.seq, i);  // FIFO
  }
  EXPECT_FALSE(q.TryPop(&r));
  EXPECT_TRUE(q.Empty());
}

TEST(RequestQueueTest, MpmcExactlyOnce) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 20000;
  RequestQueue q(64);
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> seq_sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t seq = static_cast<uint64_t>(p) * kPerProducer + i;
        while (!q.TryPush(MakeRequest(seq))) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      Request r;
      while (popped.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (q.TryPop(&r)) {
          seq_sum.fetch_add(r.seq, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(seq_sum.load(), n * (n - 1) / 2);  // each seq exactly once
  EXPECT_TRUE(q.Empty());
}

// ---------------------------------------------------------------------
// LoadGenerator
// ---------------------------------------------------------------------

TEST(LoadGeneratorTest, PoissonClockIsMonotoneWithRightMean) {
  LoadConfig cfg;
  cfg.rate = 1e6;  // mean inter-arrival 1000 ns
  cfg.num_keys = 4096;
  LoadGenerator gen(cfg, /*seed=*/42);
  uint64_t prev = 0;
  uint64_t interactive = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const Request r = gen.NextRequest();
    ASSERT_GT(r.arrival_ns, prev);  // strictly monotone virtual clock
    prev = r.arrival_ns;
    ASSERT_LT(r.key, cfg.num_keys);
    if (r.tenant == Tenant::kInteractive) ++interactive;
    EXPECT_EQ(r.seq, static_cast<uint64_t>(i));
  }
  const double mean_ns = static_cast<double>(prev) / kN;
  EXPECT_NEAR(mean_ns, 1000.0, 100.0);  // within 10% of 1/rate
  EXPECT_NEAR(static_cast<double>(interactive) / kN, 0.80, 0.02);
}

TEST(LoadGeneratorTest, ZipfSkewConcentratesOnHotKeys) {
  LoadConfig skewed;
  skewed.zipf_alpha = 1.2;
  skewed.num_keys = 1024;
  LoadGenerator gen(skewed, /*seed=*/7);
  std::vector<uint64_t> hits(skewed.num_keys, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ++hits[gen.NextRequest().key];
  const uint64_t top = *std::max_element(hits.begin(), hits.end());
  // Uniform share would be ~49 hits; Zipf(1.2) gives the hottest key an
  // order of magnitude more.
  EXPECT_GT(top, static_cast<uint64_t>(10 * kN / skewed.num_keys));
}

// ---------------------------------------------------------------------
// ServeEngine end-to-end
// ---------------------------------------------------------------------

using Scheduler = TuFastScheduler<EmulatedHtm>;
using Engine = ServeEngine<Scheduler>;

constexpr VertexId kVertices = 128;

std::unique_ptr<DynamicGraph> MakeRingGraph(Scheduler& tm) {
  auto dyn = std::make_unique<DynamicGraph>(kVertices);
  for (VertexId u = 0; u < kVertices; ++u) dyn->AddVertex(tm, 0);
  for (VertexId u = 0; u < kVertices; ++u) {
    dyn->InsertEdge(tm, 0, u, (u + 1) % kVertices, static_cast<uint32_t>(u));
  }
  return dyn;
}

struct EngineRunResult {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t deferred = 0;
  uint64_t hist_count = 0;
  uint64_t interactive_p99_ns = 0;
};

/// Offer `requests` requests, drain, and roll up the disposition and
/// histogram counters. Unpaced by default (the virtual arrival clock
/// runs at `rate`, so a busy engine accumulates "backlog" latency);
/// `paced` spins each offer out to its scheduled arrival so the
/// admission controller sees the overload while the stream is still
/// arriving — the open-loop shape the SLO-protection test needs.
EngineRunResult RunEngine(Scheduler& tm, DynamicGraph& dyn,
                          const Engine::Config& ec, uint64_t requests,
                          uint64_t seed, bool paced = false,
                          double rate = 1e6) {
  LoadConfig lc;
  lc.rate = rate;
  lc.num_keys = kVertices;
  lc.interactive_percent = 60;
  LoadGenerator gen(lc, seed);
  Engine engine(tm, dyn, ec);
  engine.Start();
  for (uint64_t i = 0; i < requests; ++i) {
    const Request r = gen.NextRequest();
    if (paced) {
      while (engine.NowNs() < r.arrival_ns) std::this_thread::yield();
    }
    engine.Offer(r);
    if ((i & 0x1f) == 0) engine.TryReadmit(4);
  }
  engine.Drain();

  EngineRunResult res;
  const AdmissionController& ac = engine.admission();
  for (int t = 0; t < kNumTenants; ++t) {
    const Tenant tenant = static_cast<Tenant>(t);
    res.offered += ac.Offered(tenant);
    res.admitted += ac.Admitted(tenant);
    res.shed += ac.Shed(tenant);
    res.deferred += ac.Deferred(tenant);
    for (int op = 0; op < kNumOps; ++op) {
      res.hist_count += engine.Latency(tenant, static_cast<Op>(op)).Count();
    }
  }
  LatencyHistogram inter;
  engine.MergeTenantLatency(Tenant::kInteractive, &inter);
  res.interactive_p99_ns = inter.Quantile(0.99);

  // The invariants every run must satisfy, regardless of load shape:
  EXPECT_TRUE(ac.Conserved());
  EXPECT_EQ(res.offered, requests);
  EXPECT_EQ(engine.ExecutedTotal(), res.admitted);
  EXPECT_EQ(res.hist_count, engine.ExecutedTotal());
  // Satellite: the scheduler's per-worker queue-delay stats must agree
  // with the engine exactly — one NoteQueueDelay per executed request,
  // no side channel, no double-counting across re-admissions.
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.serve_requests, engine.ExecutedTotal());
  EXPECT_GE(stats.serve_max_queue_delay_ns, engine.MaxQueueDelayNs());
  return res;
}

TEST(ServeEngineTest, ExecutesAdmittedAndConservesDispositions) {
  EmulatedHtm htm;
  Scheduler tm(htm, kVertices, {});
  auto dyn = MakeRingGraph(tm);
  Engine::Config ec;
  ec.num_workers = 4;
  ec.queue_capacity = 256;
  ec.defer_capacity = 1024;
  ec.admission.slo_p99_ns = 1'000'000;
  const EngineRunResult res = RunEngine(tm, *dyn, ec, /*requests=*/4000,
                                        /*seed=*/11);
  EXPECT_GT(res.admitted, 0u);
}

TEST(ServeEngineTest, QueueDelayPlumbingSurvivesReadmission) {
  // Tiny run queue + generous defer queue: many bulk requests bounce,
  // park, and re-admit. serve_requests must still equal executed exactly
  // (a double-counted readmission would show up here).
  EmulatedHtm htm;
  Scheduler tm(htm, kVertices, {});
  auto dyn = MakeRingGraph(tm);
  Engine::Config ec;
  ec.num_workers = 2;
  ec.queue_capacity = 16;
  ec.defer_capacity = 2048;
  ec.admission.slo_p99_ns = 500'000;
  ec.admission.window = 64;
  (void)RunEngine(tm, *dyn, ec, /*requests=*/4000, /*seed=*/13);
  // All assertions live in RunEngine; reaching here means they held
  // under heavy bounce/readmit traffic.
}

TEST(ServeEngineTest, AdmissionShedsBulkToProtectInteractiveTail) {
  // Overload: 2 workers against an offered stream whose bulk tier is
  // dominated by 512-vertex scans. The run queue is big enough that the
  // admission-off run admits EVERYTHING — its interactive tail then
  // honestly pays for the whole bulk backlog (no survivorship bias from
  // queue-full sheds). The admission-on run trips on queue delay, parks
  // bulk, and must come out with a better interactive p99. Timing-
  // sensitive, so retry across seeds and require one clear win — the
  // invariant checks inside RunEngine are exact on every attempt.
  bool improved = false;
  for (uint64_t attempt = 0; attempt < 3 && !improved; ++attempt) {
    const uint64_t seed = 17 + attempt;
    EngineRunResult off, on;
    {
      EmulatedHtm htm;
      Scheduler tm(htm, kVertices, {});
      auto dyn = MakeRingGraph(tm);
      Engine::Config ec;
      ec.num_workers = 2;
      ec.queue_capacity = 8192;  // >= requests: nothing bounces
      ec.defer_capacity = 8192;
      ec.admission.enabled = false;
      off = RunEngine(tm, *dyn, ec, /*requests=*/6000, seed,
                      /*paced=*/true, /*rate=*/2e5);
      EXPECT_EQ(off.admitted, off.offered);  // the honest-backlog setup
    }
    {
      EmulatedHtm htm;
      Scheduler tm(htm, kVertices, {});
      auto dyn = MakeRingGraph(tm);
      Engine::Config ec;
      ec.num_workers = 2;
      ec.queue_capacity = 8192;
      ec.defer_capacity = 8192;
      ec.admission.enabled = true;
      ec.admission.slo_p99_ns = 200'000;
      ec.admission.window = 64;
      on = RunEngine(tm, *dyn, ec, /*requests=*/6000, seed,
                     /*paced=*/true, /*rate=*/2e5);
    }
    // The controller must actually engage under this load...
    if (on.shed + on.deferred == 0) continue;
    // ...and the protected tail must beat the unprotected one.
    improved = on.interactive_p99_ns < off.interactive_p99_ns;
  }
  EXPECT_TRUE(improved)
      << "admission-on interactive p99 never improved on admission-off "
         "across 3 seeds";
}

}  // namespace
}  // namespace serving
}  // namespace tufast
