// Lock substrate tests: lock-table word semantics, lock-manager policies
// (detection / prevention / timeout), upgrade deadlocks, and the
// waits-for graph itself.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"
#include "sync/deadlock_graph.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"

namespace tufast {
namespace {

class LockTableTest : public ::testing::Test {
 protected:
  EmulatedHtm htm_;
  LockTable<EmulatedHtm> table_{htm_, 64};
};

TEST_F(LockTableTest, SharedLocksCompose) {
  EXPECT_TRUE(table_.TryLockShared(3));
  EXPECT_TRUE(table_.TryLockShared(3));
  EXPECT_FALSE(table_.TryLockExclusive(3));
  table_.UnlockShared(3);
  EXPECT_FALSE(table_.TryLockExclusive(3));  // One shared holder left.
  table_.UnlockShared(3);
  EXPECT_TRUE(table_.TryLockExclusive(3));
  table_.UnlockExclusive(3);
}

TEST_F(LockTableTest, ExclusiveBlocksEverything) {
  EXPECT_TRUE(table_.TryLockExclusive(7));
  EXPECT_FALSE(table_.TryLockShared(7));
  EXPECT_FALSE(table_.TryLockExclusive(7));
  table_.UnlockExclusive(7);
  EXPECT_TRUE(table_.TryLockShared(7));
  table_.UnlockShared(7);
}

TEST_F(LockTableTest, UpgradeRequiresSoleHolder) {
  ASSERT_TRUE(table_.TryLockShared(9));
  ASSERT_TRUE(table_.TryLockShared(9));
  EXPECT_FALSE(table_.TryUpgrade(9));  // Two holders.
  table_.UnlockShared(9);
  EXPECT_TRUE(table_.TryUpgrade(9));  // Sole holder.
  table_.UnlockExclusive(9);
}

TEST_F(LockTableTest, WordPredicatesMatchState) {
  EXPECT_TRUE(LockTable<EmulatedHtm>::Free(table_.LoadWord(0)));
  table_.TryLockShared(0);
  EXPECT_TRUE(LockTable<EmulatedHtm>::SharedCompatible(table_.LoadWord(0)));
  EXPECT_FALSE(LockTable<EmulatedHtm>::Free(table_.LoadWord(0)));
  table_.UnlockShared(0);
  table_.TryLockExclusive(0);
  EXPECT_FALSE(LockTable<EmulatedHtm>::SharedCompatible(table_.LoadWord(0)));
  table_.UnlockExclusive(0);
}

TEST(DeadlockGraphTest, DetectsTwoPartyCycle) {
  DeadlockGraph graph;
  graph.AddHolder(/*v=*/1, /*slot=*/0, /*exclusive=*/true);
  graph.AddHolder(/*v=*/2, /*slot=*/1, /*exclusive=*/true);
  EXPECT_FALSE(graph.SetWaitingAndCheck(/*slot=*/0, /*v=*/2));
  // Slot 1 waiting for vertex 1 (held by 0, which waits for 2, held by
  // 1) closes the cycle.
  EXPECT_TRUE(graph.SetWaitingAndCheck(/*slot=*/1, /*v=*/1));
}

TEST(DeadlockGraphTest, DetectsThreePartyCycle) {
  DeadlockGraph graph;
  graph.AddHolder(1, 0, true);
  graph.AddHolder(2, 1, true);
  graph.AddHolder(3, 2, true);
  EXPECT_FALSE(graph.SetWaitingAndCheck(0, 2));
  EXPECT_FALSE(graph.SetWaitingAndCheck(1, 3));
  EXPECT_TRUE(graph.SetWaitingAndCheck(2, 1));
}

TEST(DeadlockGraphTest, NoFalsePositiveOnChains) {
  DeadlockGraph graph;
  graph.AddHolder(1, 0, true);
  graph.AddHolder(2, 1, true);
  EXPECT_FALSE(graph.SetWaitingAndCheck(2, 1));  // 2 -> 0: no cycle.
  EXPECT_FALSE(graph.SetWaitingAndCheck(1, 1));  // 1 -> 0 too: no cycle.
  graph.ClearWaiting(1);
  graph.ClearWaiting(2);
  EXPECT_EQ(graph.HolderEntriesForTest(), 2u);
}

TEST(DeadlockGraphTest, UpgradeCycleSkipsSelfEdge) {
  DeadlockGraph graph;
  // Both hold 5 shared; both want to upgrade.
  graph.AddHolder(5, 0, false);
  graph.AddHolder(5, 1, false);
  EXPECT_FALSE(graph.SetWaitingAndCheck(0, 5));  // Waits only on slot 1.
  EXPECT_TRUE(graph.SetWaitingAndCheck(1, 5));   // Closes the cycle.
}

TEST(LockManagerTest, UpgradeDeadlockResolvedByDetection) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, DeadlockPolicy::kDetection);
  ASSERT_TRUE(manager.AcquireShared(0, 1));
  ASSERT_TRUE(manager.AcquireShared(1, 1));
  // Slot 1 upgrades in a second thread (it will win once slot 0 gives
  // up); slot 0's upgrade attempt must be chosen as the victim or
  // succeed after 1 completes — no hang either way.
  std::thread other([&] {
    if (manager.Upgrade(1, 1)) {
      manager.ReleaseExclusive(1, 1);
    } else {
      manager.ReleaseShared(1, 1);
    }
  });
  if (manager.Upgrade(0, 1)) {
    manager.ReleaseExclusive(0, 1);
  } else {
    manager.ReleaseShared(0, 1);
  }
  other.join();
  // Lock fully released afterwards.
  EXPECT_TRUE(table.TryLockExclusive(1));
  table.UnlockExclusive(1);
}

TEST(LockManagerTest, TimeoutPolicyRecoversFromDeadlock) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, DeadlockPolicy::kTimeout);
  ASSERT_TRUE(manager.AcquireExclusive(0, 1));
  ASSERT_TRUE(manager.AcquireExclusive(1, 2));
  // Cross-acquire from two threads: both must return (one or both as
  // victims) instead of hanging.
  std::atomic<int> victims{0};
  std::thread t0([&] {
    if (!manager.AcquireExclusive(0, 2)) {
      ++victims;
    } else {
      manager.ReleaseExclusive(0, 2);
    }
    manager.ReleaseExclusive(0, 1);
  });
  std::thread t1([&] {
    if (!manager.AcquireExclusive(1, 1)) {
      ++victims;
    } else {
      manager.ReleaseExclusive(1, 1);
    }
    manager.ReleaseExclusive(1, 2);
  });
  t0.join();
  t1.join();
  EXPECT_GE(victims.load(), 1);
}

TEST(LockManagerTest, PreventionPolicySkipsBookkeeping) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, DeadlockPolicy::kPrevention);
  // Ordered acquisition across two threads: must always succeed.
  std::thread a([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(manager.AcquireExclusive(0, 3));
      ASSERT_TRUE(manager.AcquireExclusive(0, 7));
      manager.ReleaseExclusive(0, 7);
      manager.ReleaseExclusive(0, 3);
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(manager.AcquireExclusive(1, 3));
      ASSERT_TRUE(manager.AcquireExclusive(1, 7));
      manager.ReleaseExclusive(1, 7);
      manager.ReleaseExclusive(1, 3);
    }
  });
  a.join();
  b.join();
}

}  // namespace
}  // namespace tufast
