// Lock substrate tests: lock-table word semantics, lock-manager policies
// (detection / prevention / timeout), upgrade deadlocks, and the
// waits-for graph itself.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"
#include "sync/deadlock_graph.h"
#include "sync/lock_manager.h"
#include "sync/lock_table.h"

namespace tufast {
namespace {

class LockTableTest : public ::testing::Test {
 protected:
  EmulatedHtm htm_;
  LockTable<EmulatedHtm> table_{htm_, 64};
};

TEST_F(LockTableTest, SharedLocksCompose) {
  EXPECT_TRUE(table_.TryLockShared(3));
  EXPECT_TRUE(table_.TryLockShared(3));
  EXPECT_FALSE(table_.TryLockExclusive(3));
  table_.UnlockShared(3);
  EXPECT_FALSE(table_.TryLockExclusive(3));  // One shared holder left.
  table_.UnlockShared(3);
  EXPECT_TRUE(table_.TryLockExclusive(3));
  table_.UnlockExclusive(3);
}

TEST_F(LockTableTest, ExclusiveBlocksEverything) {
  EXPECT_TRUE(table_.TryLockExclusive(7));
  EXPECT_FALSE(table_.TryLockShared(7));
  EXPECT_FALSE(table_.TryLockExclusive(7));
  table_.UnlockExclusive(7);
  EXPECT_TRUE(table_.TryLockShared(7));
  table_.UnlockShared(7);
}

TEST_F(LockTableTest, UpgradeRequiresSoleHolder) {
  ASSERT_TRUE(table_.TryLockShared(9));
  ASSERT_TRUE(table_.TryLockShared(9));
  EXPECT_FALSE(table_.TryUpgrade(9));  // Two holders.
  table_.UnlockShared(9);
  EXPECT_TRUE(table_.TryUpgrade(9));  // Sole holder.
  table_.UnlockExclusive(9);
}

TEST_F(LockTableTest, WordPredicatesMatchState) {
  EXPECT_TRUE(LockTable<EmulatedHtm>::Free(table_.LoadWord(0)));
  table_.TryLockShared(0);
  EXPECT_TRUE(LockTable<EmulatedHtm>::SharedCompatible(table_.LoadWord(0)));
  EXPECT_FALSE(LockTable<EmulatedHtm>::Free(table_.LoadWord(0)));
  table_.UnlockShared(0);
  table_.TryLockExclusive(0);
  EXPECT_FALSE(LockTable<EmulatedHtm>::SharedCompatible(table_.LoadWord(0)));
  table_.UnlockExclusive(0);
}

TEST(DeadlockGraphTest, DetectsTwoPartyCycle) {
  DeadlockGraph graph;
  graph.AddHolder(/*v=*/1, /*slot=*/0, /*exclusive=*/true);
  graph.AddHolder(/*v=*/2, /*slot=*/1, /*exclusive=*/true);
  EXPECT_FALSE(graph.SetWaitingAndCheck(/*slot=*/0, /*v=*/2));
  // Slot 1 waiting for vertex 1 (held by 0, which waits for 2, held by
  // 1) closes the cycle.
  EXPECT_TRUE(graph.SetWaitingAndCheck(/*slot=*/1, /*v=*/1));
}

TEST(DeadlockGraphTest, DetectsThreePartyCycle) {
  DeadlockGraph graph;
  graph.AddHolder(1, 0, true);
  graph.AddHolder(2, 1, true);
  graph.AddHolder(3, 2, true);
  EXPECT_FALSE(graph.SetWaitingAndCheck(0, 2));
  EXPECT_FALSE(graph.SetWaitingAndCheck(1, 3));
  EXPECT_TRUE(graph.SetWaitingAndCheck(2, 1));
}

TEST(DeadlockGraphTest, NoFalsePositiveOnChains) {
  DeadlockGraph graph;
  graph.AddHolder(1, 0, true);
  graph.AddHolder(2, 1, true);
  EXPECT_FALSE(graph.SetWaitingAndCheck(2, 1));  // 2 -> 0: no cycle.
  EXPECT_FALSE(graph.SetWaitingAndCheck(1, 1));  // 1 -> 0 too: no cycle.
  graph.ClearWaiting(1);
  graph.ClearWaiting(2);
  EXPECT_EQ(graph.HolderEntriesForTest(), 2u);
}

TEST(DeadlockGraphTest, UpgradeCycleSkipsSelfEdge) {
  DeadlockGraph graph;
  // Both hold 5 shared; both want to upgrade.
  graph.AddHolder(5, 0, false);
  graph.AddHolder(5, 1, false);
  EXPECT_FALSE(graph.SetWaitingAndCheck(0, 5));  // Waits only on slot 1.
  EXPECT_TRUE(graph.SetWaitingAndCheck(1, 5));   // Closes the cycle.
}

TEST(LockManagerTest, UpgradeDeadlockResolvedByDetection) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, DeadlockPolicy::kDetection);
  ASSERT_TRUE(manager.AcquireShared(0, 1));
  ASSERT_TRUE(manager.AcquireShared(1, 1));
  // Slot 1 upgrades in a second thread (it will win once slot 0 gives
  // up); slot 0's upgrade attempt must be chosen as the victim or
  // succeed after 1 completes — no hang either way.
  std::thread other([&] {
    if (manager.Upgrade(1, 1)) {
      manager.ReleaseExclusive(1, 1);
    } else {
      manager.ReleaseShared(1, 1);
    }
  });
  if (manager.Upgrade(0, 1)) {
    manager.ReleaseExclusive(0, 1);
  } else {
    manager.ReleaseShared(0, 1);
  }
  other.join();
  // Lock fully released afterwards.
  EXPECT_TRUE(table.TryLockExclusive(1));
  table.UnlockExclusive(1);
}

TEST(LockManagerTest, TimeoutPolicyRecoversFromDeadlock) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, DeadlockPolicy::kTimeout);
  ASSERT_TRUE(manager.AcquireExclusive(0, 1));
  ASSERT_TRUE(manager.AcquireExclusive(1, 2));
  // Cross-acquire from two threads: both must return (one or both as
  // victims) instead of hanging.
  std::atomic<int> victims{0};
  std::thread t0([&] {
    if (!manager.AcquireExclusive(0, 2)) {
      ++victims;
    } else {
      manager.ReleaseExclusive(0, 2);
    }
    manager.ReleaseExclusive(0, 1);
  });
  std::thread t1([&] {
    if (!manager.AcquireExclusive(1, 1)) {
      ++victims;
    } else {
      manager.ReleaseExclusive(1, 1);
    }
    manager.ReleaseExclusive(1, 2);
  });
  t0.join();
  t1.join();
  EXPECT_GE(victims.load(), 1);
}

TEST(DeadlockGraphTest, RejectsOutOfRangeSlots) {
  // Slot ids index fixed kMaxHtmThreads arrays and narrow to int16_t; the
  // entry points must fail loudly instead of aliasing another worker's
  // wait state (see deadlock_graph.cc).
  DeadlockGraph graph;
  EXPECT_DEATH(graph.AddHolder(0, kMaxHtmThreads, true), "check failed");
  EXPECT_DEATH(graph.AddHolder(0, -1, false), "check failed");
  EXPECT_DEATH(graph.RemoveHolder(0, kMaxHtmThreads + 5, true),
               "check failed");
  EXPECT_DEATH(graph.SetWaitingAndCheck(-3, 1), "check failed");
  EXPECT_DEATH(graph.ClearWaiting(1 << 20), "check failed");
  // In-range ids keep working after the death-test forks.
  graph.AddHolder(0, kMaxHtmThreads - 1, true);
  EXPECT_EQ(graph.HolderEntriesForTest(), 1u);
}

// "Shared lock still held after failed upgrade" contract, asserted
// directly: under kTimeout a sole-loser upgrade fails by wait-bound
// expiry without touching the shared registration.
TEST(LockManagerTest, FailedUpgradeKeepsSharedHeldTimeout) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, DeadlockPolicy::kTimeout);
  ASSERT_TRUE(manager.AcquireShared(0, 4));
  ASSERT_TRUE(manager.AcquireShared(1, 4));
  // Two shared holders: slot 0's upgrade can never succeed and the
  // timeout bound (short under kTimeout) picks it as victim.
  EXPECT_FALSE(manager.Upgrade(0, 4));
  // Both shared registrations must be intact: exclusive is blocked, and
  // releasing ONE shared makes an upgrade possible again (sole holder) —
  // which could not happen had the failed upgrade leaked slot 0's share.
  EXPECT_FALSE(table.TryLockExclusive(4));
  manager.ReleaseShared(1, 4);
  EXPECT_TRUE(table.TryUpgrade(4));
  table.UnlockExclusive(4);
}

// Two upgraders on one vertex under every policy that can resolve it on
// its own (kDetection closes the waits-for cycle; kTimeout expires the
// wait bound). Exactly one thread may win; the loser must still hold its
// shared lock and release it, leaving the vertex free.
class UpgradeContentionTest
    : public ::testing::TestWithParam<DeadlockPolicy> {};

TEST_P(UpgradeContentionTest, TwoUpgradersOneVertex) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, GetParam());
  ASSERT_TRUE(manager.AcquireShared(0, 2));
  ASSERT_TRUE(manager.AcquireShared(1, 2));
  std::atomic<int> winners{0};
  std::atomic<int> victims{0};
  auto upgrader = [&](int slot) {
    if (manager.Upgrade(slot, 2)) {
      ++winners;
      manager.ReleaseExclusive(slot, 2);
    } else {
      // Contract: the shared lock survives the failed upgrade, so the
      // victim releases shared — an unbalanced release here would corrupt
      // the lock word and break the final freeness check.
      ++victims;
      manager.ReleaseShared(slot, 2);
    }
  };
  std::thread other([&] { upgrader(1); });
  upgrader(0);
  other.join();
  EXPECT_GE(victims.load(), 1);
  EXPECT_LE(winners.load(), 1);
  EXPECT_EQ(winners.load() + victims.load(), 2);
  EXPECT_TRUE(table.TryLockExclusive(2));  // Fully released afterwards.
  table.UnlockExclusive(2);
}

INSTANTIATE_TEST_SUITE_P(Policies, UpgradeContentionTest,
                         ::testing::Values(DeadlockPolicy::kDetection,
                                           DeadlockPolicy::kTimeout),
                         [](const auto& info) {
                           return info.param == DeadlockPolicy::kDetection
                                      ? "Detection"
                                      : "Timeout";
                         });

// kPrevention has no recovery mechanism by design (the caller promises
// ordered acquisition), so its upgrade-failure contract is exercised with
// a forced failpoint victim in stress_test.cc instead of a real 1M-pause
// wait-bound expiry here.

TEST(LockManagerTest, PreventionPolicySkipsBookkeeping) {
  EmulatedHtm htm;
  LockTable<EmulatedHtm> table(htm, 16);
  LockManager<EmulatedHtm> manager(table, DeadlockPolicy::kPrevention);
  // Ordered acquisition across two threads: must always succeed.
  std::thread a([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(manager.AcquireExclusive(0, 3));
      ASSERT_TRUE(manager.AcquireExclusive(0, 7));
      manager.ReleaseExclusive(0, 7);
      manager.ReleaseExclusive(0, 3);
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(manager.AcquireExclusive(1, 3));
      ASSERT_TRUE(manager.AcquireExclusive(1, 7));
      manager.ReleaseExclusive(1, 7);
      manager.ReleaseExclusive(1, 3);
    }
  });
  a.join();
  b.join();
}

}  // namespace
}  // namespace tufast
