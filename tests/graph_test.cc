// Graph substrate tests: CSR builder, transforms, generators, IO, and
// degree statistics.

#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/degree_stats.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"

namespace tufast {
namespace {

TEST(GraphBuilder, BuildsSortedCsr) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 3);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 4);
  builder.AddEdge(0, 2);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 3u);
  const auto n0 = g.OutNeighbors(0);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(n0[2], 3u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.OutDegree(2), 1u);
}

TEST(GraphBuilder, RemovesSelfLoopsByDefault) {
  GraphBuilder builder(3);
  builder.AddEdge(1, 1);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.OutNeighbors(1)[0], 2u);
}

TEST(GraphBuilder, DeduplicatesWhenRequested) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  const Graph g = builder.Build({.remove_duplicate_edges = true});
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphBuilder, PreservesWeights) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 7);
  builder.AddEdge(0, 1, 5);
  const Graph g = builder.Build();
  ASSERT_TRUE(g.HasWeights());
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutWeights(0)[0], 5u);
  EXPECT_EQ(g.OutWeights(0)[1], 7u);
}

TEST(GraphTransforms, ReversedFlipsEdges) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(3, 0);
  const Graph g = builder.Build();
  const Graph r = g.Reversed();
  EXPECT_EQ(r.NumEdges(), 3u);
  EXPECT_EQ(r.OutDegree(1), 1u);
  EXPECT_EQ(r.OutNeighbors(1)[0], 0u);
  EXPECT_EQ(r.OutDegree(0), 1u);
  EXPECT_EQ(r.OutNeighbors(0)[0], 3u);
}

TEST(GraphTransforms, UndirectedSymmetricAndDeduplicated) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);  // Already both directions: must not duplicate.
  builder.AddEdge(2, 3);
  const Graph u = builder.Build().Undirected();
  EXPECT_EQ(u.NumEdges(), 4u);  // 0<->1 and 2<->3.
  for (VertexId v = 0; v < u.NumVertices(); ++v) {
    for (const VertexId w : u.OutNeighbors(v)) {
      const auto back = u.OutNeighbors(w);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), v))
          << "missing reverse edge " << w << "->" << v;
    }
  }
}

TEST(Generators, ErdosRenyiHasRequestedShape) {
  const Graph g = GenerateErdosRenyi(1000, 5000, /*seed=*/42);
  EXPECT_EQ(g.NumVertices(), 1000u);
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), 5000.0, 50.0);
}

TEST(Generators, Deterministic) {
  const Graph a = GenerateErdosRenyi(500, 2000, 7);
  const Graph b = GenerateErdosRenyi(500, 2000, 7);
  EXPECT_EQ(a.targets(), b.targets());
  EXPECT_EQ(a.offsets(), b.offsets());
}

TEST(Generators, PowerLawIsSkewed) {
  const Graph g = GeneratePowerLaw(20000, 200000, /*seed=*/1);
  const DegreeStats stats = ComputeDegreeStats(g);
  // A power-law graph has a hugely disproportionate max degree and a
  // negative log-log slope (paper Fig. 5).
  EXPECT_GT(stats.max_degree, 50 * stats.average_degree);
  EXPECT_LT(stats.LogLogSlope(), -0.4);
  // And for comparison, Erdős–Rényi is NOT skewed.
  const DegreeStats er =
      ComputeDegreeStats(GenerateErdosRenyi(20000, 200000, 1));
  EXPECT_LT(er.max_degree, 10 * er.average_degree);
}

TEST(Generators, UniformDegreeIsExactlyRegular) {
  const Graph g = GenerateUniformDegree(500, 8, /*seed=*/3);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.OutDegree(v), 8u);
    for (const VertexId u : g.OutNeighbors(v)) EXPECT_NE(u, v);
  }
}

TEST(Generators, RmatShape) {
  const Graph g = GenerateRmat(/*scale=*/12, /*edge_factor=*/8, /*seed=*/5);
  EXPECT_EQ(g.NumVertices(), 4096u);
  EXPECT_GT(g.NumEdges(), 30000u);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(stats.max_degree, 20 * stats.average_degree);  // Skewed.
}

TEST(GraphIo, BinaryRoundTrip) {
  const Graph g = GeneratePowerLaw(2000, 10000, 9,
                                   {.alpha = 0.7, .weighted = true});
  const std::string path = ::testing::TempDir() + "/graph_roundtrip.bin";
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().offsets(), g.offsets());
  EXPECT_EQ(loaded.value().targets(), g.targets());
  EXPECT_EQ(loaded.value().weights(), g.weights());
  std::remove(path.c_str());
}

TEST(GraphIo, EdgeListParsing) {
  const std::string path = ::testing::TempDir() + "/edges.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# comment line\n0 1\n1 2\n2 0\n\n3 1\n", f);
  std::fclose(f);
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumVertices(), 4u);
  EXPECT_EQ(loaded.value().NumEdges(), 4u);
  EXPECT_FALSE(loaded.value().HasWeights());
  std::remove(path.c_str());
}

TEST(GraphIo, WeightedEdgeListParsing) {
  const std::string path = ::testing::TempDir() + "/wedges.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0 1 10\n1 2 20\n", f);
  std::fclose(f);
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().HasWeights());
  EXPECT_EQ(loaded.value().OutWeights(0)[0], 10u);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileReturnsError) {
  auto loaded = LoadEdgeList("/nonexistent/nope.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(DegreeStatsTest, CountsHtmOverflowVertices) {
  // A star graph: the hub exceeds the 4096-word HTM budget.
  GraphBuilder builder(5000);
  for (VertexId v = 1; v < 5000; ++v) builder.AddEdge(0, v);
  const DegreeStats stats = ComputeDegreeStats(builder.Build());
  EXPECT_EQ(stats.max_degree, 4999u);
  EXPECT_EQ(stats.num_above_htm_capacity, 1u);
}

}  // namespace
}  // namespace tufast
