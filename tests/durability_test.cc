// Durability-layer unit tests: WAL record framing and group commit,
// crash failpoints (torn write, short write, crash before fsync),
// checkpoint atomicity, and RecoverFromWal's prefix-consistency
// contract — plus the scheduler integration smoke that runs all seven
// schedulers against a real log and replays it. The crash-chaos
// *stress* sweep lives in bench/stress_fuzz.cc; these tests pin the
// exact byte-level and sequencing behaviors it builds on.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "durability/recovery.h"
#include "durability/wal.h"
#include "graph/dynamic/dynamic_graph.h"
#include "testing/failpoints.h"
#include "testing/stress_workloads.h"

namespace tufast {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/tufast_dur_" +
         std::to_string(static_cast<long>(getpid())) + "_" + tag;
}

/// Removes the file when the test scope ends, pass or fail.
struct PathGuard {
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() { std::remove(path.c_str()); }
  std::string path;
};

void ExpectSameFrozenGraph(const DynamicGraph& a, const DynamicGraph& b) {
  const Graph ga = a.Freeze();
  const Graph gb = b.Freeze();
  ASSERT_EQ(ga.NumVertices(), gb.NumVertices());
  ASSERT_EQ(ga.NumEdges(), gb.NumEdges());
  for (VertexId u = 0; u < ga.NumVertices(); ++u) {
    ASSERT_EQ(ga.EdgeBegin(u), gb.EdgeBegin(u)) << "vertex " << u;
    for (EdgeId e = ga.EdgeBegin(u); e < ga.EdgeEnd(u); ++e) {
      ASSERT_EQ(ga.EdgeTarget(e), gb.EdgeTarget(e)) << "edge " << e;
      ASSERT_EQ(ga.EdgeWeight(e), gb.EdgeWeight(e)) << "edge " << e;
    }
  }
}

// ---------------------------------------------------------------------------
// Record framing and group commit.

TEST(WalFramingTest, RoundTripThroughScan) {
  PathGuard wal(TempPath("roundtrip.wal"));
  std::vector<std::vector<EdgeUpdate>> written;
  {
    WalWriter writer(wal.path);
    ASSERT_TRUE(writer.ok());
    for (uint32_t i = 1; i <= 5; ++i) {
      std::vector<EdgeUpdate> ups;
      ups.push_back(EdgeUpdate::Insert(i, i + 1, 10 * i));
      if (i % 2 == 0) ups.push_back(EdgeUpdate::Delete(i, i + 2));
      if (i % 3 == 0) ups.push_back(EdgeUpdate::Reweight(i, i + 1, 7 * i));
      const WalPublishInfo info = writer.Publish(ups.data(), ups.size());
      EXPECT_EQ(info.seq, i);
      EXPECT_GT(info.bytes, 0u);
      EXPECT_TRUE(writer.Commit(info.seq));
      written.push_back(std::move(ups));
    }
    EXPECT_EQ(writer.durable_seq(), 5u);
    EXPECT_EQ(writer.records(), 5u);
    EXPECT_GE(writer.fsyncs(), 1u);
  }

  std::vector<WalRecoveredRecord> read;
  const WalScanResult scan = ScanWal(
      wal.path, [&](const WalRecoveredRecord& rec) { read.push_back(rec); });
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.last_seq, 5u);
  ASSERT_EQ(read.size(), written.size());
  for (size_t i = 0; i < read.size(); ++i) {
    EXPECT_EQ(read[i].seq, i + 1);
    ASSERT_EQ(read[i].updates.size(), written[i].size());
    for (size_t k = 0; k < written[i].size(); ++k) {
      EXPECT_EQ(read[i].updates[k].op, written[i][k].op);
      EXPECT_EQ(read[i].updates[k].src, written[i][k].src);
      EXPECT_EQ(read[i].updates[k].dst, written[i][k].dst);
      EXPECT_EQ(read[i].updates[k].weight, written[i][k].weight);
    }
  }
}

TEST(WalFramingTest, EmptyPublishAndMissingFile) {
  PathGuard wal(TempPath("empty.wal"));
  WalWriter writer(wal.path);
  ASSERT_TRUE(writer.ok());
  const WalPublishInfo info = writer.Publish(nullptr, 0);
  EXPECT_EQ(info.seq, 0u);  // Nothing staged, nothing logged.

  const WalScanResult scan = ScanWal(
      TempPath("does_not_exist.wal"),
      [](const WalRecoveredRecord&) { FAIL() << "no records expected"; });
  EXPECT_EQ(scan.records, 0u);
  EXPECT_FALSE(scan.torn_tail);  // A missing log is a fresh log.
}

TEST(WalFramingTest, OneFlushCoversAllBatchedRecords) {
  PathGuard wal(TempPath("group.wal"));
  WalWriter writer(wal.path);
  ASSERT_TRUE(writer.ok());
  uint64_t last = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    const EdgeUpdate up = EdgeUpdate::Insert(1, 2 + i, i);
    last = writer.Publish(&up, 1).seq;
  }
  // The group-commit barrier: one Commit at the tail durability-covers
  // every record batched since the last flush, with a single fsync.
  EXPECT_TRUE(writer.Commit(last));
  EXPECT_EQ(writer.durable_seq(), 3u);
  EXPECT_EQ(writer.fsyncs(), 1u);
  // An earlier record's barrier is now a no-op fast path.
  EXPECT_TRUE(writer.Commit(1));
  EXPECT_EQ(writer.fsyncs(), 1u);
}

TEST(WalFramingTest, SequenceNumbersStayMonotoneAcrossTruncate) {
  PathGuard wal(TempPath("truncate.wal"));
  WalWriter writer(wal.path);
  ASSERT_TRUE(writer.ok());
  for (uint32_t i = 0; i < 3; ++i) {
    const EdgeUpdate up = EdgeUpdate::Insert(1, 2 + i, i);
    EXPECT_TRUE(writer.Commit(writer.Publish(&up, 1).seq));
  }
  ASSERT_TRUE(writer.Truncate());
  for (uint32_t i = 0; i < 2; ++i) {
    const EdgeUpdate up = EdgeUpdate::Insert(2, 5 + i, i);
    EXPECT_TRUE(writer.Commit(writer.Publish(&up, 1).seq));
  }
  std::vector<uint64_t> seqs;
  const WalScanResult scan = ScanWal(
      wal.path, [&](const WalRecoveredRecord& rec) { seqs.push_back(rec.seq); });
  EXPECT_FALSE(scan.torn_tail);
  // Only the post-truncation records remain, and their sequence numbers
  // continue past the dropped prefix — replay's `seq > checkpoint_seq`
  // filter depends on that monotonicity.
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 4u);
  EXPECT_EQ(seqs[1], 5u);
}

// ---------------------------------------------------------------------------
// Crash failpoints: the writer must die exactly like a killed process.

/// Publishes + commits `n` single-update records; returns the number of
/// acknowledged (Commit returned true) commits.
uint64_t PumpRecords(BasicWalWriter<StressFailpoints>& writer, uint32_t n) {
  uint64_t acked = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const EdgeUpdate up = EdgeUpdate::Insert(3, 8 + i, i + 1);
    const WalPublishInfo info = writer.Publish(&up, 1);
    if (info.seq != 0 && writer.Commit(info.seq)) ++acked;
  }
  return acked;
}

TEST(WalCrashTest, TornWriteKeepsExactlyTheAckedPrefix) {
  PathGuard wal(TempPath("torn.wal"));
  FailpointPlan::Config pc;
  pc.seed = 11;
  FailpointPlan plan(pc);
  plan.ForceAt(FailSite::kWalTornWrite, 0, /*hit_index=*/2, FailAction::kFail);
  FailpointScope scope(plan);

  BasicWalWriter<StressFailpoints> writer(wal.path);
  ASSERT_TRUE(writer.ok());
  const uint64_t acked = PumpRecords(writer, 6);
  EXPECT_TRUE(writer.crashed());
  EXPECT_EQ(acked, 2u);  // The third flush tore; nothing after it acks.
  EXPECT_EQ(writer.durable_seq(), 2u);

  const WalScanResult scan = ScanWal(wal.path, [](const WalRecoveredRecord&) {});
  EXPECT_TRUE(scan.torn_tail);
  // Replay stops at the flipped bit: the durable prefix survives, the
  // damaged tail record is invisible.
  EXPECT_EQ(scan.last_seq, writer.durable_seq());
  EXPECT_EQ(scan.records, 2u);
}

TEST(WalCrashTest, ShortWriteKeepsExactlyTheAckedPrefix) {
  PathGuard wal(TempPath("short.wal"));
  FailpointPlan::Config pc;
  pc.seed = 12;
  FailpointPlan plan(pc);
  plan.ForceAt(FailSite::kWalShortWrite, 0, /*hit_index=*/1, FailAction::kFail);
  FailpointScope scope(plan);

  BasicWalWriter<StressFailpoints> writer(wal.path);
  ASSERT_TRUE(writer.ok());
  const uint64_t acked = PumpRecords(writer, 5);
  EXPECT_TRUE(writer.crashed());
  EXPECT_EQ(acked, 1u);
  EXPECT_EQ(writer.durable_seq(), 1u);

  const WalScanResult scan = ScanWal(wal.path, [](const WalRecoveredRecord&) {});
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.last_seq, 1u);
}

TEST(WalCrashTest, CrashBeforeFsyncNeverLosesAnAck) {
  PathGuard wal(TempPath("nofsync.wal"));
  FailpointPlan::Config pc;
  pc.seed = 13;
  FailpointPlan plan(pc);
  plan.ForceAt(FailSite::kCrashBeforeFsync, 0, /*hit_index=*/3,
               FailAction::kFail);
  FailpointScope scope(plan);

  BasicWalWriter<StressFailpoints> writer(wal.path);
  ASSERT_TRUE(writer.ok());
  const uint64_t acked = PumpRecords(writer, 6);
  EXPECT_TRUE(writer.crashed());
  EXPECT_EQ(acked, 3u);
  EXPECT_EQ(writer.durable_seq(), 3u);

  const WalScanResult scan = ScanWal(wal.path, [](const WalRecoveredRecord&) {});
  // The un-fsynced tail record is whole and checksummed, so the scan may
  // legitimately see MORE than was acked — extra intact records are
  // fine; losing an acked one is the only crime.
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_GE(scan.last_seq, writer.durable_seq());
}

TEST(WalCrashTest, CrashedWriterRefusesAllFurtherWork) {
  PathGuard wal(TempPath("dead.wal"));
  FailpointPlan::Config pc;
  pc.seed = 14;
  FailpointPlan plan(pc);
  plan.ForceAt(FailSite::kWalTornWrite, 0, 0, FailAction::kFail);
  FailpointScope scope(plan);

  BasicWalWriter<StressFailpoints> writer(wal.path);
  ASSERT_TRUE(writer.ok());
  PumpRecords(writer, 2);
  ASSERT_TRUE(writer.crashed());

  const EdgeUpdate up = EdgeUpdate::Insert(1, 2, 3);
  EXPECT_EQ(writer.Publish(&up, 1).seq, 0u);  // Dead process: drop.
  EXPECT_FALSE(writer.Commit(1));
  EXPECT_FALSE(writer.Truncate());
  EXPECT_EQ(writer.durable_seq(), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoints.

TEST(CheckpointTest, RoundTripRestoresGraphAndSequence) {
  PathGuard ck(TempPath("round.ckpt"));
  DynamicGraph g(32, {.weighted = true});
  g.EnsureVerticesQuiesced(32);
  for (uint32_t i = 0; i < 20; ++i) {
    g.ApplyQuiescedUpdate(EdgeUpdate::Insert(i % 6, 10 + i, i + 1));
  }
  g.ApplyQuiescedUpdate(EdgeUpdate::Delete(2, 12));
  g.ApplyQuiescedUpdate(EdgeUpdate::Reweight(3, 13, 999));

  ASSERT_TRUE(WriteCheckpoint(g, ck.path, /*last_seq=*/7));

  DynamicGraph h(32, {.weighted = true});
  uint64_t seq = 0;
  ASSERT_TRUE(LoadCheckpointInto(&h, ck.path, &seq));
  EXPECT_EQ(seq, 7u);
  h.EnsureVerticesQuiesced(32);
  ExpectSameFrozenGraph(g, h);
  EXPECT_EQ(h.CheckInvariantsQuiesced(), std::nullopt);
}

TEST(CheckpointTest, PartialCheckpointIsRejectedByRecovery) {
  PathGuard ck(TempPath("partial.ckpt"));
  PathGuard wal(TempPath("partial.wal"));
  DynamicGraph g(16, {.weighted = true});
  g.EnsureVerticesQuiesced(16);
  {
    WalWriter writer(wal.path);
    ASSERT_TRUE(writer.ok());
    for (uint32_t i = 0; i < 8; ++i) {
      const EdgeUpdate up = EdgeUpdate::Insert(i % 4, 8 + i, i + 1);
      g.ApplyQuiescedUpdate(up);
      ASSERT_TRUE(writer.Commit(writer.Publish(&up, 1).seq));
    }
  }

  {
    FailpointPlan::Config pc;
    pc.seed = 21;
    FailpointPlan plan(pc);
    plan.ForceAt(FailSite::kCheckpointPartial, 0, 0, FailAction::kFail);
    FailpointScope scope(plan);
    // The simulated mid-checkpoint kill reports failure and leaves a
    // torn image at the final path.
    EXPECT_FALSE(WriteCheckpoint<StressFailpoints>(g, ck.path, 8));
  }

  DynamicGraph untouched(16, {.weighted = true});
  uint64_t seq = 0;
  EXPECT_FALSE(LoadCheckpointInto(&untouched, ck.path, &seq));
  EXPECT_EQ(untouched.Freeze().NumEdges(), 0u);  // Left untouched.

  // Recovery shrugs off the torn checkpoint and rebuilds from the log.
  DynamicGraph rec(16, {.weighted = true});
  const WalRecoveryResult res = RecoverFromWal(&rec, wal.path, ck.path);
  EXPECT_FALSE(res.from_checkpoint);
  EXPECT_EQ(res.replayed, 8u);
  EXPECT_EQ(res.last_seq, 8u);
  rec.EnsureVerticesQuiesced(16);
  ExpectSameFrozenGraph(g, rec);
}

TEST(CheckpointTest, BitFlippedCheckpointIsRejected) {
  PathGuard ck(TempPath("flip.ckpt"));
  DynamicGraph g(8, {.weighted = false});
  g.EnsureVerticesQuiesced(8);
  for (uint32_t i = 0; i < 6; ++i) {
    g.ApplyQuiescedUpdate(EdgeUpdate::Insert(i % 3, 3 + i % 5));
  }
  ASSERT_TRUE(WriteCheckpoint(g, ck.path, 3));

  std::FILE* f = std::fopen(ck.path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 48, SEEK_SET);  // Inside the offsets array.
  const uint8_t flip = 0x08;
  std::fwrite(&flip, 1, 1, f);
  std::fclose(f);

  DynamicGraph h(8, {.weighted = false});
  uint64_t seq = 0;
  EXPECT_FALSE(LoadCheckpointInto(&h, ck.path, &seq));
}

TEST(CheckpointTest, CheckpointPlusTailReplay) {
  PathGuard ck(TempPath("tail.ckpt"));
  PathGuard wal(TempPath("tail.wal"));
  DynamicGraph live(64, {.weighted = true});
  live.EnsureVerticesQuiesced(64);
  WalWriter writer(wal.path);
  ASSERT_TRUE(writer.ok());

  auto commit_one = [&](const EdgeUpdate& up) {
    live.ApplyQuiescedUpdate(up);
    ASSERT_TRUE(writer.Commit(writer.Publish(&up, 1).seq));
  };
  for (uint32_t i = 0; i < 10; ++i) {
    commit_one(EdgeUpdate::Insert(i % 5, 20 + i, i + 1));
  }
  ASSERT_TRUE(WriteCheckpoint(live, ck.path, writer.durable_seq()));
  ASSERT_TRUE(writer.Truncate());
  for (uint32_t i = 0; i < 5; ++i) {
    commit_one(EdgeUpdate::Insert(5 + i % 3, 40 + i, i + 1));
  }

  DynamicGraph rec(64, {.weighted = true});
  const WalRecoveryResult res = RecoverFromWal(&rec, wal.path, ck.path);
  EXPECT_TRUE(res.from_checkpoint);
  EXPECT_FALSE(res.torn_tail);
  EXPECT_EQ(res.replayed, 5u);  // Only the post-checkpoint tail.
  EXPECT_EQ(res.last_seq, writer.durable_seq());
  rec.EnsureVerticesQuiesced(64);
  ExpectSameFrozenGraph(live, rec);
}

// ---------------------------------------------------------------------------
// Scheduler integration: every scheduler's publish hook must produce a
// log that replays to exactly the committed state.

template <typename Scheduler>
void RunSchedulerWalRecoverySmoke(const char* name) {
  SCOPED_TRACE(name);
  constexpr VertexId kCap = 96;
  PathGuard wal(TempPath(std::string("sched_") + name + ".wal"));

  DynamicGraph live(kCap, {.weighted = true});
  live.EnsureVerticesQuiesced(kCap);
  EmulatedHtm htm;
  auto tm = MakeSchedulerFor<Scheduler>(htm, kCap, DeadlockPolicy::kDetection);
  WalWriter writer(wal.path);
  ASSERT_TRUE(writer.ok());
  tm->EnableWal(&writer);

  constexpr int kThreads = 2;
  constexpr uint64_t kTxnsPerThread = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kTxnsPerThread; ++i) {
        const uint64_t k = static_cast<uint64_t>(t) * kTxnsPerThread + i;
        const EdgeUpdate one[] = {EdgeUpdate::Insert(
            static_cast<VertexId>(2 + k % 8),
            static_cast<VertexId>(16 + k), static_cast<uint32_t>(k + 1))};
        live.ApplyBatch(*tm, t, one);
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr uint64_t kTotal = kThreads * kTxnsPerThread;
  // Every committed batch is one record, every ack is durable.
  EXPECT_EQ(writer.records(), kTotal);
  EXPECT_EQ(writer.durable_seq(), kTotal);
  const SchedulerStats stats = tm->AggregatedStats();
  EXPECT_EQ(stats.wal_records, kTotal);
  EXPECT_GT(stats.wal_bytes, 0u);

  DynamicGraph rec(kCap, {.weighted = true});
  const WalRecoveryResult res = RecoverFromWal(&rec, wal.path);
  EXPECT_FALSE(res.torn_tail);
  EXPECT_EQ(res.replayed, kTotal);
  EXPECT_EQ(res.last_seq, writer.durable_seq());
  rec.EnsureVerticesQuiesced(kCap);
  EXPECT_EQ(rec.CheckInvariantsQuiesced(), std::nullopt);
  ExpectSameFrozenGraph(live, rec);
}

TEST(DurabilitySchedulerTest, AllSevenSchedulersLogReplayably) {
  RunSchedulerWalRecoverySmoke<TuFastScheduler<EmulatedHtm>>("tufast");
  RunSchedulerWalRecoverySmoke<TwoPhaseLocking<EmulatedHtm>>("2pl");
  RunSchedulerWalRecoverySmoke<SiloOcc<EmulatedHtm>>("silo");
  RunSchedulerWalRecoverySmoke<TimestampOrdering<EmulatedHtm>>("to");
  RunSchedulerWalRecoverySmoke<TinyStm<EmulatedHtm>>("tinystm");
  RunSchedulerWalRecoverySmoke<HsyncHybrid<EmulatedHtm>>("hsync");
  RunSchedulerWalRecoverySmoke<HtmTimestampOrdering<EmulatedHtm>>("hto");
}

// Deterministic single-worker mutation stream covering all three ops.
void PumpDeterministicMutations(TuFast& tm, DynamicGraph& dyn) {
  for (uint64_t t = 0; t < 60; ++t) {
    EdgeUpdate one[1];
    const VertexId u = static_cast<VertexId>(t % 8);
    const VertexId v = static_cast<VertexId>(10 + t % 20);
    switch (t % 3) {
      case 0: one[0] = EdgeUpdate::Insert(u, v, static_cast<uint32_t>(t + 1)); break;
      case 1: one[0] = EdgeUpdate::Reweight(u, v, static_cast<uint32_t>(2 * t)); break;
      default: one[0] = EdgeUpdate::Delete(u, v); break;
    }
    dyn.ApplyBatch(tm, 0, one);
  }
}

TEST(DurabilityConfigTest, WalOffMatchesWalOnStateAndLeavesNoTelemetry) {
  constexpr VertexId kCap = 48;
  PathGuard wal(TempPath("config.wal"));

  DynamicGraph plain(kCap, {.weighted = true});
  plain.EnsureVerticesQuiesced(kCap);
  {
    EmulatedHtm htm;
    TuFast tm(htm, kCap, {});  // Durability off: the default config.
    PumpDeterministicMutations(tm, plain);
    const SchedulerStats stats = tm.AggregatedStats();
    EXPECT_EQ(stats.wal_records, 0u);
    EXPECT_EQ(stats.wal_bytes, 0u);
    EXPECT_EQ(tm.wal_writer(), nullptr);
  }

  DynamicGraph durable(kCap, {.weighted = true});
  durable.EnsureVerticesQuiesced(kCap);
  uint64_t durable_seq = 0;
  {
    EmulatedHtm htm;
    TuFast::Config cfg;
    cfg.enable_wal = true;
    cfg.wal_path = wal.path;
    TuFast tm(htm, kCap, cfg);
    ASSERT_NE(tm.wal_writer(), nullptr);
    PumpDeterministicMutations(tm, durable);
    const SchedulerStats stats = tm.AggregatedStats();
    EXPECT_GT(stats.wal_records, 0u);
    EXPECT_EQ(stats.wal_records, tm.wal_writer()->records());
    durable_seq = tm.wal_writer()->durable_seq();
    EXPECT_EQ(durable_seq, tm.wal_writer()->records());
  }

  // Same transactions, same committed state, with or without the log.
  ExpectSameFrozenGraph(plain, durable);

  // And the Config-owned log replays to that same state.
  DynamicGraph rec(kCap, {.weighted = true});
  const WalRecoveryResult res = RecoverFromWal(&rec, wal.path);
  EXPECT_FALSE(res.torn_tail);
  EXPECT_EQ(res.last_seq, durable_seq);
  rec.EnsureVerticesQuiesced(kCap);
  ExpectSameFrozenGraph(durable, rec);
}

}  // namespace
}  // namespace tufast
