// Hot-vertex flat-combining (the `stress` ctest label): enabling the
// combining layer must be invisible in the results. The oracle is
// integer exactness: the batched stress workloads precompute their
// per-vertex increment histogram (and the bank-transfer grand total), so
// "combining on" and "combining off" are both required to land on the
// same exact counters — bit-identical in the integer domain, which is
// the only domain where cross-run identity is even well-defined once
// combining reorders commutative-but-float-sensitive work.
//
// Coverage:
//  * ContentionHistory unit behavior: EWMA rise on aborts, decay on
//    clean attempts, enter/exit hysteresis, bucket hashing;
//  * the full scheduler matrix (7 schedulers x applicable deadlock
//    policies) through MakeCombiningSchedulerFor under combiner chaos
//    (forced slot-full bounces + truncated collect sweeps), plain and
//    stacked on sharding;
//  * deterministic single-worker exactness with every announce forced to
//    fail and with every collect sweep truncated to one op;
//  * composition with enable_mvcc: combining writers + abort-free
//    snapshot readers.

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testing/failpoints.h"
#include "testing/stress_workloads.h"
#include "tm/contention_history.h"

namespace tufast {
namespace {

// ---------------------------------------------------------------------
// ContentionHistory unit behavior.

TEST(ContentionHistoryTest, AbortsHeatARegionExactlyOnce) {
  ContentionHistory history({/*buckets=*/64, /*hot_threshold=*/0.5});
  EXPECT_FALSE(history.IsHot(7));
  int transitions = 0;
  int attempts = 0;
  while (!history.IsHot(7) && attempts < 64) {
    if (history.RecordAttempt(7, /*aborted=*/true)) ++transitions;
    ++attempts;
  }
  ASSERT_TRUE(history.IsHot(7)) << "64 straight aborts must heat the region";
  EXPECT_EQ(transitions, 1) << "became-hot must be reported exactly once";
  EXPECT_GE(history.ScoreOf(7), 0.5);
  EXPECT_EQ(history.HotCount(), 1u);
}

TEST(ContentionHistoryTest, HysteresisHoldsHotPastTheEnterScore) {
  ContentionHistory history({64, 0.5});
  while (!history.IsHot(7)) history.RecordAttempt(7, true);
  // One clean attempt decays the score below the enter threshold, but
  // the hot bit must persist until the score falls below exit (half).
  history.RecordAttempt(7, false);
  EXPECT_TRUE(history.IsHot(7))
      << "a single clean attempt must not flip a hot region cold";
  int attempts = 0;
  while (history.IsHot(7) && attempts < 256) {
    history.RecordAttempt(7, false);
    ++attempts;
  }
  ASSERT_FALSE(history.IsHot(7)) << "sustained clean traffic must cool";
  EXPECT_GT(attempts, 3) << "exit must lag entry (hysteresis band)";
  EXPECT_LT(history.ScoreOf(7), 0.25);
  EXPECT_EQ(history.HotCount(), 0u);
}

TEST(ContentionHistoryTest, ScoreSaturatesAndDecays) {
  ContentionHistory history({64, 0.5});
  for (int i = 0; i < 512; ++i) history.RecordAttempt(3, true);
  const double saturated = history.ScoreOf(3);
  EXPECT_LE(saturated, 1.0);
  history.RecordAttempt(3, false);
  EXPECT_LT(history.ScoreOf(3), saturated) << "clean attempts must decay";
}

TEST(ContentionHistoryTest, BucketsStayInRangeAndAliasedVerticesShareHeat) {
  ContentionHistory history({16, 0.5});
  EXPECT_EQ(history.num_buckets(), 16u);
  for (VertexId v = 0; v < 4096; ++v) {
    EXPECT_LT(history.BucketOf(v), 16u);
  }
  // Heat one vertex; every vertex hashing to the same bucket reads hot —
  // region granularity is the documented contract, not per-vertex truth.
  while (!history.IsHot(5)) history.RecordAttempt(5, true);
  for (VertexId v = 0; v < 4096; ++v) {
    EXPECT_EQ(history.IsHot(v), history.BucketOf(v) == history.BucketOf(5));
  }
}

TEST(ContentionHistoryTest, DegenerateThresholdsAreClamped) {
  // NaN, zero and huge thresholds must still yield a usable history.
  for (const double t : {0.0, -1.0, 7.0, std::nan("")}) {
    ContentionHistory history({8, t});
    for (int i = 0; i < 256; ++i) history.RecordAttempt(1, true);
    EXPECT_TRUE(history.IsHot(1)) << "threshold " << t;
  }
}

// ---------------------------------------------------------------------
// Scheduler-matrix equivalence under combiner chaos.

FailpointPlan::Config CombineChaos(uint64_t seed) {
  FailpointPlan::Config config;
  config.seed = seed;
  config.Arm(FailSite::kHtmStore, 0.02, FailAction::kAbortCapacity);
  config.Arm(FailSite::kHtmLoad, 0.005, FailAction::kAbortConflict);
  config.Arm(FailSite::kHtmCommit, 0.005, FailAction::kAbortConflict);
  config.Arm(FailSite::kRouterSkipH, 0.02, FailAction::kFail);
  config.Arm(FailSite::kLockAcquireExclusive, 0.005, FailAction::kFail);
  config.Arm(FailSite::kCombinerSlotFull, 0.3, FailAction::kFail);
  config.Arm(FailSite::kOwnerHandoff, 0.3, FailAction::kFail);
  return config;
}

template <typename Scheduler>
class CombiningEquivalenceTest : public ::testing::Test {};

using EquivalenceSchedulers = ::testing::Types<
    TuFastScheduler<FaultyHtm>, ShardedTuFastScheduler<FaultyHtm>,
    TwoPhaseLocking<FaultyHtm>, SiloOcc<FaultyHtm>,
    TimestampOrdering<FaultyHtm>, TinyStm<FaultyHtm>, HsyncHybrid<FaultyHtm>,
    HtmTimestampOrdering<FaultyHtm>>;
TYPED_TEST_SUITE(CombiningEquivalenceTest, EquivalenceSchedulers);

// The batched conservation + exactly-once histogram suite must hold on
// every scheduler x applicable policy with the combining configuration
// (hair-trigger threshold, 2-slot cells) and combiner failpoints armed.
// The workloads' precomputed histograms make "on equals off" exact: both
// must equal the same integer oracle.
TYPED_TEST(CombiningEquivalenceTest, BatchedInvariantsHoldWithCombining) {
  using Scheduler = TypeParam;
  std::vector<DeadlockPolicy> policies;
  if constexpr (kSchedulerUsesPolicy<Scheduler, FaultyHtm>) {
    policies = {DeadlockPolicy::kDetection, DeadlockPolicy::kPrevention,
                DeadlockPolicy::kTimeout};
  } else {
    policies = {DeadlockPolicy::kDetection};
  }
  for (const DeadlockPolicy policy : policies) {
    for (const bool sharded : {false, true}) {
      FaultyHtm htm;
      auto tm = MakeCombiningSchedulerFor<Scheduler>(
          htm, /*vertices=*/48, policy, sharded, /*workers=*/3);
      FailpointPlan plan(CombineChaos(/*seed=*/31 + (sharded ? 1 : 0)));
      FailpointScope scope(plan);
      StressConfig cfg;
      cfg.threads = 3;
      cfg.txns_per_thread = 120;
      cfg.vertices = 48;
      cfg.seed = 31;
      cfg.ordered_for_update = policy == DeadlockPolicy::kPrevention;
      const auto err = RunShardedInvariantSuite(*tm, cfg);
      EXPECT_FALSE(err.has_value())
          << (err ? *err : "") << " (sharded=" << sharded << ")";
    }
  }
}

// ---------------------------------------------------------------------
// Deterministic single-worker exactness on TuFast.

using CombiningTuFast = TuFastScheduler<FaultyHtm>;

CombiningTuFast::Config CombiningConfig() {
  CombiningTuFast::Config config;
  config.enable_combining = true;
  config.hot_threshold = 0.1;
  config.combiner_slots = 4;
  config.combine_history_buckets = 64;
  return config;
}

/// Runs `items` single-increment batch items over `targets` on one
/// worker and returns the final counters; the combining runtime is
/// pre-heated for vertices [0, hot_set) so the router announces from the
/// first window (single-worker runs never abort, so heat cannot develop
/// organically).
std::vector<TmWord> RunHistogram(CombiningTuFast& tm, VertexId vertices,
                                 const std::vector<VertexId>& targets,
                                 VertexId hot_set) {
  if (tm.combiner_runtime() != nullptr) {
    for (VertexId v = 0; v < hot_set; ++v) {
      for (int k = 0; k < 64; ++k) {
        tm.combiner_runtime()->history().RecordAttempt(v, true);
      }
    }
  }
  std::vector<TmWord> counters(vertices, 0);
  auto hint = [](uint64_t) -> uint64_t { return 2; };
  auto home = [&](uint64_t k) { return targets[k]; };
  auto body = [&](auto& txn, uint64_t k) {
    const VertexId v = targets[k];
    txn.Write(v, &counters[v], txn.Read(v, &counters[v]) + 1);
  };
  constexpr uint64_t kWindow = 32;
  for (uint64_t lo = 0; lo < targets.size(); lo += kWindow) {
    const uint64_t hi =
        lo + kWindow < targets.size() ? lo + kWindow : targets.size();
    tm.RunBatch(0, lo, hi, hint, home, body);
  }
  return counters;
}

std::vector<VertexId> MixedTargets(VertexId vertices, VertexId hot_set,
                                   uint64_t items, uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> targets;
  targets.reserve(items);
  for (uint64_t i = 0; i < items; ++i) {
    // 60% hot head, 40% cold tail: both router paths in every window.
    const bool hot = rng.NextBounded(10) < 6;
    targets.push_back(
        hot ? static_cast<VertexId>(rng.NextBounded(hot_set))
            : static_cast<VertexId>(hot_set + rng.NextBounded(vertices -
                                                              hot_set)));
  }
  return targets;
}

std::vector<TmWord> ExpectedHistogram(VertexId vertices,
                                      const std::vector<VertexId>& targets) {
  std::vector<TmWord> expected(vertices, 0);
  for (const VertexId v : targets) ++expected[v];
  return expected;
}

TEST(CombiningExactnessTest, OnAndOffLandOnTheSameHistogram) {
  constexpr VertexId kVertices = 48;
  const std::vector<VertexId> targets =
      MixedTargets(kVertices, /*hot_set=*/4, /*items=*/4096, /*seed=*/41);
  const std::vector<TmWord> expected = ExpectedHistogram(kVertices, targets);

  FaultyHtm htm_off;
  CombiningTuFast off(htm_off, kVertices);  // default: combining disabled
  EXPECT_EQ(RunHistogram(off, kVertices, targets, 0), expected);
  EXPECT_EQ(off.AggregatedStats().combined_ops, 0u);
  EXPECT_EQ(off.AggregatedStats().combine_batches, 0u);

  FaultyHtm htm_on;
  CombiningTuFast on(htm_on, kVertices, CombiningConfig());
  EXPECT_EQ(RunHistogram(on, kVertices, targets, /*hot_set=*/4), expected);
  const SchedulerStats stats = on.AggregatedStats();
  EXPECT_GT(stats.combined_ops, 0u) << "pre-heated head must combine";
  EXPECT_GT(stats.combine_batches, 0u);
  EXPECT_EQ(stats.commits, targets.size())
      << "every item commits exactly once, combined or cold";
}

TEST(CombiningExactnessTest, ForcedSlotFullFallsBackWithoutLoss) {
  constexpr VertexId kVertices = 48;
  const std::vector<VertexId> targets =
      MixedTargets(kVertices, 4, 2048, /*seed=*/42);

  FaultyHtm htm;
  CombiningTuFast tm(htm, kVertices, CombiningConfig());
  FailpointPlan::Config pc;
  pc.seed = 42;
  pc.Arm(FailSite::kCombinerSlotFull, 1.0, FailAction::kFail);
  FailpointPlan plan(pc);
  FailpointScope scope(plan);
  EXPECT_EQ(RunHistogram(tm, kVertices, targets, 4),
            ExpectedHistogram(kVertices, targets));
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.combined_ops, 0u)
      << "every announce was forced to fail; nothing may combine";
  EXPECT_GT(stats.combine_slot_full, 0u);
  EXPECT_EQ(stats.commits, targets.size());
}

TEST(CombiningExactnessTest, ForcedOwnerHandoffStillAppliesEveryOp) {
  constexpr VertexId kVertices = 48;
  const std::vector<VertexId> targets =
      MixedTargets(kVertices, 4, 2048, /*seed=*/43);

  FaultyHtm htm;
  CombiningTuFast tm(htm, kVertices, CombiningConfig());
  FailpointPlan::Config pc;
  pc.seed = 43;
  pc.Arm(FailSite::kOwnerHandoff, 1.0, FailAction::kFail);
  FailpointPlan plan(pc);
  FailpointScope scope(plan);
  EXPECT_EQ(RunHistogram(tm, kVertices, targets, 4),
            ExpectedHistogram(kVertices, targets));
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_GT(stats.combined_ops, 0u);
  // Truncated sweeps take one op at a time, so batches outnumber a
  // clean run's; every op still applies exactly once (histogram above).
  EXPECT_GE(stats.combine_batches, stats.combined_ops)
      << "one-op sweeps: at least one batch per combined op";
  EXPECT_EQ(stats.commits, targets.size());
}

// ---------------------------------------------------------------------
// Composition with MVCC snapshot reads.

TEST(CombiningMvccTest, SnapshotReadersStayAbortFreeOverCombiningWriters) {
  constexpr VertexId kVertices = 48;
  FaultyHtm htm;
  CombiningTuFast::Config config = CombiningConfig();
  config.enable_mvcc = true;
  CombiningTuFast tm(htm, kVertices, config);
  FailpointPlan plan(CombineChaos(/*seed=*/44));
  FailpointScope scope(plan);

  StressConfig cfg;
  cfg.threads = 3;
  cfg.txns_per_thread = 150;
  cfg.vertices = kVertices;
  cfg.seed = 44;
  auto err = RunShardedBatchExactlyOnce(tm, cfg);
  if (!err) err = RunMvccSnapshotSuite(tm, cfg);
  EXPECT_FALSE(err.has_value()) << (err ? *err : "");
}

}  // namespace
}  // namespace tufast
