// Unit tests for the batch execution engine (tm/batch_executor.h +
// TuFastScheduler::RunBatch): group-commit fusion of consecutive small
// H transactions, capacity-aware bisection on abort, degradation to the
// per-item router at width 1, the adaptive fusion-width controller, and
// the fused-commit accounting parity between SchedulerStats and
// telemetry that the fig15 cross-check relies on.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"
#include "testing/failpoints.h"
#include "tm/batch_executor.h"
#include "tm/scheduler_2pl.h"
#include "tm/telemetry.h"
#include "tm/tufast.h"

namespace tufast {
namespace {

constexpr VertexId kVertices = 256;

/// Drives `RunBatch` over [0, n) where item i increments values[i] once.
template <typename Scheduler>
void IncrementBatch(Scheduler& tm, std::vector<TmWord>& values, uint64_t n,
                    uint64_t hint = 2) {
  RunBatch(
      tm, /*worker_id=*/0, 0, n, [hint](uint64_t) { return hint; },
      [&](auto& txn, uint64_t i) {
        const VertexId v = static_cast<VertexId>(i);
        txn.Write(v, &values[v], txn.Read(v, &values[v]) + 1);
      });
}

TEST(BatchExecutorTest, FusedBatchCommitsEveryItemExactlyOnce) {
  EmulatedHtm htm;
  TuFast tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 64);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(values[v], 1u) << "vertex " << v;
  }
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 64u);  // One logical commit per item.
  EXPECT_GT(stats.fused_regions, 0u);
  EXPECT_GT(stats.fused_items, 0u);
  EXPECT_EQ(stats.fusion_aborts, 0u);
}

TEST(BatchExecutorTest, NonFusionSchedulerFallsBackToPerItemRun) {
  // The free-function RunBatch must accept any scheduler; ones without a
  // RunBatch member (all six baselines) get per-item Run semantics.
  EmulatedHtm htm;
  TwoPhaseLocking<EmulatedHtm> tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 64);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(values[v], 1u) << "vertex " << v;
  }
}

TEST(BatchExecutorTest, FusionDisabledRoutesPerItem) {
  EmulatedHtm htm;
  TuFast::Config config;
  config.enable_fusion = false;
  TuFast tm(htm, kVertices, config);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 64);
  for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(values[v], 1u);
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 64u);
  EXPECT_EQ(stats.fused_regions, 0u);
  EXPECT_EQ(stats.fused_items, 0u);
}

TEST(BatchExecutorTest, FixedWidthPacksExactRegions) {
  EmulatedHtm htm;
  TuFast::Config config;
  config.fixed_fusion_width = 8;
  TuFast tm(htm, kVertices, config);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 64);
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 64u);
  EXPECT_EQ(stats.fused_regions, 8u);  // 64 items / width 8.
  EXPECT_EQ(stats.fused_items, 64u);
}

TEST(BatchExecutorTest, OversizedHintsAreNotFused) {
  // Items above the H hint threshold route straight to the per-item
  // router (O/L); fusing them would guarantee capacity aborts.
  EmulatedHtm htm;
  TuFast tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 16, /*hint=*/tm.h_hint_threshold() + 1);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(values[v], 1u);
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 16u);
  EXPECT_EQ(stats.fused_regions, 0u);
}

TEST(BatchExecutorTest, BudgetCapsFusionWidth) {
  // Cumulative size hints within one fused region must stay inside the
  // H capacity budget: items of hint = threshold/2 can pack at most 2.
  EmulatedHtm htm;
  TuFast::Config config;
  config.fixed_fusion_width = 16;
  TuFast tm(htm, kVertices, config);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 8, /*hint=*/tm.h_hint_threshold() / 2);
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 8u);
  EXPECT_EQ(stats.fused_regions, 4u);  // Pairs, despite fixed width 16.
  EXPECT_EQ(stats.fused_items, 8u);
}

TEST(BatchExecutorTest, StatsAndTelemetryAgreeOnFusedCommits) {
  // The fig15 cross-check invariant: per-class commit counts and ops in
  // SchedulerStats and EventTelemetry must match on the fused path.
  EmulatedHtm htm;
  TuFastInstrumented tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 64);
  const SchedulerStats stats = tm.AggregatedStats();
  const TelemetrySnapshot& snap = tm.AggregatedTelemetry().Snapshot();
  for (int c = 0; c < kNumTxnClasses; ++c) {
    EXPECT_EQ(stats.class_count[c], snap.commits[c]) << "class " << c;
    EXPECT_EQ(stats.class_ops[c], snap.commit_ops[c]) << "class " << c;
  }
  EXPECT_EQ(stats.fused_regions, snap.fused_regions);
  EXPECT_EQ(stats.fused_items, snap.fused_items);
  EXPECT_EQ(snap.fusion_aborts, 0u);
  EXPECT_GT(snap.fusion_width_hist.count(), 0u);
}

TEST(BatchExecutorTest, ForcedCapacityAbortBisectsAndCommitsAll) {
  // Force a capacity abort on the 8th transactional store of worker 0 —
  // mid-way through the first 16-wide fused region. The executor must
  // bisect (16 -> 8+8), re-execute, and commit every item exactly once.
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm, EventTelemetry>::Config config;
  config.fixed_fusion_width = 16;
  TuFastScheduler<FaultyHtm, EventTelemetry> tm(htm, kVertices, config);
  std::vector<TmWord> values(kVertices, 0);
  FailpointPlan plan(FailpointPlan::Config{});
  plan.ForceAt(FailSite::kHtmStore, /*slot=*/0, /*hit_index=*/7,
               FailAction::kAbortCapacity);
  {
    FailpointScope scope(plan);
    IncrementBatch(tm, values, 16);
  }
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(values[v], 1u) << "vertex " << v;
  }
  const SchedulerStats stats = tm.AggregatedStats();
  EXPECT_EQ(stats.commits, 16u);
  EXPECT_EQ(stats.fusion_aborts, 1u);
  EXPECT_GE(stats.fusion_bisections, 1u);
  EXPECT_EQ(stats.fused_regions, 2u);  // Two 8-wide halves committed.
  EXPECT_EQ(stats.fused_items, 16u);
  const TelemetrySnapshot& snap = tm.AggregatedTelemetry().Snapshot();
  EXPECT_EQ(snap.fusion_aborts, 1u);
  EXPECT_GE(snap.bisection_depth_hist.max(), 1u);  // Committed at depth 1.
}

TEST(BatchExecutorTest, PersistentCapacityAbortsDegradeToPerItemRouter) {
  // A hostile plan that capacity-aborts ~30% of transactional stores:
  // fused attempts keep failing, bisection must bottom out at width 1
  // where the per-item router's own H -> O -> L fallback guarantees
  // progress. The run must terminate (no livelock) with every item
  // committed exactly once.
  FaultyHtm htm;
  TuFastScheduler<FaultyHtm> tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  FailpointPlan::Config plan_config;
  plan_config.seed = 11;
  plan_config.Arm(FailSite::kHtmStore, 0.3, FailAction::kAbortCapacity);
  FailpointPlan plan(plan_config);
  {
    FailpointScope scope(plan);
    IncrementBatch(tm, values, 128);
  }
  for (VertexId v = 0; v < 128; ++v) {
    EXPECT_EQ(values[v], 1u) << "vertex " << v;
  }
  EXPECT_EQ(tm.AggregatedStats().commits, 128u);
  EXPECT_GT(plan.InjectionCount(), 0u);
}

TEST(BatchExecutorTest, AdaptiveWidthShrinksUnderFusedAborts) {
  ContentionMonitor monitor;
  EXPECT_EQ(monitor.CurrentFusionWidth(16), 16u);  // No signal: go wide.
  // Every 2-wide attempt aborts: per-item abort probability 1/2, whose
  // P* = -1/ln(0.5) ~ 1.44 rounds down to width 1 — fuse nothing.
  for (int i = 0; i < 2000; ++i) {
    monitor.RecordFusedAttempt(/*items=*/2, /*aborted=*/true);
  }
  EXPECT_EQ(monitor.CurrentFusionWidth(16), 1u);
  EXPECT_GT(monitor.EstimatedItemP(), 0.05);
  // Wider failing attempts imply a lower per-item p, so the width floor
  // rises with the attempt width (P* of p = 1/8 is ~7): the controller
  // distinguishes "every region dies" from "every item dies".
  ContentionMonitor wide;
  for (int i = 0; i < 2000; ++i) {
    wide.RecordFusedAttempt(/*items=*/8, /*aborted=*/true);
  }
  EXPECT_GT(wide.CurrentFusionWidth(16), 1u);
  EXPECT_LT(wide.CurrentFusionWidth(16), 16u);
}

TEST(BatchExecutorTest, AdaptiveWidthRecoversWhenAbortsStop) {
  ContentionMonitor monitor;
  for (int i = 0; i < 200; ++i) {
    monitor.RecordFusedAttempt(/*items=*/8, /*aborted=*/true);
  }
  const uint32_t hot = monitor.CurrentFusionWidth(16);
  for (int i = 0; i < 5000; ++i) {
    monitor.RecordFusedAttempt(/*items=*/8, /*aborted=*/false);
  }
  EXPECT_GT(monitor.CurrentFusionWidth(16), hot);
  EXPECT_EQ(monitor.CurrentFusionWidth(1), 1u);  // Clamp floor.
}

TEST(BatchExecutorTest, ZeroItemAttemptCountsAsOne) {
  ContentionMonitor monitor;
  monitor.RecordFusedAttempt(0, true);  // Must not divide by zero.
  EXPECT_GE(monitor.EstimatedItemP(), 0.0);
  EXPECT_LE(monitor.EstimatedItemP(), 1.0);
  EXPECT_GE(monitor.CurrentFusionWidth(16), 1u);
}

TEST(BatchExecutorTest, EmptyAndSingleItemBatches) {
  EmulatedHtm htm;
  TuFast tm(htm, kVertices);
  std::vector<TmWord> values(kVertices, 0);
  IncrementBatch(tm, values, 0);  // Empty range: no-op.
  EXPECT_EQ(tm.AggregatedStats().commits, 0u);
  IncrementBatch(tm, values, 1);  // Width 1: per-item semantics.
  EXPECT_EQ(values[0], 1u);
  EXPECT_EQ(tm.AggregatedStats().commits, 1u);
  EXPECT_EQ(tm.AggregatedStats().fused_regions, 0u);
}

}  // namespace
}  // namespace tufast
