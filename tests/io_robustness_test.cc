// Graph I/O robustness: long edge-list lines (the fgets-split bug),
// corrupt binary headers/bodies, and SaveBinary/LoadBinary round-trips
// over the shapes that exercise the format's edge cases.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace tufast {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
            contents.size());
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Edge-list lines longer than any internal read buffer. Pre-fix, fgets
// split such lines into several: the tail re-parsed as fresh lines
// (misparse or phantom "malformed line" errors with wrong numbers).

TEST(EdgeListLongLines, PaddedLineParsesAsOneEdge) {
  const std::string path = TempPath("long_pad.txt");
  // One logical line, way past any fixed buffer: "5 <600 spaces> 6".
  WriteFile(path, "0 1\n5" + std::string(600, ' ') + "6\n2 3\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumEdges(), 3u);
  EXPECT_EQ(loaded.value().NumVertices(), 7u);  // Max id 6.
  EXPECT_EQ(loaded.value().OutNeighbors(5)[0], 6u);
  std::remove(path.c_str());
}

TEST(EdgeListLongLines, LeadingWhitespaceBeyondBufferStillParses) {
  const std::string path = TempPath("long_lead.txt");
  WriteFile(path, std::string(700, ' ') + "7 8\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumEdges(), 1u);
  EXPECT_EQ(loaded.value().OutNeighbors(7)[0], 8u);
  std::remove(path.c_str());
}

TEST(EdgeListLongLines, LongWeightedLineKeepsTheWeight) {
  const std::string path = TempPath("long_weight.txt");
  WriteFile(path, "1" + std::string(400, ' ') + "2" +
                      std::string(400, ' ') + "42\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().HasWeights());
  EXPECT_EQ(loaded.value().OutWeights(1)[0], 42u);
  std::remove(path.c_str());
}

TEST(EdgeListLongLines, MalformedLineAfterLongLineReportsCorrectNumber) {
  const std::string path = TempPath("long_then_bad.txt");
  // Pre-fix, the 600-byte line counted as several, shifting the number
  // that line 3's error reported.
  WriteFile(path,
            "0 1\n2" + std::string(600, ' ') + "3\nnot an edge\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("line 3"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(EdgeListLongLines, AbsurdlyLongLineIsRejectedNotBuffered) {
  const std::string path = TempPath("line_bomb.txt");
  WriteFile(path, "0 1\n" + std::string((1u << 20) + 512, '9') + "\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corrupt binary files: the header must be validated against the actual
// file size BEFORE any allocation happens.

constexpr uint64_t kMagic = 0x7475466173744731ULL;  // "tuFastG1" (legacy)

std::string PackU64(std::initializer_list<uint64_t> words) {
  std::string out;
  for (const uint64_t w : words) {
    out.append(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  return out;
}

std::string PackU32(std::initializer_list<uint32_t> words) {
  std::string out;
  for (const uint32_t w : words) {
    out.append(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  return out;
}

TEST(BinaryGraphCorruption, HugeHeaderCountsRejectedBeforeAllocation) {
  const std::string path = TempPath("huge_header.bin");
  // Claims ~2^48 vertices / 2^50 edges with an empty body: pre-fix this
  // tried to allocate multi-TB vectors (bad_alloc at best).
  WriteFile(path, PackU64({kMagic, uint64_t{1} << 48, uint64_t{1} << 50, 0}));
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("inconsistent"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(BinaryGraphCorruption, BodySizeMismatchRejected) {
  const std::string path = TempPath("short_body.bin");
  // Header says 10 vertices / 20 edges; body holds only 3 words.
  WriteFile(path, PackU64({kMagic, 10, 20, 0}) + PackU64({0, 0, 0}));
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryGraphCorruption, NonMonotonicOffsetsRejected) {
  const std::string path = TempPath("nonmono.bin");
  // n=2, m=2, offsets {0, 3, 2}: ends at m but dips mid-way.
  WriteFile(path, PackU64({kMagic, 2, 2, 0}) + PackU64({0, 3, 2}) +
                      PackU32({0, 1}));
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("non-monotonic"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(BinaryGraphCorruption, OutOfRangeTargetRejected) {
  const std::string path = TempPath("bad_target.bin");
  // n=2, m=1, offsets {0, 1, 1}, target 5 >= n.
  WriteFile(path, PackU64({kMagic, 2, 1, 0}) + PackU64({0, 1, 1}) +
                      PackU32({5}));
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryGraphCorruption, BadWeightedFlagRejected) {
  const std::string path = TempPath("bad_flag.bin");
  WriteFile(path, PackU64({kMagic, 1, 0, 7}) + PackU64({0, 0}));
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Version-2 checksum footer: a current SaveBinary file must detect any
// bit flip or truncation at load; version-1 files (no footer) must keep
// loading, unchecked, for old caches.

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::string out(static_cast<size_t>(std::ftell(f)), '\0');
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

TEST(BinaryChecksum, LegacyV1FileStillLoads) {
  const std::string path = TempPath("legacy_v1.bin");
  // A valid version-1 file, written by hand: no CRC footer at all.
  WriteFile(path, PackU64({kMagic, 2, 2, 0}) + PackU64({0, 1, 2}) +
                      PackU32({1, 0}));
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumVertices(), 2u);
  EXPECT_EQ(loaded.value().OutNeighbors(0)[0], 1u);
  EXPECT_EQ(loaded.value().OutNeighbors(1)[0], 0u);
  std::remove(path.c_str());
}

TEST(BinaryChecksum, BitFlipInBodyRejected) {
  const std::string path = TempPath("flip_body.bin");
  const Graph g = GenerateErdosRenyi(200, 1000, 7, /*weighted=*/false);
  ASSERT_TRUE(SaveBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  // Flip one bit in the middle of the targets array. The size checks and
  // CSR validation can't see this; only the checksum can.
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFile(path, bytes);
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(BinaryChecksum, BitFlipInWeightsRejected) {
  const std::string path = TempPath("flip_weights.bin");
  const Graph g = GenerateErdosRenyi(100, 500, 11, /*weighted=*/true);
  ASSERT_TRUE(SaveBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  // Last body byte before the 4-byte footer lands in the weights array —
  // a corrupt weight is invisible to every structural check.
  bytes[bytes.size() - 5] ^= 0x01;
  WriteFile(path, bytes);
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BinaryChecksum, TruncatedFileRejected) {
  const std::string path = TempPath("truncated_v2.bin");
  const Graph g = GenerateErdosRenyi(200, 1000, 9, /*weighted=*/true);
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const std::string bytes = ReadFile(path);
  // Every truncation point must fail cleanly: mid-footer, exactly at the
  // footer boundary (body intact, checksum gone), and mid-body.
  for (const size_t keep :
       {bytes.size() - 1, bytes.size() - 4, bytes.size() / 2}) {
    WriteFile(path, bytes.substr(0, keep));
    auto loaded = LoadBinary(path);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(BinaryChecksum, FlippedHeaderCountCaughtBySizeOrChecksum) {
  const std::string path = TempPath("flip_header.bin");
  const Graph g = GenerateErdosRenyi(64, 256, 3, /*weighted=*/false);
  ASSERT_TRUE(SaveBinary(g, path).ok());
  std::string bytes = ReadFile(path);
  bytes[8] ^= 0x01;  // Low byte of the vertex count.
  WriteFile(path, bytes);
  auto loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Round-trips over the format's edge-case shapes.

void ExpectRoundTrip(const Graph& g, const std::string& name) {
  const std::string path = TempPath(name);
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().offsets(), g.offsets());
  EXPECT_EQ(loaded.value().targets(), g.targets());
  EXPECT_EQ(loaded.value().weights(), g.weights());
  std::remove(path.c_str());
}

TEST(BinaryRoundTrip, WeightedGraph) {
  ExpectRoundTrip(GenerateErdosRenyi(500, 3000, 13, /*weighted=*/true),
                  "rt_weighted.bin");
}

TEST(BinaryRoundTrip, ZeroEdgeGraph) {
  GraphBuilder builder(64);
  const Graph g = builder.Build();
  ASSERT_EQ(g.NumEdges(), 0u);
  ExpectRoundTrip(g, "rt_zero_edges.bin");
}

TEST(BinaryRoundTrip, EmptyGraph) {
  GraphBuilder builder(0);
  ExpectRoundTrip(builder.Build(), "rt_empty.bin");
}

TEST(BinaryRoundTrip, IsolatedTrailingVertices) {
  // Edges touch only ids 0..2; vertices 3..5 exist solely through the
  // offsets array — exactly what a sloppy loader drops.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const Graph g = builder.Build();
  ASSERT_EQ(g.NumVertices(), 6u);
  const std::string path = TempPath("rt_trailing.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumVertices(), 6u);
  EXPECT_EQ(loaded.value().OutDegree(5), 0u);
  EXPECT_EQ(loaded.value().offsets(), g.offsets());
  EXPECT_EQ(loaded.value().targets(), g.targets());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tufast
