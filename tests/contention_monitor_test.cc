// Edge-case unit tests for OptimalPeriod (paper §IV-D): the closed-form
// P* = -1/ln(1-p) must degrade gracefully at p -> 0, p -> 1, on NaN
// input, and when the rounded optimum lands on a clamp boundary — the
// double -> uint32 cast must never see an out-of-range value (UB).

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tm/contention_monitor.h"

namespace tufast {
namespace {

constexpr uint32_t kMin = 100;
constexpr uint32_t kMax = 2048;

TEST(OptimalPeriodTest, ZeroProbabilityMeansMaxPeriod) {
  EXPECT_EQ(OptimalPeriod(0.0, kMin, kMax), kMax);
  EXPECT_EQ(OptimalPeriod(-0.0, kMin, kMax), kMax);
  EXPECT_EQ(OptimalPeriod(-1.0, kMin, kMax), kMax);  // Clamped below.
}

TEST(OptimalPeriodTest, CertainAbortMeansMinPeriod) {
  EXPECT_EQ(OptimalPeriod(1.0, kMin, kMax), kMin);
  EXPECT_EQ(OptimalPeriod(2.0, kMin, kMax), kMin);  // Clamped above.
}

TEST(OptimalPeriodTest, ApproachingZeroClampsToMaxWithoutOverflow) {
  // p = 1e-12 gives P* ~ 1e12, far beyond uint32 range: the clamp must
  // happen in double space before any cast.
  EXPECT_EQ(OptimalPeriod(1e-12, kMin, kMax), kMax);
  EXPECT_EQ(OptimalPeriod(std::numeric_limits<double>::min(), kMin, kMax),
            kMax);
  EXPECT_EQ(OptimalPeriod(std::numeric_limits<double>::denorm_min(), kMin,
                          kMax),
            kMax);
  // Even with an absurd max_period close to uint32's range.
  EXPECT_EQ(OptimalPeriod(1e-15, 1, ~uint32_t{0}), ~uint32_t{0});
}

TEST(OptimalPeriodTest, ApproachingOneClampsToMin) {
  EXPECT_EQ(OptimalPeriod(0.999999, kMin, kMax), kMin);
  EXPECT_EQ(OptimalPeriod(std::nextafter(1.0, 0.0), kMin, kMax), kMin);
}

TEST(OptimalPeriodTest, NanIsTreatedAsNoSignal) {
  EXPECT_EQ(OptimalPeriod(std::nan(""), kMin, kMax), kMax);
  EXPECT_EQ(OptimalPeriod(std::numeric_limits<double>::quiet_NaN(), kMin,
                          kMax),
            kMax);
}

TEST(OptimalPeriodTest, InteriorValueMatchesClosedForm) {
  // p = 0.005: P* = -1/ln(0.995) ~ 199.5 -> rounds to 200 (banker's
  // rounding via nearbyint in the default rounding mode).
  const double p = 0.005;
  const uint32_t period = OptimalPeriod(p, kMin, kMax);
  const double p_star = -1.0 / std::log1p(-p);
  EXPECT_EQ(period, static_cast<uint32_t>(std::nearbyint(p_star)));
  EXPECT_GE(period, kMin);
  EXPECT_LE(period, kMax);
}

TEST(OptimalPeriodTest, RoundingAtClampBoundaries) {
  // Find the p whose optimum is exactly min_period: P* = kMin requires
  // ln(1-p) = -1/kMin, i.e. p = 1 - exp(-1/kMin). Slightly larger p must
  // clamp to kMin, slightly smaller must stay above it.
  const double boundary_p = 1.0 - std::exp(-1.0 / kMin);
  EXPECT_EQ(OptimalPeriod(boundary_p * 1.01, kMin, kMax), kMin);
  EXPECT_GT(OptimalPeriod(boundary_p * 0.5, kMin, kMax), kMin);

  const double max_boundary_p = 1.0 - std::exp(-1.0 / kMax);
  EXPECT_EQ(OptimalPeriod(max_boundary_p * 0.99, kMin, kMax), kMax);
  EXPECT_LT(OptimalPeriod(max_boundary_p * 2.0, kMin, kMax), kMax);
}

TEST(OptimalPeriodTest, MonotoneNonIncreasingInP) {
  uint32_t prev = ~uint32_t{0};
  for (double p = 1e-6; p < 1.0; p *= 1.7) {
    const uint32_t period = OptimalPeriod(p, kMin, kMax);
    EXPECT_LE(period, prev) << "p=" << p;
    prev = period;
  }
}

TEST(ContentionMonitorEdgeTest, FreshMonitorUsesInitialP) {
  ContentionMonitor monitor;
  EXPECT_EQ(monitor.CurrentPeriod(), monitor.config().max_period);

  ContentionMonitor::Config pessimistic;
  pessimistic.initial_p = 1.0;
  ContentionMonitor hot(pessimistic);
  EXPECT_EQ(hot.CurrentPeriod(), pessimistic.min_period);
}

TEST(ContentionMonitorEdgeTest, AllAbortsDriveToMinPeriod) {
  ContentionMonitor monitor;
  for (int i = 0; i < 5000; ++i) monitor.RecordAttempt(1, true);
  EXPECT_EQ(monitor.CurrentPeriod(), monitor.config().min_period);
  EXPECT_GT(monitor.EstimatedP(), 0.5);
}

TEST(ContentionMonitorEdgeTest, ZeroOpsAttemptIsCountedAsOne) {
  ContentionMonitor monitor;
  monitor.RecordAttempt(0, true);  // Must not divide by zero / go NaN.
  EXPECT_FALSE(std::isnan(monitor.EstimatedP()));
  EXPECT_GE(monitor.CurrentPeriod(), monitor.config().min_period);
  EXPECT_LE(monitor.CurrentPeriod(), monitor.config().max_period);
}

}  // namespace
}  // namespace tufast
