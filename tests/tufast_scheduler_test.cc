// Core TuFast scheduler tests: routing across H/O/L, commit semantics in
// each mode, user aborts, capacity escalation, deadlock resolution, and
// multi-threaded invariant preservation.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"
#include "tm/tufast.h"

namespace tufast {
namespace {

class TuFastTest : public ::testing::Test {
 protected:
  static constexpr VertexId kVertices = 1024;
  EmulatedHtm htm_;
  TuFast tm_{htm_, kVertices};
  std::vector<TmWord> data_ = std::vector<TmWord>(kVertices, 0);
};

TEST_F(TuFastTest, SmallTransactionCommitsInHMode) {
  const RunOutcome outcome = tm_.Run(0, /*size_hint=*/2, [&](auto& txn) {
    const TmWord v = txn.Read(3, &data_[3]);
    txn.Write(3, &data_[3], v + 1);
  });
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(outcome.cls, TxnClass::kH);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[3]), 1u);
  const SchedulerStats stats = tm_.AggregatedStats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.class_count[static_cast<int>(TxnClass::kH)], 1u);
}

TEST_F(TuFastTest, LargeHintRoutesDirectlyToLockMode) {
  const RunOutcome outcome =
      tm_.Run(0, tm_.config().o_hint_threshold + 1, [&](auto& txn) {
        txn.Write(7, &data_[7], 42);
      });
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(outcome.cls, TxnClass::kL);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[7]), 42u);
}

TEST_F(TuFastTest, MediumHintRoutesToOMode) {
  const RunOutcome outcome =
      tm_.Run(0, tm_.h_hint_threshold() + 1, [&](auto& txn) {
        const TmWord v = txn.Read(5, &data_[5]);
        txn.Write(5, &data_[5], v + 9);
      });
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(outcome.cls, TxnClass::kO);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[5]), 9u);
}

TEST_F(TuFastTest, UserAbortIsFinalAndDiscardsWrites) {
  for (const uint64_t hint :
       {uint64_t{1}, tm_.h_hint_threshold() + 1,
        tm_.config().o_hint_threshold + 1}) {
    int invocations = 0;
    const RunOutcome outcome = tm_.Run(0, hint, [&](auto& txn) {
      ++invocations;
      txn.Write(1, &data_[1], 99);
      txn.Abort();
    });
    EXPECT_FALSE(outcome.committed);
    EXPECT_EQ(invocations, 1) << "user abort must not be retried";
    EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[1]), 0u);
  }
}

TEST_F(TuFastTest, ReadOwnWriteInAllModes) {
  for (const uint64_t hint :
       {uint64_t{1}, tm_.h_hint_threshold() + 1,
        tm_.config().o_hint_threshold + 1}) {
    const RunOutcome outcome = tm_.Run(0, hint, [&](auto& txn) {
      txn.Write(2, &data_[2], 1234);
      EXPECT_EQ(txn.Read(2, &data_[2]), 1234u);
      txn.Write(2, &data_[2], 5678);
      EXPECT_EQ(txn.Read(2, &data_[2]), 5678u);
    });
    EXPECT_TRUE(outcome.committed);
    EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[2]), 5678u);
    data_[2] = 0;
  }
}

TEST_F(TuFastTest, CapacityOverflowEscalatesFromHToO) {
  // Hint says "small" but the body touches far more lines than the L1
  // model admits: H aborts with capacity and must NOT retry H; O mode
  // (software read set, bounded segments) commits it.
  const uint32_t lines = htm_.config().MaxLines();
  ASSERT_LT(lines * 8, data_.size() * 8);  // enough data words
  std::vector<TmWord> big(lines * 8 * 2, 1);
  const RunOutcome outcome = tm_.Run(0, /*size_hint=*/1, [&](auto& txn) {
    TmWord sum = 0;
    for (size_t i = 0; i < big.size(); i += 8) {
      sum += txn.Read(static_cast<VertexId>(i % kVertices), &big[i]);
    }
    txn.Write(0, &data_[0], sum);
  });
  EXPECT_TRUE(outcome.committed);
  EXPECT_TRUE(outcome.cls == TxnClass::kO || outcome.cls == TxnClass::kOPlus);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[0]), big.size() / 8);
  const SchedulerStats stats = tm_.AggregatedStats();
  EXPECT_GE(stats.capacity_aborts, 1u);
}

TEST_F(TuFastTest, DoubleHelpersRoundTrip) {
  std::vector<double> values(kVertices, 0.0);
  const RunOutcome outcome = tm_.Run(0, 2, [&](auto& txn) {
    txn.WriteDouble(4, &values[4], 0.15);
    const double x = txn.ReadDouble(4, &values[4]);
    txn.WriteDouble(4, &values[4], x * 2);
  });
  EXPECT_TRUE(outcome.committed);
  EXPECT_DOUBLE_EQ(values[4], 0.30);
}

TEST_F(TuFastTest, ConcurrentTransfersPreserveTotal) {
  constexpr int kThreads = 4;
  constexpr int kTransfersEach = 800;
  constexpr TmWord kInitial = 1000;
  for (auto& d : data_) d = kInitial;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kTransfersEach; ++i) {
        const VertexId from = static_cast<VertexId>(rng.NextBounded(64));
        VertexId to = static_cast<VertexId>(rng.NextBounded(63));
        if (to >= from) ++to;
        // Mix modes by varying the hint.
        const uint64_t hint = (i % 3 == 0) ? tm_.h_hint_threshold() + 1
                              : (i % 7 == 0)
                                  ? tm_.config().o_hint_threshold + 1
                                  : 2;
        tm_.Run(t, hint, [&](auto& txn) {
          const TmWord a = txn.Read(from, &data_[from]);
          const TmWord b = txn.Read(to, &data_[to]);
          txn.Write(from, &data_[from], a - 1);
          txn.Write(to, &data_[to], b + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  TmWord total = 0;
  for (VertexId v = 0; v < 64; ++v) total += EmulatedHtm::NonTxLoad(&data_[v]);
  EXPECT_EQ(total, 64 * kInitial);
  const SchedulerStats stats = tm_.AggregatedStats();
  EXPECT_EQ(stats.commits,
            static_cast<uint64_t>(kThreads) * kTransfersEach);
}

TEST_F(TuFastTest, OppositeOrderLockTransactionsResolveDeadlock) {
  constexpr int kRounds = 300;
  const uint64_t l_hint = tm_.config().o_hint_threshold + 1;
  std::thread t1([&] {
    for (int i = 0; i < kRounds; ++i) {
      tm_.Run(0, l_hint, [&](auto& txn) {
        const TmWord a = txn.Read(10, &data_[10]);
        txn.Write(11, &data_[11], a + 1);
        txn.Write(10, &data_[10], a + 1);
      });
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < kRounds; ++i) {
      tm_.Run(1, l_hint, [&](auto& txn) {
        const TmWord b = txn.Read(11, &data_[11]);
        txn.Write(10, &data_[10], b + 1);
        txn.Write(11, &data_[11], b + 1);
      });
    }
  });
  t1.join();
  t2.join();
  const SchedulerStats stats = tm_.AggregatedStats();
  EXPECT_EQ(stats.commits, 2u * kRounds);  // Every transaction finished.
}

TEST_F(TuFastTest, StatsClassBreakdownIsConsistent) {
  for (int i = 0; i < 50; ++i) {
    const uint64_t hint = (i % 2 == 0) ? 1 : tm_.h_hint_threshold() + 1;
    tm_.Run(0, hint, [&](auto& txn) {
      const TmWord v = txn.Read(9, &data_[9]);
      txn.Write(9, &data_[9], v + 1);
    });
  }
  const SchedulerStats stats = tm_.AggregatedStats();
  uint64_t class_total = 0, class_ops = 0;
  for (int c = 0; c < static_cast<int>(TxnClass::kNumClasses); ++c) {
    class_total += stats.class_count[c];
    class_ops += stats.class_ops[c];
  }
  EXPECT_EQ(class_total, stats.commits);
  EXPECT_EQ(class_ops, stats.ops_committed);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&data_[9]), 50u);
}

TEST(ContentionMonitorTest, OptimalPeriodMatchesAnalyticFormula) {
  // P* = -1/ln(1-p): spot-check against directly maximizing (1-p)^P * P.
  for (const double p : {0.001, 0.005, 0.01, 0.05}) {
    const uint32_t p_star = OptimalPeriod(p, 1, 1u << 20);
    auto expected_work = [p](uint32_t period) {
      return std::pow(1.0 - p, period) * period;
    };
    EXPECT_GE(expected_work(p_star), expected_work(p_star * 2) * 0.999);
    EXPECT_GE(expected_work(p_star), expected_work(p_star / 2) * 0.999);
  }
  EXPECT_EQ(OptimalPeriod(0.0, 100, 2048), 2048u);
  EXPECT_EQ(OptimalPeriod(1.0, 100, 2048), 100u);
}

TEST(ContentionMonitorTest, AdaptsPeriodToObservedAborts) {
  ContentionMonitor monitor;
  EXPECT_EQ(monitor.CurrentPeriod(), monitor.config().max_period);
  // Sustained aborts shrink the period.
  for (int i = 0; i < 200; ++i) monitor.RecordAttempt(50, /*aborted=*/true);
  const uint32_t contended = monitor.CurrentPeriod();
  EXPECT_LT(contended, monitor.config().max_period);
  // A calm phase grows it back.
  for (int i = 0; i < 5000; ++i) monitor.RecordAttempt(50, /*aborted=*/false);
  EXPECT_GT(monitor.CurrentPeriod(), contended);
}

}  // namespace
}  // namespace tufast
