// Deeper emulated-HTM semantics: cache-line granularity (false sharing),
// word-level write buffering within lines, segment/write interactions,
// and stats accounting — the properties the TuFast modes rely on beyond
// the basics covered in htm_emulated_test.cc.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "htm/emulated_htm.h"

namespace tufast {
namespace {

TEST(HtmSemantics, FalseSharingWithinOneLineConflicts) {
  // Two transactions touching DIFFERENT words of the SAME 64-byte line
  // must conflict — cache-line granularity is the hardware's (and the
  // emulation's) unit of truth.
  EmulatedHtm htm;
  EmulatedHtm::Tx tx1(htm, 0);
  EmulatedHtm::Tx tx2(htm, 1);
  alignas(64) TmWord line[8] = {};

  const AbortStatus s1 = tx1.Execute([&] {
    (void)tx1.Load(&line[0]);
    // tx2 writes a *different word* in the same line and commits.
    const AbortStatus s2 = tx2.Execute([&] { tx2.Store(&line[7], 1); });
    EXPECT_TRUE(s2.ok());
    (void)tx1.Load(&line[0]);  // Must observe the doom.
    ADD_FAILURE() << "false sharing not detected";
  });
  EXPECT_EQ(s1.cause, AbortCause::kConflict);
}

TEST(HtmSemantics, DistinctLinesDoNotConflict) {
  EmulatedHtm htm;
  EmulatedHtm::Tx tx1(htm, 0);
  EmulatedHtm::Tx tx2(htm, 1);
  alignas(64) TmWord a = 0;
  alignas(64) TmWord b = 0;
  const AbortStatus s1 = tx1.Execute([&] {
    tx1.Store(&a, 1);
    const AbortStatus s2 = tx2.Execute([&] { tx2.Store(&b, 2); });
    EXPECT_TRUE(s2.ok());
  });
  EXPECT_TRUE(s1.ok());
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
}

TEST(HtmSemantics, WriteBufferIsWordGranular) {
  // Writing word 0 of a line must not clobber word 1 at commit.
  EmulatedHtm htm;
  EmulatedHtm::Tx tx(htm, 0);
  alignas(64) TmWord line[8] = {10, 11, 12, 13, 14, 15, 16, 17};
  const AbortStatus status = tx.Execute([&] {
    tx.Store(&line[0], 100);
    tx.Store(&line[3], 103);
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(line[0], 100u);
  EXPECT_EQ(line[1], 11u);
  EXPECT_EQ(line[3], 103u);
  EXPECT_EQ(line[7], 17u);
}

TEST(HtmSemantics, SegmentBoundaryPublishesEarlierWrites) {
  // XEND publishes; the next segment's abort must not undo them.
  EmulatedHtm htm;
  EmulatedHtm::Tx tx(htm, 0);
  alignas(64) TmWord a = 0;
  alignas(64) TmWord b = 0;
  const AbortStatus status = tx.Execute([&] {
    tx.Store(&a, 1);
    tx.SegmentBoundary();  // Commits segment 1: a published.
    tx.Store(&b, 2);
    tx.ExplicitAbort<0x5>();  // Aborts only segment 2.
  });
  EXPECT_EQ(status.cause, AbortCause::kExplicit);
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&a), 1u) << "segment 1 was committed";
  EXPECT_EQ(EmulatedHtm::NonTxLoad(&b), 0u) << "segment 2 was aborted";
}

TEST(HtmSemantics, StatsCountCausesSeparately) {
  HtmConfig config;
  config.num_sets = 4;
  config.num_ways = 1;
  EmulatedHtm htm(config);
  EmulatedHtm::Tx tx(htm, 0);
  std::vector<TmWord> data(4 * 8 * 4, 0);

  (void)tx.Execute([&] { tx.ExplicitAbort<1>(); });
  (void)tx.Execute([&] {
    // Two lines in the same modeled set: capacity with 1 way.
    (void)tx.Load(&data[0]);
    (void)tx.Load(&data[4 * 8]);
  });
  (void)tx.Execute([&] {});  // Commit.

  const HtmStats& stats = tx.stats();
  EXPECT_EQ(stats.begins, 3u);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.explicit_aborts, 1u);
  EXPECT_EQ(stats.capacity_aborts, 1u);
  EXPECT_EQ(stats.TotalAborts(), 2u);
}

TEST(HtmSemantics, ReusedTxHandleStartsClean) {
  // Footprint/buffers from an aborted transaction must not leak into the
  // next one (the router reuses handles across attempts).
  HtmConfig config;
  config.num_sets = 4;
  config.num_ways = 2;
  EmulatedHtm htm(config);
  EmulatedHtm::Tx tx(htm, 0);
  std::vector<TmWord> data(4 * 8 * 8, 0);

  const AbortStatus first = tx.Execute([&] {
    for (size_t line = 0; line < 16; ++line) (void)tx.Load(&data[line * 8]);
  });
  EXPECT_EQ(first.cause, AbortCause::kCapacity);

  // Exactly-at-capacity transaction must now succeed from a clean slate.
  const AbortStatus second = tx.Execute([&] {
    for (size_t line = 0; line < 8; ++line) (void)tx.Load(&data[line * 8]);
    tx.Store(&data[0], 42);
  });
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(data[0], 42u);
}

TEST(HtmSemantics, ManyShortTransactionsAcrossThreadsAreExact) {
  // Smoke-stress of the line-table protocol under rapid reuse.
  EmulatedHtm htm;
  constexpr int kThreads = 6;
  constexpr int kEach = 3000;
  struct alignas(64) Cell {
    TmWord value = 0;
  };
  std::vector<Cell> cells(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EmulatedHtm::Tx tx(htm, t);
      for (int i = 0; i < kEach; ++i) {
        const int c = (t + i) % 8;
        while (true) {
          const AbortStatus status = tx.Execute([&] {
            tx.Store(&cells[c].value, tx.Load(&cells[c].value) + 1);
          });
          if (status.ok()) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  TmWord total = 0;
  for (const Cell& c : cells) total += c.value;
  EXPECT_EQ(total, static_cast<TmWord>(kThreads) * kEach);
}

}  // namespace
}  // namespace tufast
